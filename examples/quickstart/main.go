// Quickstart: build a circuit with the public API, check it against
// plaintext evaluation, run it as a real garbled two-party computation,
// then compile it for the HAAC accelerator and report estimated
// performance.
//
// The function is Yao's millionaires' problem: two parties learn who is
// richer without revealing their wealth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"haac"
)

func main() {
	// 1. Build the circuit: alice > bob over 32-bit values.
	b := haac.NewBuilder()
	alice := b.GarblerInputs(32)
	bob := b.EvaluatorInputs(32)
	b.Output(b.GtU(alice, bob))
	c := b.MustBuild()

	s := c.ComputeStats()
	fmt.Printf("circuit: %d gates (%d AND), depth %d\n", s.Gates, s.ANDGates, s.Levels)

	aliceWealth, bobWealth := uint64(1_500_000), uint64(2_100_000)
	aliceBits := bits32(aliceWealth)
	bobBits := bits32(bobWealth)

	// 2. Plaintext evaluation (the functional model).
	plain, err := haac.Eval(c, aliceBits, bobBits)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Real two-party execution: garbling with re-keyed half-gates,
	// labels via oblivious transfer, tables streamed between the roles.
	secure, err := haac.Run2PC(c, aliceBits, bobBits)
	if err != nil {
		log.Fatal(err)
	}
	if secure[0] != plain[0] {
		log.Fatal("secure result disagrees with plaintext evaluation")
	}
	fmt.Printf("is Alice richer? %v (computed without revealing either value)\n", secure[0])

	// 3b. The same computation on the parallel pipelined engine: gates
	// at the same dependence level are garbled by a worker pool and each
	// level's tables stream to the evaluator the moment they are ready,
	// overlapping garbling, transfer and evaluation — in software what
	// HAAC's gate engines and table queues do in hardware. The garbled
	// bytes are identical, so this is purely a throughput knob.
	fast, err := haac.Run2PCWith(c, aliceBits, bobBits,
		haac.RunOptions{Workers: 8, Pipelined: true})
	if err != nil {
		log.Fatal(err)
	}
	if fast[0] != plain[0] {
		log.Fatal("pipelined result disagrees with plaintext evaluation")
	}
	fmt.Println("pipelined parallel 2PC agrees (8 workers, level-streamed tables)")

	// 4. Compile for the HAAC accelerator and estimate performance.
	cp, err := haac.Compile(c, haac.DefaultCompilerConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := haac.Simulate(cp, haac.DefaultHW())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HAAC (16 GEs, 2 MB SWW, DDR4): %v, %.2f mm^2, %.3g J\n",
		res.Time(), haac.AreaOf(haac.DefaultHW()), haac.EnergyOf(res).Total())
}

func bits32(v uint64) []bool {
	out := make([]bool, 32)
	for i := range out {
		out[i] = v>>uint(i)&1 == 1
	}
	return out
}
