// privateinference runs the paper's motivating application (§1): the
// non-linear layer of a private neural inference. A server owns model
// weights, a client owns an input vector; together they compute one
// fixed-point dense layer followed by ReLU — the exact GC bottleneck
// hybrid PI protocols accelerate — without either side revealing its
// data. The example checks the secure result against a native
// fixed-point model, then compiles the layer for HAAC and reports the
// estimated acceleration over the host's software garbler.
//
//	go run ./examples/privateinference
package main

import (
	"fmt"
	"log"
	"math/rand"

	"haac"
	"haac/internal/baseline"
	"haac/internal/gc"
)

const (
	inDim  = 16
	outDim = 4
	width  = 16 // Q8.8 fixed point
	frac   = 8
)

// buildLayer constructs out = ReLU(W x + b) in Q8.8 fixed point.
// Weights and biases are garbler inputs; the activation vector belongs
// to the evaluator.
func buildLayer(b *haac.Builder) *haac.Circuit {
	w := make([][]haac.Word, outDim)
	for o := range w {
		w[o] = make([]haac.Word, inDim)
		for i := range w[o] {
			w[o][i] = b.GarblerInputs(width)
		}
	}
	bias := make([]haac.Word, outDim)
	for o := range bias {
		bias[o] = b.GarblerInputs(width)
	}
	x := make([]haac.Word, inDim)
	for i := range x {
		x[i] = b.EvaluatorInputs(width)
	}
	for o := 0; o < outDim; o++ {
		// Accumulate in 2*width bits, then rescale by the fraction.
		acc := b.ExtendSign(bias[o], 2*width)
		acc = b.ShlConst(acc, frac)
		for i := 0; i < inDim; i++ {
			prod := b.Mul(b.ExtendSign(w[o][i], 2*width), b.ExtendSign(x[i], 2*width))
			acc = b.Add(acc, prod)
		}
		scaled := b.ShrArithConst(acc, frac)[:width]
		// ReLU.
		pos := b.NOT(scaled[width-1])
		out := make(haac.Word, width)
		for j := range out {
			out[j] = b.AND(scaled[j], pos)
		}
		b.OutputWord(out)
	}
	return b.MustBuild()
}

// fixed-point helpers.
func toFix(f float64) uint64 { return uint64(uint16(int16(f * (1 << frac)))) }
func fromFix(v uint64) float64 {
	return float64(int16(uint16(v))) / (1 << frac)
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// Model (server-private) and input (client-private).
	weights := make([][]float64, outDim)
	biases := make([]float64, outDim)
	for o := range weights {
		weights[o] = make([]float64, inDim)
		for i := range weights[o] {
			weights[o][i] = rng.Float64()*2 - 1
		}
		biases[o] = rng.Float64() - 0.5
	}
	input := make([]float64, inDim)
	for i := range input {
		input[i] = rng.Float64()*2 - 1
	}

	// Pack inputs.
	var gBits, eBits []bool
	addWord := func(dst *[]bool, v uint64) {
		for j := 0; j < width; j++ {
			*dst = append(*dst, v>>uint(j)&1 == 1)
		}
	}
	for o := 0; o < outDim; o++ {
		for i := 0; i < inDim; i++ {
			addWord(&gBits, toFix(weights[o][i]))
		}
	}
	for o := 0; o < outDim; o++ {
		addWord(&gBits, toFix(biases[o]))
	}
	for i := 0; i < inDim; i++ {
		addWord(&eBits, toFix(input[i]))
	}

	c := buildLayer(haac.NewBuilder())
	s := c.ComputeStats()
	fmt.Printf("dense(%d->%d)+ReLU layer: %d gates (%d AND), depth %d\n",
		inDim, outDim, s.Gates, s.ANDGates, s.Levels)

	// Secure two-party execution.
	out, err := haac.Run2PC(c, gBits, eBits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nneuron   secure      native(f64)")
	for o := 0; o < outDim; o++ {
		var v uint64
		for j := 0; j < width; j++ {
			if out[o*width+j] {
				v |= 1 << uint(j)
			}
		}
		native := biases[o]
		for i := 0; i < inDim; i++ {
			native += weights[o][i] * input[i]
		}
		if native < 0 {
			native = 0
		}
		fmt.Printf("  %d      %8.4f    %8.4f\n", o, fromFix(v), native)
	}

	// Accelerator estimate vs the host's software garbler.
	cfg := haac.DefaultCompilerConfig()
	cfg.SWWWires = 8192
	cp, err := haac.Compile(c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	hw := haac.DefaultHW()
	hw.SWWWires = cfg.SWWWires
	hw.DRAM = haac.HBM2
	res, err := haac.Simulate(cp, hw)
	if err != nil {
		log.Fatal(err)
	}
	cpu := baseline.MeasureCPU(gc.RekeyedHasher{}, true)
	cpuT := cpu.GCTime(s)
	fmt.Printf("\nCPU software GC:   %v\nHAAC (16 GE, HBM2): %v  -> %.0fx\n",
		cpuT, res.Time(), cpuT.Seconds()/res.Time().Seconds())
	fmt.Println("\n(small differences between columns are Q8.8 quantization)")
}
