// accelerator explores the HAAC design space on one workload: it sweeps
// gate-engine counts and DRAM technologies, reproducing the scaling
// story of the paper's Fig. 8 on a single benchmark, and prints the
// area/energy consequences of each design point.
//
//	go run ./examples/accelerator            # reduced-size MatMult
//	go run ./examples/accelerator -paper     # the paper's 8x8x32 MatMult
package main

import (
	"flag"
	"fmt"
	"log"

	"haac"
)

func main() {
	paper := flag.Bool("paper", false, "use the paper-scale workload (slower)")
	flag.Parse()

	suite := haac.VIPSuiteSmall()
	if *paper {
		suite = haac.VIPSuite()
	}
	var w haac.Workload
	for _, cand := range suite {
		if cand.Name == "MatMult" {
			w = cand
		}
	}
	c := w.Build()
	s := c.ComputeStats()
	fmt.Printf("%s: %s\n%d gates (%.1f%% AND), %d levels, ILP %.0f\n\n",
		w.Name, w.Description, s.Gates, s.ANDPercent, s.Levels, s.ILP)

	fmt.Printf("%4s  %6s  %12s  %12s  %9s  %9s\n",
		"GEs", "DRAM", "time", "compute", "area mm2", "energy J")
	for _, dram := range []haac.DRAM{haac.DDR4, haac.HBM2} {
		for _, nge := range []int{1, 2, 4, 8, 16} {
			cfg := haac.DefaultCompilerConfig()
			cfg.NumGEs = nge
			if !*paper {
				cfg.SWWWires = 4096
			}
			cp, err := haac.Compile(c, cfg)
			if err != nil {
				log.Fatal(err)
			}
			hw := haac.DefaultHW()
			hw.NumGEs = nge
			hw.SWWWires = cfg.SWWWires
			hw.DRAM = dram
			res, err := haac.Simulate(cp, hw)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%4d  %6s  %12v  %12v  %9.2f  %9.3g\n",
				nge, dram.Name, res.Time(), res.ComputeTime(),
				haac.AreaOf(hw), haac.EnergyOf(res).Total())
		}
	}
	fmt.Println("\nWhere the DDR4 column stops improving while HBM2 keeps scaling,")
	fmt.Println("the design has hit the memory-bandwidth wall — the Fig. 8 story.")
}
