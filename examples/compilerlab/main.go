// compilerlab dissects the HAAC compiler on one workload: it compiles
// the same circuit under every scheduling mode, with and without
// eliminating spent wires, and shows how each §4 optimization changes
// stalls, wire traffic and end-to-end time — then verifies that every
// variant still computes the right answer by replaying the per-GE
// streams functionally.
//
//	go run ./examples/compilerlab [-workload DotProd]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"haac"
)

func main() {
	name := flag.String("workload", "DotProd", "small-suite workload name")
	flag.Parse()

	var w haac.Workload
	for _, cand := range haac.VIPSuiteSmall() {
		if strings.EqualFold(cand.Name, *name) {
			w = cand
		}
	}
	if w.Name == "" {
		log.Fatalf("unknown workload %q", *name)
	}
	c := w.Build()
	s := c.ComputeStats()
	fmt.Printf("%s: %s\n%d gates (%.1f%% AND), depth %d, ILP %.0f\n\n",
		w.Name, w.Description, s.Gates, s.ANDPercent, s.Levels, s.ILP)

	g, e := w.Inputs(7)
	want := w.Reference(g, e)

	fmt.Printf("%-22s  %10s  %10s  %8s  %8s  %8s\n",
		"configuration", "time", "compute", "stalls", "live", "OoR")
	for _, mode := range []haac.ReorderMode{haac.Baseline, haac.SegmentReorder, haac.FullReorder} {
		for _, esw := range []bool{false, true} {
			cfg := haac.DefaultCompilerConfig()
			cfg.Reorder = mode
			cfg.ESW = esw
			cfg.NumGEs = 8
			cfg.SWWWires = 512 // small window: forces spills and OoR reads
			cp, err := haac.Compile(c, cfg)
			if err != nil {
				log.Fatal(err)
			}

			// Functional replay: the compiled streams must still compute
			// the reference answer.
			in, err := cp.InputBits(c, g, e)
			if err != nil {
				log.Fatal(err)
			}
			got, err := cp.Execute(in)
			if err != nil {
				log.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					log.Fatalf("%v/ESW=%v: wrong answer at output %d", mode, esw, i)
				}
			}

			hw := haac.DefaultHW()
			hw.NumGEs = cfg.NumGEs
			hw.SWWWires = cfg.SWWWires
			res, err := haac.Simulate(cp, hw)
			if err != nil {
				log.Fatal(err)
			}
			label := fmt.Sprintf("%s, ESW=%v", mode, esw)
			fmt.Printf("%-22s  %10v  %10v  %8d  %8d  %8d\n",
				label, res.Time(), res.ComputeTime(), res.DataStallCycles,
				cp.Traffic.LiveWires, cp.Traffic.OoRWires)
		}
	}
	fmt.Println("\nAll six variants produced the reference answer (verified by")
	fmt.Println("replaying the per-GE instruction and OoRW-queue streams).")
	fmt.Println("Reordering cuts stalls; ESW cuts live-wire writebacks (§4.2).")
}
