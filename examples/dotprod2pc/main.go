// dotprod2pc runs a private dot product between two parties over a real
// TCP connection — the private-inference-flavoured workload the paper's
// introduction motivates (GC as the non-linear/bottleneck protocol in
// hybrid private ML). One side holds a weight vector, the other an
// input vector; neither learns the other's values, both learn the inner
// product.
//
//	go run ./examples/dotprod2pc            # both roles in one process
//	go run ./examples/dotprod2pc -role garbler   -listen :9100
//	go run ./examples/dotprod2pc -role evaluator -addr host:9100
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"

	"haac"
)

const (
	vecLen = 16
	width  = 16
)

func buildCircuit() *haac.Circuit {
	b := haac.NewBuilder()
	weights := make([]haac.Word, vecLen)
	inputs := make([]haac.Word, vecLen)
	for i := range weights {
		weights[i] = b.GarblerInputs(width)
	}
	for i := range inputs {
		inputs[i] = b.EvaluatorInputs(width)
	}
	acc := b.ZeroWord(width)
	for i := range weights {
		acc = b.Add(acc, b.Mul(weights[i], inputs[i]))
	}
	b.OutputWord(acc)
	return b.MustBuild()
}

func vecBits(rng *rand.Rand) ([]bool, []uint64) {
	vals := make([]uint64, vecLen)
	bits := make([]bool, 0, vecLen*width)
	for i := range vals {
		vals[i] = uint64(rng.Intn(100))
		for j := 0; j < width; j++ {
			bits = append(bits, vals[i]>>uint(j)&1 == 1)
		}
	}
	return bits, vals
}

func main() {
	role := flag.String("role", "", "garbler, evaluator, or empty for an in-process demo")
	listen := flag.String("listen", ":9100", "garbler listen address")
	addr := flag.String("addr", "127.0.0.1:9100", "evaluator dial address")
	seed := flag.Int64("seed", 42, "input seed")
	flag.Parse()

	c := buildCircuit()
	rng := rand.New(rand.NewSource(*seed))
	gBits, weights := vecBits(rng)
	eBits, inputs := vecBits(rng)

	switch *role {
	case "":
		runLocalDemo(c, gBits, eBits, weights, inputs)
	case "garbler":
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		fmt.Printf("garbler: weights %v\nwaiting on %s...\n", weights, *listen)
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		out, err := haac.RunGarbler(conn, c, gBits)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dot product: %d\n", toUint(out))
	case "evaluator":
		conn, err := net.Dial("tcp", *addr)
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		fmt.Printf("evaluator: inputs %v\n", inputs)
		out, err := haac.RunEvaluator(conn, c, eBits)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dot product: %d\n", toUint(out))
	default:
		log.Fatalf("unknown role %q", *role)
	}
}

// runLocalDemo plays both parties over a loopback TCP socket.
func runLocalDemo(c *haac.Circuit, gBits, eBits []bool, weights, inputs []uint64) {
	var want uint64
	for i := range weights {
		want = (want + weights[i]*inputs[i]) & (1<<width - 1)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	done := make(chan uint64, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		out, err := haac.RunGarbler(conn, c, gBits)
		if err != nil {
			log.Fatal(err)
		}
		done <- toUint(out)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	out, err := haac.RunEvaluator(conn, c, eBits)
	if err != nil {
		log.Fatal(err)
	}
	got := toUint(out)
	garblerGot := <-done

	fmt.Printf("weights (garbler-private):  %v\n", weights)
	fmt.Printf("inputs  (evaluator-private): %v\n", inputs)
	fmt.Printf("secure dot product: evaluator=%d garbler=%d native=%d\n", got, garblerGot, want)
	if got != want || garblerGot != want {
		log.Fatal("secure result mismatch")
	}
	fmt.Println("both parties agree with the native result; neither saw the other's vector")
}

func toUint(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}
