module haac

go 1.22
