package sim

import (
	"fmt"

	"haac/internal/compiler"
	"haac/internal/isa"
)

// Simulate runs the compiled program on the hardware configuration and
// returns timing, traffic and event counts.
//
// The compute phase replays the compiler's per-GE streams cycle by
// cycle: each GE issues in order when (a) the engine's previous issue
// has cleared (one instruction per cycle), (b) both operands are ready —
// produced values become usable at pipeline completion via the
// forwarding network (or later, if forwarding is disabled), and (c) the
// operands' SWW banks have access slots left this cycle. When no GE can
// issue, the clock skips forward to the next release time, so runtime is
// proportional to instructions, not stall cycles.
func Simulate(cp *compiler.Compiled, hw HW) (Result, error) {
	if err := hw.Validate(); err != nil {
		return Result{}, err
	}
	if hw.NumGEs != cp.Cfg.NumGEs {
		return Result{}, fmt.Errorf("sim: program compiled for %d GEs, hardware has %d",
			cp.Cfg.NumGEs, hw.NumGEs)
	}
	if hw.SWWWires != cp.Cfg.SWWWires {
		return Result{}, fmt.Errorf("sim: program compiled for %d-wire SWW, hardware has %d",
			cp.Cfg.SWWWires, hw.SWWWires)
	}

	res := Result{HW: hw}
	res.computePhase(cp)
	res.trafficPhase(cp)

	res.TotalCycles = res.ComputeCycles
	if res.TrafficCycles > res.TotalCycles {
		res.TotalCycles = res.TrafficCycles
	}
	// Pipeline drain for the final in-flight gates.
	res.TotalCycles += hw.ANDLatency()
	return res, nil
}

// computePhase is the cycle-level GE replay.
func (res *Result) computePhase(cp *compiler.Compiled) {
	res.computePhaseTraced(cp, nil)
}

// computePhaseTraced additionally reports each issue event (GE, cycle)
// to rec when non-nil; used by SimulateTraced.
func (res *Result) computePhaseTraced(cp *compiler.Compiled, rec func(int, int64)) {
	hw := res.HW
	p := &cp.Program
	nge := hw.NumGEs
	andLat := hw.ANDLatency()
	fwd := hw.Forwarding

	ready := make([]int64, p.MaxAddr+1)
	ptr := make([]int, nge) // index into each GE's stream
	geFree := make([]int64, nge)
	res.IssuedPerGE = make([]int64, nge)

	nBanks := nge * hw.BanksPerGE
	slots := hw.bankSlots()
	bankUse := make([]int16, nBanks)
	usedBanks := make([]int32, 0, 2*nge)

	// Pull-based OoR state (ablation): per GE, the stream position whose
	// DRAM pull is in flight and when it lands.
	pullPtr := make([]int, nge)
	pullReady := make([]int64, nge)
	for g := range pullPtr {
		pullPtr[g] = -1
	}

	remaining := len(p.Instrs)
	cycle := int64(0)
	var dataStalls, bankConflicts int64

	instrs := p.Instrs
	outAddrs := p.OutAddrs

	for remaining > 0 {
		issued := false
		nextEvent := int64(-1)
		note := func(t int64) {
			if t > cycle && (nextEvent < 0 || t < nextEvent) {
				nextEvent = t
			}
		}

		for g := 0; g < nge; g++ {
			st := cp.Streams[g]
			if ptr[g] >= len(st) {
				continue
			}
			if geFree[g] > cycle {
				note(geFree[g])
				continue
			}
			j := st[ptr[g]]
			in := &instrs[j]

			// Operand readiness. OoR operands come from the GE-local
			// queue: under the push model the compiler guarantees they
			// arrived long before (§3.1.4), so they are always ready.
			var t0 int64
			aOoR := in.A == isa.OoR
			bOoR := in.B == isa.OoR
			if in.Op != isa.NOP {
				if !aOoR {
					if r := ready[in.A]; r > t0 {
						t0 = r
					}
				}
				if !bOoR {
					if r := ready[in.B]; r > t0 {
						t0 = r
					}
				}
			}
			if t0 > cycle {
				dataStalls++
				note(t0)
				continue
			}
			// Pull-based OoR ablation: the first time an in-order GE
			// reaches an instruction with an OoR operand it launches a
			// DRAM access and stalls for the round trip.
			if hw.OoRPull && (aOoR || bOoR) {
				if pullPtr[g] != ptr[g] {
					pullPtr[g] = ptr[g]
					n := int64(1)
					if aOoR && bOoR {
						n = 2
					}
					pullReady[g] = cycle + n*hw.DRAMLatencyCycles
				}
				if pullReady[g] > cycle {
					dataStalls++
					note(pullReady[g])
					continue
				}
			}
			// SWW bank ports for in-window operands. A bank serves
			// `slots` accesses per GE cycle; an instruction needing more
			// from one bank than a cycle provides may still proceed when
			// the bank is idle (the read stages serialize it), but two
			// instructions cannot oversubscribe the same bank.
			if in.Op != isa.NOP {
				var ba, bb int32 = -1, -1
				needA, needB := 0, 0
				if !aOoR {
					ba = int32(in.A) % int32(nBanks)
					needA = 1
				}
				if !bOoR {
					bb = int32(in.B) % int32(nBanks)
					needB = 1
				}
				conflict := false
				if ba >= 0 && ba == bb {
					need := needA + needB
					cap := slots
					if need > cap {
						cap = need // idle bank may serialize the burst
					}
					if int(bankUse[ba])+need > cap {
						conflict = true
					}
				} else {
					if ba >= 0 && int(bankUse[ba])+needA > slots {
						conflict = true
					}
					if bb >= 0 && int(bankUse[bb])+needB > slots {
						conflict = true
					}
				}
				if conflict {
					bankConflicts++
					note(cycle + 1)
					continue
				}
				if ba >= 0 {
					if bankUse[ba] == 0 {
						usedBanks = append(usedBanks, ba)
					}
					bankUse[ba]++
					res.Events.SWWReads++
				}
				if bb >= 0 {
					if bankUse[bb] == 0 {
						usedBanks = append(usedBanks, bb)
					}
					bankUse[bb]++ // may exceed slots for a serialized burst
					res.Events.SWWReads++
				}
				if aOoR {
					res.Events.OoRReads++
				}
				if bOoR {
					res.Events.OoRReads++
				}
			}

			// Issue.
			lat := int64(1)
			switch in.Op {
			case isa.AND:
				lat = andLat
				res.Events.ANDs++
			case isa.XOR:
				res.Events.XORs++
			}
			done := cycle + lat
			if !fwd {
				done += writeBackPenalty
			}
			ready[outAddrs[j]] = done
			res.Events.SWWWrites++
			geFree[g] = cycle + 1
			ptr[g]++
			remaining--
			res.IssuedPerGE[g]++
			if rec != nil {
				rec(g, cycle)
			}
			issued = true
		}

		if issued {
			cycle++
			for _, b := range usedBanks {
				bankUse[b] = 0
			}
			usedBanks = usedBanks[:0]
		} else if nextEvent > cycle {
			cycle = nextEvent
			for _, b := range usedBanks {
				bankUse[b] = 0
			}
			usedBanks = usedBanks[:0]
		} else {
			cycle++
			for _, b := range usedBanks {
				bankUse[b] = 0
			}
			usedBanks = usedBanks[:0]
		}
	}

	res.ComputeCycles = cycle
	res.DataStallCycles = dataStalls
	res.BankConflicts = bankConflicts
	res.Events.InstrCount = int64(len(p.Instrs))
	res.Events.TableCount = int64(p.NumANDs())
	res.Events.InputLoads = int64(p.NumInputs)
	res.Events.LiveWrites = int64(p.LiveCount())
}

// trafficPhase does the byte-exact stream accounting and converts it to
// GE cycles at the DRAM's sustained bandwidth.
func (res *Result) trafficPhase(cp *compiler.Compiled) {
	p := &cp.Program
	t := &res.Traffic
	t.InstrBytes = int64(len(p.Instrs)) * instrBytes
	t.TableBytes = int64(p.NumANDs()) * tableBytes
	t.OoRBytes = int64(cp.Traffic.OoRWires) * (labelBytes + oorAddrBytes)
	t.LiveBytes = int64(p.LiveCount()) * labelBytes
	t.InputBytes = int64(p.NumInputs) * labelBytes

	bytesPerCycle := res.HW.DRAM.Bandwidth / res.HW.GEClock
	res.TrafficCycles = int64(float64(t.TotalBytes()) / bytesPerCycle)
	res.WireTrafficCycles = int64(float64(t.WireBytes()) / bytesPerCycle)
}
