package sim

import (
	"fmt"

	"haac/internal/compiler"
)

// Multi-core HAAC: §6.5 of the paper lists "higher levels of parallelism
// (e.g., multiple HAAC cores)" as the path to closing the remaining gap
// to plaintext. This models the natural first step: C independent HAAC
// cores (each with its own GEs, SWW and queues) sharing one off-chip
// memory interface, executing a batch of independent program shards —
// the shape of batched workloads (many gradient-descent problems, many
// AES blocks, many inference requests).
//
// Scaling is limited exactly where the paper predicts: once the
// aggregate stream traffic saturates the shared interface, extra cores
// stop helping. Memory-bound workloads (ReLU on HBM2 at 16 GEs) gain
// nothing; compute-bound ones (GradDesc) scale until the wall.

// MultiResult aggregates a multi-core simulation.
type MultiResult struct {
	PerShard []Result
	// ComputeCycles is the busiest core's total compute time.
	ComputeCycles int64
	// TrafficCycles is the aggregate stream traffic at the shared
	// memory interface.
	TrafficCycles int64
	// TotalCycles = max(compute, traffic).
	TotalCycles int64
	HW          HW
	Cores       int
}

// Time converts to wall clock seconds at the GE clock.
func (m MultiResult) Time() float64 {
	return float64(m.TotalCycles) / m.HW.GEClock
}

// SimulateMultiCore distributes the shards round-robin over `cores`
// identical HAAC cores sharing hw.DRAM's bandwidth. Shards assigned to
// the same core run back to back.
func SimulateMultiCore(shards []*compiler.Compiled, hw HW, cores int) (MultiResult, error) {
	if len(shards) == 0 {
		return MultiResult{}, fmt.Errorf("sim: no shards")
	}
	if cores < 1 {
		return MultiResult{}, fmt.Errorf("sim: need at least one core")
	}
	out := MultiResult{HW: hw, Cores: cores}
	perCore := make([]int64, cores)
	var totalBytes int64

	// Identical shards are common in batch workloads; memoize.
	type key = *compiler.Compiled
	memo := map[key]Result{}
	for i, cp := range shards {
		r, ok := memo[cp]
		if !ok {
			var err error
			r, err = Simulate(cp, hw)
			if err != nil {
				return MultiResult{}, fmt.Errorf("sim: shard %d: %w", i, err)
			}
			memo[cp] = r
		}
		out.PerShard = append(out.PerShard, r)
		perCore[i%cores] += r.ComputeCycles + hw.ANDLatency()
		totalBytes += r.Traffic.TotalBytes()
	}
	for _, c := range perCore {
		if c > out.ComputeCycles {
			out.ComputeCycles = c
		}
	}
	bytesPerCycle := hw.DRAM.Bandwidth / hw.GEClock
	out.TrafficCycles = int64(float64(totalBytes) / bytesPerCycle)
	out.TotalCycles = out.ComputeCycles
	if out.TrafficCycles > out.TotalCycles {
		out.TotalCycles = out.TrafficCycles
	}
	return out, nil
}
