package sim

import (
	"strings"
	"testing"

	"haac/internal/compiler"
	"haac/internal/workloads"
)

func compileFor(t *testing.T, w workloads.Workload, hw HW, mode compiler.ReorderMode) *compiler.Compiled {
	t.Helper()
	c := w.Build()
	cp, err := compiler.Compile(c, compiler.Config{
		Reorder:         mode,
		ESW:             true,
		SWWWires:        hw.SWWWires,
		NumGEs:          hw.NumGEs,
		GarblerPipeline: hw.Garbler,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func smallHW(nge int) HW {
	hw := DefaultHW()
	hw.NumGEs = nge
	hw.SWWWires = 1024
	return hw
}

func TestSimulateBasicInvariants(t *testing.T) {
	hw := smallHW(4)
	cp := compileFor(t, workloads.MatMult(3, 16), hw, compiler.FullReorder)
	r, err := Simulate(cp, hw)
	if err != nil {
		t.Fatal(err)
	}
	nInstr := int64(len(cp.Program.Instrs))
	if r.Events.ANDs+r.Events.XORs != nInstr {
		t.Fatalf("event counts %d+%d != %d instructions", r.Events.ANDs, r.Events.XORs, nInstr)
	}
	if r.Events.ANDs != int64(cp.Program.NumANDs()) {
		t.Fatal("AND count mismatch")
	}
	if r.Events.OoRReads != int64(cp.Traffic.OoRWires) {
		t.Fatalf("simulator consumed %d OoR reads, compiler produced %d",
			r.Events.OoRReads, cp.Traffic.OoRWires)
	}
	// With 4 GEs, at least nInstr/4 cycles are needed.
	if r.ComputeCycles < nInstr/int64(hw.NumGEs) {
		t.Fatalf("compute cycles %d below issue bound %d", r.ComputeCycles, nInstr/4)
	}
	if r.TotalCycles < r.ComputeCycles || r.TotalCycles < r.TrafficCycles {
		t.Fatal("total cycles below component bounds")
	}
	if r.Time() <= 0 {
		t.Fatal("non-positive time")
	}
}

func TestMoreGEsNotSlower(t *testing.T) {
	// Performance must scale (weakly) with GE count for an ILP-rich
	// workload — the Fig. 8 property.
	w := workloads.Hamming(2048)
	var prev int64 = 1 << 62
	for _, nge := range []int{1, 2, 4, 8} {
		hw := DefaultHW()
		hw.NumGEs = nge
		cp := compileFor(t, w, hw, compiler.FullReorder)
		r, err := Simulate(cp, hw)
		if err != nil {
			t.Fatal(err)
		}
		if r.ComputeCycles > prev {
			t.Fatalf("compute cycles grew from %d to %d at %d GEs", prev, r.ComputeCycles, nge)
		}
		prev = r.ComputeCycles
	}
}

func TestReorderImprovesDeepCircuit(t *testing.T) {
	// A multiplier chain has long dependence chains; level-ordering must
	// reduce stalls relative to the depth-first baseline on multiple GEs.
	w := workloads.DotProduct(16, 16)
	hw := smallHW(8)
	base, err := Simulate(compileFor(t, w, hw, compiler.Baseline), hw)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Simulate(compileFor(t, w, hw, compiler.FullReorder), hw)
	if err != nil {
		t.Fatal(err)
	}
	if full.ComputeCycles >= base.ComputeCycles {
		t.Fatalf("full reorder (%d cycles) not faster than baseline (%d)",
			full.ComputeCycles, base.ComputeCycles)
	}
}

func TestForwardingHelps(t *testing.T) {
	w := workloads.DotProduct(4, 16)
	hw := smallHW(2)
	cp := compileFor(t, w, hw, compiler.Baseline)
	withFwd, err := Simulate(cp, hw)
	if err != nil {
		t.Fatal(err)
	}
	hw2 := hw
	hw2.Forwarding = false
	noFwd, err := Simulate(cp, hw2)
	if err != nil {
		t.Fatal(err)
	}
	if noFwd.ComputeCycles <= withFwd.ComputeCycles {
		t.Fatalf("disabling forwarding did not slow execution (%d vs %d)",
			noFwd.ComputeCycles, withFwd.ComputeCycles)
	}
}

func TestGarblerSlightlySlower(t *testing.T) {
	// §6.1: the Garbler pipeline is deeper (21 vs 18), so on a
	// dependence-limited workload it is slightly slower.
	w := workloads.GradDesc(2, 2)
	hwE := smallHW(4)
	cpE := compileFor(t, w, hwE, compiler.FullReorder)
	evalRes, err := Simulate(cpE, hwE)
	if err != nil {
		t.Fatal(err)
	}
	hwG := hwE
	hwG.Garbler = true
	cpG := compileFor(t, w, hwG, compiler.FullReorder)
	garbRes, err := Simulate(cpG, hwG)
	if err != nil {
		t.Fatal(err)
	}
	if garbRes.ComputeCycles < evalRes.ComputeCycles {
		t.Fatalf("garbler (%d) faster than evaluator (%d)", garbRes.ComputeCycles, evalRes.ComputeCycles)
	}
	ratio := float64(garbRes.ComputeCycles) / float64(evalRes.ComputeCycles)
	if ratio > 1.25 {
		t.Fatalf("garbler/evaluator ratio %.2f implausibly large", ratio)
	}
}

func TestHBM2ReducesTrafficBound(t *testing.T) {
	w := workloads.Hamming(4096)
	hw := smallHW(8)
	cp := compileFor(t, w, hw, compiler.FullReorder)
	ddr, err := Simulate(cp, hw)
	if err != nil {
		t.Fatal(err)
	}
	hw2 := hw
	hw2.DRAM = HBM2
	hbm, err := Simulate(cp, hw2)
	if err != nil {
		t.Fatal(err)
	}
	if hbm.TrafficCycles >= ddr.TrafficCycles {
		t.Fatal("HBM2 did not reduce traffic cycles")
	}
	if hbm.ComputeCycles != ddr.ComputeCycles {
		t.Fatal("DRAM choice changed compute cycles (decoupling broken)")
	}
}

func TestTrafficAccounting(t *testing.T) {
	hw := smallHW(2)
	cp := compileFor(t, workloads.AddN(16), hw, compiler.Baseline)
	r, err := Simulate(cp, hw)
	if err != nil {
		t.Fatal(err)
	}
	p := &cp.Program
	if r.Traffic.InstrBytes != int64(len(p.Instrs))*8 {
		t.Fatal("instruction bytes wrong")
	}
	if r.Traffic.TableBytes != int64(p.NumANDs())*32 {
		t.Fatal("table bytes wrong")
	}
	if r.Traffic.LiveBytes != int64(p.LiveCount())*16 {
		t.Fatal("live bytes wrong")
	}
	if r.Traffic.TotalBytes() != r.Traffic.InstrBytes+r.Traffic.TableBytes+
		r.Traffic.OoRBytes+r.Traffic.LiveBytes+r.Traffic.InputBytes {
		t.Fatal("total bytes inconsistent")
	}
}

func TestConfigMismatchRejected(t *testing.T) {
	hw := smallHW(4)
	cp := compileFor(t, workloads.AddN(8), hw, compiler.Baseline)
	bad := hw
	bad.NumGEs = 8
	if _, err := Simulate(cp, bad); err == nil {
		t.Fatal("GE-count mismatch accepted")
	}
	bad2 := hw
	bad2.SWWWires = 4096
	if _, err := Simulate(cp, bad2); err == nil {
		t.Fatal("SWW mismatch accepted")
	}
	if _, err := Simulate(cp, HW{}); err == nil {
		t.Fatal("invalid HW accepted")
	}
}

func TestBankConflictsBounded(t *testing.T) {
	// 4 banks/GE at 2x clock should keep conflicts rare (§5).
	hw := smallHW(8)
	cp := compileFor(t, workloads.MatMult(4, 8), hw, compiler.FullReorder)
	r, err := Simulate(cp, hw)
	if err != nil {
		t.Fatal(err)
	}
	if r.BankConflicts > int64(len(cp.Program.Instrs))/2 {
		t.Fatalf("bank conflicts %d out of %d instructions: banking model broken",
			r.BankConflicts, len(cp.Program.Instrs))
	}
}

func TestSingleGESerializes(t *testing.T) {
	hw := smallHW(1)
	cp := compileFor(t, workloads.AddN(32), hw, compiler.Baseline)
	r, err := Simulate(cp, hw)
	if err != nil {
		t.Fatal(err)
	}
	if r.ComputeCycles < int64(len(cp.Program.Instrs)) {
		t.Fatal("one GE cannot issue faster than one instruction per cycle")
	}
}

func TestTrace(t *testing.T) {
	hw := smallHW(4)
	cp := compileFor(t, workloads.MatMult(3, 16), hw, compiler.FullReorder)
	res, tr, err := SimulateTraced(cp, hw, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Occupancy) != hw.NumGEs {
		t.Fatalf("trace rows: %d", len(tr.Occupancy))
	}
	// Total traced issues must equal the instruction count.
	var total float64
	for _, row := range tr.Occupancy {
		for _, v := range row {
			total += float64(v) * float64(tr.CyclesPerBucket)
		}
	}
	n := float64(len(cp.Program.Instrs))
	if total < n*0.999 || total > n*1.001 {
		t.Fatalf("trace accounts for %.0f issues, program has %.0f", total, n)
	}
	if res.Utilization() <= 0 || res.Utilization() > 1 {
		t.Fatalf("utilization %v out of range", res.Utilization())
	}
	s := tr.Render()
	if !strings.Contains(s, "GE0") || !strings.Contains(s, "|") {
		t.Fatal("render broken")
	}
}

func TestUtilizationAndImbalance(t *testing.T) {
	hw := smallHW(4)
	cp := compileFor(t, workloads.Hamming(512), hw, compiler.FullReorder)
	r, err := Simulate(cp, hw)
	if err != nil {
		t.Fatal(err)
	}
	if r.LoadImbalance() < 1 {
		t.Fatalf("imbalance %v < 1", r.LoadImbalance())
	}
	if r.LoadImbalance() > 2 {
		t.Fatalf("streams badly imbalanced: %v", r.LoadImbalance())
	}
	var sum int64
	for _, n := range r.IssuedPerGE {
		sum += n
	}
	if sum != int64(len(cp.Program.Instrs)) {
		t.Fatal("issued-per-GE does not sum to instruction count")
	}
}

func TestCoupledMatchesDecoupledWithinTolerance(t *testing.T) {
	// The co-design claim: with realistic queue sizes the finite-queue
	// model lands near the decoupled max(compute, traffic) bound.
	for _, wname := range []string{"MatMult", "Hamm", "DotProd"} {
		var w workloads.Workload
		for _, cand := range workloads.VIPSuiteSmall() {
			if cand.Name == wname {
				w = cand
			}
		}
		hw := smallHW(4)
		cp := compileFor(t, w, hw, compiler.FullReorder)
		r, err := SimulateCoupled(cp, hw, DefaultQueues())
		if err != nil {
			t.Fatal(err)
		}
		if r.TotalCycles < r.DecoupledCycles {
			t.Fatalf("%s: coupled model (%d) beat its own lower bound (%d)",
				wname, r.TotalCycles, r.DecoupledCycles)
		}
		if e := r.CouplingError(); e > 0.5 {
			t.Fatalf("%s: coupled model %.0f%% above the decoupled bound; decoupling claim broken",
				wname, 100*e)
		}
	}
}

func TestCoupledTinyQueuesHurt(t *testing.T) {
	var w workloads.Workload
	for _, cand := range workloads.VIPSuiteSmall() {
		if cand.Name == "MatMult" {
			w = cand
		}
	}
	hw := smallHW(4)
	cp := compileFor(t, w, hw, compiler.FullReorder)
	good, err := SimulateCoupled(cp, hw, DefaultQueues())
	if err != nil {
		t.Fatal(err)
	}
	tiny := QueueConfig{InstrEntries: 2, TableEntries: 1, OoRWEntries: 1, WriteEntries: 1}
	bad, err := SimulateCoupled(cp, hw, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if bad.TotalCycles <= good.TotalCycles {
		t.Fatalf("starving the queues did not hurt (%d vs %d)", bad.TotalCycles, good.TotalCycles)
	}
}

func TestCoupledRejectsMismatch(t *testing.T) {
	hw := smallHW(4)
	cp := compileFor(t, workloads.AddN(8), hw, compiler.Baseline)
	bad := hw
	bad.NumGEs = 8
	if _, err := SimulateCoupled(cp, bad, DefaultQueues()); err == nil {
		t.Fatal("mismatch accepted")
	}
}
