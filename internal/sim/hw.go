// Package sim is the cycle-level HAAC accelerator model used for the
// paper's evaluation (§5 "Simulator"): gate engines with deep in-order
// Half-Gate pipelines and single-cycle FreeXOR units, a banked sliding-
// wire-window scratchpad behind a crossbar, per-GE instruction/table/
// OoRW queues, a wire-forwarding network, and a streaming DRAM model
// (DDR4 or HBM2).
//
// Following the paper's decoupling insight (§3.1.4: pushing OoR reads
// turns all off-chip movement into streams that fully overlap compute),
// the simulator computes the compute-bound time and the traffic-bound
// time independently — exactly the two bars of Fig. 7 — and reports
// their maximum as end-to-end time. Within the compute phase, stalls
// from data hazards (resolved via forwarding), structural bank conflicts
// and in-order issue are modeled cycle by cycle.
package sim

import (
	"fmt"
	"time"

	"haac/internal/gc"
	"haac/internal/isa"
)

// DRAM is a streaming memory model characterized by its bandwidth; HAAC
// converts all off-chip movement into sequential streams, so sustained
// bandwidth is the quantity that matters (§5 uses DDR4-4400 at
// 35.2 GB/s and an HBM2 PHY at 512 GB/s).
type DRAM struct {
	Name      string
	Bandwidth float64 // bytes per second
}

// DDR4 is the paper's DDR4-4400 configuration (35.2 GB/s).
var DDR4 = DRAM{Name: "DDR4", Bandwidth: 35.2e9}

// HBM2 is the paper's HBM2 PHY configuration (512 GB/s).
var HBM2 = DRAM{Name: "HBM2", Bandwidth: 512e9}

// HW describes an accelerator configuration.
type HW struct {
	// NumGEs is the gate-engine count (1..16 in the paper's sweeps).
	NumGEs int
	// SWWWires is the sliding-wire-window capacity in wires
	// (2 MB / 16 B = 131072 for the paper's default).
	SWWWires int
	// BanksPerGE is the SWW banking ratio; the paper finds 4 banks/GE
	// avoids contention (§5).
	BanksPerGE int
	// GEClock is the gate-engine clock in Hz (1 GHz in the paper).
	GEClock float64
	// SWWClock is the scratchpad clock (2 GHz in the paper); the 2x
	// ratio gives each bank two access slots per GE cycle.
	SWWClock float64
	// Garbler selects the 21-stage Garbler Half-Gate pipeline instead
	// of the 18-stage Evaluator pipeline.
	Garbler bool
	// Forwarding enables the inter-/intra-GE wire forwarding network;
	// disabling it (ablation) adds SWW write-back + read latency to
	// every dependence.
	Forwarding bool
	// OoRPull models the pull-based alternative HAAC rejects (§3.1.4):
	// instead of the compiler pushing out-of-range wires into the OoRW
	// queue ahead of use, each OoR operand stalls its in-order GE for a
	// DRAM round trip.
	OoRPull bool
	// DRAMLatencyCycles is the pull round-trip latency in GE cycles
	// (only used with OoRPull; ~100 ns of DDR4 access at 1 GHz).
	DRAMLatencyCycles int64
	// DRAM is the off-chip memory model.
	DRAM DRAM
}

// DefaultHW is the paper's headline design point: 16 GEs, 2 MB SWW,
// 4 banks/GE, 1 GHz / 2 GHz clocks, forwarding on, Evaluator pipelines.
func DefaultHW() HW {
	return HW{
		NumGEs:            16,
		SWWWires:          2 * 1024 * 1024 / 16,
		BanksPerGE:        4,
		GEClock:           1e9,
		SWWClock:          2e9,
		Forwarding:        true,
		DRAMLatencyCycles: 100,
		DRAM:              DDR4,
	}
}

// Validate checks the configuration.
func (hw HW) Validate() error {
	if hw.NumGEs < 1 {
		return fmt.Errorf("sim: NumGEs must be >= 1")
	}
	if hw.SWWWires < 4 {
		return fmt.Errorf("sim: SWWWires too small")
	}
	if hw.BanksPerGE < 1 {
		return fmt.Errorf("sim: BanksPerGE must be >= 1")
	}
	if hw.GEClock <= 0 || hw.SWWClock <= 0 || hw.DRAM.Bandwidth <= 0 {
		return fmt.Errorf("sim: clocks and bandwidth must be positive")
	}
	return nil
}

// ANDLatency is the Half-Gate pipeline depth for this configuration.
func (hw HW) ANDLatency() int64 {
	if hw.Garbler {
		return 21
	}
	return 18
}

// bankSlots is the number of accesses one bank serves per GE cycle.
func (hw HW) bankSlots() int {
	r := int(hw.SWWClock / hw.GEClock)
	if r < 1 {
		r = 1
	}
	return r
}

// writeBackPenalty is the extra dependence latency without forwarding:
// two cycles to write the SWW plus three to read it back (§3.2).
const writeBackPenalty = 5

// Stream byte costs (§3.1, §5): instructions stream as 8-byte words,
// each AND gate's table is 32 bytes, wire labels are 16 bytes, and OoR
// wire addresses are 32-bit.
const (
	instrBytes   = isa.EncodedSize
	tableBytes   = gc.MaterialSize
	labelBytes   = 16
	oorAddrBytes = 4
)

// Events counts what happened during a run; the energy model prices
// these.
type Events struct {
	ANDs       int64
	XORs       int64
	SWWReads   int64
	SWWWrites  int64
	OoRReads   int64
	LiveWrites int64
	InputLoads int64
	TableCount int64
	InstrCount int64
}

// Traffic is the off-chip byte accounting per stream direction.
type Traffic struct {
	InstrBytes int64
	TableBytes int64
	OoRBytes   int64 // wire labels + addresses streamed in
	LiveBytes  int64 // live wires written back
	InputBytes int64 // initial input-wire load
}

// WireBytes is the wire-only traffic (Fig. 7's "Wire Traffic" bar).
func (t Traffic) WireBytes() int64 { return t.OoRBytes + t.LiveBytes + t.InputBytes }

// TotalBytes sums all streams.
func (t Traffic) TotalBytes() int64 {
	return t.InstrBytes + t.TableBytes + t.OoRBytes + t.LiveBytes + t.InputBytes
}

// Result is a simulation outcome.
type Result struct {
	HW HW

	// ComputeCycles is GE execution time with off-chip latency hidden
	// (Fig. 7 red bar).
	ComputeCycles int64
	// TrafficCycles is TotalBytes at full DRAM bandwidth expressed in
	// GE cycles (the streaming bound).
	TrafficCycles int64
	// WireTrafficCycles is the wire-only traffic time (Fig. 7 blue bar).
	WireTrafficCycles int64
	// TotalCycles = max(compute, traffic) + pipeline drain.
	TotalCycles int64

	// Stall accounting within the compute phase.
	DataStallCycles int64
	BankConflicts   int64

	// IssuedPerGE counts instructions issued by each gate engine; with
	// ComputeCycles it yields per-GE utilization.
	IssuedPerGE []int64

	Traffic Traffic
	Events  Events
}

// Utilization returns the mean fraction of compute cycles in which a GE
// issued an instruction (1.0 = every engine issued every cycle).
func (r Result) Utilization() float64 {
	if r.ComputeCycles == 0 || len(r.IssuedPerGE) == 0 {
		return 0
	}
	var total int64
	for _, n := range r.IssuedPerGE {
		total += n
	}
	return float64(total) / (float64(r.ComputeCycles) * float64(len(r.IssuedPerGE)))
}

// LoadImbalance returns max/mean instructions per GE (1.0 = perfectly
// balanced streams, the §4.1 goal of the compiler's distribution step).
func (r Result) LoadImbalance() float64 {
	if len(r.IssuedPerGE) == 0 {
		return 0
	}
	var total, max int64
	for _, n := range r.IssuedPerGE {
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(r.IssuedPerGE))
	return float64(max) / mean
}

// Time converts total cycles to wall-clock seconds at the GE clock.
func (r Result) Time() time.Duration {
	return time.Duration(float64(r.TotalCycles) / r.HW.GEClock * float64(time.Second))
}

// ComputeTime and WireTrafficTime are the Fig. 7 quantities.
func (r Result) ComputeTime() time.Duration {
	return time.Duration(float64(r.ComputeCycles) / r.HW.GEClock * float64(time.Second))
}

// WireTrafficTime is the wire-stream-only time (Fig. 7 blue bar).
func (r Result) WireTrafficTime() time.Duration {
	return time.Duration(float64(r.WireTrafficCycles) / r.HW.GEClock * float64(time.Second))
}
