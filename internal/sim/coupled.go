package sim

import (
	"fmt"

	"haac/internal/compiler"
	"haac/internal/isa"
)

// Queue-coupled simulation. The headline simulator follows the paper's
// decoupling argument (§3.1.4) and reports max(compute, traffic). This
// file provides the skeptic's counter-model: finite per-GE instruction,
// table and OoRW queues, a bounded write buffer, and a DRAM streamer
// that moves a fixed byte budget per cycle, round-robin across all
// streams. GEs stall when a needed queue is empty (or the write buffer
// is full), and an out-of-range wire can only be fetched after its
// producer's value has actually drained to DRAM.
//
// If the co-design argument holds, the coupled model's runtime should
// sit close to the decoupled bound; the `coupling` bench experiment
// measures exactly that.

// QueueConfig sizes the on-chip stream buffers (entries per GE). The
// paper's design uses a 64 KB SRAM across all queues (§6.4); the
// default splits it as 2 KB instruction + 1 KB table + 1 KB OoRW per GE
// at 16 GEs.
type QueueConfig struct {
	InstrEntries int // 8 B each
	TableEntries int // 32 B each
	OoRWEntries  int // 16 B each
	WriteEntries int // pending live write-backs (16 B each)
}

// DefaultQueues matches the paper's 64 KB queue budget at 16 GEs.
func DefaultQueues() QueueConfig {
	return QueueConfig{
		InstrEntries: 256,
		TableEntries: 32,
		OoRWEntries:  64,
		WriteEntries: 64,
	}
}

// sanitize raises capacities to the minimums required for forward
// progress: an instruction can need two OoRW entries at once, and every
// queue must hold at least one entry.
func (qc QueueConfig) sanitize() QueueConfig {
	if qc.InstrEntries < 1 {
		qc.InstrEntries = 1
	}
	if qc.TableEntries < 1 {
		qc.TableEntries = 1
	}
	if qc.OoRWEntries < 2 {
		qc.OoRWEntries = 2
	}
	if qc.WriteEntries < 1 {
		qc.WriteEntries = 1
	}
	return qc
}

// CoupledResult reports the coupled-model outcome.
type CoupledResult struct {
	TotalCycles int64
	// Stall cycles by starving resource, summed over GEs.
	InstrStalls, TableStalls, OoRWStalls, WriteStalls, DataStalls int64
	// DecoupledCycles is the headline model's bound for comparison.
	DecoupledCycles int64
}

// CouplingError returns how far the decoupled bound sits below the
// coupled model, as a fraction (0.08 = coupled is 8% slower).
func (r CoupledResult) CouplingError() float64 {
	if r.DecoupledCycles == 0 {
		return 0
	}
	return float64(r.TotalCycles-r.DecoupledCycles) / float64(r.DecoupledCycles)
}

// SimulateCoupled runs the finite-queue model.
func SimulateCoupled(cp *compiler.Compiled, hw HW, qc QueueConfig) (CoupledResult, error) {
	if err := hw.Validate(); err != nil {
		return CoupledResult{}, err
	}
	if hw.NumGEs != cp.Cfg.NumGEs || hw.SWWWires != cp.Cfg.SWWWires {
		return CoupledResult{}, fmt.Errorf("sim: program/hardware mismatch")
	}
	qc = qc.sanitize()
	dec, err := Simulate(cp, hw)
	if err != nil {
		return CoupledResult{}, err
	}

	p := &cp.Program
	nge := hw.NumGEs
	andLat := hw.ANDLatency()
	bytesPerCycle := hw.DRAM.Bandwidth / hw.GEClock

	// Per-GE stream state.
	type geState struct {
		issuePtr      int // next stream index to issue
		fetchPtr      int // next stream index whose instruction is being fetched
		iq, tq, oq    int
		tablesFetched int
		oorwPtr       int // next OoRW stream entry to fetch
	}
	ges := make([]geState, nge)

	ready := make([]int64, p.MaxAddr+1)

	// DRAM availability of wires for OoR fetches: inputs are resident
	// from the start; live outputs become fetchable once drained.
	inDRAM := make([]bool, p.MaxAddr+1)
	for _, a := range p.InputAddrs {
		inDRAM[a] = true
	}

	// Write buffer: FIFO of (cycle the value completes, address).
	type wb struct {
		done int64
		addr uint32
	}
	var writeQ []wb

	// Bank model (same as the decoupled compute phase).
	nBanks := nge * hw.BanksPerGE
	slots := hw.bankSlots()
	bankUse := make([]int16, nBanks)
	var usedBanks []int32

	res := CoupledResult{DecoupledCycles: dec.TotalCycles}
	remaining := len(p.Instrs)

	// Startup: stream the input wires in before execution (the compiler
	// orchestrates this preload, §3.3).
	cycle := int64(float64(p.NumInputs*labelBytes)/bytesPerCycle) + 1

	budget := 0.0
	rr := 0 // round-robin pointer over DRAM channels
	channels := 3*nge + 1

	for remaining > 0 || len(writeQ) > 0 {
		// --- DRAM side: spend this cycle's byte budget.
		budget += bytesPerCycle
		for spent := true; spent; {
			spent = false
			for i := 0; i < channels; i++ {
				ch := (rr + i) % channels
				if ch == 3*nge { // write-back channel
					if len(writeQ) > 0 && writeQ[0].done <= cycle && budget >= labelBytes {
						inDRAM[writeQ[0].addr] = true
						writeQ = writeQ[1:]
						budget -= labelBytes
						spent = true
						rr = (ch + 1) % channels
					}
					continue
				}
				g := ch / 3
				st := &ges[g]
				switch ch % 3 {
				case 0: // instruction fetch
					if st.fetchPtr < len(cp.Streams[g]) && st.iq < qc.InstrEntries && budget >= instrBytes {
						st.fetchPtr++
						st.iq++
						budget -= instrBytes
						spent = true
						rr = (ch + 1) % channels
					}
				case 1: // table fetch
					if st.tablesFetched < cp.TablesPerGE[g] && st.tq < qc.TableEntries && budget >= tableBytes {
						st.tablesFetched++
						st.tq++
						budget -= tableBytes
						spent = true
						rr = (ch + 1) % channels
					}
				case 2: // OoR wire fetch (gated on residency)
					if st.oorwPtr < len(cp.OoRW[g]) && st.oq < qc.OoRWEntries &&
						budget >= labelBytes+oorAddrBytes &&
						inDRAM[cp.OoRW[g][st.oorwPtr]] {
						st.oorwPtr++
						st.oq++
						budget -= labelBytes + oorAddrBytes
						spent = true
						rr = (ch + 1) % channels
					}
				}
			}
		}
		if budget > 4*bytesPerCycle {
			budget = 4 * bytesPerCycle // cap accumulation: idle cycles don't bank unlimited bandwidth
		}

		// --- GE side: try to issue on every engine.
		for g := 0; g < nge; g++ {
			st := &ges[g]
			if st.issuePtr >= len(cp.Streams[g]) {
				continue
			}
			if st.iq == 0 {
				res.InstrStalls++
				continue
			}
			j := cp.Streams[g][st.issuePtr]
			in := &p.Instrs[j]

			needOoR := 0
			if in.A == isa.OoR {
				needOoR++
			}
			if in.B == isa.OoR {
				needOoR++
			}
			if needOoR > st.oq {
				res.OoRWStalls++
				continue
			}
			if in.Op == isa.AND && st.tq == 0 {
				res.TableStalls++
				continue
			}
			var t0 int64
			if in.A != isa.OoR {
				if r := ready[in.A]; r > t0 {
					t0 = r
				}
			}
			if in.B != isa.OoR {
				if r := ready[in.B]; r > t0 {
					t0 = r
				}
			}
			if t0 > cycle {
				res.DataStalls++
				continue
			}
			if in.Live && len(writeQ) >= qc.WriteEntries*nge {
				res.WriteStalls++
				continue
			}
			// Bank ports.
			conflict := false
			if in.A != isa.OoR {
				b := int32(in.A) % int32(nBanks)
				if int(bankUse[b]) >= slots {
					conflict = true
				} else {
					if bankUse[b] == 0 {
						usedBanks = append(usedBanks, b)
					}
					bankUse[b]++
				}
			}
			if !conflict && in.B != isa.OoR {
				b := int32(in.B) % int32(nBanks)
				if int(bankUse[b]) >= slots && slots > 1 {
					conflict = true
				} else {
					if bankUse[b] == 0 {
						usedBanks = append(usedBanks, b)
					}
					bankUse[b]++
				}
			}
			if conflict {
				continue
			}

			// Issue.
			lat := int64(XORLatencyCycles)
			if in.Op == isa.AND {
				lat = andLat
				st.tq--
			}
			st.oq -= needOoR
			st.iq--
			st.issuePtr++
			done := cycle + lat
			if !hw.Forwarding {
				done += writeBackPenalty
			}
			ready[p.OutAddrs[j]] = done
			if in.Live {
				writeQ = append(writeQ, wb{done: done, addr: p.OutAddrs[j]})
			}
			remaining--
		}
		for _, b := range usedBanks {
			bankUse[b] = 0
		}
		usedBanks = usedBanks[:0]
		cycle++
	}
	res.TotalCycles = cycle + andLat
	return res, nil
}

// XORLatencyCycles is the FreeXOR unit latency (§3.2).
const XORLatencyCycles = 1
