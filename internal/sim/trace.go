package sim

import (
	"fmt"
	"strings"

	"haac/internal/compiler"
)

// Execution tracing: a bucketized per-GE occupancy timeline, rendered as
// an ASCII heatmap. Makes schedule pathologies visible at a glance —
// a depth-first baseline shows long pale stripes (stalled engines),
// a reordered program shows dense dark columns.

// Trace holds issue-density samples for each gate engine.
type Trace struct {
	// CyclesPerBucket is the time quantum of one column.
	CyclesPerBucket int64
	// Occupancy[g][b] is the fraction of bucket b's cycles in which GE g
	// issued an instruction.
	Occupancy [][]float32
}

// SimulateTraced is Simulate plus an occupancy trace with the requested
// number of time buckets (min 1).
func SimulateTraced(cp *compiler.Compiled, hw HW, buckets int) (Result, *Trace, error) {
	if buckets < 1 {
		buckets = 1
	}
	// First pass to learn the compute length (cheap relative to
	// analysis value; programs simulate at tens of millions of
	// instructions per second).
	res, err := Simulate(cp, hw)
	if err != nil {
		return Result{}, nil, err
	}
	per := res.ComputeCycles / int64(buckets)
	if per < 1 {
		per = 1
	}
	tr := &Trace{
		CyclesPerBucket: per,
		Occupancy:       make([][]float32, hw.NumGEs),
	}
	counts := make([][]int32, hw.NumGEs)
	nb := int(res.ComputeCycles/per) + 1
	for g := range counts {
		counts[g] = make([]int32, nb)
		tr.Occupancy[g] = make([]float32, nb)
	}
	res2 := Result{HW: hw}
	res2.computePhaseTraced(cp, func(g int, cycle int64) {
		b := int(cycle / per)
		if b >= nb {
			b = nb - 1
		}
		counts[g][b]++
	})
	for g := range counts {
		for b := range counts[g] {
			tr.Occupancy[g][b] = float32(counts[g][b]) / float32(per)
		}
	}
	return res, tr, nil
}

// Render draws the trace as an ASCII heatmap, one row per GE.
func (t *Trace) Render() string {
	shades := []byte(" .:-=+*#%@")
	var b strings.Builder
	fmt.Fprintf(&b, "GE occupancy (%d cycles/column; ' '=idle, '@'=issuing every cycle)\n", t.CyclesPerBucket)
	for g, row := range t.Occupancy {
		fmt.Fprintf(&b, "GE%-3d |", g)
		for _, v := range row {
			idx := int(v * float32(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
		}
		b.WriteString("|\n")
	}
	return b.String()
}
