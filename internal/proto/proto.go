// Package proto runs the two-party garbled-circuits protocol over any
// net.Conn-like transport: the Garbler garbles and streams tables while
// the Evaluator consumes them, with the evaluator's input labels
// delivered by oblivious transfer. This is the repository's stand-in for
// the EMP Toolkit 2PC runtime the paper builds on.
//
// Wire format (little-endian):
//
//	header:  magic u32 | version u8 | otProto u8 | nGates u64 | nWires u64 |
//	         nGarbler u32 | nEval u32 | hasConst u8 | nOutputs u32 | nTables u64
//	labels:  16 bytes each
//	tables:  32 bytes each, streamed in gate order
//	decode:  one byte per output bit (0/1)
//	result:  one byte per output bit, sent back by the evaluator
//
// Both parties must hold the same circuit; the header fields are checked
// so mismatched circuits fail fast instead of producing garbage.
package proto

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"haac/internal/circuit"
	"haac/internal/gc"
	"haac/internal/label"
	"haac/internal/ot"
)

const (
	magic   = 0x48414143 // "HAAC"
	version = 1
)

// Options configures a protocol run.
type Options struct {
	// Hasher is the garbling hash; both parties must agree. Defaults to
	// the paper's re-keyed construction.
	Hasher gc.Hasher
	// OT selects the oblivious-transfer protocol (default ot.DH).
	OT ot.Protocol
	// Seed seeds the garbler's deterministic label source when nonzero;
	// zero draws a random seed. Tests use fixed seeds.
	Seed uint64
	// Stats, when non-nil, collects transfer metrics for the run.
	Stats *Stats
	// Workers sets the width of the parallel garbling/evaluation engine.
	// 0 or 1 keeps the classic sequential path (unless Pipelined is set,
	// where 0 means one worker per CPU); > 1 garbles and evaluates with
	// gc.ParallelGarble / gc.ParallelEval.
	Workers int
	// Pipelined overlaps garbling, table transfer and evaluation: the
	// garbler streams each dependence level's tables as the worker pool
	// finishes them while the evaluator consumes tables concurrently
	// with evaluation — the software analogue of HAAC's table queues.
	// The wire format is unchanged, so a pipelined party interoperates
	// with a sequential peer.
	Pipelined bool
	// Plan, when non-nil, must be a plan compiled from the same circuit
	// passed to RunGarbler/RunEvaluator; the run then executes over the
	// plan's compact slot arena and cached schedule (in whichever mode
	// Workers/Pipelined select) instead of dense per-run wire arrays.
	// Share one plan across runs to amortize schedule construction and
	// renaming. The wire format is unchanged.
	Plan *circuit.Plan
	// Integrity wraps the run's entire byte stream — both directions —
	// in length+CRC32C frames (see FramedConn), so transport corruption
	// surfaces as a typed ErrIntegrity instead of garbage outputs. Both
	// parties must agree: the serving layer negotiates it in its
	// handshake; one-shot callers coordinate out of band. Off by default,
	// keeping the legacy byte-identical wire.
	Integrity bool
}

func (o *Options) fill() error {
	if o.Hasher == nil {
		o.Hasher = gc.RekeyedHasher{}
	}
	if o.Seed == 0 {
		l, err := label.Rand()
		if err != nil {
			return err
		}
		o.Seed = l.Lo
	}
	return nil
}

type header struct {
	Magic    uint32
	Version  uint8
	OTProto  uint8
	NGates   uint64
	NWires   uint64
	NGarbler uint32
	NEval    uint32
	HasConst uint8
	NOutputs uint32
	NTables  uint64
}

// headerSize is the wire size of the packed header.
const headerSize = 43

// encode packs the header into b (len >= headerSize), byte-identical to
// binary.Write of the struct — TestHeaderCodecMatchesBinary pins the
// equivalence. The manual codec exists so the reusable protocol
// sessions can frame runs without binary's per-call reflection
// allocations.
func (h *header) encode(b []byte) {
	le := binary.LittleEndian
	le.PutUint32(b[0:], h.Magic)
	b[4] = h.Version
	b[5] = h.OTProto
	le.PutUint64(b[6:], h.NGates)
	le.PutUint64(b[14:], h.NWires)
	le.PutUint32(b[22:], h.NGarbler)
	le.PutUint32(b[26:], h.NEval)
	b[30] = h.HasConst
	le.PutUint32(b[31:], h.NOutputs)
	le.PutUint64(b[35:], h.NTables)
}

// decodeHeader unpacks a header encoded by encode / binary.Write.
func decodeHeader(b []byte) header {
	le := binary.LittleEndian
	return header{
		Magic:    le.Uint32(b[0:]),
		Version:  b[4],
		OTProto:  b[5],
		NGates:   le.Uint64(b[6:]),
		NWires:   le.Uint64(b[14:]),
		NGarbler: le.Uint32(b[22:]),
		NEval:    le.Uint32(b[26:]),
		HasConst: b[30],
		NOutputs: le.Uint32(b[31:]),
		NTables:  le.Uint64(b[35:]),
	}
}

// checkHeader validates a run header received off the wire against the
// local circuit. Every failure is typed ErrMalformedFrame: the header
// either is not a HAAC frame at all (magic/version/OT byte) or
// contradicts the circuit the parties agreed on — on a digest-verified
// session the latter can only mean stream corruption, so a retrying
// client treats both as transport damage.
func checkHeader(h header, c *circuit.Circuit) error {
	return checkHeaderWant(h, headerFor(c, Options{}))
}

// checkHeaderWant is checkHeader against a precomputed expected header
// (the session path keeps one per connection so validation stays
// allocation- and scan-free per run). want's OTProto is ignored: the
// garbler picks the OT protocol and the evaluator follows, as long as
// the byte names a protocol that exists.
func checkHeaderWant(h, want header) error {
	if h.Magic != magic {
		return fmt.Errorf("proto: %w: bad header magic %#x", ErrMalformedFrame, h.Magic)
	}
	if h.Version != version {
		return fmt.Errorf("proto: %w: header version %d, want %d", ErrMalformedFrame, h.Version, version)
	}
	switch ot.Protocol(h.OTProto) {
	case ot.DH, ot.Insecure, ot.IKNP, ot.Pooled:
	default:
		return fmt.Errorf("proto: %w: unknown OT protocol %d", ErrMalformedFrame, h.OTProto)
	}
	want.OTProto = h.OTProto
	if h != want {
		return fmt.Errorf("proto: %w: circuit mismatch: got %+v, want %+v", ErrMalformedFrame, h, want)
	}
	return nil
}

func headerFor(c *circuit.Circuit, opts Options) header {
	and, _, _ := c.CountOps()
	h := header{
		Magic:    magic,
		Version:  version,
		OTProto:  uint8(opts.OT),
		NGates:   uint64(len(c.Gates)),
		NWires:   uint64(c.NumWires),
		NGarbler: uint32(c.GarblerInputs),
		NEval:    uint32(c.EvaluatorInputs),
		NOutputs: uint32(len(c.Outputs)),
		NTables:  uint64(and),
	}
	if c.HasConst {
		h.HasConst = 1
	}
	return h
}

// sendActiveInputs writes the garbler's active labels and, if present,
// the constant labels in wire order: every label is encoded into one
// pooled slab and shipped with a single Write.
func sendActiveInputs(w *bufio.Writer, c *circuit.Circuit, zeros []label.L, r label.L, garblerBits []bool) error {
	n := len(garblerBits)
	if c.HasConst {
		n += 2
	}
	if n == 0 {
		return nil
	}
	bp := getSlab(n * label.Size)
	defer putSlab(bp)
	slab := (*bp)[:n*label.Size]
	for i, v := range garblerBits {
		l := zeros[i]
		if v {
			l = l.Xor(r)
		}
		l.Put(slab[i*label.Size:])
	}
	if c.HasConst {
		zeros[c.Const0].Put(slab[len(garblerBits)*label.Size:])
		zeros[c.Const1].Xor(r).Put(slab[(len(garblerBits)+1)*label.Size:])
	}
	if _, err := w.Write(slab); err != nil {
		return wrapPeer("sending garbler labels", err)
	}
	return nil
}

// sendEvalLabels runs the sender side of the OT that delivers the
// evaluator's input labels.
func sendEvalLabels(conn io.ReadWriter, c *circuit.Circuit, zeros []label.L, r label.L, otp ot.Protocol) error {
	if c.EvaluatorInputs == 0 {
		return nil
	}
	pairs := make([]ot.Pair, c.EvaluatorInputs)
	off := c.GarblerInputs
	for i := range pairs {
		pairs[i] = ot.Pair{M0: zeros[off+i], M1: zeros[off+i].Xor(r)}
	}
	if err := ot.Send(conn, otp, pairs); err != nil {
		return wrapPeer("OT", err)
	}
	return nil
}

// writeTables streams a chunk of the gate-order table stream,
// slab-encoding up to slabTables tables per Write.
func writeTables(w *bufio.Writer, tables []gc.Material) error {
	bp := getSlab(slabBytes)
	defer putSlab(bp)
	slab := *bp
	for off := 0; off < len(tables); off += slabTables {
		end := off + slabTables
		if end > len(tables) {
			end = len(tables)
		}
		n := gc.EncodeMaterials(slab, tables[off:end])
		if _, err := w.Write(slab[:n]); err != nil {
			return wrapPeer("streaming tables", err)
		}
	}
	return nil
}

// finishGarbler sends the decode bits and collects the evaluator's
// plaintext result.
func finishGarbler(conn io.ReadWriter, w *bufio.Writer, c *circuit.Circuit, garbled *gc.Garbled) ([]bool, error) {
	for _, d := range garbled.DecodeBits() {
		if err := w.WriteByte(byte(d)); err != nil {
			return nil, wrapPeer("sending decode bits", err)
		}
	}
	if err := w.Flush(); err != nil {
		return nil, wrapPeer("sending decode bits", err)
	}
	res := make([]byte, len(c.Outputs))
	if _, err := io.ReadFull(conn, res); err != nil {
		return nil, wrapPeer("reading result", err)
	}
	out := make([]bool, len(res))
	for i, b := range res {
		out[i] = b == 1
	}
	return out, nil
}

// RunGarbler executes the garbler role end to end and returns the
// plaintext outputs reported back by the evaluator. Options select the
// engine: sequential streaming (default), offline parallel (Workers > 1)
// or level-pipelined parallel (Pipelined).
func RunGarbler(conn io.ReadWriter, c *circuit.Circuit, garblerBits []bool, opts Options) ([]bool, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if len(garblerBits) != c.GarblerInputs {
		return nil, fmt.Errorf("proto: got %d garbler bits, want %d", len(garblerBits), c.GarblerInputs)
	}
	if opts.Plan != nil && opts.Plan.Circuit != c {
		return nil, fmt.Errorf("proto: Options.Plan was compiled from a different circuit")
	}
	conn = instrument(conn, &opts)
	if opts.Integrity {
		conn = NewFramedConn(conn)
	}
	opts.Stats.begin()
	defer opts.Stats.end()
	w := bufio.NewWriterSize(conn, 1<<16)

	h := headerFor(c, opts)
	var hb [headerSize]byte
	h.encode(hb[:])
	if _, err := w.Write(hb[:]); err != nil {
		return nil, wrapPeer("writing header", err)
	}

	if opts.Plan != nil {
		return garblerPlanned(conn, w, c, garblerBits, opts)
	}
	if opts.Pipelined {
		return garblerPipelined(conn, w, c, garblerBits, opts)
	}
	if opts.Workers > 1 {
		return garblerOffline(conn, w, c, garblerBits, opts)
	}

	sg, err := gc.NewStreamGarbler(c, opts.Hasher, label.NewSource(opts.Seed))
	if err != nil {
		return nil, err
	}
	zeros := sg.InputZeros()
	r := sg.R()

	if err := sendActiveInputs(w, c, zeros, r, garblerBits); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, wrapPeer("flushing stream", err)
	}
	if err := sendEvalLabels(conn, c, zeros, r, opts.OT); err != nil {
		return nil, err
	}

	// Stream tables gate by gate, batching slabTables of them into one
	// pooled slab per Write so the steady-state loop never allocates.
	bp := getSlab(slabBytes)
	slab := *bp
	fill := 0
	for {
		m, ok := sg.Next()
		if !ok {
			break
		}
		m.TG.Put(slab[fill:])
		m.TE.Put(slab[fill+label.Size:])
		fill += gc.MaterialSize
		if fill+gc.MaterialSize > slabBytes {
			if _, err := w.Write(slab[:fill]); err != nil {
				putSlab(bp)
				return nil, wrapPeer("streaming tables", err)
			}
			fill = 0
		}
	}
	if fill > 0 {
		if _, err := w.Write(slab[:fill]); err != nil {
			putSlab(bp)
			return nil, wrapPeer("streaming tables", err)
		}
	}
	putSlab(bp)
	return finishGarbler(conn, w, c, sg.Finish())
}

// garblerOffline garbles the whole circuit with the parallel engine
// before any label leaves the machine, then bulk-streams the result —
// the paper's "offline phase to completion" baseline.
func garblerOffline(conn io.ReadWriter, w *bufio.Writer, c *circuit.Circuit, garblerBits []bool, opts Options) ([]bool, error) {
	garbled, err := gc.ParallelGarble(c, opts.Hasher, label.NewSource(opts.Seed), opts.Workers)
	if err != nil {
		return nil, err
	}
	if err := sendActiveInputs(w, c, garbled.InputZeros, garbled.R, garblerBits); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, wrapPeer("flushing stream", err)
	}
	if err := sendEvalLabels(conn, c, garbled.InputZeros, garbled.R, opts.OT); err != nil {
		return nil, err
	}
	if err := writeTables(w, garbled.Tables); err != nil {
		return nil, err
	}
	return finishGarbler(conn, w, c, garbled)
}

// RunEvaluator executes the evaluator role and returns the plaintext
// outputs (also reported back to the garbler).
func RunEvaluator(conn io.ReadWriter, c *circuit.Circuit, evalBits []bool, opts Options) ([]bool, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if len(evalBits) != c.EvaluatorInputs {
		return nil, fmt.Errorf("proto: got %d evaluator bits, want %d", len(evalBits), c.EvaluatorInputs)
	}
	if opts.Plan != nil && opts.Plan.Circuit != c {
		return nil, fmt.Errorf("proto: Options.Plan was compiled from a different circuit")
	}
	conn = instrument(conn, &opts)
	if opts.Integrity {
		conn = NewFramedConn(conn)
	}
	opts.Stats.begin()
	defer opts.Stats.end()
	rd := bufio.NewReaderSize(conn, 1<<16)

	var hb [headerSize]byte
	if _, err := io.ReadFull(rd, hb[:]); err != nil {
		return nil, wrapPeer("reading header", err)
	}
	h := decodeHeader(hb[:])
	if err := checkHeader(h, c); err != nil {
		return nil, err
	}

	// All fixed-position labels (garbler inputs, then the two constants)
	// arrive in one slab read and decode in bulk.
	inputs := make([]label.L, c.NumInputs())
	nFixed := c.GarblerInputs
	if c.HasConst {
		nFixed += 2
	}
	if nFixed > 0 {
		bp := getSlab(nFixed * label.Size)
		slab := (*bp)[:nFixed*label.Size]
		if _, err := io.ReadFull(rd, slab); err != nil {
			putSlab(bp)
			return nil, wrapPeer("reading garbler labels", err)
		}
		label.DecodeSlice(inputs[:c.GarblerInputs], slab)
		if c.HasConst {
			inputs[c.Const0] = label.FromBytes(slab[c.GarblerInputs*label.Size:])
			inputs[c.Const1] = label.FromBytes(slab[(c.GarblerInputs+1)*label.Size:])
		}
		putSlab(bp)
	}

	if c.EvaluatorInputs > 0 {
		// OT happens on the raw conn; everything buffered so far has
		// been consumed (header + labels are fixed-size). Choices travel
		// packed: IKNP consumes the bitset words directly.
		got, err := ot.ReceiveBitset(readWriter{rd, conn}, ot.Protocol(h.OTProto), ot.BitsetFromBools(evalBits))
		if err != nil {
			return nil, wrapPeer("OT", err)
		}
		copy(inputs[c.GarblerInputs:], got)
	}

	var outLabels []label.L
	var err error
	switch {
	case opts.Pipelined:
		outLabels, err = evalPipelined(rd, c, inputs, int(h.NTables), opts)
	case opts.Plan != nil:
		outLabels, err = evalPlanned(rd, c, inputs, int(h.NTables), opts)
	case opts.Workers > 1:
		outLabels, err = evalOffline(rd, c, inputs, int(h.NTables), opts)
	default:
		outLabels, err = evalSequential(rd, c, inputs, opts)
	}
	if err != nil {
		return nil, err
	}

	decode := make([]byte, len(c.Outputs))
	if _, err := io.ReadFull(rd, decode); err != nil {
		return nil, wrapPeer("reading decode bits", err)
	}
	result := make([]bool, len(outLabels))
	res := make([]byte, len(outLabels))
	for i, l := range outLabels {
		v := l.Colour() ^ int(decode[i])
		result[i] = v == 1
		res[i] = byte(v)
	}
	if _, err := conn.Write(res); err != nil {
		return nil, wrapPeer("sending result", err)
	}
	return result, nil
}

// readWriter pairs the buffered reader with the raw writer so OT can run
// mid-stream without losing buffered bytes.
type readWriter struct {
	io.Reader
	io.Writer
}
