package proto

import (
	"bufio"
	"io"
	"sync"

	"haac/internal/circuit"
	"haac/internal/gc"
	"haac/internal/label"
)

// Pipelined 2PC: the garbler runs the level-parallel engine and flushes
// each dependence level's tables to the wire the moment the worker pool
// finishes them, while the evaluator's reader goroutine pulls tables off
// the wire concurrently with level-parallel evaluation. Garbling,
// transfer and evaluation overlap exactly like the paper's table-queue
// design; the byte stream is identical to the sequential path, so either
// side can be pipelined independently of its peer.

// garblerPipelined implements RunGarbler's Pipelined mode. The header has
// already been written to w.
func garblerPipelined(conn io.ReadWriter, w *bufio.Writer, c *circuit.Circuit, garblerBits []bool, opts Options) ([]bool, error) {
	lg, err := gc.NewLevelGarbler(c, opts.Hasher, label.NewSource(opts.Seed), opts.Workers)
	if err != nil {
		return nil, err
	}
	if err := sendActiveInputs(w, c, lg.InputZeros(), lg.R(), garblerBits); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, wrapPeer("flushing stream", err)
	}

	// Garble on a separate goroutine from here on: levels complete (and
	// queue up) while the interactive OT below is still in flight.
	type garbleResult struct {
		garbled *gc.Garbled
		err     error
	}
	chunks := make(chan []gc.Material, 64)
	done := make(chan garbleResult, 1)
	go func() {
		garbled, err := lg.Run(func(tables []gc.Material) error {
			chunks <- tables
			return nil
		})
		close(chunks)
		done <- garbleResult{garbled, err}
	}()
	// abort drains the garbling goroutine before surfacing an error so
	// it never blocks forever on the chunk channel.
	abort := func(err error) ([]bool, error) {
		for range chunks {
		}
		<-done
		return nil, err
	}

	if err := sendEvalLabels(conn, c, lg.InputZeros(), lg.R(), opts.OT); err != nil {
		return abort(err)
	}

	// Drain the table queue onto the wire. Each chunk is flushed so the
	// evaluator can start on a level while later levels are still being
	// garbled.
	for tables := range chunks {
		if err := writeTables(w, tables); err != nil {
			return abort(err)
		}
		if err := w.Flush(); err != nil {
			return abort(wrapPeer("flushing stream", err))
		}
	}
	res := <-done
	if res.err != nil {
		return nil, res.err
	}
	return finishGarbler(conn, w, c, res.garbled)
}

// evalSequential is the classic streaming evaluator. Tables are pulled
// off the wire a slab at a time — the garbler commits to the whole
// stream before it needs any response, so bulk reads cannot deadlock —
// and decoded in batches through pooled scratch.
func evalSequential(rd *bufio.Reader, c *circuit.Circuit, inputs []label.L, opts Options) ([]label.L, error) {
	se, err := gc.NewStreamEvaluator(c, opts.Hasher, inputs)
	if err != nil {
		return nil, err
	}
	and, _, _ := c.CountOps()
	bp := getSlab(slabBytes)
	defer putSlab(bp)
	mp := getMaterials()
	defer putMaterials(mp)
	slab, ms := *bp, *mp
	for consumed := 0; consumed < and; {
		n := and - consumed
		if n > slabTables {
			n = slabTables
		}
		if _, err := io.ReadFull(rd, slab[:n*gc.MaterialSize]); err != nil {
			return nil, wrapPeer("reading tables", err)
		}
		gc.DecodeMaterials(ms[:n], slab)
		for i := 0; i < n; i++ {
			if err := se.Feed(ms[i]); err != nil {
				return nil, err
			}
		}
		consumed += n
	}
	return se.Outputs()
}

// evalOffline reads the whole table stream into memory slab by slab,
// then evaluates it with the parallel engine. The table buffer comes
// from the arena pool: repeated runs reuse it instead of allocating.
func evalOffline(rd *bufio.Reader, c *circuit.Circuit, inputs []label.L, nTables int, opts Options) ([]label.L, error) {
	arena, tables := getArena(nTables)
	// ParallelEval does not retain the tables once it returns.
	defer putArena(arena)
	bp := getSlab(slabBytes)
	defer putSlab(bp)
	got := 0
	if err := readTableStream(rd, *bp, tables, &got, nTables); err != nil {
		return nil, err
	}
	return gc.ParallelEval(c, opts.Hasher, inputs, tables, opts.Workers)
}

// evalPipelined overlaps table transfer with evaluation: a reader
// goroutine appends tables to a shared buffer as they arrive and the
// level-parallel evaluator blocks only until the watermark its next
// level needs has landed.
func evalPipelined(rd *bufio.Reader, c *circuit.Circuit, inputs []label.L, nTables int, opts Options) ([]label.L, error) {
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	// The stream's backing store is a pooled arena slab; every return
	// path joins the reader goroutine first, so releasing it on exit is
	// safe.
	arena, backing := getArena(nTables)
	defer putArena(arena)
	tables := backing[:0]
	var readErr error

	go func() {
		// Adaptive batching: block for one table so pipeline latency is
		// preserved, then drain whatever else has already landed in the
		// read buffer in the same slab — bursts (a whole flushed level)
		// decode in bulk, trickles pass through table by table. Decoding
		// targets the not-yet-published tail of the backing array, so it
		// runs outside the lock.
		full := backing
		bp := getSlab(slabBytes)
		defer putSlab(bp)
		slab := *bp
		for got := 0; got < nTables; {
			n := 1
			if avail := rd.Buffered() / gc.MaterialSize; avail > n {
				n = avail
			}
			if rem := nTables - got; n > rem {
				n = rem
			}
			if n > slabTables {
				n = slabTables
			}
			if _, err := io.ReadFull(rd, slab[:n*gc.MaterialSize]); err != nil {
				mu.Lock()
				readErr = wrapPeer("reading tables", err)
				cond.Broadcast()
				mu.Unlock()
				return
			}
			gc.DecodeMaterials(full[got:got+n], slab)
			got += n
			mu.Lock()
			tables = full[:got]
			cond.Broadcast()
			mu.Unlock()
		}
	}()

	need := func(n int) ([]gc.Material, error) {
		mu.Lock()
		defer mu.Unlock()
		for len(tables) < n && readErr == nil {
			cond.Wait()
		}
		if len(tables) < n {
			return nil, readErr
		}
		return tables[:len(tables):len(tables)], nil
	}
	var out []label.L
	var evalErr error
	if opts.Plan != nil {
		pe := gc.NewPlanEvaluator(opts.Plan, opts.Hasher, opts.Workers)
		defer pe.Close()
		out, evalErr = pe.EvalStream(inputs, need)
	} else {
		out, evalErr = gc.ParallelEvalStream(c, opts.Hasher, inputs, opts.Workers, need)
	}

	// Join the reader before the caller touches rd again (the decode
	// bits follow the tables on the same stream).
	mu.Lock()
	for len(tables) < nTables && readErr == nil {
		cond.Wait()
	}
	re := readErr
	mu.Unlock()

	if evalErr != nil {
		return nil, evalErr
	}
	if re != nil {
		return nil, re
	}
	return out, nil
}
