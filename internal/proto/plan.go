package proto

import (
	"bufio"
	"io"

	"haac/internal/circuit"
	"haac/internal/gc"
	"haac/internal/label"
)

// Plan-based protocol paths: when Options.Plan carries a precompiled
// circuit.Plan, both roles execute over the plan's compact slot arena
// and cached schedule instead of dense per-run wire arrays — repeated
// runs of one circuit amortize schedule construction and renaming
// entirely. The byte stream is identical to the dense paths (tables in
// gate order, same labels), so a planned party interoperates with a
// dense peer, pipelined or not.

// planWorkers resolves Options.Workers for the plan engines: outside
// pipelined mode 0 means sequential (matching the dense paths, where
// only Pipelined defaults to one worker per CPU).
func planWorkers(opts Options) int {
	if opts.Workers <= 0 && !opts.Pipelined {
		return 1
	}
	return opts.Workers
}

// garblerPlanned implements RunGarbler for all engine modes over a
// precompiled plan. The header has already been written to w.
func garblerPlanned(conn io.ReadWriter, w *bufio.Writer, c *circuit.Circuit, garblerBits []bool, opts Options) ([]bool, error) {
	pg := gc.NewPlanGarbler(opts.Plan, opts.Hasher, planWorkers(opts))
	defer pg.Close()
	pg.Begin(label.NewSource(opts.Seed))

	if err := sendActiveInputs(w, c, pg.InputZeros(), pg.R(), garblerBits); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, wrapPeer("flushing stream", err)
	}

	if opts.Pipelined {
		// Garble on a separate goroutine so levels complete while the
		// interactive OT is in flight, flushing each chunk — the same
		// overlap structure as the dense pipelined path.
		type garbleResult struct {
			garbled *gc.Garbled
			err     error
		}
		chunks := make(chan []gc.Material, 64)
		done := make(chan garbleResult, 1)
		go func() {
			garbled, err := pg.Run(func(tables []gc.Material) error {
				chunks <- tables
				return nil
			})
			close(chunks)
			done <- garbleResult{garbled, err}
		}()
		abort := func(err error) ([]bool, error) {
			for range chunks {
			}
			<-done
			return nil, err
		}

		if err := sendEvalLabels(conn, c, pg.InputZeros(), pg.R(), opts.OT); err != nil {
			return abort(err)
		}
		for tables := range chunks {
			if err := writeTables(w, tables); err != nil {
				return abort(err)
			}
			if err := w.Flush(); err != nil {
				return abort(wrapPeer("flushing stream", err))
			}
		}
		res := <-done
		if res.err != nil {
			return nil, res.err
		}
		return finishGarbler(conn, w, c, res.garbled)
	}

	// Sequential / offline-parallel: OT first, then garble with each
	// completed level's tables streamed through the buffered writer —
	// the same bytes as the dense sequential table stream.
	if err := sendEvalLabels(conn, c, pg.InputZeros(), pg.R(), opts.OT); err != nil {
		return nil, err
	}
	garbled, err := pg.Run(func(tables []gc.Material) error {
		return writeTables(w, tables)
	})
	if err != nil {
		return nil, err
	}
	return finishGarbler(conn, w, c, garbled)
}

// evalPlanned implements RunEvaluator's non-pipelined plan modes: the
// plan evaluator pulls tables off the wire level watermark by level
// watermark through one pooled arena and slab.
func evalPlanned(rd *bufio.Reader, c *circuit.Circuit, inputs []label.L, nTables int, opts Options) ([]label.L, error) {
	pe := gc.NewPlanEvaluator(opts.Plan, opts.Hasher, planWorkers(opts))
	defer pe.Close()
	arena, tables := getArena(nTables)
	defer putArena(arena)
	bp := getSlab(slabBytes)
	defer putSlab(bp)
	slab := *bp

	got := 0
	out, err := pe.EvalStream(inputs, func(n int) ([]gc.Material, error) {
		if err := readTableStream(rd, slab, tables, &got, n); err != nil {
			return nil, err
		}
		return tables[:got], nil
	})
	if err != nil {
		return nil, err
	}
	// The final watermark covers the whole stream whenever the circuit
	// has AND gates, but keep the stream position honest regardless —
	// the decode bits follow the tables on the same connection.
	if err := readTableStream(rd, slab, tables, &got, nTables); err != nil {
		return nil, err
	}
	return out, nil
}
