package proto

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"runtime"
	"testing"

	"haac/internal/gc"
	"haac/internal/label"
	"haac/internal/ot"
	"haac/internal/workloads"
)

// Allocation-regression suite for the steady-state hot loops. These pin
// the PR's zero-allocation transport property with testing.AllocsPerRun
// instead of wall-clock assertions (single-CPU CI makes timing
// meaningless, allocation counts are exact). Under the race detector
// sync.Pool stops caching, so the counts are only asserted without it.

// skipUnderRace skips allocation-count assertions when the race
// detector inflates them.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
}

// TestWriteTablesNoSteadyStateAllocs: slab-encoded table streaming must
// not allocate per table — and the count must not grow with the batch.
func TestWriteTablesNoSteadyStateAllocs(t *testing.T) {
	skipUnderRace(t)
	w := bufio.NewWriterSize(io.Discard, 1<<16)
	measure := func(n int) float64 {
		tables := make([]gc.Material, n)
		// Warm the pool so the first Get is not counted.
		if err := writeTables(w, tables[:1]); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(50, func() {
			if err := writeTables(w, tables); err != nil {
				t.Fatal(err)
			}
			w.Flush()
		})
	}
	small := measure(1000)
	large := measure(4000)
	if small > 0.5 || large > 0.5 {
		t.Fatalf("writeTables allocates in steady state: %.1f (1000 tables), %.1f (4000 tables)", small, large)
	}
}

// TestSendActiveInputsNoSteadyStateAllocs: the input-label block is one
// pooled slab regardless of input width.
func TestSendActiveInputsNoSteadyStateAllocs(t *testing.T) {
	skipUnderRace(t)
	w := bufio.NewWriterSize(io.Discard, 1<<20)
	c := workloads.AddN(64).Build()
	zeros := make([]label.L, c.NumInputs())
	bits := make([]bool, c.GarblerInputs)
	r := label.L{Lo: 1}
	if err := sendActiveInputs(w, c, zeros, r, bits); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(50, func() {
		if err := sendActiveInputs(w, c, zeros, r, bits); err != nil {
			t.Fatal(err)
		}
		w.Flush()
	}); avg > 0.5 {
		t.Fatalf("sendActiveInputs allocates %.1f times in steady state", avg)
	}
}

// TestGarbleEvalSteadyStateAllocs: with the batched fixed-key hasher the
// whole garble and eval tight loops allocate O(1) per circuit — a
// per-gate allocation on a ~1k-AND circuit would add thousands.
func TestGarbleEvalSteadyStateAllocs(t *testing.T) {
	skipUnderRace(t)
	w := workloads.DotProduct(4, 16)
	c := w.Build()
	and, _, _ := c.CountOps()
	if and < 500 {
		t.Fatalf("workload too small to detect per-gate allocations (%d ANDs)", and)
	}
	h := gc.NewFixedKeyHasher([16]byte{3})

	garbled, err := gc.Garble(c, h, label.NewSource(7))
	if err != nil {
		t.Fatal(err)
	}
	g, e := w.Inputs(5)
	inputs, err := garbled.EncodeInputs(c, g, e)
	if err != nil {
		t.Fatal(err)
	}

	// Garble loop: construction allocates (wire arrays), Next must not.
	garbleAllocs := testing.AllocsPerRun(10, func() {
		sg, err := gc.NewStreamGarbler(c, h, label.NewSource(7))
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, ok := sg.Next(); !ok {
				break
			}
		}
	})
	if garbleAllocs > 50 {
		t.Fatalf("garble loop allocates %.0f times for %d ANDs (want O(1) per circuit)", garbleAllocs, and)
	}

	evalAllocs := testing.AllocsPerRun(10, func() {
		se, err := gc.NewStreamEvaluator(c, h, inputs)
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		for se.NeedTable() {
			if err := se.Feed(garbled.Tables[i]); err != nil {
				t.Fatal(err)
			}
			i++
		}
		if _, err := se.Outputs(); err != nil {
			t.Fatal(err)
		}
	})
	if evalAllocs > 50 {
		t.Fatalf("eval loop allocates %.0f times for %d ANDs (want O(1) per circuit)", evalAllocs, and)
	}
}

// TestRekeyed2PCSteadyStateAllocs: a full two-party run under the
// paper's re-keyed hasher stays O(1) allocations per circuit now that
// key schedules live in pooled scratch — before the schedule-reuse
// rewrite this path paid one crypto/aes cipher allocation per hash
// (~18 allocations per table on this workload).
func TestRekeyed2PCSteadyStateAllocs(t *testing.T) {
	skipUnderRace(t)
	w := workloads.DotProduct(4, 16)
	c := w.Build()
	and, _, _ := c.CountOps()
	g, e := w.Inputs(5)
	opts := Options{OT: ot.Insecure, Seed: 7} // default hasher: rekeyed

	run := func() {
		ga, ev := net.Pipe()
		errc := make(chan error, 1)
		go func() {
			_, err := RunGarbler(ga, c, g, opts)
			errc <- err
		}()
		if _, err := RunEvaluator(ev, c, e, opts); err != nil {
			t.Fatal(err)
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
		ga.Close()
		ev.Close()
	}
	run() // warm pools

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const reps = 5
	for i := 0; i < reps; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	perTable := float64(after.Mallocs-before.Mallocs) / reps / float64(and)
	// Per-run overhead (pipe, goroutine, wire arrays) is O(1); a
	// per-hash allocation regression puts this at >= 2.
	if perTable > 0.5 {
		t.Fatalf("rekeyed 2PC allocates %.2f times per table (%d ANDs; want hashing allocation-free)", perTable, and)
	}
}

// TestEvalSequentialTableReadAllocs: the evaluator's batched table
// reader allocates O(1) per stream, independent of table count.
func TestEvalSequentialTableReadAllocs(t *testing.T) {
	skipUnderRace(t)
	w := workloads.DotProduct(4, 16)
	c := w.Build()
	h := gc.NewFixedKeyHasher([16]byte{3})
	garbled, err := gc.Garble(c, h, label.NewSource(7))
	if err != nil {
		t.Fatal(err)
	}
	g, e := w.Inputs(5)
	inputs, err := garbled.EncodeInputs(c, g, e)
	if err != nil {
		t.Fatal(err)
	}
	stream := make([]byte, gc.MaterialSize*len(garbled.Tables))
	gc.EncodeMaterials(stream, garbled.Tables)
	opts := Options{Hasher: h}

	// Warm pools.
	if _, err := evalSequential(bufio.NewReader(bytes.NewReader(stream)), c, inputs, opts); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := evalSequential(bufio.NewReader(bytes.NewReader(stream)), c, inputs, opts); err != nil {
			t.Fatal(err)
		}
	})
	and, _, _ := c.CountOps()
	if avg > 60 {
		t.Fatalf("sequential eval allocates %.0f times for %d tables (want O(1) per stream)", avg, and)
	}
}
