package proto

import (
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
)

// ErrPeerClosed marks protocol failures caused by the remote party
// closing or resetting the connection before the run finished. Both
// roles wrap their transport errors with it, so callers distinguish an
// abrupt disconnect (retry elsewhere, drop the session) from a protocol
// or circuit mismatch with errors.Is(err, ErrPeerClosed).
var ErrPeerClosed = errors.New("peer closed connection mid-protocol")

// isPeerClosed reports whether err looks like the peer going away: EOF
// in the middle of a fixed-size read, a closed pipe, or a TCP reset.
func isPeerClosed(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// wrapPeer annotates a transport error with the protocol step it broke
// and, when the cause is an abrupt disconnect, tags it with
// ErrPeerClosed so it fails fast and typed instead of surfacing a raw
// io.ReadFull error.
func wrapPeer(step string, err error) error {
	if isPeerClosed(err) {
		return fmt.Errorf("proto: %s: %w (%v)", step, ErrPeerClosed, err)
	}
	return fmt.Errorf("proto: %s: %w", step, err)
}
