package proto

import (
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
)

// ErrPeerClosed marks protocol failures caused by the remote party
// closing or resetting the connection before the run finished. Both
// roles wrap their transport errors with it, so callers distinguish an
// abrupt disconnect (retry elsewhere, drop the session) from a protocol
// or circuit mismatch with errors.Is(err, ErrPeerClosed).
var ErrPeerClosed = errors.New("peer closed connection mid-protocol")

// ErrMalformedFrame marks input that is structurally invalid on the
// wire: a run header with the wrong magic or version, an unknown OT
// protocol byte, or header fields that contradict the circuit both
// parties agreed on. Garbage and corrupted streams fail with this typed
// error — never with an unbounded allocation or a raw io error — so a
// self-healing client can classify the failure as transport damage and
// retry on a fresh connection.
var ErrMalformedFrame = errors.New("malformed frame")

// ErrIntegrity marks a checksummed frame that failed verification: the
// CRC32C did not match or the length field was out of bounds. It means
// the transport delivered damaged bytes — retryable, because the
// integrity tier's whole point is turning silent corruption into a
// typed failure a self-healing client can resume from.
var ErrIntegrity = errors.New("frame failed integrity check")

// ErrDeadline marks protocol failures caused by a connection deadline
// expiring mid-run — the signal a serving layer's per-run timeout
// raises against a peer that went silent. Typed separately from
// ErrPeerClosed so operators can tell a stalled peer from a dead one.
var ErrDeadline = errors.New("connection deadline exceeded mid-protocol")

// isDeadline reports whether err is a network timeout (deadline
// expiry).
func isDeadline(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// isPeerClosed reports whether err looks like the peer going away: EOF
// in the middle of a fixed-size read, a closed pipe, or a TCP reset.
func isPeerClosed(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// wrapPeer annotates a transport error with the protocol step it broke
// and, when the cause is an abrupt disconnect or an expired deadline,
// tags it with ErrPeerClosed/ErrDeadline so it fails fast and typed
// instead of surfacing a raw io.ReadFull error.
func wrapPeer(step string, err error) error {
	if isDeadline(err) {
		return fmt.Errorf("proto: %s: %w (%v)", step, ErrDeadline, err)
	}
	if isPeerClosed(err) {
		return fmt.Errorf("proto: %s: %w (%v)", step, ErrPeerClosed, err)
	}
	return fmt.Errorf("proto: %s: %w", step, err)
}
