package proto

import (
	"net"
	"testing"

	"haac/internal/circuit"
	"haac/internal/ot"
	"haac/internal/workloads"
)

// poolPair sets up lockstep sender/receiver pools over the session
// pair's connection endpoints and attaches them.
func attachPools(t *testing.T, gs *GarblerSession, es *EvaluatorSession, ga, ev net.Conn, fill int) (*ot.Pool, *ot.Pool) {
	t.Helper()
	var sp *ot.Pool
	errc := make(chan error, 1)
	go func() {
		var err error
		sp, err = ot.NewSenderPool(ga, ot.Insecure)
		if err == nil && fill > 0 {
			err = sp.Fill(ga, fill)
		}
		errc <- err
	}()
	rp, err := ot.NewReceiverPool(ev, ot.Insecure)
	if err != nil {
		t.Fatalf("receiver pool: %v", err)
	}
	if fill > 0 {
		if err := rp.Fill(ev, fill); err != nil {
			t.Fatalf("receiver fill: %v", err)
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("sender pool: %v", err)
	}
	gs.SetPool(sp)
	es.SetPool(rp)
	return sp, rp
}

// TestSessionPooledRuns: runs served from attached pools match the
// oracle, consume the pools in lockstep, and fall back to the on-demand
// protocol — counted as misses — once the pool is short.
func TestSessionPooledRuns(t *testing.T) {
	w := workloads.DotProduct(3, 8)
	c := w.Build()
	m := c.EvaluatorInputs
	gs, es, ga, ev := sessionPairConns(t, w, ot.Insecure)
	// Enough for exactly two pooled runs; the third must miss.
	sp, rp := attachPools(t, gs, es, ga, ev, 2*m)

	for run := 0; run < 3; run++ {
		g, e := w.Inputs(int64(run))
		want, err := c.Eval(g, e)
		if err != nil {
			t.Fatal(err)
		}
		type res struct {
			out []bool
			err error
		}
		ch := make(chan res, 1)
		go func() {
			out, err := gs.Run(g)
			ch <- res{append([]bool(nil), out...), err}
		}()
		out, err := es.Run(e)
		if err != nil {
			t.Fatalf("run %d: evaluator: %v", run, err)
		}
		gr := <-ch
		if gr.err != nil {
			t.Fatalf("run %d: garbler: %v", run, gr.err)
		}
		for i := range want {
			if out[i] != want[i] || gr.out[i] != want[i] {
				t.Fatalf("run %d output %d: eval=%v garb=%v want=%v", run, i, out[i], gr.out[i], want[i])
			}
		}
		wantPooled := run < 2
		if gs.LastRunPooled() != wantPooled {
			t.Fatalf("run %d: LastRunPooled=%v, want %v", run, gs.LastRunPooled(), wantPooled)
		}
		if sp.Level() != rp.Level() {
			t.Fatalf("run %d: pool levels diverged %d/%d", run, sp.Level(), rp.Level())
		}
	}
	if sp.Level() != 0 {
		t.Fatalf("final level %d, want 0", sp.Level())
	}
}

// TestSessionResetDetachesPool: rebinding a session to a new connection
// must drop the pool — its correlations die with the old base-OT state.
func TestSessionResetDetachesPool(t *testing.T) {
	w := workloads.DotProduct(3, 8)
	gs, es, ga, ev := sessionPairConns(t, w, ot.Insecure)
	attachPools(t, gs, es, ga, ev, 64)
	ga2, ev2 := net.Pipe()
	t.Cleanup(func() { ga2.Close(); ev2.Close() })
	gs.Reset(ga2, ot.Insecure)
	es.Reset(ev2)
	if gs.pool != nil || es.pool != nil {
		t.Fatal("Reset left a pool attached")
	}
	if gs.LastRunPooled() {
		t.Fatal("Reset left lastPooled set")
	}
}

// sessionPairConns is sessionPair but also returns the raw connection
// endpoints so pools can be negotiated over them.
func sessionPairConns(t *testing.T, w workloads.Workload, otp ot.Protocol) (*GarblerSession, *EvaluatorSession, net.Conn, net.Conn) {
	t.Helper()
	c := w.Build()
	p, err := circuit.NewPlan(c)
	if err != nil {
		t.Fatal(err)
	}
	ga, ev := net.Pipe()
	t.Cleanup(func() { ga.Close(); ev.Close() })
	gs, err := NewGarblerSession(ga, Options{Plan: p, OT: otp, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	es, err := NewEvaluatorSession(ev, c, Options{OT: otp, Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gs.Close(); es.Close() })
	return gs, es, ga, ev
}
