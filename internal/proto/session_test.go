package proto

import (
	"errors"
	"net"
	"testing"

	"haac/internal/circuit"
	"haac/internal/ot"
	"haac/internal/workloads"
)

// TestHeaderCodecMatchesBinary pins the manual header codec layout so
// the wire format cannot drift: encode/decode round-trip, and the known
// byte positions of the leading fields.
func TestHeaderCodecMatchesBinary(t *testing.T) {
	h := header{
		Magic: magic, Version: version, OTProto: 2,
		NGates: 0x1122334455667788, NWires: 99, NGarbler: 7, NEval: 5,
		HasConst: 1, NOutputs: 3, NTables: 0x0102030405060708,
	}
	var enc [headerSize]byte
	h.encode(enc[:])
	if got := decodeHeader(enc[:]); got != h {
		t.Fatalf("decode(encode(h)) = %+v, want %+v", got, h)
	}
	// Little-endian magic "HAAC" leads, version follows.
	if enc[0] != 0x43 || enc[3] != 0x48 || enc[4] != version {
		t.Fatalf("unexpected layout prefix % x", enc[:6])
	}
}

// sessionPair wires a GarblerSession and EvaluatorSession over an
// in-memory connection.
func sessionPair(t *testing.T, w workloads.Workload, evalPlan bool, otp ot.Protocol) (*GarblerSession, *EvaluatorSession, *circuit.Circuit) {
	t.Helper()
	c := w.Build()
	p, err := circuit.NewPlan(c)
	if err != nil {
		t.Fatal(err)
	}
	ga, ev := net.Pipe()
	t.Cleanup(func() { ga.Close(); ev.Close() })
	gs, err := NewGarblerSession(ga, Options{Plan: p, OT: otp, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	eopts := Options{OT: otp}
	if evalPlan {
		eopts.Plan = p
	}
	es, err := NewEvaluatorSession(ev, c, eopts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gs.Close(); es.Close() })
	return gs, es, c
}

// TestSessionRepeatedRuns: many runs over one session pair match the
// plaintext oracle, with fresh labels per run, in both evaluator modes.
func TestSessionRepeatedRuns(t *testing.T) {
	w := workloads.DotProduct(3, 8)
	for _, evalPlan := range []bool{true, false} {
		gs, es, c := sessionPair(t, w, evalPlan, ot.Insecure)
		for run := 0; run < 4; run++ {
			g, e := w.Inputs(int64(run))
			want, err := c.Eval(g, e)
			if err != nil {
				t.Fatal(err)
			}
			type res struct {
				out []bool
				err error
			}
			ch := make(chan res, 1)
			go func() {
				out, err := gs.Run(g)
				ch <- res{append([]bool(nil), out...), err}
			}()
			out, err := es.Run(e)
			if err != nil {
				t.Fatalf("evalPlan=%v run %d: evaluator: %v", evalPlan, run, err)
			}
			gr := <-ch
			if gr.err != nil {
				t.Fatalf("evalPlan=%v run %d: garbler: %v", evalPlan, run, gr.err)
			}
			for i := range want {
				if out[i] != want[i] || gr.out[i] != want[i] {
					t.Fatalf("evalPlan=%v run %d: output %d: eval=%v garb=%v want=%v",
						evalPlan, run, i, out[i], gr.out[i], want[i])
				}
			}
		}
	}
}

// TestSessionInteropWithOneShotEvaluator: a GarblerSession's stream is
// byte-identical to RunGarbler's, so the classic one-shot evaluator can
// consume it unchanged.
func TestSessionInteropWithOneShotEvaluator(t *testing.T) {
	w := workloads.DotProduct(3, 8)
	c := w.Build()
	p, err := circuit.NewPlan(c)
	if err != nil {
		t.Fatal(err)
	}
	ga, ev := net.Pipe()
	defer ga.Close()
	defer ev.Close()
	gs, err := NewGarblerSession(ga, Options{Plan: p, OT: ot.Insecure, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer gs.Close()
	g, e := w.Inputs(3)
	want, err := c.Eval(g, e)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := gs.Run(g)
		errc <- err
	}()
	out, err := RunEvaluator(ev, c, e, Options{OT: ot.Insecure})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("output %d: got %v want %v", i, out[i], want[i])
		}
	}
}

// TestSessionRejectsBadOptions: sessions demand a plan on the garbler
// side, matching circuits, and correct input widths.
func TestSessionRejectsBadOptions(t *testing.T) {
	c1 := workloads.DotProduct(2, 8).Build()
	c2 := workloads.DotProduct(3, 8).Build()
	p1, err := circuit.NewPlan(c1)
	if err != nil {
		t.Fatal(err)
	}
	ga, ev := net.Pipe()
	defer ga.Close()
	defer ev.Close()
	if _, err := NewGarblerSession(ga, Options{}); err == nil {
		t.Error("GarblerSession accepted nil plan")
	}
	if _, err := NewGarblerSession(ga, Options{Plan: p1, Pipelined: true}); err == nil {
		t.Error("GarblerSession accepted Pipelined")
	}
	if _, err := NewEvaluatorSession(ev, c2, Options{Plan: p1}); err == nil {
		t.Error("EvaluatorSession accepted a foreign plan")
	}
	gs, err := NewGarblerSession(ga, Options{Plan: p1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer gs.Close()
	if _, err := gs.Run(make([]bool, c1.GarblerInputs+1)); err == nil {
		t.Error("GarblerSession.Run accepted wrong input width")
	}
	es, err := NewEvaluatorSession(ev, c1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	if _, err := es.Run(make([]bool, c1.EvaluatorInputs+1)); err == nil {
		t.Error("EvaluatorSession.Run accepted wrong input width")
	}
}

// TestEvaluatorFailsFastOnPeerClose: an abrupt garbler disconnect
// surfaces as ErrPeerClosed — not a raw io.ReadFull error — in every
// evaluator mode, whether the cut lands before or after the header.
func TestEvaluatorFailsFastOnPeerClose(t *testing.T) {
	w := workloads.DotProduct(3, 8)
	c := w.Build()
	p, err := circuit.NewPlan(c)
	if err != nil {
		t.Fatal(err)
	}
	_, e := w.Inputs(1)
	modes := []struct {
		name string
		opts Options
	}{
		{"sequential", Options{OT: ot.Insecure}},
		{"offline", Options{OT: ot.Insecure, Workers: 2}},
		{"pipelined", Options{OT: ot.Insecure, Pipelined: true, Workers: 2}},
		{"planned", Options{OT: ot.Insecure, Plan: p}},
	}
	for _, m := range modes {
		for _, afterHeader := range []bool{false, true} {
			ga, ev := net.Pipe()
			go func() {
				if afterHeader {
					h := headerFor(c, Options{OT: ot.Insecure})
					var hb [headerSize]byte
					h.encode(hb[:])
					ga.Write(hb[:])
				}
				ga.Close()
			}()
			_, err := RunEvaluator(ev, c, e, m.opts)
			ev.Close()
			if err == nil {
				t.Fatalf("%s/afterHeader=%v: evaluator succeeded against a dead garbler", m.name, afterHeader)
			}
			if !errors.Is(err, ErrPeerClosed) {
				t.Fatalf("%s/afterHeader=%v: error not typed as ErrPeerClosed: %v", m.name, afterHeader, err)
			}
		}
	}
}

// evalThenVanish consumes the garbler's stream like a real evaluator
// but closes the connection instead of sending the final result, so the
// garbler's result read hits a dead peer.
type evalThenVanish struct {
	net.Conn
	writesLeft int
}

func (v *evalThenVanish) Write(p []byte) (int, error) {
	if v.writesLeft <= 0 {
		v.Conn.Close()
		return 0, net.ErrClosed
	}
	v.writesLeft--
	return v.Conn.Write(p)
}

// TestGarblerFailsFastOnPeerClose covers both garbler-side failure
// shapes: the peer dying before the stream starts (write path) and the
// peer vanishing before reporting the result (read path).
func TestGarblerFailsFastOnPeerClose(t *testing.T) {
	w := workloads.DotProduct(3, 8)
	c := w.Build()
	g, e := w.Inputs(1)

	t.Run("write-path", func(t *testing.T) {
		ga, ev := net.Pipe()
		ev.Close()
		_, err := RunGarbler(ga, c, g, Options{OT: ot.Insecure, Seed: 5})
		ga.Close()
		if err == nil {
			t.Fatal("garbler succeeded against a dead evaluator")
		}
		if !errors.Is(err, ErrPeerClosed) {
			t.Fatalf("error not typed as ErrPeerClosed: %v", err)
		}
	})

	t.Run("result-read-path", func(t *testing.T) {
		ga, ev := net.Pipe()
		// The insecure-OT evaluator writes once (its choice bytes)
		// before the final result write; allow exactly that one.
		cut := &evalThenVanish{Conn: ev, writesLeft: 1}
		done := make(chan struct{})
		go func() {
			defer close(done)
			RunEvaluator(cut, c, e, Options{OT: ot.Insecure})
			ev.Close()
		}()
		_, err := RunGarbler(ga, c, g, Options{OT: ot.Insecure, Seed: 5})
		ga.Close()
		<-done
		if err == nil {
			t.Fatal("garbler succeeded though the evaluator never reported a result")
		}
		if !errors.Is(err, ErrPeerClosed) {
			t.Fatalf("error not typed as ErrPeerClosed: %v", err)
		}
	})
}
