package proto

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestFrameRoundtrip: bytes written through the codec come back
// verified and identical across payload sizes that exercise the
// split/merge boundaries.
func TestFrameRoundtrip(t *testing.T) {
	for _, size := range []int{1, 7, 100, maxFramePayload - 1, maxFramePayload, maxFramePayload + 1, 3*maxFramePayload + 5} {
		var wire bytes.Buffer
		w := NewFramedConn(&wire)
		msg := make([]byte, size)
		for i := range msg {
			msg[i] = byte(i * 31)
		}
		if n, err := w.Write(msg); err != nil || n != size {
			t.Fatalf("size %d: Write = %d, %v", size, n, err)
		}
		r := NewFramedConn(&wire)
		got := make([]byte, size)
		if _, err := io.ReadFull(r, got); err != nil {
			t.Fatalf("size %d: ReadFull: %v", size, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("size %d: payload drifted through the codec", size)
		}
		wantFrames := uint64((size + maxFramePayload - 1) / maxFramePayload)
		if _, out := w.Frames(); out != wantFrames {
			t.Errorf("size %d: framesOut = %d, want %d", size, out, wantFrames)
		}
		if in, _ := r.Frames(); in != wantFrames {
			t.Errorf("size %d: framesIn = %d, want %d", size, in, wantFrames)
		}
	}
}

// TestFrameCorruptionDetected: flipping any single bit of an encoded
// frame — length, checksum or payload — surfaces ErrIntegrity, never a
// silently wrong payload.
func TestFrameCorruptionDetected(t *testing.T) {
	var wire bytes.Buffer
	w := NewFramedConn(&wire)
	msg := []byte("the tables must arrive exactly as garbled")
	if _, err := w.Write(msg); err != nil {
		t.Fatal(err)
	}
	clean := append([]byte(nil), wire.Bytes()...)
	for pos := range clean {
		for bit := 0; bit < 8; bit++ {
			dirty := append([]byte(nil), clean...)
			dirty[pos] ^= 1 << bit
			r := NewFramedConn(bytes.NewBuffer(dirty))
			got := make([]byte, len(msg))
			_, err := io.ReadFull(r, got)
			if err == nil {
				t.Fatalf("flip byte %d bit %d: read succeeded on a corrupted frame", pos, bit)
			}
			if !errors.Is(err, ErrIntegrity) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("flip byte %d bit %d: err = %v, want ErrIntegrity or truncation", pos, bit, err)
			}
			if errors.Is(err, ErrIntegrity) && r.Failures() == 0 {
				t.Fatalf("flip byte %d bit %d: ErrIntegrity without a failure count", pos, bit)
			}
		}
	}
	// Truncation is a transport error, not an integrity failure.
	r := NewFramedConn(bytes.NewBuffer(clean[:len(clean)-3]))
	if _, err := io.ReadFull(r, make([]byte, len(msg))); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestFrameLengthBounds: a length field outside 1..maxFramePayload is
// rejected before any allocation or payload read.
func TestFrameLengthBounds(t *testing.T) {
	for _, n := range []uint32{0, maxFramePayload + 1, 1 << 30} {
		hdr := make([]byte, frameHeaderSize)
		hdr[0] = byte(n)
		hdr[1] = byte(n >> 8)
		hdr[2] = byte(n >> 16)
		hdr[3] = byte(n >> 24)
		r := NewFramedConn(bytes.NewBuffer(hdr))
		_, err := r.Read(make([]byte, 1))
		if !errors.Is(err, ErrIntegrity) {
			t.Errorf("length %d: err = %v, want ErrIntegrity", n, err)
		}
	}
}

// TestFrameReset: Reset discards a partially consumed inbound frame and
// rebinds to a new transport, as a reconnecting session requires.
func TestFrameReset(t *testing.T) {
	var first bytes.Buffer
	w := NewFramedConn(&first)
	if _, err := w.Write([]byte("stale stale stale")); err != nil {
		t.Fatal(err)
	}
	fc := NewFramedConn(&first)
	if _, err := fc.Read(make([]byte, 5)); err != nil {
		t.Fatal(err)
	}

	var second bytes.Buffer
	w2 := NewFramedConn(&second)
	if _, err := w2.Write([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	fc.Reset(&second)
	got := make([]byte, 5)
	if _, err := io.ReadFull(fc, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "fresh" {
		t.Fatalf("after Reset read %q, want %q (stale buffered bytes leaked)", got, "fresh")
	}
}

// TestFrameOverheadBound pins the codec's wire overhead: 8 bytes per
// 16 KiB slab is ~0.05%, far inside the <2% budget the integrity
// experiment asserts end to end.
func TestFrameOverheadBound(t *testing.T) {
	var wire bytes.Buffer
	w := NewFramedConn(&wire)
	payload := make([]byte, 64*maxFramePayload)
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	overhead := float64(wire.Len()-len(payload)) / float64(len(payload))
	if overhead >= 0.02 {
		t.Fatalf("framing overhead %.4f%% breaches the 2%% budget", overhead*100)
	}
}
