package proto

import (
	"testing"

	"haac/internal/circuit"
	"haac/internal/ot"
)

// FuzzRunHeader: the manual run-header codec and its validator against
// arbitrary bytes. decodeHeader must never panic, encode(decode(x))
// must be the identity on the header fields, and checkHeaderWant must
// accept only headers that actually match the expected circuit shape —
// everything else fails typed as ErrMalformedFrame.
func FuzzRunHeader(f *testing.F) {
	w := wantHeaderForFuzz()
	var valid [headerSize]byte
	w.encode(valid[:])
	f.Add(valid[:])
	corruptMagic := valid
	corruptMagic[0] ^= 0x40
	f.Add(corruptMagic[:])
	badVersion := valid
	badVersion[4] = 99
	f.Add(badVersion[:])
	badOT := valid
	badOT[5] = 200
	f.Add(badOT[:])
	f.Add(make([]byte, headerSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < headerSize {
			return
		}
		h := decodeHeader(data[:headerSize])

		// Codec roundtrip: encode is the exact inverse of decode.
		var buf [headerSize]byte
		h.encode(buf[:])
		if h2 := decodeHeader(buf[:]); h2 != h {
			t.Fatalf("header codec roundtrip drifted: %+v vs %+v", h, h2)
		}

		want := wantHeaderForFuzz()
		err := checkHeaderWant(h, want)
		hOK := h
		hOK.OTProto = want.OTProto
		otValid := false
		switch ot.Protocol(h.OTProto) {
		case ot.DH, ot.Insecure, ot.IKNP:
			otValid = true
		}
		matches := hOK == want && otValid
		if matches && err != nil {
			t.Fatalf("matching header rejected: %v", err)
		}
		if !matches && err == nil {
			t.Fatalf("non-matching header accepted: %+v", h)
		}
	})
}

// wantHeaderForFuzz is the expected header of a tiny fixed circuit —
// the shape every fuzzed header is validated against.
func wantHeaderForFuzz() header {
	return headerFor(fuzzCircuit(), Options{})
}

var fuzzCircuitMemo *circuit.Circuit

// fuzzCircuit builds (once) a minimal two-input circuit for header
// validation.
func fuzzCircuit() *circuit.Circuit {
	if fuzzCircuitMemo == nil {
		c := &circuit.Circuit{
			NumWires:        3,
			GarblerInputs:   1,
			EvaluatorInputs: 1,
			Gates: []circuit.Gate{
				{Op: circuit.AND, A: 0, B: 1, C: 2},
			},
			Outputs: []circuit.Wire{2},
		}
		if err := c.Validate(); err != nil {
			panic(err)
		}
		fuzzCircuitMemo = c
	}
	return fuzzCircuitMemo
}
