package proto

import (
	"bufio"
	"fmt"
	"io"

	"haac/internal/circuit"
	"haac/internal/gc"
	"haac/internal/label"
	"haac/internal/ot"
)

// Protocol sessions: persistent per-connection endpoints for serving
// many runs of one circuit. RunGarbler/RunEvaluator pay per-run setup —
// a bufio buffer, header reflection, result slices, a fresh engine —
// which a process answering thousands of requests cannot afford.
// A GarblerSession/EvaluatorSession pair owns that state for the
// lifetime of a connection: the buffered writer/reader, the packed
// header, OT pair scratch, result buffers and a reusable plan runner
// all persist, so a steady-state run allocates nothing on either side
// (on-demand OT for evaluator inputs is the one inherently allocating
// step — its cost is public-key crypto, not transport; a run served
// from an attached ot.Pool avoids even that).
//
// Each Run produces a byte stream identical to the one-shot entry
// points, so a session peer interoperates with RunGarbler/RunEvaluator
// on the other end of the wire.

// GarblerSession is a reusable garbler endpoint bound to one connection
// and one precompiled plan. It is not safe for concurrent use; a server
// pools sessions and gives each connection its own.
type GarblerSession struct {
	opts     Options
	c        *circuit.Circuit
	rw       io.ReadWriter
	w        *bufio.Writer
	pg       *gc.PlanGarbler
	src      *label.Source
	emit     func(tables []gc.Material) error
	emitSkip func(tables []gc.Material) error
	hdr      [headerSize]byte
	pairs    []ot.Pair
	res      []byte
	out      []bool

	// Pooled OT: when a pool is attached and holds enough correlations,
	// Run marks the per-run header ot.Pooled and derandomizes instead of
	// running opts.OT on demand — the evaluator follows the header, so
	// both sides consume their pools in lockstep.
	pool       *ot.Pool
	lastPooled bool

	// Resume scratch: garbling is a pure function of the label-source
	// state at Begin, so ResumeRun replays a broken run's table stream
	// from a recorded seed without disturbing s.src (whose draws define
	// the live runs).
	resumeSrc *label.Source
	skip      int
}

// NewGarblerSession builds a garbler session over conn. Options.Plan is
// required (serving always amortizes through plans); Workers selects
// the plan engine width. Pipelined is rejected: the plan garbler
// already streams each level's tables through the session writer as it
// completes them. A zero Options.Seed draws a random one; the session's
// label source then advances across runs, so every run garbles with
// fresh labels.
func NewGarblerSession(conn io.ReadWriter, opts Options) (*GarblerSession, error) {
	if opts.Plan == nil {
		return nil, fmt.Errorf("proto: GarblerSession requires Options.Plan")
	}
	if opts.Pipelined {
		return nil, fmt.Errorf("proto: GarblerSession does not support Options.Pipelined (tables already stream per level)")
	}
	if err := opts.fill(); err != nil {
		return nil, err
	}
	c := opts.Plan.Circuit
	s := &GarblerSession{
		opts:  opts,
		c:     c,
		w:     bufio.NewWriterSize(io.Discard, 1<<16),
		pg:    gc.NewPlanGarbler(opts.Plan, opts.Hasher, planWorkers(opts)),
		src:   label.NewSource(opts.Seed),
		pairs: make([]ot.Pair, c.EvaluatorInputs),
		res:   make([]byte, len(c.Outputs)),
		out:   make([]bool, len(c.Outputs)),
	}
	s.emit = func(tables []gc.Material) error { return writeTables(s.w, tables) }
	s.emitSkip = func(tables []gc.Material) error {
		if s.skip >= len(tables) {
			s.skip -= len(tables)
			return nil
		}
		t := tables[s.skip:]
		s.skip = 0
		return writeTables(s.w, t)
	}
	s.Reset(conn, opts.OT)
	return s, nil
}

// PendingSeed returns the label-source state the next Run will begin
// from. A server records it before starting a run so a broken transfer
// can later be replayed from the same deterministic stream with
// ResumeRun — by any pooled runner sharing the hasher and plan, not
// just this one.
func (s *GarblerSession) PendingSeed() uint64 { return s.src.State() }

// Reset rebinds the session to a new connection and OT protocol,
// keeping the plan runner, label source and scratch. A server pools
// sessions per circuit and Resets one for each accepted connection.
func (s *GarblerSession) Reset(conn io.ReadWriter, otp ot.Protocol) {
	s.opts.OT = otp
	s.rw = instrument(conn, &s.opts)
	s.w.Reset(s.rw)
	h := headerFor(s.c, s.opts)
	h.encode(s.hdr[:])
	// A pool is bound to the old connection's base-OT state; the new
	// connection starts without one until the peer negotiates a refill.
	s.pool = nil
	s.lastPooled = false
}

// SetPool attaches a sender pool whose correlations future Runs may
// consume. The pool must have been set up over this session's current
// connection; Reset detaches it.
func (s *GarblerSession) SetPool(p *ot.Pool) { s.pool = p }

// LastRunPooled reports whether the most recent Run served the
// evaluator's labels from the pool (a hit) rather than falling back to
// the on-demand protocol — the serving layer's hit/miss accounting
// hook.
func (s *GarblerSession) LastRunPooled() bool { return s.lastPooled }

// Close releases the plan runner's worker pool.
func (s *GarblerSession) Close() { s.pg.Close() }

// Run plays one full garbler run: header, active input labels, OT,
// level-streamed tables, decode bits, and the evaluator's reported
// result. The returned slice is reused by the next Run.
func (s *GarblerSession) Run(garblerBits []bool) ([]bool, error) {
	c := s.c
	if len(garblerBits) != c.GarblerInputs {
		return nil, fmt.Errorf("proto: got %d garbler bits, want %d", len(garblerBits), c.GarblerInputs)
	}
	// Hit/miss decision happens before the header leaves: a pool with
	// enough correlations marks the run pooled, a short one falls back
	// to the on-demand protocol for this run only (a miss, not an
	// error). The header's OT byte tells the evaluator which path this
	// run takes, keeping both pools in lockstep.
	otp := s.opts.OT
	s.lastPooled = s.pool != nil && c.EvaluatorInputs > 0 && s.pool.Level() >= c.EvaluatorInputs
	if s.lastPooled {
		otp = ot.Pooled
	}
	s.hdr[5] = byte(otp)
	if _, err := s.w.Write(s.hdr[:]); err != nil {
		return nil, wrapPeer("writing header", err)
	}
	s.pg.Begin(s.src)
	zeros, r := s.pg.InputZeros(), s.pg.R()
	if err := sendActiveInputs(s.w, c, zeros, r, garblerBits); err != nil {
		return nil, err
	}
	if err := s.w.Flush(); err != nil {
		return nil, wrapPeer("sending garbler labels", err)
	}
	if c.EvaluatorInputs > 0 {
		off := c.GarblerInputs
		for i := range s.pairs {
			s.pairs[i] = ot.Pair{M0: zeros[off+i], M1: zeros[off+i].Xor(r)}
		}
		var err error
		if otp == ot.Pooled {
			err = s.pool.SendDerand(s.rw, s.pairs)
		} else {
			err = ot.Send(s.rw, otp, s.pairs)
		}
		if err != nil {
			return nil, wrapPeer("OT", err)
		}
	}
	garbled, err := s.pg.Run(s.emit)
	if err != nil {
		return nil, err
	}
	return s.finishRun(garbled)
}

// finishRun sends the decode bits and collects the evaluator's reported
// result — the shared tail of Run and ResumeRun.
func (s *GarblerSession) finishRun(garbled *gc.Garbled) ([]bool, error) {
	for _, z := range garbled.OutputZeros {
		if err := s.w.WriteByte(byte(z.Colour())); err != nil {
			return nil, wrapPeer("sending decode bits", err)
		}
	}
	if err := s.w.Flush(); err != nil {
		return nil, wrapPeer("sending decode bits", err)
	}
	if _, err := io.ReadFull(s.rw, s.res); err != nil {
		return nil, wrapPeer("reading result", err)
	}
	for i, b := range s.res {
		s.out[i] = b == 1
	}
	return s.out, nil
}

// ResumeRun replays a broken run's outbound stream from table offset
// skip: the garbler re-garbles deterministically from seed (the state
// PendingSeed reported before the original run), drops the first skip
// tables — the evaluator already holds them verified — and emits only
// the remainder, then the decode bits and the result exchange. No
// header, labels or OT travel on a resume stream: input labels are
// re-derived identically from the seed, so the evaluator's held labels
// stay valid.
func (s *GarblerSession) ResumeRun(seed uint64, skip int) ([]bool, error) {
	if skip < 0 {
		return nil, fmt.Errorf("proto: negative resume offset %d", skip)
	}
	if s.resumeSrc == nil {
		s.resumeSrc = label.NewSource(seed)
	} else {
		s.resumeSrc.Reseed(seed)
	}
	s.skip = skip
	s.pg.Begin(s.resumeSrc)
	garbled, err := s.pg.Run(s.emitSkip)
	if err != nil {
		return nil, err
	}
	return s.finishRun(garbled)
}

// EvaluatorSession is a reusable evaluator endpoint bound to one
// connection. With Options.Plan set it holds a persistent plan runner
// and table arena, making steady-state runs allocation-free; without a
// plan each Run uses the dense engine selected by Workers/Pipelined
// (correct, but with the usual per-run allocations). Not safe for
// concurrent use.
type EvaluatorSession struct {
	opts   Options
	c      *circuit.Circuit
	rw     io.ReadWriter
	rd     *bufio.Reader
	pe     *gc.PlanEvaluator
	need   func(n int) ([]gc.Material, error)
	tables []gc.Material
	got    int
	slab   []byte
	want   header
	hdrBuf [headerSize]byte
	inputs []label.L
	decode []byte
	res    []byte
	out    []bool

	// choices is the packed per-run choice vector, reused across runs so
	// the input phase stays allocation-free.
	choices ot.Bitset
	// pool, when attached, serves runs whose header arrives marked
	// ot.Pooled; other runs use the header's on-demand protocol as
	// always.
	pool *ot.Pool

	// Resume bookkeeping: once a plan-path run has its inputs (OT done),
	// the run is resumable — the verified tables in the arena and the
	// held input labels survive a transport swap, so only tables[got:]
	// need re-transfer.
	resumable  bool
	lastTables int
}

// NewEvaluatorSession builds an evaluator session for c over conn.
func NewEvaluatorSession(conn io.ReadWriter, c *circuit.Circuit, opts Options) (*EvaluatorSession, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if opts.Plan != nil && opts.Plan.Circuit != c {
		return nil, fmt.Errorf("proto: Options.Plan was compiled from a different circuit")
	}
	s := &EvaluatorSession{
		opts:    opts,
		c:       c,
		rd:      bufio.NewReaderSize(bytesReaderNone{}, 1<<16),
		want:    headerFor(c, opts),
		inputs:  make([]label.L, c.NumInputs()),
		decode:  make([]byte, len(c.Outputs)),
		res:     make([]byte, len(c.Outputs)),
		out:     make([]bool, len(c.Outputs)),
		choices: ot.NewBitset(c.EvaluatorInputs),
	}
	if opts.Plan != nil {
		s.pe = gc.NewPlanEvaluator(opts.Plan, opts.Hasher, planWorkers(opts))
		s.tables = make([]gc.Material, opts.Plan.Schedule.NumAND)
		s.slab = make([]byte, slabBytes)
		s.need = func(n int) ([]gc.Material, error) {
			if err := s.readTables(n); err != nil {
				return nil, err
			}
			return s.tables[:s.got], nil
		}
	}
	s.Reset(conn)
	return s, nil
}

// bytesReaderNone is the placeholder source a session reader is built
// over before its first Reset.
type bytesReaderNone struct{}

func (bytesReaderNone) Read([]byte) (int, error) { return 0, io.EOF }

// Reset rebinds the session to a new connection, keeping the runner and
// scratch. Any attached pool is detached: its correlations were bound
// to the old connection's base-OT state.
func (s *EvaluatorSession) Reset(conn io.ReadWriter) {
	s.rw = instrument(conn, &s.opts)
	s.rd.Reset(s.rw)
	s.pool = nil
}

// SetPool attaches a receiver pool for runs whose header arrives marked
// ot.Pooled. The pool must have been set up over this session's current
// connection; Reset detaches it.
func (s *EvaluatorSession) SetPool(p *ot.Pool) { s.pool = p }

// Close releases the plan runner's worker pool, if any.
func (s *EvaluatorSession) Close() {
	if s.pe != nil {
		s.pe.Close()
	}
}

// readTables pulls gate-order tables off the wire into the persistent
// arena until upto of them have landed.
func (s *EvaluatorSession) readTables(upto int) error {
	return readTableStream(s.rd, s.slab, s.tables, &s.got, upto)
}

// Run plays one full evaluator run and returns the plaintext outputs
// (also reported back to the garbler). The returned slice is reused by
// the next Run.
func (s *EvaluatorSession) Run(evalBits []bool) ([]bool, error) {
	c := s.c
	if len(evalBits) != c.EvaluatorInputs {
		return nil, fmt.Errorf("proto: got %d evaluator bits, want %d", len(evalBits), c.EvaluatorInputs)
	}
	s.resumable = false
	if _, err := io.ReadFull(s.rd, s.hdrBuf[:]); err != nil {
		return nil, wrapPeer("reading header", err)
	}
	h := decodeHeader(s.hdrBuf[:])
	if err := checkHeaderWant(h, s.want); err != nil {
		return nil, err
	}

	nFixed := c.GarblerInputs
	if c.HasConst {
		nFixed += 2
	}
	if nFixed > 0 {
		bp := getSlab(nFixed * label.Size)
		slab := (*bp)[:nFixed*label.Size]
		if _, err := io.ReadFull(s.rd, slab); err != nil {
			putSlab(bp)
			return nil, wrapPeer("reading garbler labels", err)
		}
		label.DecodeSlice(s.inputs[:c.GarblerInputs], slab)
		if c.HasConst {
			s.inputs[c.Const0] = label.FromBytes(slab[c.GarblerInputs*label.Size:])
			s.inputs[c.Const1] = label.FromBytes(slab[(c.GarblerInputs+1)*label.Size:])
		}
		putSlab(bp)
	}
	if c.EvaluatorInputs > 0 {
		s.choices.CopyBools(evalBits)
		evalLabels := s.inputs[c.GarblerInputs : c.GarblerInputs+c.EvaluatorInputs]
		if ot.Protocol(h.OTProto) == ot.Pooled {
			if s.pool == nil {
				return nil, fmt.Errorf("proto: %w: pooled run without a negotiated pool", ErrMalformedFrame)
			}
			if err := s.pool.ReceiveDerand(readWriter{s.rd, s.rw}, s.choices, evalLabels); err != nil {
				return nil, wrapPeer("OT", err)
			}
		} else {
			got, err := ot.ReceiveBitset(readWriter{s.rd, s.rw}, ot.Protocol(h.OTProto), s.choices)
			if err != nil {
				return nil, wrapPeer("OT", err)
			}
			copy(evalLabels, got)
		}
	}

	var outLabels []label.L
	var err error
	if s.pe != nil {
		s.got = 0
		s.lastTables = int(h.NTables)
		s.resumable = true
		outLabels, err = s.pe.EvalStream(s.inputs, s.need)
		if err == nil {
			// Keep the stream position honest even for all-linear
			// circuits; the decode bits follow on the same connection.
			err = s.readTables(int(h.NTables))
		}
	} else {
		switch {
		case s.opts.Pipelined:
			outLabels, err = evalPipelined(s.rd, c, s.inputs, int(h.NTables), s.opts)
		case s.opts.Workers > 1:
			outLabels, err = evalOffline(s.rd, c, s.inputs, int(h.NTables), s.opts)
		default:
			outLabels, err = evalSequential(s.rd, c, s.inputs, s.opts)
		}
	}
	if err != nil {
		return nil, err
	}
	return s.finishRun(outLabels)
}

// finishRun reads the decode bits, decodes the outputs and reports the
// result back — the shared tail of Run and Resume. A completed run is
// no longer resumable.
func (s *EvaluatorSession) finishRun(outLabels []label.L) ([]bool, error) {
	if _, err := io.ReadFull(s.rd, s.decode); err != nil {
		return nil, wrapPeer("reading decode bits", err)
	}
	for i, l := range outLabels {
		v := l.Colour() ^ int(s.decode[i])
		s.out[i] = v == 1
		s.res[i] = byte(v)
	}
	if _, err := s.rw.Write(s.res); err != nil {
		return nil, wrapPeer("sending result", err)
	}
	s.resumable = false
	return s.out, nil
}

// Progress reports how many verified tables the current broken run has
// ingested and whether it can be resumed at all: only plan-path runs
// that completed OT (inputs in hand) qualify. The transfer position is
// the ingest count, not the transport's read offset — bytes a failed
// read-ahead buffered but never verified are simply re-sent.
func (s *EvaluatorSession) Progress() (got int, ok bool) {
	if !s.resumable {
		return 0, false
	}
	return s.got, true
}

// Resume continues a broken run over the (re-bound) transport: the
// peer re-emits tables from the ingest offset, so evaluation replays
// over the already-verified prefix in the arena and reads only the
// remainder off the wire, then the decode bits and result exchange
// complete as usual. Call only after Progress reports ok and the peer
// has agreed to resume from got.
func (s *EvaluatorSession) Resume() ([]bool, error) {
	if !s.resumable {
		return nil, fmt.Errorf("proto: no resumable run in progress")
	}
	outLabels, err := s.pe.EvalStream(s.inputs, s.need)
	if err == nil {
		err = s.readTables(s.lastTables)
	}
	if err != nil {
		return nil, err
	}
	return s.finishRun(outLabels)
}
