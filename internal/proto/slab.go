package proto

import (
	"io"
	"sync"

	"haac/internal/gc"
)

// Pooled wire slabs: every label and table that crosses the transport is
// staged through one of these buffers — encoded in bulk with the label /
// gc slab codecs and written in one call — instead of trickling through
// per-label 16-byte and per-Material 32-byte writes with their own
// short-lived buffers. The pool is shared by the sequential and
// pipelined engines (and both roles), so steady-state transport cost is
// O(1) allocations per flush regardless of circuit size.

// slabTables is the table capacity of one pooled slab (16 KiB): large
// enough that slab encoding amortizes to nothing per table, small enough
// to stay cache-resident while it is filled and drained.
const slabTables = 512

// slabBytes is the byte size of a pooled slab.
const slabBytes = slabTables * gc.MaterialSize

var slabPool = sync.Pool{
	New: func() any {
		b := make([]byte, slabBytes)
		return &b
	},
}

// getSlab returns a pooled byte slab of at least n bytes. Slabs larger
// than the pooled size (a huge input-label block, say) are allocated
// fresh but still recycled through the pool for peers of similar size.
func getSlab(n int) *[]byte {
	bp := slabPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:cap(*bp)]
	return bp
}

func putSlab(bp *[]byte) { slabPool.Put(bp) }

// materialScratch pools []gc.Material decode scratch used by the
// evaluator-side batched table readers.
var materialScratch = sync.Pool{
	New: func() any {
		ms := make([]gc.Material, slabTables)
		return &ms
	},
}

func getMaterials() *[]gc.Material { return materialScratch.Get().(*[]gc.Material) }

func putMaterials(mp *[]gc.Material) { materialScratch.Put(mp) }

// arenaPool recycles whole-circuit table arenas across protocol runs: a
// serving process that executes many 2PCs reuses one slab per
// concurrent run instead of allocating a tables slice every time.
var arenaPool = sync.Pool{
	New: func() any { return gc.NewMaterialArena(0) },
}

// getArena returns a pooled arena and its n-table slab view. Release
// with putArena only once nothing references the view — the slab is
// reused by the next run.
func getArena(n int) (*gc.MaterialArena, []gc.Material) {
	a := arenaPool.Get().(*gc.MaterialArena)
	a.Reset()
	return a, a.Alloc(n)
}

func putArena(a *gc.MaterialArena) { arenaPool.Put(a) }

// readTableStream fills tables[*got:upto] from rd in slab-sized bulk
// reads, decoding through slab (len >= slabBytes) and advancing *got.
// It is the one table-ingest loop shared by the offline, planned and
// session evaluators; abrupt peer disconnects surface as ErrPeerClosed.
func readTableStream(rd io.Reader, slab []byte, tables []gc.Material, got *int, upto int) error {
	for *got < upto {
		n := upto - *got
		if n > slabTables {
			n = slabTables
		}
		if _, err := io.ReadFull(rd, slab[:n*gc.MaterialSize]); err != nil {
			return wrapPeer("reading tables", err)
		}
		gc.DecodeMaterials(tables[*got:*got+n], slab)
		*got += n
	}
	return nil
}
