package proto

import (
	"net"
	"testing"

	"haac/internal/circuit"
	"haac/internal/gc"
	"haac/internal/ot"
	"haac/internal/workloads"
)

// run2PC executes a full two-party computation over an in-memory pipe.
func run2PC(t *testing.T, c *circuit.Circuit, g, e []bool, opts Options) ([]bool, []bool) {
	t.Helper()
	ga, ev := net.Pipe()
	defer ga.Close()
	defer ev.Close()

	type res struct {
		bits []bool
		err  error
	}
	gch := make(chan res, 1)
	go func() {
		bits, err := RunGarbler(ga, c, g, opts)
		gch <- res{bits, err}
	}()
	ebits, err := RunEvaluator(ev, c, e, opts)
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	gr := <-gch
	if gr.err != nil {
		t.Fatalf("garbler: %v", gr.err)
	}
	return gr.bits, ebits
}

func TestTwoPartyWorkloadsInsecureOT(t *testing.T) {
	for _, w := range workloads.VIPSuiteSmall() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if w.Name == "BubbSt" || w.Name == "GradDesc" || w.Name == "Triangle" {
				t.Skip("large; 2PC streaming covered by smaller workloads")
			}
			c := w.Build()
			g, e := w.Inputs(5)
			want := w.Reference(g, e)
			gbits, ebits := run2PC(t, c, g, e, Options{OT: ot.Insecure, Seed: 9})
			for i := range want {
				if gbits[i] != want[i] || ebits[i] != want[i] {
					t.Fatalf("output bit %d mismatch", i)
				}
			}
		})
	}
}

func TestTwoPartyMillionaireDHOT(t *testing.T) {
	// Full cryptographic path: DH OT + re-keyed garbling.
	w := workloads.Millionaire(16)
	c := w.Build()
	g, e := w.Inputs(77)
	want := w.Reference(g, e)
	gbits, ebits := run2PC(t, c, g, e, Options{OT: ot.DH, Seed: 3})
	if gbits[0] != want[0] || ebits[0] != want[0] {
		t.Fatal("millionaires' result mismatch under DH OT")
	}
}

func TestTwoPartyFixedKeyHasher(t *testing.T) {
	w := workloads.AddN(16)
	c := w.Build()
	g, e := w.Inputs(4)
	want := w.Reference(g, e)
	opts := Options{OT: ot.Insecure, Seed: 5, Hasher: gc.NewFixedKeyHasher([16]byte{7})}
	gbits, _ := run2PC(t, c, g, e, opts)
	for i := range want {
		if gbits[i] != want[i] {
			t.Fatal("fixed-key hasher 2PC mismatch")
		}
	}
}

func TestMismatchedCircuitRejected(t *testing.T) {
	wg := workloads.AddN(8)
	we := workloads.AddN(16) // different circuit on the evaluator side
	cg, ce := wg.Build(), we.Build()
	g, _ := wg.Inputs(1)
	_, e := we.Inputs(1)

	ga, ev := net.Pipe()
	defer ga.Close()
	defer ev.Close()
	errs := make(chan error, 1)
	go func() {
		_, err := RunGarbler(ga, cg, g, Options{OT: ot.Insecure, Seed: 2})
		errs <- err
	}()
	if _, err := RunEvaluator(ev, ce, e, Options{OT: ot.Insecure, Seed: 2}); err == nil {
		t.Fatal("evaluator accepted a mismatched circuit")
	}
	ev.Close() // unblock garbler
	<-errs
}

func TestTwoPartyOverTCP(t *testing.T) {
	// Same protocol over a real TCP socket.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	w := workloads.DotProduct(4, 16)
	c := w.Build()
	g, e := w.Inputs(8)
	want := w.Reference(g, e)

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		bits, err := RunGarbler(conn, c, g, Options{OT: ot.DH, Seed: 6})
		if err == nil {
			for i := range want {
				if bits[i] != want[i] {
					err = errMismatch
				}
			}
		}
		done <- err
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bits, err := RunEvaluator(conn, c, e, Options{OT: ot.DH, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatal("evaluator result mismatch over TCP")
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "garbler saw mismatched outputs" }

func TestTwoPartyHammingIKNPOT(t *testing.T) {
	// OT extension end to end: a workload with enough evaluator input
	// bits that extension actually matters.
	w := workloads.Hamming(512)
	c := w.Build()
	g, e := w.Inputs(21)
	want := w.Reference(g, e)
	gbits, ebits := run2PC(t, c, g, e, Options{OT: ot.IKNP, Seed: 12})
	for i := range want {
		if gbits[i] != want[i] || ebits[i] != want[i] {
			t.Fatalf("output bit %d mismatch under IKNP OT", i)
		}
	}
}

func TestTransferStats(t *testing.T) {
	w := workloads.DotProduct(8, 16)
	c := w.Build()
	g, e := w.Inputs(31)
	stats := &Stats{}
	run2PC(t, c, g, e, Options{OT: ot.Insecure, Seed: 17, Stats: stats})
	// The garbler ships at least all tables (32 B per AND).
	minBytes := int64(32 * func() int { a, _, _ := c.CountOps(); return a }())
	if stats.BytesSent.Load() < minBytes {
		t.Fatalf("garbler sent %d bytes, tables alone are %d", stats.BytesSent.Load(), minBytes)
	}
	if stats.Duration() <= 0 {
		t.Fatal("no duration recorded")
	}
	if stats.Throughput() <= 0 {
		t.Fatal("no throughput")
	}
}
