package proto

import (
	"net"
	"runtime"
	"testing"

	"haac/internal/circuit"
	"haac/internal/ot"
	"haac/internal/workloads"
)

// runPlanned2PC executes one in-process protocol run with independent options
// per role and checks the result against the workload reference.
func runPlanned2PC(t *testing.T, w workloads.Workload, c *circuit.Circuit, gOpts, eOpts Options) {
	t.Helper()
	g, e := w.Inputs(21)
	want := w.Reference(g, e)
	ga, ev := net.Pipe()
	defer ga.Close()
	defer ev.Close()
	type res struct {
		bits []bool
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		bits, err := RunGarbler(ga, c, g, gOpts)
		ch <- res{bits, err}
	}()
	out, err := RunEvaluator(ev, c, e, eOpts)
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	gr := <-ch
	if gr.err != nil {
		t.Fatalf("garbler: %v", gr.err)
	}
	for i := range want {
		if out[i] != want[i] || gr.bits[i] != want[i] {
			t.Fatalf("output bit %d wrong (eval=%v garbler=%v want=%v)", i, out[i], gr.bits[i], want[i])
		}
	}
}

// TestPlanned2PCAllModes runs the planned protocol in every engine mode
// and in mixed planned/dense pairings — the wire format must be
// unchanged, so each side chooses its engine independently.
func TestPlanned2PCAllModes(t *testing.T) {
	for _, w := range []workloads.Workload{workloads.DotProduct(4, 16), workloads.Hamming(128)} {
		c := w.Build()
		plan, err := circuit.NewPlan(c)
		if err != nil {
			t.Fatal(err)
		}
		base := Options{OT: ot.Insecure, Seed: 9}
		planned := base
		planned.Plan = plan
		plannedPar := planned
		plannedPar.Workers = 4
		plannedPipe := planned
		plannedPipe.Pipelined = true
		plannedPipe.Workers = 4

		cases := []struct {
			name         string
			gOpts, eOpts Options
		}{
			{"planned-both-sequential", planned, planned},
			{"planned-both-parallel", plannedPar, plannedPar},
			{"planned-both-pipelined", plannedPipe, plannedPipe},
			{"planned-garbler-dense-evaluator", planned, base},
			{"dense-garbler-planned-evaluator", base, planned},
			{"planned-pipelined-vs-dense-sequential", plannedPipe, base},
			{"dense-pipelined-vs-planned-sequential",
				Options{OT: ot.Insecure, Seed: 9, Pipelined: true, Workers: 4}, planned},
		}
		for _, tc := range cases {
			t.Run(w.Name+"/"+tc.name, func(t *testing.T) {
				runPlanned2PC(t, w, c, tc.gOpts, tc.eOpts)
			})
		}
	}
}

// TestPlannedRejectsForeignPlan: a plan compiled from a different
// circuit must fail fast on both roles.
func TestPlannedRejectsForeignPlan(t *testing.T) {
	c := workloads.DotProduct(4, 16).Build()
	other, err := circuit.NewPlan(workloads.Hamming(128).Build())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{OT: ot.Insecure, Seed: 3, Plan: other}
	ga, ev := net.Pipe()
	defer ga.Close()
	defer ev.Close()
	if _, err := RunGarbler(ga, c, make([]bool, c.GarblerInputs), opts); err == nil {
		t.Fatal("garbler accepted a plan for a different circuit")
	}
	if _, err := RunEvaluator(ev, c, make([]bool, c.EvaluatorInputs), opts); err == nil {
		t.Fatal("evaluator accepted a plan for a different circuit")
	}
}

// TestPlanned2PCSteadyStateAllocs: a planned two-party run stays O(1)
// allocations per circuit, like the dense transport, and never rebuilds
// the plan (the schedule + renaming are fully amortized).
func TestPlanned2PCSteadyStateAllocs(t *testing.T) {
	skipUnderRace(t)
	w := workloads.DotProduct(4, 16)
	c := w.Build()
	and, _, _ := c.CountOps()
	plan, err := circuit.NewPlan(c)
	if err != nil {
		t.Fatal(err)
	}
	g, e := w.Inputs(5)
	opts := Options{OT: ot.Insecure, Seed: 7, Plan: plan}

	run := func() {
		ga, ev := net.Pipe()
		errc := make(chan error, 1)
		go func() {
			_, err := RunGarbler(ga, c, g, opts)
			errc <- err
		}()
		if _, err := RunEvaluator(ev, c, e, opts); err != nil {
			t.Fatal(err)
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
		ga.Close()
		ev.Close()
	}
	run() // warm pools

	builds := circuit.PlanBuilds()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const reps = 5
	for i := 0; i < reps; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	if got := circuit.PlanBuilds() - builds; got != 0 {
		t.Fatalf("planned runs rebuilt the plan %d times; reuse must compile zero", got)
	}
	perTable := float64(after.Mallocs-before.Mallocs) / reps / float64(and)
	if perTable > 0.5 {
		t.Fatalf("planned 2PC allocates %.2f times per table (%d ANDs)", perTable, and)
	}
}
