package proto

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Checksummed chunk framing: the wire's integrity tier. When both peers
// negotiate it (the serving handshake carries the request in its flags
// byte), every byte after the handshake — op/ack frames, the run
// header, label blocks, OT traffic, table slabs, decode bits, results —
// travels inside length+CRC32C frames:
//
//	frame: len u32 LE | crc32c u32 LE | payload[len]   (len in 1..16384)
//
// The checksum covers the length field and the payload, so a flipped
// bit anywhere — including in the length itself — surfaces as a typed
// ErrIntegrity instead of silently corrupting a run or desynchronizing
// the stream. Legacy peers never request the tier and keep the
// byte-identical unframed wire.
//
// Frames are capped at maxFramePayload bytes, aligned to the table-slab
// size, so one table slab rides in one frame: the finer the verified
// granularity, the less a mid-run resume has to re-transfer.

// maxFramePayload bounds one frame's payload. It matches slabBytes so a
// full 16 KiB table slab is exactly one verified unit.
const maxFramePayload = slabBytes

// frameHeaderSize is the fixed per-frame overhead: len u32 | crc u32.
const frameHeaderSize = 8

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FramedConn wraps a transport in the checksummed frame codec for both
// directions. Reads return only verified bytes; writes split into
// frames of at most maxFramePayload. All buffers are owned by the
// FramedConn and reused, so steady-state framing allocates nothing.
// Not safe for concurrent use (like the sessions built over it).
type FramedConn struct {
	rw   io.ReadWriter
	rbuf []byte // verified payload buffer
	rpos int    // next unread byte in rbuf
	rlen int    // verified bytes in rbuf
	wbuf []byte // staged header+payload for one outgoing frame
	hdr  [frameHeaderSize]byte

	framesIn, framesOut uint64
	failures            uint64
}

// NewFramedConn returns a frame codec over rw.
func NewFramedConn(rw io.ReadWriter) *FramedConn {
	return &FramedConn{
		rw:   rw,
		rbuf: make([]byte, maxFramePayload),
		wbuf: make([]byte, frameHeaderSize+maxFramePayload),
	}
}

// Reset rebinds the codec to a new transport, discarding any partially
// consumed inbound frame. The buffers persist, so a reconnecting
// session reuses one codec across redials without allocating.
func (f *FramedConn) Reset(rw io.ReadWriter) {
	f.rw = rw
	f.rpos, f.rlen = 0, 0
}

// Frames returns the verified-in/sent-out frame counts, and failures
// the number of integrity rejections this codec raised.
func (f *FramedConn) Frames() (in, out uint64) { return f.framesIn, f.framesOut }

// Failures returns the number of frames rejected for failing their
// checksum or carrying an out-of-bounds length.
func (f *FramedConn) Failures() uint64 { return f.failures }

// readFrame pulls the next frame off the transport into rbuf,
// verifying length bounds and checksum. Transport errors pass through
// unwrapped so callers classify them (peer-closed, deadline) exactly as
// on the unframed wire.
func (f *FramedConn) readFrame() error {
	if _, err := io.ReadFull(f.rw, f.hdr[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	n := int(le.Uint32(f.hdr[0:]))
	if n <= 0 || n > maxFramePayload {
		f.failures++
		return fmt.Errorf("proto: %w: frame length %d outside 1..%d", ErrIntegrity, n, maxFramePayload)
	}
	want := le.Uint32(f.hdr[4:])
	if _, err := io.ReadFull(f.rw, f.rbuf[:n]); err != nil {
		return err
	}
	crc := crc32.Update(0, castagnoli, f.hdr[0:4])
	crc = crc32.Update(crc, castagnoli, f.rbuf[:n])
	if crc != want {
		f.failures++
		return fmt.Errorf("proto: %w: frame checksum %#x, want %#x", ErrIntegrity, crc, want)
	}
	f.rpos, f.rlen = 0, n
	f.framesIn++
	return nil
}

// Read serves verified bytes, pulling the next frame when the buffer
// runs dry.
func (f *FramedConn) Read(p []byte) (int, error) {
	if f.rpos >= f.rlen {
		if err := f.readFrame(); err != nil {
			return 0, err
		}
	}
	n := copy(p, f.rbuf[f.rpos:f.rlen])
	f.rpos += n
	return n, nil
}

// Write frames p into one or more checksummed frames, one transport
// Write each.
func (f *FramedConn) Write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		n := len(p) - written
		if n > maxFramePayload {
			n = maxFramePayload
		}
		le := binary.LittleEndian
		le.PutUint32(f.wbuf[0:], uint32(n))
		crc := crc32.Update(0, castagnoli, f.wbuf[0:4])
		crc = crc32.Update(crc, castagnoli, p[written:written+n])
		le.PutUint32(f.wbuf[4:], crc)
		copy(f.wbuf[frameHeaderSize:], p[written:written+n])
		if _, err := f.rw.Write(f.wbuf[:frameHeaderSize+n]); err != nil {
			return written, err
		}
		written += n
		f.framesOut++
	}
	return written, nil
}
