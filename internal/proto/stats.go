package proto

import (
	"io"
	"sync/atomic"
	"time"
)

// Stats collects transfer metrics for a protocol run when attached via
// Options.Stats: total bytes in each direction and wall-clock duration.
// GC bandwidth demand is the core systems challenge the paper targets
// (§1: "GCs are data intensive"), so the examples report it.
type Stats struct {
	BytesSent     atomic.Int64
	BytesReceived atomic.Int64
	// start holds the earliest begin() as UnixNano; one Stats may be
	// shared by both roles of an in-process run, so begin/end race-free
	// via atomics: the first begin and the last end win.
	start    atomic.Int64
	duration atomic.Int64 // nanoseconds
}

// Duration returns the elapsed wall time of the run.
func (s *Stats) Duration() time.Duration { return time.Duration(s.duration.Load()) }

// Throughput returns the total transfer rate in bytes/second.
func (s *Stats) Throughput() float64 {
	d := s.Duration().Seconds()
	if d == 0 {
		return 0
	}
	return float64(s.BytesSent.Load()+s.BytesReceived.Load()) / d
}

func (s *Stats) begin() {
	if s != nil {
		s.start.CompareAndSwap(0, time.Now().UnixNano())
	}
}

func (s *Stats) end() {
	if s != nil {
		s.duration.Store(time.Now().UnixNano() - s.start.Load())
	}
}

// countingConn wraps a ReadWriter, attributing bytes to a Stats.
type countingConn struct {
	inner io.ReadWriter
	stats *Stats
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.inner.Read(p)
	c.stats.BytesReceived.Add(int64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.inner.Write(p)
	c.stats.BytesSent.Add(int64(n))
	return n, err
}

// instrument wraps conn when opts carries a Stats collector.
func instrument(conn io.ReadWriter, opts *Options) io.ReadWriter {
	return Instrument(conn, opts.Stats)
}

// Instrument wraps a transport so every byte through it is attributed to
// stats (nil stats returns conn unwrapped) — the same counting wrapper
// the protocol roles use internally, exported for benchmarks that drive
// sub-protocols (like the OT extension) directly.
func Instrument(conn io.ReadWriter, stats *Stats) io.ReadWriter {
	if stats == nil {
		return conn
	}
	return countingConn{inner: conn, stats: stats}
}
