package proto

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzChunkFrame: the frame codec against arbitrary inbound bytes.
// Garbage must never panic, never allocate beyond the codec's fixed
// buffers, and fail only typed — ErrIntegrity for damaged frames,
// io errors for truncation. Any prefix that does decode must also
// survive the write/read roundtrip byte-identically.
func FuzzChunkFrame(f *testing.F) {
	var good bytes.Buffer
	w := NewFramedConn(&good)
	w.Write([]byte("one verified chunk"))
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add(good.Bytes()[:frameHeaderSize])            // header only
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})            // zero length
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})   // length far over bound
	f.Add(append(good.Bytes(), good.Bytes()...))     // two frames back to back
	f.Add(append([]byte{1, 0, 0, 0}, 0, 0, 0, 0, 9)) // bad checksum

	f.Fuzz(func(t *testing.T, data []byte) {
		fc := NewFramedConn(readWriter{Reader: bytes.NewReader(data), Writer: io.Discard})
		var decoded bytes.Buffer
		buf := make([]byte, maxFramePayload)
		var err error
		for {
			var n int
			n, err = fc.Read(buf)
			decoded.Write(buf[:n])
			if err != nil {
				break
			}
		}
		if !errors.Is(err, ErrIntegrity) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("frame codec returned an untyped error: %v", err)
		}
		// Roundtrip: whatever decoded re-frames to a stream that decodes
		// back to the same bytes.
		if decoded.Len() == 0 {
			return
		}
		var wire bytes.Buffer
		if _, err := NewFramedConn(&wire).Write(decoded.Bytes()); err != nil {
			t.Fatalf("re-framing decoded payload: %v", err)
		}
		back := make([]byte, decoded.Len())
		if _, err := io.ReadFull(NewFramedConn(&wire), back); err != nil {
			t.Fatalf("re-reading re-framed payload: %v", err)
		}
		if !bytes.Equal(back, decoded.Bytes()) {
			t.Fatal("frame roundtrip drifted")
		}
	})
}
