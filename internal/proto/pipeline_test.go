package proto

import (
	"net"
	"testing"

	"haac/internal/gc"
	"haac/internal/ot"
	"haac/internal/workloads"
)

// run2PCMixed is run2PC with independent options per role, for the
// interop matrix (the wire format must not depend on the engine).
func run2PCMixed(t *testing.T, c *workloads.Workload, seed int64, gopts, eopts Options) {
	t.Helper()
	cir := c.Build()
	g, e := c.Inputs(seed)
	want := c.Reference(g, e)

	ga, ev := net.Pipe()
	defer ga.Close()
	defer ev.Close()
	type res struct {
		bits []bool
		err  error
	}
	gch := make(chan res, 1)
	go func() {
		bits, err := RunGarbler(ga, cir, g, gopts)
		gch <- res{bits, err}
	}()
	ebits, err := RunEvaluator(ev, cir, e, eopts)
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	gr := <-gch
	if gr.err != nil {
		t.Fatalf("garbler: %v", gr.err)
	}
	for i := range want {
		if gr.bits[i] != want[i] || ebits[i] != want[i] {
			t.Fatalf("output bit %d mismatch", i)
		}
	}
}

// TestPipelined2PCWorkloads re-runs the main workload suite through the
// fully pipelined path with a 4-wide worker pool on both sides.
func TestPipelined2PCWorkloads(t *testing.T) {
	for _, w := range workloads.VIPSuiteSmall() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if w.Name == "BubbSt" || w.Name == "GradDesc" || w.Name == "Triangle" {
				t.Skip("large; pipelining covered by smaller workloads")
			}
			opts := Options{OT: ot.Insecure, Seed: 9, Pipelined: true, Workers: 4}
			run2PCMixed(t, &w, 5, opts, opts)
		})
	}
}

// TestPipelinedInteropMatrix checks every engine pairing produces the
// same result: the stream is engine-agnostic.
func TestPipelinedInteropMatrix(t *testing.T) {
	w := workloads.DotProduct(4, 16)
	seq := Options{OT: ot.Insecure, Seed: 3}
	off := Options{OT: ot.Insecure, Seed: 3, Workers: 4}
	pip := Options{OT: ot.Insecure, Seed: 3, Pipelined: true, Workers: 2}
	modes := []struct {
		name string
		opts Options
	}{{"seq", seq}, {"offline", off}, {"pipelined", pip}}
	for _, g := range modes {
		for _, e := range modes {
			g, e := g, e
			t.Run(g.name+"->"+e.name, func(t *testing.T) {
				run2PCMixed(t, &w, 8, g.opts, e.opts)
			})
		}
	}
}

// TestPipelinedDHOT exercises the pipelined path under the full
// cryptographic OT, where garbling genuinely overlaps the OT rounds.
func TestPipelinedDHOT(t *testing.T) {
	w := workloads.Millionaire(16)
	opts := Options{OT: ot.DH, Seed: 3, Pipelined: true, Workers: 4}
	run2PCMixed(t, &w, 77, opts, opts)
}

// TestPipelinedFixedKeyHasher runs the pipeline under the batched
// fixed-key hasher shared by all workers.
func TestPipelinedFixedKeyHasher(t *testing.T) {
	w := workloads.AddN(16)
	opts := Options{
		OT: ot.Insecure, Seed: 5, Pipelined: true, Workers: 4,
		Hasher: gc.NewFixedKeyHasher([16]byte{7}),
	}
	run2PCMixed(t, &w, 4, opts, opts)
}

// TestPipelinedOverTCP runs the pipelined protocol across a real socket.
func TestPipelinedOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	w := workloads.Hamming(512)
	c := w.Build()
	g, e := w.Inputs(21)
	want := w.Reference(g, e)
	opts := Options{OT: ot.IKNP, Seed: 12, Pipelined: true, Workers: 4}

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		_, err = RunGarbler(conn, c, g, opts)
		done <- err
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bits, err := RunEvaluator(conn, c, e, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatal("pipelined TCP result mismatch")
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedMismatchRejected: a mismatched circuit still fails fast
// in pipelined mode and the garbler goroutine does not leak.
func TestPipelinedMismatchRejected(t *testing.T) {
	wg := workloads.AddN(8)
	we := workloads.AddN(16)
	cg, ce := wg.Build(), we.Build()
	g, _ := wg.Inputs(1)
	_, e := we.Inputs(1)

	ga, ev := net.Pipe()
	defer ga.Close()
	defer ev.Close()
	errs := make(chan error, 1)
	opts := Options{OT: ot.Insecure, Seed: 2, Pipelined: true, Workers: 2}
	go func() {
		_, err := RunGarbler(ga, cg, g, opts)
		errs <- err
	}()
	if _, err := RunEvaluator(ev, ce, e, opts); err == nil {
		t.Fatal("evaluator accepted a mismatched circuit")
	}
	ev.Close() // unblock garbler
	<-errs
}

// TestPipelinedTransferStats: the instrumented byte counts hold in
// pipelined mode too.
func TestPipelinedTransferStats(t *testing.T) {
	w := workloads.DotProduct(8, 16)
	c := w.Build()
	g, e := w.Inputs(31)
	stats := &Stats{}
	opts := Options{OT: ot.Insecure, Seed: 17, Stats: stats, Pipelined: true, Workers: 4}

	ga, ev := net.Pipe()
	defer ga.Close()
	defer ev.Close()
	gch := make(chan error, 1)
	go func() {
		_, err := RunGarbler(ga, c, g, opts)
		gch <- err
	}()
	if _, err := RunEvaluator(ev, c, e, Options{OT: ot.Insecure, Seed: 17, Pipelined: true}); err != nil {
		t.Fatal(err)
	}
	if err := <-gch; err != nil {
		t.Fatal(err)
	}
	and, _, _ := c.CountOps()
	if min := int64(gc.MaterialSize * and); stats.BytesSent.Load() < min {
		t.Fatalf("garbler sent %d bytes, tables alone are %d", stats.BytesSent.Load(), min)
	}
}
