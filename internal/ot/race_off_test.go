//go:build !race

package ot

const raceEnabled = false
