//go:build race

package ot

// raceEnabled: the race detector instruments the runtime and inflates
// allocation counts, so AllocsPerRun regression tests skip under it.
const raceEnabled = true
