package ot

// Bit-matrix transpose for the IKNP extension. The PRG naturally
// produces the OT matrix column-major (one 128-bit column per base OT,
// m rows long) while hashing consumes it row-major (one kappa-bit row
// per transfer). The old code flipped orientation one bit at a time —
// O(kappa·m) shift/test/set sequences dominating the whole extension.
// Here the flip is a cache-blocked sequence of 64×64 word transposes:
// each block is 64 uint64 loads, ~6·64 word ops (Hacker's Delight 7-3),
// and 64 stores, and both the column reads and the row writes walk
// memory sequentially.

// transpose64 transposes a 64×64 bit matrix in place: bit c of word r
// moves to bit r of word c.
func transpose64(a *[64]uint64) {
	// Swap progressively smaller off-diagonal sub-blocks: 32×32 halves,
	// then 16×16, ... down to single bits. This is the LSB-first mirror
	// of the classic routine: the high-column half of rows k..k+j-1
	// trades places with the low-column half of rows k+j..k+2j-1.
	j := uint(32)
	m := uint64(0x00000000FFFFFFFF)
	for j != 0 {
		for k := uint(0); k < 64; k = (k + j + 1) &^ j {
			t := (a[k]>>j ^ a[k+j]) & m
			a[k] ^= t << j
			a[k+j] ^= t
		}
		j >>= 1
		m ^= m << j
	}
}

// transposeColumns converts the column-major chunk into rows.
// cols holds kappa columns, each colWords uint64 long (column i starts
// at cols[i*colWords]); word w of column i carries transfers 64w..64w+63.
// On return rows[j] is the kappa-bit row of transfer j for j < 64*colWords.
func transposeColumns(rows []row, cols []uint64, colWords int) {
	var blk [64]uint64
	for w := 0; w < rowWords; w++ { // 64-column band of the output row
		for cw := 0; cw < colWords; cw++ { // 64-transfer band
			base := w * 64 * colWords
			for i := 0; i < 64; i++ {
				blk[i] = cols[base+i*colWords+cw]
			}
			transpose64(&blk)
			jBase := cw * 64
			for j := 0; j < 64; j++ {
				rows[jBase+j][w] = blk[j]
			}
		}
	}
}
