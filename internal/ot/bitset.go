package ot

// Bitset is a packed choice vector: bit j of word j/64 is choice j.
// IKNP consumes choices in 64-bit words (the transpose and the column
// masks operate on whole words), so packing once at the boundary removes
// the per-bit []bool shuffling the hot path used to pay. The bit order
// matches the wire's column layout: little-endian bytes, LSB first —
// bit j lives in byte j/8 at position j%8.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an all-zero bitset of n choices.
func NewBitset(n int) Bitset {
	return Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// BitsetFromBools packs a []bool choice vector.
func BitsetFromBools(choices []bool) Bitset {
	b := NewBitset(len(choices))
	for j, c := range choices {
		if c {
			b.words[j>>6] |= 1 << (uint(j) & 63)
		}
	}
	return b
}

// Len returns the number of choices.
func (b Bitset) Len() int { return b.n }

// Bit returns choice j as 0 or 1.
func (b Bitset) Bit(j int) int {
	return int(b.words[j>>6] >> (uint(j) & 63) & 1)
}

// Set sets choice j to v.
func (b Bitset) Set(j int, v bool) {
	if v {
		b.words[j>>6] |= 1 << (uint(j) & 63)
	} else {
		b.words[j>>6] &^= 1 << (uint(j) & 63)
	}
}

// CopyBools repacks choices into b in place; len(choices) must equal
// Len. It lets a long-lived session reuse one bitset across runs
// instead of allocating with BitsetFromBools per run.
func (b Bitset) CopyBools(choices []bool) {
	if len(choices) != b.n {
		panic("ot: CopyBools length mismatch")
	}
	for w := range b.words {
		b.words[w] = 0
	}
	for j, c := range choices {
		if c {
			b.words[j>>6] |= 1 << (uint(j) & 63)
		}
	}
}

// Bools unpacks the bitset into a fresh []bool (kept for tests and
// callers that want per-transfer bits back).
func (b Bitset) Bools() []bool {
	out := make([]bool, b.n)
	for j := range out {
		out[j] = b.Bit(j) == 1
	}
	return out
}

// word returns the w-th 64-choice word (zero beyond Len).
func (b Bitset) word(w int) uint64 {
	if w < len(b.words) {
		return b.words[w]
	}
	return 0
}
