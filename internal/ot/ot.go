// Package ot implements 1-out-of-2 oblivious transfer, the primitive the
// GCs protocol uses to deliver the evaluator's input labels without the
// garbler learning the evaluator's inputs (§2.1).
//
// Three on-demand implementations are provided:
//
//   - DH: a semi-honest Bellare–Micali style OT over NIST P-256
//     (stdlib crypto/elliptic). Appropriate for the repository's threat
//     model (semi-honest, like the paper's EMP setting).
//   - Insecure: a direct transfer where the receiver reveals its choice
//     bits. It exercises the same protocol plumbing at zero cost and is
//     used by large-scale tests and simulations; never use it for real
//     secrets.
//   - IKNP: OT extension — 128 DH base OTs stretched to the whole batch
//     with symmetric crypto (iknp.go).
//
// A fourth mode, Pooled, is not an on-demand protocol: Pool (pool.go)
// precomputes random-OT correlations ahead of time and derandomizes them
// against the real messages and choices in a single XOR round online,
// removing the base-OT latency floor from the serving path.
//
// Both sides operate over an io.ReadWriter carrying length-free fixed-
// format messages, batched for the whole choice vector.
package ot

import (
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
	"math/big"
	"sync/atomic"

	"haac/internal/label"
)

// Pair is the sender's two messages for one transfer: the receiver
// learns exactly one of them.
type Pair struct {
	M0, M1 label.L
}

// Protocol selects an OT implementation.
type Protocol uint8

const (
	// DH is the Diffie-Hellman based semi-honest OT.
	DH Protocol = iota
	// Insecure transfers choices in the clear (testing/simulation only).
	Insecure
	// IKNP is OT extension: 128 DH base OTs stretched to the whole
	// batch with symmetric crypto (see iknp.go). The right choice for
	// large evaluator inputs.
	IKNP
	// Pooled consumes precomputed random-OT correlations from a Pool
	// with one choice-correction XOR round online. It is session state,
	// not an on-demand protocol: Send/Receive reject it — callers go
	// through Pool.SendDerand/Pool.ReceiveDerand instead. The value
	// appears on the wire in the session hello (requesting the pooled
	// tier) and in the per-run header (marking a pool-hit run).
	Pooled
)

const pointSize = 65 // uncompressed P-256 point

// baseOTRounds counts base-OT establishment rounds: one per DH batch on
// either side (dhSend/dhReceive). IKNP pays one round per extension,
// pool setup pays one round per connection, and the pooled online path
// pays none — the counter is the test hook that proves it, mirroring
// circuit.PlanBuilds.
var baseOTRounds atomic.Uint64

// BaseOTRounds returns the process-wide number of DH base-OT batch
// rounds performed so far. Benchmarks read it before and after a
// steady-state window to assert the pooled path never touches a base
// OT.
func BaseOTRounds() uint64 { return baseOTRounds.Load() }

// Send runs the sender side for a batch of pairs. Pooled is rejected:
// derandomized sends go through Pool.SendDerand, which holds the
// precomputed correlations an on-demand call cannot have.
func Send(conn io.ReadWriter, proto Protocol, pairs []Pair) error {
	switch proto {
	case DH:
		return dhSend(conn, pairs)
	case Insecure:
		return insecureSend(conn, pairs)
	case IKNP:
		return iknpSend(conn, DH, pairs)
	case Pooled:
		return fmt.Errorf("ot: pooled OT needs a session Pool (use Pool.SendDerand)")
	}
	return fmt.Errorf("ot: unknown protocol %d", proto)
}

// Receive runs the receiver side for a batch of choice bits, returning
// the chosen message per transfer.
func Receive(conn io.ReadWriter, proto Protocol, choices []bool) ([]label.L, error) {
	return ReceiveBitset(conn, proto, BitsetFromBools(choices))
}

// ReceiveBitset is Receive with a packed choice vector, which every
// protocol now consumes directly: IKNP's hot path works on 64-choice
// words, and the per-transfer base protocols index bits in place — a
// pool refill of 16384 correlations no longer unpacks a 16 KiB bool
// slice per chunk. Results are identical to Receive on the unpacked
// bools. Pooled is rejected; use Pool.ReceiveDerand.
func ReceiveBitset(conn io.ReadWriter, proto Protocol, choices Bitset) ([]label.L, error) {
	switch proto {
	case DH:
		return dhReceive(conn, choices)
	case Insecure:
		return insecureReceive(conn, choices)
	case IKNP:
		return iknpReceive(conn, DH, choices)
	case Pooled:
		return nil, fmt.Errorf("ot: pooled OT needs a session Pool (use Pool.ReceiveDerand)")
	}
	return nil, fmt.Errorf("ot: unknown protocol %d", proto)
}

// --- insecure transfer ---

func insecureSend(conn io.ReadWriter, pairs []Pair) error {
	choice := make([]byte, len(pairs))
	if _, err := io.ReadFull(conn, choice); err != nil {
		return fmt.Errorf("ot: reading choices: %w", err)
	}
	// One batched write: per-label writes would each become their own
	// frame on a framed transport, tripling the phase's wire overhead
	// and multiplying its corruption surface. The byte stream is
	// identical either way.
	out := make([]byte, label.Size*len(pairs))
	for i, p := range pairs {
		m := p.M0
		if choice[i] == 1 {
			m = p.M1
		}
		m.Put(out[i*label.Size:])
	}
	if _, err := conn.Write(out); err != nil {
		return fmt.Errorf("ot: sending messages: %w", err)
	}
	return nil
}

func insecureReceive(conn io.ReadWriter, choices Bitset) ([]label.L, error) {
	n := choices.Len()
	choice := make([]byte, n)
	for i := range choice {
		choice[i] = byte(choices.Bit(i))
	}
	if _, err := conn.Write(choice); err != nil {
		return nil, fmt.Errorf("ot: sending choices: %w", err)
	}
	out := make([]label.L, n)
	buf := make([]byte, label.Size)
	for i := range out {
		if _, err := io.ReadFull(conn, buf); err != nil {
			return nil, fmt.Errorf("ot: reading message %d: %w", i, err)
		}
		out[i] = label.FromBytes(buf)
	}
	return out, nil
}

// --- Diffie-Hellman OT (Bellare–Micali, semi-honest) ---
//
// Sender: a ←$ Z_q, A = aG. Receiver with choice c: b ←$ Z_q,
// B = bG + c·A. Sender derives k0 = H(aB), k1 = H(a(B−A)) and sends
// m0⊕k0, m1⊕k1; the receiver knows k_c = H(bA) and nothing about the
// other key (CDH).

func dhSend(conn io.ReadWriter, pairs []Pair) error {
	baseOTRounds.Add(1)
	curve := elliptic.P256()
	a, err := rand.Int(rand.Reader, curve.Params().N)
	if err != nil {
		return fmt.Errorf("ot: sampling scalar: %w", err)
	}
	ax, ay := curve.ScalarBaseMult(a.Bytes())
	if _, err := conn.Write(elliptic.Marshal(curve, ax, ay)); err != nil {
		return fmt.Errorf("ot: sending A: %w", err)
	}
	// Negated A for computing B − A.
	nay := new(big.Int).Sub(curve.Params().P, ay)

	// Phase 1: read every B point. Keeping the phases strictly ordered
	// (all B, then all ciphertexts) avoids lockstep deadlock over
	// unbuffered transports such as net.Pipe.
	all := make([]byte, pointSize*len(pairs))
	if _, err := io.ReadFull(conn, all); err != nil {
		return fmt.Errorf("ot: reading B points: %w", err)
	}
	// Phase 2: derive keys and send all ciphertext pairs.
	out := make([]byte, 2*label.Size*len(pairs))
	for i, p := range pairs {
		ptBuf := all[i*pointSize : (i+1)*pointSize]
		bx, by := elliptic.Unmarshal(curve, ptBuf)
		if bx == nil {
			return fmt.Errorf("ot: invalid point B[%d]", i)
		}
		k0x, k0y := curve.ScalarMult(bx, by, a.Bytes())
		dx, dy := curve.Add(bx, by, ax, nay) // B − A
		k1x, k1y := curve.ScalarMult(dx, dy, a.Bytes())

		e0 := p.M0.Xor(kdf(curve, k0x, k0y, uint64(i)))
		e1 := p.M1.Xor(kdf(curve, k1x, k1y, uint64(i)))
		msg := out[i*2*label.Size : (i+1)*2*label.Size]
		e0.Put(msg[0:16])
		e1.Put(msg[16:32])
	}
	if _, err := conn.Write(out); err != nil {
		return fmt.Errorf("ot: sending ciphertexts: %w", err)
	}
	return nil
}

func dhReceive(conn io.ReadWriter, choices Bitset) ([]label.L, error) {
	baseOTRounds.Add(1)
	curve := elliptic.P256()
	ptBuf := make([]byte, pointSize)
	if _, err := io.ReadFull(conn, ptBuf); err != nil {
		return nil, fmt.Errorf("ot: reading A: %w", err)
	}
	ax, ay := elliptic.Unmarshal(curve, ptBuf)
	if ax == nil {
		return nil, fmt.Errorf("ot: invalid point A")
	}

	n := choices.Len()
	type state struct{ b *big.Int }
	states := make([]state, n)
	// One batched write for the B points, mirroring the sender's
	// batched ciphertext phase: identical bytes, far fewer frames on a
	// framed transport.
	bPoints := make([]byte, pointSize*n)
	for i := range states {
		b, err := rand.Int(rand.Reader, curve.Params().N)
		if err != nil {
			return nil, fmt.Errorf("ot: sampling scalar: %w", err)
		}
		states[i].b = b
		bx, by := curve.ScalarBaseMult(b.Bytes())
		if choices.Bit(i) == 1 {
			bx, by = curve.Add(bx, by, ax, ay)
		}
		copy(bPoints[i*pointSize:], elliptic.Marshal(curve, bx, by))
	}
	if _, err := conn.Write(bPoints); err != nil {
		return nil, fmt.Errorf("ot: sending B points: %w", err)
	}

	out := make([]label.L, n)
	msg := make([]byte, 2*label.Size)
	for i := range out {
		if _, err := io.ReadFull(conn, msg); err != nil {
			return nil, fmt.Errorf("ot: reading ciphertexts %d: %w", i, err)
		}
		kx, ky := curve.ScalarMult(ax, ay, states[i].b.Bytes())
		k := kdf(curve, kx, ky, uint64(i))
		if choices.Bit(i) == 1 {
			out[i] = label.FromBytes(msg[16:32]).Xor(k)
		} else {
			out[i] = label.FromBytes(msg[0:16]).Xor(k)
		}
	}
	return out, nil
}

// kdf hashes a curve point and transfer index into a label-sized key.
func kdf(curve elliptic.Curve, x, y *big.Int, idx uint64) label.L {
	h := sha256.New()
	h.Write(elliptic.Marshal(curve, x, y))
	var ib [8]byte
	for i := 0; i < 8; i++ {
		ib[i] = byte(idx >> uint(8*i))
	}
	h.Write(ib[:])
	sum := h.Sum(nil)
	return label.FromBytes(sum[:16])
}
