package ot

import (
	"math/rand"
	"net"
	"testing"

	"haac/internal/label"
)

func runOT(t *testing.T, proto Protocol, n int, seed int64) ([]Pair, []bool, []label.L) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	src := label.NewSource(uint64(seed))
	pairs := make([]Pair, n)
	choices := make([]bool, n)
	for i := range pairs {
		pairs[i] = Pair{M0: src.Next(), M1: src.Next()}
		choices[i] = rng.Intn(2) == 1
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() { errc <- Send(a, proto, pairs) }()
	got, err := Receive(b, proto, choices)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	return pairs, choices, got
}

func TestInsecureOT(t *testing.T) {
	pairs, choices, got := runOT(t, Insecure, 64, 1)
	for i := range got {
		want := pairs[i].M0
		if choices[i] {
			want = pairs[i].M1
		}
		if got[i] != want {
			t.Fatalf("transfer %d: wrong message", i)
		}
	}
}

func TestDHOTCorrectness(t *testing.T) {
	pairs, choices, got := runOT(t, DH, 16, 2)
	for i := range got {
		want := pairs[i].M0
		other := pairs[i].M1
		if choices[i] {
			want, other = other, want
		}
		if got[i] != want {
			t.Fatalf("transfer %d: wrong message", i)
		}
		if got[i] == other {
			t.Fatalf("transfer %d: received the unchosen message", i)
		}
	}
}

func TestDHOTDistinctKeysPerIndex(t *testing.T) {
	// Identical pairs at different indices must produce different
	// ciphertexts (the kdf binds the transfer index).
	src := label.NewSource(3)
	m := Pair{M0: src.Next(), M1: src.Next()}
	pairs := []Pair{m, m}
	choices := []bool{false, false}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() { errc <- Send(a, DH, pairs) }()
	got, err := Receive(b, DH, choices)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got[0] != m.M0 || got[1] != m.M0 {
		t.Fatal("decryption failed")
	}
}

func TestUnknownProtocolRejected(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if err := Send(a, Protocol(99), nil); err == nil {
		t.Fatal("unknown protocol accepted by Send")
	}
	if _, err := Receive(b, Protocol(99), nil); err == nil {
		t.Fatal("unknown protocol accepted by Receive")
	}
}

func TestIKNPCorrectness(t *testing.T) {
	pairs, choices, got := runOT(t, IKNP, 777, 4)
	for i := range got {
		want, other := pairs[i].M0, pairs[i].M1
		if choices[i] {
			want, other = other, want
		}
		if got[i] != want {
			t.Fatalf("transfer %d: wrong message", i)
		}
		if got[i] == other {
			t.Fatalf("transfer %d: received the unchosen message", i)
		}
	}
}

func TestIKNPNonMultipleOfEight(t *testing.T) {
	// Batch sizes that don't fill whole bytes exercise the padding.
	for _, n := range []int{1, 7, 9, 130} {
		pairs, choices, got := runOT(t, IKNP, n, int64(100+n))
		for i := range got {
			want := pairs[i].M0
			if choices[i] {
				want = pairs[i].M1
			}
			if got[i] != want {
				t.Fatalf("n=%d transfer %d wrong", n, i)
			}
		}
	}
}

func TestIKNPEmptyBatch(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() { errc <- Send(a, IKNP, nil) }()
	out, err := Receive(b, IKNP, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatal("non-empty result for empty batch")
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestPRGDeterministicAndSeedSeparated(t *testing.T) {
	s1 := label.L{Lo: 1, Hi: 2}
	s2 := label.L{Lo: 1, Hi: 3}
	a := prgExpand(s1, 100)
	b := prgExpand(s1, 100)
	c := prgExpand(s2, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PRG not deterministic")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("PRG ignores seed")
	}
}

func TestRowHashBindsIndex(t *testing.T) {
	var r row
	r[0] = 42
	if rowHash(1, r) == rowHash(2, r) {
		t.Fatal("row hash ignores transfer index")
	}
}
