package ot

import (
	"math/rand"
	"net"
	"testing"

	"haac/internal/label"
)

func runOT(t *testing.T, proto Protocol, n int, seed int64) ([]Pair, []bool, []label.L) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	src := label.NewSource(uint64(seed))
	pairs := make([]Pair, n)
	choices := make([]bool, n)
	for i := range pairs {
		pairs[i] = Pair{M0: src.Next(), M1: src.Next()}
		choices[i] = rng.Intn(2) == 1
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() { errc <- Send(a, proto, pairs) }()
	got, err := Receive(b, proto, choices)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	return pairs, choices, got
}

func TestInsecureOT(t *testing.T) {
	pairs, choices, got := runOT(t, Insecure, 64, 1)
	for i := range got {
		want := pairs[i].M0
		if choices[i] {
			want = pairs[i].M1
		}
		if got[i] != want {
			t.Fatalf("transfer %d: wrong message", i)
		}
	}
}

func TestDHOTCorrectness(t *testing.T) {
	pairs, choices, got := runOT(t, DH, 16, 2)
	for i := range got {
		want := pairs[i].M0
		other := pairs[i].M1
		if choices[i] {
			want, other = other, want
		}
		if got[i] != want {
			t.Fatalf("transfer %d: wrong message", i)
		}
		if got[i] == other {
			t.Fatalf("transfer %d: received the unchosen message", i)
		}
	}
}

func TestDHOTDistinctKeysPerIndex(t *testing.T) {
	// Identical pairs at different indices must produce different
	// ciphertexts (the kdf binds the transfer index).
	src := label.NewSource(3)
	m := Pair{M0: src.Next(), M1: src.Next()}
	pairs := []Pair{m, m}
	choices := []bool{false, false}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() { errc <- Send(a, DH, pairs) }()
	got, err := Receive(b, DH, choices)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got[0] != m.M0 || got[1] != m.M0 {
		t.Fatal("decryption failed")
	}
}

func TestUnknownProtocolRejected(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if err := Send(a, Protocol(99), nil); err == nil {
		t.Fatal("unknown protocol accepted by Send")
	}
	if _, err := Receive(b, Protocol(99), nil); err == nil {
		t.Fatal("unknown protocol accepted by Receive")
	}
}

func TestIKNPCorrectness(t *testing.T) {
	pairs, choices, got := runOT(t, IKNP, 777, 4)
	for i := range got {
		want, other := pairs[i].M0, pairs[i].M1
		if choices[i] {
			want, other = other, want
		}
		if got[i] != want {
			t.Fatalf("transfer %d: wrong message", i)
		}
		if got[i] == other {
			t.Fatalf("transfer %d: received the unchosen message", i)
		}
	}
}

func TestIKNPNonMultipleOfEight(t *testing.T) {
	// Batch sizes that don't fill whole bytes exercise the padding.
	for _, n := range []int{1, 7, 9, 130} {
		pairs, choices, got := runOT(t, IKNP, n, int64(100+n))
		for i := range got {
			want := pairs[i].M0
			if choices[i] {
				want = pairs[i].M1
			}
			if got[i] != want {
				t.Fatalf("n=%d transfer %d wrong", n, i)
			}
		}
	}
}

func TestIKNPEmptyBatch(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() { errc <- Send(a, IKNP, nil) }()
	out, err := Receive(b, IKNP, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatal("non-empty result for empty batch")
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestPRGDeterministicAndSeedSeparated(t *testing.T) {
	expand := func(seed label.L, words int) []uint64 {
		var p prgStream
		p.init(seed)
		out := make([]uint64, words)
		p.expand(out)
		return out
	}
	a := expand(label.L{Lo: 1, Hi: 2}, 13)
	b := expand(label.L{Lo: 1, Hi: 2}, 13)
	c := expand(label.L{Lo: 1, Hi: 3}, 13)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PRG not deterministic")
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("PRG ignores seed")
	}
}

func TestPRGStreamContinues(t *testing.T) {
	// Two expand calls must continue one stream: chunked extension
	// relies on per-column counter state persisting across chunks.
	var whole, split prgStream
	whole.init(label.L{Lo: 5, Hi: 6})
	split.init(label.L{Lo: 5, Hi: 6})
	w := make([]uint64, 32)
	whole.expand(w)
	s := make([]uint64, 32)
	split.expand(s[:20]) // chunk expansions are block-aligned (even words)
	split.expand(s[20:])
	for i := range w {
		if w[i] != s[i] {
			t.Fatalf("split PRG stream diverges at word %d", i)
		}
	}
}

func TestRowHashBindsIndex(t *testing.T) {
	var r row
	r[0] = 42
	if rowHash(1, r) == rowHash(2, r) {
		t.Fatal("row hash ignores transfer index")
	}
	var r2 row
	r2[0] = 43
	if rowHash(1, r) == rowHash(1, r2) {
		t.Fatal("row hash ignores row")
	}
}

func TestCRHash4MatchesScalar(t *testing.T) {
	rows := []row{{1, 2}, {3, 4}, {0xffffffffffffffff, 0}, {7, 0x8000000000000000}}
	l0, l1, l2, l3 := crHasher.Hash4(
		rowLabel(rows[0]), rowLabel(rows[1]), rowLabel(rows[2]), rowLabel(rows[3]),
		10, 11, 12, 13)
	got := []label.L{l0, l1, l2, l3}
	for i, r := range rows {
		if want := rowHash(uint64(10+i), r); got[i] != want {
			t.Fatalf("Hash4 lane %d differs from scalar row hash", i)
		}
	}
}
