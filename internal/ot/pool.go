package ot

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"haac/internal/label"
)

// Precomputed OT: a Pool runs the expensive part of oblivious transfer
// — base OTs plus IKNP extension — ahead of time against a fixed peer
// and stores the resulting *random*-OT correlations. Online, the stored
// correlations are derandomized against the real messages and choice
// bits (Beaver's trick) in a single XOR round, so a serving session's
// input phase costs two symmetric-speed messages instead of a base-OT
// handshake.
//
// Correlations: for transfer j the sender holds two random labels
// (r0, r1) and the receiver holds a random bit d and the label r_d.
// They come from the IKNP rows for free — the sender keeps
// r0 = H(j, q_j) and r1 = H(j, q_j ^ s), the receiver keeps d and
// H(j, t_j) — so a fill round sends only the receiver's 16 bytes/OT
// masked columns and no ciphertexts at all.
//
// Fill wire format (receiver → sender), per chunk of ≤ 16384 transfers:
//
//	128 masked columns u_i, ceil(n/8) bytes each (identical layout to
//	an IKNP extension chunk; no ciphertext phase follows)
//
// Both sides must agree on the fill size n out of band — the session
// layer's refill op carries it. The base-OT state (the sender's secret
// s and both sides' per-column PRG streams) persists across fills, so a
// connection pays its base OTs exactly once no matter how many refills
// follow.
//
// Derandomization wire format, for a batch of n real transfers:
//
//	receiver → sender: 0xD5 | count u32 (LE) | e bits, ceil(n/8) bytes
//	sender → receiver: n × 32 bytes: y0 | y1 per transfer
//
// e_j = c_j ^ d_j is the choice correction (packed LSB-first like
// Bitset), and the sender answers y_i = m_i ^ r_(i^e_j), i.e. it swaps
// its two random masks when e_j is set; the receiver recovers
// m_c = y_c ^ r_d. Correlations are strictly consumed front to back and
// never reused: both frames are refused (ErrDerand) or fail
// (ErrPoolDrained) rather than stretch the pool.

// ErrPoolDrained reports a derandomization batch larger than the pool's
// current level; the caller falls back to an on-demand protocol.
var ErrPoolDrained = errors.New("ot: pool drained")

// ErrDerand reports a structurally invalid derandomization frame: bad
// magic or a count that does not match the agreed batch.
var ErrDerand = errors.New("ot: malformed derandomization frame")

const (
	derandMagic     = 0xD5
	derandHeaderLen = 5
	maskedPairBytes = 2 * label.Size
)

// Pool holds precomputed random-OT correlations against one peer,
// bound to the connection its base OTs ran over. One side constructs
// a sender pool, the other a receiver pool; Fill and the derand calls
// must then alternate in lockstep on both ends (the session layer's
// single-connection serialization provides that for free). A Pool is
// not safe for concurrent use.
type Pool struct {
	sender bool

	// Persistent extension state, sender role: the secret choice
	// vector s and one PRG stream per base OT.
	sBits []bool
	sRow  row
	prgs  []prgStream

	// Persistent extension state, receiver role: both PRG streams per
	// base OT.
	prg0, prg1 []prgStream

	tweak uint64 // next transfer index, monotone across fills
	sc    *extScratch
	rnd   []byte // receiver: per-chunk random choice bytes

	// Stored correlations, consumed front to back from head.
	r0, r1 []label.L // sender: both random masks per transfer
	rl     []label.L // receiver: the learned mask r_d per transfer
	d      []byte    // receiver: the random choice bit per transfer
	head   int

	ein  []byte // online scratch: correction frame
	mout []byte // online scratch: masked-pair slab
}

// NewSenderPool runs the one-time base-OT setup for the message-sender
// side over conn and returns an empty pool ready to Fill. base selects
// the protocol for the 128 base OTs: DH (secure) or Insecure
// (benchmarks only). The peer must run NewReceiverPool with the same
// base at the same point in the stream.
func NewSenderPool(conn io.ReadWriter, base Protocol) (*Pool, error) {
	if base != DH && base != Insecure {
		return nil, fmt.Errorf("ot: pool base protocol must be DH or Insecure, got %d", base)
	}
	sBits, sRow, err := sampleS()
	if err != nil {
		return nil, err
	}
	seeds, err := ReceiveBitset(conn, base, BitsetFromBools(sBits))
	if err != nil {
		return nil, fmt.Errorf("ot: pool base OTs: %w", err)
	}
	p := &Pool{sender: true, sBits: sBits, sRow: sRow, prgs: make([]prgStream, kappa)}
	for i := range p.prgs {
		p.prgs[i].init(seeds[i])
	}
	return p, nil
}

// NewReceiverPool runs the one-time base-OT setup for the choice-maker
// side over conn; see NewSenderPool.
func NewReceiverPool(conn io.ReadWriter, base Protocol) (*Pool, error) {
	if base != DH && base != Insecure {
		return nil, fmt.Errorf("ot: pool base protocol must be DH or Insecure, got %d", base)
	}
	basePairs, err := baseSeedPairs()
	if err != nil {
		return nil, err
	}
	if err := Send(conn, base, basePairs); err != nil {
		return nil, fmt.Errorf("ot: pool base OTs: %w", err)
	}
	p := &Pool{prg0: make([]prgStream, kappa), prg1: make([]prgStream, kappa)}
	for i := range p.prg0 {
		p.prg0[i].init(basePairs[i].M0)
		p.prg1[i].init(basePairs[i].M1)
	}
	return p, nil
}

// Sender reports whether this is the message-sender side of the pool.
func (p *Pool) Sender() bool { return p.sender }

// Level returns the number of unconsumed correlations.
func (p *Pool) Level() int {
	if p.sender {
		return len(p.r0) - p.head
	}
	return len(p.rl) - p.head
}

// Fill extends the pool by n correlations, streaming in IKNP-sized
// chunks. Both sides must call Fill with the same n at the same point
// in the connection's byte stream.
func (p *Pool) Fill(conn io.ReadWriter, n int) error {
	if n <= 0 {
		return nil
	}
	p.compact()
	p.ensureScratch(n)
	for off := 0; off < n; off += extChunk {
		mc := n - off
		if mc > extChunk {
			mc = extChunk
		}
		var err error
		if p.sender {
			err = p.fillSendChunk(conn, mc)
		} else {
			err = p.fillRecvChunk(conn, mc)
		}
		if err != nil {
			return err
		}
		p.tweak += uint64(mc)
	}
	return nil
}

// SendDerand consumes len(pairs) pooled correlations to obliviously
// send the given message pairs: it reads the receiver's choice
// correction and answers with one masked-pair slab (see the wire format
// above). Steady state performs no allocation and no public-key work.
func (p *Pool) SendDerand(conn io.ReadWriter, pairs []Pair) error {
	n := len(pairs)
	if n == 0 {
		return nil
	}
	if !p.sender {
		return errors.New("ot: SendDerand on a receiver pool")
	}
	if p.Level() < n {
		return fmt.Errorf("%w: have %d, need %d", ErrPoolDrained, p.Level(), n)
	}
	ebytes := (n + 7) / 8
	p.ein = growBytes(p.ein, derandHeaderLen+ebytes)
	frame := p.ein[:derandHeaderLen+ebytes]
	if err := readDerandFrame(conn, n, frame); err != nil {
		return err
	}
	e := frame[derandHeaderLen:]
	p.mout = growBytes(p.mout, maskedPairBytes*n)
	out := p.mout[:maskedPairBytes*n]
	for j := 0; j < n; j++ {
		r0, r1 := p.r0[p.head+j], p.r1[p.head+j]
		if e[j>>3]>>(uint(j)&7)&1 == 1 {
			r0, r1 = r1, r0
		}
		pairs[j].M0.Xor(r0).Put(out[j*maskedPairBytes:])
		pairs[j].M1.Xor(r1).Put(out[j*maskedPairBytes+label.Size:])
	}
	p.head += n
	if _, err := conn.Write(out); err != nil {
		return fmt.Errorf("ot: sending masked pairs: %w", err)
	}
	return nil
}

// ReceiveDerand consumes choices.Len() pooled correlations to learn the
// chosen message per transfer, writing them into out (whose length must
// match). Steady state performs no allocation and no public-key work.
func (p *Pool) ReceiveDerand(conn io.ReadWriter, choices Bitset, out []label.L) error {
	n := choices.Len()
	if len(out) != n {
		return fmt.Errorf("ot: ReceiveDerand output length %d, want %d", len(out), n)
	}
	if n == 0 {
		return nil
	}
	if p.sender {
		return errors.New("ot: ReceiveDerand on a sender pool")
	}
	if p.Level() < n {
		return fmt.Errorf("%w: have %d, need %d", ErrPoolDrained, p.Level(), n)
	}
	ebytes := (n + 7) / 8
	p.ein = growBytes(p.ein, derandHeaderLen+ebytes)
	frame := p.ein[:derandHeaderLen+ebytes]
	frame[0] = derandMagic
	binary.LittleEndian.PutUint32(frame[1:derandHeaderLen], uint32(n))
	e := frame[derandHeaderLen:]
	for i := range e {
		e[i] = 0
	}
	for j := 0; j < n; j++ {
		if choices.Bit(j) != int(p.d[p.head+j]) {
			e[j>>3] |= 1 << (uint(j) & 7)
		}
	}
	if _, err := conn.Write(frame); err != nil {
		return fmt.Errorf("ot: sending derand frame: %w", err)
	}
	p.mout = growBytes(p.mout, maskedPairBytes*n)
	in := p.mout[:maskedPairBytes*n]
	if _, err := io.ReadFull(conn, in); err != nil {
		return fmt.Errorf("ot: reading masked pairs: %w", err)
	}
	for j := 0; j < n; j++ {
		off := j*maskedPairBytes + choices.Bit(j)*label.Size
		out[j] = label.FromBytes(in[off : off+label.Size]).Xor(p.rl[p.head+j])
	}
	p.head += n
	return nil
}

// readDerandFrame reads and validates one choice-correction frame for
// an agreed batch of want transfers into frame, which must hold
// derandHeaderLen + ceil(want/8) bytes. Structural refusals wrap
// ErrDerand; transport failures return the underlying error.
func readDerandFrame(r io.Reader, want int, frame []byte) error {
	if _, err := io.ReadFull(r, frame[:derandHeaderLen]); err != nil {
		return fmt.Errorf("ot: reading derand frame: %w", err)
	}
	if frame[0] != derandMagic {
		return fmt.Errorf("%w: bad magic 0x%02x", ErrDerand, frame[0])
	}
	if got := binary.LittleEndian.Uint32(frame[1:derandHeaderLen]); got != uint32(want) {
		return fmt.Errorf("%w: count %d, want %d", ErrDerand, got, want)
	}
	if _, err := io.ReadFull(r, frame[derandHeaderLen:]); err != nil {
		return fmt.Errorf("ot: reading correction bits: %w", err)
	}
	return nil
}

// compact discards consumed correlations so fills append into the slack
// the online phase opened up instead of growing without bound.
func (p *Pool) compact() {
	if p.head == 0 {
		return
	}
	if p.sender {
		p.r0 = p.r0[:copy(p.r0, p.r0[p.head:])]
		p.r1 = p.r1[:copy(p.r1, p.r1[p.head:])]
	} else {
		p.rl = p.rl[:copy(p.rl, p.rl[p.head:])]
		p.d = p.d[:copy(p.d, p.d[p.head:])]
	}
	p.head = 0
}

// ensureScratch sizes the chunk working set for a fill of n transfers;
// it grows monotonically and is reused across fills. The ciphertext
// slab of a plain extension is never allocated — fills have no
// ciphertext phase.
func (p *Pool) ensureScratch(n int) {
	chunk := n
	if chunk > extChunk {
		chunk = extChunk
	}
	words := (chunk + 63) / 64
	if p.sc != nil && len(p.sc.rows) >= words*64 {
		return
	}
	p.sc = &extScratch{
		cols: make([]uint64, kappa*words),
		aux:  make([]uint64, 2*words),
		rows: make([]row, words*64),
		ubuf: make([]byte, words*8),
	}
	if !p.sender {
		p.rnd = make([]byte, words*8)
	}
}

// fillSendChunk runs the sender side of one fill chunk: read the masked
// columns, build Q, transpose, and bank (H(j, q), H(j, q^s)) per row.
func (p *Pool) fillSendChunk(conn io.ReadWriter, mc int) error {
	colWords := (mc + 63) / 64
	colBytes := (mc + 7) / 8
	sc := p.sc

	for i := 0; i < kappa; i++ {
		col := sc.cols[i*colWords : (i+1)*colWords]
		p.prgs[i].expand(col)
		u := sc.ubuf[:colBytes]
		if _, err := io.ReadFull(conn, u); err != nil {
			return fmt.Errorf("ot: reading fill column %d: %w", i, err)
		}
		if p.sBits[i] {
			xorBytesIntoWords(col, u)
		}
	}

	rows := sc.rows[:colWords*64]
	transposeColumns(rows, sc.cols[:kappa*colWords], colWords)

	j := 0
	for ; j+1 < mc; j += 2 {
		q0 := rows[j]
		q0s := q0
		q0s.xor(p.sRow)
		q1 := rows[j+1]
		q1s := q1
		q1s.xor(p.sRow)
		t0, t1 := p.tweak+uint64(j), p.tweak+uint64(j)+1
		k00, k01, k10, k11 := crHasher.Hash4(rowLabel(q0), rowLabel(q0s), rowLabel(q1), rowLabel(q1s), t0, t0, t1, t1)
		p.r0 = append(p.r0, k00, k10)
		p.r1 = append(p.r1, k01, k11)
	}
	if j < mc {
		q := rows[j]
		qs := q
		qs.xor(p.sRow)
		t := p.tweak + uint64(j)
		p.r0 = append(p.r0, rowHash(t, q))
		p.r1 = append(p.r1, rowHash(t, qs))
	}
	return nil
}

// fillRecvChunk runs the receiver side of one fill chunk: draw random
// choice bits, send the masked columns, transpose, and bank
// (d, H(j, t_j)) per row.
func (p *Pool) fillRecvChunk(conn io.ReadWriter, mc int) error {
	colWords := (mc + 63) / 64
	colBytes := (mc + 7) / 8
	sc := p.sc

	half := len(sc.aux) / 2
	ucol := sc.aux[:colWords]
	rcol := sc.aux[half : half+colWords]
	if _, err := rand.Read(p.rnd[:colWords*8]); err != nil {
		return fmt.Errorf("ot: sampling pool choices: %w", err)
	}
	for w := 0; w < colWords; w++ {
		rcol[w] = binary.LittleEndian.Uint64(p.rnd[w*8:])
	}
	if tail := uint(mc % 64); tail != 0 {
		rcol[colWords-1] &= 1<<tail - 1
	}

	for i := 0; i < kappa; i++ {
		col0 := sc.cols[i*colWords : (i+1)*colWords]
		p.prg0[i].expand(col0)
		p.prg1[i].expand(ucol)
		for w := range ucol {
			ucol[w] ^= col0[w] ^ rcol[w]
		}
		u := sc.ubuf[:colBytes]
		for w := 0; w < colWords; w++ {
			if (w+1)*8 <= colBytes {
				binary.LittleEndian.PutUint64(u[w*8:], ucol[w])
			} else {
				var last [8]byte
				binary.LittleEndian.PutUint64(last[:], ucol[w])
				copy(u[w*8:], last[:])
			}
		}
		if _, err := conn.Write(u); err != nil {
			return fmt.Errorf("ot: sending fill column %d: %w", i, err)
		}
	}

	rows := sc.rows[:colWords*64]
	transposeColumns(rows, sc.cols[:kappa*colWords], colWords)

	j := 0
	for ; j+3 < mc; j += 4 {
		t := p.tweak + uint64(j)
		k0, k1, k2, k3 := crHasher.Hash4(rowLabel(rows[j]), rowLabel(rows[j+1]), rowLabel(rows[j+2]), rowLabel(rows[j+3]), t, t+1, t+2, t+3)
		p.rl = append(p.rl, k0, k1, k2, k3)
		p.d = append(p.d,
			byte(rcol[j>>6]>>(uint(j)&63)&1),
			byte(rcol[(j+1)>>6]>>(uint(j+1)&63)&1),
			byte(rcol[(j+2)>>6]>>(uint(j+2)&63)&1),
			byte(rcol[(j+3)>>6]>>(uint(j+3)&63)&1))
	}
	for ; j < mc; j++ {
		p.rl = append(p.rl, rowHash(p.tweak+uint64(j), rows[j]))
		p.d = append(p.d, byte(rcol[j>>6]>>(uint(j)&63)&1))
	}
	return nil
}

// growBytes returns b resized to n bytes, reallocating only when the
// capacity is short — the steady-state path reuses the old backing
// array.
func growBytes(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}
