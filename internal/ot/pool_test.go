package ot

import (
	"bytes"
	"crypto/rand"
	"errors"
	"io"
	"net"
	"testing"

	"haac/internal/label"
)

// newPoolPair builds a connected sender/receiver pool over a pipe,
// returning both ends of the pipe for the online phase.
func newPoolPair(t *testing.T, base Protocol) (*Pool, *Pool, net.Conn, net.Conn) {
	t.Helper()
	cs, cr := net.Pipe()
	t.Cleanup(func() { cs.Close(); cr.Close() })
	var sp *Pool
	errc := make(chan error, 1)
	go func() {
		var err error
		sp, err = NewSenderPool(cs, base)
		errc <- err
	}()
	rp, err := NewReceiverPool(cr, base)
	if err != nil {
		t.Fatalf("NewReceiverPool: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("NewSenderPool: %v", err)
	}
	return sp, rp, cs, cr
}

// fillBoth runs one lockstep Fill of n on both pools.
func fillBoth(t *testing.T, sp, rp *Pool, cs, cr net.Conn, n int) {
	t.Helper()
	errc := make(chan error, 1)
	go func() { errc <- sp.Fill(cs, n) }()
	if err := rp.Fill(cr, n); err != nil {
		t.Fatalf("receiver Fill(%d): %v", n, err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("sender Fill(%d): %v", n, err)
	}
}

// derandBoth runs one lockstep derandomized batch and checks the
// receiver learned exactly its chosen messages.
func derandBoth(t *testing.T, sp, rp *Pool, cs, cr net.Conn, n int) {
	t.Helper()
	pairs := make([]Pair, n)
	choices := NewBitset(n)
	var cb [1]byte
	for i := range pairs {
		m0, _ := label.Rand()
		m1, _ := label.Rand()
		pairs[i] = Pair{M0: m0, M1: m1}
		rand.Read(cb[:])
		choices.Set(i, cb[0]&1 == 1)
	}
	out := make([]label.L, n)
	errc := make(chan error, 1)
	go func() { errc <- sp.SendDerand(cs, pairs) }()
	if err := rp.ReceiveDerand(cr, choices, out); err != nil {
		t.Fatalf("ReceiveDerand(%d): %v", n, err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("SendDerand(%d): %v", n, err)
	}
	for i := range pairs {
		want := pairs[i].M0
		if choices.Bit(i) == 1 {
			want = pairs[i].M1
		}
		if out[i] != want {
			t.Fatalf("transfer %d: got %v, want %v (choice %d)", i, out[i], want, choices.Bit(i))
		}
	}
}

func TestPoolDerandMatchesChoices(t *testing.T) {
	sp, rp, cs, cr := newPoolPair(t, Insecure)
	// Ragged batch sizes cover bit-packing tails (1, 63..65) and
	// interleave refills with consumption across the compaction path.
	fillBoth(t, sp, rp, cs, cr, 200)
	if sp.Level() != 200 || rp.Level() != 200 {
		t.Fatalf("levels after fill: %d/%d, want 200", sp.Level(), rp.Level())
	}
	for _, n := range []int{1, 63, 64, 65, 7} {
		derandBoth(t, sp, rp, cs, cr, n)
	}
	if got := sp.Level(); got != 0 {
		t.Fatalf("sender level after draining: %d, want 0", got)
	}
	fillBoth(t, sp, rp, cs, cr, 130)
	derandBoth(t, sp, rp, cs, cr, 130)
}

func TestPoolDerandDHBase(t *testing.T) {
	before := BaseOTRounds()
	sp, rp, cs, cr := newPoolPair(t, DH)
	if got := BaseOTRounds() - before; got != 2 {
		t.Fatalf("base-OT rounds for setup: %d, want 2 (one per side)", got)
	}
	fillBoth(t, sp, rp, cs, cr, 96)
	derandBoth(t, sp, rp, cs, cr, 96)
	if got := BaseOTRounds() - before; got != 2 {
		t.Fatalf("base-OT rounds after fill+derand: %d, want still 2", got)
	}
}

func TestPoolMultiChunkFill(t *testing.T) {
	// A fill larger than extChunk must stream in chunks and keep the
	// tweak sequence monotone across them.
	sp, rp, cs, cr := newPoolPair(t, Insecure)
	n := extChunk + 257
	fillBoth(t, sp, rp, cs, cr, n)
	if sp.Level() != n || rp.Level() != n {
		t.Fatalf("levels after multi-chunk fill: %d/%d, want %d", sp.Level(), rp.Level(), n)
	}
	derandBoth(t, sp, rp, cs, cr, 1024)
	derandBoth(t, sp, rp, cs, cr, n-1024)
}

func TestPoolDrained(t *testing.T) {
	sp, rp, cs, cr := newPoolPair(t, Insecure)
	fillBoth(t, sp, rp, cs, cr, 8)
	if err := sp.SendDerand(cs, make([]Pair, 9)); !errors.Is(err, ErrPoolDrained) {
		t.Fatalf("SendDerand over level: %v, want ErrPoolDrained", err)
	}
	out := make([]label.L, 9)
	if err := rp.ReceiveDerand(cr, NewBitset(9), out); !errors.Is(err, ErrPoolDrained) {
		t.Fatalf("ReceiveDerand over level: %v, want ErrPoolDrained", err)
	}
	// The refusal consumed nothing: the batch that fits still works.
	derandBoth(t, sp, rp, cs, cr, 8)
}

func TestPoolRoleMisuse(t *testing.T) {
	sp, rp, _, _ := newPoolPair(t, Insecure)
	if err := sp.ReceiveDerand(nil, NewBitset(1), make([]label.L, 1)); err == nil {
		t.Fatal("ReceiveDerand on sender pool succeeded")
	}
	if err := rp.SendDerand(nil, make([]Pair, 1)); err == nil {
		t.Fatal("SendDerand on receiver pool succeeded")
	}
	if err := rp.ReceiveDerand(nil, NewBitset(2), make([]label.L, 1)); err == nil {
		t.Fatal("ReceiveDerand with mismatched output length succeeded")
	}
	if !sp.Sender() || rp.Sender() {
		t.Fatal("Sender() role reporting wrong")
	}
}

func TestPoolZeroBatch(t *testing.T) {
	sp, rp, _, _ := newPoolPair(t, Insecure)
	if err := sp.SendDerand(nil, nil); err != nil {
		t.Fatalf("empty SendDerand: %v", err)
	}
	if err := rp.ReceiveDerand(nil, NewBitset(0), nil); err != nil {
		t.Fatalf("empty ReceiveDerand: %v", err)
	}
	if err := sp.Fill(nil, 0); err != nil {
		t.Fatalf("empty Fill: %v", err)
	}
}

func TestDerandFrameRefusals(t *testing.T) {
	frame := make([]byte, derandHeaderLen+1)
	// Bad magic.
	bad := []byte{0x00, 3, 0, 0, 0, 0b101}
	if err := readDerandFrame(bytes.NewReader(bad), 3, frame); !errors.Is(err, ErrDerand) {
		t.Fatalf("bad magic: %v, want ErrDerand", err)
	}
	// Count mismatch.
	mismatch := []byte{derandMagic, 4, 0, 0, 0, 0b101}
	if err := readDerandFrame(bytes.NewReader(mismatch), 3, frame); !errors.Is(err, ErrDerand) {
		t.Fatalf("count mismatch: %v, want ErrDerand", err)
	}
	// Truncated frames surface the transport error, not ErrDerand.
	if err := readDerandFrame(bytes.NewReader([]byte{derandMagic, 3}), 3, frame); err == nil || errors.Is(err, ErrDerand) {
		t.Fatalf("truncated header: %v, want transport error", err)
	}
	if err := readDerandFrame(bytes.NewReader([]byte{derandMagic, 3, 0, 0, 0}), 3, frame); err == nil || errors.Is(err, ErrDerand) {
		t.Fatalf("truncated bits: %v, want transport error", err)
	}
	// A well-formed frame parses.
	good := []byte{derandMagic, 3, 0, 0, 0, 0b101}
	if err := readDerandFrame(bytes.NewReader(good), 3, frame); err != nil {
		t.Fatalf("good frame: %v", err)
	}
	if frame[derandHeaderLen] != 0b101 {
		t.Fatalf("correction bits: %08b, want 101", frame[derandHeaderLen])
	}
}

// FuzzDerandFrame hardens the choice-correction parser the way the
// session frame parsers are hardened: arbitrary bytes must produce
// either a clean parse or a typed/transport error — never a panic or a
// stuck read.
func FuzzDerandFrame(f *testing.F) {
	f.Add([]byte{derandMagic, 3, 0, 0, 0, 0b101}, uint16(3))
	f.Add([]byte{derandMagic, 0, 1, 0, 0}, uint16(256))
	f.Add([]byte{0x00, 3, 0, 0, 0, 0xff}, uint16(3))
	f.Add([]byte{}, uint16(1))
	f.Fuzz(func(t *testing.T, data []byte, want uint16) {
		n := int(want)%4096 + 1
		frame := make([]byte, derandHeaderLen+(n+7)/8)
		err := readDerandFrame(bytes.NewReader(data), n, frame)
		if err == nil {
			// A clean parse must round-trip: header fields match what
			// the receiver side would have encoded for n.
			if frame[0] != derandMagic {
				t.Fatalf("clean parse with magic 0x%02x", frame[0])
			}
			return
		}
		if !errors.Is(err, ErrDerand) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}

// TestPoolNoReuseAcrossRefills drains and refills across compaction and
// verifies every batch still decodes correctly — a stale or duplicated
// correlation would desynchronize the masks and corrupt the output.
func TestPoolNoReuseAcrossRefills(t *testing.T) {
	sp, rp, cs, cr := newPoolPair(t, Insecure)
	for round := 0; round < 5; round++ {
		fillBoth(t, sp, rp, cs, cr, 50)
		derandBoth(t, sp, rp, cs, cr, 30)
		if sp.Level() != rp.Level() {
			t.Fatalf("round %d: levels diverged %d/%d", round, sp.Level(), rp.Level())
		}
	}
	derandBoth(t, sp, rp, cs, cr, sp.Level())
}

// TestPoolOnlineAllocFree gates the pooled tier's steady-state claim:
// after a warm-up batch sizes the scratch, derandomization allocates
// nothing on either side — the online phase is XORs and wire I/O only.
func TestPoolOnlineAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	sp, rp, cs, cr := newPoolPair(t, Insecure)
	const n, rounds = 256, 4
	fillBoth(t, sp, rp, cs, cr, n*(rounds+2))

	pairs := make([]Pair, n)
	choices := NewBitset(n)
	for i := range pairs {
		m0, _ := label.Rand()
		m1, _ := label.Rand()
		pairs[i] = Pair{M0: m0, M1: m1}
		choices.Set(i, i%3 == 0)
	}
	out := make([]label.L, n)
	// A persistent sender goroutine fed over buffered channels keeps
	// goroutine startup out of the measured rounds; AllocsPerRun counts
	// allocations on all goroutines, the sender's included.
	reqs := make(chan struct{}, rounds+2)
	errs := make(chan error, rounds+2)
	go func() {
		for range reqs {
			errs <- sp.SendDerand(cs, pairs)
		}
	}()
	round := func() {
		reqs <- struct{}{}
		if err := rp.ReceiveDerand(cr, choices, out); err != nil {
			t.Fatal(err)
		}
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	round() // warm-up: grows ein/mout scratch once
	if allocs := testing.AllocsPerRun(rounds, round); allocs > 0 {
		t.Fatalf("steady-state derandomization allocates %.1f times per batch, want 0", allocs)
	}
	close(reqs)
}
