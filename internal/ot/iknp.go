package ot

import (
	"crypto/aes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"

	"haac/internal/label"
)

// IKNP oblivious-transfer extension (Ishai-Kilian-Nissim-Petrank,
// semi-honest variant): k = 128 base OTs in the reverse direction are
// stretched into any number of transfers using only symmetric
// cryptography — the construction EMP and every practical GC framework
// use, since evaluator inputs routinely number in the tens of thousands
// (Hamm's 40960 input bits would need 40960 public-key operations with
// plain DH OT).
//
// Roles: the extension sender holds the message pairs; internally it
// plays the *receiver* of the k base OTs with a random choice vector s.
// The extension receiver plays the base sender with random seed pairs.
// Columns are expanded from the seeds with AES-CTR; rows are hashed with
// SHA-256 to break correlations.

const (
	kappa    = 128 // security parameter / base-OT count
	rowWords = kappa / 64
)

type row [rowWords]uint64

func (r *row) xor(o row) {
	for i := range r {
		r[i] ^= o[i]
	}
}

// prgExpand stretches a 16-byte seed into nBytes of pseudorandomness
// with AES-128 in counter mode.
func prgExpand(seed label.L, nBytes int) []byte {
	var key [16]byte
	seed.Put(key[:])
	blk, err := aes.NewCipher(key[:])
	if err != nil {
		panic("ot: aes.NewCipher: " + err.Error())
	}
	out := make([]byte, (nBytes+15)/16*16)
	var ctr [16]byte
	for i := 0; i < len(out); i += 16 {
		binary.LittleEndian.PutUint64(ctr[:8], uint64(i/16))
		blk.Encrypt(out[i:i+16], ctr[:])
	}
	return out[:nBytes]
}

// rowHash breaks the correlation between rows: H(j, q) truncated to a
// label.
func rowHash(j uint64, r row) label.L {
	var buf [8 + 16]byte
	binary.LittleEndian.PutUint64(buf[:8], j)
	binary.LittleEndian.PutUint64(buf[8:16], r[0])
	binary.LittleEndian.PutUint64(buf[16:24], r[1])
	sum := sha256.Sum256(buf[:])
	return label.FromBytes(sum[:16])
}

// iknpSend runs the extension sender for a batch of pairs. base selects
// the protocol used for the k base OTs.
func iknpSend(conn io.ReadWriter, base Protocol, pairs []Pair) error {
	m := len(pairs)
	if m == 0 {
		return nil
	}
	mBytes := (m + 7) / 8

	// 1. Base OTs, reversed: we receive with random choices s.
	sBits := make([]bool, kappa)
	var sRow row
	var rb [kappa / 8]byte
	if _, err := rand.Read(rb[:]); err != nil {
		return fmt.Errorf("ot: sampling s: %w", err)
	}
	for i := range sBits {
		sBits[i] = rb[i/8]>>(uint(i)%8)&1 == 1
		if sBits[i] {
			sRow[i/64] |= 1 << (uint(i) % 64)
		}
	}
	seeds, err := Receive(conn, base, sBits)
	if err != nil {
		return fmt.Errorf("ot: base OTs: %w", err)
	}

	// 2. Receive the masked columns u_i and build Q column-wise:
	// q_i = PRG(seed_{s_i}) xor (s_i ? u_i : 0).
	q := make([]row, m)
	u := make([]byte, mBytes)
	for i := 0; i < kappa; i++ {
		if _, err := io.ReadFull(conn, u); err != nil {
			return fmt.Errorf("ot: reading column %d: %w", i, err)
		}
		col := prgExpand(seeds[i], mBytes)
		if sBits[i] {
			for b := range col {
				col[b] ^= u[b]
			}
		}
		w, bit := i/64, uint(i)%64
		for j := 0; j < m; j++ {
			if col[j/8]>>(uint(j)%8)&1 == 1 {
				q[j][w] |= 1 << bit
			}
		}
	}

	// 3. Encrypt both messages per transfer: y0 = m0 ^ H(j, q_j),
	// y1 = m1 ^ H(j, q_j ^ s).
	out := make([]byte, 2*label.Size*m)
	for j := 0; j < m; j++ {
		k0 := rowHash(uint64(j), q[j])
		qs := q[j]
		qs.xor(sRow)
		k1 := rowHash(uint64(j), qs)
		pairs[j].M0.Xor(k0).Put(out[j*32 : j*32+16])
		pairs[j].M1.Xor(k1).Put(out[j*32+16 : j*32+32])
	}
	if _, err := conn.Write(out); err != nil {
		return fmt.Errorf("ot: sending ciphertexts: %w", err)
	}
	return nil
}

// iknpReceive runs the extension receiver for a batch of choice bits.
func iknpReceive(conn io.ReadWriter, base Protocol, choices []bool) ([]label.L, error) {
	m := len(choices)
	if m == 0 {
		return nil, nil
	}
	mBytes := (m + 7) / 8

	rBytes := make([]byte, mBytes)
	for j, c := range choices {
		if c {
			rBytes[j/8] |= 1 << (uint(j) % 8)
		}
	}

	// 1. Base OTs, reversed: we send seed pairs.
	basePairs := make([]Pair, kappa)
	for i := range basePairs {
		m0, err := label.Rand()
		if err != nil {
			return nil, err
		}
		m1, err := label.Rand()
		if err != nil {
			return nil, err
		}
		basePairs[i] = Pair{M0: m0, M1: m1}
	}
	if err := Send(conn, base, basePairs); err != nil {
		return nil, fmt.Errorf("ot: base OTs: %w", err)
	}

	// 2. Build T column-wise from PRG(seed0) and send the masked
	// columns u_i = PRG(seed0_i) ^ PRG(seed1_i) ^ r.
	t := make([]row, m)
	for i := 0; i < kappa; i++ {
		col0 := prgExpand(basePairs[i].M0, mBytes)
		col1 := prgExpand(basePairs[i].M1, mBytes)
		u := make([]byte, mBytes)
		for b := range u {
			u[b] = col0[b] ^ col1[b] ^ rBytes[b]
		}
		if _, err := conn.Write(u); err != nil {
			return nil, fmt.Errorf("ot: sending column %d: %w", i, err)
		}
		w, bit := i/64, uint(i)%64
		for j := 0; j < m; j++ {
			if col0[j/8]>>(uint(j)%8)&1 == 1 {
				t[j][w] |= 1 << bit
			}
		}
	}

	// 3. Decrypt the chosen message per transfer with H(j, t_j).
	enc := make([]byte, 2*label.Size*m)
	if _, err := io.ReadFull(conn, enc); err != nil {
		return nil, fmt.Errorf("ot: reading ciphertexts: %w", err)
	}
	out := make([]label.L, m)
	for j := 0; j < m; j++ {
		k := rowHash(uint64(j), t[j])
		off := j * 32
		if choices[j] {
			off += 16
		}
		out[j] = label.FromBytes(enc[off : off+16]).Xor(k)
	}
	return out, nil
}
