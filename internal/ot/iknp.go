package ot

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"

	"haac/internal/gc"
	"haac/internal/label"
)

// IKNP oblivious-transfer extension (Ishai-Kilian-Nissim-Petrank,
// semi-honest variant): k = 128 base OTs in the reverse direction are
// stretched into any number of transfers using only symmetric
// cryptography — the construction EMP and every practical GC framework
// use, since evaluator inputs routinely number in the tens of thousands
// (Hamm's 40960 input bits would need 40960 public-key operations with
// plain DH OT).
//
// Roles: the extension sender holds the message pairs; internally it
// plays the *receiver* of the k base OTs with a random choice vector s.
// The extension receiver plays the base sender with random seed pairs.
//
// The hot path is fully batched: columns are expanded from the base-OT
// seeds with per-column AES-CTR streams whose ciphers are built once per
// extension, the column-major matrix is flipped with a cache-blocked
// 64×64 bit transpose, and rows are hashed with a batched fixed-key AES
// correlation-robust hash (same idiom as gc.FixedKeyHasher.Hash4).
// Transfers stream in chunks of extChunk so million-OT batches run in
// bounded memory with O(1) allocations per chunk; choice bits travel as
// a packed Bitset end to end.

const (
	kappa    = 128 // security parameter / base-OT count
	rowWords = kappa / 64

	// extChunk is the number of transfers processed per streaming chunk:
	// large enough to amortize the per-chunk flush, small enough that the
	// working set (columns + rows + ciphertexts ≈ 1 MB) stays in cache.
	extChunk = 1 << 14
)

type row [rowWords]uint64

func (r *row) xor(o row) {
	for i := range r {
		r[i] ^= o[i]
	}
}

// --- per-column PRG ---

// prgStream stretches a 16-byte seed with AES-128 in counter mode. The
// cipher is expanded once at init and the counter persists across
// expand calls, so successive chunks of one extension continue the same
// pseudorandom stream without re-keying or reallocating. The block
// buffers live in the struct: interface-typed cipher calls would
// otherwise force stack scratch to escape on every call.
type prgStream struct {
	blk cipher.Block
	ctr uint64
	in  [16]byte
	out [16]byte
}

func (p *prgStream) init(seed label.L) {
	var key [16]byte
	seed.Put(key[:])
	blk, err := aes.NewCipher(key[:])
	if err != nil {
		panic("ot: aes.NewCipher: " + err.Error())
	}
	p.blk = blk
	p.ctr = 0
}

// expand fills dst with the next len(dst) words of the stream.
func (p *prgStream) expand(dst []uint64) {
	for i := 0; i < len(dst); i += 2 {
		binary.LittleEndian.PutUint64(p.in[:8], p.ctr)
		p.ctr++
		p.blk.Encrypt(p.out[:], p.in[:])
		dst[i] = binary.LittleEndian.Uint64(p.out[0:8])
		if i+1 < len(dst) {
			dst[i+1] = binary.LittleEndian.Uint64(p.out[8:16])
		}
	}
}

// --- batched correlation-robust row hash ---

// crKey is the fixed public AES key of the row hash. Fixed-key AES is
// the standard correlation-robust hash of OT extension (it only has to
// break the row correlations induced by s, not act as a PRF under
// adversarial keys), and it replaces the old per-row SHA-256 — two key
// schedules and 64 rounds of SHA per transfer — with AES blocks staged
// four at a time through one expanded cipher. The construction is
// exactly gc's fixed-key hasher, H(r, j) = AES_K(2r ^ j) ^ (2r ^ j),
// so the hasher is reused rather than re-implemented; its pooled
// scratch makes it allocation-free and safe to share across extensions.
var crKey = [16]byte{'H', 'A', 'A', 'C', '.', 'i', 'k', 'n', 'p', '.', 'c', 'r', 'h', '.', 'v', '1'}

var crHasher = gc.NewFixedKeyHasher(crKey)

// rowLabel views a transpose row as a label for hashing: word w of the
// row is the w-th 64-column band, matching label.L's Lo/Hi layout.
func rowLabel(r row) label.L { return label.L{Lo: r[0], Hi: r[1]} }

// rowHash computes H(j, r) for one row (odd tails and tests; the hot
// loops batch four rows through crHasher.Hash4 directly).
func rowHash(j uint64, r row) label.L {
	return crHasher.Hash(rowLabel(r), j)
}

// xorBytesIntoWords XORs src (little-endian bytes) into dst words; a
// ragged tail shorter than 8 bytes is zero-extended.
func xorBytesIntoWords(dst []uint64, src []byte) {
	n := len(src)
	w := 0
	for ; (w+1)*8 <= n; w++ {
		dst[w] ^= binary.LittleEndian.Uint64(src[w*8:])
	}
	if rem := n - w*8; rem > 0 {
		var last [8]byte
		copy(last[:], src[w*8:])
		dst[w] ^= binary.LittleEndian.Uint64(last[:])
	}
}

// extScratch is the reusable per-extension working set: one chunk's
// column slab, transposed rows, wire buffers. Allocated once per
// Send/Receive call — sized for the largest chunk the batch actually
// needs, so a small extension does not pay the full-chunk megabyte —
// and recycled across every chunk.
type extScratch struct {
	cols []uint64 // kappa columns at the current chunk's word stride
	aux  []uint64 // receiver: second PRG expansion + u assembly
	rows []row    // transposed chunk
	ubuf []byte   // one column on the wire
	ct   []byte   // ciphertext slab for a whole chunk
}

func newExtScratch(m int) *extScratch {
	chunk := m
	if chunk > extChunk {
		chunk = extChunk
	}
	words := (chunk + 63) / 64
	return &extScratch{
		cols: make([]uint64, kappa*words),
		aux:  make([]uint64, 2*words),
		rows: make([]row, words*64),
		ubuf: make([]byte, words*8),
		ct:   make([]byte, 2*label.Size*chunk),
	}
}

// iknpSend runs the extension sender for a batch of pairs. base selects
// the protocol used for the k base OTs.
func iknpSend(conn io.ReadWriter, base Protocol, pairs []Pair) error {
	m := len(pairs)
	if m == 0 {
		return nil
	}

	// 1. Base OTs, reversed: we receive with random choices s.
	sBits, sRow, err := sampleS()
	if err != nil {
		return err
	}
	seeds, err := ReceiveBitset(conn, base, BitsetFromBools(sBits))
	if err != nil {
		return fmt.Errorf("ot: base OTs: %w", err)
	}

	// Hoisted steady-state scratch: per-column PRG streams (one key
	// schedule each for the whole extension), the row hash, and the
	// chunk slabs.
	prgs := make([]prgStream, kappa)
	for i := range prgs {
		prgs[i].init(seeds[i])
	}
	sc := newExtScratch(m)

	for off := 0; off < m; off += extChunk {
		mc := m - off
		if mc > extChunk {
			mc = extChunk
		}
		if err := sendChunk(conn, pairs[off:off+mc], uint64(off), sBits, sRow, prgs, sc); err != nil {
			return err
		}
	}
	return nil
}

// sampleS draws the extension sender's random base-OT choice vector s,
// returned both per-bit (for the column masks) and packed as a row (for
// the q ^ s hash inputs).
func sampleS() ([]bool, row, error) {
	var rb [kappa / 8]byte
	var sRow row
	if _, err := rand.Read(rb[:]); err != nil {
		return nil, sRow, fmt.Errorf("ot: sampling s: %w", err)
	}
	sBits := make([]bool, kappa)
	for i := range sBits {
		sBits[i] = rb[i/8]>>(uint(i)%8)&1 == 1
		if sBits[i] {
			sRow[i/64] |= 1 << (uint(i) % 64)
		}
	}
	return sBits, sRow, nil
}

// sendChunk runs the sender side for one chunk of transfers: receive the
// masked columns u_i, build Q = PRG ^ (s_i ? u_i : 0) column-wise,
// transpose, and send both encrypted messages per transfer.
func sendChunk(conn io.ReadWriter, pairs []Pair, tweakOff uint64, sBits []bool, sRow row, prgs []prgStream, sc *extScratch) error {
	mc := len(pairs)
	colWords := (mc + 63) / 64
	colBytes := (mc + 7) / 8

	for i := 0; i < kappa; i++ {
		col := sc.cols[i*colWords : (i+1)*colWords]
		prgs[i].expand(col)
		u := sc.ubuf[:colBytes]
		if _, err := io.ReadFull(conn, u); err != nil {
			return fmt.Errorf("ot: reading column %d: %w", i, err)
		}
		if sBits[i] {
			xorBytesIntoWords(col, u)
		}
	}

	rows := sc.rows[:colWords*64]
	transposeColumns(rows, sc.cols[:kappa*colWords], colWords)

	// Encrypt both messages per transfer: y0 = m0 ^ H(j, q_j),
	// y1 = m1 ^ H(j, q_j ^ s) — two transfers per batched hash call.
	out := sc.ct[:2*label.Size*mc]
	j := 0
	for ; j+1 < mc; j += 2 {
		q0 := rows[j]
		q0s := q0
		q0s.xor(sRow)
		q1 := rows[j+1]
		q1s := q1
		q1s.xor(sRow)
		t0, t1 := tweakOff+uint64(j), tweakOff+uint64(j)+1
		k00, k01, k10, k11 := crHasher.Hash4(rowLabel(q0), rowLabel(q0s), rowLabel(q1), rowLabel(q1s), t0, t0, t1, t1)
		pairs[j].M0.Xor(k00).Put(out[j*32:])
		pairs[j].M1.Xor(k01).Put(out[j*32+16:])
		pairs[j+1].M0.Xor(k10).Put(out[j*32+32:])
		pairs[j+1].M1.Xor(k11).Put(out[j*32+48:])
	}
	if j < mc {
		q := rows[j]
		qs := q
		qs.xor(sRow)
		t := tweakOff + uint64(j)
		k0, k1 := rowHash(t, q), rowHash(t, qs)
		pairs[j].M0.Xor(k0).Put(out[j*32:])
		pairs[j].M1.Xor(k1).Put(out[j*32+16:])
	}
	if _, err := conn.Write(out); err != nil {
		return fmt.Errorf("ot: sending ciphertexts: %w", err)
	}
	return nil
}

// iknpReceive runs the extension receiver for a packed choice vector.
func iknpReceive(conn io.ReadWriter, base Protocol, choices Bitset) ([]label.L, error) {
	m := choices.Len()
	if m == 0 {
		return nil, nil
	}

	// 1. Base OTs, reversed: we send seed pairs.
	basePairs, err := baseSeedPairs()
	if err != nil {
		return nil, err
	}
	if err := Send(conn, base, basePairs); err != nil {
		return nil, fmt.Errorf("ot: base OTs: %w", err)
	}

	prg0 := make([]prgStream, kappa)
	prg1 := make([]prgStream, kappa)
	for i := range prg0 {
		prg0[i].init(basePairs[i].M0)
		prg1[i].init(basePairs[i].M1)
	}
	sc := newExtScratch(m)

	out := make([]label.L, m)
	for off := 0; off < m; off += extChunk {
		mc := m - off
		if mc > extChunk {
			mc = extChunk
		}
		if err := receiveChunk(conn, out[off:off+mc], uint64(off), choices, off, prg0, prg1, sc); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// baseSeedPairs samples the kappa random seed pairs the extension
// receiver plays base-OT sender with.
func baseSeedPairs() ([]Pair, error) {
	basePairs := make([]Pair, kappa)
	for i := range basePairs {
		m0, err := label.Rand()
		if err != nil {
			return nil, err
		}
		m1, err := label.Rand()
		if err != nil {
			return nil, err
		}
		basePairs[i] = Pair{M0: m0, M1: m1}
	}
	return basePairs, nil
}

// receiveChunk runs the receiver side for one chunk: build T column-wise
// from PRG(seed0), send the masked columns u_i = PRG0_i ^ PRG1_i ^ r,
// transpose, and decrypt the chosen message per transfer with H(j, t_j).
func receiveChunk(conn io.ReadWriter, out []label.L, tweakOff uint64, choices Bitset, choiceOff int, prg0, prg1 []prgStream, sc *extScratch) error {
	mc := len(out)
	colWords := (mc + 63) / 64
	colBytes := (mc + 7) / 8
	wordOff := choiceOff / 64 // choiceOff is a multiple of extChunk, so word-aligned

	half := len(sc.aux) / 2
	ucol := sc.aux[:colWords]
	rcol := sc.aux[half : half+colWords]
	for w := 0; w < colWords; w++ {
		rcol[w] = choices.word(wordOff + w)
	}
	for i := 0; i < kappa; i++ {
		col0 := sc.cols[i*colWords : (i+1)*colWords]
		prg0[i].expand(col0)
		prg1[i].expand(ucol)
		for w := range ucol {
			ucol[w] ^= col0[w] ^ rcol[w]
		}
		u := sc.ubuf[:colBytes]
		for w := 0; w < colWords; w++ {
			if (w+1)*8 <= colBytes {
				binary.LittleEndian.PutUint64(u[w*8:], ucol[w])
			} else {
				var last [8]byte
				binary.LittleEndian.PutUint64(last[:], ucol[w])
				copy(u[w*8:], last[:])
			}
		}
		if _, err := conn.Write(u); err != nil {
			return fmt.Errorf("ot: sending column %d: %w", i, err)
		}
	}

	rows := sc.rows[:colWords*64]
	transposeColumns(rows, sc.cols[:kappa*colWords], colWords)

	enc := sc.ct[:2*label.Size*mc]
	if _, err := io.ReadFull(conn, enc); err != nil {
		return fmt.Errorf("ot: reading ciphertexts: %w", err)
	}
	j := 0
	for ; j+3 < mc; j += 4 {
		t := tweakOff + uint64(j)
		k0, k1, k2, k3 := crHasher.Hash4(rowLabel(rows[j]), rowLabel(rows[j+1]), rowLabel(rows[j+2]), rowLabel(rows[j+3]), t, t+1, t+2, t+3)
		out[j] = pick(enc, j, choices.Bit(choiceOff+j)).Xor(k0)
		out[j+1] = pick(enc, j+1, choices.Bit(choiceOff+j+1)).Xor(k1)
		out[j+2] = pick(enc, j+2, choices.Bit(choiceOff+j+2)).Xor(k2)
		out[j+3] = pick(enc, j+3, choices.Bit(choiceOff+j+3)).Xor(k3)
	}
	for ; j < mc; j++ {
		k := rowHash(tweakOff+uint64(j), rows[j])
		out[j] = pick(enc, j, choices.Bit(choiceOff+j)).Xor(k)
	}
	return nil
}

// pick selects the c-th ciphertext of transfer j from the chunk slab.
func pick(enc []byte, j, c int) label.L {
	off := j*2*label.Size + c*label.Size
	return label.FromBytes(enc[off : off+label.Size])
}
