package ot

import (
	"math/rand"
	"net"
	"testing"

	"haac/internal/label"
)

// TestTranspose64SingleBits: bit c of word r must land at bit r of word c.
func TestTranspose64SingleBits(t *testing.T) {
	for _, pos := range [][2]uint{{0, 0}, {0, 1}, {1, 0}, {63, 63}, {0, 63}, {63, 0}, {17, 42}, {33, 9}} {
		r, c := pos[0], pos[1]
		var a [64]uint64
		a[r] = 1 << c
		transpose64(&a)
		for w := uint(0); w < 64; w++ {
			want := uint64(0)
			if w == c {
				want = 1 << r
			}
			if a[w] != want {
				t.Fatalf("bit (%d,%d): word %d = %#x, want %#x", r, c, w, a[w], want)
			}
		}
	}
}

// TestTranspose64Involution: transposing twice is the identity.
func TestTranspose64Involution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var a, orig [64]uint64
	for i := range a {
		a[i] = rng.Uint64()
		orig[i] = a[i]
	}
	transpose64(&a)
	transpose64(&a)
	if a != orig {
		t.Fatal("transpose64 applied twice is not the identity")
	}
}

// TestTransposeColumnsMatchesBitLoop compares the blocked transpose to a
// naive per-bit flip over a multi-word chunk.
func TestTransposeColumnsMatchesBitLoop(t *testing.T) {
	const colWords = 3 // 192 transfers
	rng := rand.New(rand.NewSource(2))
	cols := make([]uint64, kappa*colWords)
	for i := range cols {
		cols[i] = rng.Uint64()
	}
	rows := make([]row, colWords*64)
	transposeColumns(rows, cols, colWords)
	for j := range rows {
		var want row
		for i := 0; i < kappa; i++ {
			bit := cols[i*colWords+j/64] >> (uint(j) % 64) & 1
			want[i/64] |= bit << (uint(i) % 64)
		}
		if rows[j] != want {
			t.Fatalf("row %d: got %x, want %x", j, rows[j], want)
		}
	}
}

func TestBitsetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		bools := make([]bool, n)
		for i := range bools {
			bools[i] = rng.Intn(2) == 1
		}
		b := BitsetFromBools(bools)
		if b.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, b.Len())
		}
		back := b.Bools()
		for i := range bools {
			if back[i] != bools[i] || (b.Bit(i) == 1) != bools[i] {
				t.Fatalf("n=%d: bit %d mismatch", n, i)
			}
		}
	}
	b := NewBitset(130)
	b.Set(129, true)
	if b.Bit(129) != 1 || b.Bit(128) != 0 {
		t.Fatal("Set/Bit mismatch")
	}
	b.Set(129, false)
	if b.Bit(129) != 0 {
		t.Fatal("clearing a bit failed")
	}
	if b.word(100) != 0 {
		t.Fatal("out-of-range word must read as zero")
	}
}

// runOTBitset mirrors runOT with the packed-choice receiver entry point.
func runOTBitset(t *testing.T, proto Protocol, n int, seed int64) ([]Pair, Bitset, []label.L) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	src := label.NewSource(uint64(seed))
	pairs := make([]Pair, n)
	choices := NewBitset(n)
	for i := range pairs {
		pairs[i] = Pair{M0: src.Next(), M1: src.Next()}
		choices.Set(i, rng.Intn(2) == 1)
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() { errc <- Send(a, proto, pairs) }()
	got, err := ReceiveBitset(b, proto, choices)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	return pairs, choices, got
}

func checkTransfers(t *testing.T, pairs []Pair, choices Bitset, got []label.L) {
	t.Helper()
	if len(got) != len(pairs) {
		t.Fatalf("got %d transfers, want %d", len(got), len(pairs))
	}
	for i := range got {
		want, other := pairs[i].M0, pairs[i].M1
		if choices.Bit(i) == 1 {
			want, other = other, want
		}
		if got[i] != want {
			t.Fatalf("transfer %d: wrong message", i)
		}
		if got[i] == other {
			t.Fatalf("transfer %d: received the unchosen message", i)
		}
	}
}

// TestIKNPChunkBoundaries round-trips batch sizes straddling word and
// chunk boundaries of the streaming extension.
func TestIKNPChunkBoundaries(t *testing.T) {
	sizes := []int{63, 64, 65, 8191, extChunk - 1, extChunk, extChunk + 1}
	for _, n := range sizes {
		pairs, choices, got := runOTBitset(t, IKNP, n, int64(200+n))
		checkTransfers(t, pairs, choices, got)
	}
}

// TestIKNPHammInputSize round-trips the full 40960-choice batch the
// package docs name (Hamm's evaluator input size): 2.5 chunks.
func TestIKNPHammInputSize(t *testing.T) {
	const n = 40960
	pairs, choices, got := runOTBitset(t, IKNP, n, 9)
	checkTransfers(t, pairs, choices, got)
}

// TestIKNPBitsetMatchesBools: the packed and []bool receiver entry
// points are interchangeable transfer for transfer.
func TestIKNPBitsetMatchesBools(t *testing.T) {
	const n = 777
	pairs, choices, got := runOT(t, IKNP, n, 4)
	pairsB, choicesB, gotB := runOTBitset(t, IKNP, n, 4)
	for i := range pairs {
		if pairs[i] != pairsB[i] || choices[i] != (choicesB.Bit(i) == 1) {
			t.Fatalf("test harness drift at transfer %d", i)
		}
		if got[i] != gotB[i] {
			t.Fatalf("transfer %d: bitset path returned a different label", i)
		}
	}
}

// TestIKNPAllocsIndependentOfBatch: steady-state extension cost is O(1)
// allocations per chunk — growing the batch 4x must not grow allocations
// proportionally (per-row allocations would add tens of thousands).
func TestIKNPAllocsIndependentOfBatch(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	measure := func(n int) float64 {
		pairs := make([]Pair, n)
		src := label.NewSource(uint64(n))
		for i := range pairs {
			pairs[i] = Pair{M0: src.Next(), M1: src.Next()}
		}
		choices := NewBitset(n)
		for i := 0; i < n; i += 3 {
			choices.Set(i, true)
		}
		// Insecure base OTs keep the baseline deterministic; AllocsPerRun
		// counts allocations on all goroutines, including the sender's.
		return testing.AllocsPerRun(3, func() {
			a, b := net.Pipe()
			defer a.Close()
			defer b.Close()
			errc := make(chan error, 1)
			go func() { errc <- iknpSend(a, Insecure, pairs) }()
			if _, err := iknpReceive(b, Insecure, choices); err != nil {
				t.Fatal(err)
			}
			if err := <-errc; err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(extChunk)     // 1 chunk
	large := measure(4 * extChunk) // 4 chunks
	// 3 extra chunks may add a bounded number of allocations (pipe writes
	// etc.) but nothing per transfer: 49152 extra transfers would add
	// ~100k allocations at even 2 allocs/transfer.
	if large > small+1000 {
		t.Fatalf("allocations scale with batch size: %d OTs -> %.0f allocs, %d OTs -> %.0f allocs",
			extChunk, small, 4*extChunk, large)
	}
}
