package bench

import "testing"

func TestParallelGarbling(t *testing.T) {
	e := NewEnv(Small)
	rows, s, err := e.ParallelGarbling()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.ANDGates == 0 || r.SeqNs == 0 {
			t.Fatalf("%s: empty measurement", r.Name)
		}
		for _, wk := range parallelWorkerCounts {
			if r.WorkerNs[wk] == 0 {
				t.Fatalf("%s: no x%d measurement", r.Name, wk)
			}
		}
		if r.Seq2PCNs == 0 || r.Pipe2PCNs == 0 {
			t.Fatalf("%s: missing 2PC measurement", r.Name)
		}
	}
	if s == "" {
		t.Fatal("empty rendering")
	}
}
