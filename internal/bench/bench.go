// Package bench regenerates every table and figure of the paper's
// evaluation (§6). Each experiment returns structured rows plus a
// formatted text rendering; cmd/haacbench drives them from the command
// line and the repository's root bench_test.go exposes each as a Go
// benchmark.
//
// Experiments run at one of two scales: Small (reduced workloads, for
// CI and `go test -bench`) and Paper (the §5 input sizes). Shapes —
// who wins, scaling trends, crossovers — are expected to match the
// paper at either scale; absolute numbers are recorded against the
// paper's in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"haac/internal/baseline"
	"haac/internal/circuit"
	"haac/internal/compiler"
	"haac/internal/gc"
	"haac/internal/sim"
	"haac/internal/workloads"
)

// Scale selects workload sizes.
type Scale int

const (
	// Small uses reduced workloads (seconds to run).
	Small Scale = iota
	// Paper uses the §5 evaluation sizes (minutes to run).
	Paper
)

// ParseScale converts "small"/"paper".
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "small":
		return Small, nil
	case "paper":
		return Paper, nil
	}
	return 0, fmt.Errorf("bench: unknown scale %q (want small or paper)", s)
}

func (s Scale) String() string {
	if s == Paper {
		return "paper"
	}
	return "small"
}

// Suite returns the VIP workloads for the scale.
func (s Scale) Suite() []workloads.Workload {
	if s == Paper {
		return workloads.VIPSuite()
	}
	return workloads.VIPSuiteSmall()
}

// Env carries shared measurement state across experiments: the host CPU
// garbling model and a single-entry circuit cache (paper-scale circuits
// are hundreds of MB, so only the most recent is retained).
type Env struct {
	Scale Scale

	cpuOnce sync.Once
	cpuEval baseline.CPUModel
	cpuGarb baseline.CPUModel

	cacheName string
	cacheCirc *circuit.Circuit
}

// NewEnv creates an experiment environment.
func NewEnv(s Scale) *Env { return &Env{Scale: s} }

// CPU returns the measured host software-GC cost models (evaluator and
// garbler), measured once with the paper's re-keyed hash.
func (e *Env) CPU() (eval, garb baseline.CPUModel) {
	e.cpuOnce.Do(func() {
		e.cpuEval = baseline.MeasureCPU(gc.RekeyedHasher{}, true)
		e.cpuGarb = baseline.MeasureCPU(gc.RekeyedHasher{}, false)
	})
	return e.cpuEval, e.cpuGarb
}

// Circuit builds (or returns the cached) circuit for a workload.
func (e *Env) Circuit(w workloads.Workload) *circuit.Circuit {
	if e.cacheName == w.Name && e.cacheCirc != nil {
		return e.cacheCirc
	}
	c := w.Build()
	e.cacheName, e.cacheCirc = w.Name, c
	return c
}

// swwWires converts an SWW size in MB to wires (16 B per wire).
func swwWires(mb float64) int { return int(mb * 1024 * 1024 / 16) }

// cfg builds a compiler config.
func cfg(mode compiler.ReorderMode, esw bool, swwMB float64, ges int, garbler bool) compiler.Config {
	return compiler.Config{
		Reorder:         mode,
		ESW:             esw,
		SWWWires:        swwWires(swwMB),
		NumGEs:          ges,
		GarblerPipeline: garbler,
	}
}

// hw builds a matching hardware config.
func hwFor(c compiler.Config, dram sim.DRAM) sim.HW {
	h := sim.DefaultHW()
	h.NumGEs = c.NumGEs
	h.SWWWires = c.SWWWires
	h.Garbler = c.GarblerPipeline
	h.DRAM = dram
	return h
}

// runSim compiles and simulates in one step.
func runSim(c *circuit.Circuit, cc compiler.Config, dram sim.DRAM) (sim.Result, *compiler.Compiled, error) {
	cp, err := compiler.Compile(c, cc)
	if err != nil {
		return sim.Result{}, nil, err
	}
	r, err := sim.Simulate(cp, hwFor(cc, dram))
	if err != nil {
		return sim.Result{}, nil, err
	}
	return r, cp, nil
}

// geomean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	logsum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		logsum += math.Log(v)
	}
	return math.Exp(logsum / float64(len(vs)))
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	return b.String()
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6) }

// us formats a duration in microseconds.
func us(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e3) }
