package bench

import "testing"

func TestChaos(t *testing.T) {
	e := NewEnv(Small)
	rows, s, err := e.Chaos()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	wantRates := []float64{0, 0.02, 0.05}
	for i, r := range rows {
		if r.DropRate != wantRates[i] {
			t.Fatalf("row %d: drop rate %v, want %v", i, r.DropRate, wantRates[i])
		}
		// Every offered run must have completed (each level verifies its
		// outputs against the plaintext oracle internally, so a row only
		// exists if all runs came back byte-identical).
		if r.Runs != r.Sessions*12 || r.RunsPerSec <= 0 {
			t.Fatalf("row %d: incomplete runs %+v", i, r)
		}
	}
	// The fault-free baseline needs no repair; the faulted levels must
	// show both the damage and the healing, or the experiment proved
	// nothing.
	base := rows[0]
	if base.Drops != 0 || base.Reconnects != 0 || base.Retries != 0 || base.SrvFailed != 0 {
		t.Fatalf("baseline row shows repair work: %+v", base)
	}
	for _, r := range rows[1:] {
		if r.Drops == 0 {
			t.Fatalf("drop rate %v: no drops injected: %+v", r.DropRate, r)
		}
		if r.Reconnects == 0 {
			t.Fatalf("drop rate %v: drops injected but no reconnects: %+v", r.DropRate, r)
		}
	}
	if s == "" {
		t.Fatal("empty rendering")
	}
}
