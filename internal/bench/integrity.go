package bench

import (
	"fmt"
	"net"
	"time"

	"haac/internal/circuit"
	"haac/internal/faultnet"
	"haac/internal/ot"
	"haac/internal/proto"
	"haac/internal/server"
	"haac/internal/workloads"
)

// Integrity experiment: the price and the payoff of the checksummed-
// frame wire tier. Three configurations run the same workload against
// one serving garbler: the legacy unframed wire, the integrity wire on
// a clean transport (pricing the checksum overhead), and the integrity
// wire through whole-stream bit corruption (pricing the detect->resume
// repair). Every run's output is checked against the plaintext oracle,
// so the corrupted configuration doubles as an end-to-end proof that
// corruption anywhere in the stream is detected and healed, never
// silently wrong.

// IntegrityRow reports one wire configuration.
type IntegrityRow struct {
	Config       string  // legacy | integrity | integrity+corruption
	Runs         int     // completed runs, all oracle-checked
	RunsPerSec   float64 // throughput, shape only
	BytesPerRun  int64   // transport bytes (both directions) per run
	BytesPerGate float64 // BytesPerRun over the circuit's gate count
	OverheadPct  float64 // byte overhead vs the legacy row (0 for it)
	Resumes      uint64  // broken transfers continued mid-stream
	Detected     uint64  // corrupted frames caught by checksums
}

// Integrity measures the wire-tier overhead and the resume repair
// path on the AES-128 workload (a ~200 KB table stream, so mid-run
// breaks leave substantial verified prefixes behind).
func (e *Env) Integrity() ([]IntegrityRow, string, error) {
	w := workloads.AES128()
	c := w.Build()
	garblerBits, _ := w.Inputs(3)
	runs := 6
	if e.Scale == Paper {
		runs = 12
	}

	configs := []struct {
		name      string
		integrity bool
		plan      faultnet.Plan
	}{
		{"legacy", false, faultnet.Plan{}},
		{"integrity", true, faultnet.Plan{}},
		{"integrity+corruption", true, faultnet.Plan{Seed: 0x1A7E57, CorruptRate: 0.1}},
	}

	var rows []IntegrityRow
	for _, cfg := range configs {
		row, err := e.integrityConfig(w, c, garblerBits, cfg.name, cfg.integrity, cfg.plan, runs)
		if err != nil {
			return nil, "", fmt.Errorf("integrity: %s: %w", cfg.name, err)
		}
		rows = append(rows, row)
	}
	legacy := float64(rows[0].BytesPerRun)
	for i := range rows {
		rows[i].OverheadPct = (float64(rows[i].BytesPerRun) - legacy) / legacy * 100
	}

	header := []string{"wire", "runs", "runs/s", "bytes/run", "bytes/gate", "overhead %", "resumes", "detected"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Config,
			fmt.Sprint(r.Runs),
			fmt.Sprintf("%.0f", r.RunsPerSec),
			fmt.Sprint(r.BytesPerRun),
			fmt.Sprintf("%.2f", r.BytesPerGate),
			fmt.Sprintf("%.3f", r.OverheadPct),
			fmt.Sprint(r.Resumes),
			fmt.Sprint(r.Detected),
		})
	}
	s := table(header, cells)
	s += fmt.Sprintf("\n(%s over loopback TCP; the integrity wire wraps every post-handshake byte in\n"+
		"length+CRC32C frames, so its clean-transport overhead row prices the checksums\n"+
		"— well under 2%% of bytes/gate — while the corruption row injects whole-stream\n"+
		"bit flips and prices the repair: every flip is detected, the broken transfer\n"+
		"resumes from the last verified chunk, and all outputs stay byte-identical to\n"+
		"the plaintext oracle; throughput is reported for shape only, not asserted)\n", w.Name)
	return rows, s, nil
}

// integrityConfig runs one wire configuration end to end, all outputs
// oracle-checked.
func (e *Env) integrityConfig(w workloads.Workload, c *circuit.Circuit, garblerBits []bool, name string, integrity bool, fp faultnet.Plan, runs int) (IntegrityRow, error) {
	row := IntegrityRow{Config: name}

	srv, err := server.New(server.Config{
		Circuits: []server.CircuitSpec{{
			ID:      w.Name,
			Circuit: c,
			Inputs:  func() []bool { return garblerBits },
		}},
		Seed:            23,
		AllowInsecureOT: true,
		RunTimeout:      5 * time.Second,
	})
	if err != nil {
		return row, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return row, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-done
	}()

	_, evalBits := w.Inputs(5)
	want, err := c.Eval(garblerBits, evalBits)
	if err != nil {
		return row, err
	}

	dialer := &faultnet.Dialer{Plan: fp}
	stats := &proto.Stats{}
	start := time.Now()
	sess, err := server.Dial(ln.Addr().String(), w.Name, c, server.Options{
		OT:        ot.Insecure,
		Integrity: integrity,
		Stats:     stats,
		Dialer:    dialer.Dial,
		Retry: server.RetryPolicy{
			MaxAttempts:      200,
			BaseBackoff:      time.Millisecond,
			MaxBackoff:       8 * time.Millisecond,
			HandshakeTimeout: time.Second,
			RunTimeout:       2 * time.Second,
			Seed:             fp.Seed + 1,
		},
	})
	if err != nil {
		return row, err
	}
	defer sess.Close()
	for r := 0; r < runs; r++ {
		out, err := sess.Run(evalBits)
		if err != nil {
			return row, fmt.Errorf("run %d: %w", r, err)
		}
		for j := range want {
			if out[j] != want[j] {
				return row, fmt.Errorf("run %d: output %d diverged from plaintext oracle", r, j)
			}
		}
	}
	elapsed := time.Since(start)

	st := sess.Stats()
	row.Runs = int(st.Runs)
	row.RunsPerSec = float64(row.Runs) / elapsed.Seconds()
	row.BytesPerRun = (stats.BytesSent.Load() + stats.BytesReceived.Load()) / int64(runs)
	row.BytesPerGate = float64(row.BytesPerRun) / float64(len(c.Gates))
	row.Resumes = st.Resumes
	row.Detected = st.IntegrityFailures
	return row, nil
}
