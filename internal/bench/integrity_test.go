package bench

import "testing"

func TestIntegrity(t *testing.T) {
	e := NewEnv(Small)
	rows, s, err := e.Integrity()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for i, r := range rows {
		// Every offered run completed (each configuration verifies its
		// outputs against the plaintext oracle internally).
		if r.Runs != 6 || r.RunsPerSec <= 0 || r.BytesPerRun <= 0 {
			t.Fatalf("row %d: incomplete runs %+v", i, r)
		}
	}
	legacy, clean, corrupted := rows[0], rows[1], rows[2]
	if legacy.Config != "legacy" || clean.Config != "integrity" || corrupted.Config != "integrity+corruption" {
		t.Fatalf("unexpected row order: %+v", rows)
	}
	// The acceptance bound: checksummed framing costs < 2% in bytes on a
	// clean transport.
	if clean.OverheadPct >= 2 {
		t.Fatalf("integrity wire overhead %.3f%% breaches the 2%% budget", clean.OverheadPct)
	}
	if clean.OverheadPct < 0 {
		t.Fatalf("integrity wire measured cheaper than legacy (%.3f%%); byte accounting is broken", clean.OverheadPct)
	}
	// Clean rows need no repair; the corrupted row must show both the
	// damage and the healing, or the experiment proved nothing.
	if legacy.Resumes != 0 || legacy.Detected != 0 || clean.Resumes != 0 || clean.Detected != 0 {
		t.Fatalf("clean rows show repair work: %+v", rows[:2])
	}
	if corrupted.Detected == 0 {
		t.Fatalf("corruption configuration detected nothing: %+v", corrupted)
	}
	if s == "" {
		t.Fatal("empty rendering")
	}
}
