package bench

import (
	"fmt"
	"time"

	"haac/internal/baseline"
	"haac/internal/compiler"
	"haac/internal/energy"
	"haac/internal/sim"
)

// ---------------------------------------------------------------------
// Fig. 6: compiler-optimization speedups over the CPU.

// Fig6Row holds the three bars for one benchmark: Baseline schedule,
// RO+RN, RO+RN+ESW — speedups over the software CPU baseline
// (Evaluator, 16 GEs, 2 MB SWW, DDR4).
type Fig6Row struct {
	Name                string
	Baseline, RORN, ESW float64
}

// Fig6 runs the compiler-optimization study.
func (e *Env) Fig6() ([]Fig6Row, string, error) {
	cpuEval, _ := e.CPU()
	var rows []Fig6Row
	for _, w := range e.Scale.Suite() {
		c := e.Circuit(w)
		cpu := cpuEval.GCTime(c.ComputeStats()).Seconds()

		speed := func(mode compiler.ReorderMode, esw, noSWW bool) (float64, error) {
			cc := cfg(mode, esw, e.sww2MB(), 16, false)
			cc.NoSWW = noSWW
			r, _, err := runSim(c, cc, sim.DDR4)
			if err != nil {
				return 0, err
			}
			return cpu / r.Time().Seconds(), nil
		}
		// Green bar: the original (depth-first) program without
		// renaming, so the SWW filters nothing (§6.1 groups RO+RN
		// because "without renaming the SWW is ineffectual").
		base, err := speed(compiler.Baseline, false, true)
		if err != nil {
			return nil, "", fmt.Errorf("fig6 %s: %w", w.Name, err)
		}
		rorn, err := speed(compiler.FullReorder, false, false)
		if err != nil {
			return nil, "", fmt.Errorf("fig6 %s: %w", w.Name, err)
		}
		esw, err := speed(compiler.FullReorder, true, false)
		if err != nil {
			return nil, "", fmt.Errorf("fig6 %s: %w", w.Name, err)
		}
		rows = append(rows, Fig6Row{Name: w.Name, Baseline: base, RORN: rorn, ESW: esw})
	}
	var out [][]string
	var bases, rorns, esws []float64
	for _, r := range rows {
		out = append(out, []string{r.Name,
			fmt.Sprintf("%.1f", r.Baseline), fmt.Sprintf("%.1f", r.RORN), fmt.Sprintf("%.1f", r.ESW)})
		bases = append(bases, r.Baseline)
		rorns = append(rorns, r.RORN)
		esws = append(esws, r.ESW)
	}
	out = append(out, []string{"geomean",
		fmt.Sprintf("%.1f", geomean(bases)), fmt.Sprintf("%.1f", geomean(rorns)), fmt.Sprintf("%.1f", geomean(esws))})
	s := table([]string{"Benchmark", "Baseline x", "RO+RN x", "RO+RN+ESW x"}, out)
	s += fmt.Sprintf("\n(paper: baseline avg 82.6x; RO+RN adds ~3.1x; ESW adds ~2.1x on memory-bound benchmarks)\n")
	return rows, s, nil
}

// ---------------------------------------------------------------------
// Fig. 7: compute vs wire-traffic time across orderings and SWW sizes.

// Fig7Cell is one bar pair: compute-only and wire-traffic-only time.
type Fig7Cell struct {
	Order   compiler.ReorderMode
	SWWMB   float64
	Compute time.Duration
	Wire    time.Duration
}

// Fig7Row is all cells for one benchmark.
type Fig7Row struct {
	Name  string
	Cells []Fig7Cell
}

// Fig7 runs the ordering/SWW sweep for the paper's two exemplars
// (MatMult: segment-friendly; BubbSt: full-reorder-friendly).
func (e *Env) Fig7() ([]Fig7Row, string, error) {
	sizes := []float64{0.5, 1, 2}
	if e.Scale == Small {
		sizes = []float64{0.5 / 256, 1.0 / 256, 2.0 / 256}
	}
	var rows []Fig7Row
	for _, w := range e.Scale.Suite() {
		if w.Name != "MatMult" && w.Name != "BubbSt" {
			continue
		}
		c := e.Circuit(w)
		row := Fig7Row{Name: w.Name}
		for _, mode := range []compiler.ReorderMode{compiler.Baseline, compiler.SegmentReorder, compiler.FullReorder} {
			for _, mb := range sizes {
				r, _, err := runSim(c, cfg(mode, true, mb, 16, false), sim.DDR4)
				if err != nil {
					return nil, "", fmt.Errorf("fig7 %s: %w", w.Name, err)
				}
				row.Cells = append(row.Cells, Fig7Cell{
					Order: mode, SWWMB: mb,
					Compute: r.ComputeTime(), Wire: r.WireTrafficTime(),
				})
			}
		}
		rows = append(rows, row)
	}
	var out [][]string
	for _, row := range rows {
		for _, cl := range row.Cells {
			out = append(out, []string{
				row.Name, cl.Order.String(), fmt.Sprintf("%.4g", cl.SWWMB),
				ms(cl.Compute), ms(cl.Wire),
			})
		}
	}
	return rows, table([]string{"Benchmark", "Order", "SWW (MB)", "Compute (ms)", "WireTraffic (ms)"}, out), nil
}

// ---------------------------------------------------------------------
// Fig. 8: GE scaling under DDR4 and HBM2.

// Fig8Row holds speedups over the CPU for each GE count and DRAM.
type Fig8Row struct {
	Name string
	GEs  []int
	DDR4 []float64
	HBM2 []float64
}

// Fig8 sweeps 1..16 GEs. DDR4 numbers use the better of segment/full
// reordering per benchmark (as the paper does); HBM2 uses full reorder.
func (e *Env) Fig8() ([]Fig8Row, string, error) {
	cpuEval, _ := e.CPU()
	geCounts := []int{1, 2, 4, 8, 16}
	var rows []Fig8Row
	for _, w := range e.Scale.Suite() {
		c := e.Circuit(w)
		cpu := cpuEval.GCTime(c.ComputeStats()).Seconds()
		row := Fig8Row{Name: w.Name, GEs: geCounts}
		for _, n := range geCounts {
			best := 0.0
			for _, mode := range []compiler.ReorderMode{compiler.SegmentReorder, compiler.FullReorder} {
				r, _, err := runSim(c, cfg(mode, true, e.sww2MB(), n, false), sim.DDR4)
				if err != nil {
					return nil, "", fmt.Errorf("fig8 %s: %w", w.Name, err)
				}
				if s := cpu / r.Time().Seconds(); s > best {
					best = s
				}
			}
			row.DDR4 = append(row.DDR4, best)

			r, _, err := runSim(c, cfg(compiler.FullReorder, true, e.sww2MB(), n, false), sim.HBM2)
			if err != nil {
				return nil, "", fmt.Errorf("fig8 %s: %w", w.Name, err)
			}
			row.HBM2 = append(row.HBM2, cpu/r.Time().Seconds())
		}
		rows = append(rows, row)
	}
	var out [][]string
	for _, r := range rows {
		for i, n := range r.GEs {
			out = append(out, []string{r.Name, fmt.Sprintf("%d", n),
				fmt.Sprintf("%.1f", r.DDR4[i]), fmt.Sprintf("%.1f", r.HBM2[i])})
		}
	}
	// Scaling summary (the paper: 12.3x geomean from 1->16 GEs on HBM2).
	var scaling []float64
	for _, r := range rows {
		scaling = append(scaling, r.HBM2[len(r.HBM2)-1]/r.HBM2[0])
	}
	s := table([]string{"Benchmark", "GEs", "DDR4 x", "HBM2 x"}, out)
	s += fmt.Sprintf("\nHBM2 1->16 GE scaling geomean: %.1fx (paper: 12.3x)\n", geomean(scaling))
	return rows, s, nil
}

// ---------------------------------------------------------------------
// Fig. 9: energy breakdown and efficiency vs CPU.

// Fig9Row is the normalized energy split plus efficiency for one
// benchmark (full reorder, HBM2, 16 GEs — as in the paper).
type Fig9Row struct {
	Name          string
	Breakdown     energy.Breakdown // normalized
	EfficiencyKx  float64          // vs CPU, in thousands
	AvgPowerWatts float64
}

// Fig9 computes the energy analysis.
func (e *Env) Fig9() ([]Fig9Row, string, error) {
	cpuEval, _ := e.CPU()
	var rows []Fig9Row
	for _, w := range e.Scale.Suite() {
		c := e.Circuit(w)
		r, _, err := runSim(c, cfg(compiler.FullReorder, true, e.sww2MB(), 16, false), sim.HBM2)
		if err != nil {
			return nil, "", fmt.Errorf("fig9 %s: %w", w.Name, err)
		}
		cpuT := cpuEval.GCTime(c.ComputeStats())
		rows = append(rows, Fig9Row{
			Name:          w.Name,
			Breakdown:     energy.Energy(r).Normalized(),
			EfficiencyKx:  energy.EfficiencyVsCPU(r, cpuT) / 1e3,
			AvgPowerWatts: energy.AveragePower(r),
		})
	}
	var out [][]string
	for _, r := range rows {
		b := r.Breakdown
		out = append(out, []string{r.Name,
			fmt.Sprintf("%.0f%%", 100*b.HalfGate),
			fmt.Sprintf("%.0f%%", 100*b.Crossbar),
			fmt.Sprintf("%.0f%%", 100*b.SRAM),
			fmt.Sprintf("%.0f%%", 100*b.Others),
			fmt.Sprintf("%.0f%%", 100*b.DRAMPHY),
			fmt.Sprintf("%.0f", r.EfficiencyKx),
			fmt.Sprintf("%.2f", r.AvgPowerWatts),
		})
	}
	return rows, table(
		[]string{"Benchmark", "Half-Gate", "Crossbar", "SRAM", "Others", "HBM2 PHY", "Eff (Kx)", "Power (W)"},
		out), nil
}

// ---------------------------------------------------------------------
// Fig. 10: slowdown vs plaintext.

// Fig10Row holds slowdowns relative to native plaintext execution.
type Fig10Row struct {
	Name      string
	Plaintext time.Duration
	CPUGC     float64 // slowdown factors
	HAACDDR4  float64
	HAACHBM2  float64
}

// Fig10 measures plaintext natively and compares against CPU GC and the
// two HAAC configurations (best reordering per benchmark, like Fig. 8).
func (e *Env) Fig10() ([]Fig10Row, string, error) {
	cpuEval, _ := e.CPU()
	var rows []Fig10Row
	for _, w := range e.Scale.Suite() {
		w := w
		c := e.Circuit(w)
		g, ev := w.Inputs(1)
		plain := baseline.TimePlain(func() { w.Reference(g, ev) })
		cpu := cpuEval.GCTime(c.ComputeStats())

		best := func(dram sim.DRAM) (time.Duration, error) {
			var bt time.Duration
			for _, mode := range []compiler.ReorderMode{compiler.SegmentReorder, compiler.FullReorder} {
				r, _, err := runSim(c, cfg(mode, true, e.sww2MB(), 16, false), dram)
				if err != nil {
					return 0, err
				}
				if bt == 0 || r.Time() < bt {
					bt = r.Time()
				}
			}
			return bt, nil
		}
		ddr, err := best(sim.DDR4)
		if err != nil {
			return nil, "", fmt.Errorf("fig10 %s: %w", w.Name, err)
		}
		hbm, err := best(sim.HBM2)
		if err != nil {
			return nil, "", fmt.Errorf("fig10 %s: %w", w.Name, err)
		}
		rows = append(rows, Fig10Row{
			Name:      w.Name,
			Plaintext: plain,
			CPUGC:     cpu.Seconds() / plain.Seconds(),
			HAACDDR4:  ddr.Seconds() / plain.Seconds(),
			HAACHBM2:  hbm.Seconds() / plain.Seconds(),
		})
	}
	var out [][]string
	var cpuS, ddrS, hbmS []float64
	for _, r := range rows {
		out = append(out, []string{r.Name, us(r.Plaintext),
			fmt.Sprintf("%.3g", r.CPUGC), fmt.Sprintf("%.3g", r.HAACDDR4), fmt.Sprintf("%.3g", r.HAACHBM2)})
		cpuS = append(cpuS, r.CPUGC)
		ddrS = append(ddrS, r.HAACDDR4)
		hbmS = append(hbmS, r.HAACHBM2)
	}
	s := table([]string{"Benchmark", "Plain (us)", "CPU GC x", "HAAC DDR4 x", "HAAC HBM2 x"}, out)
	s += fmt.Sprintf("\nGeomean slowdown vs plaintext: CPU GC %.3g, HAAC DDR4 %.3g, HAAC HBM2 %.3g\n",
		geomean(cpuS), geomean(ddrS), geomean(hbmS))
	s += fmt.Sprintf("Implied HAAC speedup over CPU GC: DDR4 %.0fx (paper 589x), HBM2 %.0fx (paper 2627x)\n",
		geomean(cpuS)/geomean(ddrS), geomean(cpuS)/geomean(hbmS))
	return rows, s, nil
}

// ---------------------------------------------------------------------
// §6.1 aside: Garbler vs Evaluator gap.

// GarblerVsEvaluator compares HAAC Garbler and Evaluator runtimes
// (paper: Garbler only 0.67% slower on HAAC vs 11.9% slower on CPU).
func (e *Env) GarblerVsEvaluator() (float64, string, error) {
	var ratios []float64
	for _, w := range e.Scale.Suite() {
		c := e.Circuit(w)
		ev, _, err := runSim(c, cfg(compiler.FullReorder, true, e.sww2MB(), 16, false), sim.HBM2)
		if err != nil {
			return 0, "", err
		}
		ga, _, err := runSim(c, cfg(compiler.FullReorder, true, e.sww2MB(), 16, true), sim.HBM2)
		if err != nil {
			return 0, "", err
		}
		ratios = append(ratios, ga.Time().Seconds()/ev.Time().Seconds())
	}
	g := geomean(ratios)
	return g, fmt.Sprintf("HAAC Garbler/Evaluator runtime ratio (geomean): %.4f (paper: 1.0067)\n", g), nil
}
