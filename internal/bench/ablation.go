package bench

import (
	"fmt"
	"time"

	"haac/internal/compiler"
	"haac/internal/sim"
)

// Ablations quantifies the design choices DESIGN.md calls out, each of
// which the paper argues for qualitatively:
//
//   - the wire-forwarding network (§3.2) vs resolving hazards through
//     SWW write-back and re-read;
//   - push-based OoRW queues (§3.1.4) vs a pull-based design that
//     stalls on each out-of-range read;
//   - the SWW (§3.1.1) vs streaming every wire off-chip;
//   - the 4-banks-per-GE SWW ratio (§5) vs less banking.
//
// Each row reports end-to-end and compute-only time at the headline
// 16-GE configuration, on a reuse-heavy and a streaming workload.
type AblationRow struct {
	Workload   string
	Variant    string
	Total      time.Duration
	Compute    time.Duration
	SlowVsBase float64
}

// Ablations runs the ablation matrix.
func (e *Env) Ablations() ([]AblationRow, string, error) {
	type variant struct {
		name string
		cc   func(compiler.Config) compiler.Config
		hw   func(sim.HW) sim.HW
	}
	id := func(c compiler.Config) compiler.Config { return c }
	hid := func(h sim.HW) sim.HW { return h }
	variants := []variant{
		{"baseline (paper design)", id, hid},
		{"no forwarding network", id, func(h sim.HW) sim.HW { h.Forwarding = false; return h }},
		{"pull-based OoR reads", id, func(h sim.HW) sim.HW { h.OoRPull = true; return h }},
		{"no SWW (stream all wires)", func(c compiler.Config) compiler.Config { c.NoSWW = true; return c }, hid},
		{"1 bank per GE", id, func(h sim.HW) sim.HW { h.BanksPerGE = 1; h.SWWClock = h.GEClock; return h }},
		{"2 banks per GE", id, func(h sim.HW) sim.HW { h.BanksPerGE = 2; return h }},
	}

	var rows []AblationRow
	for _, w := range e.Scale.Suite() {
		if w.Name != "MatMult" && w.Name != "BubbSt" {
			continue
		}
		c := e.Circuit(w)
		var baseTotal time.Duration
		for _, v := range variants {
			cc := v.cc(cfg(compiler.FullReorder, true, e.sww2MB(), 16, false))
			cp, err := compiler.Compile(c, cc)
			if err != nil {
				return nil, "", fmt.Errorf("ablation %s/%s: %w", w.Name, v.name, err)
			}
			hw := v.hw(hwFor(cc, sim.DDR4))
			r, err := sim.Simulate(cp, hw)
			if err != nil {
				return nil, "", fmt.Errorf("ablation %s/%s: %w", w.Name, v.name, err)
			}
			row := AblationRow{
				Workload: w.Name, Variant: v.name,
				Total: r.Time(), Compute: r.ComputeTime(),
			}
			if v.name == variants[0].name {
				baseTotal = r.Time()
			}
			row.SlowVsBase = r.Time().Seconds() / baseTotal.Seconds()
			rows = append(rows, row)
		}
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Workload, r.Variant, ms(r.Total), ms(r.Compute),
			fmt.Sprintf("%.2f", r.SlowVsBase)})
	}
	return rows, table([]string{"Benchmark", "Variant", "Total (ms)", "Compute (ms)", "Slowdown"}, out), nil
}
