//go:build race

package bench

// raceEnabled reports that the race detector is active: it defeats
// sync.Pool caching and instruments the runtime, so allocation-count
// assertions are meaningless and skip.
const raceEnabled = true
