package bench

import (
	"fmt"
	"net"
	"runtime"
	"time"

	"haac/internal/circuit"
	"haac/internal/gc"
	"haac/internal/label"
	"haac/internal/ot"
	"haac/internal/proto"
	"haac/internal/workloads"
)

// Parallel-garbling experiment: sequential vs level-scheduled parallel
// garbling throughput, and sequential vs pipelined 2PC wall time. This
// is the software counterpart of the paper's gate-engine scaling study
// (Fig. 8): levels expose the ILP, the worker pool plays the GEs.

// ParallelRow reports one workload's garbling throughput at several
// worker counts.
type ParallelRow struct {
	Name     string
	ANDGates int
	// SeqNs is the sequential gc.Garble wall time.
	SeqNs int64
	// WorkerNs maps worker count to gc.ParallelGarble wall time.
	WorkerNs map[int]int64
	// Pipe2PCNs and Seq2PCNs are in-process 2PC wall times with the
	// pipelined parallel engine vs the sequential stream.
	Seq2PCNs  int64
	Pipe2PCNs int64
}

// Speedup returns the parallel speedup at the given worker count.
func (r ParallelRow) Speedup(workers int) float64 {
	ns, ok := r.WorkerNs[workers]
	if !ok || ns == 0 {
		return 0
	}
	return float64(r.SeqNs) / float64(ns)
}

// parallelWorkerCounts are the pool widths the experiment sweeps.
var parallelWorkerCounts = []int{1, 2, 4, 8}

// ParallelGarbling measures the parallel engine against the sequential
// garbler on the widest workloads of the suite.
func (e *Env) ParallelGarbling() ([]ParallelRow, string, error) {
	names := map[string]bool{"DotProd": true, "MatMult": true, "Merse": true}
	h := gc.RekeyedHasher{}
	var rows []ParallelRow
	for _, w := range e.Scale.Suite() {
		if !names[w.Name] {
			continue
		}
		c := e.Circuit(w)
		and, _, _ := c.CountOps()
		row := ParallelRow{Name: w.Name, ANDGates: and, WorkerNs: map[int]int64{}}

		start := time.Now()
		if _, err := gc.Garble(c, h, label.NewSource(7)); err != nil {
			return nil, "", err
		}
		row.SeqNs = time.Since(start).Nanoseconds()

		for _, workers := range parallelWorkerCounts {
			start = time.Now()
			if _, err := gc.ParallelGarble(c, h, label.NewSource(7), workers); err != nil {
				return nil, "", err
			}
			row.WorkerNs[workers] = time.Since(start).Nanoseconds()
		}

		seq2, err := time2PC(w, c, proto.Options{OT: ot.Insecure, Seed: 7})
		if err != nil {
			return nil, "", err
		}
		pipe2, err := time2PC(w, c, proto.Options{OT: ot.Insecure, Seed: 7, Pipelined: true, Workers: 8})
		if err != nil {
			return nil, "", err
		}
		row.Seq2PCNs, row.Pipe2PCNs = seq2.Nanoseconds(), pipe2.Nanoseconds()
		rows = append(rows, row)
	}

	header := []string{"Bench", "ANDs", "seq ms"}
	for _, wk := range parallelWorkerCounts {
		header = append(header, fmt.Sprintf("x%d", wk))
	}
	header = append(header, "2PC seq ms", "2PC pipe ms")
	var cells [][]string
	for _, r := range rows {
		row := []string{r.Name, fmt.Sprint(r.ANDGates), ms(time.Duration(r.SeqNs))}
		for _, wk := range parallelWorkerCounts {
			row = append(row, fmt.Sprintf("%.2f", r.Speedup(wk)))
		}
		row = append(row,
			ms(time.Duration(r.Seq2PCNs)),
			ms(time.Duration(r.Pipe2PCNs)))
		cells = append(cells, row)
	}
	s := table(header, cells)
	s += fmt.Sprintf("\n(parallel columns are speedups over sequential garbling; host has %d CPU(s) —\nspeedups track min(workers, CPUs) since the level engine is compute-bound)\n",
		runtime.NumCPU())
	return rows, s, nil
}

// time2PC runs one in-process 2PC execution over a pipe and returns its
// wall time.
func time2PC(w workloads.Workload, c *circuit.Circuit, opts proto.Options) (time.Duration, error) {
	g, e := w.Inputs(13)
	ga, ev := net.Pipe()
	defer ga.Close()
	defer ev.Close()
	errCh := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := proto.RunGarbler(ga, c, g, opts)
		errCh <- err
	}()
	if _, err := proto.RunEvaluator(ev, c, e, opts); err != nil {
		return 0, err
	}
	if err := <-errCh; err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
