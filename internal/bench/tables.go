package bench

import (
	"fmt"
	"runtime"

	"haac/internal/baseline"
	"haac/internal/compiler"
	"haac/internal/energy"
	"haac/internal/gc"
	"haac/internal/label"
	"haac/internal/sim"
	"haac/internal/workloads"
)

// ---------------------------------------------------------------------
// Table 1: qualitative PPC comparison (static content from the paper).

// Table1 returns the PPC-technique comparison verbatim.
func Table1() string {
	return table(
		[]string{"Tech", "Conf", "Cntrl", "Arb", "Sec", "Overhead", "Parties", "Alone"},
		[][]string{
			{"HE", "Yes", "No", "No", "Noise", "Very High", "1", "Yes"},
			{"TFHE", "Yes", "No", "Yes", "Noise", "Ext. High", "1", "Yes"},
			{"SS", "Yes", "Yes", "No", "I.T.", "Moderate", "2(+)", "No"},
			{"GCs", "Yes", "Yes", "Yes", "AES", "Very High", "2", "Yes"},
		})
}

// ---------------------------------------------------------------------
// Table 2: benchmark characteristics.

// Table2Row is one benchmark's characteristics (Table 2's columns).
type Table2Row struct {
	Name        string
	Levels      int
	WiresK      float64
	GatesK      float64
	ANDPercent  float64
	ILP         float64
	SpentWirePc float64 // with 2 MB SWW + full reorder, as in the paper
}

// Table2 computes the benchmark-characteristics table.
func (e *Env) Table2() ([]Table2Row, string, error) {
	var rows []Table2Row
	for _, w := range e.Scale.Suite() {
		c := e.Circuit(w)
		s := c.ComputeStats()
		cc := cfg(compiler.FullReorder, true, e.sww2MB(), 16, false)
		cp, err := compiler.Compile(c, cc)
		if err != nil {
			return nil, "", fmt.Errorf("table2 %s: %w", w.Name, err)
		}
		rows = append(rows, Table2Row{
			Name:        w.Name,
			Levels:      s.Levels,
			WiresK:      float64(s.Wires) / 1e3,
			GatesK:      float64(s.Gates) / 1e3,
			ANDPercent:  s.ANDPercent,
			ILP:         s.ILP,
			SpentWirePc: cp.Traffic.SpentPercent(),
		})
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Name,
			fmt.Sprintf("%d", r.Levels),
			fmt.Sprintf("%.0f", r.WiresK),
			fmt.Sprintf("%.0f", r.GatesK),
			fmt.Sprintf("%.2f", r.ANDPercent),
			fmt.Sprintf("%.0f", r.ILP),
			fmt.Sprintf("%.2f", r.SpentWirePc),
		})
	}
	return rows, table([]string{"Benchmark", "#Levels", "#Wires(k)", "#Gates(k)", "AND%", "ILP", "SpentWire%"}, out), nil
}

// sww2MB returns the SWW size (MB) used for "2 MB" experiments at this
// scale: the small suite uses a proportionally small window so that OoR
// and spill behaviour is still exercised.
func (e *Env) sww2MB() float64 {
	if e.Scale == Paper {
		return 2
	}
	return 2.0 / 256 // 8 KB window for the reduced workloads
}

// ---------------------------------------------------------------------
// Table 3: wire traffic, segment vs full reorder.

// Table3Row compares wire traffic between segment and full reordering.
type Table3Row struct {
	Name                  string
	LiveSegK, LiveFullK   float64
	OoRSegK, OoRFullK     float64
	TotalSegK, TotalFullK float64
}

// Table3 computes the wire-traffic comparison (both with ESW, 2 MB SWW).
func (e *Env) Table3() ([]Table3Row, string, error) {
	var rows []Table3Row
	for _, w := range e.Scale.Suite() {
		c := e.Circuit(w)
		seg, err := compiler.Compile(c, cfg(compiler.SegmentReorder, true, e.sww2MB(), 16, false))
		if err != nil {
			return nil, "", fmt.Errorf("table3 %s: %w", w.Name, err)
		}
		full, err := compiler.Compile(c, cfg(compiler.FullReorder, true, e.sww2MB(), 16, false))
		if err != nil {
			return nil, "", fmt.Errorf("table3 %s: %w", w.Name, err)
		}
		rows = append(rows, Table3Row{
			Name:       w.Name,
			LiveSegK:   float64(seg.Traffic.LiveWires) / 1e3,
			LiveFullK:  float64(full.Traffic.LiveWires) / 1e3,
			OoRSegK:    float64(seg.Traffic.OoRWires) / 1e3,
			OoRFullK:   float64(full.Traffic.OoRWires) / 1e3,
			TotalSegK:  float64(seg.Traffic.Total()) / 1e3,
			TotalFullK: float64(full.Traffic.Total()) / 1e3,
		})
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Name,
			fmt.Sprintf("%.2f", r.LiveSegK), fmt.Sprintf("%.2f", r.LiveFullK),
			fmt.Sprintf("%.2f", r.OoRSegK), fmt.Sprintf("%.2f", r.OoRFullK),
			fmt.Sprintf("%.2f", r.TotalSegK), fmt.Sprintf("%.2f", r.TotalFullK),
		})
	}
	return rows, table(
		[]string{"Benchmark", "Live Seg(k)", "Live Full(k)", "OoRW Seg(k)", "OoRW Full(k)", "Total Seg(k)", "Total Full(k)"},
		out), nil
}

// ---------------------------------------------------------------------
// Table 4: area and power breakdown.

// Table4 renders the area/power breakdown at the 16-GE, 2 MB design
// point (constants calibrated to the paper) plus a measured average
// power across the suite.
func (e *Env) Table4() (string, error) {
	a := energy.AreaFor(16, 2*1024*1024)
	rows := [][]string{
		{"Half-Gate", fmt.Sprintf("%.3g", a.HalfGate), fmt.Sprintf("%.4g", energy.PowerHalfGate)},
		{"FreeXOR", fmt.Sprintf("%.3g", a.FreeXOR), fmt.Sprintf("%.3g", energy.PowerFreeXOR)},
		{"FWD", fmt.Sprintf("%.3g", a.FWD), fmt.Sprintf("%.3g", energy.PowerFWD)},
		{"Crossbar", fmt.Sprintf("%.3g", a.Crossbar), fmt.Sprintf("%.3g", energy.PowerCrossbar)},
		{"SWW (SRAM)", fmt.Sprintf("%.3g", a.SWW), fmt.Sprintf("%.4g", energy.PowerSWW)},
		{"Queues (SRAM)", fmt.Sprintf("%.3g", a.Queues), fmt.Sprintf("%.3g", energy.PowerQueues)},
		{"Total HAAC", fmt.Sprintf("%.3g", a.Total()), fmt.Sprintf("%.4g", energy.PowerHalfGate+energy.PowerFreeXOR+energy.PowerFWD+energy.PowerCrossbar+energy.PowerSWW+energy.PowerQueues)},
		{"HBM2 PHY", fmt.Sprintf("%.3g", energy.AreaHBM2PHY), fmt.Sprintf("%.4g (TDP)", energy.PowerHBM2PHY)},
	}
	out := table([]string{"Component", "Area (mm^2)", "Power (mW)"}, rows)

	// Measured average power over the suite at the headline design.
	var powers []float64
	for _, w := range e.Scale.Suite() {
		c := e.Circuit(w)
		r, _, err := runSim(c, cfg(compiler.FullReorder, true, e.sww2MB(), 16, false), sim.HBM2)
		if err != nil {
			return "", fmt.Errorf("table4 %s: %w", w.Name, err)
		}
		powers = append(powers, energy.AveragePower(r))
	}
	out += fmt.Sprintf("\nMeasured average power across suite: %.2f W (paper: ~1.50 W)\n", mean(powers))
	return out, nil
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// ---------------------------------------------------------------------
// Table 5: comparison to prior accelerators.

// priorWork holds a published garbling time for a micro-benchmark.
type priorWork struct {
	System   string
	Workload string // matches workloads.MicroSuite names
	TimeUS   float64
	Note     string
}

// priorResults are the published numbers quoted in Table 5.
var priorResults = []priorWork{
	{"MAXelerator", "5x5Matx-8", 15.0, "8 cores"},
	{"MAXelerator", "3x3Matx-16", 6.48, "14 cores"},
	{"FASE", "AES-128", 439, ""},
	{"FASE", "Mult-32", 52.5, ""},
	{"FASE", "Hamm-50", 3.35, ""},
	{"FASE", "Million-8", 1.30, ""},
	{"FASE", "5x5Matx-8", 438, ""},
	{"FASE", "3x3Matx-16", 378, ""},
	{"FPGA Overlay", "Add-6", 2.80, ""},
	{"FPGA Overlay", "Mult-32", 180, ""},
	{"FPGA Overlay", "Hamm-50", 14.0, ""},
	{"FPGA Overlay", "Million-2", 0.950, ""},
	{"Leeser et al.", "5x5Matx-8", 9.66e4, ""},
	{"Huang et al.", "Add-16", 253, ""},
	{"Huang et al.", "Mult-32", 2.38e4, ""},
	{"Huang et al.", "Hamm-50", 1.55e3, ""},
	{"Huang et al.", "5x5Matx-8", 1.84e5, ""},
}

// Table5Row is one comparison line.
type Table5Row struct {
	System   string
	Workload string
	PriorUS  float64
	HAACUS   float64
	Speedup  float64
}

// Table5 garbles each micro-benchmark on the paper's comparison config
// (16 GEs, 1 MB SWW, full reorder, Garbler pipelines — Table 5 reports
// garbling time) and compares with the published numbers.
func (e *Env) Table5() ([]Table5Row, string, error) {
	haacUS := map[string]float64{}
	for _, w := range workloads.MicroSuite() {
		c := w.Build()
		cc := cfg(compiler.FullReorder, true, 1, 16, true)
		r, _, err := runSim(c, cc, sim.HBM2)
		if err != nil {
			return nil, "", fmt.Errorf("table5 %s: %w", w.Name, err)
		}
		haacUS[w.Name] = float64(r.Time().Nanoseconds()) / 1e3
	}
	var rows []Table5Row
	var out [][]string
	for _, p := range priorResults {
		h, ok := haacUS[p.Workload]
		if !ok {
			return nil, "", fmt.Errorf("table5: no HAAC result for %s", p.Workload)
		}
		r := Table5Row{System: p.System, Workload: p.Workload, PriorUS: p.TimeUS, HAACUS: h, Speedup: p.TimeUS / h}
		rows = append(rows, r)
		out = append(out, []string{
			p.System, p.Workload,
			fmt.Sprintf("%.3g", p.TimeUS), fmt.Sprintf("%.3g", h),
			fmt.Sprintf("%.3g", r.Speedup), p.Note,
		})
	}
	// GPU gates/s comparison (§6.6): 75 M gates/s GPU vs HAAC garbling
	// throughput on AES-128.
	aes := workloads.AES128()
	c := aes.Build()
	s := c.ComputeStats()
	gatesPerUS := float64(s.Gates) / haacUS["AES-128"]
	out = append(out, []string{"GPU [35]", "AES-128", "75 gates/us", fmt.Sprintf("%.0f gates/us", gatesPerUS),
		fmt.Sprintf("%.3g", gatesPerUS/75), ""})
	return rows, table([]string{"System", "Benchmark", "Prior (us)", "HAAC (us)", "Speedup", "Note"}, out), nil
}

// RekeyRow is one hasher's measured garbling cost in the re-keying
// experiment.
type RekeyRow struct {
	Hasher   string
	NsPerAND float64
	// AllocsPerHash4 is the steady-state heap-allocation count of one
	// batched four-hash call (one garbled AND gate's hashing).
	AllocsPerHash4 float64
}

// hash4Allocs measures steady-state allocations of one Hash4 call.
func hash4Allocs(h gc.Hasher4) float64 {
	l := label.L{Lo: 1, Hi: 2}
	h.Hash4(l, l, l, l, 2, 2, 3, 3) // warm scratch pools
	const n = 500
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		t0 := uint64(2 * i)
		h.Hash4(l, l, l, l, t0, t0, t0+1, t0+1)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / n
}

// RekeyingOverhead measures the §2.1 claim: re-keying vs fixed-key
// Half-Gate cost on the host CPU (paper: +27.5%). Two denominators are
// reported: `fixed-key-soft` runs the same software T-table AES as the
// re-keyed hasher, so that ratio isolates the pure key-expansion
// surcharge the paper quantifies; `fixed-key` is crypto/aes, which uses
// AES-NI where available — its much larger gap is hardware-vs-software
// AES, not re-keying cost. The headline overhead returned is the
// matched-backend one.
func RekeyingOverhead() ([]RekeyRow, float64, string) {
	hashers := []gc.Hasher{
		gc.RekeyedHasher{},
		gc.NewSoftFixedKeyHasher([16]byte{3, 1, 4}),
		gc.NewFixedKeyHasher([16]byte{3, 1, 4}),
	}
	var rows []RekeyRow
	perAND := map[string]float64{}
	for _, h := range hashers {
		m := baseline.MeasureCPU(h, false)
		rows = append(rows, RekeyRow{
			Hasher:         h.Name(),
			NsPerAND:       m.NsPerAND,
			AllocsPerHash4: hash4Allocs(h.(gc.Hasher4)),
		})
		perAND[h.Name()] = m.NsPerAND
	}
	overSoft := (perAND["rekeyed"]/perAND["fixed-key-soft"] - 1) * 100
	overHW := (perAND["rekeyed"]/perAND["fixed-key"] - 1) * 100

	header := []string{"Hasher", "ns/AND", "allocs/Hash4"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Hasher,
			fmt.Sprintf("%.1f", r.NsPerAND),
			fmt.Sprintf("%.3f", r.AllocsPerHash4),
		})
	}
	s := table(header, cells)
	s += fmt.Sprintf("\nRe-keying overhead, matched software AES backend: %+.1f%% per AND gate (paper: +27.5%%)\n", overSoft)
	s += fmt.Sprintf("Re-keying overhead vs crypto/aes fixed-key:       %+.1f%% (includes the host's hardware-AES advantage, not a re-keying cost)\n", overHW)
	s += "(the re-keyed hasher expands each gate key once into pooled scratch and reuses\nthe schedule across the gate's blocks — two expansions per garbled gate, zero\nsteady-state allocations)\n"
	return rows, overSoft, s
}
