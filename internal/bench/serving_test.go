package bench

import "testing"

func TestServing(t *testing.T) {
	e := NewEnv(Small)
	rows, s, err := e.Serving()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	wantSessions := []int{1, 4, 16}
	for i, r := range rows {
		if r.Sessions != wantSessions[i] {
			t.Fatalf("row %d: %d sessions, want %d", i, r.Sessions, wantSessions[i])
		}
		if r.Runs != r.Sessions*r.RunsPerSession || r.Runs == 0 {
			t.Fatalf("row %d: inconsistent run counts %+v", i, r)
		}
		if r.RunsPerSec <= 0 || r.BytesOutPerRun <= 0 {
			t.Fatalf("row %d: empty measurement %+v", i, r)
		}
		// The amortization property, asserted structurally (never by
		// wall clock): every level builds the plan once server-side and
		// once client-side, and all N sessions after the first hit.
		if r.CacheMisses != 1 {
			t.Fatalf("row %d: %d cache misses, want 1", i, r.CacheMisses)
		}
		if r.CacheHits != uint64(r.Sessions-1) {
			t.Fatalf("row %d: %d cache hits, want %d", i, r.CacheHits, r.Sessions-1)
		}
		if r.PlanBuilds != 2 {
			t.Fatalf("row %d: %d plan builds, want 2", i, r.PlanBuilds)
		}
	}
	if s == "" {
		t.Fatal("empty rendering")
	}
}
