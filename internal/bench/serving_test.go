package bench

import "testing"

func TestServing(t *testing.T) {
	e := NewEnv(Small)
	rows, s, err := e.Serving()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	wantSessions := []int{1, 4, 16, 16, 1}
	for i, r := range rows {
		if r.Sessions != wantSessions[i] {
			t.Fatalf("row %d: %d sessions, want %d", i, r.Sessions, wantSessions[i])
		}
		if r.Runs != r.Admitted*r.RunsPerSession || r.Runs == 0 {
			t.Fatalf("row %d: inconsistent run counts %+v", i, r)
		}
		if r.RunsPerSec <= 0 || r.BytesOutPerRun <= 0 {
			t.Fatalf("row %d: empty measurement %+v", i, r)
		}
		// The amortization property, asserted structurally (never by
		// wall clock): every level builds the plan once server-side and
		// once client-side. Sessions dial sequentially, so the first
		// one misses and every later one finds a completed build — the
		// only kind that counts as a hit.
		if r.CacheMisses != 1 {
			t.Fatalf("row %d: %d cache misses, want 1", i, r.CacheMisses)
		}
		if r.CacheHits != uint64(r.Admitted-1) {
			t.Fatalf("row %d: %d cache hits, want %d", i, r.CacheHits, r.Admitted-1)
		}
		if r.PlanBuilds != 2 {
			t.Fatalf("row %d: %d plan builds, want 2", i, r.PlanBuilds)
		}
	}
	// Uncapped levels admit everything and refuse nothing.
	for i, r := range rows[:3] {
		if r.Admitted != r.Sessions || r.Refused != 0 || r.MaxSessions != 0 {
			t.Fatalf("row %d: unexpected shedding %+v", i, r)
		}
	}
	// The saturation level sheds exactly the over-cap connections while
	// the admitted ones serve every run.
	sat := rows[3]
	if sat.MaxSessions != 8 || sat.Admitted != 8 || sat.Refused != 8 {
		t.Fatalf("saturation row: %+v, want 8 admitted / 8 refused under cap 8", sat)
	}
	// The pooled row's steady-state contract (0 base-OT rounds, all
	// hits) is asserted inside servingLevel; re-check the reported shape.
	pooled := rows[4]
	if !pooled.Pooled || pooled.BaseOTRounds != 0 || pooled.PoolHits != uint64(pooled.Runs) {
		t.Fatalf("pooled row: %+v, want 0 base-OT rounds and %d pool hits", pooled, pooled.Runs)
	}
	if s == "" {
		t.Fatal("empty rendering")
	}
}
