package bench

import (
	"fmt"
	"net"
	"sync"
	"time"

	"haac/internal/circuit"
	"haac/internal/fleet"
	"haac/internal/ot"
	"haac/internal/server"
	"haac/internal/workloads"
)

// Fleet experiment: the digest-sharded front proxy, measured. A fixed
// mix of distinct circuits is served through the fleet at 1, 2 and 4
// backends; rendezvous hashing pins every circuit to exactly one
// backend, so the process-wide plan-build count stays constant as the
// fleet widens — the cache-locality property the proxy exists to
// preserve — while the aggregated backend plan caches answer repeat
// sessions from warm entries. A final row kills one loaded backend
// mid-level: the retrying clients redial through the proxy, the
// breaker ejects the corpse, every run still completes byte-identical
// to the plaintext oracle, and the row prices the disruption —
// failovers, reconnects and the slowest single run (an upper bound on
// client-visible failover latency).

// FleetRow reports one fleet width.
type FleetRow struct {
	Backends int
	Killed   bool // one backend closed while sessions were mid-level
	Sessions int
	Circuits int
	Runs     int // measured runs, all sessions
	// RunsPerSec is reported, never asserted: single-CPU CI makes
	// wall-clock comparisons meaningless.
	RunsPerSec  float64
	Failovers   uint64 // sessions routed past a dead/refusing backend
	Reconnects  uint64 // client redial + re-handshake cycles
	CacheHits   uint64 // aggregated across every backend's plan cache
	CacheMisses uint64
	// PlanBuilds counts process-wide circuit.NewPlan calls during the
	// level: one per circuit on the client side plus one per circuit
	// across ALL backends — digest sharding keeps the server-side count
	// at one per circuit no matter how many backends serve.
	PlanBuilds uint64
	// MaxRunMillis is the slowest single Run of the level; on the kill
	// row it bounds the client-visible failover latency.
	MaxRunMillis float64
}

// fleetWorkloads returns the circuit mix: distinct digests so the
// proxy has something to shard.
func fleetWorkloads() []workloads.Workload {
	return []workloads.Workload{
		workloads.AddN(8),
		workloads.AddN(16),
		workloads.AddN(24),
		workloads.DotProduct(2, 8),
	}
}

// Fleet measures the front proxy at 1, 2 and 4 backends, then kills a
// loaded backend under a 4-backend fleet.
func (e *Env) Fleet() ([]FleetRow, string, error) {
	ws := fleetWorkloads()
	sessions, runsPerSession := 8, 8
	if e.Scale == Paper {
		runsPerSession = 24
	}

	var rows []FleetRow
	for _, backends := range []int{1, 2, 4} {
		row, err := e.fleetLevel(ws, backends, false, sessions, runsPerSession)
		if err != nil {
			return nil, "", fmt.Errorf("fleet: %d backends: %w", backends, err)
		}
		rows = append(rows, row)
	}
	row, err := e.fleetLevel(ws, 4, true, sessions, runsPerSession)
	if err != nil {
		return nil, "", fmt.Errorf("fleet: backend kill: %w", err)
	}
	rows = append(rows, row)

	header := []string{"backends", "killed", "sessions", "runs", "runs/s", "failovers", "reconnects", "cache hit/miss", "plan builds", "max run ms"}
	var cells [][]string
	for _, r := range rows {
		killed := "-"
		if r.Killed {
			killed = "1"
		}
		cells = append(cells, []string{
			fmt.Sprint(r.Backends),
			killed,
			fmt.Sprint(r.Sessions),
			fmt.Sprint(r.Runs),
			fmt.Sprintf("%.0f", r.RunsPerSec),
			fmt.Sprint(r.Failovers),
			fmt.Sprint(r.Reconnects),
			fmt.Sprintf("%d/%d", r.CacheHits, r.CacheMisses),
			fmt.Sprint(r.PlanBuilds),
			fmt.Sprintf("%.0f", r.MaxRunMillis),
		})
	}
	s := table(header, cells)
	s += fmt.Sprintf("\n(%d circuits sharded by digest across the fleet over loopback TCP; plan builds\n"+
		"stay at 2 per circuit — one client-side, one on the single backend rendezvous\n"+
		"hashing assigns it — at every width, so widening the fleet never cools a cache;\n"+
		"the kill row closes a loaded backend mid-level: retrying clients redial through\n"+
		"the proxy, which fails them over past the ejected corpse, and every run is\n"+
		"checked against the plaintext oracle; max run ms bounds the client-visible\n"+
		"failover stall; throughput is reported for shape only, not asserted)\n", len(ws))
	return rows, s, nil
}

// fleetLevel runs one fleet width end to end. With kill set, the
// backend carrying the most sessions is closed after every session's
// warm-up run; the level still must complete every measured run with
// oracle-identical outputs.
func (e *Env) fleetLevel(ws []workloads.Workload, backends int, kill bool, sessions, runsPerSession int) (FleetRow, error) {
	row := FleetRow{Backends: backends, Killed: kill, Sessions: sessions, Circuits: len(ws)}

	type circ struct {
		w    workloads.Workload
		c    *circuit.Circuit
		g    []bool
		eval []bool
		want []bool
	}
	circs := make([]circ, len(ws))
	specs := make([]server.CircuitSpec, len(ws))
	for i, w := range ws {
		c := w.Build()
		g, eval := w.Inputs(int64(40 + i))
		want, err := c.Eval(g, eval)
		if err != nil {
			return row, err
		}
		circs[i] = circ{w: w, c: c, g: g, eval: eval, want: want}
		gb := g
		specs[i] = server.CircuitSpec{ID: w.Name, Circuit: c, Inputs: func() []bool { return gb }}
	}

	buildsBefore := circuit.PlanBuilds()

	srvs := make([]*server.Server, backends)
	addrs := make([]string, backends)
	addrToSrv := make(map[string]*server.Server, backends)
	for i := range srvs {
		srv, err := server.New(server.Config{
			Circuits:        specs,
			Seed:            uint64(23 + i),
			AllowInsecureOT: true,
			DrainTimeout:    10 * time.Millisecond,
		})
		if err != nil {
			return row, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return row, err
		}
		go srv.Serve(ln)
		defer srv.Close()
		srvs[i] = srv
		addrs[i] = ln.Addr().String()
		addrToSrv[addrs[i]] = srv
	}

	bs := make([]fleet.Backend, backends)
	for i, a := range addrs {
		bs[i] = fleet.Backend{Addr: a}
	}
	fl, err := fleet.New(fleet.Config{
		Backends:      bs,
		ProbeInterval: -1, // passive breaker only; no ops sidecars here
		FailThreshold: 2,
		ReopenAfter:   time.Minute, // a killed backend stays ejected
		DrainTimeout:  200 * time.Millisecond,
	})
	if err != nil {
		return row, err
	}
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return row, err
	}
	go fl.Serve(fln)
	defer fl.Close()
	fleetAddr := fln.Addr().String()

	// One client-side plan per circuit, shared by its sessions.
	plans := make([]*circuit.Plan, len(circs))
	for i, cc := range circs {
		if plans[i], err = circuit.NewPlan(cc.c); err != nil {
			return row, err
		}
	}

	// Warm barrier: every session completes one run before the kill (so
	// the victim is loaded) and before the measured window opens.
	var warm, release, wg sync.WaitGroup
	warm.Add(sessions)
	release.Add(1)
	errs := make(chan error, sessions)
	stats := make(chan server.ClientStats, sessions)
	maxRun := make(chan time.Duration, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cc := circs[i%len(circs)]
			sess, err := server.Dial(fleetAddr, cc.w.Name, cc.c, server.Options{
				OT:   ot.Insecure,
				Plan: plans[i%len(circs)],
				Retry: server.RetryPolicy{
					MaxAttempts:      200,
					BaseBackoff:      time.Millisecond,
					MaxBackoff:       8 * time.Millisecond,
					HandshakeTimeout: time.Second,
					Seed:             uint64(300 + i),
				},
			})
			if err != nil {
				warm.Done()
				errs <- fmt.Errorf("session %d: dial: %w", i, err)
				return
			}
			defer sess.Close()
			run := func(r int) (time.Duration, error) {
				t0 := time.Now()
				out, err := sess.Run(cc.eval)
				if err != nil {
					return 0, fmt.Errorf("session %d run %d: %w", i, r, err)
				}
				for j := range cc.want {
					if out[j] != cc.want[j] {
						return 0, fmt.Errorf("session %d run %d: output %d diverged from plaintext oracle", i, r, j)
					}
				}
				return time.Since(t0), nil
			}
			if _, err := run(-1); err != nil {
				warm.Done()
				errs <- err
				return
			}
			warm.Done()
			release.Wait()
			var slowest time.Duration
			for r := 0; r < runsPerSession; r++ {
				d, err := run(r)
				if err != nil {
					errs <- err
					return
				}
				if d > slowest {
					slowest = d
				}
			}
			maxRun <- slowest
			stats <- sess.Stats()
		}(i)
	}
	warm.Wait()
	if kill {
		// Close the backend carrying the most sessions: the one whose
		// loss forces the most failovers.
		victim := addrs[0]
		var most uint64
		for _, b := range fl.Stats().Backends {
			if b.SessionsRouted >= most {
				victim, most = b.Addr, b.SessionsRouted
			}
		}
		addrToSrv[victim].Close()
	}
	start := time.Now()
	release.Done()
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	close(stats)
	close(maxRun)
	for err := range errs {
		return row, err
	}

	row.Runs = sessions * runsPerSession
	row.RunsPerSec = float64(row.Runs) / elapsed.Seconds()
	for st := range stats {
		row.Reconnects += st.Reconnects
	}
	for d := range maxRun {
		if ms := float64(d) / float64(time.Millisecond); ms > row.MaxRunMillis {
			row.MaxRunMillis = ms
		}
	}
	for _, srv := range srvs {
		st := srv.Stats()
		row.CacheHits += st.CacheHits
		row.CacheMisses += st.CacheMisses
	}
	row.Failovers = fl.Stats().Failovers
	row.PlanBuilds = circuit.PlanBuilds() - buildsBefore
	if want := uint64(2 * len(circs)); !kill && row.PlanBuilds != want {
		return row, fmt.Errorf("plan builds = %d at %d backends, want %d (digest sharding should pin each circuit to one backend)", row.PlanBuilds, backends, want)
	}
	return row, nil
}
