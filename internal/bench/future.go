package bench

import (
	"fmt"

	"haac/internal/compiler"
	"haac/internal/sim"
	"haac/internal/workloads"
)

// FutureWork evaluates the paper's §6.5 suggestions for closing the
// remaining gap to plaintext:
//
//   - multiple HAAC cores on batch-parallel workloads (ReLU here),
//   - and the segment-size choice study behind §4.2.1's "we set the
//     segment size to half the size of the SWW ... performs best".

// MultiCoreRow is one scaling point.
type MultiCoreRow struct {
	Cores    int
	TotalUS  float64
	SpeedupX float64 // vs one core
}

// MultiCore runs a batch of independent gradient-descent problems (the
// compute-bound, low-ILP workload where one core's 16 GEs sit mostly
// idle) across 1..8 cores with a shared HBM2 interface, and contrasts it
// with batched ReLU, which is already memory-bound at one core and
// therefore must not scale — both outcomes are the point.
func (e *Env) MultiCore() ([]MultiCoreRow, string, error) {
	const batch = 8
	gd := workloads.GradDesc(4, 5)
	relu := workloads.ReLU(512, 32)
	if e.Scale == Small {
		gd = workloads.GradDesc(2, 2)
		relu = workloads.ReLU(128, 32)
	}
	cc := cfg(compiler.FullReorder, true, e.sww2MB(), 16, false)
	hw := hwFor(cc, sim.HBM2)

	compileOne := func(w workloads.Workload) (*compiler.Compiled, error) {
		return compiler.Compile(w.Build(), cc)
	}
	gdProg, err := compileOne(gd)
	if err != nil {
		return nil, "", fmt.Errorf("multicore: %w", err)
	}
	reluProg, err := compileOne(relu)
	if err != nil {
		return nil, "", fmt.Errorf("multicore: %w", err)
	}

	var rows []MultiCoreRow
	var out [][]string
	for _, prog := range []struct {
		name string
		cp   *compiler.Compiled
	}{{"GradDesc x8", gdProg}, {"ReLU x8", reluProg}} {
		shards := make([]*compiler.Compiled, batch)
		for i := range shards {
			shards[i] = prog.cp
		}
		var oneCore float64
		for _, cores := range []int{1, 2, 4, 8} {
			mr, err := sim.SimulateMultiCore(shards, hw, cores)
			if err != nil {
				return nil, "", err
			}
			us := mr.Time() * 1e6
			if cores == 1 {
				oneCore = us
			}
			r := MultiCoreRow{Cores: cores, TotalUS: us, SpeedupX: oneCore / us}
			rows = append(rows, r)
			out = append(out, []string{prog.name, fmt.Sprintf("%d", cores),
				fmt.Sprintf("%.2f", r.TotalUS), fmt.Sprintf("%.2f", r.SpeedupX)})
		}
	}
	s := table([]string{"Batch", "Cores", "Time (us)", "Speedup"}, out)
	s += "\n(§6.5 future work: compute-bound batches scale with cores; ReLU is\nalready at the shared-memory wall and must not)\n"
	return rows, s, nil
}

// SegSweepRow is one segment-size point for segment reordering.
type SegSweepRow struct {
	Fraction string // of the SWW size
	TotalMS  float64
}

// SegmentSweep validates the half-SWW segment choice on MatMult.
func (e *Env) SegmentSweep() ([]SegSweepRow, string, error) {
	var w workloads.Workload
	for _, cand := range e.Scale.Suite() {
		if cand.Name == "MatMult" {
			w = cand
		}
	}
	c := e.Circuit(w)
	swwWires := swwWires(e.sww2MB())
	fracs := []struct {
		name string
		div  int
	}{{"SWW/8", 8}, {"SWW/4", 4}, {"SWW/2 (paper)", 2}, {"SWW", 1}, {"2xSWW", 0}}
	var rows []SegSweepRow
	for _, f := range fracs {
		cc := cfg(compiler.SegmentReorder, true, e.sww2MB(), 16, false)
		if f.div == 0 {
			cc.SegmentWires = 2 * swwWires
		} else {
			cc.SegmentWires = swwWires / f.div
		}
		r, _, err := runSim(c, cc, sim.DDR4)
		if err != nil {
			return nil, "", fmt.Errorf("segsweep: %w", err)
		}
		rows = append(rows, SegSweepRow{Fraction: f.name, TotalMS: float64(r.TotalCycles) / 1e6})
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Fraction, fmt.Sprintf("%.4f", r.TotalMS)})
	}
	return rows, table([]string{"Segment size", "MatMult time (ms@1GHz)"}, out), nil
}
