package bench

import (
	"fmt"
	"net"
	"runtime"
	"time"

	"haac/internal/gc"
	"haac/internal/label"
	"haac/internal/ot"
	"haac/internal/proto"
	"haac/internal/workloads"
)

// Input-phase and transport experiments: the 2PC costs that sit outside
// garbling itself. OTExtension measures the batched IKNP pipeline (the
// evaluator-input phase) across batch sizes; Transport measures the
// slab-encoded table/label stream of a full 2PC run. Both record bytes
// moved and heap allocations alongside throughput — on this repository's
// "wires are the bottleneck" thesis, allocations and copies per item are
// the software analogue of the paper's per-wire DRAM traffic, so the
// experiments pin them per batch rather than per item.

// OTRow reports one OT-extension configuration.
type OTRow struct {
	Protocol string
	M        int // transfers per run
	TotalNs  int64
	NsPerOT  float64
	// WireBytes is the total bytes both directions for the batch.
	WireBytes int64
	// Allocs is the heap-allocation count of one whole run (both
	// parties); AllocsPerOT divides it out.
	Allocs      uint64
	AllocsPerOT float64
}

// dhFloorM is the batch size at which the pooled tier's online phase is
// compared against the DH baseline — the paper-motivated "input-phase
// floor" the pool is built to remove.
const dhFloorM = 1024

// otSizes returns the batch sizes swept at the given scale. 40960 is
// Hamm's evaluator-input width, the paper-scale input phase.
func otSizes(s Scale) []int {
	if s == Paper {
		return []int{4096, 16384, 40960}
	}
	return []int{1024, 8192}
}

// runOTOnce executes one full extension over an in-memory pipe and
// returns wall time, wire bytes and allocation count.
func runOTOnce(protocol ot.Protocol, pairs []ot.Pair, choices ot.Bitset) (time.Duration, int64, uint64, error) {
	stats := &proto.Stats{}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	errc := make(chan error, 1)
	go func() { errc <- ot.Send(a, protocol, pairs) }()
	// Only the receiver end is instrumented: its sends plus its receives
	// count every wire byte exactly once.
	_, err := ot.ReceiveBitset(proto.Instrument(b, stats), protocol, choices)
	if err != nil {
		// Unblock the sender (it may be parked in a pipe Write) before
		// collecting its error.
		a.Close()
		b.Close()
		<-errc
		return 0, 0, 0, err
	}
	if err := <-errc; err != nil {
		return 0, 0, 0, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, stats.BytesSent.Load() + stats.BytesReceived.Load(), after.Mallocs - before.Mallocs, nil
}

// pairsAndChoices builds the message pairs and choice bits for one
// m-transfer batch.
func pairsAndChoices(m int) ([]ot.Pair, ot.Bitset) {
	src := label.NewSource(uint64(m))
	pairs := make([]ot.Pair, m)
	choices := ot.NewBitset(m)
	for i := range pairs {
		pairs[i] = ot.Pair{M0: src.Next(), M1: src.Next()}
		choices.Set(i, i%3 == 0)
	}
	return pairs, choices
}

// runPooledOnce builds a sender/receiver pool pair over an in-memory
// pipe (base OTs via DH), fills 2m correlations, warms the online path
// with one m-transfer derandomization, then measures a second one —
// the steady-state online phase. It returns the fill and online rows.
func runPooledOnce(m int) (fill, online OTRow, err error) {
	pairs, choices := pairsAndChoices(m)
	stats := &proto.Stats{}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ib := proto.Instrument(b, stats)

	errc := make(chan error, 1)
	go func() {
		sp, err := ot.NewSenderPool(a, ot.DH)
		if err == nil {
			err = sp.Fill(a, 2*m)
		}
		if err == nil {
			err = sp.SendDerand(a, pairs) // warm
		}
		if err == nil {
			err = sp.SendDerand(a, pairs) // measured
		}
		errc <- err
	}()
	fail := func(err error) (OTRow, OTRow, error) {
		a.Close()
		b.Close()
		<-errc
		return OTRow{}, OTRow{}, err
	}

	rp, err := ot.NewReceiverPool(ib, ot.DH)
	if err != nil {
		return fail(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := rp.Fill(ib, 2*m); err != nil {
		return fail(err)
	}
	fillDur := time.Since(start)
	runtime.ReadMemStats(&after)
	fill = OTRow{
		Protocol:  "pooled-fill",
		M:         2 * m,
		TotalNs:   fillDur.Nanoseconds(),
		NsPerOT:   float64(fillDur.Nanoseconds()) / float64(2*m),
		WireBytes: stats.BytesSent.Load() + stats.BytesReceived.Load(),
		Allocs:    after.Mallocs - before.Mallocs,
	}
	fill.AllocsPerOT = float64(fill.Allocs) / float64(2*m)

	out := make([]label.L, m)
	if err := rp.ReceiveDerand(ib, choices, out); err != nil { // warm
		return fail(err)
	}
	wireBefore := stats.BytesSent.Load() + stats.BytesReceived.Load()
	runtime.GC()
	runtime.ReadMemStats(&before)
	start = time.Now()
	if err := rp.ReceiveDerand(ib, choices, out); err != nil { // measured
		return fail(err)
	}
	onlineDur := time.Since(start)
	runtime.ReadMemStats(&after)
	if err := <-errc; err != nil {
		return OTRow{}, OTRow{}, err
	}
	for i := range out {
		want := pairs[i].M0
		if choices.Bit(i) == 1 {
			want = pairs[i].M1
		}
		if out[i] != want {
			return OTRow{}, OTRow{}, fmt.Errorf("pooled OT %d diverged from its pair", i)
		}
	}
	online = OTRow{
		Protocol:  "pooled-online",
		M:         m,
		TotalNs:   onlineDur.Nanoseconds(),
		NsPerOT:   float64(onlineDur.Nanoseconds()) / float64(m),
		WireBytes: stats.BytesSent.Load() + stats.BytesReceived.Load() - wireBefore,
		Allocs:    after.Mallocs - before.Mallocs,
	}
	online.AllocsPerOT = float64(online.Allocs) / float64(m)
	return fill, online, nil
}

// OTExtension measures IKNP batches across the scale's size sweep, with
// DH batches as the public-key baseline the extension replaces and the
// pooled tier's fill/online split showing what precomputation leaves on
// the critical path: one choice-correction XOR round. The pooled online
// phase at m=1024 is asserted >=10x faster than the DH floor at the
// same m — the latency the pool exists to remove.
func (e *Env) OTExtension() ([]OTRow, string, error) {
	var rows []OTRow
	run := func(name string, protocol ot.Protocol, m int) error {
		pairs, choices := pairsAndChoices(m)
		// Warm run so one-time pool/cipher setup is off the books, then
		// a measured run.
		if _, _, _, err := runOTOnce(protocol, pairs, choices); err != nil {
			return err
		}
		elapsed, wire, allocs, err := runOTOnce(protocol, pairs, choices)
		if err != nil {
			return err
		}
		rows = append(rows, OTRow{
			Protocol:    name,
			M:           m,
			TotalNs:     elapsed.Nanoseconds(),
			NsPerOT:     float64(elapsed.Nanoseconds()) / float64(m),
			WireBytes:   wire,
			Allocs:      allocs,
			AllocsPerOT: float64(allocs) / float64(m),
		})
		return nil
	}

	if err := run("DH", ot.DH, 128); err != nil {
		return nil, "", err
	}
	if err := run("DH", ot.DH, dhFloorM); err != nil {
		return nil, "", err
	}
	for _, m := range otSizes(e.Scale) {
		if err := run("IKNP", ot.IKNP, m); err != nil {
			return nil, "", err
		}
	}
	fill, online, err := runPooledOnce(dhFloorM)
	if err != nil {
		return nil, "", err
	}
	rows = append(rows, fill, online)
	var dhFloor *OTRow
	for i := range rows {
		if rows[i].Protocol == "DH" && rows[i].M == dhFloorM {
			dhFloor = &rows[i]
		}
	}
	if online.TotalNs*10 > dhFloor.TotalNs {
		return nil, "", fmt.Errorf("pooled online phase %v is not 10x under the DH floor %v at m=%d",
			time.Duration(online.TotalNs), time.Duration(dhFloor.TotalNs), dhFloorM)
	}

	header := []string{"Proto", "m", "total ms", "us/OT", "wire KiB", "allocs", "allocs/OT"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Protocol, fmt.Sprint(r.M),
			ms(time.Duration(r.TotalNs)),
			fmt.Sprintf("%.3f", r.NsPerOT/1e3),
			fmt.Sprintf("%.1f", float64(r.WireBytes)/1024),
			fmt.Sprint(r.Allocs),
			fmt.Sprintf("%.4f", r.AllocsPerOT),
		})
	}
	s := table(header, cells)
	s += fmt.Sprintf("\n(IKNP allocs are O(1) per 16384-OT chunk — allocs/OT falls toward zero as m\n"+
		"grows, while DH pays public-key work and allocations per transfer; pooled-fill\n"+
		"is the off-path precompute — base OTs paid once, IKNP extension banked — and\n"+
		"pooled-online is what remains on the critical path: one choice-correction XOR\n"+
		"round at ~32 wire bytes/OT, measured %.0fx under the DH floor at m=%d)\n",
		float64(dhFloor.TotalNs)/float64(online.TotalNs), dhFloorM)
	return rows, s, nil
}

// TransportRow reports one 2PC transport configuration.
type TransportRow struct {
	Name      string
	ANDGates  int
	WallNs    int64
	BytesSent int64
	BytesRecv int64
	// Allocs counts both parties' heap allocations for the whole run.
	Allocs         uint64
	AllocsPerTable float64
	MBps           float64
}

// Transport measures the slab-encoded table/label stream: a full
// in-process 2PC run per engine, recording bytes each way, end-to-end
// throughput and allocations per garbled table.
func (e *Env) Transport() ([]TransportRow, string, error) {
	w := workloads.DotProduct(8, 16)
	if e.Scale == Paper {
		w = workloads.DotProduct(64, 32)
	}
	c := e.Circuit(w)
	and, _, _ := c.CountOps()

	// Both hashers are allocation-free in steady state, so every row
	// measures the transport itself; the rekeyed row shows the paper's
	// hasher, whose per-gate key expansions now run through pooled
	// schedules and cost CPU time, not allocations.
	fk := gc.NewFixedKeyHasher([16]byte{42})
	configs := []struct {
		name string
		opts proto.Options
	}{
		{"sequential", proto.Options{OT: ot.Insecure, Seed: 7, Hasher: fk}},
		{"pipelined-x4", proto.Options{OT: ot.Insecure, Seed: 7, Hasher: fk, Pipelined: true, Workers: 4}},
		{"iknp-seq", proto.Options{OT: ot.IKNP, Seed: 7, Hasher: fk}},
		{"rekeyed-seq", proto.Options{OT: ot.Insecure, Seed: 7}},
	}

	var rows []TransportRow
	for _, cfg := range configs {
		run := func() (*proto.Stats, time.Duration, error) {
			stats := &proto.Stats{}
			opts := cfg.opts
			opts.Stats = stats
			d, err := time2PC(w, c, opts)
			return stats, d, err
		}
		if _, _, err := run(); err != nil { // warm pools and caches
			return nil, "", err
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		stats, wall, err := run()
		if err != nil {
			return nil, "", err
		}
		runtime.ReadMemStats(&after)
		allocs := after.Mallocs - before.Mallocs
		rows = append(rows, TransportRow{
			Name:           cfg.name,
			ANDGates:       and,
			WallNs:         wall.Nanoseconds(),
			BytesSent:      stats.BytesSent.Load(),
			BytesRecv:      stats.BytesReceived.Load(),
			Allocs:         allocs,
			AllocsPerTable: float64(allocs) / float64(and),
			MBps:           stats.Throughput() / 1e6,
		})
	}

	header := []string{"Engine", "ANDs", "wall ms", "sent KiB", "recv KiB", "allocs", "allocs/table", "MB/s"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Name, fmt.Sprint(r.ANDGates),
			ms(time.Duration(r.WallNs)),
			fmt.Sprintf("%.1f", float64(r.BytesSent)/1024),
			fmt.Sprintf("%.1f", float64(r.BytesRecv)/1024),
			fmt.Sprint(r.Allocs),
			fmt.Sprintf("%.3f", r.AllocsPerTable),
			fmt.Sprintf("%.2f", r.MBps),
		})
	}
	s := table(header, cells)
	s += "\n(tables and labels are slab-encoded through pooled buffers and both hashers\nrun allocation-free, so allocs/table is O(1/slab) and independent of circuit\nsize on every row; the rekeyed row still pays the paper's per-gate key\nexpansions, but as CPU time through pooled schedules rather than allocations)\n"
	return rows, s, nil
}
