package bench

import (
	"fmt"
	"net"
	"sync"
	"time"

	"haac/internal/circuit"
	"haac/internal/faultnet"
	"haac/internal/ot"
	"haac/internal/server"
	"haac/internal/workloads"
)

// Chaos experiment: the serving layer's self-healing story, quantified.
// Concurrent evaluator sessions run against one serving garbler through
// a seeded fault-injecting dialer that severs connections at increasing
// per-I/O-op drop rates; the clients' retry policy redials,
// re-handshakes and replays every broken run. The experiment reports,
// per fault rate, the throughput the healed sessions still achieve and
// the repair work it took — drops injected, reconnects, replayed run
// attempts, failed redials, and the failed runs the server tore down.
// Every run's output is checked against the plaintext oracle, so the
// table doubles as an end-to-end proof that replayed runs stay
// byte-identical under faults.

// ChaosRow reports one fault level.
type ChaosRow struct {
	DropRate   float64 // per-I/O-op probability of severing the conn
	Sessions   int
	Runs       int // completed (healed) runs, all sessions
	RunsPerSec float64
	Drops      uint64 // connections severed by the injector
	Reconnects uint64 // successful redial + re-handshake cycles
	Retries    uint64 // run attempts replayed after a retryable failure
	DialFails  uint64 // redial attempts that failed
	SrvFailed  uint64 // runs the server saw die mid-protocol
}

// Chaos measures serving throughput and repair work at increasing
// injected connection-drop rates.
func (e *Env) Chaos() ([]ChaosRow, string, error) {
	w := workloads.AddN(16)
	c := w.Build()
	garblerBits, _ := w.Inputs(3)
	sessions, runsPerSession := 4, 12
	if e.Scale == Paper {
		runsPerSession = 24
	}

	var rows []ChaosRow
	for i, rate := range []float64{0, 0.02, 0.05} {
		row, err := e.chaosLevel(w, c, garblerBits, rate, uint64(100+i), sessions, runsPerSession)
		if err != nil {
			return nil, "", fmt.Errorf("chaos: drop rate %.2f: %w", rate, err)
		}
		rows = append(rows, row)
	}

	header := []string{"drop rate", "sessions", "runs", "runs/s", "drops", "reconnects", "retries", "dial fails", "srv failed runs"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%.2f", r.DropRate),
			fmt.Sprint(r.Sessions),
			fmt.Sprint(r.Runs),
			fmt.Sprintf("%.0f", r.RunsPerSec),
			fmt.Sprint(r.Drops),
			fmt.Sprint(r.Reconnects),
			fmt.Sprint(r.Retries),
			fmt.Sprint(r.DialFails),
			fmt.Sprint(r.SrvFailed),
		})
	}
	s := table(header, cells)
	s += fmt.Sprintf("\n(%s over loopback TCP through a seeded fault-injecting dialer; drop rate is\n"+
		"the per-I/O-op probability of severing the connection; every run's output is\n"+
		"checked against the plaintext oracle, so completed runs are byte-identical to\n"+
		"fault-free ones — the remaining columns price the repair: reconnect handshakes,\n"+
		"replayed runs and the server-side sessions torn down mid-protocol; throughput\n"+
		"is reported for shape only, not asserted)\n", w.Name)
	return rows, s, nil
}

// chaosLevel runs one drop-rate level end to end: every session must
// complete all its runs with oracle-identical outputs, healed by the
// retry policy.
func (e *Env) chaosLevel(w workloads.Workload, c *circuit.Circuit, garblerBits []bool, rate float64, seed uint64, sessions, runsPerSession int) (ChaosRow, error) {
	row := ChaosRow{DropRate: rate, Sessions: sessions}

	srv, err := server.New(server.Config{
		Circuits: []server.CircuitSpec{{
			ID:      w.Name,
			Circuit: c,
			Inputs:  func() []bool { return garblerBits },
		}},
		Seed:            19,
		AllowInsecureOT: true,
	})
	if err != nil {
		return row, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return row, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-done
	}()

	plan, err := circuit.NewPlan(c)
	if err != nil {
		return row, err
	}
	dialer := &faultnet.Dialer{Plan: faultnet.Plan{Seed: seed, DropRate: rate}}
	retry := server.RetryPolicy{
		MaxAttempts:      200,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       8 * time.Millisecond,
		HandshakeTimeout: time.Second,
		Seed:             seed + 1,
	}

	_, evalBits := w.Inputs(5)
	want, err := c.Eval(garblerBits, evalBits)
	if err != nil {
		return row, err
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	stats := make(chan server.ClientStats, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			retry := retry
			retry.Seed += uint64(i)
			sess, err := server.Dial(ln.Addr().String(), w.Name, c, server.Options{
				OT:     ot.Insecure,
				Plan:   plan,
				Retry:  retry,
				Dialer: dialer.Dial,
			})
			if err != nil {
				errs <- fmt.Errorf("session %d: dial: %w", i, err)
				return
			}
			defer sess.Close()
			for r := 0; r < runsPerSession; r++ {
				out, err := sess.Run(evalBits)
				if err != nil {
					errs <- fmt.Errorf("session %d run %d: %w", i, r, err)
					return
				}
				for j := range want {
					if out[j] != want[j] {
						errs <- fmt.Errorf("session %d run %d: output %d diverged from plaintext oracle", i, r, j)
						return
					}
				}
			}
			stats <- sess.Stats()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	close(stats)
	for err := range errs {
		return row, err
	}

	for st := range stats {
		row.Runs += int(st.Runs)
		row.Reconnects += st.Reconnects
		row.Retries += st.Retries
		row.DialFails += st.DialFailures
	}
	row.RunsPerSec = float64(row.Runs) / elapsed.Seconds()
	row.Drops = dialer.Stats().Drops.Load()
	row.SrvFailed = srv.Stats().RunsFailed
	return row, nil
}
