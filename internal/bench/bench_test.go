package bench

import (
	"strings"
	"testing"

	"haac/internal/compiler"
)

func env(t *testing.T) *Env {
	t.Helper()
	return NewEnv(Small)
}

func TestParseScale(t *testing.T) {
	if s, err := ParseScale("paper"); err != nil || s != Paper {
		t.Fatal("paper scale")
	}
	if s, err := ParseScale("SMALL"); err != nil || s != Small {
		t.Fatal("small scale")
	}
	if _, err := ParseScale("medium"); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestTable1Static(t *testing.T) {
	s := Table1()
	for _, want := range []string{"GCs", "TFHE", "Moderate"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2(t *testing.T) {
	rows, s, err := env(t).Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("Table 2 has %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.GatesK <= 0 || r.Levels <= 0 {
			t.Fatalf("row %s has empty stats", r.Name)
		}
		if r.SpentWirePc < 0 || r.SpentWirePc > 100 {
			t.Fatalf("row %s spent%% out of range: %v", r.Name, r.SpentWirePc)
		}
	}
	if !strings.Contains(s, "BubbSt") {
		t.Fatal("formatting broken")
	}
}

func TestTable3TradeoffDirection(t *testing.T) {
	rows, _, err := env(t).Table3()
	if err != nil {
		t.Fatal(err)
	}
	// At least one benchmark must favour segment reordering (Table 3's
	// top group exists at any scale with a matched SWW).
	favourSeg := 0
	for _, r := range rows {
		if r.TotalSegK <= r.TotalFullK {
			favourSeg++
		}
	}
	if favourSeg == 0 {
		t.Fatal("no benchmark favours segment reordering; Table 3 shape lost")
	}
}

func TestFig6OptimizationsHelp(t *testing.T) {
	rows, s, err := env(t).Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatal("Fig 6 rows")
	}
	better := 0
	for _, r := range rows {
		if r.Baseline <= 0 || r.RORN <= 0 || r.ESW <= 0 {
			t.Fatalf("%s: non-positive speedup", r.Name)
		}
		if r.ESW >= r.Baseline {
			better++
		}
	}
	// The full optimization stack must beat the baseline schedule on a
	// clear majority of benchmarks (paper: all of them).
	if better < 6 {
		t.Fatalf("optimizations beat baseline on only %d/8 benchmarks\n%s", better, s)
	}
}

func TestFig7Shape(t *testing.T) {
	rows, _, err := env(t).Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("Fig 7 needs MatMult and BubbSt, got %d rows", len(rows))
	}
	for _, row := range rows {
		if len(row.Cells) != 9 {
			t.Fatalf("%s: %d cells, want 9", row.Name, len(row.Cells))
		}
		// Growing the SWW must not increase wire traffic (within an
		// ordering).
		for i := 0; i+1 < len(row.Cells); i++ {
			a, b := row.Cells[i], row.Cells[i+1]
			if a.Order == b.Order && b.Wire > a.Wire {
				t.Fatalf("%s %v: wire traffic grew with SWW (%v -> %v)",
					row.Name, a.Order, a.Wire, b.Wire)
			}
		}
	}
}

func TestFig8Scaling(t *testing.T) {
	rows, _, err := env(t).Fig8()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// HBM2 speedup must be weakly monotone in GE count.
		for i := 1; i < len(r.HBM2); i++ {
			if r.HBM2[i] < r.HBM2[i-1]*0.95 {
				t.Fatalf("%s: HBM2 speedup dropped from %.1f to %.1f at %d GEs",
					r.Name, r.HBM2[i-1], r.HBM2[i], r.GEs[i])
			}
		}
		// HBM2 must never lose to DDR4.
		last := len(r.GEs) - 1
		if r.HBM2[last] < r.DDR4[last]*0.95 {
			t.Fatalf("%s: HBM2 slower than DDR4 at 16 GEs", r.Name)
		}
	}
}

func TestFig9(t *testing.T) {
	rows, _, err := env(t).Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		sum := r.Breakdown.HalfGate + r.Breakdown.Crossbar + r.Breakdown.SRAM +
			r.Breakdown.Others + r.Breakdown.DRAMPHY
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s: breakdown sums to %v", r.Name, sum)
		}
		if r.EfficiencyKx <= 0 {
			t.Fatalf("%s: non-positive efficiency", r.Name)
		}
	}
}

func TestFig10Ordering(t *testing.T) {
	rows, _, err := env(t).Fig10()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// HAAC must beat CPU GC, and HBM2 must not lose to DDR4.
		if r.HAACDDR4 >= r.CPUGC {
			t.Fatalf("%s: HAAC DDR4 (%.3g) not faster than CPU GC (%.3g)", r.Name, r.HAACDDR4, r.CPUGC)
		}
		if r.HAACHBM2 > r.HAACDDR4*1.05 {
			t.Fatalf("%s: HBM2 slower than DDR4", r.Name)
		}
	}
}

func TestTable4(t *testing.T) {
	s, err := env(t).Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Half-Gate", "4.3", "HBM2 PHY", "14.9"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table 4 missing %q:\n%s", want, s)
		}
	}
}

func TestTable5(t *testing.T) {
	rows, s, err := env(t).Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(priorResults) {
		t.Fatalf("Table 5 rows %d, want %d", len(rows), len(priorResults))
	}
	wins := 0
	for _, r := range rows {
		if r.Speedup > 1 {
			wins++
		}
	}
	// The paper beats every prior system; allow a little slack for our
	// heavier circuits but require a decisive majority.
	if wins < len(rows)*3/4 {
		t.Fatalf("HAAC wins only %d/%d comparisons\n%s", wins, len(rows), s)
	}
}

func TestGarblerVsEvaluator(t *testing.T) {
	ratio, _, err := env(t).GarblerVsEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 0.99 || ratio > 1.3 {
		t.Fatalf("garbler/evaluator ratio %.3f outside plausible band", ratio)
	}
}

func TestMemoryExperiment(t *testing.T) {
	rows, s, err := env(t).Memory()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("memory rows = %d, want the full VIP suite (8)\n%s", len(rows), s)
	}
	for _, r := range rows {
		// The acceptance invariant: renaming compacts every VIP workload
		// below its dense wire count.
		if r.Slots >= r.Wires {
			t.Fatalf("%s: peak-live %d not below %d wires\n%s", r.Name, r.Slots, r.Wires, s)
		}
		if r.PlanLabelBytes >= r.DenseLabelBytes {
			t.Fatalf("%s: planned label bytes did not shrink\n%s", r.Name, s)
		}
		if r.LiveFraction() <= 0 || r.LiveFraction() >= 1 {
			t.Fatalf("%s: live fraction %.3f out of (0,1)", r.Name, r.LiveFraction())
		}
		// Planned steady state must allocate (far) less than dense; the
		// exact zero is asserted by the race-gated gc regression test.
		// Under the race detector sync.Pool stops caching, so the counts
		// lose meaning there.
		if !raceEnabled && r.PlanAllocs > r.DenseAllocs {
			t.Fatalf("%s: planned allocs %.1f above dense %.1f", r.Name, r.PlanAllocs, r.DenseAllocs)
		}
	}
	if !strings.Contains(s, "peak-live") {
		t.Fatal("formatting broken")
	}
}

func TestCfgHelpers(t *testing.T) {
	c := cfg(compiler.FullReorder, true, 2, 16, false)
	if c.SWWWires != 131072 {
		t.Fatalf("2 MB SWW = %d wires, want 131072", c.SWWWires)
	}
}

func TestAblations(t *testing.T) {
	rows, s, err := env(t).Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("ablation rows = %d, want 12\n%s", len(rows), s)
	}
	byVariant := map[string]AblationRow{}
	for _, r := range rows {
		if r.Workload == "BubbSt" {
			byVariant[r.Variant] = r
		}
	}
	base := byVariant["baseline (paper design)"]
	// Pull-based OoR must hurt a workload with OoR traffic.
	if p := byVariant["pull-based OoR reads"]; p.Total < base.Total {
		t.Fatalf("pull-based OoR faster than push (%v vs %v)", p.Total, base.Total)
	}
	// Removing the SWW must increase end-to-end time on a reuse-heavy
	// workload.
	if p := byVariant["no SWW (stream all wires)"]; p.Total < base.Total {
		t.Fatalf("removing the SWW did not hurt (%v vs %v)", p.Total, base.Total)
	}
	// Removing forwarding must not help compute.
	if p := byVariant["no forwarding network"]; p.Compute < base.Compute {
		t.Fatalf("removing forwarding improved compute")
	}
}

func TestMultiCore(t *testing.T) {
	rows, s, err := env(t).MultiCore()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("multicore rows: %d", len(rows))
	}
	gd := rows[:4]
	relu := rows[4:]
	// Compute-bound batch must gain from a second core (further cores
	// saturate the shared memory interface sooner at small scale).
	if gd[1].SpeedupX < 1.5 {
		t.Fatalf("2 cores gave %.2fx on GradDesc batch\n%s", gd[1].SpeedupX, s)
	}
	// No configuration may get slower with more cores.
	for _, set := range [][]MultiCoreRow{gd, relu} {
		for i := 1; i < len(set); i++ {
			if set[i].TotalUS > set[i-1].TotalUS*1.01 {
				t.Fatalf("more cores got slower:\n%s", s)
			}
		}
	}
	// Memory-bound ReLU must NOT benefit much — it is at the shared wall.
	if relu[3].SpeedupX > 2.5 {
		t.Fatalf("ReLU batch scaled %.2fx; memory wall modeling broken\n%s", relu[3].SpeedupX, s)
	}
}

func TestSegmentSweep(t *testing.T) {
	rows, s, err := env(t).SegmentSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("segment sweep rows: %d\n%s", len(rows), s)
	}
	// The paper's half-SWW point must be within 10% of the sweep's best.
	best := rows[0].TotalMS
	var half float64
	for _, r := range rows {
		if r.TotalMS < best {
			best = r.TotalMS
		}
		if r.Fraction == "SWW/2 (paper)" {
			half = r.TotalMS
		}
	}
	if half > best*1.10 {
		t.Fatalf("half-SWW segments %.4f ms vs best %.4f ms; paper's choice not near-optimal\n%s", half, best, s)
	}
}

func TestCoupling(t *testing.T) {
	rows, s, err := env(t).Coupling()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("coupling rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.CoupledCycles < r.DecoupledCycles {
			t.Fatalf("%s: coupled model beat the lower bound\n%s", r.Name, s)
		}
		if r.ErrorPct > 60 {
			t.Fatalf("%s: coupled model %.0f%% above bound; decoupling claim broken\n%s", r.Name, r.ErrorPct, s)
		}
	}
}
