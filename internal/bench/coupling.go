package bench

import (
	"fmt"

	"haac/internal/compiler"
	"haac/internal/sim"
)

// Coupling validates the decoupled max(compute, traffic) model the
// headline simulator (and the paper's own Fig. 7 analysis) uses: it
// re-runs benchmarks under the finite-queue coupled model and reports
// how far above the decoupled bound the "real" machine lands. Small
// gaps confirm §3.1.4's claim that push-based streams make off-chip
// movement fully overlappable.
type CouplingRow struct {
	Name            string
	DecoupledCycles int64
	CoupledCycles   int64
	ErrorPct        float64
}

// Coupling runs the validation on the suite (paper-scale BubbSt/GradDesc
// are skipped: the cycle-by-cycle coupled model is O(cycles), and the
// shape is identical on the mid-size benchmarks).
func (e *Env) Coupling() ([]CouplingRow, string, error) {
	var rows []CouplingRow
	for _, w := range e.Scale.Suite() {
		if e.Scale == Paper && (w.Name == "BubbSt" || w.Name == "GradDesc" || w.Name == "Triangle") {
			continue
		}
		c := e.Circuit(w)
		cc := cfg(compiler.FullReorder, true, e.sww2MB(), 16, false)
		cp, err := compiler.Compile(c, cc)
		if err != nil {
			return nil, "", fmt.Errorf("coupling %s: %w", w.Name, err)
		}
		r, err := sim.SimulateCoupled(cp, hwFor(cc, sim.DDR4), sim.DefaultQueues())
		if err != nil {
			return nil, "", fmt.Errorf("coupling %s: %w", w.Name, err)
		}
		rows = append(rows, CouplingRow{
			Name:            w.Name,
			DecoupledCycles: r.DecoupledCycles,
			CoupledCycles:   r.TotalCycles,
			ErrorPct:        100 * r.CouplingError(),
		})
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Name,
			fmt.Sprintf("%d", r.DecoupledCycles), fmt.Sprintf("%d", r.CoupledCycles),
			fmt.Sprintf("%+.1f%%", r.ErrorPct)})
	}
	s := table([]string{"Benchmark", "Decoupled (cyc)", "Coupled (cyc)", "Gap"}, out)
	s += "\n(finite queues + shared DRAM streamer vs the max(compute,traffic)\nbound; small gaps validate the §3.1.4 decoupling claim)\n"
	return rows, s, nil
}
