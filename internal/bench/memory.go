package bench

import (
	"fmt"
	"runtime"

	"haac/internal/circuit"
	"haac/internal/gc"
	"haac/internal/label"
)

// Memory experiment: the software mirror of the paper's renaming /
// out-of-range-wire story (§3.1.4). The dense engines hold one label per
// circuit wire per run; a precompiled plan renames the write-once wire
// space onto ≈ peak-live slots and reuses one arena across runs. The
// experiment reports, per VIP workload, how far the working set shrinks
// (peak-live width vs total wires, resident label bytes) and what it
// does to steady-state heap allocations per run.

// MemoryRow reports one workload's dense-vs-planned memory profile.
type MemoryRow struct {
	Name     string
	Wires    int // total circuit wires
	Slots    int // renamed slot-space width (== peak-live wires)
	ANDGates int
	// DenseLabelBytes / PlanLabelBytes are the resident label-array
	// bytes of one execution under each engine.
	DenseLabelBytes int64
	PlanLabelBytes  int64
	// DenseAllocs / PlanAllocs are steady-state heap allocations for one
	// full garble+evaluate cycle (not counting one-time plan/runner
	// construction, which is amortized across runs).
	DenseAllocs float64
	PlanAllocs  float64
}

// LiveFraction returns Slots/Wires — the paper's "how small can the
// window be" quantity.
func (r MemoryRow) LiveFraction() float64 {
	if r.Wires == 0 {
		return 0
	}
	return float64(r.Slots) / float64(r.Wires)
}

// allocsPerRun measures steady-state heap allocations of fn (averaged
// over reps) after one warm-up call, via runtime.MemStats — the bench
// package's non-testing analogue of testing.AllocsPerRun.
func allocsPerRun(reps int, fn func()) float64 {
	var before, after runtime.MemStats
	runtime.GC()
	fn() // warm pools after the GC cleared them, and any lazily built state
	runtime.ReadMemStats(&before)
	for i := 0; i < reps; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(reps)
}

// Memory measures the suite under the sequential dense engines vs a
// reused plan runner pair.
func (e *Env) Memory() ([]MemoryRow, string, error) {
	h := gc.RekeyedHasher{}
	const reps = 3
	var rows []MemoryRow
	for _, w := range e.Scale.Suite() {
		c := e.Circuit(w)
		p, err := circuit.NewPlan(c)
		if err != nil {
			return nil, "", fmt.Errorf("memory: %s: %w", w.Name, err)
		}
		and, _, _ := c.CountOps()
		row := MemoryRow{
			Name:            w.Name,
			Wires:           c.NumWires,
			Slots:           p.NumSlots,
			ANDGates:        and,
			DenseLabelBytes: int64(c.NumWires) * label.Size,
			PlanLabelBytes:  int64(p.NumSlots) * label.Size,
		}

		garbled, err := gc.Garble(c, h, label.NewSource(11))
		if err != nil {
			return nil, "", err
		}
		gb, eb := w.Inputs(5)
		inputs, err := garbled.EncodeInputs(c, gb, eb)
		if err != nil {
			return nil, "", err
		}
		tables := garbled.Tables

		row.DenseAllocs = allocsPerRun(reps, func() {
			g, err := gc.Garble(c, h, label.NewSource(11))
			if err != nil {
				panic(err)
			}
			if _, err := gc.Evaluate(c, h, inputs, g.Tables); err != nil {
				panic(err)
			}
		})

		pg := gc.NewPlanGarbler(p, h, 1)
		pe := gc.NewPlanEvaluator(p, h, 1)
		src := label.NewSource(11)
		row.PlanAllocs = allocsPerRun(reps, func() {
			pg.Begin(src)
			if _, err := pg.Run(nil); err != nil {
				panic(err)
			}
			if _, err := pe.Eval(inputs, tables); err != nil {
				panic(err)
			}
		})
		rows = append(rows, row)
	}

	header := []string{"Bench", "wires", "peak-live", "live %", "dense KB", "plan KB", "dense allocs/run", "plan allocs/run"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Name,
			fmt.Sprint(r.Wires),
			fmt.Sprint(r.Slots),
			fmt.Sprintf("%.1f", 100*r.LiveFraction()),
			fmt.Sprintf("%.0f", float64(r.DenseLabelBytes)/1024),
			fmt.Sprintf("%.0f", float64(r.PlanLabelBytes)/1024),
			fmt.Sprintf("%.0f", r.DenseAllocs),
			fmt.Sprintf("%.1f", r.PlanAllocs),
		})
	}
	s := table(header, cells)
	s += "\n(peak-live is the renamed slot-space width — the label arena a planned run touches;\n" +
		"dense/plan KB are resident label bytes per run at 16 B per wire/slot; allocs/run is\n" +
		"one steady-state garble+evaluate cycle — planned runs reuse one arena and the cached\n" +
		"schedule, so they stay at zero)\n"
	return rows, s, nil
}
