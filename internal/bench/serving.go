package bench

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"haac/internal/circuit"
	"haac/internal/ot"
	"haac/internal/server"
	"haac/internal/workloads"
)

// Serving experiment: the paper's setup-amortization premise at the
// fleet level. One serving garbler answers 1, 4 and 16 concurrent
// evaluator sessions over loopback TCP; the circuit's plan is built
// once and shared, every session holds pooled runners, and both ends
// run the plan engines. The experiment reports throughput (runs/sec —
// reported, never asserted: single-CPU CI makes wall-clock comparisons
// meaningless), steady-state heap allocations per run across the whole
// process (client and server sides combined), transport bytes per run,
// and the plan-cache counters proving the one-build property. A final
// saturation level caps the server below the offered sessions: the
// excess connections must shed with a typed busy refusal while the
// admitted ones serve unperturbed — the load-shedding contract a
// sharded front proxy routes around.

// ServingRow reports one concurrency level.
type ServingRow struct {
	Sessions       int // sessions offered (dial attempts)
	MaxSessions    int // admission cap (0 = unlimited)
	Admitted       int // sessions that passed admission
	Refused        uint64
	RunsPerSession int
	Runs           int // total measured runs
	RunsPerSec     float64
	AllocsPerRun   float64 // process-wide, both roles
	BytesOutPerRun float64 // server->clients transport bytes
	CacheHits      uint64
	CacheMisses    uint64
	// PlanBuilds counts process-wide circuit.NewPlan calls across the
	// whole level: the server's one cache build plus the one plan the
	// level's clients share — 2 regardless of session count.
	PlanBuilds uint64
	// Pooled marks the precomputed-OT level; PoolHits counts its
	// measured runs served from the pool and BaseOTRounds the base-OT
	// rounds spent inside the measured window (asserted 0 — the tier's
	// whole point).
	Pooled       bool
	PoolHits     uint64
	BaseOTRounds uint64
}

// servingWorkload picks the measured circuit per scale.
func servingWorkload(s Scale) workloads.Workload {
	if s == Paper {
		return workloads.DotProduct(16, 32)
	}
	return workloads.DotProduct(4, 16)
}

// Serving measures the serving layer at 1, 4 and 16 concurrent
// evaluator sessions.
func (e *Env) Serving() ([]ServingRow, string, error) {
	w := servingWorkload(e.Scale)
	c := w.Build()
	garblerBits, _ := w.Inputs(3)
	runsPerSession := 24
	if e.Scale == Paper {
		runsPerSession = 8
	}

	var rows []ServingRow
	for _, sessions := range []int{1, 4, 16} {
		row, err := e.servingLevel(w, c, garblerBits, sessions, 0, runsPerSession, false)
		if err != nil {
			return nil, "", fmt.Errorf("serving: %d sessions: %w", sessions, err)
		}
		rows = append(rows, row)
	}
	// Saturation: offer 16 sessions against an 8-session cap; the 8
	// over-limit connections shed at handshake while the admitted 8
	// serve every run.
	row, err := e.servingLevel(w, c, garblerBits, 16, 8, runsPerSession, false)
	if err != nil {
		return nil, "", fmt.Errorf("serving: saturation: %w", err)
	}
	rows = append(rows, row)
	// Pooled steady state: one session on the precomputed-OT tier. The
	// dial pays base OTs and an initial fill once; the measured window
	// must then run entirely from the pool — zero base-OT rounds, every
	// run a pool hit (both asserted in servingLevel).
	row, err = e.servingLevel(w, c, garblerBits, 1, 0, runsPerSession, true)
	if err != nil {
		return nil, "", fmt.Errorf("serving: pooled: %w", err)
	}
	rows = append(rows, row)

	header := []string{"sessions", "cap", "OT", "admitted", "refused", "runs", "runs/s", "allocs/run", "KB out/run", "pool hit/baseOT", "cache hit/miss", "plan builds"}
	var cells [][]string
	for _, r := range rows {
		cap := "-"
		if r.MaxSessions > 0 {
			cap = fmt.Sprint(r.MaxSessions)
		}
		tier, pool := "on-demand", "-"
		if r.Pooled {
			tier = "pooled"
			pool = fmt.Sprintf("%d/%d", r.PoolHits, r.BaseOTRounds)
		}
		cells = append(cells, []string{
			fmt.Sprint(r.Sessions),
			cap,
			tier,
			fmt.Sprint(r.Admitted),
			fmt.Sprint(r.Refused),
			fmt.Sprint(r.Runs),
			fmt.Sprintf("%.0f", r.RunsPerSec),
			fmt.Sprintf("%.1f", r.AllocsPerRun),
			fmt.Sprintf("%.0f", r.BytesOutPerRun/1024),
			pool,
			fmt.Sprintf("%d/%d", r.CacheHits, r.CacheMisses),
			fmt.Sprint(r.PlanBuilds),
		})
	}
	s := table(header, cells)
	s += fmt.Sprintf("\n(one haacd-style server, %s over loopback TCP, plan engines both ends;\n"+
		"every level shows exactly 1 cache miss and 2 plan builds — one server-side shared\n"+
		"by all admitted sessions, one client-side shared by the level's dialers (sessions\n"+
		"dial sequentially, so only completed builds count as hits); the capped row sheds\n"+
		"its excess connections with a typed busy refusal at handshake; the pooled row\n"+
		"banks OT correlations at dial time and its measured window is asserted to spend\n"+
		"zero base-OT rounds with every run a pool hit; allocs/run counts the whole\n"+
		"process, client sessions included; throughput is reported for shape only, not\n"+
		"asserted)\n", w.Name)
	return rows, s, nil
}

// servingLevel runs one concurrency level end to end and measures it.
// maxSessions > 0 caps admission below the offered session count; the
// shed connections must fail typed with ErrBusy. pooled switches the
// level to the precomputed-OT tier, sized so the measured window never
// needs a background refill, and asserts its steady-state contract.
func (e *Env) servingLevel(w workloads.Workload, c *circuit.Circuit, garblerBits []bool, sessions, maxSessions, runsPerSession int, pooled bool) (ServingRow, error) {
	row := ServingRow{Sessions: sessions, MaxSessions: maxSessions, RunsPerSession: runsPerSession, Pooled: pooled}

	buildsBefore := circuit.PlanBuilds()
	srv, err := server.New(server.Config{
		Circuits: []server.CircuitSpec{{
			ID:      w.Name,
			Circuit: c,
			Inputs:  func() []bool { return garblerBits },
		}},
		Seed:            17,
		MaxSessions:     maxSessions,
		AllowInsecureOT: true,
	})
	if err != nil {
		return row, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return row, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-done
	}()

	// One client-side plan shared by every session of the level.
	plan, err := circuit.NewPlan(c)
	if err != nil {
		return row, err
	}
	opts := server.Options{OT: ot.Insecure, Plan: plan}
	if pooled {
		// Twice the level's whole demand (warm-up run included): the
		// pool ends the window at half target, so the background refill
		// never fires inside the measurement.
		opts = server.Options{Plan: plan, PoolSize: 2 * (runsPerSession + 1) * c.EvaluatorInputs}
	}
	conns := make([]*server.Session, 0, sessions)
	for i := 0; i < sessions; i++ {
		sess, err := server.Dial(ln.Addr().String(), w.Name, c, opts)
		if errors.Is(err, server.ErrBusy) {
			continue // shed at admission; counted via SessionsRefused
		}
		if err != nil {
			return row, err
		}
		defer sess.Close()
		conns = append(conns, sess)
	}
	if maxSessions > 0 && len(conns) != maxSessions {
		return row, fmt.Errorf("admitted %d sessions under a cap of %d", len(conns), maxSessions)
	}
	row.Admitted = len(conns)
	row.Runs = len(conns) * runsPerSession
	_, evalBits := w.Inputs(5)
	want, err := c.Eval(garblerBits, evalBits)
	if err != nil {
		return row, err
	}

	drive := func(sess *server.Session, runs int) error {
		for r := 0; r < runs; r++ {
			out, err := sess.Run(evalBits)
			if err != nil {
				return err
			}
			for j := range want {
				if out[j] != want[j] {
					return fmt.Errorf("output %d diverged from plaintext oracle", j)
				}
			}
		}
		return nil
	}
	// Warm-up: one run per session settles pools, runners and the plan
	// cache before the measured window.
	for _, sess := range conns {
		if err := drive(sess, 1); err != nil {
			return row, err
		}
	}

	if pooled && !conns[0].Pooled() {
		return row, fmt.Errorf("server did not grant the pooled tier")
	}
	bytesBefore := srv.Stats().BytesOut
	hitsBefore := srv.Stats().PoolHits
	roundsBefore := ot.BaseOTRounds()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for _, sess := range conns {
		wg.Add(1)
		go func(sess *server.Session) {
			defer wg.Done()
			if err := drive(sess, runsPerSession); err != nil {
				errs <- err
			}
		}(sess)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	close(errs)
	for err := range errs {
		return row, err
	}

	total := float64(row.Runs)
	row.RunsPerSec = total / elapsed.Seconds()
	row.AllocsPerRun = float64(after.Mallocs-before.Mallocs) / total
	row.BytesOutPerRun = float64(srv.Stats().BytesOut-bytesBefore) / total
	st := srv.Stats()
	row.CacheHits, row.CacheMisses = st.CacheHits, st.CacheMisses
	row.Refused = st.SessionsRefused
	row.PlanBuilds = circuit.PlanBuilds() - buildsBefore
	if pooled {
		row.PoolHits = st.PoolHits - hitsBefore
		row.BaseOTRounds = ot.BaseOTRounds() - roundsBefore
		if row.BaseOTRounds != 0 {
			return row, fmt.Errorf("pooled steady state spent %d base-OT rounds, want 0", row.BaseOTRounds)
		}
		if row.PoolHits != uint64(row.Runs) {
			return row, fmt.Errorf("pooled steady state: %d pool hits over %d runs", row.PoolHits, row.Runs)
		}
	}
	return row, nil
}
