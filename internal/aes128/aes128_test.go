package aes128

import (
	"bytes"
	"crypto/aes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// fips197Key/fips197Pt/fips197Ct are the FIPS-197 Appendix B example.
var (
	fips197Key = mustHex("2b7e151628aed2a6abf7158809cf4f3c")
	fips197Pt  = mustHex("3243f6a8885a308d313198a2e0370734")
	fips197Ct  = mustHex("3925841d02dc09fbdc118597196a0b32")
)

func mustHex(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		panic(err)
	}
	return b
}

func TestFIPS197Vector(t *testing.T) {
	var key [KeySize]byte
	copy(key[:], fips197Key)
	got := make([]byte, BlockSize)
	EncryptBlock(&key, got, fips197Pt)
	if !bytes.Equal(got, fips197Ct) {
		t.Fatalf("FIPS-197 vector mismatch:\n got %x\nwant %x", got, fips197Ct)
	}
}

func TestExpandFirstAndLastWords(t *testing.T) {
	var key [KeySize]byte
	copy(key[:], fips197Key)
	s := Expand(&key)
	// First words are the key itself.
	if s[0] != 0x2b7e1516 || s[3] != 0x09cf4f3c {
		t.Fatalf("schedule head wrong: %08x %08x", s[0], s[3])
	}
	// Last word from FIPS-197 Appendix A.1: w[43] = b6630ca6.
	if s[43] != 0xb6630ca6 {
		t.Fatalf("schedule tail wrong: got %08x want b6630ca6", s[43])
	}
}

func TestMatchesCryptoAES(t *testing.T) {
	f := func(key [KeySize]byte, pt [BlockSize]byte) bool {
		ref, err := aes.NewCipher(key[:])
		if err != nil {
			return false
		}
		want := make([]byte, BlockSize)
		ref.Encrypt(want, pt[:])
		got := make([]byte, BlockSize)
		EncryptBlock(&key, got, pt[:])
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptInPlace(t *testing.T) {
	var key [KeySize]byte
	copy(key[:], fips197Key)
	s := Expand(&key)
	buf := make([]byte, BlockSize)
	copy(buf, fips197Pt)
	Encrypt(&s, buf, buf)
	if !bytes.Equal(buf, fips197Ct) {
		t.Fatalf("in-place encryption mismatch: %x", buf)
	}
}

func TestScheduleReuseIsDeterministic(t *testing.T) {
	var key [KeySize]byte
	rng := rand.New(rand.NewSource(7))
	rng.Read(key[:])
	s := Expand(&key)
	pt := make([]byte, BlockSize)
	rng.Read(pt)
	a := make([]byte, BlockSize)
	b := make([]byte, BlockSize)
	Encrypt(&s, a, pt)
	Encrypt(&s, b, pt)
	if !bytes.Equal(a, b) {
		t.Fatal("same schedule, same plaintext produced different ciphertexts")
	}
}

func TestSBoxBijective(t *testing.T) {
	seen := make(map[byte]bool)
	for i := 0; i < 256; i++ {
		v := SBox(byte(i))
		if seen[v] {
			t.Fatalf("S-box value %#x repeated", v)
		}
		seen[v] = true
	}
	if SBox(0x00) != 0x63 || SBox(0x53) != 0xed {
		t.Fatal("S-box known values wrong")
	}
}

func BenchmarkExpand(b *testing.B) {
	var key [KeySize]byte
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		s := Expand(&key)
		_ = s
	}
}

func BenchmarkEncryptReusedKey(b *testing.B) {
	var key [KeySize]byte
	s := Expand(&key)
	buf := make([]byte, BlockSize)
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		Encrypt(&s, buf, buf)
	}
}

func BenchmarkEncryptRekeyed(b *testing.B) {
	var key [KeySize]byte
	buf := make([]byte, BlockSize)
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		EncryptBlock(&key, buf, buf)
	}
}
