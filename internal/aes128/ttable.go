package aes128

// The performance tier of the package: word-oriented ("T-table") AES-128
// beside the clarity-first byte-oriented reference. Each T-table entry
// folds SubBytes and MixColumns for one input byte into a 32-bit word,
// so a full round is 16 table lookups and a handful of XORs instead of
// per-byte field arithmetic. The garbling hot path re-keys per gate, so
// the tier is built around caller-owned storage: ExpandFrom fills an
// existing Schedule and EncryptTo/EncryptBlocksTo write into caller
// buffers — no call on this path allocates, which is what lets the
// re-keyed hasher in internal/gc run with zero steady-state allocations.
//
// The tables and round structure follow FIPS-197 directly (they are the
// same construction crypto/aes uses for its non-asm fallback); equality
// with both crypto/aes and the reference implementation is pinned by
// tests on random vectors.

import "encoding/binary"

// te0..te3 are the four forward T-tables: te0[x] packs the MixColumns
// column (2·S(x), S(x), S(x), 3·S(x)) most-significant-byte first, and
// te1..te3 are byte rotations of te0 for the other three state rows.
var te0, te1, te2, te3 [256]uint32

func init() {
	for i := 0; i < 256; i++ {
		s := sbox[i]
		s2 := xtime(s)
		s3 := s2 ^ s
		w := uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		te0[i] = w
		te1[i] = w>>8 | w<<24
		te2[i] = w>>16 | w<<16
		te3[i] = w>>24 | w<<8
	}
}

// ExpandFrom computes the key schedule for key into s, overwriting its
// previous contents. It is the allocation-free form of Expand for hot
// paths that own a Schedule and re-key it per gate.
func (s *Schedule) ExpandFrom(key *[KeySize]byte) {
	s[0] = binary.BigEndian.Uint32(key[0:4])
	s[1] = binary.BigEndian.Uint32(key[4:8])
	s[2] = binary.BigEndian.Uint32(key[8:12])
	s[3] = binary.BigEndian.Uint32(key[12:16])
	for i := 4; i < ExpandedWords; i += 4 {
		t := s[i-1]
		t = subWord(t<<8|t>>24) ^ rcon[i/4-1]
		s[i] = s[i-4] ^ t
		s[i+1] = s[i-3] ^ s[i]
		s[i+2] = s[i-2] ^ s[i+1]
		s[i+3] = s[i-1] ^ s[i+2]
	}
}

// encryptWords runs the ten AES-128 rounds over one block held as four
// big-endian state words. It is the shared core of EncryptTo and
// EncryptBlocksTo.
func (s *Schedule) encryptWords(s0, s1, s2, s3 uint32) (uint32, uint32, uint32, uint32) {
	s0 ^= s[0]
	s1 ^= s[1]
	s2 ^= s[2]
	s3 ^= s[3]

	k := 4
	for round := 1; round < Rounds; round++ {
		t0 := te0[s0>>24] ^ te1[s1>>16&0xff] ^ te2[s2>>8&0xff] ^ te3[s3&0xff] ^ s[k+0]
		t1 := te0[s1>>24] ^ te1[s2>>16&0xff] ^ te2[s3>>8&0xff] ^ te3[s0&0xff] ^ s[k+1]
		t2 := te0[s2>>24] ^ te1[s3>>16&0xff] ^ te2[s0>>8&0xff] ^ te3[s1&0xff] ^ s[k+2]
		t3 := te0[s3>>24] ^ te1[s0>>16&0xff] ^ te2[s1>>8&0xff] ^ te3[s2&0xff] ^ s[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}

	// Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
	t0 := uint32(sbox[s0>>24])<<24 | uint32(sbox[s1>>16&0xff])<<16 | uint32(sbox[s2>>8&0xff])<<8 | uint32(sbox[s3&0xff])
	t1 := uint32(sbox[s1>>24])<<24 | uint32(sbox[s2>>16&0xff])<<16 | uint32(sbox[s3>>8&0xff])<<8 | uint32(sbox[s0&0xff])
	t2 := uint32(sbox[s2>>24])<<24 | uint32(sbox[s3>>16&0xff])<<16 | uint32(sbox[s0>>8&0xff])<<8 | uint32(sbox[s1&0xff])
	t3 := uint32(sbox[s3>>24])<<24 | uint32(sbox[s0>>16&0xff])<<16 | uint32(sbox[s1>>8&0xff])<<8 | uint32(sbox[s2&0xff])
	return t0 ^ s[40], t1 ^ s[41], t2 ^ s[42], t3 ^ s[43]
}

// EncryptTo encrypts one 16-byte block through the T-table path. dst and
// src may overlap; neither this call nor the word core allocates.
func (s *Schedule) EncryptTo(dst, src []byte) {
	s0 := binary.BigEndian.Uint32(src[0:4])
	s1 := binary.BigEndian.Uint32(src[4:8])
	s2 := binary.BigEndian.Uint32(src[8:12])
	s3 := binary.BigEndian.Uint32(src[12:16])
	s0, s1, s2, s3 = s.encryptWords(s0, s1, s2, s3)
	binary.BigEndian.PutUint32(dst[0:4], s0)
	binary.BigEndian.PutUint32(dst[4:8], s1)
	binary.BigEndian.PutUint32(dst[8:12], s2)
	binary.BigEndian.PutUint32(dst[12:16], s3)
}

// EncryptBlocksTo encrypts len(src)/BlockSize consecutive blocks under
// one schedule — the batched form the re-keyed garbler uses for the two
// blocks that share a gate tweak. len(src) must be a multiple of
// BlockSize and dst must be at least as long; dst and src may overlap
// block-aligned.
func (s *Schedule) EncryptBlocksTo(dst, src []byte) {
	if len(src) == 0 {
		return
	}
	_ = dst[len(src)-1] // length check, not capacity: reject a short dst up front
	for off := 0; off+BlockSize <= len(src); off += BlockSize {
		s.EncryptTo(dst[off:off+BlockSize], src[off:off+BlockSize])
	}
}
