// Package aes128 is a from-scratch software implementation of AES-128
// (key expansion and single-block encryption). HAAC's gate engines are
// built around exactly these two computations: every garbled AND gate
// performs full key expansions ("re-keying", §2.1 of the paper) followed
// by AES block encryptions, so the accelerator's cost model — and our
// software baseline — both hinge on this primitive.
//
// The implementation favours clarity over speed: it is the reference the
// cycle simulator's Half-Gate pipeline is validated against, and it is
// tested for equality with the standard library's crypto/aes on random
// inputs. The hot two-party path in internal/gc may use either.
package aes128

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySize is the AES-128 key size in bytes.
const KeySize = 16

// Rounds is the number of AES-128 rounds.
const Rounds = 10

// ExpandedWords is the number of 32-bit round-key words (11 round keys).
const ExpandedWords = 4 * (Rounds + 1)

// ExpandedBytes is the expanded key schedule size in bytes (the "176 Byte"
// figure quoted in the paper's Half-Gate description).
const ExpandedBytes = 4 * ExpandedWords

// sbox is the AES forward substitution box.
var sbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// rcon holds the round constants for key expansion.
var rcon = [10]uint32{
	0x01000000, 0x02000000, 0x04000000, 0x08000000, 0x10000000,
	0x20000000, 0x40000000, 0x80000000, 0x1b000000, 0x36000000,
}

// Schedule is an expanded AES-128 key schedule.
type Schedule [ExpandedWords]uint32

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 |
		uint32(sbox[(w>>16)&0xff])<<16 |
		uint32(sbox[(w>>8)&0xff])<<8 |
		uint32(sbox[w&0xff])
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

// Expand computes the AES-128 key schedule for key. This is the "key
// expansion" step the paper counts as roughly an extra AES per invocation;
// re-keying garbling performs it twice per AND gate.
func Expand(key *[KeySize]byte) Schedule {
	var s Schedule
	for i := 0; i < 4; i++ {
		s[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 |
			uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	for i := 4; i < ExpandedWords; i++ {
		t := s[i-1]
		if i%4 == 0 {
			t = subWord(rotWord(t)) ^ rcon[i/4-1]
		}
		s[i] = s[i-4] ^ t
	}
	return s
}

// xtime multiplies a field element by x in GF(2^8) mod x^8+x^4+x^3+x+1.
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

// Encrypt encrypts one 16-byte block in place using the expanded schedule.
// dst and src may overlap.
func Encrypt(s *Schedule, dst, src []byte) {
	var st [16]byte
	copy(st[:], src[:16])

	addRoundKey(&st, s, 0)
	for round := 1; round < Rounds; round++ {
		subBytes(&st)
		shiftRows(&st)
		mixColumns(&st)
		addRoundKey(&st, s, round)
	}
	subBytes(&st)
	shiftRows(&st)
	addRoundKey(&st, s, Rounds)

	copy(dst[:16], st[:])
}

func addRoundKey(st *[16]byte, s *Schedule, round int) {
	for c := 0; c < 4; c++ {
		w := s[4*round+c]
		st[4*c+0] ^= byte(w >> 24)
		st[4*c+1] ^= byte(w >> 16)
		st[4*c+2] ^= byte(w >> 8)
		st[4*c+3] ^= byte(w)
	}
}

func subBytes(st *[16]byte) {
	for i := range st {
		st[i] = sbox[st[i]]
	}
}

// shiftRows rotates row r of the column-major state left by r positions.
func shiftRows(st *[16]byte) {
	st[1], st[5], st[9], st[13] = st[5], st[9], st[13], st[1]
	st[2], st[6], st[10], st[14] = st[10], st[14], st[2], st[6]
	st[3], st[7], st[11], st[15] = st[15], st[3], st[7], st[11]
}

func mixColumns(st *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := st[4*c], st[4*c+1], st[4*c+2], st[4*c+3]
		st[4*c+0] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3
		st[4*c+1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3
		st[4*c+2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3)
		st[4*c+3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3)
	}
}

// EncryptBlock is a convenience wrapper that expands key and encrypts one
// block. It costs a key expansion per call, which is exactly the
// "re-keying" behaviour HAAC models; hot paths that reuse a key should
// call Expand once and Encrypt many times.
func EncryptBlock(key *[KeySize]byte, dst, src []byte) {
	s := Expand(key)
	Encrypt(&s, dst, src)
}

// SBox exposes the forward S-box table for circuit generators that build
// AES as Boolean logic (the Table 5 AES-128 micro-benchmark).
func SBox(i byte) byte { return sbox[i] }
