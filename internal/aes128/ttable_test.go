package aes128

import (
	"bytes"
	"crypto/aes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTTableFIPS197Vector(t *testing.T) {
	var key [KeySize]byte
	copy(key[:], fips197Key)
	var s Schedule
	s.ExpandFrom(&key)
	got := make([]byte, BlockSize)
	s.EncryptTo(got, fips197Pt)
	if !bytes.Equal(got, fips197Ct) {
		t.Fatalf("FIPS-197 vector mismatch:\n got %x\nwant %x", got, fips197Ct)
	}
}

func TestExpandFromMatchesExpand(t *testing.T) {
	f := func(key [KeySize]byte) bool {
		want := Expand(&key)
		var got Schedule
		got.ExpandFrom(&key)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEncryptToMatchesCryptoAES pins the fast path against the standard
// library on random key/plaintext pairs.
func TestEncryptToMatchesCryptoAES(t *testing.T) {
	f := func(key [KeySize]byte, pt [BlockSize]byte) bool {
		ref, err := aes.NewCipher(key[:])
		if err != nil {
			return false
		}
		want := make([]byte, BlockSize)
		ref.Encrypt(want, pt[:])
		var s Schedule
		s.ExpandFrom(&key)
		got := make([]byte, BlockSize)
		s.EncryptTo(got, pt[:])
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEncryptToMatchesReference pins the fast path against the package's
// own byte-oriented reference implementation.
func TestEncryptToMatchesReference(t *testing.T) {
	f := func(key [KeySize]byte, pt [BlockSize]byte) bool {
		s := Expand(&key)
		want := make([]byte, BlockSize)
		Encrypt(&s, want, pt[:])
		got := make([]byte, BlockSize)
		s.EncryptTo(got, pt[:])
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptBlocksTo(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var key [KeySize]byte
	rng.Read(key[:])
	var s Schedule
	s.ExpandFrom(&key)
	for _, blocks := range []int{0, 1, 2, 4, 7} {
		src := make([]byte, blocks*BlockSize)
		rng.Read(src)
		got := make([]byte, len(src))
		s.EncryptBlocksTo(got, src)
		want := make([]byte, len(src))
		for off := 0; off < len(src); off += BlockSize {
			s.EncryptTo(want[off:off+BlockSize], src[off:off+BlockSize])
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%d blocks: batched output diverges from per-block", blocks)
		}
	}
}

func TestEncryptToInPlace(t *testing.T) {
	var key [KeySize]byte
	copy(key[:], fips197Key)
	var s Schedule
	s.ExpandFrom(&key)
	buf := make([]byte, BlockSize)
	copy(buf, fips197Pt)
	s.EncryptTo(buf, buf)
	if !bytes.Equal(buf, fips197Ct) {
		t.Fatalf("in-place fast-path encryption mismatch: %x", buf)
	}
}

// TestFastPathNoAllocs: the re-keyed hot sequence (expand + two blocks)
// must not allocate.
func TestFastPathNoAllocs(t *testing.T) {
	var key [KeySize]byte
	var s Schedule
	buf := make([]byte, 2*BlockSize)
	if avg := testing.AllocsPerRun(100, func() {
		key[0]++
		s.ExpandFrom(&key)
		s.EncryptBlocksTo(buf, buf)
	}); avg != 0 {
		t.Fatalf("expand+encrypt allocates %.1f times per re-key", avg)
	}
}

func BenchmarkExpandFrom(b *testing.B) {
	var key [KeySize]byte
	var s Schedule
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		s.ExpandFrom(&key)
	}
}

func BenchmarkEncryptTo(b *testing.B) {
	var key [KeySize]byte
	var s Schedule
	s.ExpandFrom(&key)
	buf := make([]byte, BlockSize)
	b.SetBytes(BlockSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.EncryptTo(buf, buf)
	}
}

// BenchmarkRekeyedBlock is the re-keyed gate pattern at the aes128
// level: one fresh schedule then two blocks under it (the garbler's
// per-tweak work). Compare with BenchmarkEncryptTo to see the pure key
// expansion surcharge the paper models as +27.5%.
func BenchmarkRekeyedBlock(b *testing.B) {
	var key [KeySize]byte
	var s Schedule
	buf := make([]byte, 2*BlockSize)
	b.SetBytes(2 * BlockSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		s.ExpandFrom(&key)
		s.EncryptBlocksTo(buf, buf)
	}
}
