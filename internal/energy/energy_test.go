package energy

import (
	"testing"
	"time"

	"haac/internal/compiler"
	"haac/internal/sim"
	"haac/internal/workloads"
)

func simulate(t *testing.T) sim.Result {
	t.Helper()
	hw := sim.DefaultHW()
	hw.NumGEs = 8
	hw.SWWWires = 4096
	c := workloads.MatMult(4, 16).Build()
	cp, err := compiler.Compile(c, compiler.Config{
		Reorder: compiler.FullReorder, ESW: true,
		SWWWires: hw.SWWWires, NumGEs: hw.NumGEs,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Simulate(cp, hw)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTable4AreaReference(t *testing.T) {
	a := AreaFor(16, 2*1024*1024)
	if a.HalfGate != AreaHalfGate || a.SWW != AreaSWW {
		t.Fatal("reference config must reproduce Table 4 exactly")
	}
	total := a.Total()
	if total < 4.2 || total > 4.5 {
		t.Fatalf("total HAAC area %.2f mm^2, Table 4 says 4.33", total)
	}
}

func TestAreaScaling(t *testing.T) {
	half := AreaFor(8, 1024*1024)
	if half.HalfGate >= AreaHalfGate || half.SWW >= AreaSWW {
		t.Fatal("smaller config must have smaller area")
	}
	if got, want := half.HalfGate*2, AreaHalfGate; !close(got, want, 1e-9) {
		t.Fatal("GE logic must scale linearly with GE count")
	}
}

func TestEnergyBreakdownShape(t *testing.T) {
	r := simulate(t)
	b := Energy(r)
	if b.Total() <= 0 {
		t.Fatal("no energy accounted")
	}
	n := b.Normalized()
	sum := n.HalfGate + n.Crossbar + n.SRAM + n.Others + n.DRAMPHY
	if !close(sum, 1, 1e-9) {
		t.Fatalf("normalized breakdown sums to %v", sum)
	}
	// Fig. 9: the Half-Gate dominates (~61% average across benchmarks).
	if n.HalfGate < 0.3 {
		t.Fatalf("Half-Gate at %.0f%% of energy; paper has it dominant", 100*n.HalfGate)
	}
}

func TestAveragePowerPlausible(t *testing.T) {
	// §6.4: the paper reports ~1.5 W average at the 16-GE design point.
	// Our calibrated model should land within a small factor for a
	// compute-dense run.
	r := simulate(t)
	p := AveragePower(r)
	if p < 0.1 || p > 10 {
		t.Fatalf("average power %.2f W implausible vs the paper's ~1.5 W", p)
	}
}

func TestEfficiencyVsCPU(t *testing.T) {
	r := simulate(t)
	// If a CPU took 1000x longer at 25 W, efficiency must exceed 1000x
	// whenever HAAC's power is below 25 W.
	cpuTime := time.Duration(1000 * float64(r.Time()))
	eff := EfficiencyVsCPU(r, cpuTime)
	if AveragePower(r) < CPUPower && eff < 1000 {
		t.Fatalf("efficiency %.0fx inconsistent with power ratio", eff)
	}
}

func TestMoreTrafficMoreDRAMEnergy(t *testing.T) {
	r := simulate(t)
	b1 := Energy(r)
	r.Traffic.LiveBytes *= 4
	b2 := Energy(r)
	if b2.DRAMPHY <= b1.DRAMPHY {
		t.Fatal("extra traffic did not increase DRAM energy")
	}
}

func close(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}
