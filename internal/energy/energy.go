// Package energy models HAAC's area, power and energy (§6.4 of the
// paper). Component areas and average powers are taken from Table 4
// (TSMC 28HPC synthesis scaled to 16 nm); per-event energies are derived
// from those powers under the paper's operating point (16 GEs at 1 GHz
// running flat out), so that replaying a benchmark's event counts
// reproduces the table's average power and Fig. 9's energy breakdown.
//
// The substitution (real CAD flow -> calibrated analytic model) is
// documented in DESIGN.md §2.
package energy

import (
	"time"

	"haac/internal/sim"
)

// Table 4 reference design point.
const (
	refGEs      = 16
	refSWWBytes = 2 * 1024 * 1024
	refClock    = 1e9
)

// Table 4 component areas in mm^2 (16 nm, 16 GEs, 2 MB SWW, 64 banks).
const (
	AreaHalfGate = 2.15
	AreaFreeXOR  = 9.51e-4
	AreaFWD      = 1.80e-3
	AreaCrossbar = 7.27e-2
	AreaSWW      = 1.94
	AreaQueues   = 0.173
	AreaHBM2PHY  = 14.9
)

// Table 4 component average powers in mW at the reference design point.
const (
	PowerHalfGate = 1253.0
	PowerFreeXOR  = 0.321
	PowerFWD      = 0.255
	PowerCrossbar = 16.6
	PowerSWW      = 196.0
	PowerQueues   = 35.5
	PowerHBM2PHY  = 225.0 // TDP
)

// Per-event energies (joules), derived from Table 4 powers assuming the
// reference design sustains one event per GE-cycle on the relevant unit:
//
//	halfGate: 1253 mW / (16 GE x 1 GHz) with ANDs ~1/3 of the mix and
//	          the pipeline drawing power while full -> per-AND energy is
//	          the unit power per GE-cycle times the pipeline occupancy
//	          attributable to one gate (~1 cycle at full throughput).
var (
	// EnergyAND is the energy of one Half-Gate evaluation.
	EnergyAND = PowerHalfGate * 1e-3 / (refGEs * refClock) * 3 // ~235 pJ
	// EnergyXOR is one FreeXOR evaluation.
	EnergyXOR = PowerFreeXOR * 1e-3 / (refGEs * refClock) * 3
	// EnergyFWDPerInstr charges the forwarding network per instruction.
	EnergyFWDPerInstr = PowerFWD * 1e-3 / (refGEs * refClock) * 3
	// EnergySWWAccess is one banked SRAM read or write (2 GHz domain).
	EnergySWWAccess = PowerSWW * 1e-3 / (refGEs * 3 * refClock) * 3
	// EnergyCrossbarAccess is one crossbar traversal.
	EnergyCrossbarAccess = PowerCrossbar * 1e-3 / (refGEs * 3 * refClock) * 3
	// EnergyQueueByte is queue SRAM energy per streamed byte.
	EnergyQueueByte = PowerQueues * 1e-3 / (refGEs * 48 * refClock) * 3
	// EnergyDRAMByte is off-chip PHY+interface energy per byte.
	EnergyDRAMByte = PowerHBM2PHY * 1e-3 / 512e9
)

// Breakdown is a per-component energy split in joules, the Fig. 9
// categories (FreeXOR and FWD fold into Others, as in the paper).
type Breakdown struct {
	HalfGate float64
	Crossbar float64
	SRAM     float64 // SWW + queue SRAMs
	Others   float64 // FreeXOR + forwarding network
	DRAMPHY  float64
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.HalfGate + b.Crossbar + b.SRAM + b.Others + b.DRAMPHY
}

// Normalized returns each component as a fraction of the total.
func (b Breakdown) Normalized() Breakdown {
	t := b.Total()
	if t == 0 {
		return Breakdown{}
	}
	return Breakdown{
		HalfGate: b.HalfGate / t,
		Crossbar: b.Crossbar / t,
		SRAM:     b.SRAM / t,
		Others:   b.Others / t,
		DRAMPHY:  b.DRAMPHY / t,
	}
}

// Energy prices a simulation result's event counts.
func Energy(r sim.Result) Breakdown {
	ev := r.Events
	tr := r.Traffic
	queueBytes := tr.InstrBytes + tr.TableBytes + tr.OoRBytes
	accesses := ev.SWWReads + ev.SWWWrites
	return Breakdown{
		HalfGate: float64(ev.ANDs) * EnergyAND,
		Crossbar: float64(accesses) * EnergyCrossbarAccess,
		SRAM: float64(accesses)*EnergySWWAccess +
			float64(queueBytes)*EnergyQueueByte,
		Others: float64(ev.XORs)*EnergyXOR +
			float64(ev.InstrCount)*EnergyFWDPerInstr,
		DRAMPHY: float64(tr.TotalBytes()) * EnergyDRAMByte,
	}
}

// AveragePower is the mean power over the run in watts.
func AveragePower(r sim.Result) float64 {
	t := r.Time().Seconds()
	if t == 0 {
		return 0
	}
	return Energy(r).Total() / t
}

// Area reports the component areas in mm^2 for a configuration, scaling
// Table 4's reference numbers: GE-proportional logic scales with the GE
// count, the SWW with its capacity, queues with the GE count.
type Area struct {
	HalfGate, FreeXOR, FWD, Crossbar, SWW, Queues float64
}

// Total is the HAAC IP area (the HBM2 PHY is reported separately, as in
// Table 4).
func (a Area) Total() float64 {
	return a.HalfGate + a.FreeXOR + a.FWD + a.Crossbar + a.SWW + a.Queues
}

// AreaFor scales Table 4 to an arbitrary configuration.
func AreaFor(numGEs, swwBytes int) Area {
	g := float64(numGEs) / refGEs
	s := float64(swwBytes) / refSWWBytes
	return Area{
		HalfGate: AreaHalfGate * g,
		FreeXOR:  AreaFreeXOR * g,
		FWD:      AreaFWD * g,
		Crossbar: AreaCrossbar * g,
		SWW:      AreaSWW * s,
		Queues:   AreaQueues * g,
	}
}

// CPUPower is the paper's measured CPU average power (25 W, §6.4), used
// for the Fig. 9 energy-efficiency comparison.
const CPUPower = 25.0

// EfficiencyVsCPU returns how many times less energy HAAC uses than a
// CPU that runs the same workload in cpuTime at CPUPower watts.
func EfficiencyVsCPU(r sim.Result, cpuTime time.Duration) float64 {
	e := Energy(r).Total()
	if e == 0 {
		return 0
	}
	return CPUPower * cpuTime.Seconds() / e
}
