package gc

import (
	"fmt"
	"runtime"
	"sync"

	"haac/internal/circuit"
	"haac/internal/label"
)

// Parallel level-scheduled garbling and evaluation. Gates at the same
// dependence level are independent (every producer sits at a strictly
// lower level), so each AND level can be partitioned across a worker
// pool — the software analogue of HAAC's parallel gate engines. The
// output is byte-identical to the sequential Garble/Evaluate: tweaks and
// table positions are the gate-order stream indices regardless of which
// worker garbles a gate, and the label source is consumed only for the
// input wires, exactly as in the sequential path.

// minParallelLevel is the smallest number of AND gates in a level worth
// dispatching to the pool; below it the per-level synchronization costs
// more than the hashing.
const minParallelLevel = 16

// levelPool is a fixed set of workers processing contiguous spans of a
// level's AND-gate list. The per-gate work function is fixed at
// construction; run dispatches one level and blocks until it completes.
type levelPool struct {
	workers int
	tasks   chan []int32
	wg      sync.WaitGroup
}

func newLevelPool(workers int, do func(gates []int32)) *levelPool {
	p := &levelPool{workers: workers, tasks: make(chan []int32, workers)}
	for i := 0; i < workers; i++ {
		go func() {
			for gates := range p.tasks {
				do(gates)
				p.wg.Done()
			}
		}()
	}
	return p
}

// run partitions gates into at most p.workers contiguous chunks and
// waits for all of them. Chunks preserve gate order within each span, so
// workers touch disjoint table and wire slots.
func (p *levelPool) run(gates []int32) {
	n := len(gates)
	chunk := (n + p.workers - 1) / p.workers
	p.wg.Add((n + chunk - 1) / chunk)
	for off := 0; off < n; off += chunk {
		end := off + chunk
		if end > n {
			end = n
		}
		p.tasks <- gates[off:end]
	}
	p.wg.Wait()
}

func (p *levelPool) close() { close(p.tasks) }

// clampWorkers resolves the worker-count option: 0 (or negative) means
// one worker per available CPU.
func clampWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// ParallelGarble garbles the circuit with a pool of workers, producing a
// Garbled byte-identical to the sequential Garble for the same source.
// workers <= 0 uses one worker per CPU; workers == 1 degenerates to a
// level-ordered sequential pass.
func ParallelGarble(c *circuit.Circuit, h Hasher, src *label.Source, workers int) (*Garbled, error) {
	return ParallelGarbleStream(c, h, src, workers, nil)
}

// ParallelGarbleStream is ParallelGarble with a streaming hook: emit (if
// non-nil) is called after each level with the next contiguous chunk of
// the gate-order table stream that became fully garbled — the chunked
// writer the pipelined protocol puts on the wire. Chunks never overlap
// and concatenate to exactly Garbled.Tables. An emit error aborts the
// run.
func ParallelGarbleStream(c *circuit.Circuit, h Hasher, src *label.Source, workers int, emit func(tables []Material) error) (*Garbled, error) {
	lg, err := NewLevelGarbler(c, h, src, workers)
	if err != nil {
		return nil, err
	}
	return lg.Run(emit)
}

// LevelGarbler is the resumable form of ParallelGarbleStream: input
// labels are drawn at construction (so a protocol can send them and run
// OT before — or concurrently with — garbling) and Run performs the
// level-parallel garbling pass. A LevelGarbler is single-use.
type LevelGarbler struct {
	c          *circuit.Circuit
	h          Hasher
	workers    int
	sched      *circuit.Schedule
	r          label.L
	wires      []label.L
	inputZeros []label.L
	ran        bool
}

// NewLevelGarbler validates the circuit and draws the FreeXOR offset and
// input labels, consuming src exactly as the sequential garbler does.
// The level schedule is built here, once — not on Run. (To skip
// schedule construction entirely across runs, precompile the circuit
// and use PlanGarbler instead.)
func NewLevelGarbler(c *circuit.Circuit, h Hasher, src *label.Source, workers int) (*LevelGarbler, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("gc: %w", err)
	}
	for i := range c.Gates {
		if op := c.Gates[i].Op; op != circuit.XOR && op != circuit.INV && op != circuit.AND {
			return nil, fmt.Errorf("gc: gate %d has unknown op %d", i, op)
		}
	}
	lg := &LevelGarbler{c: c, h: h, workers: clampWorkers(workers), sched: c.LevelSchedule(), r: src.NextDelta()}
	nin := c.NumInputs()
	lg.wires = make([]label.L, c.NumWires)
	lg.inputZeros = make([]label.L, nin)
	for i := 0; i < nin; i++ {
		lg.wires[i] = src.Next()
		lg.inputZeros[i] = lg.wires[i]
	}
	return lg, nil
}

// R returns the FreeXOR offset.
func (lg *LevelGarbler) R() label.L { return lg.r }

// InputZeros returns the zero-labels of all input-like wires.
func (lg *LevelGarbler) InputZeros() []label.L { return lg.inputZeros }

// Run garbles the whole circuit level by level across the worker pool,
// invoking emit (if non-nil) with successive gate-order table chunks as
// levels complete. It may be called once.
func (lg *LevelGarbler) Run(emit func(tables []Material) error) (*Garbled, error) {
	if lg.ran {
		return nil, fmt.Errorf("gc: LevelGarbler is single-use")
	}
	lg.ran = true
	c, h, r, wires := lg.c, lg.h, lg.r, lg.wires

	sched := lg.sched
	// One slab backs the whole gate-order stream; per-level emits below
	// are adjacent views of it, so no level allocates.
	tables := make([]Material, sched.NumAND)

	garbleSpan := func(gates []int32) {
		for _, gi := range gates {
			g := &c.Gates[gi]
			idx := sched.ANDIndex[gi]
			m, c0 := garbleAND(h, wires[g.A], wires[g.B], r, uint64(idx))
			tables[idx] = m
			wires[g.C] = c0
		}
	}

	var pool *levelPool
	if lg.workers > 1 {
		pool = newLevelPool(lg.workers, garbleSpan)
		defer pool.close()
	}

	sent := 0
	for k := 0; k < sched.NumLevels(); k++ {
		// Free gates are label XORs — cheaper than the dispatch they
		// would need, so the coordinator does them inline.
		for _, gi := range sched.Free[k] {
			g := &c.Gates[gi]
			if g.Op == circuit.XOR {
				wires[g.C] = wires[g.A].Xor(wires[g.B])
			} else { // INV
				wires[g.C] = wires[g.A].Xor(r)
			}
		}
		if and := sched.AND[k]; len(and) > 0 {
			if pool != nil && len(and) >= minParallelLevel {
				pool.run(and)
			} else {
				garbleSpan(and)
			}
		}
		if emit != nil {
			if ready := sched.EmitReady[k]; ready > sent {
				if err := emit(tables[sent:ready]); err != nil {
					return nil, fmt.Errorf("gc: emitting tables: %w", err)
				}
				sent = ready
			}
		}
	}

	outs := make([]label.L, len(c.Outputs))
	for i, o := range c.Outputs {
		outs[i] = wires[o]
	}
	return &Garbled{R: r, InputZeros: lg.inputZeros, Tables: tables, OutputZeros: outs}, nil
}

// ParallelEval evaluates the circuit with a pool of workers over the
// same level schedule, producing output labels identical to Evaluate.
func ParallelEval(c *circuit.Circuit, h Hasher, inputs []label.L, tables []Material, workers int) ([]label.L, error) {
	and, _, _ := c.CountOps()
	if len(tables) != and {
		return nil, fmt.Errorf("gc: %d tables provided, circuit has %d AND gates", len(tables), and)
	}
	return ParallelEvalStream(c, h, inputs, workers, func(n int) ([]Material, error) {
		return tables, nil
	})
}

// ParallelEvalStream evaluates with tables arriving asynchronously:
// before each level it calls need(n), which must block until at least the
// first n tables of the gate-order stream are available and return the
// stream so far (the returned slice may grow between calls; entries below
// n must be final). This lets the pipelined protocol evaluate levels
// while later tables are still in flight.
func ParallelEvalStream(c *circuit.Circuit, h Hasher, inputs []label.L, workers int, need func(n int) ([]Material, error)) ([]label.L, error) {
	le, err := NewLevelEvaluator(c, h, workers)
	if err != nil {
		return nil, err
	}
	return le.Run(inputs, need)
}

// LevelEvaluator is the reusable form of ParallelEvalStream: the level
// schedule is built once at construction and every Run evaluates a
// fresh set of inputs over it, so a process evaluating one circuit many
// times recomputes nothing structural per run. (For the renamed,
// allocation-free slot-arena path see PlanEvaluator.)
type LevelEvaluator struct {
	c       *circuit.Circuit
	h       Hasher
	workers int
	sched   *circuit.Schedule
}

// NewLevelEvaluator validates the circuit and builds the schedule once.
// (To skip schedule construction entirely across runs, precompile the
// circuit and use PlanEvaluator instead.)
func NewLevelEvaluator(c *circuit.Circuit, h Hasher, workers int) (*LevelEvaluator, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("gc: %w", err)
	}
	for i := range c.Gates {
		if op := c.Gates[i].Op; op != circuit.XOR && op != circuit.INV && op != circuit.AND {
			return nil, fmt.Errorf("gc: gate %d has unknown op %d", i, op)
		}
	}
	return &LevelEvaluator{c: c, h: h, workers: clampWorkers(workers), sched: c.LevelSchedule()}, nil
}

// Run evaluates one set of inputs under the ParallelEvalStream
// contract. It may be called any number of times.
func (le *LevelEvaluator) Run(inputs []label.L, need func(n int) ([]Material, error)) ([]label.L, error) {
	c, h, workers, sched := le.c, le.h, le.workers, le.sched
	if len(inputs) != c.NumInputs() {
		return nil, fmt.Errorf("gc: got %d input labels, want %d", len(inputs), c.NumInputs())
	}
	wires := make([]label.L, c.NumWires)
	copy(wires, inputs)

	var tables []Material

	evalSpan := func(gates []int32) {
		for _, gi := range gates {
			g := &c.Gates[gi]
			idx := sched.ANDIndex[gi]
			wires[g.C] = evalAND(h, wires[g.A], wires[g.B], tables[idx], uint64(idx))
		}
	}

	var pool *levelPool
	if workers > 1 {
		pool = newLevelPool(workers, evalSpan)
		defer pool.close()
	}

	for k := 0; k < sched.NumLevels(); k++ {
		for _, gi := range sched.Free[k] {
			g := &c.Gates[gi]
			if g.Op == circuit.XOR {
				wires[g.C] = wires[g.A].Xor(wires[g.B])
			} else { // INV: evaluator keeps the active label
				wires[g.C] = wires[g.A]
			}
		}
		if and := sched.AND[k]; len(and) > 0 {
			t, err := need(sched.NeedTables[k])
			if err != nil {
				return nil, fmt.Errorf("gc: waiting for tables: %w", err)
			}
			if len(t) < sched.NeedTables[k] {
				return nil, fmt.Errorf("gc: table stream exhausted (have %d, level %d needs %d)",
					len(t), k+1, sched.NeedTables[k])
			}
			tables = t
			if pool != nil && len(and) >= minParallelLevel {
				pool.run(and)
			} else {
				evalSpan(and)
			}
		}
	}

	out := make([]label.L, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = wires[o]
	}
	return out, nil
}
