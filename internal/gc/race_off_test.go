//go:build !race

package gc

const raceEnabled = false
