package gc

import (
	"math/rand"
	"testing"

	"haac/internal/label"
	"haac/internal/workloads"
)

// Equality and allocation regressions for the batched hash paths. The
// batched Hash2/Hash4 entry points must be drop-in replacements for
// individual Hash calls (the golden vectors pin the absolute outputs;
// these tests pin the batching itself on random inputs), and the
// re-keyed construction must hash with zero steady-state allocations
// now that it expands keys into pooled schedules instead of building a
// crypto/aes cipher per call.

// batchedHashers returns every hasher with a batched path, including
// both fixed-key backends (which must agree with each other: same
// construction, different AES implementation).
func batchedHashers() []Hasher {
	key := [16]byte{0x5a, 9, 8, 7}
	return []Hasher{
		RekeyedHasher{},
		NewFixedKeyHasher(key),
		NewSoftFixedKeyHasher(key),
	}
}

func randLabel(rng *rand.Rand) label.L {
	return label.L{Lo: rng.Uint64(), Hi: rng.Uint64()}
}

func TestHash4MatchesHash(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, h := range batchedHashers() {
		h4, ok := h.(Hasher4)
		if !ok {
			t.Fatalf("%s does not implement Hasher4", h.Name())
		}
		for i := 0; i < 50; i++ {
			l0, l1, l2, l3 := randLabel(rng), randLabel(rng), randLabel(rng), randLabel(rng)
			// The garbler pattern (t0==t1, t2==t3) plus fully distinct
			// tweaks, so both schedule-reuse branches are exercised.
			t0 := rng.Uint64()
			t2 := rng.Uint64()
			tweaks := [][4]uint64{{t0, t0, t2, t2}, {t0, t2, t0 + 1, t2 + 1}}
			for _, tw := range tweaks {
				g0, g1, g2, g3 := h4.Hash4(l0, l1, l2, l3, tw[0], tw[1], tw[2], tw[3])
				w0, w1 := h.Hash(l0, tw[0]), h.Hash(l1, tw[1])
				w2, w3 := h.Hash(l2, tw[2]), h.Hash(l3, tw[3])
				if g0 != w0 || g1 != w1 || g2 != w2 || g3 != w3 {
					t.Fatalf("%s: Hash4%v diverges from individual hashes", h.Name(), tw)
				}
			}
		}
	}
}

func TestHash2MatchesHash(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, h := range batchedHashers() {
		h2, ok := h.(Hasher2)
		if !ok {
			t.Fatalf("%s does not implement Hasher2", h.Name())
		}
		for i := 0; i < 50; i++ {
			l0, l1 := randLabel(rng), randLabel(rng)
			t0 := rng.Uint64()
			for _, t1 := range []uint64{t0, t0 + 1, rng.Uint64()} {
				g0, g1 := h2.Hash2(l0, l1, t0, t1)
				if w0, w1 := h.Hash(l0, t0), h.Hash(l1, t1); g0 != w0 || g1 != w1 {
					t.Fatalf("%s: Hash2(t0=%d,t1=%d) diverges from individual hashes", h.Name(), t0, t1)
				}
			}
		}
	}
}

// TestSoftFixedKeyMatchesFixedKey: the T-table and crypto/aes backends
// of the fixed-key construction are interchangeable.
func TestSoftFixedKeyMatchesFixedKey(t *testing.T) {
	key := [16]byte{3, 1, 4, 1, 5, 9, 2, 6}
	hw := NewFixedKeyHasher(key)
	sw := NewSoftFixedKeyHasher(key)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 100; i++ {
		l := randLabel(rng)
		tw := rng.Uint64()
		if hw.Hash(l, tw) != sw.Hash(l, tw) {
			t.Fatalf("backends diverge at tweak %d", tw)
		}
	}
}

// TestRekeyedHashNoSteadyStateAllocs pins the tentpole property: every
// re-keyed hash entry point runs allocation-free once the scratch pool
// is warm.
func TestRekeyedHashNoSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	h := RekeyedHasher{}
	l0, l1, l2, l3 := label.L{Lo: 1}, label.L{Lo: 2}, label.L{Lo: 3}, label.L{Lo: 4}
	h.Hash(l0, 1) // warm the pool
	if avg := testing.AllocsPerRun(100, func() { h.Hash(l0, 9) }); avg != 0 {
		t.Errorf("Hash allocates %.1f times in steady state", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { h.Hash2(l0, l1, 8, 9) }); avg != 0 {
		t.Errorf("Hash2 allocates %.1f times in steady state", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { h.Hash4(l0, l1, l2, l3, 8, 8, 9, 9) }); avg != 0 {
		t.Errorf("Hash4 allocates %.1f times in steady state", avg)
	}
}

// TestRekeyedGarbleEvalSteadyStateAllocs is the re-keyed twin of
// proto's fixed-key stream test: with pooled schedules the whole
// garble and eval tight loops allocate O(1) per circuit.
func TestRekeyedGarbleEvalSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	w := workloads.DotProduct(4, 16)
	c := w.Build()
	and, _, _ := c.CountOps()
	if and < 500 {
		t.Fatalf("workload too small to detect per-gate allocations (%d ANDs)", and)
	}
	h := RekeyedHasher{}

	garbled, err := Garble(c, h, label.NewSource(7))
	if err != nil {
		t.Fatal(err)
	}
	g, e := w.Inputs(5)
	inputs, err := garbled.EncodeInputs(c, g, e)
	if err != nil {
		t.Fatal(err)
	}

	garbleAllocs := testing.AllocsPerRun(10, func() {
		sg, err := NewStreamGarbler(c, h, label.NewSource(7))
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, ok := sg.Next(); !ok {
				break
			}
		}
	})
	if garbleAllocs > 50 {
		t.Fatalf("rekeyed garble loop allocates %.0f times for %d ANDs (want O(1) per circuit)", garbleAllocs, and)
	}

	evalAllocs := testing.AllocsPerRun(10, func() {
		se, err := NewStreamEvaluator(c, h, inputs)
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		for se.NeedTable() {
			if err := se.Feed(garbled.Tables[i]); err != nil {
				t.Fatal(err)
			}
			i++
		}
		if _, err := se.Outputs(); err != nil {
			t.Fatal(err)
		}
	})
	if evalAllocs > 50 {
		t.Fatalf("rekeyed eval loop allocates %.0f times for %d ANDs (want O(1) per circuit)", evalAllocs, and)
	}
}

// BenchmarkRekeyedHash4 measures the garbler's per-gate hashing: four
// hashes, two key expansions, zero allocations.
func BenchmarkRekeyedHash4(b *testing.B) {
	h := RekeyedHasher{}
	l0, l1, l2, l3 := label.L{Lo: 1}, label.L{Lo: 2}, label.L{Lo: 3}, label.L{Lo: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t0 := uint64(2 * i)
		h.Hash4(l0, l1, l2, l3, t0, t0, t0+1, t0+1)
	}
}

// BenchmarkRekeyedHash2 measures the evaluator's per-gate hashing: two
// hashes under two distinct keys.
func BenchmarkRekeyedHash2(b *testing.B) {
	h := RekeyedHasher{}
	l0, l1 := label.L{Lo: 1}, label.L{Lo: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t0 := uint64(2 * i)
		h.Hash2(l0, l1, t0, t0+1)
	}
}

// BenchmarkRekeyedGarble garbles a whole circuit with the paper's
// re-keyed hash; allocs/op is O(1) per circuit (wire arrays), not per
// gate.
func BenchmarkRekeyedGarble(b *testing.B) {
	c := workloads.DotProduct(4, 16).Build()
	and, _, _ := c.CountOps()
	h := RekeyedHasher{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Garble(c, h, label.NewSource(7)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(and)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MAND/s")
}

// BenchmarkRekeyedEval is the evaluator-side counterpart.
func BenchmarkRekeyedEval(b *testing.B) {
	w := workloads.DotProduct(4, 16)
	c := w.Build()
	and, _, _ := c.CountOps()
	h := RekeyedHasher{}
	garbled, err := Garble(c, h, label.NewSource(7))
	if err != nil {
		b.Fatal(err)
	}
	g, e := w.Inputs(5)
	inputs, err := garbled.EncodeInputs(c, g, e)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(c, h, inputs, garbled.Tables); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(and)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MAND/s")
}
