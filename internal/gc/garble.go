package gc

import (
	"fmt"

	"haac/internal/circuit"
	"haac/internal/label"
)

// Garbled is the in-memory result of garbling a circuit: everything the
// garbler produces in the offline phase.
type Garbled struct {
	// R is the global FreeXOR offset (garbler secret).
	R label.L
	// InputZeros holds the zero-label of every input-like wire
	// (garbler inputs, evaluator inputs, constants), indexed by wire.
	InputZeros []label.L
	// Tables holds one Material per AND gate, in gate order — the
	// stream HAAC's table queue consumes.
	Tables []Material
	// OutputZeros holds the zero-label of each output wire, in circuit
	// output order; colours of these are the decode information.
	OutputZeros []label.L
}

// DecodeBits returns the point-and-permute decode bit per output.
func (g *Garbled) DecodeBits() []int {
	d := make([]int, len(g.OutputZeros))
	for i, z := range g.OutputZeros {
		d[i] = z.Colour()
	}
	return d
}

// Garble garbles the circuit with the given hasher and label source.
// The source must be cryptographically random for real use; tests use a
// deterministic label.Source.
func Garble(c *circuit.Circuit, h Hasher, src *label.Source) (*Garbled, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("gc: %w", err)
	}
	r := src.NextDelta()
	nin := c.NumInputs()

	wires := make([]label.L, c.NumWires)
	inputZeros := make([]label.L, nin)
	for i := 0; i < nin; i++ {
		wires[i] = src.Next()
		inputZeros[i] = wires[i]
	}

	and, _, _ := c.CountOps()
	tables := make([]Material, 0, and)
	var gateIdx uint64
	for i := range c.Gates {
		g := &c.Gates[i]
		switch g.Op {
		case circuit.XOR:
			wires[g.C] = wires[g.A].Xor(wires[g.B])
		case circuit.INV:
			// FreeXOR NOT: the zero-label of the output is the
			// one-label of the input.
			wires[g.C] = wires[g.A].Xor(r)
		case circuit.AND:
			m, c0 := garbleAND(h, wires[g.A], wires[g.B], r, gateIdx)
			tables = append(tables, m)
			wires[g.C] = c0
			gateIdx++
		default:
			return nil, fmt.Errorf("gc: gate %d has unknown op %d", i, g.Op)
		}
	}

	outs := make([]label.L, len(c.Outputs))
	for i, o := range c.Outputs {
		outs[i] = wires[o]
	}
	return &Garbled{R: r, InputZeros: inputZeros, Tables: tables, OutputZeros: outs}, nil
}

// EncodeInputs maps plaintext input bits to input labels. garbler and
// evaluator bits follow the circuit's wire order; constants get their
// fixed labels automatically.
func (g *Garbled) EncodeInputs(c *circuit.Circuit, garbler, evaluator []bool) ([]label.L, error) {
	if len(garbler) != c.GarblerInputs || len(evaluator) != c.EvaluatorInputs {
		return nil, fmt.Errorf("gc: input length mismatch (%d/%d, want %d/%d)",
			len(garbler), len(evaluator), c.GarblerInputs, c.EvaluatorInputs)
	}
	labels := make([]label.L, c.NumInputs())
	for i, v := range garbler {
		labels[i] = g.InputZeros[i]
		if v {
			labels[i] = labels[i].Xor(g.R)
		}
	}
	off := c.GarblerInputs
	for i, v := range evaluator {
		labels[off+i] = g.InputZeros[off+i]
		if v {
			labels[off+i] = labels[off+i].Xor(g.R)
		}
	}
	if c.HasConst {
		labels[c.Const0] = g.InputZeros[c.Const0]
		labels[c.Const1] = g.InputZeros[c.Const1].Xor(g.R)
	}
	return labels, nil
}

// Evaluate runs the evaluator over the whole circuit in memory, given
// the active input labels (one per input-like wire) and the tables.
func Evaluate(c *circuit.Circuit, h Hasher, inputs []label.L, tables []Material) ([]label.L, error) {
	if len(inputs) != c.NumInputs() {
		return nil, fmt.Errorf("gc: got %d input labels, want %d", len(inputs), c.NumInputs())
	}
	wires := make([]label.L, c.NumWires)
	copy(wires, inputs)
	var gateIdx uint64
	for i := range c.Gates {
		g := &c.Gates[i]
		switch g.Op {
		case circuit.XOR:
			wires[g.C] = wires[g.A].Xor(wires[g.B])
		case circuit.INV:
			wires[g.C] = wires[g.A]
		case circuit.AND:
			if int(gateIdx) >= len(tables) {
				return nil, fmt.Errorf("gc: table stream exhausted at gate %d", i)
			}
			wires[g.C] = evalAND(h, wires[g.A], wires[g.B], tables[gateIdx], gateIdx)
			gateIdx++
		default:
			return nil, fmt.Errorf("gc: gate %d has unknown op %d", i, g.Op)
		}
	}
	if int(gateIdx) != len(tables) {
		return nil, fmt.Errorf("gc: %d tables provided, %d consumed", len(tables), gateIdx)
	}
	out := make([]label.L, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = wires[o]
	}
	return out, nil
}

// Decode recovers plaintext output bits from active output labels using
// the garbler's decode bits. It fails if a label is neither of the two
// valid labels for its wire — the "corrupted table" detection tests rely
// on this.
func (g *Garbled) Decode(outputs []label.L) ([]bool, error) {
	if len(outputs) != len(g.OutputZeros) {
		return nil, fmt.Errorf("gc: got %d output labels, want %d", len(outputs), len(g.OutputZeros))
	}
	bits := make([]bool, len(outputs))
	for i, l := range outputs {
		switch l {
		case g.OutputZeros[i]:
			bits[i] = false
		case g.OutputZeros[i].Xor(g.R):
			bits[i] = true
		default:
			return nil, fmt.Errorf("gc: output %d label is invalid (corrupted evaluation)", i)
		}
	}
	return bits, nil
}

// Run garbles, encodes, evaluates and decodes in one step — the
// convenience entry point for tests and examples that don't need the
// two-party split.
func Run(c *circuit.Circuit, h Hasher, seed uint64, garbler, evaluator []bool) ([]bool, error) {
	src := label.NewSource(seed)
	g, err := Garble(c, h, src)
	if err != nil {
		return nil, err
	}
	in, err := g.EncodeInputs(c, garbler, evaluator)
	if err != nil {
		return nil, err
	}
	out, err := Evaluate(c, h, in, g.Tables)
	if err != nil {
		return nil, err
	}
	return g.Decode(out)
}
