// Package gc implements the garbling scheme HAAC accelerates: FreeXOR
// [Kolesnikov-Schneider] for XOR gates and the two-halves ("half-gate")
// construction [Zahur-Rosulek-Evans] for AND gates, using the re-keyed
// hash the paper adopts for security (§2.1): every AND gate derives two
// fresh AES keys from its gate index, paying two key expansions per gate
// exactly as HAAC's Half-Gate pipeline does.
//
// The package provides in-memory garbling/evaluation (the functional
// golden model for the compiler and simulator) and streaming variants
// used by the two-party protocol in internal/proto.
package gc

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
	"sync"

	"haac/internal/aes128"
	"haac/internal/label"
)

// Material is the garbled table of one AND gate: the two half-gate rows.
// At 32 bytes per AND gate this is the paper's per-gate "table"
// constant, the unit of the accelerator's table stream.
type Material struct {
	TG, TE label.L
}

// MaterialSize is the byte size of one AND-gate table.
const MaterialSize = 2 * label.Size

// Bytes serializes the material (TG then TE, little-endian labels).
func (m Material) Bytes() [MaterialSize]byte {
	var b [MaterialSize]byte
	m.TG.Put(b[0:16])
	m.TE.Put(b[16:32])
	return b
}

// MaterialFromBytes deserializes a Material.
func MaterialFromBytes(b []byte) Material {
	return Material{
		TG: label.FromBytes(b[0:16]),
		TE: label.FromBytes(b[16:32]),
	}
}

// EncodeMaterials serializes src into dst at MaterialSize stride and
// returns the number of bytes written — the bulk form of Bytes used by
// the batched transport, which slab-encodes a whole level per Write
// instead of copying each table through a stack array. dst must hold at
// least MaterialSize*len(src) bytes.
func EncodeMaterials(dst []byte, src []Material) int {
	_ = dst[:MaterialSize*len(src)]
	for i, m := range src {
		m.TG.Put(dst[i*MaterialSize:])
		m.TE.Put(dst[i*MaterialSize+label.Size:])
	}
	return MaterialSize * len(src)
}

// DecodeMaterials deserializes len(dst) tables from src at MaterialSize
// stride and returns the number of bytes consumed.
func DecodeMaterials(dst []Material, src []byte) int {
	_ = src[:MaterialSize*len(dst)]
	for i := range dst {
		dst[i] = Material{
			TG: label.FromBytes(src[i*MaterialSize:]),
			TE: label.FromBytes(src[i*MaterialSize+label.Size:]),
		}
	}
	return MaterialSize * len(dst)
}

// Hasher computes the gate-tweakable hash H(L, tweak) used to encrypt
// half-gate rows. Implementations differ in how keys relate to tweaks.
type Hasher interface {
	Hash(l label.L, tweak uint64) label.L
	// Name identifies the construction for benchmarks/reporting.
	Name() string
}

// Hasher4 is an optional batched extension of Hasher: all four hashes of
// one AND gate in a single call, letting constructions with a reusable
// cipher stage the blocks through it without per-call overhead. The
// garbling engines use it when available; results must equal four
// individual Hash calls.
type Hasher4 interface {
	Hasher
	Hash4(l0, l1, l2, l3 label.L, t0, t1, t2, t3 uint64) (h0, h1, h2, h3 label.L)
}

// Hasher2 is the evaluator-side batched extension of Hasher: both
// hashes of one evaluated AND gate in a single call. The two tweaks are
// distinct (2j and 2j+1), so unlike Hash4 there is no key sharing to
// exploit — the win is staging both blocks through one scratch
// acquisition. Results must equal two individual Hash calls.
type Hasher2 interface {
	Hasher
	Hash2(l0, l1 label.L, t0, t1 uint64) (h0, h1 label.L)
}

// hash4 computes the four half-gate hashes of one AND gate, through the
// batched path when the hasher provides one.
func hash4(h Hasher, a0, a1, b0, b1 label.L, t0, t1 uint64) (ha0, ha1, hb0, hb1 label.L) {
	if b, ok := h.(Hasher4); ok {
		return b.Hash4(a0, a1, b0, b1, t0, t0, t1, t1)
	}
	return h.Hash(a0, t0), h.Hash(a1, t0), h.Hash(b0, t1), h.Hash(b1, t1)
}

// hash2 computes the two half-gate hashes of one evaluated AND gate,
// through the batched path when the hasher provides one.
func hash2(h Hasher, a, b label.L, t0, t1 uint64) (ha, hb label.L) {
	if b2, ok := h.(Hasher2); ok {
		return b2.Hash2(a, b, t0, t1)
	}
	return h.Hash(a, t0), h.Hash(b, t1)
}

// RekeyedHasher is the paper's secure construction: the AES key is the
// tweak (gate-index-derived), so every hash pays a key expansion —
// H(L, t) = AES_{K(t)}(L) XOR L. This is what HAAC's hardware pipeline
// implements (key expansion + AES per hash).
//
// The implementation runs on the aes128 T-table tier with pooled
// scratch: each tweak's key is expanded once into a worker-local
// Schedule and reused for every block hashed under it, so the batched
// Hash4 path pays two expansions for a garbled gate's four hashes (the
// schedule-reuse the paper's Half-Gate pipeline exploits) and no call
// allocates in steady state. Outputs are byte-identical to encrypting
// with crypto/aes — the wire format and golden vectors are unchanged.
type RekeyedHasher struct{}

// rkScratch is one worker's re-keyed hash scratch: the tweak-derived
// key, the expanded schedule it is reused through, and staging blocks
// for one batched pair. Stack arrays would be fine for the T-table
// calls, but pooling mirrors FixedKeyHasher and keeps the schedule —
// 176 bytes — off the stack of every gate.
type rkScratch struct {
	key     [aes128.KeySize]byte
	ks      aes128.Schedule
	in, out [2 * label.Size]byte
}

// rkPool is shared by all RekeyedHasher values: the construction has no
// per-instance state (the key is derived from the tweak alone), so the
// zero value stays usable everywhere and every worker draws from one
// pool, exactly like FixedKeyHasher's per-instance pool does for its
// workers.
var rkPool = sync.Pool{New: func() any { return new(rkScratch) }}

// expand derives K(tweak) and expands it into the scratch schedule —
// the per-gate re-keying cost the paper quantifies.
func (s *rkScratch) expand(tweak uint64) {
	binary.LittleEndian.PutUint64(s.key[0:8], tweak)
	binary.LittleEndian.PutUint64(s.key[8:16], ^tweak)
	s.ks.ExpandFrom(&s.key)
}

// hashPair hashes two labels under two tweaks, expanding the second key
// only when it differs — one batched two-block encryption when the
// tweaks match (the garbler's case), two single blocks otherwise.
func (s *rkScratch) hashPair(l0, l1 label.L, t0, t1 uint64) (label.L, label.L) {
	s.expand(t0)
	l0.Put(s.in[0:16])
	l1.Put(s.in[16:32])
	if t1 == t0 {
		s.ks.EncryptBlocksTo(s.out[:], s.in[:])
	} else {
		s.ks.EncryptTo(s.out[0:16], s.in[0:16])
		s.expand(t1)
		s.ks.EncryptTo(s.out[16:32], s.in[16:32])
	}
	return label.FromBytes(s.out[0:16]).Xor(l0), label.FromBytes(s.out[16:32]).Xor(l1)
}

// Hash implements Hasher.
func (RekeyedHasher) Hash(l label.L, tweak uint64) label.L {
	s := rkPool.Get().(*rkScratch)
	s.expand(tweak)
	l.Put(s.in[0:16])
	s.ks.EncryptTo(s.out[0:16], s.in[0:16])
	out := label.FromBytes(s.out[0:16]).Xor(l)
	rkPool.Put(s)
	return out
}

// Hash2 implements Hasher2: the evaluator's two hashes share one
// scratch acquisition and one schedule slot (each half re-keys it).
func (RekeyedHasher) Hash2(l0, l1 label.L, t0, t1 uint64) (h0, h1 label.L) {
	s := rkPool.Get().(*rkScratch)
	h0, h1 = s.hashPair(l0, l1, t0, t1)
	rkPool.Put(s)
	return
}

// Hash4 implements Hasher4: the garbler's four hashes use only two
// distinct keys (t0==t1 and t2==t3 in the half-gate tweak schedule), so
// each pair expands once and encrypts both blocks under the reused
// schedule.
func (RekeyedHasher) Hash4(l0, l1, l2, l3 label.L, t0, t1, t2, t3 uint64) (h0, h1, h2, h3 label.L) {
	s := rkPool.Get().(*rkScratch)
	h0, h1 = s.hashPair(l0, l1, t0, t1)
	h2, h3 = s.hashPair(l2, l3, t2, t3)
	rkPool.Put(s)
	return
}

// Name implements Hasher.
func (RekeyedHasher) Name() string { return "rekeyed" }

// FixedKeyHasher is the classic fixed-key construction (JustGarble
// style): H(L, t) = AES_K(2L xor t) xor 2L xor t with one global key.
// It is faster but, as the paper notes, offers weaker concrete security;
// it exists here to reproduce the §2.1 "+27.5%" re-keying overhead
// comparison.
type FixedKeyHasher struct {
	blk cipher.Block
	// scratch pools the AES in/out blocks. Stack arrays would escape
	// through the interface-typed Encrypt call (two heap allocations per
	// Hash4, measured), and struct fields would break pool-wide sharing;
	// pooled buffers keep the hasher concurrency-safe with zero
	// steady-state allocations.
	scratch sync.Pool
}

// fkScratch is one worker's hash scratch: four input and four output
// AES blocks.
type fkScratch struct {
	in, out [4 * label.Size]byte
}

// NewFixedKeyHasher builds a FixedKeyHasher with the given global key.
// The underlying AES block cipher is expanded once and is safe for
// concurrent use, so one hasher can be shared by a whole worker pool.
func NewFixedKeyHasher(key [16]byte) *FixedKeyHasher {
	blk, err := aes.NewCipher(key[:])
	if err != nil {
		panic("gc: aes.NewCipher: " + err.Error())
	}
	h := &FixedKeyHasher{blk: blk}
	h.scratch.New = func() any { return new(fkScratch) }
	return h
}

// double computes the 2L xor t input block of the fixed-key hash.
func double(l label.L, tweak uint64) label.L {
	return label.L{Lo: l.Lo<<1 ^ tweak, Hi: l.Hi<<1 | l.Lo>>63}
}

// Hash implements Hasher.
func (h *FixedKeyHasher) Hash(l label.L, tweak uint64) label.L {
	d := double(l, tweak)
	s := h.scratch.Get().(*fkScratch)
	d.Put(s.in[0:16])
	h.blk.Encrypt(s.out[0:16], s.in[0:16])
	out := label.FromBytes(s.out[0:16]).Xor(d)
	h.scratch.Put(s)
	return out
}

// Hash2 implements Hasher2: the evaluator's two blocks staged through
// the single expanded cipher with one pooled scratch acquisition.
func (h *FixedKeyHasher) Hash2(l0, l1 label.L, t0, t1 uint64) (h0, h1 label.L) {
	d0, d1 := double(l0, t0), double(l1, t1)
	s := h.scratch.Get().(*fkScratch)
	d0.Put(s.in[0:16])
	d1.Put(s.in[16:32])
	blk := h.blk
	blk.Encrypt(s.out[0:16], s.in[0:16])
	blk.Encrypt(s.out[16:32], s.in[16:32])
	h0 = label.FromBytes(s.out[0:16]).Xor(d0)
	h1 = label.FromBytes(s.out[16:32]).Xor(d1)
	h.scratch.Put(s)
	return
}

// Hash4 implements Hasher4: the four blocks of one AND gate are staged
// through the single expanded cipher using pooled scratch buffers, so a
// garbling worker pays no steady-state allocation and no per-hash
// interface dispatch.
func (h *FixedKeyHasher) Hash4(l0, l1, l2, l3 label.L, t0, t1, t2, t3 uint64) (h0, h1, h2, h3 label.L) {
	d0, d1, d2, d3 := double(l0, t0), double(l1, t1), double(l2, t2), double(l3, t3)
	s := h.scratch.Get().(*fkScratch)
	d0.Put(s.in[0:16])
	d1.Put(s.in[16:32])
	d2.Put(s.in[32:48])
	d3.Put(s.in[48:64])
	blk := h.blk
	blk.Encrypt(s.out[0:16], s.in[0:16])
	blk.Encrypt(s.out[16:32], s.in[16:32])
	blk.Encrypt(s.out[32:48], s.in[32:48])
	blk.Encrypt(s.out[48:64], s.in[48:64])
	h0 = label.FromBytes(s.out[0:16]).Xor(d0)
	h1 = label.FromBytes(s.out[16:32]).Xor(d1)
	h2 = label.FromBytes(s.out[32:48]).Xor(d2)
	h3 = label.FromBytes(s.out[48:64]).Xor(d3)
	h.scratch.Put(s)
	return
}

// Name implements Hasher.
func (h *FixedKeyHasher) Name() string { return "fixed-key" }

// SoftFixedKeyHasher is FixedKeyHasher on the aes128 T-table tier
// instead of crypto/aes. It produces the same hashes (AES is AES) but
// pays software block costs, which makes it the matched-backend
// denominator for the re-keying overhead experiment: RekeyedHasher vs
// FixedKeyHasher confounds re-keying with hardware-vs-software AES on
// AES-NI hosts, while RekeyedHasher vs SoftFixedKeyHasher isolates the
// pure key-expansion surcharge the paper quantifies as +27.5%.
type SoftFixedKeyHasher struct {
	ks      aes128.Schedule
	scratch sync.Pool
}

// NewSoftFixedKeyHasher builds a SoftFixedKeyHasher with the given
// global key, expanded once at construction.
func NewSoftFixedKeyHasher(key [16]byte) *SoftFixedKeyHasher {
	h := &SoftFixedKeyHasher{}
	h.ks.ExpandFrom(&key)
	h.scratch.New = func() any { return new(fkScratch) }
	return h
}

// Hash implements Hasher.
func (h *SoftFixedKeyHasher) Hash(l label.L, tweak uint64) label.L {
	d := double(l, tweak)
	s := h.scratch.Get().(*fkScratch)
	d.Put(s.in[0:16])
	h.ks.EncryptTo(s.out[0:16], s.in[0:16])
	out := label.FromBytes(s.out[0:16]).Xor(d)
	h.scratch.Put(s)
	return out
}

// Hash2 implements Hasher2.
func (h *SoftFixedKeyHasher) Hash2(l0, l1 label.L, t0, t1 uint64) (h0, h1 label.L) {
	d0, d1 := double(l0, t0), double(l1, t1)
	s := h.scratch.Get().(*fkScratch)
	d0.Put(s.in[0:16])
	d1.Put(s.in[16:32])
	h.ks.EncryptBlocksTo(s.out[0:32], s.in[0:32])
	h0 = label.FromBytes(s.out[0:16]).Xor(d0)
	h1 = label.FromBytes(s.out[16:32]).Xor(d1)
	h.scratch.Put(s)
	return
}

// Hash4 implements Hasher4.
func (h *SoftFixedKeyHasher) Hash4(l0, l1, l2, l3 label.L, t0, t1, t2, t3 uint64) (h0, h1, h2, h3 label.L) {
	d0, d1, d2, d3 := double(l0, t0), double(l1, t1), double(l2, t2), double(l3, t3)
	s := h.scratch.Get().(*fkScratch)
	d0.Put(s.in[0:16])
	d1.Put(s.in[16:32])
	d2.Put(s.in[32:48])
	d3.Put(s.in[48:64])
	h.ks.EncryptBlocksTo(s.out[:], s.in[:])
	h0 = label.FromBytes(s.out[0:16]).Xor(d0)
	h1 = label.FromBytes(s.out[16:32]).Xor(d1)
	h2 = label.FromBytes(s.out[32:48]).Xor(d2)
	h3 = label.FromBytes(s.out[48:64]).Xor(d3)
	h.scratch.Put(s)
	return
}

// Name implements Hasher.
func (h *SoftFixedKeyHasher) Name() string { return "fixed-key-soft" }

// GarbleAND garbles a single AND gate: given the input zero-labels and
// the FreeXOR offset it returns the gate's table and output zero-label.
// tweak must be unique per gate (HAAC uses the instruction's output
// wire address, which the PC determines). Exported for the HAAC
// compiler's program-order garbling.
func GarbleAND(h Hasher, a0, b0, r label.L, tweak uint64) (Material, label.L) {
	return garbleAND(h, a0, b0, r, tweak)
}

// EvalAND evaluates a single AND gate from the active input labels and
// the gate's table, under the same tweak used to garble it.
func EvalAND(h Hasher, a, b label.L, m Material, tweak uint64) label.L {
	return evalAND(h, a, b, m, tweak)
}

// garbleAND produces the two half-gate rows and the output zero-label
// for an AND gate with input zero-labels a0, b0 under offset r.
// Gate index j provides the two hash tweaks 2j and 2j+1.
func garbleAND(h Hasher, a0, b0, r label.L, j uint64) (Material, label.L) {
	pa := a0.Colour()
	pb := b0.Colour()
	a1 := a0.Xor(r)
	b1 := b0.Xor(r)
	t0, t1 := 2*j, 2*j+1

	ha0, ha1, hb0, hb1 := hash4(h, a0, a1, b0, b1, t0, t1)

	// Garbler half: handles the evaluator-known colour of wire A.
	tg := ha0.Xor(ha1)
	if pb == 1 {
		tg = tg.Xor(r)
	}
	wg := ha0
	if pa == 1 {
		wg = wg.Xor(tg)
	}

	// Evaluator half.
	te := hb0.Xor(hb1).Xor(a0)
	we := hb0
	if pb == 1 {
		we = we.Xor(te.Xor(a0))
	}

	return Material{TG: tg, TE: te}, wg.Xor(we)
}

// evalAND computes the output label from the two input labels and the
// gate's table, using the labels' colour bits to select rows. Both
// hashes go through the batched pair path when the hasher has one.
func evalAND(h Hasher, a, b label.L, m Material, j uint64) label.L {
	sa := a.Colour()
	sb := b.Colour()
	t0, t1 := 2*j, 2*j+1

	wg, we := hash2(h, a, b, t0, t1)
	if sa == 1 {
		wg = wg.Xor(m.TG)
	}
	if sb == 1 {
		we = we.Xor(m.TE.Xor(a))
	}
	return wg.Xor(we)
}

// checkHalfGates validates the construction over all four plaintext
// input combinations; used by tests and the package's own init-time
// self-check in debug builds.
func checkHalfGates(h Hasher, a0, b0, r label.L, j uint64) error {
	m, c0 := garbleAND(h, a0, b0, r, j)
	for va := 0; va < 2; va++ {
		for vb := 0; vb < 2; vb++ {
			a := a0
			if va == 1 {
				a = a.Xor(r)
			}
			b := b0
			if vb == 1 {
				b = b.Xor(r)
			}
			got := evalAND(h, a, b, m, j)
			want := c0
			if va&vb == 1 {
				want = want.Xor(r)
			}
			if got != want {
				return fmt.Errorf("gc: half-gate mismatch at a=%d b=%d", va, vb)
			}
		}
	}
	return nil
}
