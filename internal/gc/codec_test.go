package gc

import (
	"testing"

	"haac/internal/label"
)

func TestMaterialCodecRoundTrip(t *testing.T) {
	src := label.NewSource(11)
	for _, n := range []int{0, 1, 5, 100} {
		ms := make([]Material, n)
		for i := range ms {
			ms[i] = Material{TG: src.Next(), TE: src.Next()}
		}
		buf := make([]byte, MaterialSize*n)
		if got := EncodeMaterials(buf, ms); got != MaterialSize*n {
			t.Fatalf("n=%d: wrote %d bytes, want %d", n, got, MaterialSize*n)
		}
		// Bulk encode must match the per-table Bytes serialization.
		for i, m := range ms {
			one := m.Bytes()
			if string(buf[i*MaterialSize:(i+1)*MaterialSize]) != string(one[:]) {
				t.Fatalf("n=%d: EncodeMaterials differs from Bytes at table %d", n, i)
			}
		}
		back := make([]Material, n)
		if got := DecodeMaterials(back, buf); got != MaterialSize*n {
			t.Fatalf("n=%d: read %d bytes, want %d", n, got, MaterialSize*n)
		}
		for i := range ms {
			if back[i] != ms[i] {
				t.Fatalf("n=%d: round-trip mismatch at table %d", n, i)
			}
		}
	}
}

func TestMaterialCodecNoAllocs(t *testing.T) {
	ms := make([]Material, 256)
	buf := make([]byte, MaterialSize*len(ms))
	if avg := testing.AllocsPerRun(100, func() {
		EncodeMaterials(buf, ms)
		DecodeMaterials(ms, buf)
	}); avg != 0 {
		t.Fatalf("material codec allocates %.1f times per run, want 0", avg)
	}
}

func TestMaterialArenaViews(t *testing.T) {
	a := NewMaterialArena(10)
	v1 := a.Alloc(4)
	v2 := a.Alloc(6)
	if len(v1) != 4 || len(v2) != 6 {
		t.Fatal("wrong view lengths")
	}
	v1[3] = Material{TG: label.L{Lo: 1}}
	v2[0] = Material{TG: label.L{Lo: 2}}
	all := a.Contiguous()
	if len(all) != 10 || all[3].TG.Lo != 1 || all[4].TG.Lo != 2 {
		t.Fatal("views are not adjacent slab windows")
	}
	// Appending to a capped view must not clobber its neighbour.
	_ = append(v1, Material{TG: label.L{Lo: 9}})
	if all[4].TG.Lo != 2 {
		t.Fatal("append through a view overwrote the next view")
	}
	a.Reset()
	if len(a.Contiguous()) != 0 {
		t.Fatal("Reset did not recycle the slab")
	}
	r1 := a.Alloc(10)
	if &r1[0] != &all[0] {
		t.Fatal("post-Reset Alloc did not reuse the slab")
	}
	// Exhaustion grows once rather than failing.
	g := a.Alloc(5)
	g[0] = Material{TE: label.L{Hi: 7}}
	if len(a.Contiguous()) != 15 {
		t.Fatal("grown arena lost track of its offset")
	}
}

func TestMaterialArenaSteadyStateNoAllocs(t *testing.T) {
	a := NewMaterialArena(64)
	if avg := testing.AllocsPerRun(100, func() {
		a.Reset()
		for i := 0; i < 8; i++ {
			v := a.Alloc(8)
			v[0] = Material{}
		}
	}); avg != 0 {
		t.Fatalf("arena steady state allocates %.1f times per run, want 0", avg)
	}
}
