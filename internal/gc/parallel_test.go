package gc

import (
	"fmt"
	"sync"
	"testing"

	"haac/internal/label"
	"haac/internal/workloads"
)

// parallelCircuits are the circuits the determinism suite sweeps:
// shallow-wide, deep-narrow and mixed shapes from the real workload
// generators.
func parallelCircuits() []workloads.Workload {
	return []workloads.Workload{
		workloads.Hamming(128),
		workloads.Mult32(),
		workloads.DotProduct(4, 16),
		workloads.Millionaire(16),
		workloads.ReLU(8, 16),
	}
}

func equalGarbled(a, b *Garbled) error {
	if a.R != b.R {
		return fmt.Errorf("R differs: %s vs %s", a.R, b.R)
	}
	if len(a.InputZeros) != len(b.InputZeros) {
		return fmt.Errorf("input count differs")
	}
	for i := range a.InputZeros {
		if a.InputZeros[i] != b.InputZeros[i] {
			return fmt.Errorf("input zero %d differs", i)
		}
	}
	if len(a.Tables) != len(b.Tables) {
		return fmt.Errorf("table count differs: %d vs %d", len(a.Tables), len(b.Tables))
	}
	for i := range a.Tables {
		if a.Tables[i] != b.Tables[i] {
			return fmt.Errorf("table %d differs: %x vs %x", i, a.Tables[i].Bytes(), b.Tables[i].Bytes())
		}
	}
	if len(a.OutputZeros) != len(b.OutputZeros) {
		return fmt.Errorf("output count differs")
	}
	for i := range a.OutputZeros {
		if a.OutputZeros[i] != b.OutputZeros[i] {
			return fmt.Errorf("output zero %d differs", i)
		}
	}
	return nil
}

// TestParallelGarbleDeterminism is the tentpole invariant: for every
// worker count the parallel engine's output is byte-identical to the
// sequential garbler, across circuits, seeds and both hashers.
func TestParallelGarbleDeterminism(t *testing.T) {
	hashers := []Hasher{RekeyedHasher{}, NewFixedKeyHasher([16]byte{9, 9})}
	for _, w := range parallelCircuits() {
		c := w.Build()
		for _, h := range hashers {
			for _, seed := range []uint64{1, 42, 0xfeedface} {
				want, err := Garble(c, h, label.NewSource(seed))
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 4, 8} {
					got, err := ParallelGarble(c, h, label.NewSource(seed), workers)
					if err != nil {
						t.Fatalf("%s/%s/seed=%d/w=%d: %v", w.Name, h.Name(), seed, workers, err)
					}
					if err := equalGarbled(want, got); err != nil {
						t.Fatalf("%s/%s/seed=%d/w=%d: %v", w.Name, h.Name(), seed, workers, err)
					}
				}
			}
		}
	}
}

// TestParallelEvalMatchesSequential checks the evaluator side: same
// output labels as Evaluate for every worker count, and correct
// plaintext after decoding.
func TestParallelEvalMatchesSequential(t *testing.T) {
	h := RekeyedHasher{}
	for _, w := range parallelCircuits() {
		c := w.Build()
		g, e := w.Inputs(7)
		want := w.Reference(g, e)

		garbled, err := Garble(c, h, label.NewSource(11))
		if err != nil {
			t.Fatal(err)
		}
		in, err := garbled.EncodeInputs(c, g, e)
		if err != nil {
			t.Fatal(err)
		}
		seqOut, err := Evaluate(c, h, in, garbled.Tables)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, 8} {
			parOut, err := ParallelEval(c, h, in, garbled.Tables, workers)
			if err != nil {
				t.Fatalf("%s/w=%d: %v", w.Name, workers, err)
			}
			for i := range seqOut {
				if parOut[i] != seqOut[i] {
					t.Fatalf("%s/w=%d: output label %d differs", w.Name, workers, i)
				}
			}
			bits, err := garbled.Decode(parOut)
			if err != nil {
				t.Fatalf("%s/w=%d: %v", w.Name, workers, err)
			}
			for i := range want {
				if bits[i] != want[i] {
					t.Fatalf("%s/w=%d: plaintext bit %d wrong", w.Name, workers, i)
				}
			}
		}
	}
}

// TestParallelGarbleStreamChunks checks the streaming hook: chunks are
// contiguous, cover the whole stream, and match the in-memory tables.
func TestParallelGarbleStreamChunks(t *testing.T) {
	w := workloads.Hamming(128)
	c := w.Build()
	h := RekeyedHasher{}
	want, err := Garble(c, h, label.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Material
	chunks := 0
	got, err := ParallelGarbleStream(c, h, label.NewSource(5), 4, func(tables []Material) error {
		streamed = append(streamed, tables...)
		chunks++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := equalGarbled(want, got); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(want.Tables) {
		t.Fatalf("streamed %d tables, want %d", len(streamed), len(want.Tables))
	}
	for i := range streamed {
		if streamed[i] != want.Tables[i] {
			t.Fatalf("streamed table %d differs", i)
		}
	}
	if chunks < 2 {
		t.Fatalf("expected level-by-level chunking, got %d chunk(s)", chunks)
	}
}

// TestParallelGarbleStreamEmitError checks an emit failure aborts.
func TestParallelGarbleStreamEmitError(t *testing.T) {
	c := workloads.Hamming(128).Build()
	boom := fmt.Errorf("pipe broke")
	_, err := ParallelGarbleStream(c, RekeyedHasher{}, label.NewSource(5), 2, func([]Material) error {
		return boom
	})
	if err == nil {
		t.Fatal("emit error not propagated")
	}
}

// TestParallelEvalStreamBlocking drives ParallelEvalStream through a
// table source that releases tables incrementally from another goroutine,
// the shape the pipelined protocol uses.
func TestParallelEvalStreamBlocking(t *testing.T) {
	w := workloads.Mult32()
	c := w.Build()
	h := RekeyedHasher{}
	g, e := w.Inputs(3)
	want := w.Reference(g, e)

	garbled, err := Garble(c, h, label.NewSource(23))
	if err != nil {
		t.Fatal(err)
	}
	in, err := garbled.EncodeInputs(c, g, e)
	if err != nil {
		t.Fatal(err)
	}

	// Feeder: release tables in small batches.
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	released := 0
	go func() {
		for released < len(garbled.Tables) {
			mu.Lock()
			released += 37
			if released > len(garbled.Tables) {
				released = len(garbled.Tables)
			}
			cond.Broadcast()
			mu.Unlock()
		}
	}()
	need := func(n int) ([]Material, error) {
		mu.Lock()
		defer mu.Unlock()
		for released < n {
			cond.Wait()
		}
		return garbled.Tables[:released], nil
	}

	out, err := ParallelEvalStream(c, h, in, 4, need)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := garbled.Decode(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bit %d wrong", i)
		}
	}
}

// TestParallelEvalTableCountMismatch mirrors the sequential engine's
// stream-exhaustion errors.
func TestParallelEvalTableCountMismatch(t *testing.T) {
	w := workloads.Millionaire(8)
	c := w.Build()
	h := RekeyedHasher{}
	g, e := w.Inputs(1)
	garbled, err := Garble(c, h, label.NewSource(2))
	if err != nil {
		t.Fatal(err)
	}
	in, err := garbled.EncodeInputs(c, g, e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParallelEval(c, h, in, garbled.Tables[:len(garbled.Tables)-1], 2); err == nil {
		t.Fatal("short table stream accepted")
	}
	if _, err := ParallelEval(c, h, in, append(append([]Material{}, garbled.Tables...), Material{}), 2); err == nil {
		t.Fatal("overlong table stream accepted")
	}
}

// TestFixedKeyHasherConcurrent hammers one shared hasher from many
// goroutines; run under -race this proves the shared-cipher claim.
func TestFixedKeyHasherConcurrent(t *testing.T) {
	h := NewFixedKeyHasher([16]byte{42})
	l := label.L{Lo: 123, Hi: 456}
	want := h.Hash(l, 77)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if h.Hash(l, 77) != want {
					panic("fixed-key hash not stable under concurrency")
				}
			}
		}()
	}
	wg.Wait()
}
