package gc

import (
	"fmt"

	"haac/internal/circuit"
	"haac/internal/label"
)

// Streaming garbling/evaluation: tables are produced and consumed gate
// by gate, so the two-party protocol can overlap garbling, transfer and
// evaluation instead of materializing all tables — mirroring how HAAC
// streams tables from DRAM through the table queues.

// StreamGarbler garbles incrementally. Construct with NewStreamGarbler,
// pull the input labels, then call Next once per AND gate table in gate
// order.
type StreamGarbler struct {
	c          *circuit.Circuit
	h          Hasher
	r          label.L
	wires      []label.L
	inputZeros []label.L
	pos        int    // next gate index in c.Gates
	andIdx     uint64 // AND gates emitted so far
}

// NewStreamGarbler initializes garbling: input labels are generated
// eagerly, gate processing is deferred to Next.
func NewStreamGarbler(c *circuit.Circuit, h Hasher, src *label.Source) (*StreamGarbler, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("gc: %w", err)
	}
	g := &StreamGarbler{c: c, h: h, r: src.NextDelta()}
	nin := c.NumInputs()
	g.wires = make([]label.L, c.NumWires)
	g.inputZeros = make([]label.L, nin)
	for i := 0; i < nin; i++ {
		g.wires[i] = src.Next()
		g.inputZeros[i] = g.wires[i]
	}
	return g, nil
}

// R returns the FreeXOR offset.
func (g *StreamGarbler) R() label.L { return g.r }

// InputZeros returns the zero-labels of all input-like wires.
func (g *StreamGarbler) InputZeros() []label.L { return g.inputZeros }

// Next processes gates until the next AND gate and returns its table.
// ok is false when the circuit is exhausted (all remaining gates are
// processed as a side effect).
func (g *StreamGarbler) Next() (m Material, ok bool) {
	for g.pos < len(g.c.Gates) {
		gate := &g.c.Gates[g.pos]
		g.pos++
		switch gate.Op {
		case circuit.XOR:
			g.wires[gate.C] = g.wires[gate.A].Xor(g.wires[gate.B])
		case circuit.INV:
			g.wires[gate.C] = g.wires[gate.A].Xor(g.r)
		case circuit.AND:
			var c0 label.L
			m, c0 = garbleAND(g.h, g.wires[gate.A], g.wires[gate.B], g.r, g.andIdx)
			g.wires[gate.C] = c0
			g.andIdx++
			return m, true
		}
	}
	return Material{}, false
}

// Finish returns the garbled-circuit summary; valid only after Next has
// returned ok=false (or the circuit has no AND gates left).
func (g *StreamGarbler) Finish() *Garbled {
	outs := make([]label.L, len(g.c.Outputs))
	for i, o := range g.c.Outputs {
		outs[i] = g.wires[o]
	}
	tablesDone := g.pos == len(g.c.Gates)
	if !tablesDone {
		// Drain any trailing free gates.
		for {
			if _, ok := g.Next(); !ok {
				break
			}
		}
		outs = make([]label.L, len(g.c.Outputs))
		for i, o := range g.c.Outputs {
			outs[i] = g.wires[o]
		}
	}
	return &Garbled{R: g.r, InputZeros: g.inputZeros, OutputZeros: outs}
}

// StreamEvaluator evaluates incrementally, pulling one table per AND
// gate from a caller-supplied source.
type StreamEvaluator struct {
	c      *circuit.Circuit
	h      Hasher
	wires  []label.L
	pos    int
	andIdx uint64
}

// NewStreamEvaluator starts evaluation from the active input labels.
func NewStreamEvaluator(c *circuit.Circuit, h Hasher, inputs []label.L) (*StreamEvaluator, error) {
	if len(inputs) != c.NumInputs() {
		return nil, fmt.Errorf("gc: got %d input labels, want %d", len(inputs), c.NumInputs())
	}
	e := &StreamEvaluator{c: c, h: h}
	e.wires = make([]label.L, c.NumWires)
	copy(e.wires, inputs)
	return e, nil
}

// NeedTable reports whether another AND gate (hence another table) is
// pending, advancing through any free gates on the way.
func (e *StreamEvaluator) NeedTable() bool {
	for e.pos < len(e.c.Gates) {
		gate := &e.c.Gates[e.pos]
		switch gate.Op {
		case circuit.XOR:
			e.wires[gate.C] = e.wires[gate.A].Xor(e.wires[gate.B])
		case circuit.INV:
			e.wires[gate.C] = e.wires[gate.A]
		case circuit.AND:
			return true
		}
		e.pos++
	}
	return false
}

// Feed consumes the table for the pending AND gate. Calling Feed when no
// table is needed is an error.
func (e *StreamEvaluator) Feed(m Material) error {
	if !e.NeedTable() {
		return fmt.Errorf("gc: unexpected table (no AND gate pending)")
	}
	gate := &e.c.Gates[e.pos]
	e.wires[gate.C] = evalAND(e.h, e.wires[gate.A], e.wires[gate.B], m, e.andIdx)
	e.andIdx++
	e.pos++
	return nil
}

// Outputs returns the active output labels; valid once NeedTable
// reports false.
func (e *StreamEvaluator) Outputs() ([]label.L, error) {
	if e.NeedTable() {
		return nil, fmt.Errorf("gc: evaluation incomplete (%d gates remain)", len(e.c.Gates)-e.pos)
	}
	out := make([]label.L, len(e.c.Outputs))
	for i, o := range e.c.Outputs {
		out[i] = e.wires[o]
	}
	return out, nil
}
