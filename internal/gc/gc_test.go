package gc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"haac/internal/builder"
	"haac/internal/circuit"
	"haac/internal/label"
	"haac/internal/workloads"
)

func hashers() map[string]Hasher {
	return map[string]Hasher{
		"rekeyed":   RekeyedHasher{},
		"fixed-key": NewFixedKeyHasher([16]byte{1, 2, 3}),
	}
}

func TestHalfGateAllInputs(t *testing.T) {
	for name, h := range hashers() {
		src := label.NewSource(99)
		r := src.NextDelta()
		for j := uint64(0); j < 16; j++ {
			if err := checkHalfGates(h, src.Next(), src.Next(), r, j); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

func TestGarbleMatchesPlaintextRandomCircuits(t *testing.T) {
	// Property: garbled evaluation == plaintext evaluation on random
	// circuits. This is the "verified against EMP" criterion of §5.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		c := randomCircuit(rng, 4+rng.Intn(5), 4+rng.Intn(5), 30+rng.Intn(60))
		g := randBits(rng, c.GarblerInputs)
		e := randBits(rng, c.EvaluatorInputs)
		want, err := c.Eval(g, e)
		if err != nil {
			t.Fatal(err)
		}
		for name, h := range hashers() {
			got, err := Run(c, h, uint64(trial)+7, g, e)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s trial %d: output %d mismatch", name, trial, i)
				}
			}
		}
	}
}

func TestGarbleWorkloads(t *testing.T) {
	for _, w := range workloads.VIPSuiteSmall() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if w.Name == "BubbSt" || w.Name == "GradDesc" {
				t.Skip("covered by integration tests; slow under -race")
			}
			c := w.Build()
			g, e := w.Inputs(3)
			want := w.Reference(g, e)
			got, err := Run(c, RekeyedHasher{}, 11, g, e)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("output bit %d mismatch", i)
				}
			}
		})
	}
}

func TestCorruptedTableDetected(t *testing.T) {
	b := builder.New()
	x := b.GarblerInputs(8)
	y := b.EvaluatorInputs(8)
	b.OutputWord(b.Mul(x, y))
	c := b.MustBuild()

	src := label.NewSource(5)
	garbled, err := Garble(c, RekeyedHasher{}, src)
	if err != nil {
		t.Fatal(err)
	}
	in, err := garbled.EncodeInputs(c, circuit.UintToBools(123, 8), circuit.UintToBools(45, 8))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in one table: decoding must fail (invalid label).
	garbled.Tables[3].TG.Lo ^= 1 << 17
	out, err := Evaluate(c, RekeyedHasher{}, in, garbled.Tables)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := garbled.Decode(out); err == nil {
		t.Fatal("corrupted table went undetected")
	}
}

func TestTableStreamLengthChecked(t *testing.T) {
	b := builder.New()
	x := b.GarblerInputs(4)
	y := b.EvaluatorInputs(4)
	b.Output(b.AND(b.AND(x[0], y[0]), b.AND(x[1], y[1])))
	c := b.MustBuild()
	src := label.NewSource(5)
	garbled, _ := Garble(c, RekeyedHasher{}, src)
	in, _ := garbled.EncodeInputs(c, []bool{true, true, false, false}, []bool{true, true, false, false})
	if _, err := Evaluate(c, RekeyedHasher{}, in, garbled.Tables[:1]); err == nil {
		t.Fatal("truncated table stream accepted")
	}
	extra := append(append([]Material(nil), garbled.Tables...), Material{})
	if _, err := Evaluate(c, RekeyedHasher{}, in, extra); err == nil {
		t.Fatal("over-long table stream accepted")
	}
}

func TestFreeXORInvariant(t *testing.T) {
	// For every wire the two labels differ by exactly R.
	b := builder.New()
	x := b.GarblerInputs(4)
	y := b.EvaluatorInputs(4)
	b.OutputWord(b.Add(x, y))
	c := b.MustBuild()
	src := label.NewSource(42)
	garbled, err := Garble(c, RekeyedHasher{}, src)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate twice with one evaluator bit flipped; output labels must
	// differ by 0 or R only.
	g := []bool{true, false, true, false}
	e1 := []bool{false, false, false, false}
	e2 := []bool{true, false, false, false}
	in1, _ := garbled.EncodeInputs(c, g, e1)
	in2, _ := garbled.EncodeInputs(c, g, e2)
	o1, _ := Evaluate(c, RekeyedHasher{}, in1, garbled.Tables)
	o2, _ := Evaluate(c, RekeyedHasher{}, in2, garbled.Tables)
	for i := range o1 {
		d := o1[i].Xor(o2[i])
		if !d.IsZero() && d != garbled.R {
			t.Fatalf("output %d labels differ by something other than R", i)
		}
	}
}

func TestMaterialSerialization(t *testing.T) {
	f := func(a, b label.L) bool {
		m := Material{TG: a, TE: b}
		buf := m.Bytes()
		return MaterialFromBytes(buf[:]) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBitsAreColours(t *testing.T) {
	b := builder.New()
	x := b.GarblerInputs(2)
	b.Output(b.AND(x[0], x[1]))
	c := b.MustBuild()
	garbled, _ := Garble(c, RekeyedHasher{}, label.NewSource(1))
	d := garbled.DecodeBits()
	if len(d) != 1 || d[0] != garbled.OutputZeros[0].Colour() {
		t.Fatal("decode bits are not output colours")
	}
}

// randomCircuit generates a random valid circuit.
func randomCircuit(rng *rand.Rand, ng, ne, gates int) *circuit.Circuit {
	c := &circuit.Circuit{
		NumWires:        ng + ne + gates,
		GarblerInputs:   ng,
		EvaluatorInputs: ne,
	}
	for i := 0; i < gates; i++ {
		out := circuit.Wire(ng + ne + i)
		a := circuit.Wire(rng.Intn(int(out)))
		bb := circuit.Wire(rng.Intn(int(out)))
		op := []circuit.Op{circuit.XOR, circuit.AND, circuit.INV}[rng.Intn(3)]
		c.Gates = append(c.Gates, circuit.Gate{Op: op, A: a, B: bb, C: out})
	}
	// A few random outputs from the tail.
	for i := 0; i < 3; i++ {
		c.Outputs = append(c.Outputs, circuit.Wire(c.NumWires-1-i))
	}
	return c
}

func randBits(rng *rand.Rand, n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = rng.Intn(2) == 1
	}
	return b
}

func BenchmarkGarbleANDRekeyed(b *testing.B) {
	src := label.NewSource(1)
	r := src.NextDelta()
	a0, b0 := src.Next(), src.Next()
	h := RekeyedHasher{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		garbleAND(h, a0, b0, r, uint64(i))
	}
}

func BenchmarkGarbleANDFixedKey(b *testing.B) {
	src := label.NewSource(1)
	r := src.NextDelta()
	a0, b0 := src.Next(), src.Next()
	h := NewFixedKeyHasher([16]byte{9})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		garbleAND(h, a0, b0, r, uint64(i))
	}
}

// BenchmarkGarbleANDFixedKeySoft is the matched-backend denominator for
// the re-keying overhead: the same T-table AES as the re-keyed hasher,
// without the per-gate key expansions.
func BenchmarkGarbleANDFixedKeySoft(b *testing.B) {
	src := label.NewSource(1)
	r := src.NextDelta()
	a0, b0 := src.Next(), src.Next()
	h := NewSoftFixedKeyHasher([16]byte{9})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		garbleAND(h, a0, b0, r, uint64(i))
	}
}

func BenchmarkEvalANDRekeyed(b *testing.B) {
	src := label.NewSource(1)
	r := src.NextDelta()
	a0, b0 := src.Next(), src.Next()
	h := RekeyedHasher{}
	m, _ := garbleAND(h, a0, b0, r, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		evalAND(h, a0, b0, m, 1)
	}
}
