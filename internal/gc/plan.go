package gc

import (
	"fmt"

	"haac/internal/circuit"
	"haac/internal/label"
)

// Plan-based execution: the engines in this file run a precompiled
// circuit.Plan instead of a raw circuit. The plan's renaming maps the
// write-once wire space onto a slot space of width == peak-live wires,
// so a run touches a label arena of NumSlots entries instead of
// NumWires — the paper's rename-and-evict memory idea (§3.1.4) applied
// to the software hot path — and the cached schedule removes the
// per-run LevelSchedule rebuild. Runners own their arenas and reuse
// them across runs: steady-state plan execution allocates nothing.
//
// Outputs are byte-identical to the dense engines: renaming only moves
// where labels are stored, never what is hashed, and tables keep their
// gate-order stream positions and tweaks.

// PlanGarbler garbles a precompiled plan repeatedly with zero
// steady-state allocations. A PlanGarbler is not safe for concurrent
// use; share the Plan and give each goroutine its own runner.
//
// Usage per run: Begin (draws the FreeXOR offset and input labels, so a
// protocol can ship labels and run OT before garbling), then Run. The
// returned Garbled and every slice it references are owned by the
// runner and overwritten by the next Begin/Run cycle.
type PlanGarbler struct {
	p          *circuit.Plan
	h          Hasher
	workers    int
	pool       *levelPool
	span       func(gates []int32)
	slots      []label.L
	inputZeros []label.L
	tables     []Material
	outs       []label.L
	r          label.L
	g          Garbled
	began      bool
}

// NewPlanGarbler builds a reusable garbler for the plan. workers follows
// the engine convention: <= 0 means one worker per CPU, 1 is sequential.
// Call Close when done with a parallel runner to release its pool.
func NewPlanGarbler(p *circuit.Plan, h Hasher, workers int) *PlanGarbler {
	pg := &PlanGarbler{
		p:          p,
		h:          h,
		workers:    clampWorkers(workers),
		slots:      make([]label.L, p.NumSlots),
		inputZeros: make([]label.L, p.Circuit.NumInputs()),
		tables:     make([]Material, p.Schedule.NumAND),
		outs:       make([]label.L, len(p.Circuit.Outputs)),
	}
	// The span worker is fixed here so Run never allocates a closure.
	pg.span = func(gates []int32) {
		sched, slots, tables := pg.p.Schedule, pg.slots, pg.tables
		for _, gi := range gates {
			g := &pg.p.Gates[gi]
			idx := sched.ANDIndex[gi]
			m, c0 := garbleAND(pg.h, slots[g.A], slots[g.B], pg.r, uint64(idx))
			tables[idx] = m
			slots[g.C] = c0
		}
	}
	if pg.workers > 1 {
		pg.pool = newLevelPool(pg.workers, pg.span)
	}
	return pg
}

// Close releases the worker pool (a no-op for sequential runners).
func (pg *PlanGarbler) Close() {
	if pg.pool != nil {
		pg.pool.close()
		pg.pool = nil
	}
}

// Begin starts a run: it draws the FreeXOR offset and the input labels,
// consuming src exactly as the dense garblers do.
func (pg *PlanGarbler) Begin(src *label.Source) {
	pg.r = src.NextDelta()
	for i := range pg.inputZeros {
		l := src.Next()
		pg.slots[i] = l // inputs are renamed to themselves
		pg.inputZeros[i] = l
	}
	pg.began = true
}

// R returns the FreeXOR offset of the current run.
func (pg *PlanGarbler) R() label.L { return pg.r }

// InputZeros returns the zero-labels of all input-like wires for the
// current run. The slice is reused by the next Begin.
func (pg *PlanGarbler) InputZeros() []label.L { return pg.inputZeros }

// Run garbles the whole plan level by level, invoking emit (if non-nil)
// with successive gate-order table chunks as levels complete, exactly
// like LevelGarbler.Run. Begin must be called before each Run.
func (pg *PlanGarbler) Run(emit func(tables []Material) error) (*Garbled, error) {
	if !pg.began {
		return nil, fmt.Errorf("gc: PlanGarbler.Run without Begin")
	}
	pg.began = false
	sched, gates, slots, r := pg.p.Schedule, pg.p.Gates, pg.slots, pg.r

	sent := 0
	for k := 0; k < sched.NumLevels(); k++ {
		for _, gi := range sched.Free[k] {
			g := &gates[gi]
			if g.Op == circuit.XOR {
				slots[g.C] = slots[g.A].Xor(slots[g.B])
			} else { // INV
				slots[g.C] = slots[g.A].Xor(r)
			}
		}
		if and := sched.AND[k]; len(and) > 0 {
			if pg.pool != nil && len(and) >= minParallelLevel {
				pg.pool.run(and)
			} else {
				pg.span(and)
			}
		}
		if emit != nil {
			if ready := sched.EmitReady[k]; ready > sent {
				if err := emit(pg.tables[sent:ready]); err != nil {
					return nil, fmt.Errorf("gc: emitting tables: %w", err)
				}
				sent = ready
			}
		}
	}

	for i, s := range pg.p.OutputSlots {
		pg.outs[i] = slots[s]
	}
	pg.g = Garbled{R: r, InputZeros: pg.inputZeros, Tables: pg.tables, OutputZeros: pg.outs}
	return &pg.g, nil
}

// GarblePlan garbles a plan sequentially in one shot — the plan-based
// counterpart of Garble. For steady-state reuse hold a PlanGarbler
// instead.
func GarblePlan(p *circuit.Plan, h Hasher, src *label.Source) (*Garbled, error) {
	pg := NewPlanGarbler(p, h, 1)
	pg.Begin(src)
	return pg.Run(nil)
}

// ParallelGarblePlan garbles a plan with a worker pool in one shot — the
// plan-based counterpart of ParallelGarble.
func ParallelGarblePlan(p *circuit.Plan, h Hasher, src *label.Source, workers int) (*Garbled, error) {
	pg := NewPlanGarbler(p, h, workers)
	defer pg.Close()
	pg.Begin(src)
	return pg.Run(nil)
}

// PlanEvaluator evaluates a precompiled plan repeatedly with zero
// steady-state allocations. Not safe for concurrent use; share the Plan
// and give each goroutine its own runner. The output-label slice
// returned by Eval/EvalStream is reused by the next run.
type PlanEvaluator struct {
	p       *circuit.Plan
	h       Hasher
	workers int
	pool    *levelPool
	span    func(gates []int32)
	slots   []label.L
	outs    []label.L
	tables  []Material
}

// NewPlanEvaluator builds a reusable evaluator for the plan. workers
// follows the engine convention; Close releases a parallel pool.
func NewPlanEvaluator(p *circuit.Plan, h Hasher, workers int) *PlanEvaluator {
	pe := &PlanEvaluator{
		p:       p,
		h:       h,
		workers: clampWorkers(workers),
		slots:   make([]label.L, p.NumSlots),
		outs:    make([]label.L, len(p.Circuit.Outputs)),
	}
	pe.span = func(gates []int32) {
		sched, slots, tables := pe.p.Schedule, pe.slots, pe.tables
		for _, gi := range gates {
			g := &pe.p.Gates[gi]
			idx := sched.ANDIndex[gi]
			slots[g.C] = evalAND(pe.h, slots[g.A], slots[g.B], tables[idx], uint64(idx))
		}
	}
	if pe.workers > 1 {
		pe.pool = newLevelPool(pe.workers, pe.span)
	}
	return pe
}

// Close releases the worker pool (a no-op for sequential runners).
func (pe *PlanEvaluator) Close() {
	if pe.pool != nil {
		pe.pool.close()
		pe.pool = nil
	}
}

// Eval runs the evaluator over the full table stream, producing output
// labels identical to Evaluate on the dense path.
func (pe *PlanEvaluator) Eval(inputs []label.L, tables []Material) ([]label.L, error) {
	if len(tables) != pe.p.Schedule.NumAND {
		return nil, fmt.Errorf("gc: %d tables provided, plan has %d AND gates",
			len(tables), pe.p.Schedule.NumAND)
	}
	return pe.EvalStream(inputs, func(int) ([]Material, error) { return tables, nil })
}

// EvalStream evaluates with tables arriving asynchronously under the
// ParallelEvalStream contract: before each AND level it calls need(n),
// which must block until the first n tables of the gate-order stream are
// final and return the stream so far.
func (pe *PlanEvaluator) EvalStream(inputs []label.L, need func(n int) ([]Material, error)) ([]label.L, error) {
	c := pe.p.Circuit
	if len(inputs) != c.NumInputs() {
		return nil, fmt.Errorf("gc: got %d input labels, want %d", len(inputs), c.NumInputs())
	}
	sched, gates, slots := pe.p.Schedule, pe.p.Gates, pe.slots
	copy(slots, inputs) // inputs are renamed to themselves

	for k := 0; k < sched.NumLevels(); k++ {
		for _, gi := range sched.Free[k] {
			g := &gates[gi]
			if g.Op == circuit.XOR {
				slots[g.C] = slots[g.A].Xor(slots[g.B])
			} else { // INV: evaluator keeps the active label
				slots[g.C] = slots[g.A]
			}
		}
		if and := sched.AND[k]; len(and) > 0 {
			t, err := need(sched.NeedTables[k])
			if err != nil {
				return nil, fmt.Errorf("gc: waiting for tables: %w", err)
			}
			if len(t) < sched.NeedTables[k] {
				return nil, fmt.Errorf("gc: table stream exhausted (have %d, level %d needs %d)",
					len(t), k+1, sched.NeedTables[k])
			}
			pe.tables = t
			if pe.pool != nil && len(and) >= minParallelLevel {
				pe.pool.run(and)
			} else {
				pe.span(and)
			}
		}
	}
	pe.tables = nil

	for i, s := range pe.p.OutputSlots {
		pe.outs[i] = slots[s]
	}
	return pe.outs, nil
}

// EvalPlan evaluates a plan sequentially in one shot — the plan-based
// counterpart of Evaluate. For steady-state reuse hold a PlanEvaluator.
func EvalPlan(p *circuit.Plan, h Hasher, inputs []label.L, tables []Material) ([]label.L, error) {
	return NewPlanEvaluator(p, h, 1).Eval(inputs, tables)
}

// ParallelEvalPlan evaluates a plan with a worker pool in one shot — the
// plan-based counterpart of ParallelEval.
func ParallelEvalPlan(p *circuit.Plan, h Hasher, inputs []label.L, tables []Material, workers int) ([]label.L, error) {
	pe := NewPlanEvaluator(p, h, workers)
	defer pe.Close()
	return pe.Eval(inputs, tables)
}
