package gc

import (
	"math/rand"
	"testing"

	"haac/internal/circuit"
	"haac/internal/label"
	"haac/internal/workloads"
)

// mustPlan builds a plan or fails the test.
func mustPlan(t *testing.T, c *circuit.Circuit) *circuit.Plan {
	t.Helper()
	p, err := circuit.NewPlan(c)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// checkPlanByteIdentity asserts the full dense-vs-planned contract on
// one circuit: identical Garbled (R, input zeros, tables, output zeros),
// identical output labels from evaluation, identical decoded bits —
// across sequential and parallel plan engines.
func checkPlanByteIdentity(t *testing.T, name string, c *circuit.Circuit, garbler, evaluator []bool, seed uint64) {
	t.Helper()
	h := RekeyedHasher{}
	p := mustPlan(t, c)

	want, err := Garble(c, h, label.NewSource(seed))
	if err != nil {
		t.Fatalf("%s: dense garble: %v", name, err)
	}
	got, err := GarblePlan(p, h, label.NewSource(seed))
	if err != nil {
		t.Fatalf("%s: plan garble: %v", name, err)
	}
	if err := equalGarbled(want, got); err != nil {
		t.Fatalf("%s: plan garble differs from dense: %v", name, err)
	}
	for _, workers := range []int{2, 4} {
		gotP, err := ParallelGarblePlan(p, h, label.NewSource(seed), workers)
		if err != nil {
			t.Fatalf("%s/w=%d: %v", name, workers, err)
		}
		if err := equalGarbled(want, gotP); err != nil {
			t.Fatalf("%s/w=%d: parallel plan garble differs: %v", name, workers, err)
		}
	}

	in, err := want.EncodeInputs(c, garbler, evaluator)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	seqOut, err := Evaluate(c, h, in, want.Tables)
	if err != nil {
		t.Fatalf("%s: dense eval: %v", name, err)
	}
	planOut, err := EvalPlan(p, h, in, want.Tables)
	if err != nil {
		t.Fatalf("%s: plan eval: %v", name, err)
	}
	if len(planOut) != len(seqOut) {
		t.Fatalf("%s: plan eval returned %d labels, want %d", name, len(planOut), len(seqOut))
	}
	for i := range seqOut {
		if planOut[i] != seqOut[i] {
			t.Fatalf("%s: output label %d differs between dense and planned eval", name, i)
		}
	}
	parOut, err := ParallelEvalPlan(p, h, in, want.Tables, 4)
	if err != nil {
		t.Fatalf("%s: parallel plan eval: %v", name, err)
	}
	for i := range seqOut {
		if parOut[i] != seqOut[i] {
			t.Fatalf("%s: output label %d differs under parallel plan eval", name, i)
		}
	}

	denseBits, err := want.Decode(seqOut)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	planBits, err := got.Decode(planOut)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for i := range denseBits {
		if planBits[i] != denseBits[i] {
			t.Fatalf("%s: decoded bit %d differs", name, i)
		}
	}
}

// TestPlanByteIdentityVIPSuite is the fixture half of the dense-vs-
// planned property: the full VIP suite, byte for byte, plus a peak-live
// sanity check on every workload.
func TestPlanByteIdentityVIPSuite(t *testing.T) {
	for _, w := range workloads.VIPSuiteSmall() {
		c := w.Build()
		g, e := w.Inputs(17)
		checkPlanByteIdentity(t, w.Name, c, g, e, 0xfeedface)

		p := mustPlan(t, c)
		if p.NumSlots >= c.NumWires {
			t.Errorf("%s: renaming did not compact (%d slots for %d wires)", w.Name, p.NumSlots, c.NumWires)
		}
	}
}

// TestPlanByteIdentityRandomCircuits is the randomized half: mixed
// AND/XOR/INV circuits with constants and shared fan-out, dense vs
// planned, byte for byte.
func TestPlanByteIdentityRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		c := circuit.RandomCircuit(rng)
		g := make([]bool, c.GarblerInputs)
		e := make([]bool, c.EvaluatorInputs)
		for i := range g {
			g[i] = rng.Intn(2) == 1
		}
		for i := range e {
			e[i] = rng.Intn(2) == 1
		}
		checkPlanByteIdentity(t, "random", c, g, e, uint64(trial)*2654435761+1)
	}
}

// TestPlanRunnerReuse exercises the steady-state path: one PlanGarbler /
// PlanEvaluator pair reused across runs with different seeds and inputs
// stays byte-identical to the dense engines on every run.
func TestPlanRunnerReuse(t *testing.T) {
	w := workloads.DotProduct(4, 16)
	c := w.Build()
	h := RekeyedHasher{}
	p := mustPlan(t, c)
	pg := NewPlanGarbler(p, h, 1)
	pe := NewPlanEvaluator(p, h, 1)

	for run := 0; run < 5; run++ {
		seed := uint64(1000 + run)
		g, e := w.Inputs(int64(run))

		want, err := Garble(c, h, label.NewSource(seed))
		if err != nil {
			t.Fatal(err)
		}
		pg.Begin(label.NewSource(seed))
		got, err := pg.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := equalGarbled(want, got); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}

		in, err := want.EncodeInputs(c, g, e)
		if err != nil {
			t.Fatal(err)
		}
		wantOut, err := Evaluate(c, h, in, want.Tables)
		if err != nil {
			t.Fatal(err)
		}
		gotOut, err := pe.Eval(in, got.Tables)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantOut {
			if gotOut[i] != wantOut[i] {
				t.Fatalf("run %d: output label %d differs", run, i)
			}
		}
	}
}

// TestPlanGarblerEmitChunks: the plan garbler's emit hook produces the
// same contiguous gate-order chunking contract as LevelGarbler.
func TestPlanGarblerEmitChunks(t *testing.T) {
	c := workloads.Hamming(128).Build()
	h := RekeyedHasher{}
	p := mustPlan(t, c)
	want, err := Garble(c, h, label.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Material
	chunks := 0
	pg := NewPlanGarbler(p, h, 4)
	defer pg.Close()
	pg.Begin(label.NewSource(5))
	got, err := pg.Run(func(tables []Material) error {
		streamed = append(streamed, tables...)
		chunks++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := equalGarbled(want, got); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(want.Tables) {
		t.Fatalf("streamed %d tables, want %d", len(streamed), len(want.Tables))
	}
	for i := range streamed {
		if streamed[i] != want.Tables[i] {
			t.Fatalf("streamed table %d differs", i)
		}
	}
	if chunks < 2 {
		t.Fatalf("expected level-by-level chunking, got %d chunk(s)", chunks)
	}
}

// TestPlanEvalStreamBlocking drives the plan evaluator through an
// incrementally released table stream, the pipelined-protocol shape.
func TestPlanEvalStreamBlocking(t *testing.T) {
	w := workloads.Mult32()
	c := w.Build()
	h := RekeyedHasher{}
	g, e := w.Inputs(3)
	want := w.Reference(g, e)
	p := mustPlan(t, c)

	garbled, err := Garble(c, h, label.NewSource(23))
	if err != nil {
		t.Fatal(err)
	}
	in, err := garbled.EncodeInputs(c, g, e)
	if err != nil {
		t.Fatal(err)
	}

	released := 0
	need := func(n int) ([]Material, error) {
		if n > released {
			released = n // synchronous feeder: release exactly what is needed
		}
		return garbled.Tables[:released], nil
	}
	pe := NewPlanEvaluator(p, h, 1)
	out, err := pe.EvalStream(in, need)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := garbled.Decode(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bit %d wrong", i)
		}
	}
}

// TestPlanEvalTableCountMismatch mirrors the dense engines' stream
// exhaustion errors.
func TestPlanEvalTableCountMismatch(t *testing.T) {
	w := workloads.Millionaire(8)
	c := w.Build()
	h := RekeyedHasher{}
	g, e := w.Inputs(1)
	p := mustPlan(t, c)
	garbled, err := Garble(c, h, label.NewSource(2))
	if err != nil {
		t.Fatal(err)
	}
	in, err := garbled.EncodeInputs(c, g, e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvalPlan(p, h, in, garbled.Tables[:len(garbled.Tables)-1]); err == nil {
		t.Fatal("short table stream accepted")
	}
	if _, err := EvalPlan(p, h, in, append(append([]Material{}, garbled.Tables...), Material{})); err == nil {
		t.Fatal("overlong table stream accepted")
	}
	if _, err := pgRunWithoutBegin(p, h); err == nil {
		t.Fatal("Run without Begin accepted")
	}
}

func pgRunWithoutBegin(p *circuit.Plan, h Hasher) (*Garbled, error) {
	return NewPlanGarbler(p, h, 1).Run(nil)
}

// TestPlanSteadyStateZeroAllocs is the acceptance criterion: plan-based
// sequential garble and eval of a precompiled circuit run with zero
// allocations per run once the runners and pools are warm.
func TestPlanSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	w := workloads.DotProduct(4, 16)
	c := w.Build()
	and, _, _ := c.CountOps()
	if and < 500 {
		t.Fatalf("workload too small to detect per-gate allocations (%d ANDs)", and)
	}
	h := RekeyedHasher{}
	p := mustPlan(t, c)

	pg := NewPlanGarbler(p, h, 1)
	src := label.NewSource(7)
	pg.Begin(src)
	garbled, err := pg.Run(nil) // warm pools
	if err != nil {
		t.Fatal(err)
	}
	g, e := w.Inputs(5)
	inputs, err := garbled.EncodeInputs(c, g, e)
	if err != nil {
		t.Fatal(err)
	}
	tables := append([]Material(nil), garbled.Tables...)

	garbleAllocs := testing.AllocsPerRun(20, func() {
		pg.Begin(src)
		if _, err := pg.Run(nil); err != nil {
			t.Fatal(err)
		}
	})
	if garbleAllocs != 0 {
		t.Fatalf("plan garble allocates %.1f times per run in steady state, want 0", garbleAllocs)
	}

	pe := NewPlanEvaluator(p, h, 1)
	if _, err := pe.Eval(inputs, tables); err != nil { // warm
		t.Fatal(err)
	}
	evalAllocs := testing.AllocsPerRun(20, func() {
		if _, err := pe.Eval(inputs, tables); err != nil {
			t.Fatal(err)
		}
	})
	if evalAllocs != 0 {
		t.Fatalf("plan eval allocates %.1f times per run in steady state, want 0", evalAllocs)
	}
}
