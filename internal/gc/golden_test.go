package gc

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"haac/internal/label"
	"haac/internal/workloads"
)

// Golden-vector regression tests for the half-gates scheme. The expected
// bytes were produced by the original straight-line implementation; any
// hasher batching or garbling-engine refactor that changes them has
// silently changed the scheme (and would break interop between parties
// running different builds).

var goldenA0 = label.L{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}
var goldenB0 = label.L{Lo: 0xdeadbeefcafebabe, Hi: 0x0f1e2d3c4b5a6978}
var goldenR = label.L{Lo: 0x1111111122222223, Hi: 0x8877665544332211} // colour bit set

var goldenFixedKey = [16]byte{0x5a, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}

// Per-gate vectors: garbleAND(a0, b0, r, j) -> (Material bytes, output
// zero-label) for both hasher constructions.
var goldenGates = []struct {
	hasher   string
	tweak    uint64
	material string // hex of Material.Bytes()
	c0       string // hex of the output zero-label
}{
	{"rekeyed", 0, "67ff741ce1cb44d83490d28f5a3fb8012550203b1f06aa9ded33ab7a0dec1a2f", "8e534e28af58ee2cac8939a11e176d72"},
	{"rekeyed", 7, "2e9f069c449038622d31d6c83558f00e712ad2ad32dfd59e9cbb0f0467879718", "ead1fb822f8bf6e04a4013ea148ec9ce"},
	{"rekeyed", 1 << 40, "bd91a9f4ddd66723a581fa4d723662f95657cba35a3e8b158d28445b0c26cbed", "81a58c4ac2adbe7d3bed537d5cc48c62"},
	{"fixed-key", 0, "0a1c702e93f344c9c3c0b3548ba9c924526e4ab450c37b8a3df01b4f9b38095f", "b17d3ecd0923f900b205d5b49db14e97"},
	{"fixed-key", 7, "29f9a703008bca649ad7b5d4ec53e9aafa43e2e90d3f7deb6e16d0e70c3c1400", "e8c4c84b4922e93a8ff3dfa632c02dd4"},
	{"fixed-key", 1 << 40, "1b09b99202d7f59daa367dc8fceee3c7f084fce55c4e7d099c87218f117f2a49", "c1c638dc34c46642542efe179366cd31"},
	// The T-table backend of the fixed-key construction must hit the
	// exact same vectors as the crypto/aes one.
	{"fixed-key-soft", 0, "0a1c702e93f344c9c3c0b3548ba9c924526e4ab450c37b8a3df01b4f9b38095f", "b17d3ecd0923f900b205d5b49db14e97"},
	{"fixed-key-soft", 7, "29f9a703008bca649ad7b5d4ec53e9aafa43e2e90d3f7deb6e16d0e70c3c1400", "e8c4c84b4922e93a8ff3dfa632c02dd4"},
	{"fixed-key-soft", 1 << 40, "1b09b99202d7f59daa367dc8fceee3c7f084fce55c4e7d099c87218f117f2a49", "c1c638dc34c46642542efe179366cd31"},
}

// Single-hash vectors: H(a0, 5) per construction.
var goldenHashes = map[string]string{
	"rekeyed":        "652aef2582ed43201fc2e2705c53ef98",
	"fixed-key":      "2bfee9a21d66345bb96660ec94d0f2c6",
	"fixed-key-soft": "2bfee9a21d66345bb96660ec94d0f2c6",
}

func goldenHasher(t *testing.T, name string) Hasher {
	t.Helper()
	switch name {
	case "rekeyed":
		return RekeyedHasher{}
	case "fixed-key":
		return NewFixedKeyHasher(goldenFixedKey)
	case "fixed-key-soft":
		return NewSoftFixedKeyHasher(goldenFixedKey)
	}
	t.Fatalf("unknown hasher %q", name)
	return nil
}

func TestGoldenHalfGateVectors(t *testing.T) {
	for _, g := range goldenGates {
		g := g
		t.Run(fmt.Sprintf("%s/j=%d", g.hasher, g.tweak), func(t *testing.T) {
			h := goldenHasher(t, g.hasher)
			m, c0 := garbleAND(h, goldenA0, goldenB0, goldenR, g.tweak)
			mb := m.Bytes()
			if got := hex.EncodeToString(mb[:]); got != g.material {
				t.Errorf("material = %s, golden %s", got, g.material)
			}
			if got := c0.String(); got != g.c0 {
				t.Errorf("c0 = %s, golden %s", got, g.c0)
			}
			// The material must still evaluate correctly, so the vector
			// check catches garble/eval drifting together too.
			if err := checkHalfGates(h, goldenA0, goldenB0, goldenR, g.tweak); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestGoldenHashVectors(t *testing.T) {
	for name, want := range goldenHashes {
		h := goldenHasher(t, name)
		if got := h.Hash(goldenA0, 5).String(); got != want {
			t.Errorf("%s: H(a0,5) = %s, golden %s", name, got, want)
		}
	}
}

// Whole-circuit digests: SHA-256 over the concatenated table stream of a
// deterministic garbling (seed 42). These pin down the table order, the
// tweak schedule and the label-source consumption order all at once.
var goldenDigests = []struct {
	workload string
	hasher   string
	tables   int
	sha      string
}{
	{"Hamm", "rekeyed", 120, "8b1f03ad92c57d6d338a7bd77020c154c260ce9ea82b60f0847db4145facb9ce"},
	{"Hamm", "fixed-key", 120, "97482c6cbfe95e99ab0e131c280e0278fd1fb0a843f117624342bb1a3a7764bd"},
	{"Mult-32", "rekeyed", 1024, "7411044a7acce581fb09ad0421f19d9a693145f804ca68fb7a026f63d061262e"},
	{"Mult-32", "fixed-key", 1024, "915789ae107deec9bab1f81681a6e0aa5d7abcd3009d04a2723262843f8943e3"},
}

const goldenDigestR = "956eeb2f2632d7bd03f166b233e3ef28"

func goldenWorkload(t *testing.T, name string) workloads.Workload {
	t.Helper()
	switch name {
	case "Hamm":
		return workloads.Hamming(64)
	case "Mult-32":
		return workloads.Mult32()
	}
	t.Fatalf("unknown workload %q", name)
	return workloads.Workload{}
}

func tableDigest(g *Garbled) string {
	sum := sha256.New()
	for _, m := range g.Tables {
		mb := m.Bytes()
		sum.Write(mb[:])
	}
	return hex.EncodeToString(sum.Sum(nil))
}

func TestGoldenCircuitDigests(t *testing.T) {
	// goldenFixedKey differs here on purpose: the digests were generated
	// with a single-byte key to also pin the key-schedule handling.
	fk := NewFixedKeyHasher([16]byte{0x5a})
	for _, g := range goldenDigests {
		g := g
		t.Run(g.workload+"/"+g.hasher, func(t *testing.T) {
			var h Hasher = fk
			if g.hasher == "rekeyed" {
				h = RekeyedHasher{}
			}
			c := goldenWorkload(t, g.workload).Build()
			garbled, err := Garble(c, h, label.NewSource(42))
			if err != nil {
				t.Fatal(err)
			}
			if len(garbled.Tables) != g.tables {
				t.Fatalf("got %d tables, golden %d", len(garbled.Tables), g.tables)
			}
			if got := garbled.R.String(); got != goldenDigestR {
				t.Errorf("R = %s, golden %s", got, goldenDigestR)
			}
			if got := tableDigest(garbled); got != g.sha {
				t.Errorf("table digest = %s, golden %s", got, g.sha)
			}
		})
	}
}
