package gc

// MaterialArena hands out Material slices carved from one backing slab.
// The level engines produce one table slice per dependence level; giving
// each level its own make() would put a GC allocation on the steady-state
// garbling path and scatter the stream across the heap. The arena keeps
// the whole gate-order stream contiguous — consecutive Alloc calls
// return adjacent views, so concatenating per-level slices is free — and
// Reset recycles the slab for engines that run many circuits.
type MaterialArena struct {
	slab []Material
	off  int
}

// NewMaterialArena returns an arena with room for n tables.
func NewMaterialArena(n int) *MaterialArena {
	return &MaterialArena{slab: make([]Material, n)}
}

// Alloc returns the next n-table view of the slab. Views from successive
// calls are adjacent and never overlap. If the slab is exhausted the
// arena grows (one allocation, not one per call).
func (a *MaterialArena) Alloc(n int) []Material {
	if a.off+n > len(a.slab) {
		grown := make([]Material, a.off+n)
		copy(grown, a.slab)
		a.slab = grown
	}
	v := a.slab[a.off : a.off+n : a.off+n]
	a.off += n
	return v
}

// Contiguous returns the single slice covering every Alloc so far, in
// allocation order — the full gate-order stream when one arena backs a
// whole circuit.
func (a *MaterialArena) Contiguous() []Material {
	return a.slab[:a.off]
}

// Reset recycles the slab: subsequent Allocs reuse the same memory.
func (a *MaterialArena) Reset() { a.off = 0 }
