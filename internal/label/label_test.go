package label

import (
	"testing"
	"testing/quick"
)

func TestXorProperties(t *testing.T) {
	identity := func(a L) bool { return a.Xor(Zero) == a }
	selfInverse := func(a L) bool { return a.Xor(a) == Zero }
	commutative := func(a, b L) bool { return a.Xor(b) == b.Xor(a) }
	associative := func(a, b, c L) bool { return a.Xor(b).Xor(c) == a.Xor(b.Xor(c)) }

	for name, f := range map[string]any{
		"identity": identity, "selfInverse": selfInverse,
		"commutative": commutative, "associative": associative,
	} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(a L) bool {
		b := a.Bytes()
		return FromBytes(b[:]) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPutMatchesBytes(t *testing.T) {
	f := func(a L) bool {
		var dst [Size]byte
		a.Put(dst[:])
		return dst == a.Bytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestColourIsLSB(t *testing.T) {
	if (L{Lo: 0}).Colour() != 0 || (L{Lo: 1}).Colour() != 1 {
		t.Fatal("colour bit is not the LSB of Lo")
	}
	f := func(a L) bool {
		b := a.Bytes()
		return a.Colour() == int(b[0]&1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeltaHasColourSet(t *testing.T) {
	for i := 0; i < 32; i++ {
		d, err := RandDelta()
		if err != nil {
			t.Fatal(err)
		}
		if d.Colour() != 1 {
			t.Fatal("RandDelta produced a label with colour 0")
		}
	}
}

func TestRandIsNotConstant(t *testing.T) {
	a, err := Rand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Rand()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("two crypto/rand labels were equal")
	}
}

func TestSourceDeterminism(t *testing.T) {
	s1 := NewSource(42)
	s2 := NewSource(42)
	for i := 0; i < 100; i++ {
		if s1.Next() != s2.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
	s3 := NewSource(43)
	if NewSource(42).Next() == s3.Next() {
		t.Fatal("different seeds produced the same first label")
	}
}

func TestSourceNextDeltaColour(t *testing.T) {
	s := NewSource(1)
	for i := 0; i < 64; i++ {
		if s.NextDelta().Colour() != 1 {
			t.Fatal("NextDelta colour bit not set")
		}
	}
}

func TestEncodeDecodeSliceRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 64, 1000} {
		src := NewSource(uint64(n) + 1)
		ls := make([]L, n)
		for i := range ls {
			ls[i] = src.Next()
		}
		buf := make([]byte, Size*n)
		if got := EncodeSlice(buf, ls); got != Size*n {
			t.Fatalf("n=%d: EncodeSlice wrote %d bytes, want %d", n, got, Size*n)
		}
		// Bulk encode must match per-label Put exactly.
		for i, l := range ls {
			var one [Size]byte
			l.Put(one[:])
			if string(buf[i*Size:(i+1)*Size]) != string(one[:]) {
				t.Fatalf("n=%d: EncodeSlice differs from Put at label %d", n, i)
			}
		}
		back := make([]L, n)
		if got := DecodeSlice(back, buf); got != Size*n {
			t.Fatalf("n=%d: DecodeSlice read %d bytes, want %d", n, got, Size*n)
		}
		for i := range ls {
			if back[i] != ls[i] {
				t.Fatalf("n=%d: round-trip mismatch at label %d", n, i)
			}
		}
	}
}

func TestXorSliceInto(t *testing.T) {
	src := NewSource(9)
	const n = 129
	a := make([]L, n)
	b := make([]L, n)
	for i := range a {
		a[i], b[i] = src.Next(), src.Next()
	}
	dst := make([]L, n)
	XorSliceInto(dst, a, b)
	for i := range dst {
		if dst[i] != a[i].Xor(b[i]) {
			t.Fatalf("XorSliceInto mismatch at %d", i)
		}
	}
	// Aliasing dst with a must behave like the scalar loop.
	XorSliceInto(a, a, b)
	for i := range a {
		if a[i] != dst[i] {
			t.Fatalf("aliased XorSliceInto mismatch at %d", i)
		}
	}
}

func TestBulkCodecNoAllocs(t *testing.T) {
	const n = 512
	ls := make([]L, n)
	buf := make([]byte, Size*n)
	if avg := testing.AllocsPerRun(100, func() {
		EncodeSlice(buf, ls)
		DecodeSlice(ls, buf)
		XorSliceInto(ls, ls, ls)
	}); avg != 0 {
		t.Fatalf("bulk codec allocates %.1f times per run, want 0", avg)
	}
}

func TestStringLength(t *testing.T) {
	if got := len(Zero.String()); got != 32 {
		t.Fatalf("hex string length = %d, want 32", got)
	}
}
