// Package label implements the 128-bit wire labels used by garbled
// circuits. A label is the encrypted value carried on a wire: the garbler
// assigns two labels per wire (one per plaintext bit) and the evaluator
// only ever sees one of them.
//
// Labels follow the FreeXOR convention: the garbler picks a global secret
// offset R and sets W1 = W0 XOR R for every wire, which lets XOR gates be
// evaluated with a plain label XOR and no garbled table. The least
// significant bit of R is forced to 1 so the two labels of a wire always
// differ in their colour (point-and-permute) bit.
package label

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
)

// Size is the byte length of a wire label (128 bits).
const Size = 16

// L is a 128-bit wire label. The two halves are stored as native uint64s
// so XOR and comparison compile to a handful of instructions; Lo holds the
// little-endian first 8 bytes of the serialized form.
type L struct {
	Lo, Hi uint64
}

// Zero is the all-zero label. It is the identity for XOR and also the
// label representation of public-constant-false under FreeXOR conventions.
var Zero = L{}

// Xor returns a ^ b.
func (a L) Xor(b L) L {
	return L{a.Lo ^ b.Lo, a.Hi ^ b.Hi}
}

// Colour returns the point-and-permute bit (LSB) of the label. Half-gate
// garbling uses it to select table rows without leaking the wire value.
func (a L) Colour() int {
	return int(a.Lo & 1)
}

// IsZero reports whether the label is all zero.
func (a L) IsZero() bool {
	return a.Lo == 0 && a.Hi == 0
}

// Bytes serializes the label as 16 little-endian bytes.
func (a L) Bytes() [Size]byte {
	var b [Size]byte
	binary.LittleEndian.PutUint64(b[0:8], a.Lo)
	binary.LittleEndian.PutUint64(b[8:16], a.Hi)
	return b
}

// Put writes the label into dst, which must be at least Size bytes.
func (a L) Put(dst []byte) {
	binary.LittleEndian.PutUint64(dst[0:8], a.Lo)
	binary.LittleEndian.PutUint64(dst[8:16], a.Hi)
}

// FromBytes deserializes a label from 16 little-endian bytes.
func FromBytes(b []byte) L {
	return L{
		Lo: binary.LittleEndian.Uint64(b[0:8]),
		Hi: binary.LittleEndian.Uint64(b[8:16]),
	}
}

// EncodeSlice serializes src into dst at 16-byte stride and returns the
// number of bytes written. dst must hold at least Size*len(src) bytes.
// This is the bulk form of Put used by the batched transport: one call
// encodes a whole level's labels into a single wire slab.
func EncodeSlice(dst []byte, src []L) int {
	_ = dst[:Size*len(src)] // one bounds check for the whole batch
	for i, l := range src {
		binary.LittleEndian.PutUint64(dst[i*Size:], l.Lo)
		binary.LittleEndian.PutUint64(dst[i*Size+8:], l.Hi)
	}
	return Size * len(src)
}

// DecodeSlice deserializes len(dst) labels from src at 16-byte stride and
// returns the number of bytes consumed. src must hold at least
// Size*len(dst) bytes.
func DecodeSlice(dst []L, src []byte) int {
	_ = src[:Size*len(dst)]
	for i := range dst {
		dst[i] = L{
			Lo: binary.LittleEndian.Uint64(src[i*Size:]),
			Hi: binary.LittleEndian.Uint64(src[i*Size+8:]),
		}
	}
	return Size * len(dst)
}

// XorSliceInto sets dst[i] = a[i] ^ b[i] for every i. All three slices
// must have the same length; dst may alias a or b.
func XorSliceInto(dst, a, b []L) {
	_ = a[:len(dst)]
	_ = b[:len(dst)]
	for i := range dst {
		dst[i] = L{Lo: a[i].Lo ^ b[i].Lo, Hi: a[i].Hi ^ b[i].Hi}
	}
}

// String renders the label as 32 hex digits (serialized byte order).
func (a L) String() string {
	b := a.Bytes()
	return fmt.Sprintf("%x", b[:])
}

// Rand returns a fresh uniformly random label using crypto/rand.
func Rand() (L, error) {
	var b [Size]byte
	if _, err := rand.Read(b[:]); err != nil {
		return L{}, fmt.Errorf("label: reading randomness: %w", err)
	}
	return FromBytes(b[:]), nil
}

// RandDelta returns a random FreeXOR offset R with the colour bit forced
// to 1, so that W and W^R always have opposite colours.
func RandDelta() (L, error) {
	r, err := Rand()
	if err != nil {
		return L{}, err
	}
	r.Lo |= 1
	return r, nil
}

// Source is a deterministic label generator seeded from a 64-bit value.
// It exists for tests and for the functional HAAC executor, where runs
// must be reproducible; it must not be used for real two-party execution.
// The generator is SplitMix64 applied independently to both halves.
type Source struct {
	state uint64
}

// NewSource returns a deterministic Source seeded with seed.
func NewSource(seed uint64) *Source {
	return &Source{state: seed}
}

func splitmix(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Next returns the next deterministic label.
func (s *Source) Next() L {
	return L{Lo: splitmix(&s.state), Hi: splitmix(&s.state)}
}

// NextDelta returns the next deterministic label with the colour bit set,
// suitable as a FreeXOR offset.
func (s *Source) NextDelta() L {
	l := s.Next()
	l.Lo |= 1
	return l
}

// State returns the source's current state without advancing it. A
// source reseeded with this value replays the draws that follow — the
// hook that lets a garbler re-emit a run's deterministic label stream
// when a broken transfer resumes.
func (s *Source) State() uint64 { return s.state }

// Reseed resets the source to a previously captured State (or any
// seed), so subsequent draws replay deterministically.
func (s *Source) Reseed(seed uint64) { s.state = seed }
