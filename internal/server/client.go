package server

import (
	"errors"
	"fmt"
	"io"
	"net"

	"haac/internal/circuit"
	"haac/internal/ot"
	"haac/internal/proto"
)

// Options configures the client side of a session.
type Options struct {
	// OT selects the oblivious-transfer protocol for the session's runs
	// (default ot.DH). The server honors the request.
	OT ot.Protocol
	// Workers is the evaluation engine width (0 or 1 = sequential).
	Workers int
	// Pipelined overlaps table transfer with evaluation (dense engine
	// only; ignored when Plan is set — the plan stream already consumes
	// tables level by level).
	Pipelined bool
	// Plan, when non-nil, must be compiled from the session's circuit;
	// the client then evaluates through a persistent plan runner with
	// zero steady-state allocations per run. Share one plan across every
	// session of the same circuit.
	Plan *circuit.Plan
	// Stats, when non-nil, accumulates the session's transport bytes.
	Stats *proto.Stats
}

// Session is a client (evaluator) session against a serving garbler.
// Run may be called any number of times; the session amortizes its
// transport buffers and evaluation engine across runs. Not safe for
// concurrent use — open one session per goroutine; the server
// multiplexes them.
type Session struct {
	conn     net.Conn
	rw       io.ReadWriter
	es       *proto.EvaluatorSession
	numSlots int
	frame    [1]byte
	closed   bool
}

// Dial connects to a serving garbler at addr and opens a session for
// the identified circuit. The client must hold a structurally identical
// circuit: its digest is checked during the handshake.
func Dial(addr, circuitID string, c *circuit.Circuit, opts Options) (*Session, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial: %w", err)
	}
	s, err := NewSession(conn, circuitID, c, opts)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return s, nil
}

// NewSession performs the session handshake over an existing connection
// and returns the ready session. On error the caller owns closing conn.
func NewSession(conn net.Conn, circuitID string, c *circuit.Circuit, opts Options) (*Session, error) {
	rw := proto.Instrument(conn, opts.Stats)
	if err := writeHello(rw, hello{ot: opts.OT, id: circuitID, digest: circuit.Digest(c)}); err != nil {
		return nil, err
	}
	numSlots, err := readReply(rw)
	if err != nil {
		return nil, err
	}
	es, err := proto.NewEvaluatorSession(rw, c, proto.Options{
		OT:        opts.OT,
		Workers:   opts.Workers,
		Pipelined: opts.Pipelined && opts.Plan == nil,
		Plan:      opts.Plan,
	})
	if err != nil {
		return nil, err
	}
	return &Session{conn: conn, rw: rw, es: es, numSlots: int(numSlots)}, nil
}

// NumSlots reports the slot-arena width of the server's plan for this
// circuit — evidence of the shared precompiled plan behind the session.
func (s *Session) NumSlots() int { return s.numSlots }

// Run executes one garbled run as the evaluator and returns the
// plaintext outputs. The returned slice is reused by the next Run. A
// server that is draining refuses with ErrDraining; a dead server
// surfaces ErrSessionClosed.
func (s *Session) Run(evalBits []bool) ([]bool, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	s.frame[0] = opRun
	if _, err := s.rw.Write(s.frame[:]); err != nil {
		return nil, s.fail(err)
	}
	if _, err := io.ReadFull(s.rw, s.frame[:]); err != nil {
		return nil, s.fail(err)
	}
	switch s.frame[0] {
	case ackGo:
	case ackDraining:
		s.shutdown()
		return nil, ErrDraining
	default:
		return nil, s.fail(fmt.Errorf("unexpected ack byte %d", s.frame[0]))
	}
	out, err := s.es.Run(evalBits)
	if err != nil {
		if errors.Is(err, proto.ErrPeerClosed) {
			return nil, s.fail(err)
		}
		s.shutdown()
		return nil, err
	}
	return out, nil
}

// Close says goodbye (best effort) and closes the connection.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.frame[0] = opBye
	s.rw.Write(s.frame[:])
	return s.shutdown()
}

// shutdown marks the session dead and closes its connection.
func (s *Session) shutdown() error {
	s.closed = true
	s.es.Close()
	return s.conn.Close()
}

// fail shuts the session down and wraps err as ErrSessionClosed.
func (s *Session) fail(err error) error {
	s.shutdown()
	return fmt.Errorf("%w: %v", ErrSessionClosed, err)
}
