package server

import (
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"syscall"
	"time"

	"haac/internal/circuit"
	"haac/internal/ot"
	"haac/internal/proto"
)

// RetryPolicy configures the client's self-healing behavior: how Dial
// retries the initial connection and how Session.Run transparently
// redials, re-handshakes and replays a run after a retryable failure.
//
// Replaying a run is safe because a run is a pure function of its
// inputs: the server garbles with fresh labels each attempt and commits
// no state until the run completes, so a replay is indistinguishable
// from a first attempt. The zero policy disables retry entirely — every
// failure surfaces immediately, exactly the pre-retry behavior.
type RetryPolicy struct {
	// MaxAttempts bounds the total attempts per operation (first try
	// included). 0 and 1 both mean "no retry".
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further
	// retry doubles it (capped at MaxBackoff). Default 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff. Default 2s.
	MaxBackoff time.Duration
	// Jitter is the fraction of each backoff randomized away (0..1),
	// de-synchronizing a fleet of clients redialing a restarted backend.
	// Default 0.2; negative disables jitter.
	Jitter float64
	// HandshakeTimeout bounds each redial's connect + hello + reply
	// exchange, so one stalled backend cannot absorb the whole retry
	// budget. 0 means no per-attempt deadline.
	HandshakeTimeout time.Duration
	// RunTimeout bounds each run attempt end to end. Corruption that
	// lands in a frame-length field can leave the client waiting for
	// payload bytes the server never sent while the server waits for
	// the next op — a deadline resolves that mutual stall into a
	// retryable timeout. 0 means no per-attempt deadline.
	RunTimeout time.Duration
	// Seed makes the jitter sequence deterministic when nonzero (tests);
	// zero seeds from the global source.
	Seed uint64
}

// enabled reports whether the policy retries at all.
func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// attempts returns the attempt bound (at least 1).
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the sleep before retry number n (n >= 1), with
// exponential growth, cap and jitter.
func (p RetryPolicy) backoff(n int, rng *rand.Rand) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.2
	}
	if jitter > 0 && rng != nil {
		if jitter > 1 {
			jitter = 1
		}
		d -= time.Duration(float64(d) * jitter * rng.Float64())
	}
	return d
}

// ClientStats counts a session's self-healing activity. Snapshot it
// with Session.Stats; the counters are owned by the session's goroutine
// (a Session is not safe for concurrent use, and neither is reading its
// stats mid-Run).
type ClientStats struct {
	// Runs counts completed runs, RunFailures runs that surfaced an
	// error to the caller after exhausting the retry budget.
	Runs, RunFailures uint64
	// Retries counts run attempts that failed retryably and were
	// replayed; Reconnects counts successful redial + re-handshake
	// cycles; DialFailures counts redial attempts that did not produce
	// a working session.
	Retries, Reconnects, DialFailures uint64
	// Resumes counts broken runs the server agreed to continue from the
	// last verified chunk instead of replaying in full (integrity tier);
	// Retries-Resumes is the full-replay count.
	Resumes uint64
	// IntegrityFailures counts checksummed frames this client rejected
	// on its inbound stream — corruption caught before it could become a
	// silent wrong output.
	IntegrityFailures uint64
	// PoolHits counts runs whose evaluator labels came out of the
	// session's precomputed OT pool; PoolMisses counts pooled-tier runs
	// that fell back to an on-demand OT; PoolRefills counts completed
	// refill exchanges (initial fills included).
	PoolHits, PoolMisses, PoolRefills uint64
}

// MetricsText renders the counters in Prometheus text exposition
// format, mirroring the server's /metrics so a client-side sidecar can
// export its half of the resilience story.
func (cs ClientStats) MetricsText() string {
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("haac_client_runs_total", "Runs completed by this session.", cs.Runs)
	counter("haac_client_run_failures_total", "Runs that failed after exhausting retries.", cs.RunFailures)
	counter("haac_client_run_retries_total", "Run attempts replayed after a retryable failure.", cs.Retries)
	counter("haac_client_reconnects_total", "Successful redial and re-handshake cycles.", cs.Reconnects)
	counter("haac_client_dial_failures_total", "Redial attempts that failed.", cs.DialFailures)
	counter("haac_client_run_resumes_total", "Broken runs resumed mid-stream instead of replayed in full.", cs.Resumes)
	counter("haac_client_integrity_failures_total", "Inbound checksummed frames rejected by the integrity tier.", cs.IntegrityFailures)
	counter("haac_client_pool_hits_total", "Runs served from the precomputed OT pool.", cs.PoolHits)
	counter("haac_client_pool_misses_total", "Pooled-tier runs that fell back to on-demand OT.", cs.PoolMisses)
	counter("haac_client_pool_refills_total", "Completed OT-pool refill exchanges.", cs.PoolRefills)
	return b.String()
}

// Options configures the client side of a session.
type Options struct {
	// OT selects the oblivious-transfer protocol for the session's runs
	// (default ot.DH). The server honors the request.
	OT ot.Protocol
	// Workers is the evaluation engine width (0 or 1 = sequential).
	Workers int
	// Pipelined overlaps table transfer with evaluation (dense engine
	// only; ignored when Plan is set — the plan stream already consumes
	// tables level by level).
	Pipelined bool
	// Plan, when non-nil, must be compiled from the session's circuit;
	// the client then evaluates through a persistent plan runner with
	// zero steady-state allocations per run. Share one plan across every
	// session of the same circuit.
	Plan *circuit.Plan
	// Stats, when non-nil, accumulates the session's transport bytes.
	Stats *proto.Stats
	// Retry is the self-healing policy: with MaxAttempts > 1, Dial
	// retries the initial connection and Run transparently redials,
	// re-handshakes (digest re-verified by the server) and replays the
	// run after drops, resets, deadline expiries and malformed frames.
	Retry RetryPolicy
	// Dialer overrides how (re)connections are opened — tests route it
	// through a fault-injecting transport, proxies through their own
	// resolver. nil means net.Dial("tcp", addr).
	Dialer func(addr string) (net.Conn, error)
	// TLS, when non-nil, wraps every (re)dialed connection in a TLS
	// client handshake against a server running with Config.TLS. The
	// config needs ServerName (or InsecureSkipVerify) set by the caller;
	// it composes with Dialer — the TLS layer wraps whatever transport
	// the dialer returns. nil keeps the plaintext default.
	TLS *tls.Config
	// Integrity requests the checksummed-frame wire tier: every
	// post-handshake byte travels in length+CRC32C frames, corruption
	// surfaces as a typed retryable error instead of a garbage decode,
	// and broken runs resume from the last verified chunk instead of
	// replaying. A server that does not speak the tier (or disables it)
	// declines during the handshake and the session falls back to the
	// legacy wire — check Session.Integrity for the negotiated outcome.
	Integrity bool
	// MaxRunBytes, when positive, bounds the bytes this client will move
	// for a single run; a breach surfaces as a permanent ErrOverBudget.
	// Mirrors the server-side Config.MaxRunBytes on the client's half of
	// the transfer.
	MaxRunBytes int64
	// PoolSize, when positive, requests the precomputed-OT session tier:
	// the session keeps a pool of about this many random-OT correlations,
	// filled synchronously at (re)connect and topped up in the background
	// between runs, so a steady-state Run's online OT is one XOR round
	// with no base OTs. A run that finds the pool short of its demand
	// falls back to the on-demand protocol for that run (a PoolMiss). A
	// server that declines the tier accepts the session unpooled —
	// check Session.Pooled for the negotiated outcome.
	PoolSize int
	// PoolRefill is the background refill chunk (correlations per
	// opRefill). Default PoolSize/4, minimum 1; larger chunks amortize
	// the refill round trips, smaller ones shorten the wire lock a
	// concurrent Run may wait on.
	PoolRefill int
	// PoolBase is the base-OT protocol seeding pool fills: ot.DH
	// (default) or ot.Insecure (needs the server's AllowInsecureOT).
	PoolBase ot.Protocol
}

// poolTarget/poolChunk resolve the pool sizing defaults; Options.PoolBase
// needs no resolver — its zero value is already ot.DH.
func (o Options) poolTarget() int { return o.PoolSize }

func (o Options) poolChunk() int {
	if o.PoolRefill > 0 {
		return o.PoolRefill
	}
	if c := o.PoolSize / 4; c > 0 {
		return c
	}
	return 1
}

// wireOT is the protocol byte the hello carries: ot.Pooled when the
// options ask for the pooled tier, the on-demand choice otherwise.
func (o Options) wireOT() ot.Protocol {
	if o.PoolSize > 0 {
		return ot.Pooled
	}
	return o.OT
}

// helloFlags encodes the option-negotiation bits of the client hello.
func helloFlags(o Options) uint8 {
	if o.Integrity {
		return helloFlagIntegrity
	}
	return 0
}

// clientPlans caches compiled plans for integrity sessions that did
// not bring their own. Mid-run resume replays evaluation over the plan
// runner's arena of verified tables, so the integrity tier implies the
// plan path; without this an Integrity session would negotiate
// checksummed frames but silently lose the resume half of the story.
var clientPlans = NewPlanCache(8)

// ensurePlan fills Options.Plan for integrity sessions, sharing
// compiled plans across sessions of the same circuit.
func (o *Options) ensurePlan(c *circuit.Circuit) error {
	if !o.Integrity || o.Plan != nil {
		return nil
	}
	d := circuit.Digest(c)
	// The pointer joins the key because a plan is only usable with the
	// exact circuit value it was compiled from.
	key := fmt.Sprintf("%x-%p", d[:8], c)
	p, err := clientPlans.Get(key, func() (*circuit.Plan, error) { return circuit.NewPlan(c) })
	if err != nil {
		return err
	}
	o.Plan = p
	return nil
}

// dial opens one connection via the configured dialer, wrapping it in
// TLS when configured.
func (o Options) dial(addr string) (net.Conn, error) {
	conn, err := o.dialRaw(addr)
	if err != nil {
		return nil, err
	}
	if o.TLS != nil {
		conn = tls.Client(conn, o.TLS)
	}
	return conn, nil
}

func (o Options) dialRaw(addr string) (net.Conn, error) {
	if o.Dialer != nil {
		return o.Dialer(addr)
	}
	return net.Dial("tcp", addr)
}

// Session is a client (evaluator) session against a serving garbler.
// Run may be called any number of times; the session amortizes its
// transport buffers and evaluation engine across runs, and — when
// Options.Retry is enabled and the session was opened with Dial —
// transparently reconnects and replays runs across backend restarts.
// Not safe for concurrent use — open one session per goroutine; the
// server multiplexes them.
type Session struct {
	conn     net.Conn
	rw       io.ReadWriter
	es       *proto.EvaluatorSession
	numSlots int
	frame    [1]byte
	closed   bool // Close was called: permanently done
	broken   bool // the connection failed: reconnectable under Retry

	// Integrity-tier state. fc and bb are reused across reconnects; the
	// grant is renegotiated on every handshake (a redial may land on a
	// backend with a different policy). runToken identifies the latest
	// attempt's server-side checkpoint — it is read fresh with every run
	// ack, so it always matches the evaluator's partial state.
	fc        *proto.FramedConn
	bb        *byteBudget
	integrity bool
	runToken  uint64
	hasToken  bool

	// Pooled-tier state. The pool is bound to the current connection's
	// base-OT exchange, so it is rebuilt from scratch on every
	// (re)connect; poolCapped remembers a server refusal so the session
	// stops asking. wireMu serializes the wire between Run/Close and the
	// background refill goroutine — it is the only concurrency a Session
	// supports; refilling (guarded by wireMu) keeps that goroutine
	// singleton.
	wireMu     sync.Mutex
	pooled     bool
	pool       *ot.Pool
	poolCapped bool
	refilling  bool

	// Reconnect state; addr == "" means the session was built over a
	// caller-owned conn (NewSession) and cannot redial.
	addr  string
	hello hello
	opts  Options
	rng   *rand.Rand
	stats ClientStats
}

// Dial connects to a serving garbler at addr and opens a session for
// the identified circuit, retrying per opts.Retry. The client must hold
// a structurally identical circuit: its digest is checked during the
// handshake on every (re)connection.
func Dial(addr, circuitID string, c *circuit.Circuit, opts Options) (*Session, error) {
	if err := opts.ensurePlan(c); err != nil {
		return nil, err
	}
	s := &Session{
		addr:  addr,
		hello: hello{ot: opts.wireOT(), flags: helloFlags(opts), id: circuitID, digest: circuit.Digest(c)},
		opts:  opts,
		rng:   newJitterRNG(opts.Retry.Seed),
	}
	for attempt := 1; ; attempt++ {
		conn, err := s.connect()
		if err == nil {
			if s.es == nil {
				es, err2 := proto.NewEvaluatorSession(s.rw, c, proto.Options{
					OT:        opts.OT,
					Workers:   opts.Workers,
					Pipelined: opts.Pipelined && opts.Plan == nil,
					Plan:      opts.Plan,
				})
				if err2 != nil {
					conn.Close()
					return nil, err2 // a local setup error; retrying cannot help
				}
				s.es = es
			} else {
				s.es.Reset(s.rw) // a prior attempt's initial fill failed
			}
			// The pooled tier pays its base OTs here, at dial time, so
			// the first Run is already served from the pool.
			if err = s.initialFill(conn); err == nil {
				s.conn = conn
				return s, nil
			}
			conn.Close()
		}
		if attempt >= opts.Retry.attempts() || !retryable(err) {
			if s.es != nil {
				s.es.Close()
			}
			return nil, err
		}
		time.Sleep(opts.Retry.backoff(attempt, s.rng))
	}
}

// NewSession performs the session handshake over an existing connection
// and returns the ready session. On error the caller owns closing conn.
// Sessions built this way cannot redial (the caller owns the
// transport), so Options.Retry is ignored — use Dial for self-healing
// sessions.
func NewSession(conn net.Conn, circuitID string, c *circuit.Circuit, opts Options) (*Session, error) {
	if err := opts.ensurePlan(c); err != nil {
		return nil, err
	}
	s := &Session{conn: conn, opts: opts}
	rw := proto.Instrument(conn, opts.Stats)
	if err := writeHello(rw, hello{ot: opts.wireOT(), flags: helloFlags(opts), id: circuitID, digest: circuit.Digest(c)}); err != nil {
		return nil, err
	}
	numSlots, granted, pooled, err := readReply(rw)
	if err != nil {
		return nil, err
	}
	s.rw = s.wireStack(rw, granted)
	s.pooled = pooled
	s.numSlots = int(numSlots)
	es, err := proto.NewEvaluatorSession(s.rw, c, proto.Options{
		OT:        opts.OT,
		Workers:   opts.Workers,
		Pipelined: opts.Pipelined && opts.Plan == nil,
		Plan:      opts.Plan,
	})
	if err != nil {
		return nil, err
	}
	s.es = es
	if err := s.initialFill(conn); err != nil {
		es.Close()
		return nil, err
	}
	return s, nil
}

// wireStack builds the post-handshake transport over the instrumented
// connection: the optional client-side run budget, then the checksummed
// frame codec when the server granted the integrity tier. The codec and
// budget objects are reused across reconnects so steady-state healing
// stays allocation-free.
func (s *Session) wireStack(rw io.ReadWriter, granted bool) io.ReadWriter {
	if s.opts.MaxRunBytes > 0 {
		if s.bb == nil {
			s.bb = &byteBudget{limit: s.opts.MaxRunBytes}
		}
		s.bb.inner = rw
		s.bb.reset()
		rw = s.bb
	}
	if granted {
		if s.fc == nil {
			s.fc = proto.NewFramedConn(rw)
		} else {
			s.fc.Reset(rw)
		}
		rw = s.fc
	}
	s.integrity = granted
	return rw
}

// newJitterRNG seeds the backoff jitter source.
func newJitterRNG(seed uint64) *rand.Rand {
	if seed == 0 {
		seed = uint64(time.Now().UnixNano()) | 1
	}
	return rand.New(rand.NewSource(int64(seed)))
}

// connect dials addr and completes the handshake, leaving s.rw bound to
// the new connection. The caller installs the returned conn.
func (s *Session) connect() (net.Conn, error) {
	conn, err := s.opts.dial(s.addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial: %w", err)
	}
	if d := s.opts.Retry.HandshakeTimeout; d > 0 {
		conn.SetDeadline(time.Now().Add(d))
	}
	rw := proto.Instrument(conn, s.opts.Stats)
	if err := writeHello(rw, s.hello); err != nil {
		conn.Close()
		return nil, err
	}
	numSlots, granted, pooled, err := readReply(rw)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if s.opts.Retry.HandshakeTimeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	s.rw = s.wireStack(rw, granted)
	// Pool state is per-connection: the old pool's correlations derive
	// from the old connection's base OTs and die with it.
	s.pooled = pooled
	s.pool = nil
	s.poolCapped = false
	s.numSlots = int(numSlots)
	return conn, nil
}

// reconnect replaces a broken connection: redial, re-handshake (the
// server re-verifies the circuit digest) and rebind the persistent
// evaluator runner to the new transport.
func (s *Session) reconnect() error {
	if s.conn != nil {
		s.conn.Close()
	}
	conn, err := s.connect()
	if err != nil {
		s.stats.DialFailures++
		return err
	}
	s.es.Reset(s.rw) // also detaches the dead connection's pool
	if err := s.initialFill(conn); err != nil {
		s.stats.DialFailures++
		conn.Close()
		return err
	}
	s.conn = conn
	s.broken = false
	s.stats.Reconnects++
	return nil
}

// initialFill seeds the pool synchronously right after a (re)connected
// pooled handshake, bounded by the handshake deadline: the connection's
// base OTs and first fill are paid at dial time, not inside a run.
func (s *Session) initialFill(conn net.Conn) error {
	if !s.pooled || s.opts.poolTarget() <= 0 {
		return nil
	}
	if d := s.opts.Retry.HandshakeTimeout; d > 0 {
		conn.SetDeadline(time.Now().Add(d))
		defer conn.SetDeadline(time.Time{})
	}
	return s.refillOnce(s.opts.poolTarget())
}

// refillOnce runs one opRefill exchange over the current connection,
// creating the receiver pool (and paying its base OTs) on first use. A
// server refusal (ackRefuse, or a clamped grant) caps the pool and
// returns nil — the session stays usable, it just stops asking for
// more.
func (s *Session) refillOnce(n int) error {
	if n <= 0 || s.poolCapped {
		return nil
	}
	var req [6]byte
	req[0] = opRefill
	req[1] = byte(s.opts.PoolBase)
	binary.LittleEndian.PutUint32(req[2:], uint32(n))
	if _, err := s.rw.Write(req[:]); err != nil {
		return fmt.Errorf("%w: %w", ErrSessionClosed, err)
	}
	if _, err := io.ReadFull(s.rw, s.frame[:]); err != nil {
		return fmt.Errorf("%w: %w", ErrSessionClosed, err)
	}
	switch s.frame[0] {
	case ackGo:
	case ackRefuse:
		s.poolCapped = true
		return nil
	case ackDraining:
		return ErrDraining
	default:
		return fmt.Errorf("%w: unexpected refill ack byte %d", ErrMalformedFrame, s.frame[0])
	}
	var g [4]byte
	if _, err := io.ReadFull(s.rw, g[:]); err != nil {
		return fmt.Errorf("%w: %w", ErrSessionClosed, err)
	}
	granted := int(binary.LittleEndian.Uint32(g[:]))
	if granted <= 0 || granted > n {
		return fmt.Errorf("%w: refill granted %d of %d", ErrMalformedFrame, granted, n)
	}
	if granted < n {
		s.poolCapped = true // the server clamped to its cap
	}
	if s.bb != nil {
		s.bb.reset()
	}
	if s.pool == nil {
		p, err := ot.NewReceiverPool(s.rw, s.opts.PoolBase)
		if err != nil {
			return err
		}
		s.pool = p
		s.es.SetPool(p)
	}
	if err := s.pool.Fill(s.rw, granted); err != nil {
		return err
	}
	s.stats.PoolRefills++
	return nil
}

// maybeRefill starts the background top-up when the pool has fallen
// below half its target. Called with wireMu held; the goroutine it
// spawns serializes with Run on wireMu, so refills only touch the wire
// between runs.
func (s *Session) maybeRefill() {
	if !s.pooled || s.pool == nil || s.poolCapped || s.refilling || s.broken || s.closed {
		return
	}
	if s.pool.Level() >= (s.opts.poolTarget()+1)/2 {
		return
	}
	s.refilling = true
	go s.refillLoop()
}

// refillLoop tops the pool back up to target, one chunk per wireMu
// acquisition so a concurrent Run slots in between chunks. A wire error
// breaks the connection; the next Run heals it, and the reconnect's
// initial fill rebuilds the pool from scratch.
func (s *Session) refillLoop() {
	for {
		s.wireMu.Lock()
		if s.closed || s.broken || s.poolCapped || s.pool == nil || s.pool.Level() >= s.opts.poolTarget() {
			s.refilling = false
			s.wireMu.Unlock()
			return
		}
		n := s.opts.poolTarget() - s.pool.Level()
		if c := s.opts.poolChunk(); n > c {
			n = c
		}
		if d := s.opts.Retry.RunTimeout; d > 0 && s.conn != nil {
			s.conn.SetDeadline(time.Now().Add(d))
		}
		err := s.refillOnce(n)
		if s.opts.Retry.RunTimeout > 0 && s.conn != nil {
			s.conn.SetDeadline(time.Time{})
		}
		if err != nil {
			s.breakConn()
			s.refilling = false
			s.wireMu.Unlock()
			return
		}
		s.wireMu.Unlock()
	}
}

// NumSlots reports the slot-arena width of the server's plan for this
// circuit — evidence of the shared precompiled plan behind the session.
func (s *Session) NumSlots() int { return s.numSlots }

// Stats returns a snapshot of the session's self-healing counters.
func (s *Session) Stats() ClientStats {
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	return s.stats
}

// Pooled reports whether the current connection negotiated the
// precomputed-OT session tier. Like Integrity, it can change across
// reconnects when a redial lands on a backend with a different policy.
func (s *Session) Pooled() bool {
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	return s.pooled
}

// PoolLevel reports the random-OT correlations currently banked for
// this session (0 when unpooled or before the first fill).
func (s *Session) PoolLevel() int {
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	if s.pool == nil {
		return 0
	}
	return s.pool.Level()
}

// Integrity reports whether the current connection negotiated the
// checksummed-frame wire tier. It can change across reconnects when a
// redial lands on a backend with a different policy.
func (s *Session) Integrity() bool { return s.integrity }

// retryable classifies an error as transport damage worth a fresh
// connection: peer drops and resets, expired deadlines, malformed or
// corrupted frames, a dead session, and admission refusals that a
// restarted or load-shed backend raises transiently (ErrBusy,
// ErrDraining — in a fleet the redial lands on a live backend), plus
// integrity-check failures (the data is damaged, not the server) and
// contained server panics (the poison was one session's). Handshake
// refusals that no retry can fix — unknown circuit, digest mismatch,
// version mismatch, bad request, over-budget — are permanent.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrUnknownCircuit) || errors.Is(err, ErrDigestMismatch) ||
		errors.Is(err, ErrBadVersion) || errors.Is(err, ErrBadRequest) ||
		errors.Is(err, ErrOverBudget) {
		return false
	}
	if errors.Is(err, proto.ErrPeerClosed) || errors.Is(err, proto.ErrDeadline) ||
		errors.Is(err, proto.ErrMalformedFrame) || errors.Is(err, ErrMalformedFrame) ||
		errors.Is(err, ErrSessionClosed) || errors.Is(err, ErrBusy) || errors.Is(err, ErrDraining) ||
		errors.Is(err, proto.ErrIntegrity) || errors.Is(err, ErrInternal) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// Run executes one garbled run as the evaluator and returns the
// plaintext outputs. The returned slice is reused by the next Run.
//
// Under Options.Retry a retryable failure — dropped connection, reset,
// deadline, malformed frame, busy/draining refusal — triggers redial,
// re-handshake and replay until the run completes or the attempt budget
// is spent; the final error then wraps both ErrSessionClosed and the
// last underlying cause. Without retry, a server that is draining
// refuses with ErrDraining and a dead connection surfaces
// ErrSessionClosed immediately.
func (s *Session) Run(evalBits []bool) ([]bool, error) {
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	policy := s.opts.Retry
	canHeal := policy.enabled() && s.addr != ""
	var lastErr error
	for attempt := 1; ; attempt++ {
		if s.broken {
			if !canHeal {
				s.stats.RunFailures++
				return nil, ErrSessionClosed
			}
			if err := s.reconnect(); err != nil {
				lastErr = err
				if attempt >= policy.attempts() || !retryable(err) {
					s.stats.RunFailures++
					return nil, fmt.Errorf("%w: reconnect failed after %d attempts: %w", ErrSessionClosed, attempt, lastErr)
				}
				time.Sleep(policy.backoff(attempt, s.rng))
				continue
			}
		}
		if d := policy.RunTimeout; d > 0 && s.conn != nil {
			s.conn.SetDeadline(time.Now().Add(d))
		}
		out, err := s.attemptOnce(evalBits)
		if policy.RunTimeout > 0 && s.conn != nil {
			s.conn.SetDeadline(time.Time{})
		}
		if err == nil {
			s.stats.Runs++
			s.maybeRefill()
			return out, nil
		}
		lastErr = err
		if errors.Is(err, proto.ErrIntegrity) {
			s.stats.IntegrityFailures++
		}
		if !canHeal || attempt >= policy.attempts() || !retryable(err) {
			s.stats.RunFailures++
			return nil, err
		}
		s.stats.Retries++
		time.Sleep(policy.backoff(attempt, s.rng))
	}
}

// attemptOnce plays one run attempt: a mid-stream resume when the
// previous attempt left a server checkpoint and verified chunks behind,
// a normal run otherwise. A declined resume falls through to a full
// replay on the same connection — the server answered the resume frame,
// so the stream is still in protocol.
func (s *Session) attemptOnce(evalBits []bool) ([]bool, error) {
	if s.integrity && s.hasToken {
		if got, ok := s.es.Progress(); ok {
			out, err := s.resumeOnce(got)
			if !errors.Is(err, errNoResume) {
				return out, err
			}
		}
	}
	return s.runOnce(evalBits)
}

// runOnce plays a single run attempt over the current connection.
func (s *Session) runOnce(evalBits []bool) ([]bool, error) {
	if s.bb != nil {
		s.bb.reset()
	}
	s.frame[0] = opRun
	if _, err := s.rw.Write(s.frame[:]); err != nil {
		return nil, s.fail(err)
	}
	if _, err := io.ReadFull(s.rw, s.frame[:]); err != nil {
		return nil, s.fail(err)
	}
	switch s.frame[0] {
	case ackGo:
	case ackDraining:
		s.breakConn()
		return nil, ErrDraining
	default:
		return nil, s.fail(fmt.Errorf("%w: unexpected ack byte %d", ErrMalformedFrame, s.frame[0]))
	}
	if s.integrity {
		// The integrity-tier ack carries the run's resume token: the
		// handle a later opResume presents to continue this exact run.
		var tok [8]byte
		if _, err := io.ReadFull(s.rw, tok[:]); err != nil {
			return nil, s.fail(err)
		}
		s.runToken = binary.LittleEndian.Uint64(tok[:])
		s.hasToken = true
	}
	lvl := 0
	if s.pool != nil {
		lvl = s.pool.Level()
	}
	out, err := s.es.Run(evalBits)
	if err != nil {
		// Whatever broke a run mid-protocol leaves the connection's
		// stream position unusable: mark it broken so the next attempt
		// reconnects instead of resyncing against garbage.
		if errors.Is(err, proto.ErrPeerClosed) {
			return nil, s.fail(err)
		}
		s.breakConn()
		return nil, err
	}
	if s.pooled {
		// A pooled-tier run either drew its labels from the pool (the
		// level dropped) or fell back to on-demand OT for this run.
		if s.pool != nil && s.pool.Level() < lvl {
			s.stats.PoolHits++
		} else {
			s.stats.PoolMisses++
		}
	}
	s.hasToken = false
	return out, nil
}

// errNoResume reports a declined opResume — the server no longer holds
// the checkpoint (restart or eviction). Package-private: callers fall
// back to a full replay, the error never escapes.
var errNoResume = errors.New("server: resume declined")

// resumeOnce asks the server to continue the broken run past the tables
// the evaluator already verified, so only the remainder crosses the
// wire again.
func (s *Session) resumeOnce(got int) ([]bool, error) {
	if s.bb != nil {
		s.bb.reset()
	}
	var req [17]byte
	req[0] = opResume
	binary.LittleEndian.PutUint64(req[1:], s.runToken)
	binary.LittleEndian.PutUint64(req[9:], uint64(got))
	if _, err := s.rw.Write(req[:]); err != nil {
		return nil, s.fail(err)
	}
	if _, err := io.ReadFull(s.rw, s.frame[:]); err != nil {
		return nil, s.fail(err)
	}
	switch s.frame[0] {
	case ackResume:
	case ackNoResume:
		s.hasToken = false
		return nil, errNoResume
	case ackDraining:
		s.breakConn()
		return nil, ErrDraining
	default:
		return nil, s.fail(fmt.Errorf("%w: unexpected resume ack byte %d", ErrMalformedFrame, s.frame[0]))
	}
	s.stats.Resumes++
	out, err := s.es.Resume()
	if err != nil {
		if errors.Is(err, proto.ErrPeerClosed) {
			return nil, s.fail(err)
		}
		s.breakConn()
		return nil, err
	}
	s.hasToken = false
	return out, nil
}

// Close says goodbye (best effort) and closes the connection. Closing a
// cleanly closed session again is a no-op; closing a session whose
// connection already failed returns ErrSessionClosed without touching
// the dead transport.
func (s *Session) Close() error {
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.broken {
		s.es.Close()
		return ErrSessionClosed
	}
	s.frame[0] = opBye
	s.rw.Write(s.frame[:])
	s.breakConn()
	s.es.Close()
	return nil
}

// breakConn marks the connection dead (reconnectable under Retry) and
// tears it down.
func (s *Session) breakConn() {
	s.broken = true
	if s.conn != nil {
		s.conn.Close()
	}
}

// fail breaks the connection and wraps err as ErrSessionClosed,
// preserving the cause for retry classification.
func (s *Session) fail(err error) error {
	s.breakConn()
	return fmt.Errorf("%w: %w", ErrSessionClosed, err)
}
