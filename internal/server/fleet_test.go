package server

import (
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"haac/internal/circuit"
	"haac/internal/ot"
	"haac/internal/workloads"
)

// stallAfterAck performs a full handshake and the opRun/ackGo exchange
// by hand, then goes silent — the adversarial client that used to pin
// Server.Close forever. Returns the connection so the caller controls
// its lifetime.
func stallAfterAck(t *testing.T, addr, id string, c *circuit.Circuit) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeHello(conn, hello{ot: ot.DH, id: id, digest: circuit.Digest(c)}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := readReply(conn); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{opRun}); err != nil {
		t.Fatal(err)
	}
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil || ack[0] != ackGo {
		t.Fatalf("ack = %v, %v", ack[0], err)
	}
	// The server is now mid-run: it streams labels and blocks in OT /
	// result reads that this client will never answer.
	return conn
}

// TestCloseForceClosesStalledMidRunClient is the drain-stall fix: a
// client that completes the handshake, requests a run and then goes
// silent mid-OT must not hang Server.Close — after DrainTimeout the
// session is force-closed and counted.
func TestCloseForceClosesStalledMidRunClient(t *testing.T) {
	w := workloads.AddN(8)
	c := w.Build()
	srv, addr := startServer(t, Config{
		Circuits:     []CircuitSpec{{ID: "add", Circuit: c}},
		Seed:         11,
		DrainTimeout: 200 * time.Millisecond,
	})
	conn := stallAfterAck(t, addr, "add", c)
	defer conn.Close()

	closed := make(chan struct{})
	start := time.Now()
	go func() { srv.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(15 * time.Second):
		t.Fatal("Close hung on a client stalled mid-run")
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("Close returned in %v, before the %v drain grace", elapsed, 200*time.Millisecond)
	}
	st := srv.Stats()
	if st.SessionsForceClosed != 1 {
		t.Errorf("SessionsForceClosed = %d, want 1", st.SessionsForceClosed)
	}
	if st.ActiveSessions != 0 {
		t.Errorf("ActiveSessions = %d after Close, want 0", st.ActiveSessions)
	}
}

// TestRunTimeoutUnsticksStalledClient: with a per-run deadline the
// session errors out on its own — no Close needed — and the failure is
// counted.
func TestRunTimeoutUnsticksStalledClient(t *testing.T) {
	w := workloads.AddN(8)
	c := w.Build()
	srv, addr := startServer(t, Config{
		Circuits:   []CircuitSpec{{ID: "add", Circuit: c}},
		Seed:       12,
		RunTimeout: 150 * time.Millisecond,
	})
	conn := stallAfterAck(t, addr, "add", c)
	defer conn.Close()

	deadline := time.Now().Add(15 * time.Second)
	for srv.Stats().ActiveSessions != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	st := srv.Stats()
	if st.ActiveSessions != 0 {
		t.Fatalf("stalled session still active after run deadline: %+v", st)
	}
	if st.RunsFailed != 1 {
		t.Errorf("RunsFailed = %d, want 1", st.RunsFailed)
	}
	if st.RunsServed != 0 {
		t.Errorf("RunsServed = %d, want 0", st.RunsServed)
	}
}

// TestMaxSessionsShedsExactlyExcess: with N sessions held open against
// a cap of N, the next connection is refused typed; freeing one slot
// re-admits.
func TestMaxSessionsShedsExactlyExcess(t *testing.T) {
	w := workloads.AddN(8)
	c := w.Build()
	g, _ := w.Inputs(1)
	const maxSess = 2
	srv, addr := startServer(t, Config{
		Circuits:        []CircuitSpec{{ID: "add", Circuit: c, Inputs: func() []bool { return g }}},
		Seed:            5,
		MaxSessions:     maxSess,
		AllowInsecureOT: true,
	})

	var held []*Session
	for i := 0; i < maxSess; i++ {
		sess, err := Dial(addr, "add", c, Options{OT: ot.Insecure})
		if err != nil {
			t.Fatalf("admitted dial %d: %v", i, err)
		}
		defer sess.Close()
		held = append(held, sess)
	}
	if _, err := Dial(addr, "add", c, Options{OT: ot.Insecure}); !errors.Is(err, ErrBusy) {
		t.Fatalf("over-cap dial: got %v, want ErrBusy", err)
	}
	if st := srv.Stats(); st.SessionsRefused != 1 {
		t.Fatalf("SessionsRefused = %d, want 1", st.SessionsRefused)
	}

	// Freeing a slot re-admits: close one session, wait for the server
	// to retire it, and dial again.
	held[0].Close()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().ActiveSessions >= maxSess && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	sess, err := Dial(addr, "add", c, Options{OT: ot.Insecure})
	if err != nil {
		t.Fatalf("dial after freeing a slot: %v", err)
	}
	defer sess.Close()
	_, e := w.Inputs(2)
	if _, err := sess.Run(e); err != nil {
		t.Fatalf("run on re-admitted session: %v", err)
	}
	if st := srv.Stats(); st.SessionsRefused != 1 {
		t.Errorf("SessionsRefused = %d after re-admission, want still 1", st.SessionsRefused)
	}
}

// transientErr satisfies net.Error with Timeout() true.
type transientErr struct{}

func (transientErr) Error() string   { return "accept: synthetic transient failure" }
func (transientErr) Timeout() bool   { return true }
func (transientErr) Temporary() bool { return true }

// flakyListener injects transient Accept errors before delegating.
type flakyListener struct {
	net.Listener
	failures atomic.Int32 // remaining injected failures
	attempts atomic.Int32
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.attempts.Add(1)
	if l.failures.Add(-1) >= 0 {
		return nil, transientErr{}
	}
	return l.Listener.Accept()
}

// TestServeSurvivesTransientAcceptErrors: a timeout/temporary Accept
// failure is retried with backoff instead of tearing down the listener;
// sessions dialed after the failures still serve.
func TestServeSurvivesTransientAcceptErrors(t *testing.T) {
	w := workloads.AddN(8)
	c := w.Build()
	g, _ := w.Inputs(1)
	srv, err := New(Config{
		Circuits:        []CircuitSpec{{ID: "add", Circuit: c, Inputs: func() []bool { return g }}},
		Seed:            6,
		AllowInsecureOT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := &flakyListener{Listener: tcp}
	ln.failures.Store(3)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sess, err := Dial(tcp.Addr().String(), "add", c, Options{OT: ot.Insecure})
	if err != nil {
		t.Fatalf("dial after injected accept failures: %v", err)
	}
	_, e := w.Inputs(3)
	if _, err := sess.Run(e); err != nil {
		t.Fatalf("run after injected accept failures: %v", err)
	}
	sess.Close()
	if n := ln.attempts.Load(); n < 4 {
		t.Fatalf("listener saw %d accepts, want >= 4 (3 failures + the session)", n)
	}
	if got := srv.Stats().AcceptRetries; got != 3 {
		t.Fatalf("Stats().AcceptRetries = %d, want 3 (one per injected transient failure)", got)
	}
	select {
	case err := <-done:
		t.Fatalf("Serve returned early with %v", err)
	default:
	}

	srv.Close()
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after Close", err)
	}
}

// TestInsecureOTPolicy: a remote peer cannot downgrade the session to
// the choice-revealing OT unless the operator opted in.
func TestInsecureOTPolicy(t *testing.T) {
	w := workloads.AddN(8)
	c := w.Build()
	g, _ := w.Inputs(1)
	_, addr := startServer(t, Config{
		Circuits: []CircuitSpec{{ID: "add", Circuit: c, Inputs: func() []bool { return g }}},
		Seed:     8,
	})
	if _, err := Dial(addr, "add", c, Options{OT: ot.Insecure}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("insecure OT against a default server: got %v, want ErrBadRequest", err)
	}
	// The secure protocols still work on the same server.
	sess, err := Dial(addr, "add", c, Options{OT: ot.DH})
	if err != nil {
		t.Fatalf("DH dial: %v", err)
	}
	defer sess.Close()
	_, e := w.Inputs(4)
	want, err := c.Eval(g, e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("output %d mismatch", j)
		}
	}
}

// TestRunLatencyCounters: completed runs accumulate wall-clock time.
func TestRunLatencyCounters(t *testing.T) {
	w := workloads.AddN(8)
	c := w.Build()
	g, _ := w.Inputs(1)
	srv, addr := startServer(t, Config{
		Circuits:        []CircuitSpec{{ID: "add", Circuit: c, Inputs: func() []bool { return g }}},
		Seed:            10,
		AllowInsecureOT: true,
	})
	sess, err := Dial(addr, "add", c, Options{OT: ot.Insecure})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	_, e := w.Inputs(2)
	for i := 0; i < 3; i++ {
		if _, err := sess.Run(e); err != nil {
			t.Fatal(err)
		}
	}
	// The client observes the result a hair before the server bumps its
	// counters, so poll.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().RunsServed != 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := srv.Stats()
	if st.RunsServed != 3 {
		t.Fatalf("RunsServed = %d, want 3", st.RunsServed)
	}
	if st.RunNanos == 0 {
		t.Fatal("RunNanos = 0 after 3 completed runs")
	}
}
