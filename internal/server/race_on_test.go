//go:build race

package server

// raceEnabled reports that the race detector is active: it defeats
// sync.Pool caching and instruments the runtime, so exact allocation
// counts are meaningless and the AllocsPerRun regression tests skip.
const raceEnabled = true
