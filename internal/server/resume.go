package server

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Mid-run resume: garbling is a pure function of the label-source state
// at the start of a run, so a broken transfer does not have to replay
// from scratch. Before each integrity-tier run the server checkpoints
// the run's seed under an opaque random token and sends the token with
// the ack; if the transfer breaks, the client redials, presents the
// token and the count of tables it already holds verified, and the
// garbler re-emits only the remainder. The seed itself never crosses
// the wire — it would reveal every label of the run — and tokens are
// unguessable 64-bit values from crypto/rand.

// maxResumeEntries bounds the checkpoint store; beyond it the oldest
// checkpoint is evicted (its run then replays in full — resume is an
// optimization, never a correctness requirement).
const maxResumeEntries = 1024

// resumeEntry is one checkpointed run.
type resumeEntry struct {
	id   string // circuit the run belongs to
	seed uint64 // label-source state the run garbled from
	and  int    // table count, bounding valid resume offsets
}

// resumeStore is a bounded token→checkpoint map with FIFO eviction.
// Safe for concurrent use; entries outlive the session that created
// them, because the resume arrives on a fresh connection.
type resumeStore struct {
	mu      sync.Mutex
	entries map[uint64]resumeEntry
	order   []uint64
}

func (rs *resumeStore) put(token uint64, e resumeEntry) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.entries == nil {
		rs.entries = make(map[uint64]resumeEntry)
	}
	for len(rs.entries) >= maxResumeEntries && len(rs.order) > 0 {
		oldest := rs.order[0]
		rs.order = rs.order[1:]
		delete(rs.entries, oldest)
	}
	rs.entries[token] = e
	rs.order = append(rs.order, token)
}

// get peeks a checkpoint without removing it: a resume that breaks
// mid-stream may be resumed again from a later offset.
func (rs *resumeStore) get(token uint64) (resumeEntry, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	e, ok := rs.entries[token]
	return e, ok
}

// drop discards a checkpoint once its run completed (the order queue is
// cleaned lazily by eviction).
func (rs *resumeStore) drop(token uint64) {
	rs.mu.Lock()
	delete(rs.entries, token)
	rs.mu.Unlock()
}

// newResumeToken draws an unguessable run token.
func newResumeToken() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("server: drawing resume token: %w", err)
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// byteBudget enforces Config.MaxRunBytes dynamically: it sits between
// the instrumented connection and the frame codec, charging every byte
// in both directions against the per-run limit. A breach surfaces as a
// typed ErrOverBudget from whatever protocol step crossed it — a
// permanent error, because replaying the same run meets the same
// budget.
type byteBudget struct {
	inner io.ReadWriter
	limit int64
	used  int64
}

// reset starts a new run's accounting.
func (b *byteBudget) reset() { b.used = 0 }

func (b *byteBudget) charge(n int) error {
	b.used += int64(n)
	if b.used > b.limit {
		return fmt.Errorf("%w: run transferred %d bytes, budget %d", ErrOverBudget, b.used, b.limit)
	}
	return nil
}

func (b *byteBudget) Read(p []byte) (int, error) {
	n, err := b.inner.Read(p)
	if cerr := b.charge(n); err == nil {
		err = cerr
	}
	return n, err
}

func (b *byteBudget) Write(p []byte) (int, error) {
	if err := b.charge(len(p)); err != nil {
		return 0, err
	}
	return b.inner.Write(p)
}
