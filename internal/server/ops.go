package server

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"
)

// Operations sidecar: a plain HTTP endpoint exporting the server's
// health and counters so a fleet scheduler can probe, scrape and drain
// haacd processes. It deliberately shares nothing with the binary 2PC
// listener — the session protocol stays byte-identical, and the ops
// port can be firewalled to the control plane.
//
//	GET /healthz  -> 200 "ok" while serving, 503 "draining" after Close
//	GET /readyz   -> 200 "ok" while routable, 503 "busy" at the session
//	                 cap, 503 "draining" after Close
//	GET /metrics  -> Prometheus text exposition of Stats + plan cache
//
// Metric names are stable: dashboards and the sharded fleet proxy key
// on them. /healthz is liveness (the process serves at all) and
// /readyz is routability: a server saturated at Config.MaxSessions is
// alive but would refuse the next session busy, so a fleet probe keyed
// on /readyz stops routing to it before a client pays the refusal.

// OpsHandler returns the HTTP handler serving /healthz, /readyz and
// /metrics. Use it directly to mount the endpoints into an existing
// mux; ServeOps runs it on its own listener.
func (s *Server) OpsHandler() http.Handler {
	plain := func(w http.ResponseWriter, code int, body string) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(code)
		fmt.Fprintln(w, body)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.isDraining() {
			plain(w, http.StatusServiceUnavailable, "draining")
			return
		}
		plain(w, http.StatusOK, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case s.isDraining():
			plain(w, http.StatusServiceUnavailable, "draining")
		case s.cfg.MaxSessions > 0 && s.active.Load() >= int64(s.cfg.MaxSessions):
			plain(w, http.StatusServiceUnavailable, "busy")
		default:
			plain(w, http.StatusOK, "ok")
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(s.metricsText()))
	})
	return mux
}

// ServeOps serves the operations endpoints on ln until the server
// closes; like Serve it returns nil after Close and the listener's
// error otherwise. Run it on a separate goroutine next to Serve. The
// listener registers through the same drain-aware lifecycle as the
// session listeners, so ServeOps never races Close over the draining
// flag or the listener set.
func (s *Server) ServeOps(ln net.Listener) error {
	if err := s.registerListener(ln); err != nil {
		return err
	}
	defer s.unregisterListener(ln)
	srv := &http.Server{Handler: s.OpsHandler(), ReadHeaderTimeout: 10 * time.Second}
	err := srv.Serve(ln)
	if s.isDraining() {
		return nil
	}
	return err
}

// metricsText renders the Prometheus text exposition of the counters.
func (s *Server) metricsText() string {
	st := s.Stats()
	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	gauge("haac_draining", "1 while the server is draining, 0 while serving.", b2f(s.isDraining()))
	gauge("haac_sessions_active", "Currently open 2PC sessions.", float64(st.ActiveSessions))
	counter("haac_sessions_total", "Sessions admitted since start.", float64(st.SessionsTotal))
	counter("haac_sessions_refused_total", "Connections refused at the MaxSessions admission gate.", float64(st.SessionsRefused))
	counter("haac_sessions_force_closed_total", "Sessions force-closed after the drain grace period.", float64(st.SessionsForceClosed))
	counter("haac_runs_total", "Garbled runs served to completion.", float64(st.RunsServed))
	counter("haac_runs_failed_total", "Runs that started but errored (dead peer, run deadline, protocol failure).", float64(st.RunsFailed))
	counter("haac_accept_retries_total", "Transient Accept errors retried with backoff instead of tearing down the listener.", float64(st.AcceptRetries))
	counter("haac_run_seconds_total", "Wall-clock seconds spent in completed runs; divide by haac_runs_total for mean latency.", time.Duration(st.RunNanos).Seconds())
	counter("haac_bytes_out_total", "Transport bytes sent across all sessions.", float64(st.BytesOut))
	counter("haac_bytes_in_total", "Transport bytes received across all sessions.", float64(st.BytesIn))
	counter("haac_plan_cache_hits_total", "Plan cache requests answered by a completed build.", float64(st.CacheHits))
	counter("haac_plan_cache_misses_total", "Plan cache requests that built, joined an in-flight build, or shared a failed one.", float64(st.CacheMisses))
	counter("haac_plan_cache_evictions_total", "Plans evicted by the LRU bound.", float64(st.CacheEvictions))
	counter("haac_integrity_failures_total", "Checksummed frames rejected on the server's inbound streams.", float64(st.IntegrityFailures))
	counter("haac_runs_resumed_total", "Broken runs continued from their last verified chunk instead of replayed.", float64(st.RunsResumed))
	counter("haac_sessions_panicked_total", "Sessions whose handler panicked and was contained without taking the server down.", float64(st.SessionsPanicked))
	counter("haac_sessions_over_budget_total", "Sessions refused at admission by the per-session resource budgets.", float64(st.SessionsOverBudget))
	counter("haac_runs_over_budget_total", "Runs aborted mid-transfer by the per-run byte budget.", float64(st.RunsOverBudget))
	counter("haac_pool_hits_total", "Pooled-tier runs served from a precomputed OT pool.", float64(st.PoolHits))
	counter("haac_pool_misses_total", "Pooled-tier runs that fell back to on-demand OT.", float64(st.PoolMisses))
	counter("haac_pool_refills_total", "Completed OT-pool refill fills across all sessions.", float64(st.PoolRefills))
	return b.String()
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
