package server

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"
)

// Operations sidecar: a plain HTTP endpoint exporting the server's
// health and counters so a fleet scheduler can probe, scrape and drain
// haacd processes. It deliberately shares nothing with the binary 2PC
// listener — the session protocol stays byte-identical, and the ops
// port can be firewalled to the control plane.
//
//	GET /healthz  -> 200 "ok" while serving, 503 "draining" after Close
//	GET /metrics  -> Prometheus text exposition of Stats + plan cache
//
// Metric names are stable: dashboards and the future sharded proxy key
// on them.

// OpsHandler returns the HTTP handler serving /healthz and /metrics.
// Use it directly to mount the endpoints into an existing mux; ServeOps
// runs it on its own listener.
func (s *Server) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.isDraining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(s.metricsText()))
	})
	return mux
}

// ServeOps serves the operations endpoints on ln until the server
// closes; like Serve it returns nil after Close and the listener's
// error otherwise. Run it on a separate goroutine next to Serve.
func (s *Server) ServeOps(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrDraining
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
		ln.Close()
	}()
	srv := &http.Server{Handler: s.OpsHandler(), ReadHeaderTimeout: 10 * time.Second}
	err := srv.Serve(ln)
	if s.isDraining() {
		return nil
	}
	return err
}

// metricsText renders the Prometheus text exposition of the counters.
func (s *Server) metricsText() string {
	st := s.Stats()
	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	gauge("haac_draining", "1 while the server is draining, 0 while serving.", b2f(s.isDraining()))
	gauge("haac_sessions_active", "Currently open 2PC sessions.", float64(st.ActiveSessions))
	counter("haac_sessions_total", "Sessions admitted since start.", float64(st.SessionsTotal))
	counter("haac_sessions_refused_total", "Connections refused at the MaxSessions admission gate.", float64(st.SessionsRefused))
	counter("haac_sessions_force_closed_total", "Sessions force-closed after the drain grace period.", float64(st.SessionsForceClosed))
	counter("haac_runs_total", "Garbled runs served to completion.", float64(st.RunsServed))
	counter("haac_runs_failed_total", "Runs that started but errored (dead peer, run deadline, protocol failure).", float64(st.RunsFailed))
	counter("haac_run_seconds_total", "Wall-clock seconds spent in completed runs; divide by haac_runs_total for mean latency.", time.Duration(st.RunNanos).Seconds())
	counter("haac_bytes_out_total", "Transport bytes sent across all sessions.", float64(st.BytesOut))
	counter("haac_bytes_in_total", "Transport bytes received across all sessions.", float64(st.BytesIn))
	counter("haac_plan_cache_hits_total", "Plan cache requests answered by a completed build.", float64(st.CacheHits))
	counter("haac_plan_cache_misses_total", "Plan cache requests that built, joined an in-flight build, or shared a failed one.", float64(st.CacheMisses))
	counter("haac_plan_cache_evictions_total", "Plans evicted by the LRU bound.", float64(st.CacheEvictions))
	return b.String()
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
