package server

import (
	"errors"
	"net"
	"testing"

	"haac/internal/builder"
	"haac/internal/circuit"
	"haac/internal/ot"
)

// pipeListener hands out pre-connected net.Pipe ends: the allocation
// test runs the real server accept/session machinery over a fully
// in-process transport, so the only mallocs measured are the serving
// layer's own.
type pipeListener struct {
	conns chan net.Conn
	done  chan struct{}
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Dial() (net.Conn, error) {
	client, srv := net.Pipe()
	select {
	case l.conns <- srv:
		return client, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	select {
	case <-l.done:
	default:
		close(l.done)
	}
	return nil
}

func (l *pipeListener) Addr() net.Addr {
	return &net.UnixAddr{Name: "pipe", Net: "pipe"}
}

// garblerOnlyMul is a circuit whose inputs all belong to the garbler,
// so runs need no OT — isolating the serving layer's own allocation
// behavior from public-key crypto, which inherently allocates.
func garblerOnlyMul(width int) *circuit.Circuit {
	b := builder.New()
	x := b.GarblerInputs(width)
	y := b.GarblerInputs(width)
	b.OutputWord(b.Mul(x, y))
	return b.MustBuild()
}

// TestServingZeroSteadyStateAllocs is the serving layer's allocation
// gate: with a precompiled plan on both ends, a steady-state run over
// an established session — op frame, ack, header, labels, level-
// streamed tables, decode bits, result — allocates nothing on either
// side. Race-gated because the detector defeats sync.Pool.
func TestServingZeroSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	c := garblerOnlyMul(16)
	and, _, _ := c.CountOps()
	if and < 200 {
		t.Fatalf("circuit too small to catch per-gate allocations (%d ANDs)", and)
	}
	g := make([]bool, c.GarblerInputs)
	for i := range g {
		g[i] = i%3 == 0
	}
	srv, err := New(Config{
		Circuits:        []CircuitSpec{{ID: "mul", Circuit: c, Inputs: func() []bool { return g }}},
		Seed:            21,
		AllowInsecureOT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln := newPipeListener()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	}()

	plan, err := circuit.NewPlan(c)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(conn, "mul", c, Options{OT: ot.Insecure, Plan: plan})
	if err != nil {
		conn.Close()
		t.Fatal(err)
	}
	defer sess.Close()

	want, err := c.Eval(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		out, err := sess.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatal("wrong output")
			}
		}
	}
	run() // warm pools and one-time lazies on both ends

	if avg := testing.AllocsPerRun(50, run); avg > 0 {
		t.Fatalf("serving run allocates %.2f times in steady state, want 0", avg)
	}
}

// TestPipeListenerClose covers the helper's refusal paths.
func TestPipeListenerClose(t *testing.T) {
	ln := newPipeListener()
	ln.Close()
	ln.Close() // idempotent
	if _, err := ln.Accept(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Accept after close: %v", err)
	}
	if _, err := ln.Dial(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Dial after close: %v", err)
	}
	if ln.Addr() == nil {
		t.Fatal("nil Addr")
	}
}
