// Package server is the concurrent 2PC serving layer: one process plays
// the garbler for many simultaneous evaluator connections, amortizing
// precompiled execution plans, garbling runners and transport buffers
// across sessions — the paper's setup-amortization premise applied at
// the fleet level instead of per connection.
//
// A session opens with a versioned handshake framed ahead of the
// protocol's existing byte-identical wire format:
//
//	client hello:  magic u32 ("HAAS") | version u8 | ot u8 | flags u8 |
//	               idLen u16 | circuit id | sha256 digest [32]
//	server reply:  status u8 | ok: numSlots u32
//	                         | err: msgLen u16 | message
//	per run:       op u8 (run/bye, client) | ack u8 (go/draining, server)
//	               | <proto run stream, unchanged>
//	pool refill:   op u8 (refill) | base u8 | n u32 LE (client)
//	               | ack u8 (go/refuse/draining, server)
//	               | go: granted u32 LE | <ot.Pool fill stream>
//
// A client that sets the hello's ot byte to ot.Pooled asks for the
// precomputed-OT session tier: the server accepts with statusOKPooled
// (or statusOKPooledIntegrity when the integrity flag is also granted)
// and the session gains the opRefill op, which runs one lockstep
// ot.Pool fill of n correlations using the requested base protocol.
// Runs then consume the pool when it holds enough correlations and fall
// back to an on-demand OT — chosen per run by the garbler via the run
// header's OT byte — when it does not.
//
// The digest binds the session to a structurally identical circuit on
// both sides (circuit.Digest), so a mismatched client fails typed at
// handshake instead of failing mid-protocol. Circuits resolve through a
// shared PlanCache: the first session of a circuit builds its plan
// (singleflight), later sessions share it, and per-circuit pools of
// proto.GarblerSession runners keep steady-state runs allocation-free
// under concurrency.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"haac/internal/ot"
)

const (
	helloMagic   = 0x53414148 // "HAAS" little-endian
	helloVersion = 1

	// helloFixedSize is the fixed prefix of the hello frame: magic u32 |
	// version u8 | ot u8 | flags u8 | idLen u16.
	helloFixedSize = 9

	// maxIDLen bounds circuit identifiers on the wire.
	maxIDLen = 1024

	// maxStatusMsgLen bounds the human-readable detail of a handshake
	// refusal. Every wire-controlled length is checked against its bound
	// before a byte is allocated, so a garbage frame can neither trigger
	// a huge allocation nor masquerade as a legitimate refusal.
	maxStatusMsgLen = 1024

	// helloFlagIntegrity requests the checksummed-frame wire tier in the
	// hello's flags byte. Legacy servers wrote the byte as zero and
	// ignored it on read, so an old client never requests integrity and
	// an old server silently declines it — negotiation costs no extra
	// round trip and the legacy wire stays byte-identical.
	helloFlagIntegrity = 0x01

	opRun = 1
	opBye = 2
	// opResume asks the server to resume the previous broken run from a
	// verified-chunk offset instead of replaying it; integrity tier only.
	// The frame is op u8 | token u64 | got u64 (the run token issued with
	// the ack and the count of tables the client holds verified).
	opResume = 3
	// opRefill asks the server to run one lockstep OT-pool fill; pooled
	// tier only. The frame is op u8 | base u8 (the ot.Protocol seeding
	// the pool's base OTs) | n u32 LE (correlations to add). The server
	// answers ackGo followed by granted u32 LE — the count both sides
	// then Fill in lockstep, clamped to Config.MaxPoolSize headroom — or
	// refuses with ackRefuse (bad base, zero n, or a pool already at its
	// cap), leaving the session usable.
	opRefill = 4

	ackGo       = 0
	ackDraining = 1
	// ackResume accepts an opResume: the garbler re-emits tables from
	// the offset. ackNoResume declines it (unknown or expired token);
	// the client falls back to a full replay on the same connection.
	ackResume   = 2
	ackNoResume = 3
	// ackRefuse declines an opRefill without ending the session: the
	// client keeps running (pooled when its level allows, on-demand
	// otherwise) but should stop asking for what was refused.
	ackRefuse = 4

	statusOK             = 0
	statusUnknownCircuit = 1
	statusDigestMismatch = 2
	statusBadVersion     = 3
	statusBadRequest     = 4
	statusDraining       = 5
	statusBusy           = 6
	// statusOKIntegrity accepts the session with the integrity tier
	// granted: same 5-byte accept frame as statusOK, and everything after
	// it travels in checksummed frames.
	statusOKIntegrity = 7
	// statusOverBudget refuses a session whose circuit or run would
	// exceed the server's per-session resource budgets.
	statusOverBudget = 8
	// statusInternal refuses a session whose setup raised a contained
	// panic.
	statusInternal = 9
	// statusOKPooled accepts a session that asked for ot.Pooled in its
	// hello: same 5-byte accept frame as statusOK, and the session gains
	// the opRefill op. statusOKPooledIntegrity additionally grants the
	// checksummed-frame tier (the pooled analogue of statusOKIntegrity).
	statusOKPooled          = 10
	statusOKPooledIntegrity = 11
)

// Typed session errors. Handshake failures map one status each;
// ErrMalformedFrame marks wire input that is structurally invalid
// (oversized length fields, unknown status bytes) — corruption or a
// peer that does not speak the protocol; ErrSessionClosed marks a
// session whose connection died (including the server force-closing
// idle sessions during shutdown) or that exhausted its retry budget.
var (
	ErrMalformedFrame = errors.New("server: malformed frame")
	ErrUnknownCircuit = errors.New("server: unknown circuit")
	ErrDigestMismatch = errors.New("server: circuit digest mismatch")
	ErrBadVersion     = errors.New("server: protocol version mismatch")
	ErrBadRequest     = errors.New("server: bad request")
	ErrDraining       = errors.New("server: draining")
	ErrBusy           = errors.New("server: session limit reached")
	ErrSessionClosed  = errors.New("server: session closed")
	// ErrOverBudget marks a session or run refused by the server's
	// per-session resource budgets (Config.MaxCircuitBytes,
	// Config.MaxRunBytes). Permanent: retrying the same circuit against
	// the same budget cannot succeed.
	ErrOverBudget = errors.New("server: over resource budget")
	// ErrInternal marks a session the server refused after containing a
	// panic in its handler. Retryable: the poison was this session's,
	// not the server's.
	ErrInternal = errors.New("server: internal error")
)

// hello is the decoded client handshake.
type hello struct {
	ot     ot.Protocol
	flags  uint8
	id     string
	digest [32]byte
}

// writeHello sends the client handshake frame.
func writeHello(w io.Writer, h hello) error {
	if h.id == "" || len(h.id) > maxIDLen {
		return fmt.Errorf("server: circuit id must be 1..%d bytes, got %d", maxIDLen, len(h.id))
	}
	buf := make([]byte, helloFixedSize+len(h.id)+32)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], helloMagic)
	buf[4] = helloVersion
	buf[5] = byte(h.ot)
	buf[6] = h.flags
	le.PutUint16(buf[7:], uint16(len(h.id)))
	copy(buf[helloFixedSize:], h.id)
	copy(buf[helloFixedSize+len(h.id):], h.digest[:])
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("server: sending hello: %w", err)
	}
	return nil
}

// readHello reads and validates the client handshake. A non-zero status
// (with a nil error) means the frame was structurally readable but must
// be refused; an error means the connection itself is unusable.
func readHello(r io.Reader) (h hello, status uint8, err error) {
	var fixed [helloFixedSize]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return h, 0, fmt.Errorf("server: reading hello: %w", err)
	}
	le := binary.LittleEndian
	if le.Uint32(fixed[0:]) != helloMagic {
		return h, statusBadRequest, nil
	}
	if fixed[4] != helloVersion {
		return h, statusBadVersion, nil
	}
	h.ot = ot.Protocol(fixed[5])
	h.flags = fixed[6]
	switch h.ot {
	case ot.DH, ot.Insecure, ot.IKNP, ot.Pooled:
	default:
		return h, statusBadRequest, nil
	}
	idLen := int(le.Uint16(fixed[7:]))
	if idLen == 0 || idLen > maxIDLen {
		return h, statusBadRequest, nil
	}
	rest := make([]byte, idLen+32)
	if _, err := io.ReadFull(r, rest); err != nil {
		return h, 0, fmt.Errorf("server: reading hello: %w", err)
	}
	h.id = string(rest[:idLen])
	copy(h.digest[:], rest[idLen:])
	return h, statusOK, nil
}

// okStatus reports whether a status byte accepts the session (all OK
// variants share the 5-byte accept frame).
func okStatus(status uint8) bool {
	switch status {
	case statusOK, statusOKIntegrity, statusOKPooled, statusOKPooledIntegrity:
		return true
	}
	return false
}

// writeReply sends the server's handshake verdict: numSlots on success,
// a status and message otherwise.
func writeReply(w io.Writer, status uint8, numSlots uint32, msg string) error {
	if okStatus(status) {
		var buf [5]byte
		buf[0] = status
		binary.LittleEndian.PutUint32(buf[1:], numSlots)
		_, err := w.Write(buf[:])
		return err
	}
	if len(msg) > maxStatusMsgLen {
		msg = msg[:maxStatusMsgLen]
	}
	buf := make([]byte, 3+len(msg))
	buf[0] = status
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(msg)))
	copy(buf[3:], msg)
	_, err := w.Write(buf)
	return err
}

// readReply consumes the server's handshake verdict, mapping refusal
// statuses to the package's typed errors. integrity reports whether the
// server granted the checksummed-frame wire tier; pooled whether it
// granted the precomputed-OT session tier.
func readReply(r io.Reader) (numSlots uint32, integrity, pooled bool, err error) {
	var b [5]byte
	if _, err := io.ReadFull(r, b[:1]); err != nil {
		return 0, false, false, fmt.Errorf("%w: reading handshake reply: %v", ErrSessionClosed, err)
	}
	if okStatus(b[0]) {
		if _, err := io.ReadFull(r, b[1:5]); err != nil {
			return 0, false, false, fmt.Errorf("%w: reading handshake reply: %v", ErrSessionClosed, err)
		}
		integrity = b[0] == statusOKIntegrity || b[0] == statusOKPooledIntegrity
		pooled = b[0] == statusOKPooled || b[0] == statusOKPooledIntegrity
		return binary.LittleEndian.Uint32(b[1:5]), integrity, pooled, nil
	}
	status := b[0]
	if _, err := io.ReadFull(r, b[1:3]); err != nil {
		return 0, false, false, fmt.Errorf("%w: reading handshake reply: %v", ErrSessionClosed, err)
	}
	// Bound the wire-controlled length before allocating: a corrupt or
	// hostile reply must not be able to demand an arbitrary buffer.
	msgLen := int(binary.LittleEndian.Uint16(b[1:3]))
	if msgLen > maxStatusMsgLen {
		return 0, false, false, fmt.Errorf("%w: refusal message length %d exceeds %d", ErrMalformedFrame, msgLen, maxStatusMsgLen)
	}
	msg := make([]byte, msgLen)
	if _, err := io.ReadFull(r, msg); err != nil {
		return 0, false, false, fmt.Errorf("%w: reading handshake reply: %v", ErrSessionClosed, err)
	}
	base := statusErr(status)
	if len(msg) > 0 {
		return 0, false, false, fmt.Errorf("%w: %s", base, msg)
	}
	return 0, false, false, base
}

// statusErr maps a refusal status byte to its sentinel error.
func statusErr(status uint8) error {
	switch status {
	case statusUnknownCircuit:
		return ErrUnknownCircuit
	case statusDigestMismatch:
		return ErrDigestMismatch
	case statusBadVersion:
		return ErrBadVersion
	case statusBadRequest:
		return ErrBadRequest
	case statusDraining:
		return ErrDraining
	case statusBusy:
		return ErrBusy
	case statusOverBudget:
		return ErrOverBudget
	case statusInternal:
		return ErrInternal
	}
	return fmt.Errorf("%w: handshake refused with unknown status %d", ErrMalformedFrame, status)
}

// statusMsg is the human-readable detail sent alongside a refusal.
func statusMsg(status uint8, id string) string {
	switch status {
	case statusUnknownCircuit:
		return fmt.Sprintf("no circuit registered as %q", id)
	case statusDigestMismatch:
		return fmt.Sprintf("digest does not match the registered circuit %q", id)
	case statusBadVersion:
		return fmt.Sprintf("server speaks handshake version %d", helloVersion)
	case statusDraining:
		return "server is draining"
	case statusBusy:
		return "server is at its session limit"
	case statusOverBudget:
		return fmt.Sprintf("circuit %q exceeds the server's resource budget", id)
	case statusInternal:
		return "internal error"
	}
	return ""
}
