package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"haac/internal/faultnet"
	"haac/internal/label"
	"haac/internal/ot"
	"haac/internal/workloads"
)

// Chaos suite: sessions run against a live server through a seeded
// fault-injecting dialer and must still produce outputs byte-identical
// to the plaintext oracle, healed by the client's redial/re-handshake/
// replay loop. Schedules are seeded so a failure replays; assertions
// are on outcomes (every run correct, faults observed, reconnects
// counted), not on op indices, because TCP read chunking shifts the
// roll sequence between runs.

// chaosRetry is the retry policy every chaos client runs under:
// generous attempt budget, millisecond backoff to keep tests fast, and
// a handshake deadline so a corrupted handshake reply (which can leave
// the client waiting for refusal-message bytes that never come) resolves
// into a retryable timeout instead of a hang.
func chaosRetry(seed uint64) RetryPolicy {
	return RetryPolicy{
		MaxAttempts:      200,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       8 * time.Millisecond,
		HandshakeTimeout: 250 * time.Millisecond,
		Seed:             seed,
	}
}

// TestChaosRunsHealByteIdentical: N sessions x M runs under several
// fault plans — random connection drops, stalls with chunked writes,
// drops and stalls together, bit corruption aimed at the handshake and
// run-header window — all complete with outputs identical to the
// fault-free oracle.
func TestChaosRunsHealByteIdentical(t *testing.T) {
	// corruptWindow bounds corruption to the client-inbound prefix that
	// the legacy wire's parsers actually validate: handshake reply (5) +
	// run ack (1) + run header (43). On the legacy wire, payload bytes
	// past it carry no integrity check, so corrupting them would
	// silently change outputs instead of being detected and healed.
	// TestIntegrityCorruptAnywhereHeals (robust_test.go) lifts this
	// restriction on the checksummed-frame tier, corrupting the whole
	// stream.
	const corruptWindow = 5 + 1 + 43

	scenarios := []struct {
		name           string
		plan           faultnet.Plan
		wantDrops      bool
		wantStalls     bool
		wantCorruption bool
	}{
		{
			name:      "drops",
			plan:      faultnet.Plan{Seed: 0xC0FFEE, DropRate: 0.05},
			wantDrops: true,
		},
		{
			name:       "stalls-chunked-writes",
			plan:       faultnet.Plan{Seed: 2, StallRate: 0.2, Stall: 100 * time.Microsecond, MaxWriteChunk: 7},
			wantStalls: true,
		},
		{
			name:      "drops-and-stalls-delayed-fin",
			plan:      faultnet.Plan{Seed: 3, DropRate: 0.04, StallRate: 0.1, Stall: 50 * time.Microsecond, FINDelay: 5 * time.Millisecond},
			wantDrops: true,
		},
		{
			name:           "corrupt-handshake-and-header",
			plan:           faultnet.Plan{Seed: 11, CorruptRate: 0.35, CorruptFirst: corruptWindow},
			wantCorruption: true,
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			w := workloads.AddN(16)
			c := w.Build()
			garblerBits, _ := w.Inputs(1)
			_, addr := startServer(t, Config{
				Circuits: []CircuitSpec{{
					ID:      w.Name,
					Circuit: c,
					Inputs:  func() []bool { return garblerBits },
				}},
				Seed:            21,
				AllowInsecureOT: true,
			})

			dialer := &faultnet.Dialer{Plan: sc.plan}
			const sessions = 4
			const runsPerSession = 6
			var wg sync.WaitGroup
			errc := make(chan error, sessions)
			statc := make(chan ClientStats, sessions)
			for i := 0; i < sessions; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					sess, err := Dial(addr, w.Name, c, Options{
						OT:     ot.Insecure,
						Retry:  chaosRetry(uint64(1000 + i)),
						Dialer: dialer.Dial,
					})
					if err != nil {
						errc <- fmt.Errorf("session %d: dial: %w", i, err)
						return
					}
					defer sess.Close()
					for run := 0; run < runsPerSession; run++ {
						_, evalBits := w.Inputs(int64(i*100 + run))
						want, err := c.Eval(garblerBits, evalBits)
						if err != nil {
							errc <- err
							return
						}
						got, err := sess.Run(evalBits)
						if err != nil {
							errc <- fmt.Errorf("session %d run %d: %w", i, run, err)
							return
						}
						for j := range want {
							if got[j] != want[j] {
								errc <- fmt.Errorf("session %d run %d: output %d = %v, want %v", i, run, j, got[j], want[j])
								return
							}
						}
					}
					statc <- sess.Stats()
				}(i)
			}
			wg.Wait()
			close(errc)
			close(statc)
			for err := range errc {
				t.Error(err)
			}
			if t.Failed() {
				return
			}

			var agg ClientStats
			for st := range statc {
				if st.Runs != runsPerSession {
					t.Errorf("session completed %d runs, want %d", st.Runs, runsPerSession)
				}
				if st.RunFailures != 0 {
					t.Errorf("session surfaced %d run failures under retry", st.RunFailures)
				}
				agg.Runs += st.Runs
				agg.Retries += st.Retries
				agg.Reconnects += st.Reconnects
				agg.DialFailures += st.DialFailures
			}
			faults := dialer.Stats()
			t.Logf("chaos %s: conns=%d drops=%d stalls=%d corruptions=%d reconnects=%d retries=%d dialFailures=%d",
				sc.name, faults.Conns.Load(), faults.Drops.Load(), faults.Stalls.Load(),
				faults.Corruptions.Load(), agg.Reconnects, agg.Retries, agg.DialFailures)

			// The plan must actually have injected its faults (else the
			// scenario proved nothing), and every drop-class fault must
			// have healed through a reconnect.
			if sc.wantDrops {
				if faults.Drops.Load() == 0 {
					t.Error("no drops injected; raise DropRate or the run count")
				}
				if agg.Reconnects == 0 {
					t.Error("drops injected but no session ever reconnected")
				}
			}
			if sc.wantStalls && faults.Stalls.Load() == 0 {
				t.Error("no stalls injected")
			}
			if sc.wantCorruption && faults.Corruptions.Load() == 0 {
				t.Error("no corruption injected")
			}
		})
	}
}

// TestMidOTDropFreesServerSlot: with a one-session server, a client
// whose connection is severed deterministically in the middle of the
// OT phase must be able to redial that same server — proof that the
// server tears the dead session down and releases its admission slot
// (redials that race the teardown are refused busy, which the retry
// policy absorbs).
func TestMidOTDropFreesServerSlot(t *testing.T) {
	w := workloads.AddN(16)
	c := w.Build()
	garblerBits, _ := w.Inputs(1)
	srv, addr := startServer(t, Config{
		Circuits: []CircuitSpec{{
			ID:      w.Name,
			Circuit: c,
			Inputs:  func() []bool { return garblerBits },
		}},
		Seed:            5,
		MaxSessions:     1,
		AllowInsecureOT: true,
	})

	// Sever the first connection on the first I/O op after the byte
	// total crosses into the OT phase: hello + reply + run op + ack +
	// run header + the garbler's active input labels all precede it.
	nFixed := c.GarblerInputs
	if c.HasConst {
		nFixed += 2
	}
	const helloLen = helloFixedSize + 32 // + id length, added below
	const replyLen = 5
	const runHeaderLen = 43 // proto run header (see internal/proto)
	preOT := helloLen + len(w.Name) + replyLen + 1 + 1 + runHeaderLen + nFixed*label.Size
	dialer := &faultnet.Dialer{
		Plan:     faultnet.Plan{Seed: 77, DropAfterBytes: int64(preOT) + 8},
		DropOnce: true, // only the first conn drops, so the redial heals
	}

	sess, err := Dial(addr, w.Name, c, Options{
		OT:     ot.Insecure,
		Retry:  chaosRetry(7),
		Dialer: dialer.Dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	for run := 0; run < 3; run++ {
		_, evalBits := w.Inputs(int64(10 + run))
		want, err := c.Eval(garblerBits, evalBits)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.Run(evalBits)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("run %d: output %d = %v, want %v", run, j, got[j], want[j])
			}
		}
	}

	st := sess.Stats()
	if dialer.Stats().Drops.Load() == 0 {
		t.Fatal("the mid-OT drop never fired; DropAfterBytes is past the session's traffic")
	}
	if st.Reconnects == 0 {
		t.Errorf("stats = %+v, want at least one reconnect", st)
	}
	if st.Runs != 3 {
		t.Errorf("runs completed = %d, want 3", st.Runs)
	}
	if got := srv.Stats().RunsFailed; got == 0 {
		t.Error("server counted no failed runs for the severed attempt")
	}

	// The healed session is the only admitted one; closing it drains the
	// server's active gauge to zero.
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().ActiveSessions != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Stats().ActiveSessions; got != 0 {
		t.Fatalf("active sessions = %d after close, want 0", got)
	}
}
