package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"haac/internal/ot"
)

// Relay helpers: the fleet front proxy terminates nothing — it reads
// each handshake frame once to decide where a session belongs, then
// forwards the exact bytes it consumed. These exported readers return
// both the decoded fields (for routing and failure classification) and
// the raw encoding (for forwarding), so the proxy never re-encodes a
// frame and the backend sees the client's bytes verbatim.

// HelloFrame is one decoded client hello together with its raw wire
// encoding, ready to be relayed to a backend.
type HelloFrame struct {
	// Raw is the hello exactly as it appeared on the wire.
	Raw []byte
	// OT is the requested oblivious-transfer protocol.
	OT ot.Protocol
	// ID is the circuit identifier.
	ID string
	// Digest is the circuit digest — the routing key of a digest-sharded
	// proxy.
	Digest [32]byte
}

// ReadHelloFrame reads and validates one client hello from r. A
// structurally refused hello (bad magic, unknown version, bad OT,
// oversized id) returns ErrBadRequest or ErrBadVersion — the connection
// is still writable, so the caller can answer with WriteRefusal. A
// short or dead read returns the underlying transport error.
func ReadHelloFrame(r io.Reader) (HelloFrame, error) {
	var hf HelloFrame
	var raw bytes.Buffer
	h, status, err := readHello(io.TeeReader(r, &raw))
	hf.Raw = raw.Bytes()
	if err != nil {
		return hf, err
	}
	switch status {
	case statusOK:
	case statusBadVersion:
		return hf, ErrBadVersion
	default:
		return hf, ErrBadRequest
	}
	hf.OT, hf.ID, hf.Digest = h.ot, h.id, h.digest
	return hf, nil
}

// ReplyFrame is one decoded server handshake reply together with its
// raw wire encoding, ready to be relayed to the client.
type ReplyFrame struct {
	// Raw is the reply exactly as it appeared on the wire.
	Raw []byte
	// NumSlots is the plan width on an accepting reply.
	NumSlots uint32
	// Integrity reports whether the backend granted the checksummed
	// frame tier. A relay forwards the raw reply verbatim, so the grant
	// — and every checksummed frame after it — traverses the proxy as
	// opaque spliced bytes.
	Integrity bool
	// Pooled reports whether the backend granted the precomputed-OT
	// session tier. Like integrity, the tier is end-to-end: refill ops
	// and derandomized transfers traverse a relay as spliced bytes.
	Pooled bool
	// Err is the typed refusal (ErrBusy, ErrDraining, ErrUnknownCircuit,
	// ErrDigestMismatch, ErrBadVersion, ErrBadRequest, ErrOverBudget,
	// ErrInternal) on a refusing reply, nil on an accepting one.
	Err error
}

// OK reports whether the backend accepted the session.
func (rf ReplyFrame) OK() bool { return rf.Err == nil }

// ReadReplyFrame reads one server handshake reply from r. Refusals are
// complete frames — they return with ReplyFrame.Err set and a nil
// error, because the refusal itself must be relayed. A reply that never
// arrived or was structurally invalid returns a non-nil error: there is
// no frame to forward, the backend connection is unusable.
func ReadReplyFrame(r io.Reader) (ReplyFrame, error) {
	var rf ReplyFrame
	var raw bytes.Buffer
	numSlots, integrity, pooled, err := readReply(io.TeeReader(r, &raw))
	rf.Raw = raw.Bytes()
	if err == nil {
		rf.NumSlots = numSlots
		rf.Integrity = integrity
		rf.Pooled = pooled
		return rf, nil
	}
	for _, refusal := range []error{
		ErrUnknownCircuit, ErrDigestMismatch, ErrBadVersion,
		ErrBadRequest, ErrDraining, ErrBusy, ErrOverBudget, ErrInternal,
	} {
		if errors.Is(err, refusal) {
			rf.Err = err
			return rf, nil
		}
	}
	return rf, err
}

// WriteRefusal sends the handshake refusal matching cause — a proxy
// refusing on the backends' behalf speaks the same frame a backend
// would. Unrecognized causes refuse as bad requests. msg overrides the
// status's default human-readable detail when non-empty.
func WriteRefusal(w io.Writer, cause error, msg string) error {
	status := uint8(statusBadRequest)
	for _, m := range []struct {
		err    error
		status uint8
	}{
		{ErrUnknownCircuit, statusUnknownCircuit},
		{ErrDigestMismatch, statusDigestMismatch},
		{ErrBadVersion, statusBadVersion},
		{ErrDraining, statusDraining},
		{ErrBusy, statusBusy},
		{ErrOverBudget, statusOverBudget},
		{ErrInternal, statusInternal},
	} {
		if errors.Is(cause, m.err) {
			status = m.status
			break
		}
	}
	if msg == "" {
		msg = statusMsg(status, "")
		if msg == "" {
			msg = fmt.Sprintf("refused: %v", cause)
		}
	}
	return writeReply(w, status, 0, msg)
}
