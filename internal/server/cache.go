package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"haac/internal/circuit"
)

// PlanCache is the shared, thread-safe cache of precompiled execution
// plans behind a server: the first session requesting a circuit builds
// its plan exactly once (singleflight — concurrent first requests block
// on the same build instead of duplicating it), later sessions share
// the immutable result, and an LRU bound keeps the resident plan set of
// a many-circuit server finite. Hit/miss/eviction counters expose the
// amortization the serving layer exists to deliver.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*planEntry
	lru     *list.List // front = most recently used *planEntry

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type planEntry struct {
	key  string
	elem *list.Element
	once sync.Once
	plan *circuit.Plan
	err  error
	// ready flips true once the build completed successfully. Only a
	// ready entry counts as a hit: a request that joins an in-flight (or
	// subsequently failing) singleflight build did not find a warm plan,
	// and hit/miss is the routing-quality signal a sharded proxy steers
	// by, so it must record a miss.
	ready atomic.Bool
}

// NewPlanCache returns a cache bounded to capacity entries (minimum 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		cap:     capacity,
		entries: make(map[string]*planEntry),
		lru:     list.New(),
	}
}

// Get returns the plan cached under key, building it with build on the
// first request of a residency. Concurrent callers of a missing key
// share one build; a failed build is not cached, so the next request
// retries. A request only counts as a hit when it finds a completed
// build — joining an in-flight singleflight build, or sharing a build
// that then fails, records a miss. Evicting a plan other sessions still
// execute is safe: plans are immutable, the evicted entry just stops
// being shared.
func (pc *PlanCache) Get(key string, build func() (*circuit.Plan, error)) (*circuit.Plan, error) {
	pc.mu.Lock()
	e, ok := pc.entries[key]
	if ok {
		pc.lru.MoveToFront(e.elem)
	} else {
		e = &planEntry{key: key}
		e.elem = pc.lru.PushFront(e)
		pc.entries[key] = e
		for len(pc.entries) > pc.cap {
			oldest := pc.lru.Back()
			old := oldest.Value.(*planEntry)
			pc.lru.Remove(oldest)
			delete(pc.entries, old.key)
			pc.evictions.Add(1)
		}
	}
	pc.mu.Unlock()

	if ok && e.ready.Load() {
		pc.hits.Add(1)
	} else {
		pc.misses.Add(1)
	}
	e.once.Do(func() {
		e.plan, e.err = build()
		if e.err == nil {
			e.ready.Store(true)
		}
	})
	if e.err != nil {
		pc.mu.Lock()
		if cur, ok := pc.entries[key]; ok && cur == e {
			pc.lru.Remove(e.elem)
			delete(pc.entries, key)
		}
		pc.mu.Unlock()
	}
	return e.plan, e.err
}

// Len returns the number of resident plans.
func (pc *PlanCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.entries)
}

// CacheCounters is a snapshot of the cache's hit/miss/eviction totals.
type CacheCounters struct {
	Hits, Misses, Evictions uint64
}

// Counters returns the current counter snapshot.
func (pc *PlanCache) Counters() CacheCounters {
	return CacheCounters{
		Hits:      pc.hits.Load(),
		Misses:    pc.misses.Load(),
		Evictions: pc.evictions.Load(),
	}
}
