package server

import (
	"fmt"
	"strings"
	"testing"

	"haac/internal/circuit"
	"haac/internal/faultnet"
	"haac/internal/ot"
	"haac/internal/workloads"
)

// oracleRuns drives runs through sess and fails on any divergence from
// the plaintext oracle.
func oracleRuns(t *testing.T, sess *Session, w workloads.Workload, c *circuit.Circuit, garblerBits []bool, runs int) {
	t.Helper()
	for run := 0; run < runs; run++ {
		_, evalBits := w.Inputs(int64(run))
		want, err := c.Eval(garblerBits, evalBits)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.Run(evalBits)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("run %d: output %d = %v, want %v", run, j, got[j], want[j])
			}
		}
	}
}

// TestPooledSessionServesFromPool is the tentpole's steady-state
// acceptance check at the serving layer: a session dialed with PoolSize
// pays its base OTs once at dial time, then every Run draws evaluator
// labels from the pool — zero base-OT rounds across the whole run
// window, every run a pool hit, outputs identical to the oracle.
func TestPooledSessionServesFromPool(t *testing.T) {
	w := workloads.DotProduct(3, 8)
	c := w.Build()
	garblerBits, _ := w.Inputs(1)
	srv, addr := startServer(t, Config{
		Circuits: []CircuitSpec{{ID: w.Name, Circuit: c, Inputs: func() []bool { return garblerBits }}},
		Seed:     7,
	})

	m := c.EvaluatorInputs
	const runs = 6
	// 2*runs*m leaves the pool at exactly half target after the last
	// run, so the background refill never triggers and the counters
	// below are deterministic.
	sess, err := Dial(addr, w.Name, c, Options{PoolSize: 2 * runs * m})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if !sess.Pooled() {
		t.Fatal("server did not grant the pooled tier")
	}
	if lvl := sess.PoolLevel(); lvl != 2*runs*m {
		t.Fatalf("pool level after dial = %d, want %d", lvl, 2*runs*m)
	}

	rounds := ot.BaseOTRounds()
	oracleRuns(t, sess, w, c, garblerBits, runs)
	if got := ot.BaseOTRounds() - rounds; got != 0 {
		t.Errorf("base-OT rounds during steady-state runs = %d, want 0", got)
	}
	cs := sess.Stats()
	if cs.PoolHits != runs || cs.PoolMisses != 0 || cs.PoolRefills != 1 {
		t.Errorf("client pool stats hits=%d misses=%d refills=%d, want %d/0/1",
			cs.PoolHits, cs.PoolMisses, cs.PoolRefills, runs)
	}
	if lvl := sess.PoolLevel(); lvl != runs*m {
		t.Errorf("pool level after %d runs = %d, want %d", runs, lvl, runs*m)
	}

	sess.Close()
	srv.Close()
	st := srv.Stats()
	if st.PoolHits != runs || st.PoolMisses != 0 || st.PoolRefills != 1 {
		t.Errorf("server pool stats hits=%d misses=%d refills=%d, want %d/0/1",
			st.PoolHits, st.PoolMisses, st.PoolRefills, runs)
	}
	metrics := srv.metricsText()
	for _, want := range []string{
		fmt.Sprintf("haac_pool_hits_total %d", runs),
		"haac_pool_misses_total 0",
		"haac_pool_refills_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestPooledSessionClampAndFallback: a server cap below one run's
// demand clamps the initial fill, the client stops asking (capped), and
// every run falls back to on-demand OT as a miss — correct outputs, no
// deadlock, the short pool never consumed.
func TestPooledSessionClampAndFallback(t *testing.T) {
	w := workloads.DotProduct(3, 8)
	c := w.Build()
	garblerBits, _ := w.Inputs(1)
	m := c.EvaluatorInputs
	srv, addr := startServer(t, Config{
		Circuits:    []CircuitSpec{{ID: w.Name, Circuit: c, Inputs: func() []bool { return garblerBits }}},
		Seed:        9,
		MaxPoolSize: m - 1, // one correlation short of a single run
	})

	const runs = 3
	sess, err := Dial(addr, w.Name, c, Options{PoolSize: 4 * m})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if !sess.Pooled() {
		t.Fatal("server did not grant the pooled tier")
	}
	if lvl := sess.PoolLevel(); lvl != m-1 {
		t.Fatalf("clamped pool level = %d, want %d", lvl, m-1)
	}
	oracleRuns(t, sess, w, c, garblerBits, runs)
	cs := sess.Stats()
	if cs.PoolHits != 0 || cs.PoolMisses != runs || cs.PoolRefills != 1 {
		t.Errorf("client pool stats hits=%d misses=%d refills=%d, want 0/%d/1",
			cs.PoolHits, cs.PoolMisses, cs.PoolRefills, runs)
	}
	if lvl := sess.PoolLevel(); lvl != m-1 {
		t.Errorf("short pool was consumed: level %d, want %d", lvl, m-1)
	}

	sess.Close()
	srv.Close()
	st := srv.Stats()
	if st.PoolHits != 0 || st.PoolMisses != runs {
		t.Errorf("server pool stats hits=%d misses=%d, want 0/%d", st.PoolHits, st.PoolMisses, runs)
	}
}

// TestPooledRefillRace drains the pool faster than one refill chunk
// restores it, so back-to-back runs race the background refill
// goroutine on the session wire. Every run must complete byte-identical
// (hit or miss, never a deadlock or a duplicated correlation), and both
// sides must agree on the hit/miss split.
func TestPooledRefillRace(t *testing.T) {
	w := workloads.DotProduct(3, 8)
	c := w.Build()
	garblerBits, _ := w.Inputs(1)
	m := c.EvaluatorInputs
	srv, addr := startServer(t, Config{
		Circuits: []CircuitSpec{{ID: w.Name, Circuit: c, Inputs: func() []bool { return garblerBits }}},
		Seed:     13,
	})

	const runs = 20
	sess, err := Dial(addr, w.Name, c, Options{PoolSize: 2 * m, PoolRefill: m})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	oracleRuns(t, sess, w, c, garblerBits, runs)
	cs := sess.Stats()
	if cs.PoolHits+cs.PoolMisses != runs {
		t.Errorf("hits+misses = %d+%d, want %d", cs.PoolHits, cs.PoolMisses, runs)
	}
	if cs.PoolHits == 0 {
		t.Error("no run ever hit the pool despite background refills")
	}
	if cs.PoolRefills < 2 {
		t.Errorf("refills = %d, want the background loop to have topped up", cs.PoolRefills)
	}
	t.Logf("refill race: hits=%d misses=%d refills=%d level=%d",
		cs.PoolHits, cs.PoolMisses, cs.PoolRefills, sess.PoolLevel())

	sess.Close()
	srv.Close()
	st := srv.Stats()
	if st.PoolHits != cs.PoolHits || st.PoolMisses != cs.PoolMisses {
		t.Errorf("server saw hits=%d misses=%d, client saw %d/%d — sides disagree",
			st.PoolHits, st.PoolMisses, cs.PoolHits, cs.PoolMisses)
	}
}

// TestPooledDeclinedFallsBack: a server running with DisablePooledOT
// accepts a pooled-requesting client unpooled; runs work on demand and
// no refill ever happens.
func TestPooledDeclinedFallsBack(t *testing.T) {
	w := workloads.DotProduct(3, 8)
	c := w.Build()
	garblerBits, _ := w.Inputs(1)
	srv, addr := startServer(t, Config{
		Circuits:        []CircuitSpec{{ID: w.Name, Circuit: c, Inputs: func() []bool { return garblerBits }}},
		Seed:            15,
		DisablePooledOT: true,
	})

	sess, err := Dial(addr, w.Name, c, Options{PoolSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Pooled() {
		t.Fatal("session reports pooled against a DisablePooledOT server")
	}
	if lvl := sess.PoolLevel(); lvl != 0 {
		t.Fatalf("unpooled session holds a pool of %d", lvl)
	}
	oracleRuns(t, sess, w, c, garblerBits, 3)
	cs := sess.Stats()
	if cs.PoolHits != 0 || cs.PoolMisses != 0 || cs.PoolRefills != 0 {
		t.Errorf("unpooled session counted pool activity: %+v", cs)
	}

	sess.Close()
	srv.Close()
	st := srv.Stats()
	if st.PoolHits != 0 || st.PoolMisses != 0 || st.PoolRefills != 0 {
		t.Errorf("server counted pool activity on a declined tier: hits=%d misses=%d refills=%d",
			st.PoolHits, st.PoolMisses, st.PoolRefills)
	}
}

// TestChaosPooledDropMidRefill aims a deterministic connection drop at
// the pool-fill byte window (base OTs + fill stream of the initial
// refill), then lets random drops loose on a pooled session. Both must
// heal through redial + re-handshake + fresh pool, with every run's
// output identical to the oracle.
func TestChaosPooledDropMidRefill(t *testing.T) {
	w := workloads.AddN(16)
	c := w.Build()
	garblerBits, _ := w.Inputs(1)

	t.Run("deterministic-mid-fill", func(t *testing.T) {
		_, addr := startServer(t, Config{
			Circuits: []CircuitSpec{{ID: w.Name, Circuit: c, Inputs: func() []bool { return garblerBits }}},
			Seed:     23,
		})
		// The drop lands well past the ~77-byte handshake but inside the
		// first fill's base-OT + masked-column stream; DropOnce lets the
		// redial heal instead of tripping the same offset forever.
		dialer := &faultnet.Dialer{
			Plan:     faultnet.Plan{Seed: 31, DropAfterBytes: 2048},
			DropOnce: true,
		}
		sess, err := Dial(addr, w.Name, c, Options{
			PoolSize: 64,
			Retry:    chaosRetry(41),
			Dialer:   dialer.Dial,
		})
		if err != nil {
			t.Fatalf("dial never healed the mid-fill drop: %v", err)
		}
		defer sess.Close()
		if drops := dialer.Stats().Drops.Load(); drops == 0 {
			t.Fatal("no drop injected; the scenario proved nothing")
		}
		if !sess.Pooled() || sess.PoolLevel() != 64 {
			t.Fatalf("healed session: pooled=%v level=%d, want a full pool of 64", sess.Pooled(), sess.PoolLevel())
		}
		oracleRuns(t, sess, w, c, garblerBits, 3)
		if cs := sess.Stats(); cs.PoolHits != 3 {
			t.Errorf("healed pool hits = %d, want 3", cs.PoolHits)
		}
	})

	t.Run("random-drops", func(t *testing.T) {
		_, addr := startServer(t, Config{
			Circuits: []CircuitSpec{{ID: w.Name, Circuit: c, Inputs: func() []bool { return garblerBits }}},
			Seed:     29,
		})
		dialer := &faultnet.Dialer{Plan: faultnet.Plan{Seed: 0xBEEF, DropRate: 0.02}}
		sess, err := Dial(addr, w.Name, c, Options{
			PoolSize:   48,
			PoolRefill: 16,
			Retry:      chaosRetry(43),
			Dialer:     dialer.Dial,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		oracleRuns(t, sess, w, c, garblerBits, 12)
		cs := sess.Stats()
		if cs.PoolHits+cs.PoolMisses != 12 {
			t.Errorf("hits+misses = %d+%d, want 12", cs.PoolHits, cs.PoolMisses)
		}
		t.Logf("random drops: injected=%d reconnects=%d hits=%d misses=%d refills=%d",
			dialer.Stats().Drops.Load(), cs.Reconnects, cs.PoolHits, cs.PoolMisses, cs.PoolRefills)
	})
}
