package server

import (
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"haac/internal/circuit"
	"haac/internal/gc"
	"haac/internal/label"
	"haac/internal/ot"
	"haac/internal/proto"
)

// CircuitSpec registers one servable circuit.
type CircuitSpec struct {
	// ID names the circuit on the wire (1..maxIDLen bytes).
	ID string
	// Circuit is the servable circuit; its digest is computed at New and
	// checked against every session's handshake.
	Circuit *circuit.Circuit
	// Inputs supplies the garbler's input bits for each run; nil means
	// all-false. It is called once per run from the session's goroutine —
	// return a reusable slice to keep runs allocation-free.
	Inputs func() []bool
}

// Config configures a Server.
type Config struct {
	// Circuits is the set of servable circuits.
	Circuits []CircuitSpec
	// PlanCacheSize bounds the shared plan cache; 0 means one entry per
	// registered circuit (nothing ever evicts).
	PlanCacheSize int
	// Workers is the plan-engine width used by each session's garbler
	// runner (0 or 1 = sequential).
	Workers int
	// Hasher is the garbling hash (default: the re-keyed construction).
	Hasher gc.Hasher
	// Seed, when nonzero, derives deterministic per-runner label streams
	// (tests); zero draws random seeds.
	Seed uint64
	// HandshakeTimeout bounds how long an accepted connection may take
	// to complete its hello (default 10s, negative disables). The same
	// bound arms a write deadline around handshake replies, so a
	// slowloris client that never drains its receive window cannot pin a
	// handshake goroutine.
	HandshakeTimeout time.Duration
	// RunTimeout bounds each garbled run: the session connection carries
	// a read+write deadline for the duration of a run, so a client that
	// goes silent mid-OT or mid-table-stream errors the session out
	// instead of pinning it forever (0 disables).
	RunTimeout time.Duration
	// DrainTimeout bounds Close: after listeners stop and idle sessions
	// disconnect, in-flight sessions get this grace period to finish;
	// survivors are then force-closed (counted in
	// Stats.SessionsForceClosed) so Close provably returns. 0 means the
	// 30s default; negative waits indefinitely (the pre-timeout
	// behavior).
	DrainTimeout time.Duration
	// MaxSessions caps concurrently admitted sessions; excess
	// connections are refused at handshake with a typed ErrBusy and
	// counted in Stats.SessionsRefused (0 = unlimited).
	MaxSessions int
	// AllowInsecureOT permits sessions requesting ot.Insecure, which
	// reveals the evaluator's choice bits on the wire. Off by default:
	// a remote peer must not be able to downgrade the OT; enable it only
	// for benchmarks and tests.
	AllowInsecureOT bool
	// DisableIntegrity declines the checksummed-frame wire tier even
	// when a client requests it in its hello flags; sessions then run on
	// the legacy unframed wire. Integrity-requesting clients fall back
	// transparently — this is also how tests exercise the legacy-peer
	// negotiation path.
	DisableIntegrity bool
	// MaxCircuitBytes, when > 0, refuses sessions (typed ErrOverBudget,
	// counted in Stats.SessionsOverBudget) whose circuit would hold more
	// than this many bytes of labels, tables and plan state resident —
	// memory-accounted admission, decided before any plan is built, so
	// one oversized circuit cannot OOM a backend.
	MaxCircuitBytes int64
	// MaxRunBytes, when > 0, bounds each run's transport bytes: sessions
	// whose minimum per-run stream already exceeds it are refused at
	// handshake, and a run that crosses it mid-stream errors out (typed
	// ErrOverBudget, counted in Stats.RunsOverBudget).
	MaxRunBytes int64
	// DisablePooledOT declines the precomputed-OT session tier even when
	// a client requests ot.Pooled in its hello; sessions then run every
	// OT on demand. Pooled-requesting clients fall back transparently —
	// the server accepts with plain statusOK and the client never sends
	// a refill.
	DisablePooledOT bool
	// MaxPoolSize caps the per-session OT pool: an opRefill that would
	// grow the pool past this many correlations is clamped to the
	// remaining headroom (or refused outright when there is none). Each
	// pooled correlation holds two 16-byte labels server-side, so the
	// cap bounds per-session memory at roughly 32*MaxPoolSize bytes.
	// 0 means the 65536 default.
	MaxPoolSize int
	// TLS, when non-nil, wraps every listener passed to Serve so the
	// session wire (handshake and the 2PC byte stream) runs over TLS.
	// The ops sidecar is unaffected — it is plain HTTP meant to be
	// firewalled to the control plane. nil keeps the plaintext
	// transport, which remains the default for tests and loopback use.
	TLS *tls.Config
}

// defaultDrainTimeout bounds Close when Config.DrainTimeout is zero.
const defaultDrainTimeout = 30 * time.Second

// defaultMaxPoolSize caps per-session OT pools when Config.MaxPoolSize
// is zero: 65536 correlations ≈ 2 MiB of sender-side label state.
const defaultMaxPoolSize = 1 << 16

// Stats is a point-in-time snapshot of a server's counters.
type Stats struct {
	// ActiveSessions is the number of currently open sessions.
	ActiveSessions int
	// SessionsTotal counts sessions ever accepted.
	SessionsTotal uint64
	// RunsServed counts completed garbled executions.
	RunsServed uint64
	// BytesOut / BytesIn are transport totals across all sessions.
	BytesOut, BytesIn uint64
	// Cache* are the shared plan cache counters.
	CacheHits, CacheMisses, CacheEvictions uint64
	// SessionsRefused counts connections refused at handshake because
	// the server was at Config.MaxSessions.
	SessionsRefused uint64
	// SessionsForceClosed counts in-flight sessions the drain
	// force-closed after Config.DrainTimeout expired.
	SessionsForceClosed uint64
	// RunsFailed counts runs that started but errored (dead peers, run
	// deadlines, protocol failures).
	RunsFailed uint64
	// AcceptRetries counts transient Accept errors (timeouts, aborted
	// connections, fd pressure) the accept loop retried with backoff
	// instead of tearing down the listener.
	AcceptRetries uint64
	// RunNanos accumulates the wall-clock duration of completed runs;
	// RunNanos/RunsServed is the mean serve latency, and the pair
	// exports as a Prometheus summary (_sum/_count).
	RunNanos uint64
	// RunsResumed counts broken runs completed by a mid-run resume
	// (integrity tier) instead of a full replay.
	RunsResumed uint64
	// IntegrityFailures counts checksummed frames this server rejected
	// on its inbound stream.
	IntegrityFailures uint64
	// SessionsPanicked counts sessions whose handler panicked; the panic
	// was contained to the session and the server kept serving.
	SessionsPanicked uint64
	// SessionsOverBudget counts sessions refused at handshake by the
	// MaxCircuitBytes/MaxRunBytes budgets; RunsOverBudget counts runs
	// that crossed MaxRunBytes mid-stream.
	SessionsOverBudget, RunsOverBudget uint64
	// PoolHits counts pooled-tier runs whose evaluator labels came out
	// of the session's precomputed OT pool — no base OT, one XOR round
	// online. PoolMisses counts pooled-tier runs that fell back to an
	// on-demand OT (pool empty or below the run's demand); PoolRefills
	// counts completed opRefill fills.
	PoolHits, PoolMisses, PoolRefills uint64
}

// registered is a servable circuit plus its per-circuit runner pool.
// The pool is an explicit free-list rather than a sync.Pool: runners
// own worker-pool goroutines when Config.Workers > 1, so they must be
// Closed deterministically at shutdown, never silently dropped by GC.
type registered struct {
	spec   CircuitSpec
	digest [32]byte
	zero   []bool // all-false garbler bits when spec.Inputs == nil

	// Static budget inputs, computed once at New: a conservative
	// resident-memory estimate (labels + tables + plan slots) and the
	// minimum garbler→evaluator stream bytes of one run (header, fixed
	// labels, tables, decode bits; OT excluded). and is the table count,
	// the bound on resume offsets.
	memBytes int64
	runBytes int64
	and      int

	mu   sync.Mutex
	free []*proto.GarblerSession // reused across sessions
}

// getRunner pops a pooled runner, if any.
func (r *registered) getRunner() *proto.GarblerSession {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.free); n > 0 {
		gs := r.free[n-1]
		r.free = r.free[:n-1]
		return gs
	}
	return nil
}

// putRunner returns a runner to the pool.
func (r *registered) putRunner(gs *proto.GarblerSession) {
	r.mu.Lock()
	r.free = append(r.free, gs)
	r.mu.Unlock()
}

// closeRunners releases every pooled runner's worker pool.
func (r *registered) closeRunners() {
	r.mu.Lock()
	free := r.free
	r.free = nil
	r.mu.Unlock()
	for _, gs := range free {
		gs.Close()
	}
}

// session tracks one accepted connection's drain state.
type session struct {
	conn net.Conn
	idle bool // blocked waiting for the client's next op frame
}

// Server is a concurrent 2PC garbler service. Create with New, serve
// one or more listeners with Serve, and stop with Close: shutdown is
// graceful — listeners stop accepting, idle sessions are disconnected,
// and in-flight runs complete before Close returns.
type Server struct {
	cfg   Config
	reg   map[string]*registered
	cache *PlanCache

	net proto.Stats // byte counters shared by every session transport

	mu        sync.Mutex
	draining  bool
	listeners map[net.Listener]struct{}
	sessions  map[*session]struct{}
	wg        sync.WaitGroup // one per live session

	active        atomic.Int64
	sessionsTotal atomic.Uint64
	runs          atomic.Uint64
	runsFailed    atomic.Uint64
	runNanos      atomic.Uint64
	refused       atomic.Uint64
	forceClosed   atomic.Uint64
	acceptRetries atomic.Uint64
	seq           atomic.Uint64 // per-runner deterministic seed sequence

	runsResumed       atomic.Uint64
	integrityFailures atomic.Uint64
	sessionsPanicked  atomic.Uint64
	sessionsOverBdgt  atomic.Uint64
	runsOverBudget    atomic.Uint64
	poolHits          atomic.Uint64
	poolMisses        atomic.Uint64
	poolRefills       atomic.Uint64

	resume resumeStore // broken-run checkpoints, keyed by opaque token
}

// New validates the configuration and builds a server. Plans are not
// compiled here: the first session of each circuit populates the cache.
func New(cfg Config) (*Server, error) {
	if len(cfg.Circuits) == 0 {
		return nil, errors.New("server: no circuits registered")
	}
	if cfg.PlanCacheSize <= 0 {
		cfg.PlanCacheSize = len(cfg.Circuits)
	}
	s := &Server{
		cfg:       cfg,
		reg:       make(map[string]*registered, len(cfg.Circuits)),
		cache:     NewPlanCache(cfg.PlanCacheSize),
		listeners: make(map[net.Listener]struct{}),
		sessions:  make(map[*session]struct{}),
	}
	for _, spec := range cfg.Circuits {
		if spec.ID == "" || len(spec.ID) > maxIDLen {
			return nil, fmt.Errorf("server: circuit id must be 1..%d bytes, got %q", maxIDLen, spec.ID)
		}
		if _, dup := s.reg[spec.ID]; dup {
			return nil, fmt.Errorf("server: duplicate circuit id %q", spec.ID)
		}
		if spec.Circuit == nil {
			return nil, fmt.Errorf("server: circuit %q is nil", spec.ID)
		}
		if err := spec.Circuit.Validate(); err != nil {
			return nil, fmt.Errorf("server: circuit %q: %w", spec.ID, err)
		}
		c := spec.Circuit
		and, _, _ := c.CountOps()
		nFixed := c.GarblerInputs
		if c.HasConst {
			nFixed += 2
		}
		s.reg[spec.ID] = &registered{
			spec:   spec,
			digest: circuit.Digest(c),
			zero:   make([]bool, c.GarblerInputs),
			memBytes: int64(c.NumWires)*label.Size +
				int64(and)*gc.MaterialSize +
				int64(c.NumInputs()+len(c.Outputs))*label.Size,
			runBytes: protoRunHeaderLen + int64(nFixed)*label.Size +
				int64(and)*gc.MaterialSize + int64(len(c.Outputs)),
			and: and,
		}
	}
	return s, nil
}

// protoRunHeaderLen is the wire size of internal/proto's run header,
// the fixed prefix of every run's stream (pinned against the real codec
// in tests).
const protoRunHeaderLen = 43

// overBudgetReason compares a registered circuit against the configured
// budgets; a non-empty string is the refusal detail.
func (s *Server) overBudgetReason(reg *registered) string {
	if m := s.cfg.MaxCircuitBytes; m > 0 && reg.memBytes > m {
		return fmt.Sprintf("circuit holds ~%d resident bytes, budget %d", reg.memBytes, m)
	}
	if m := s.cfg.MaxRunBytes; m > 0 && reg.runBytes > m {
		return fmt.Sprintf("a run streams at least %d bytes, budget %d", reg.runBytes, m)
	}
	return ""
}

// Digest returns the digest of the registered circuit, or false if the
// id is unknown. Clients embed it in out-of-band configuration when
// they cannot rebuild the circuit locally.
func (s *Server) Digest(id string) ([32]byte, bool) {
	r, ok := s.reg[id]
	if !ok {
		return [32]byte{}, false
	}
	return r.digest, true
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	cc := s.cache.Counters()
	return Stats{
		ActiveSessions: int(s.active.Load()),
		SessionsTotal:  s.sessionsTotal.Load(),
		RunsServed:     s.runs.Load(),
		BytesOut:       uint64(s.net.BytesSent.Load()),
		BytesIn:        uint64(s.net.BytesReceived.Load()),
		CacheHits:      cc.Hits,
		CacheMisses:    cc.Misses,
		CacheEvictions: cc.Evictions,

		SessionsRefused:     s.refused.Load(),
		SessionsForceClosed: s.forceClosed.Load(),
		RunsFailed:          s.runsFailed.Load(),
		RunNanos:            s.runNanos.Load(),
		AcceptRetries:       s.acceptRetries.Load(),

		RunsResumed:        s.runsResumed.Load(),
		IntegrityFailures:  s.integrityFailures.Load(),
		SessionsPanicked:   s.sessionsPanicked.Load(),
		SessionsOverBudget: s.sessionsOverBdgt.Load(),
		RunsOverBudget:     s.runsOverBudget.Load(),
		PoolHits:           s.poolHits.Load(),
		PoolMisses:         s.poolMisses.Load(),
		PoolRefills:        s.poolRefills.Load(),
	}
}

// Cache returns the server's shared plan cache.
func (s *Server) Cache() *PlanCache { return s.cache }

// registerListener adds ln to the set Close tears down, refusing (and
// closing ln) when the server is already draining. unregisterListener
// removes and closes it; both Serve and ServeOps share this lifecycle
// so every listener — session or ops — is observed by exactly one
// drain path.
func (s *Server) registerListener(ln net.Listener) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		ln.Close()
		return ErrDraining
	}
	s.listeners[ln] = struct{}{}
	return nil
}

func (s *Server) unregisterListener(ln net.Listener) {
	s.mu.Lock()
	delete(s.listeners, ln)
	s.mu.Unlock()
	ln.Close()
}

// Serve accepts sessions on ln until the server closes; it may be
// called concurrently on several listeners. When Config.TLS is set the
// listener is wrapped so every session runs over TLS. It returns nil
// after Close and the listener's error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	if s.cfg.TLS != nil {
		ln = tls.NewListener(ln, s.cfg.TLS)
	}
	if err := s.registerListener(ln); err != nil {
		return err
	}
	defer s.unregisterListener(ln)
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return nil
			}
			if isTransientAccept(err) {
				// One flaky accept (timeout, aborted connection, fd
				// pressure) must not tear down the whole listener: back
				// off with a cap and keep accepting.
				s.acceptRetries.Add(1)
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				time.Sleep(backoff)
				continue
			}
			return err
		}
		backoff = 0
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		if s.cfg.MaxSessions > 0 && s.active.Load() >= int64(s.cfg.MaxSessions) {
			// Admission control: decide in the accept loop, where the
			// session count is observed serially, so exactly the excess
			// connections are shed.
			s.mu.Unlock()
			s.refused.Add(1)
			go s.refuse(conn)
			continue
		}
		st := &session{conn: conn}
		s.sessions[st] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.active.Add(1)
		s.sessionsTotal.Add(1)
		go s.handle(st)
	}
}

// isTransientAccept reports whether an Accept error is worth retrying:
// network timeouts, temporary resource exhaustion, or a connection the
// peer aborted between SYN and accept.
func isTransientAccept(err error) bool {
	if errors.Is(err, syscall.ECONNABORTED) || errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	// net.Error.Temporary is deprecated (ill-defined for general errors)
	// but remains exactly the signal listeners raise for retryable
	// accept failures; assert the method structurally to use it.
	var te interface{ Temporary() bool }
	return errors.As(err, &te) && te.Temporary()
}

// refuse completes the handshake of an over-limit connection with
// statusBusy. The hello is read first — on synchronous transports the
// client blocks in its hello write until the server consumes it, so
// replying before reading would deadlock both ends.
func (s *Server) refuse(conn net.Conn) {
	defer conn.Close()
	hsTimeout := s.cfg.HandshakeTimeout
	if hsTimeout == 0 {
		hsTimeout = 10 * time.Second
	}
	if hsTimeout > 0 {
		conn.SetDeadline(time.Now().Add(hsTimeout))
	}
	if _, _, err := readHello(conn); err != nil {
		return
	}
	writeReply(conn, statusBusy, 0, statusMsg(statusBusy, ""))
}

// Close drains the server: listeners stop accepting, idle sessions are
// disconnected, and in-flight runs get Config.DrainTimeout to finish
// before their connections are force-closed — so Close returns within a
// bound even against a client stalled mid-run. Safe to call more than
// once.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for ln := range s.listeners {
			ln.Close()
		}
		for st := range s.sessions {
			if st.idle {
				st.conn.Close()
			}
		}
	}
	s.mu.Unlock()
	s.awaitSessions()
	// Every session has returned its runner; release their worker pools.
	for _, reg := range s.reg {
		reg.closeRunners()
	}
	return nil
}

// awaitSessions waits for every session goroutine, force-closing
// survivors once the drain grace period runs out. Closing a session's
// connection errors out whatever read or write it is blocked on, so the
// second wait is bounded by I/O teardown, not by the peer.
func (s *Server) awaitSessions() {
	dt := s.cfg.DrainTimeout
	if dt == 0 {
		dt = defaultDrainTimeout
	}
	if dt < 0 {
		s.wg.Wait()
		return
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return
	case <-time.After(dt):
	}
	s.mu.Lock()
	for st := range s.sessions {
		st.conn.Close()
		s.forceClosed.Add(1)
	}
	s.mu.Unlock()
	<-done
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// setIdle flips the session's drain state. Entering idle returns false
// when the server is draining: the session must exit instead of
// blocking on a read nobody will interrupt.
func (s *Server) setIdle(st *session, idle bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if idle && s.draining {
		return false
	}
	st.idle = idle
	return true
}

// handle runs one session: handshake, plan resolution, then the
// run/ack loop until the client says goodbye, the connection dies, or
// the server drains.
func (s *Server) handle(st *session) {
	conn := st.conn
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.sessions, st)
		s.mu.Unlock()
		s.active.Add(-1)
		s.wg.Done()
	}()
	// Blast-radius containment: a panic anywhere in this session — a
	// poisoned Inputs callback, a bug tripped by one circuit — is
	// contained to the session. The recover defer runs before the
	// cleanup defer (LIFO), so the session still unregisters and the
	// server keeps serving everyone else.
	replied := false
	defer func() {
		if r := recover(); r != nil {
			s.sessionsPanicked.Add(1)
			if !replied {
				writeReply(conn, statusInternal, 0, statusMsg(statusInternal, ""))
			}
		}
	}()

	hsTimeout := s.cfg.HandshakeTimeout
	if hsTimeout == 0 {
		hsTimeout = 10 * time.Second
	}
	if hsTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(hsTimeout))
	}
	// reply arms a fresh write deadline around each handshake verdict so
	// a slowloris client that never drains its receive window cannot pin
	// this goroutine mid-write.
	reply := func(w io.Writer, status uint8, numSlots uint32, msg string) error {
		replied = true
		if hsTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(hsTimeout))
		}
		return writeReply(w, status, numSlots, msg)
	}
	rw := proto.Instrument(conn, &s.net)

	h, status, err := readHello(rw)
	if err != nil {
		return
	}
	var reg *registered
	msg := ""
	if status == statusOK {
		if s.isDraining() {
			status = statusDraining
		} else if h.ot == ot.Insecure && !s.cfg.AllowInsecureOT {
			status = statusBadRequest
			msg = "insecure OT refused (server runs without AllowInsecureOT)"
		} else if reg = s.reg[h.id]; reg == nil {
			status = statusUnknownCircuit
		} else if h.digest != reg.digest {
			status = statusDigestMismatch
		} else if reason := s.overBudgetReason(reg); reason != "" {
			status = statusOverBudget
			msg = reason
			s.sessionsOverBdgt.Add(1)
		}
	}
	if status != statusOK {
		if msg == "" {
			msg = statusMsg(status, h.id)
		}
		reply(rw, status, 0, msg)
		return
	}
	plan, err := s.cache.Get(h.id, func() (*circuit.Plan, error) {
		return circuit.NewPlan(reg.spec.Circuit)
	})
	if err != nil {
		reply(rw, statusBadRequest, 0, err.Error())
		return
	}

	// Post-handshake transport stack, innermost first: the instrumented
	// conn, the per-run byte budget (when configured), and — when the
	// client requested it and the server allows — the checksummed frame
	// codec. The handshake itself always runs unframed, so legacy and
	// integrity clients speak to the same listener.
	integrity := h.flags&helloFlagIntegrity != 0 && !s.cfg.DisableIntegrity
	srw := rw
	var bb *byteBudget
	if s.cfg.MaxRunBytes > 0 {
		bb = &byteBudget{inner: srw, limit: s.cfg.MaxRunBytes}
		srw = bb
	}
	var fr *proto.FramedConn
	if integrity {
		fr = proto.NewFramedConn(srw)
		srw = fr
	}

	// The pooled tier, like integrity, degrades transparently: a server
	// configured without it accepts the session with plain statusOK and
	// the client simply never sends a refill. Pooled sessions still need
	// a concrete on-demand protocol for miss runs — the garbler picks it
	// per circuit (IKNP amortizes past its base-OT cost only when the
	// evaluator input vector is wide enough to matter).
	pooled := h.ot == ot.Pooled && !s.cfg.DisablePooledOT
	otp := h.ot
	if h.ot == ot.Pooled {
		otp = ot.DH
		if reg.spec.Circuit.EvaluatorInputs > 128 {
			otp = ot.IKNP
		}
	}
	gs, err := s.garblerFor(reg, plan, srw, otp)
	if err != nil {
		reply(rw, statusBadRequest, 0, err.Error())
		return
	}
	defer reg.putRunner(gs)
	okStatus := uint8(statusOK)
	switch {
	case pooled && integrity:
		okStatus = statusOKPooledIntegrity
	case pooled:
		okStatus = statusOKPooled
	case integrity:
		okStatus = statusOKIntegrity
	}
	if err := reply(rw, okStatus, uint32(plan.NumSlots), ""); err != nil {
		return
	}
	conn.SetDeadline(time.Time{})

	var pool *ot.Pool
	var frame [1]byte
	for {
		if !s.setIdle(st, true) {
			return // draining: the client's next Run sees a closed session
		}
		_, err := io.ReadFull(srw, frame[:])
		s.setIdle(st, false)
		if err != nil || (frame[0] != opRun && frame[0] != opResume && frame[0] != opRefill) {
			return // opBye, garbage, or a dead/force-closed connection
		}
		if s.isDraining() {
			frame[0] = ackDraining
			srw.Write(frame[:])
			return
		}
		if frame[0] == opResume {
			// Resume frames only exist on the integrity tier; on the
			// legacy wire the byte is garbage.
			if fr == nil || !s.serveResume(conn, srw, gs, bb, h.id) {
				return
			}
			continue
		}
		if frame[0] == opRefill {
			// Refill frames only exist on the pooled tier; elsewhere the
			// byte is garbage.
			if !pooled || !s.serveRefill(conn, srw, gs, bb, &pool) {
				return
			}
			continue
		}
		var token uint64
		if fr != nil {
			// Checkpoint the run before it starts: the deterministic
			// garbling seed, keyed by an opaque token the client echoes
			// back if the transfer breaks. The seed never crosses the
			// wire — it would reveal every label of the run.
			token, err = newResumeToken()
			if err != nil {
				return
			}
			s.resume.put(token, resumeEntry{id: h.id, seed: gs.PendingSeed(), and: reg.and})
			var ack [9]byte
			ack[0] = ackGo
			binary.LittleEndian.PutUint64(ack[1:], token)
			if _, err := srw.Write(ack[:]); err != nil {
				s.resume.drop(token)
				return
			}
		} else {
			frame[0] = ackGo
			if _, err := srw.Write(frame[:]); err != nil {
				return
			}
		}
		bits := reg.zero
		if reg.spec.Inputs != nil {
			bits = reg.spec.Inputs()
		}
		// The run deadline covers the whole garbled execution — labels,
		// OT, table stream, result — so a peer that stalls mid-run
		// errors the session out instead of outliving the drain.
		if rt := s.cfg.RunTimeout; rt > 0 {
			conn.SetDeadline(time.Now().Add(rt))
		}
		if bb != nil {
			bb.reset()
		}
		start := time.Now()
		if _, err := gs.Run(bits); err != nil {
			s.failRun(err)
			return
		}
		if s.cfg.RunTimeout > 0 {
			conn.SetDeadline(time.Time{})
		}
		if fr != nil {
			s.resume.drop(token)
		}
		if pooled {
			if gs.LastRunPooled() {
				s.poolHits.Add(1)
			} else {
				s.poolMisses.Add(1)
			}
		}
		s.runs.Add(1)
		s.runNanos.Add(uint64(time.Since(start)))
	}
}

// failRun accounts one failed run, classifying integrity and budget
// causes.
func (s *Server) failRun(err error) {
	s.runsFailed.Add(1)
	if errors.Is(err, proto.ErrIntegrity) {
		s.integrityFailures.Add(1)
	}
	if errors.Is(err, ErrOverBudget) {
		s.runsOverBudget.Add(1)
	}
}

// serveResume answers one opResume frame: validate the token against
// the checkpoint store and either decline (ackNoResume — the client
// replays in full) or re-emit the run's stream from the client's
// verified-table offset. Returns false when the session must end.
func (s *Server) serveResume(conn net.Conn, srw io.ReadWriter, gs *proto.GarblerSession, bb *byteBudget, id string) bool {
	var req [16]byte
	if _, err := io.ReadFull(srw, req[:]); err != nil {
		return false
	}
	le := binary.LittleEndian
	token := le.Uint64(req[0:])
	got := le.Uint64(req[8:])
	e, ok := s.resume.get(token)
	var ack [1]byte
	if !ok || e.id != id || got > uint64(e.and) {
		ack[0] = ackNoResume
		_, err := srw.Write(ack[:])
		return err == nil
	}
	ack[0] = ackResume
	if _, err := srw.Write(ack[:]); err != nil {
		return false
	}
	if rt := s.cfg.RunTimeout; rt > 0 {
		conn.SetDeadline(time.Now().Add(rt))
	}
	if bb != nil {
		bb.reset()
	}
	start := time.Now()
	if _, err := gs.ResumeRun(e.seed, int(got)); err != nil {
		s.failRun(err)
		return false
	}
	if s.cfg.RunTimeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	s.resume.drop(token)
	s.runsResumed.Add(1)
	s.runs.Add(1)
	s.runNanos.Add(uint64(time.Since(start)))
	return true
}

// serveRefill answers one opRefill frame: validate the requested base
// protocol and count, clamp the count to the pool's MaxPoolSize
// headroom, then run one lockstep ot.Pool fill — creating the session's
// sender pool (and paying its base OTs) on first use. A refusal
// (ackRefuse) leaves the session usable; returns false when the session
// must end.
func (s *Server) serveRefill(conn net.Conn, srw io.ReadWriter, gs *proto.GarblerSession, bb *byteBudget, pool **ot.Pool) bool {
	var req [5]byte // base u8 | n u32 LE
	if _, err := io.ReadFull(srw, req[:]); err != nil {
		return false
	}
	base := ot.Protocol(req[0])
	n := int(binary.LittleEndian.Uint32(req[1:]))
	max := s.cfg.MaxPoolSize
	if max <= 0 {
		max = defaultMaxPoolSize
	}
	level := 0
	if *pool != nil {
		level = (*pool).Level()
	}
	granted := n
	if level+granted > max {
		granted = max - level
	}
	badBase := base != ot.DH && !(base == ot.Insecure && s.cfg.AllowInsecureOT)
	if badBase || n <= 0 || granted <= 0 {
		var ack [1]byte
		ack[0] = ackRefuse
		_, err := srw.Write(ack[:])
		return err == nil
	}
	var ack [5]byte
	ack[0] = ackGo
	binary.LittleEndian.PutUint32(ack[1:], uint32(granted))
	if _, err := srw.Write(ack[:]); err != nil {
		return false
	}
	// The fill is bounded like a run: same deadline, fresh byte budget.
	if rt := s.cfg.RunTimeout; rt > 0 {
		conn.SetDeadline(time.Now().Add(rt))
	}
	if bb != nil {
		bb.reset()
	}
	if *pool == nil {
		p, err := ot.NewSenderPool(srw, base)
		if err != nil {
			return false
		}
		*pool = p
		gs.SetPool(p)
	}
	if err := (*pool).Fill(srw, granted); err != nil {
		return false
	}
	if s.cfg.RunTimeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	s.poolRefills.Add(1)
	return true
}

// garblerFor takes a pooled garbler runner for the circuit, or builds
// one bound to this connection. Pooled runners keep their plan engine,
// label source and scratch, so session churn does not reallocate them.
func (s *Server) garblerFor(reg *registered, plan *circuit.Plan, rw io.ReadWriter, otp ot.Protocol) (*proto.GarblerSession, error) {
	if gs := reg.getRunner(); gs != nil {
		gs.Reset(rw, otp)
		return gs, nil
	}
	seed := s.cfg.Seed
	if seed != 0 {
		seed += s.seq.Add(1) // distinct deterministic stream per runner
	}
	return proto.NewGarblerSession(rw, proto.Options{
		Plan:    plan,
		Hasher:  s.cfg.Hasher,
		Workers: s.cfg.Workers,
		OT:      otp,
		Seed:    seed,
	})
}
