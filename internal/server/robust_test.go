package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"haac/internal/faultnet"
	"haac/internal/ot"
	"haac/internal/proto"
	"haac/internal/workloads"
)

// Robustness suite for the integrity wire tier: negotiation and legacy
// fallback, whole-stream corruption healed by detect->resume, resume
// byte accounting (verified chunks never re-cross the wire), panic
// containment, and the static/dynamic resource budgets.

// robustRetry is chaosRetry plus a per-attempt run deadline: whole-
// stream corruption can land in a frame-length field and leave both
// peers waiting, which only a deadline resolves. The deadline is a
// stall-breaker, not a latency bound — it must comfortably exceed the
// slowest healthy run attempt under the race detector, or clean
// attempts time out and exhaust the retry budget.
func robustRetry(seed uint64) RetryPolicy {
	p := chaosRetry(seed)
	p.RunTimeout = 2 * time.Second
	return p
}

// TestIntegrityNegotiation: the wire tier is opt-in per handshake. An
// integrity client against a willing server gets checksummed frames; a
// legacy client, or any client against a server with DisableIntegrity,
// runs the historical unframed wire byte for byte.
func TestIntegrityNegotiation(t *testing.T) {
	w := workloads.AddN(16)
	c := w.Build()
	garblerBits, _ := w.Inputs(1)
	spec := CircuitSpec{ID: w.Name, Circuit: c, Inputs: func() []bool { return garblerBits }}

	cases := []struct {
		name          string
		cfg           Config
		integrity     bool
		wantIntegrity bool
	}{
		{"granted", Config{Circuits: []CircuitSpec{spec}, Seed: 7, AllowInsecureOT: true}, true, true},
		{"legacy-client", Config{Circuits: []CircuitSpec{spec}, Seed: 7, AllowInsecureOT: true}, false, false},
		{"server-declines", Config{Circuits: []CircuitSpec{spec}, Seed: 7, AllowInsecureOT: true, DisableIntegrity: true}, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, addr := startServer(t, tc.cfg)
			sess, err := Dial(addr, w.Name, c, Options{OT: ot.Insecure, Integrity: tc.integrity})
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			if got := sess.Integrity(); got != tc.wantIntegrity {
				t.Fatalf("Integrity() = %v, want %v", got, tc.wantIntegrity)
			}
			for run := 0; run < 3; run++ {
				_, evalBits := w.Inputs(int64(10 + run))
				want, err := c.Eval(garblerBits, evalBits)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sess.Run(evalBits)
				if err != nil {
					t.Fatalf("run %d: %v", run, err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("run %d: outputs diverge from oracle", run)
				}
			}
		})
	}
}

// TestIntegrityCorruptAnywhereHeals: bit corruption at arbitrary
// stream offsets — not just the validated handshake prefix the legacy
// chaos scenario is restricted to — is detected by the frame checksums
// and healed by retry/resume, with zero silent wrong outputs.
func TestIntegrityCorruptAnywhereHeals(t *testing.T) {
	w := workloads.AddN(16)
	c := w.Build()
	garblerBits, _ := w.Inputs(1)
	_, addr := startServer(t, Config{
		Circuits: []CircuitSpec{{
			ID:      w.Name,
			Circuit: c,
			Inputs:  func() []bool { return garblerBits },
		}},
		Seed:            21,
		AllowInsecureOT: true,
		RunTimeout:      2 * time.Second,
	})

	dialer := &faultnet.Dialer{Plan: faultnet.Plan{Seed: 0xD1CE, CorruptRate: 0.05}}
	const sessions = 4
	const runsPerSession = 6
	var wg sync.WaitGroup
	errc := make(chan error, sessions)
	statc := make(chan ClientStats, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := Dial(addr, w.Name, c, Options{
				OT:        ot.Insecure,
				Integrity: true,
				Retry:     robustRetry(uint64(2000 + i)),
				Dialer:    dialer.Dial,
			})
			if err != nil {
				errc <- fmt.Errorf("session %d: dial: %w", i, err)
				return
			}
			defer sess.Close()
			for run := 0; run < runsPerSession; run++ {
				_, evalBits := w.Inputs(int64(i*100 + run))
				want, err := c.Eval(garblerBits, evalBits)
				if err != nil {
					errc <- err
					return
				}
				got, err := sess.Run(evalBits)
				if err != nil {
					errc <- fmt.Errorf("session %d run %d: %w", i, run, err)
					return
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					errc <- fmt.Errorf("session %d run %d: silent wrong output", i, run)
					return
				}
			}
			statc <- sess.Stats()
		}(i)
	}
	wg.Wait()
	close(errc)
	close(statc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	if dialer.Stats().Corruptions.Load() == 0 {
		t.Fatal("fault plan injected no corruption; the scenario proved nothing")
	}
	var detected uint64
	for cs := range statc {
		detected += cs.IntegrityFailures
	}
	if detected == 0 {
		t.Fatal("corruption was injected but no client detected an integrity failure")
	}
}

// TestIntegrityResumeSkipsVerifiedChunks: a corrupted bulk transfer
// resumes from the last verified chunk. The workload's table stream is
// large (AES-128, ~6400 AND gates); corruption lands near the end, so a
// full replay would nearly double the bytes received while a resume
// adds only the damaged tail. The transfer-byte counters tell the two
// apart.
func TestIntegrityResumeSkipsVerifiedChunks(t *testing.T) {
	w := workloads.AES128()
	c := w.Build()
	garblerBits, _ := w.Inputs(1)
	srv, addr := startServer(t, Config{
		Circuits: []CircuitSpec{{
			ID:      w.Name,
			Circuit: c,
			Inputs:  func() []bool { return garblerBits },
		}},
		Seed:            9,
		AllowInsecureOT: true,
		RunTimeout:      5 * time.Second,
	})

	_, evalBits := w.Inputs(2)
	want, err := c.Eval(garblerBits, evalBits)
	if err != nil {
		t.Fatal(err)
	}

	// Fault-free baseline run, measuring the inbound bytes of one clean
	// transfer.
	cleanStats := &proto.Stats{}
	clean, err := Dial(addr, w.Name, c, Options{OT: ot.Insecure, Integrity: true, Stats: cleanStats})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clean.Run(evalBits); err != nil {
		t.Fatal(err)
	}
	clean.Close()
	baseline := cleanStats.BytesReceived.Load()
	if baseline < 100_000 {
		t.Fatalf("baseline transfer only %d bytes; workload too small to distinguish resume from replay", baseline)
	}

	// Corrupt a window near the end of the first connection's inbound
	// stream: almost every table chunk is already verified when the
	// damage lands. CorruptOnce keeps redials clean so exactly one break
	// is injected.
	dialer := &faultnet.Dialer{
		Plan: faultnet.Plan{
			Seed:         0xBEEF,
			CorruptRate:  1,
			CorruptAfter: baseline - 20_000,
			CorruptFirst: baseline - 16_000,
		},
		CorruptOnce: true,
	}
	faultyStats := &proto.Stats{}
	sess, err := Dial(addr, w.Name, c, Options{
		OT:        ot.Insecure,
		Integrity: true,
		Retry:     robustRetry(31),
		Dialer:    dialer.Dial,
		Stats:     faultyStats,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	got, err := sess.Run(evalBits)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatal("resumed run diverged from the oracle")
	}
	if dialer.Stats().Corruptions.Load() == 0 {
		t.Fatal("no corruption was injected; the scenario proved nothing")
	}
	cs := sess.Stats()
	if cs.Resumes == 0 {
		t.Fatalf("run healed without a resume (stats %+v); expected a mid-stream continue", cs)
	}
	// The client returns as soon as it reports the result; give the
	// server a moment to ingest it and account the resumed run.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().RunsResumed == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := srv.Stats(); st.RunsResumed == 0 {
		t.Fatalf("server counted no resumed run: %+v", st)
	}
	// A full replay would re-receive ~all of the baseline on top of the
	// broken transfer (~2x total). A resume re-receives only the tail
	// past the last verified chunk.
	if faulty := faultyStats.BytesReceived.Load(); faulty >= baseline+baseline*3/4 {
		t.Fatalf("resumed transfer received %d bytes vs %d baseline; verified chunks were re-transferred", faulty, baseline)
	}
}

// TestPanicContainment: a panic inside one session's handler — here a
// poisoned garbler-input provider — is contained to that session. The
// client heals by redial, the counter trips once, and the server keeps
// accepting fresh sessions.
func TestPanicContainment(t *testing.T) {
	w := workloads.AddN(8)
	c := w.Build()
	garblerBits, _ := w.Inputs(1)
	var calls atomic.Int32
	srv, addr := startServer(t, Config{
		Circuits: []CircuitSpec{{
			ID:      w.Name,
			Circuit: c,
			Inputs: func() []bool {
				if calls.Add(1) == 1 {
					panic("poisoned input provider")
				}
				return garblerBits
			},
		}},
		Seed:            13,
		AllowInsecureOT: true,
	})

	sess, err := Dial(addr, w.Name, c, Options{OT: ot.Insecure, Integrity: true, Retry: robustRetry(17)})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	_, evalBits := w.Inputs(3)
	want, err := c.Eval(garblerBits, evalBits)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Run(evalBits)
	if err != nil {
		t.Fatalf("run did not heal past the panicked session: %v", err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatal("healed run diverged from the oracle")
	}
	if st := srv.Stats(); st.SessionsPanicked != 1 {
		t.Fatalf("SessionsPanicked = %d, want 1 (stats %+v)", st.SessionsPanicked, st)
	}
	// The server is still serving: a brand-new session works.
	fresh, err := Dial(addr, w.Name, c, Options{OT: ot.Insecure})
	if err != nil {
		t.Fatalf("server stopped accepting sessions after a contained panic: %v", err)
	}
	fresh.Close()
}

// TestBudgetRefusals: the static admission budget refuses oversized
// circuits with a typed, permanent error; the dynamic per-run byte
// budget cuts off a run that outgrows its declared stream size.
func TestBudgetRefusals(t *testing.T) {
	w := workloads.AddN(16)
	c := w.Build()
	garblerBits, _ := w.Inputs(1)
	spec := CircuitSpec{ID: w.Name, Circuit: c, Inputs: func() []bool { return garblerBits }}

	t.Run("static-admission", func(t *testing.T) {
		srv, addr := startServer(t, Config{
			Circuits:        []CircuitSpec{spec},
			Seed:            3,
			AllowInsecureOT: true,
			MaxCircuitBytes: 1,
		})
		start := time.Now()
		_, err := Dial(addr, w.Name, c, Options{OT: ot.Insecure, Retry: robustRetry(5)})
		if !errors.Is(err, ErrOverBudget) {
			t.Fatalf("Dial err = %v, want ErrOverBudget", err)
		}
		// Permanent refusals must not burn the retry budget's backoffs.
		if d := time.Since(start); d > time.Second {
			t.Fatalf("over-budget dial took %v; refusal was retried instead of classified permanent", d)
		}
		if st := srv.Stats(); st.SessionsOverBudget == 0 {
			t.Fatalf("SessionsOverBudget = 0, want >= 1 (stats %+v)", st)
		}
	})

	t.Run("dynamic-run-bytes", func(t *testing.T) {
		// Admit the session (the static estimate fits) but set the
		// ceiling so close that the real stream — OT traffic is not part
		// of the static estimate — breaches it mid-run.
		srv, err := New(Config{Circuits: []CircuitSpec{spec}, Seed: 3, AllowInsecureOT: true})
		if err != nil {
			t.Fatal(err)
		}
		limit := srv.reg[w.Name].runBytes + 8
		srv.Close()

		srv2, addr := startServer(t, Config{
			Circuits:        []CircuitSpec{spec},
			Seed:            3,
			AllowInsecureOT: true,
			MaxRunBytes:     limit,
		})
		sess, err := Dial(addr, w.Name, c, Options{OT: ot.Insecure, Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Seed: 4}})
		if err != nil {
			t.Fatalf("admission should pass at limit %d: %v", limit, err)
		}
		defer sess.Close()
		_, evalBits := w.Inputs(4)
		if _, err := sess.Run(evalBits); err == nil {
			t.Fatal("run succeeded under a budget below its real stream size")
		}
		if st := srv2.Stats(); st.RunsOverBudget == 0 {
			t.Fatalf("RunsOverBudget = 0, want >= 1 (stats %+v)", st)
		}
	})
}
