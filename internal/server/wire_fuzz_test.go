package server

import (
	"bytes"
	"errors"
	"testing"

	"haac/internal/ot"
)

// Fuzz targets for the handshake codecs: arbitrary bytes must never
// panic, never demand an allocation beyond the codec's declared bounds,
// and fail only with the package's typed errors. CI runs each target
// for a short wall-clock budget (see .github/workflows/ci.yml); the
// committed corpora under testdata/fuzz pin the interesting shapes.

// FuzzReadHello: the server-side hello reader against garbage, plus the
// write/read roundtrip for every structurally valid frame it accepts.
func FuzzReadHello(f *testing.F) {
	// Structurally valid hello.
	var good bytes.Buffer
	if err := writeHello(&good, hello{ot: ot.DH, id: "add16", digest: [32]byte{1, 2, 3}}); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{})                                    // empty
	f.Add(good.Bytes()[:helloFixedSize])               // truncated after the fixed prefix
	f.Add([]byte("HAASgarbagegarbagegarbage"))         // right magic, wrong everything
	f.Add(bytes.Repeat([]byte{0xff}, 64))              // idLen far over maxIDLen
	f.Add(append([]byte("XAAS"), good.Bytes()[4:]...)) // wrong magic

	f.Fuzz(func(t *testing.T, data []byte) {
		h, status, err := readHello(bytes.NewReader(data))
		if err != nil {
			return // connection-level failure (truncation); no frame to validate
		}
		if status != statusOK {
			return // structurally readable but refused
		}
		if len(h.id) == 0 || len(h.id) > maxIDLen {
			t.Fatalf("accepted hello with id length %d outside 1..%d", len(h.id), maxIDLen)
		}
		switch h.ot {
		case ot.DH, ot.Insecure, ot.IKNP, ot.Pooled:
		default:
			t.Fatalf("accepted hello with unknown OT protocol %d", h.ot)
		}
		// Roundtrip: what was accepted re-encodes to a frame that reads
		// back identically.
		var buf bytes.Buffer
		if err := writeHello(&buf, h); err != nil {
			t.Fatalf("re-encoding accepted hello: %v", err)
		}
		h2, status2, err := readHello(bytes.NewReader(buf.Bytes()))
		if err != nil || status2 != statusOK {
			t.Fatalf("re-reading re-encoded hello: status %d, err %v", status2, err)
		}
		if h2.id != h.id || h2.ot != h.ot || h2.flags != h.flags || h2.digest != h.digest {
			t.Fatalf("hello roundtrip drifted: %+v vs %+v", h, h2)
		}
	})
}

// FuzzReadStatus: the client-side handshake-reply reader. Garbage must
// fail with a typed error — never a raw io error dressed as success and
// never an allocation driven by an unchecked wire length.
func FuzzReadStatus(f *testing.F) {
	var ok bytes.Buffer
	writeReply(&ok, statusOK, 96, "")
	f.Add(ok.Bytes())
	var pooled bytes.Buffer
	writeReply(&pooled, statusOKPooled, 96, "")
	f.Add(pooled.Bytes())
	var refused bytes.Buffer
	writeReply(&refused, statusDraining, 0, "server is draining")
	f.Add(refused.Bytes())
	f.Add([]byte{})
	f.Add([]byte{statusOK})                            // truncated numSlots
	f.Add([]byte{statusOKPooledIntegrity})             // truncated numSlots, pooled tier
	f.Add([]byte{statusBusy, 0xff, 0xff})              // msgLen 65535, no body
	f.Add([]byte{200, 0x04, 0x00, 'o', 'o', 'p', 's'}) // unknown status

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _, err := readReply(bytes.NewReader(data))
		if err == nil {
			return
		}
		for _, typed := range []error{
			ErrSessionClosed, ErrMalformedFrame, ErrUnknownCircuit,
			ErrDigestMismatch, ErrBadVersion, ErrBadRequest, ErrDraining, ErrBusy,
			ErrOverBudget, ErrInternal,
		} {
			if errors.Is(err, typed) {
				return
			}
		}
		t.Fatalf("readReply returned an untyped error: %v", err)
	})
}
