package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	"haac/internal/circuit"
	"haac/internal/workloads"
)

// TestPlanCacheHitRequiresCompletedBuild pins the hit semantics
// deterministically: a request that joins an in-flight singleflight
// build records a miss — it did not find a warm plan — and only
// requests that find an already-completed build count as hits.
func TestPlanCacheHitRequiresCompletedBuild(t *testing.T) {
	c := workloads.AddN(8).Build()
	pc := NewPlanCache(4)
	gate := make(chan struct{})
	build := func() (*circuit.Plan, error) {
		<-gate
		return circuit.NewPlan(c)
	}

	var wg sync.WaitGroup
	plans := make([]*circuit.Plan, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := pc.Get("k", build)
			if err != nil {
				t.Errorf("Get %d: %v", i, err)
			}
			plans[i] = p
		}(i)
	}
	// Both requests record their miss before blocking on the shared
	// build, so we can observe the split while the build is in flight.
	deadline := time.Now().Add(10 * time.Second)
	for pc.Counters().Misses != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if cc := pc.Counters(); cc.Misses != 2 || cc.Hits != 0 {
		t.Fatalf("counters while build in flight: %+v, want 2 misses / 0 hits", cc)
	}
	close(gate)
	wg.Wait()
	if plans[0] == nil || plans[0] != plans[1] {
		t.Fatal("singleflight joiners did not share one plan")
	}

	// Only now, against a completed build, does a request hit.
	if _, err := pc.Get("k", build); err != nil {
		t.Fatal(err)
	}
	if cc := pc.Counters(); cc.Misses != 2 || cc.Hits != 1 {
		t.Fatalf("counters after warm lookup: %+v, want 2 misses / 1 hit", cc)
	}
}

// TestPlanCacheFailedBuildIsNeverAHit: a failed build is not cached
// and never counts as a hit; the retry is a fresh miss and only the
// lookup after a successful rebuild hits.
func TestPlanCacheFailedBuildIsNeverAHit(t *testing.T) {
	c := workloads.AddN(8).Build()
	pc := NewPlanCache(4)
	boom := errors.New("synthetic build failure")
	if _, err := pc.Get("k", func() (*circuit.Plan, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("failing build: got %v, want %v", err, boom)
	}
	if pc.Len() != 0 {
		t.Fatalf("failed build left %d resident entries", pc.Len())
	}
	if _, err := pc.Get("k", func() (*circuit.Plan, error) { return circuit.NewPlan(c) }); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Get("k", func() (*circuit.Plan, error) { return circuit.NewPlan(c) }); err != nil {
		t.Fatal(err)
	}
	if cc := pc.Counters(); cc.Misses != 2 || cc.Hits != 1 {
		t.Fatalf("counters: %+v, want 2 misses (failure + rebuild) / 1 hit", cc)
	}
}
