package server

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"math/big"
	"net"
	"testing"
	"time"

	"haac/internal/ot"
	"haac/internal/workloads"
)

// selfSignedTLS mints a throwaway loopback certificate and returns the
// server config serving it and a client config that trusts exactly that
// certificate.
func selfSignedTLS(t *testing.T) (serverCfg, clientCfg *tls.Config) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "haac-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.IPv4(127, 0, 0, 1)},
		DNSNames:              []string{"localhost"},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	serverCfg = &tls.Config{Certificates: []tls.Certificate{{
		Certificate: [][]byte{der},
		PrivateKey:  key,
		Leaf:        leaf,
	}}}
	clientCfg = &tls.Config{RootCAs: pool, ServerName: "localhost"}
	return serverCfg, clientCfg
}

// TestTLSSessionByteIdentical runs the serving path over TLS end to
// end: a server with Config.TLS on a loopback listener, a client
// dialing with Options.TLS against a self-signed pair, runs
// byte-identical to the plaintext oracle — and the retry policy redials
// through the TLS handshake after a mid-session break.
func TestTLSSessionByteIdentical(t *testing.T) {
	serverCfg, clientCfg := selfSignedTLS(t)
	w := workloads.AddN(8)
	c := w.Build()
	garblerBits, _ := w.Inputs(1)
	srv, addr := startServer(t, Config{
		Circuits: []CircuitSpec{{
			ID:      w.Name,
			Circuit: c,
			Inputs:  func() []bool { return garblerBits },
		}},
		Seed:            42,
		AllowInsecureOT: true,
		TLS:             serverCfg,
	})
	defer srv.Close()

	sess, err := Dial(addr, w.Name, c, Options{
		OT:  ot.Insecure,
		TLS: clientCfg,
		Retry: RetryPolicy{
			MaxAttempts: 5,
			BaseBackoff: time.Millisecond,
			Seed:        1,
		},
	})
	if err != nil {
		t.Fatalf("TLS dial: %v", err)
	}
	defer sess.Close()
	for run := 0; run < 3; run++ {
		_, evalBits := w.Inputs(int64(100 + run))
		want, err := c.Eval(garblerBits, evalBits)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.Run(evalBits)
		if err != nil {
			t.Fatalf("run %d over TLS: %v", run, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("run %d: output %d = %v, want %v", run, j, got[j], want[j])
			}
		}
		if run == 0 {
			// Sever the conn under the session: the next run must redial
			// through a fresh TLS handshake and replay.
			sess.breakConn()
		}
	}
	if cs := sess.Stats(); cs.Reconnects == 0 {
		t.Errorf("Reconnects = %d, want > 0 after the injected break", cs.Reconnects)
	}
}

// TestTLSRejectsPlaintextAndUntrustedClients pins the failure edges: a
// plaintext client against a TLS listener fails its handshake rather
// than hanging or succeeding, and a TLS client that does not trust the
// server's certificate refuses to connect.
func TestTLSRejectsPlaintextAndUntrustedClients(t *testing.T) {
	serverCfg, clientCfg := selfSignedTLS(t)
	w := workloads.AddN(8)
	c := w.Build()
	garblerBits, _ := w.Inputs(1)
	_, addr := startServer(t, Config{
		Circuits: []CircuitSpec{{
			ID:      w.Name,
			Circuit: c,
			Inputs:  func() []bool { return garblerBits },
		}},
		Seed:            42,
		AllowInsecureOT: true,
		TLS:             serverCfg,
	})

	// Plaintext client: the hello bytes are TLS garbage to the server;
	// bound the exchange so the failure is prompt.
	plain := Options{OT: ot.Insecure, Dialer: func(a string) (net.Conn, error) {
		conn, err := net.Dial("tcp", a)
		if err == nil {
			conn.SetDeadline(time.Now().Add(2 * time.Second))
		}
		return conn, err
	}}
	if _, err := Dial(addr, w.Name, c, plain); err == nil {
		t.Error("plaintext dial against a TLS listener succeeded, want handshake failure")
	}

	// Untrusted client: empty root pool, so certificate verification
	// must fail.
	untrusted := &tls.Config{RootCAs: x509.NewCertPool(), ServerName: clientCfg.ServerName}
	var certErr *tls.CertificateVerificationError
	if _, err := Dial(addr, w.Name, c, Options{OT: ot.Insecure, TLS: untrusted}); !errors.As(err, &certErr) {
		t.Errorf("untrusted TLS dial = %v, want certificate verification error", err)
	}
}
