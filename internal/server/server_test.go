package server

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"haac/internal/circuit"
	"haac/internal/ot"
	"haac/internal/workloads"
)

// startServer launches a server on a loopback TCP listener and returns
// it with its address. Cleanup closes the server and joins Serve.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// TestConcurrentSessionsByteIdentical is the acceptance scenario: 16
// concurrent evaluator sessions against one server over loopback TCP
// all produce outputs identical to the plaintext oracle, with exactly
// one plan build for the shared circuit (cache counters and the global
// plan-build hook both asserted).
func TestConcurrentSessionsByteIdentical(t *testing.T) {
	w := workloads.DotProduct(3, 8)
	c := w.Build()
	garblerBits, _ := w.Inputs(1)

	buildsBefore := circuit.PlanBuilds()
	srv, addr := startServer(t, Config{
		Circuits: []CircuitSpec{{
			ID:      w.Name,
			Circuit: c,
			Inputs:  func() []bool { return garblerBits },
		}},
		Seed:            42,
		AllowInsecureOT: true,
	})

	const sessions = 16
	const runsPerSession = 3
	var wg sync.WaitGroup
	errc := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := Dial(addr, w.Name, c, Options{OT: ot.Insecure})
			if err != nil {
				errc <- fmt.Errorf("session %d: dial: %w", i, err)
				return
			}
			defer sess.Close()
			if sess.NumSlots() <= 0 || sess.NumSlots() > c.NumWires {
				errc <- fmt.Errorf("session %d: implausible NumSlots %d", i, sess.NumSlots())
				return
			}
			for run := 0; run < runsPerSession; run++ {
				_, evalBits := w.Inputs(int64(i*100 + run))
				want, err := c.Eval(garblerBits, evalBits)
				if err != nil {
					errc <- err
					return
				}
				got, err := sess.Run(evalBits)
				if err != nil {
					errc <- fmt.Errorf("session %d run %d: %w", i, run, err)
					return
				}
				for j := range want {
					if got[j] != want[j] {
						errc <- fmt.Errorf("session %d run %d: output %d = %v, want %v", i, run, j, got[j], want[j])
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Drain so every session goroutine has finalized its counters.
	srv.Close()
	st := srv.Stats()
	// Sessions racing the cold start that join the in-flight build count
	// as misses (only completed builds are hits), so the exact hit/miss
	// split depends on scheduling — but they always sum to the session
	// count, and the singleflight property (one build) is exact.
	if st.CacheMisses < 1 {
		t.Errorf("cache misses = %d, want >= 1", st.CacheMisses)
	}
	if st.CacheHits+st.CacheMisses != sessions {
		t.Errorf("cache hits+misses = %d+%d, want %d lookups", st.CacheHits, st.CacheMisses, sessions)
	}
	if got := circuit.PlanBuilds() - buildsBefore; got != 1 {
		t.Errorf("plans built = %d, want exactly 1", got)
	}
	if st.RunsServed != sessions*runsPerSession {
		t.Errorf("runs served = %d, want %d", st.RunsServed, sessions*runsPerSession)
	}
	if st.SessionsTotal != sessions {
		t.Errorf("sessions total = %d, want %d", st.SessionsTotal, sessions)
	}
	if st.BytesOut == 0 || st.BytesIn == 0 {
		t.Errorf("byte counters not accumulating: out=%d in=%d", st.BytesOut, st.BytesIn)
	}
}

// TestMultipleCircuitsAndOTProtocols: sessions for different circuits
// and OT protocols coexist; each circuit builds one plan.
func TestMultipleCircuitsAndOTProtocols(t *testing.T) {
	w1 := workloads.DotProduct(2, 8)
	w2 := workloads.AddN(16)
	c1, c2 := w1.Build(), w2.Build()
	g1, _ := w1.Inputs(3)
	g2, _ := w2.Inputs(3)
	srv, addr := startServer(t, Config{
		Circuits: []CircuitSpec{
			{ID: w1.Name, Circuit: c1, Inputs: func() []bool { return g1 }},
			{ID: w2.Name, Circuit: c2, Inputs: func() []bool { return g2 }},
		},
		Seed:            7,
		AllowInsecureOT: true,
	})
	for _, tc := range []struct {
		w    workloads.Workload
		c    *circuit.Circuit
		g    []bool
		otp  ot.Protocol
		seed int64
	}{
		{w1, c1, g1, ot.Insecure, 5},
		{w2, c2, g2, ot.DH, 6},
		{w1, c1, g1, ot.DH, 8},
	} {
		sess, err := Dial(addr, tc.w.Name, tc.c, Options{OT: tc.otp})
		if err != nil {
			t.Fatalf("%s/ot=%d: %v", tc.w.Name, tc.otp, err)
		}
		_, e := tc.w.Inputs(tc.seed)
		want, err := tc.c.Eval(tc.g, e)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.Run(e)
		if err != nil {
			t.Fatalf("%s/ot=%d: %v", tc.w.Name, tc.otp, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s/ot=%d: output %d mismatch", tc.w.Name, tc.otp, j)
			}
		}
		sess.Close()
	}
	if st := srv.Stats(); st.CacheMisses != 2 {
		t.Errorf("cache misses = %d, want 2 (one per circuit)", st.CacheMisses)
	}
}

// TestHandshakeRefusals: unknown ids, digest mismatches, bad versions
// and bad OT values all fail typed at the handshake, before any
// protocol byte flows.
func TestHandshakeRefusals(t *testing.T) {
	w := workloads.AddN(8)
	c := w.Build()
	_, addr := startServer(t, Config{
		Circuits: []CircuitSpec{{ID: "add8", Circuit: c}},
	})

	if _, err := Dial(addr, "no-such-circuit", c, Options{}); !errors.Is(err, ErrUnknownCircuit) {
		t.Errorf("unknown circuit: got %v, want ErrUnknownCircuit", err)
	}

	other := workloads.AddN(16).Build()
	if _, err := Dial(addr, "add8", other, Options{}); !errors.Is(err, ErrDigestMismatch) {
		t.Errorf("digest mismatch: got %v, want ErrDigestMismatch", err)
	}

	// Bad OT byte in the hello.
	if _, err := Dial(addr, "add8", c, Options{OT: ot.Protocol(99)}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("bad OT: got %v, want ErrBadRequest", err)
	}

	// Wrong handshake version, sent by hand.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	raw := []byte{0x48, 0x41, 0x41, 0x53, 99, 0, 0, 4, 0, 'a', 'd', 'd', '8'}
	raw = append(raw, make([]byte, 32)...)
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := readReply(conn); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: got %v, want ErrBadVersion", err)
	}

	// Garbage magic: the server refuses and closes.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := readReply(conn2); !errors.Is(err, ErrBadRequest) {
		t.Errorf("bad magic: got %v, want ErrBadRequest", err)
	}
}

// TestClientSidePlan: a client running its own precompiled plan gets
// the same outputs.
func TestClientSidePlan(t *testing.T) {
	w := workloads.DotProduct(2, 8)
	c := w.Build()
	g, _ := w.Inputs(2)
	_, addr := startServer(t, Config{
		Circuits:        []CircuitSpec{{ID: "dp", Circuit: c, Inputs: func() []bool { return g }}},
		Seed:            3,
		AllowInsecureOT: true,
	})
	p, err := circuit.NewPlan(c)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Dial(addr, "dp", c, Options{OT: ot.Insecure, Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for run := 0; run < 3; run++ {
		_, e := w.Inputs(int64(run))
		want, err := c.Eval(g, e)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.Run(e)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("run %d output %d mismatch", run, j)
			}
		}
	}
}

// TestGracefulClose: Close disconnects idle sessions, lets in-flight
// runs finish, and later Runs report a closed/draining session.
func TestGracefulClose(t *testing.T) {
	w := workloads.AddN(8)
	c := w.Build()
	g, _ := w.Inputs(1)
	srv, err := New(Config{
		Circuits:        []CircuitSpec{{ID: "add", Circuit: c, Inputs: func() []bool { return g }}},
		Seed:            9,
		AllowInsecureOT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sess, err := Dial(ln.Addr().String(), "add", c, Options{OT: ot.Insecure})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	_, e := w.Inputs(2)
	if _, err := sess.Run(e); err != nil {
		t.Fatal(err)
	}

	// The session is idle now; Close must not hang on it.
	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on an idle session")
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v", err)
	}

	if _, err := sess.Run(e); err == nil {
		t.Fatal("Run succeeded against a closed server")
	} else if !errors.Is(err, ErrSessionClosed) && !errors.Is(err, ErrDraining) {
		t.Fatalf("post-close Run error not typed: %v", err)
	}

	// New connections are refused outright.
	if _, err := Dial(ln.Addr().String(), "add", c, Options{}); err == nil {
		t.Fatal("Dial succeeded against a closed server")
	}
	// Serve on a closed server refuses too.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(ln2); !errors.Is(err, ErrDraining) {
		t.Fatalf("Serve after Close: got %v, want ErrDraining", err)
	}
	// Close twice is fine.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionByeEndsCleanly: Close sends the goodbye frame; the server
// ends the session without counting an error.
func TestSessionByeEndsCleanly(t *testing.T) {
	w := workloads.AddN(8)
	c := w.Build()
	srv, addr := startServer(t, Config{
		Circuits:        []CircuitSpec{{ID: "add", Circuit: c}},
		AllowInsecureOT: true,
	})
	sess, err := Dial(addr, "add", c, Options{OT: ot.Insecure})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing twice is a no-op; Run after Close is typed.
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(nil); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Run after Close: got %v, want ErrSessionClosed", err)
	}
	// The server-side session winds down; poll briefly for the gauge.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().ActiveSessions != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Stats().ActiveSessions; got != 0 {
		t.Fatalf("active sessions = %d after goodbye, want 0", got)
	}
}

// TestNewValidation: bad configurations fail fast.
func TestNewValidation(t *testing.T) {
	c := workloads.AddN(8).Build()
	cases := []Config{
		{},
		{Circuits: []CircuitSpec{{ID: "", Circuit: c}}},
		{Circuits: []CircuitSpec{{ID: "x", Circuit: nil}}},
		{Circuits: []CircuitSpec{{ID: "x", Circuit: c}, {ID: "x", Circuit: c}}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	srv, err := New(Config{Circuits: []CircuitSpec{{ID: "x", Circuit: c}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.Digest("x"); !ok {
		t.Error("Digest(x) not found")
	}
	if _, ok := srv.Digest("y"); ok {
		t.Error("Digest(y) found")
	}
}

func TestPlanCacheLRUAndSingleflight(t *testing.T) {
	mk := func(n int) func() (*circuit.Plan, error) {
		c := workloads.AddN(n).Build()
		return func() (*circuit.Plan, error) { return circuit.NewPlan(c) }
	}
	pc := NewPlanCache(2)

	// Singleflight: 8 concurrent first requests share one build.
	buildsBefore := circuit.PlanBuilds()
	var wg sync.WaitGroup
	plans := make([]*circuit.Plan, 8)
	for i := range plans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := pc.Get("a", mk(8))
			if err != nil {
				t.Error(err)
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	if got := circuit.PlanBuilds() - buildsBefore; got != 1 {
		t.Fatalf("singleflight built %d plans, want 1", got)
	}
	for _, p := range plans[1:] {
		if p != plans[0] {
			t.Fatal("concurrent getters received different plans")
		}
	}
	// Only completed builds count as hits: getters that joined the
	// in-flight build recorded misses, so the split is scheduling-
	// dependent, but every lookup is counted and at least the builder
	// missed.
	cc := pc.Counters()
	if cc.Misses < 1 || cc.Hits+cc.Misses != 8 {
		t.Fatalf("counters = %+v, want >=1 miss and 8 lookups", cc)
	}

	// LRU: touching a, then adding b and c evicts... a stays (recently
	// used), b is evicted when c arrives after a's touch.
	if _, err := pc.Get("b", mk(12)); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Get("a", mk(8)); err != nil { // touch a
		t.Fatal(err)
	}
	if _, err := pc.Get("c", mk(16)); err != nil { // evicts b
		t.Fatal(err)
	}
	if pc.Len() != 2 {
		t.Fatalf("cache len = %d, want 2", pc.Len())
	}
	if cc := pc.Counters(); cc.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", cc.Evictions)
	}
	buildsBefore = circuit.PlanBuilds()
	if _, err := pc.Get("b", mk(12)); err != nil { // rebuilt after eviction
		t.Fatal(err)
	}
	if got := circuit.PlanBuilds() - buildsBefore; got != 1 {
		t.Fatalf("evicted entry rebuilt %d times, want 1", got)
	}

	// Failed builds are not cached.
	boom := errors.New("boom")
	if _, err := pc.Get("bad", func() (*circuit.Plan, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	ok := false
	if _, err := pc.Get("bad", func() (*circuit.Plan, error) { ok = true; return circuit.NewPlan(workloads.AddN(8).Build()) }); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("failed build was cached; retry did not rebuild")
	}
}

// TestParallelRunnersReleasedOnClose: with Workers > 1 every pooled
// garbler runner owns worker goroutines; Close must release them all
// (regression test for the explicit runner free-list — a sync.Pool
// would drop entries without ever closing their pools).
func TestParallelRunnersReleasedOnClose(t *testing.T) {
	w := workloads.DotProduct(3, 8)
	c := w.Build()
	g, _ := w.Inputs(1)
	baseline := runtime.NumGoroutine()

	srv, err := New(Config{
		Circuits:        []CircuitSpec{{ID: "dp", Circuit: c, Inputs: func() []bool { return g }}},
		Workers:         4,
		Seed:            13,
		AllowInsecureOT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	// A few sequential sessions churn runners through the pool.
	for i := 0; i < 3; i++ {
		sess, err := Dial(ln.Addr().String(), "dp", c, Options{OT: ot.Insecure})
		if err != nil {
			t.Fatal(err)
		}
		_, e := w.Inputs(int64(i))
		if _, err := sess.Run(e); err != nil {
			t.Fatal(err)
		}
		sess.Close()
	}
	srv.Close()
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v", err)
	}

	// Worker goroutines wind down after Close; poll with a deadline
	// (liveness only — no timing asserted).
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Fatalf("%d goroutines after Close, baseline %d — worker pools leaked", n, baseline)
	}
}

// TestServerEvictionUnderSessions: a cache smaller than the circuit set
// still serves correctly, counting evictions.
func TestServerEvictionUnderSessions(t *testing.T) {
	ws := []workloads.Workload{workloads.AddN(8), workloads.AddN(12), workloads.AddN(16)}
	var specs []CircuitSpec
	circs := map[string]*circuit.Circuit{}
	for _, w := range ws {
		c := w.Build()
		circs[w.Name] = c
		specs = append(specs, CircuitSpec{ID: w.Name, Circuit: c})
	}
	srv, addr := startServer(t, Config{Circuits: specs, PlanCacheSize: 1, Seed: 4, AllowInsecureOT: true})
	for round := 0; round < 2; round++ {
		for _, w := range ws {
			c := circs[w.Name]
			sess, err := Dial(addr, w.Name, c, Options{OT: ot.Insecure})
			if err != nil {
				t.Fatal(err)
			}
			_, e := w.Inputs(int64(round))
			g := make([]bool, c.GarblerInputs)
			want, err := c.Eval(g, e)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sess.Run(e)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%s round %d: output %d mismatch", w.Name, round, j)
				}
			}
			sess.Close()
		}
	}
	st := srv.Stats()
	if st.CacheEvictions == 0 {
		t.Errorf("expected evictions with cache size 1 over 3 circuits, got %+v", st)
	}
	if st.CacheMisses < 3 {
		t.Errorf("misses = %d, want >= 3", st.CacheMisses)
	}
}
