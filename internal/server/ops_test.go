package server

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"haac/internal/ot"
	"haac/internal/workloads"
)

// get fetches a URL and returns the status code and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestOpsEndpoints drives /healthz and /metrics over loopback HTTP:
// health flips 200 -> 503 across Close, and the metrics exposition
// carries every counter family the fleet scrapes.
func TestOpsEndpoints(t *testing.T) {
	w := workloads.AddN(8)
	c := w.Build()
	g, _ := w.Inputs(1)
	srv, addr := startServer(t, Config{
		Circuits:        []CircuitSpec{{ID: "add", Circuit: c, Inputs: func() []bool { return g }}},
		Seed:            14,
		MaxSessions:     1,
		AllowInsecureOT: true,
	})
	ops := httptest.NewServer(srv.OpsHandler())
	defer ops.Close()

	if code, body := get(t, ops.URL+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz while serving: %d %q, want 200 ok", code, body)
	}

	// Serve one run and shed one connection so the counters are live.
	sess, err := Dial(addr, "add", c, Options{OT: ot.Insecure})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	_, e := w.Inputs(2)
	if _, err := sess.Run(e); err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(addr, "add", c, Options{OT: ot.Insecure}); err == nil {
		t.Fatal("over-cap dial succeeded")
	}
	// The client sees the result a hair before the server bumps its run
	// counters; wait for them to land before scraping.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().RunsServed != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	_, body := get(t, ops.URL+"/metrics")
	for _, metric := range []string{
		"haac_draining 0",
		"haac_sessions_active 1",
		"haac_sessions_total 1",
		"haac_sessions_refused_total 1",
		"haac_sessions_force_closed_total 0",
		"haac_runs_total 1",
		"haac_runs_failed_total 0",
		"haac_accept_retries_total 0",
		"haac_run_seconds_total",
		"haac_bytes_out_total",
		"haac_bytes_in_total",
		"haac_plan_cache_hits_total",
		"haac_plan_cache_misses_total 1",
		"haac_plan_cache_evictions_total 0",
		"haac_integrity_failures_total 0",
		"haac_runs_resumed_total 0",
		"haac_sessions_panicked_total 0",
		"haac_sessions_over_budget_total 0",
		"haac_runs_over_budget_total 0",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("metrics exposition missing %q:\n%s", metric, body)
		}
	}
	if strings.Contains(body, "haac_run_seconds_total 0\n") {
		t.Errorf("run latency counter still zero after a served run:\n%s", body)
	}

	sess.Close()
	srv.Close()
	if code, body := get(t, ops.URL+"/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("healthz after Close: %d %q, want 503 draining", code, body)
	}
	if _, body := get(t, ops.URL+"/metrics"); !strings.Contains(body, "haac_draining 1") {
		t.Errorf("metrics after Close missing haac_draining 1:\n%s", body)
	}
}

// TestReadyzStates walks /readyz through its three answers: 200 "ok"
// while routable, 503 "busy" while saturated at MaxSessions (the
// process is alive — /healthz stays 200 — but the next session would be
// refused), and 503 "draining" after Close.
func TestReadyzStates(t *testing.T) {
	w := workloads.AddN(8)
	c := w.Build()
	g, _ := w.Inputs(1)
	srv, addr := startServer(t, Config{
		Circuits:        []CircuitSpec{{ID: "add", Circuit: c, Inputs: func() []bool { return g }}},
		Seed:            15,
		MaxSessions:     1,
		AllowInsecureOT: true,
	})
	ops := httptest.NewServer(srv.OpsHandler())
	defer ops.Close()

	if code, body := get(t, ops.URL+"/readyz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("readyz while routable: %d %q, want 200 ok", code, body)
	}

	// Saturate the session cap: readyz flips to busy, healthz stays ok.
	sess, err := Dial(addr, "add", c, Options{OT: ot.Insecure})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if code, body := get(t, ops.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "busy") {
		t.Fatalf("readyz at MaxSessions: %d %q, want 503 busy", code, body)
	}
	if code, _ := get(t, ops.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz at MaxSessions: %d, want 200 (saturated is alive, just not routable)", code)
	}

	// Free the slot: routable again once the server retires the session.
	sess.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, _ := get(t, ops.URL+"/readyz")
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never recovered after the session closed")
		}
		time.Sleep(time.Millisecond)
	}

	srv.Close()
	if code, body := get(t, ops.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("readyz after Close: %d %q, want 503 draining", code, body)
	}
}

// TestServeOpsRacesClose drives ServeOps listeners concurrently against
// Close: the sidecar registers through the same drain-aware lifecycle
// as the session listeners, so no schedule can leak a listener past
// Close or trip the race detector over the draining flag. Run under
// -race in CI.
func TestServeOpsRacesClose(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		c := workloads.AddN(8).Build()
		srv, err := New(Config{Circuits: []CircuitSpec{{ID: "add", Circuit: c}}})
		if err != nil {
			t.Fatal(err)
		}
		const listeners = 4
		lns := make([]net.Listener, listeners)
		for i := range lns {
			if lns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
		}
		done := make(chan error, listeners)
		for _, ln := range lns {
			go func(ln net.Listener) { done <- srv.ServeOps(ln) }(ln)
		}
		// No synchronization: Close races the ServeOps registrations.
		srv.Close()
		for i := 0; i < listeners; i++ {
			// Both outcomes of the race are legal — a listener that
			// registered before Close winds down with nil, one that lost
			// the race is refused ErrDraining — but nothing else is.
			if err := <-done; err != nil && err != ErrDraining {
				t.Fatalf("trial %d: ServeOps racing Close returned %v", trial, err)
			}
		}
		for _, ln := range lns {
			ln.Close()
		}
	}
}

// TestServeOpsLifecycle: the sidecar serves on its own listener and
// winds down with the server like the session listeners do.
func TestServeOpsLifecycle(t *testing.T) {
	c := workloads.AddN(8).Build()
	srv, err := New(Config{Circuits: []CircuitSpec{{ID: "add", Circuit: c}}})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ServeOps(ln) }()

	// Poll until the HTTP server answers.
	url := "http://" + ln.Addr().String() + "/healthz"
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("healthz = %d, want 200", resp.StatusCode)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ops endpoint never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, body := get(t, "http://"+ln.Addr().String()+"/metrics"); code != http.StatusOK || !strings.Contains(body, "haac_sessions_active") {
		t.Fatalf("metrics over ServeOps: %d %q", code, body)
	}

	srv.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeOps returned %v after Close, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeOps did not return after Close")
	}
	// A drained server refuses a new ops listener, mirroring Serve.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ServeOps(ln2); err != ErrDraining {
		t.Fatalf("ServeOps after Close: %v, want ErrDraining", err)
	}
}
