package opt

import (
	"math/rand"
	"testing"

	"haac/internal/builder"
	"haac/internal/circuit"
	"haac/internal/workloads"
)

// randomCircuit with deliberate redundancy: duplicate gates, dead tails,
// and constant wires.
func redundantCircuit(rng *rand.Rand, gates int) *circuit.Circuit {
	ng, ne := 5, 5
	c := &circuit.Circuit{
		GarblerInputs:   ng,
		EvaluatorInputs: ne,
		HasConst:        true,
		Const0:          circuit.Wire(ng + ne),
		Const1:          circuit.Wire(ng + ne + 1),
	}
	next := circuit.Wire(ng + ne + 2)
	for i := 0; i < gates; i++ {
		a := circuit.Wire(rng.Intn(int(next)))
		b := circuit.Wire(rng.Intn(int(next)))
		op := []circuit.Op{circuit.XOR, circuit.AND, circuit.INV}[rng.Intn(3)]
		c.Gates = append(c.Gates, circuit.Gate{Op: op, A: a, B: b, C: next})
		next++
		// Occasionally duplicate the gate we just emitted (CSE food).
		if rng.Intn(4) == 0 {
			g := c.Gates[len(c.Gates)-1]
			c.Gates = append(c.Gates, circuit.Gate{Op: g.Op, A: g.A, B: g.B, C: next})
			next++
		}
	}
	c.NumWires = int(next)
	// Outputs from the middle: everything after is dead.
	mid := circuit.Wire(ng + ne + 2 + gates/2)
	c.Outputs = []circuit.Wire{mid, mid + 1, mid + 2}
	return c
}

func randBits(rng *rand.Rand, n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = rng.Intn(2) == 1
	}
	return b
}

func TestOptimizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		c := redundantCircuit(rng, 100+rng.Intn(200))
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		oc, res, err := Optimize(c)
		if err != nil {
			t.Fatal(err)
		}
		if res.After > res.Before {
			t.Fatalf("optimization grew the circuit: %v", res)
		}
		for i := 0; i < 5; i++ {
			g := randBits(rng, c.GarblerInputs)
			e := randBits(rng, c.EvaluatorInputs)
			want, err := c.Eval(g, e)
			if err != nil {
				t.Fatal(err)
			}
			got, err := oc.Eval(g, e)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("trial %d: output %d changed (%v)", trial, j, res)
				}
			}
		}
	}
}

func TestOptimizeRemovesDeadCode(t *testing.T) {
	b := builder.New()
	x := b.GarblerInputs(8)
	y := b.EvaluatorInputs(8)
	_ = b.Mul(x, y) // entirely dead
	b.Output(b.XOR(x[0], y[0]))
	c := b.MustBuild()
	oc, res, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(oc.Gates) != 1 {
		t.Fatalf("dead multiplier not removed: %d gates remain (%v)", len(oc.Gates), res)
	}
	if res.DeadEliminated == 0 {
		t.Fatal("no dead gates reported")
	}
}

func TestOptimizeCSE(t *testing.T) {
	// Hand-build duplicated gates (the builder would fold these itself).
	c := &circuit.Circuit{
		NumWires: 8, GarblerInputs: 2, EvaluatorInputs: 0,
		Gates: []circuit.Gate{
			{Op: circuit.AND, A: 0, B: 1, C: 2},
			{Op: circuit.AND, A: 1, B: 0, C: 3}, // commuted duplicate
			{Op: circuit.XOR, A: 2, B: 3, C: 4}, // x ^ x via CSE
			{Op: circuit.AND, A: 0, B: 1, C: 5}, // straight duplicate
			{Op: circuit.XOR, A: 4, B: 5, C: 6},
			{Op: circuit.INV, A: 6, C: 7},
		},
		Outputs: []circuit.Wire{7},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	oc, res, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.CSEDeduped < 2 {
		t.Fatalf("expected >=2 CSE hits, got %v", res)
	}
	and, _, _ := oc.CountOps()
	if and != 1 {
		t.Fatalf("duplicated ANDs survived: %d", and)
	}
	// Semantics: out = NOT((a&b ^ a&b) ^ a&b) = NOT(a&b)
	for v := 0; v < 4; v++ {
		g := []bool{v&1 == 1, v&2 == 2}
		got, err := oc.Eval(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := !(g[0] && g[1])
		if got[0] != want {
			t.Fatalf("CSE changed semantics at %d", v)
		}
	}
}

func TestOptimizeConstantFolding(t *testing.T) {
	c := &circuit.Circuit{
		NumWires: 9, GarblerInputs: 1, EvaluatorInputs: 0,
		HasConst: true, Const0: 1, Const1: 2,
		Gates: []circuit.Gate{
			{Op: circuit.AND, A: 0, B: 1, C: 3}, // x & 0 = 0
			{Op: circuit.XOR, A: 3, B: 0, C: 4}, // 0 ^ x = x
			{Op: circuit.AND, A: 4, B: 2, C: 5}, // x & 1 = x
			{Op: circuit.XOR, A: 1, B: 2, C: 6}, // 0 ^ 1 = 1
			{Op: circuit.AND, A: 5, B: 6, C: 7}, // x & 1 = x
			{Op: circuit.INV, A: 7, C: 8},       // NOT x
		},
		Outputs: []circuit.Wire{8},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	oc, res, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	and, _, inv := oc.CountOps()
	if and != 0 {
		t.Fatalf("constant ANDs survived: %d (%v)", and, res)
	}
	if inv != 1 {
		t.Fatalf("expected a single INV, got %d", inv)
	}
	for _, x := range []bool{false, true} {
		got, err := oc.Eval([]bool{x}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != !x {
			t.Fatal("constant folding changed semantics")
		}
	}
}

func TestOptimizeWorkloadsUnchangedBehaviour(t *testing.T) {
	for _, w := range workloads.VIPSuiteSmall() {
		if w.Name == "BubbSt" || w.Name == "GradDesc" || w.Name == "Triangle" {
			continue // slow; covered by the others
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			c := w.Build()
			oc, res, err := Optimize(c)
			if err != nil {
				t.Fatal(err)
			}
			g, e := w.Inputs(11)
			want := w.Reference(g, e)
			got, err := oc.Eval(g, e)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("optimization broke %s (%v)", w.Name, res)
				}
			}
			// Builder output is already folded, so gains should be small
			// but never negative.
			if res.After > res.Before {
				t.Fatalf("grew: %v", res)
			}
		})
	}
}

func TestOptimizeInvalidRejected(t *testing.T) {
	c := &circuit.Circuit{NumWires: 2, GarblerInputs: 1,
		Gates:   []circuit.Gate{{Op: circuit.AND, A: 5, B: 0, C: 1}},
		Outputs: []circuit.Wire{1}}
	if _, _, err := Optimize(c); err == nil {
		t.Fatal("invalid circuit accepted")
	}
}
