// Package opt implements netlist-level circuit optimizations applied
// before HAAC compilation. The builder already folds constants while
// constructing circuits, but externally supplied netlists (the Bristol
// files of the paper's EMP flow, Fig. 5) arrive as-is; EMP-produced
// circuits routinely contain dead gates, constant subexpressions and
// duplicate gates. Every AND eliminated here saves four AES calls on a
// CPU and a Half-Gate pipeline pass plus a 32-byte table on HAAC.
//
// Passes (all semantics-preserving, verified by property tests):
//
//   - constant propagation: gates whose inputs are known constants fold
//     away; XOR-with-constant-one collapses INV chains;
//   - common subexpression elimination: structurally identical gates
//     (same op and normalized inputs) share one output;
//   - dead code elimination: gates that do not reach an output vanish.
package opt

import (
	"fmt"

	"haac/internal/circuit"
)

// Result reports what the optimizer did.
type Result struct {
	Before, After  int // gate counts
	ConstFolded    int
	CSEDeduped     int
	DeadEliminated int
}

// String summarizes the result.
func (r Result) String() string {
	return fmt.Sprintf("opt: %d -> %d gates (const %d, cse %d, dce %d)",
		r.Before, r.After, r.ConstFolded, r.CSEDeduped, r.DeadEliminated)
}

const (
	unknown int8 = iota
	constFalse
	constTrue
)

// gateKey identifies a gate for CSE, with commutative inputs normalized.
type gateKey struct {
	op   circuit.Op
	a, b circuit.Wire
}

// Optimize returns an optimized copy of c and a transformation report.
// The input circuit is not modified.
func Optimize(c *circuit.Circuit) (*circuit.Circuit, Result, error) {
	if err := c.Validate(); err != nil {
		return nil, Result{}, fmt.Errorf("opt: %w", err)
	}
	res := Result{Before: len(c.Gates)}

	// Wire states: replacement target (union-find-ish single level since
	// we process in topological order), constant knowledge.
	repl := make([]circuit.Wire, c.NumWires)
	for i := range repl {
		repl[i] = circuit.Wire(i)
	}
	konst := make([]int8, c.NumWires)
	if c.HasConst {
		konst[c.Const0] = constFalse
		konst[c.Const1] = constTrue
	}
	// notOf caches INV results for chain collapsing.
	notOf := make(map[circuit.Wire]circuit.Wire)
	seen := make(map[gateKey]circuit.Wire)

	// constWire materializes a constant: requires the circuit to carry
	// const wires. If it doesn't, we add them (inputs grow by two).
	out := &circuit.Circuit{
		GarblerInputs:   c.GarblerInputs,
		EvaluatorInputs: c.EvaluatorInputs,
		HasConst:        c.HasConst,
		Const0:          c.Const0,
		Const1:          c.Const1,
	}
	ensureConst := func() {
		if out.HasConst {
			return
		}
		base := circuit.Wire(c.GarblerInputs + c.EvaluatorInputs)
		// The original circuit has no const wires, so its gate outputs
		// start at base; we renumber everything later, so just record
		// intent: we instead avoid needing materialization by keeping
		// constants symbolic until emission.
		_ = base
	}
	_ = ensureConst

	// We renumber wires densely as we emit gates.
	newID := make([]circuit.Wire, c.NumWires)
	nin := c.NumInputs()
	for w := 0; w < nin; w++ {
		newID[w] = circuit.Wire(w)
	}
	next := circuit.Wire(nin)
	var gates []circuit.Gate

	constOf := func(w circuit.Wire) int8 { return konst[w] }
	emit := func(op circuit.Op, a, b circuit.Wire) circuit.Wire {
		// CSE lookup on normalized key.
		ka, kb := a, b
		if op != circuit.INV && kb < ka {
			ka, kb = kb, ka
		}
		key := gateKey{op: op, a: ka, b: kb}
		if w, ok := seen[key]; ok {
			res.CSEDeduped++
			return w
		}
		id := circuit.Wire(c.NumWires) + next // temp id space, remapped in DCE
		next++
		gates = append(gates, circuit.Gate{Op: op, A: a, B: b, C: id})
		seen[key] = id
		return id
	}

	for i := range c.Gates {
		g := c.Gates[i]
		a := repl[g.A]
		b := repl[g.B]
		var newWire circuit.Wire
		folded := true
		switch g.Op {
		case circuit.XOR:
			ca, cb := constOf2(konst, a), constOf2(konst, b)
			switch {
			case a == b:
				newWire, folded = mustConstWire(c, constFalse), true
				if newWire == badWire {
					folded = false
				}
			case ca != unknown && cb != unknown:
				v := constFalse
				if (ca == constTrue) != (cb == constTrue) {
					v = constTrue
				}
				newWire = mustConstWire(c, v)
				if newWire == badWire {
					folded = false
				}
			case ca == constFalse:
				newWire = b
			case cb == constFalse:
				newWire = a
			case ca == constTrue:
				newWire, folded = emitNot(emit, notOf, b), true
			case cb == constTrue:
				newWire, folded = emitNot(emit, notOf, a), true
			default:
				folded = false
			}
		case circuit.AND:
			ca, cb := constOf2(konst, a), constOf2(konst, b)
			switch {
			case a == b:
				newWire = a
			case ca == constFalse || cb == constFalse:
				newWire = mustConstWire(c, constFalse)
				if newWire == badWire {
					folded = false
				}
			case ca == constTrue:
				newWire = b
			case cb == constTrue:
				newWire = a
			default:
				folded = false
			}
		case circuit.INV:
			ca := constOf2(konst, a)
			if ca != unknown {
				v := constTrue
				if ca == constTrue {
					v = constFalse
				}
				newWire = mustConstWire(c, v)
				if newWire == badWire {
					folded = false
				}
			} else {
				newWire, folded = emitNot(emit, notOf, a), true
			}
		}
		if !folded {
			newWire = emit(g.Op, a, b)
		} else {
			res.ConstFolded++
		}
		repl[g.C] = newWire
		_ = constOf
	}

	// Resolve outputs through replacements.
	outputs := make([]circuit.Wire, len(c.Outputs))
	for i, o := range c.Outputs {
		outputs[i] = repl[o]
	}

	// DCE: walk back from outputs over the emitted gate list.
	tempBase := circuit.Wire(c.NumWires)
	gateOf := make([]int32, next) // temp id -> emitted gate index
	for i := range gateOf {
		gateOf[i] = -1
	}
	for i := range gates {
		gateOf[gates[i].C-tempBase] = int32(i)
	}
	liveGate := make([]bool, len(gates))
	var stack []int32
	markWire := func(w circuit.Wire) {
		if w >= tempBase {
			gi := gateOf[w-tempBase]
			if gi >= 0 && !liveGate[gi] {
				liveGate[gi] = true
				stack = append(stack, gi)
			}
		}
	}
	for _, o := range outputs {
		markWire(o)
	}
	for len(stack) > 0 {
		gi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g := &gates[gi]
		markWire(g.A)
		if g.Op != circuit.INV {
			markWire(g.B)
		}
	}

	// Renumber: inputs keep their ids, live gates get dense ids.
	finalID := make([]circuit.Wire, int(next))
	id := circuit.Wire(nin)
	for i := range gates {
		if liveGate[i] {
			finalID[gates[i].C-tempBase] = id
			id++
		} else {
			res.DeadEliminated++
		}
	}
	mapWire := func(w circuit.Wire) circuit.Wire {
		if w >= tempBase {
			return finalID[w-tempBase]
		}
		return w
	}
	for i := range gates {
		if !liveGate[i] {
			continue
		}
		g := gates[i]
		ng := circuit.Gate{Op: g.Op, A: mapWire(g.A), C: mapWire(g.C)}
		if g.Op != circuit.INV {
			ng.B = mapWire(g.B)
		}
		out.Gates = append(out.Gates, ng)
	}
	out.NumWires = int(id)
	out.Outputs = make([]circuit.Wire, len(outputs))
	for i, o := range outputs {
		out.Outputs[i] = mapWire(o)
	}
	res.After = len(out.Gates)
	if err := out.Validate(); err != nil {
		return nil, res, fmt.Errorf("opt: produced invalid circuit: %w", err)
	}
	return out, res, nil
}

// badWire signals that a constant cannot be materialized because the
// circuit lacks constant wires; the caller keeps the gate instead.
const badWire = ^circuit.Wire(0)

// mustConstWire returns the circuit's constant wire for v, or badWire if
// the circuit has none (folding to a constant is then skipped — the
// gate stays, which is safe).
func mustConstWire(c *circuit.Circuit, v int8) circuit.Wire {
	if !c.HasConst {
		return badWire
	}
	if v == constTrue {
		return c.Const1
	}
	return c.Const0
}

func constOf2(konst []int8, w circuit.Wire) int8 {
	if int(w) < len(konst) {
		return konst[w]
	}
	return unknown
}

// emitNot emits (or reuses) an INV gate, collapsing double negation.
func emitNot(emit func(circuit.Op, circuit.Wire, circuit.Wire) circuit.Wire,
	notOf map[circuit.Wire]circuit.Wire, a circuit.Wire) circuit.Wire {
	if n, ok := notOf[a]; ok {
		return n
	}
	n := emit(circuit.INV, a, 0)
	notOf[a] = n
	notOf[n] = a
	return n
}
