package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"
)

// pipe returns a wrapped client end and the raw server end of an
// in-memory duplex connection.
func pipe(t *testing.T, plan Plan) (*Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return Wrap(a, plan, nil), b
}

// TestTransparentWhenZeroPlan: a zero plan forwards bytes unmodified,
// including chunk boundaries invisible to the peer.
func TestTransparentWhenZeroPlan(t *testing.T) {
	c, peer := pipe(t, Plan{Seed: 1})
	msg := []byte("the quick brown fox jumps over the lazy dog")
	go func() {
		c.Write(msg)
		c.Close()
	}()
	got, err := io.ReadAll(peer)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
	if s := c.Stats(); s.Drops.Load()+s.Stalls.Load()+s.Corruptions.Load() != 0 {
		t.Fatalf("zero plan injected faults: %+v", s)
	}
}

// TestChunkedWritesDeliverIdenticalBytes: MaxWriteChunk splits writes
// without changing the byte stream.
func TestChunkedWritesDeliverIdenticalBytes(t *testing.T) {
	c, peer := pipe(t, Plan{Seed: 2, MaxWriteChunk: 3})
	msg := make([]byte, 1000)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	go func() {
		n, err := c.Write(msg)
		if err != nil || n != len(msg) {
			t.Errorf("write = %d, %v", n, err)
		}
		c.Close()
	}()
	got, err := io.ReadAll(peer)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("chunked write corrupted the stream")
	}
}

// TestDropAfterBytesSeversBothEnds: the deterministic drop fires once
// the byte threshold crosses, types as ECONNRESET + ErrInjected, and
// the peer observes the connection closing.
func TestDropAfterBytesSeversBothEnds(t *testing.T) {
	c, peer := pipe(t, Plan{Seed: 3, DropAfterBytes: 8})
	peerErr := make(chan error, 1)
	go func() {
		io.Copy(io.Discard, peer)
		_, err := peer.Write([]byte("x"))
		peerErr <- err
	}()
	if _, err := c.Write(make([]byte, 8)); err != nil {
		t.Fatalf("first write under threshold failed: %v", err)
	}
	_, err := c.Write([]byte("y"))
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("drop error not typed: %v", err)
	}
	select {
	case err := <-peerErr:
		if err == nil {
			t.Fatal("peer write succeeded after drop")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never observed the drop")
	}
	if got := c.Stats().Drops.Load(); got != 1 {
		t.Fatalf("drops = %d, want 1", got)
	}
	// Every later op fails without touching the dead conn.
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-drop read: %v", err)
	}
}

// TestDelayedFIN: with FINDelay the injecting side fails immediately
// but the peer keeps blocking until the delayed FIN lands.
func TestDelayedFIN(t *testing.T) {
	c, peer := pipe(t, Plan{Seed: 4, DropAfterBytes: 1, FINDelay: 50 * time.Millisecond})
	go io.Copy(io.Discard, peer)
	c.Write([]byte("ab")) // crosses threshold
	// The peer blocks in a read that only the delayed FIN can end.
	unblocked := make(chan time.Duration, 1)
	start := time.Now()
	go func() {
		peer.Read(make([]byte, 1))
		unblocked <- time.Since(start)
	}()
	if _, err := c.Write([]byte("c")); !errors.Is(err, ErrInjected) {
		t.Fatalf("drop not injected: %v", err)
	}
	select {
	case elapsed := <-unblocked:
		if elapsed < 40*time.Millisecond {
			t.Fatalf("peer unblocked after %v, want >= ~50ms (FIN arrived early)", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delayed FIN never landed")
	}
}

// TestCorruptionBoundedToWindow: corruption flips bits only within the
// first CorruptFirst inbound bytes, and is counted.
func TestCorruptionBoundedToWindow(t *testing.T) {
	c, peer := pipe(t, Plan{Seed: 5, CorruptRate: 1, CorruptFirst: 4})
	msg := []byte{10, 20, 30, 40, 50, 60, 70, 80}
	go func() {
		peer.Write(msg)
		peer.Close()
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[4:], msg[4:]) {
		t.Fatalf("corruption escaped the window: got %v", got)
	}
	if bytes.Equal(got[:4], msg[:4]) {
		t.Fatalf("rate-1 corruption never fired in the window: got %v", got)
	}
	if c.Stats().Corruptions.Load() == 0 {
		t.Fatal("corruptions not counted")
	}
}

// TestDeterministicSchedule: the same seed over a deterministic
// transport injects the drop at the same op index.
func TestDeterministicSchedule(t *testing.T) {
	opIndex := func(seed uint64) int {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		c := Wrap(a, Plan{Seed: seed, DropRate: 0.2}, nil)
		go io.Copy(io.Discard, b)
		for i := 0; i < 1000; i++ {
			if _, err := c.Write([]byte("01234567")); err != nil {
				return i
			}
		}
		return -1
	}
	first := opIndex(99)
	if first < 0 {
		t.Fatal("drop rate 0.2 never fired in 1000 ops")
	}
	for i := 0; i < 3; i++ {
		if got := opIndex(99); got != first {
			t.Fatalf("schedule not deterministic: drop at op %d, then %d", first, got)
		}
	}
	if other := opIndex(100); other == first {
		t.Logf("distinct seeds collided at op %d (possible, not fatal)", first)
	}
}

// TestDialerDropOnce: with DropOnce, only the first dialed connection
// carries the deterministic byte-offset drop; redials run clean.
func TestDialerDropOnce(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				io.Copy(io.Discard, conn)
				conn.Close()
			}(conn)
		}
	}()
	d := &Dialer{Plan: Plan{Seed: 7, DropAfterBytes: 4}, DropOnce: true}
	c1, err := d.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c1.Write(make([]byte, 4))
	if _, err := c1.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("first conn did not drop: %v", err)
	}
	c2, err := d.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < 8; i++ {
		if _, err := c2.Write(make([]byte, 4)); err != nil {
			t.Fatalf("redialed conn dropped at write %d: %v", i, err)
		}
	}
	if got := d.Stats().Drops.Load(); got != 1 {
		t.Fatalf("drops = %d, want 1", got)
	}
	ln.Close()
	wg.Wait()
}

// TestListenerWrapsAccepted: accepted conns inject and share stats.
func TestListenerWrapsAccepted(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := WrapListener(raw, Plan{Seed: 8, DropAfterBytes: 2})
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 16)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(make([]byte, 64))
	deadline := time.Now().Add(5 * time.Second)
	for ln.Stats().Drops.Load() == 0 && time.Now().Before(deadline) {
		conn.Write(make([]byte, 64))
		time.Sleep(time.Millisecond)
	}
	if ln.Stats().Drops.Load() == 0 {
		t.Fatal("accepted conn never injected its drop")
	}
	if ln.Stats().Conns.Load() != 1 {
		t.Fatalf("conns = %d, want 1", ln.Stats().Conns.Load())
	}
}

// TestCorruptionWindowLowerBound: CorruptAfter exempts the stream
// prefix, and together with CorruptFirst aims every flipped bit into
// the [CorruptAfter, CorruptFirst) window even when a single read
// spans both edges.
func TestCorruptionWindowLowerBound(t *testing.T) {
	c, peer := pipe(t, Plan{Seed: 6, CorruptRate: 1, CorruptAfter: 8, CorruptFirst: 12})
	msg := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	go func() {
		peer.Write(msg)
		peer.Close()
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:8], msg[:8]) {
		t.Fatalf("corruption escaped below CorruptAfter: got %v", got)
	}
	if !bytes.Equal(got[12:], msg[12:]) {
		t.Fatalf("corruption escaped past CorruptFirst: got %v", got)
	}
	if bytes.Equal(got[8:12], msg[8:12]) {
		t.Fatalf("rate-1 corruption never fired inside the window: got %v", got)
	}
	if c.Stats().Corruptions.Load() == 0 {
		t.Fatal("corruptions not counted")
	}
}

// TestDialerCorruptOnce: with CorruptOnce, only the first dialed
// connection corrupts; redials carry a clean plan so one injected
// break can heal.
func TestDialerCorruptOnce(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				conn.Write(payload)
				conn.Close()
			}(conn)
		}
	}()
	d := &Dialer{Plan: Plan{Seed: 9, CorruptRate: 1}, CorruptOnce: true}
	read := func() []byte {
		t.Helper()
		conn, err := d.Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		got, err := io.ReadAll(conn)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if first := read(); bytes.Equal(first, payload) {
		t.Fatal("rate-1 corruption never fired on the first connection")
	}
	for i := 0; i < 3; i++ {
		if again := read(); !bytes.Equal(again, payload) {
			t.Fatalf("redial %d still corrupts under CorruptOnce", i)
		}
	}
	if got := d.Stats().Corruptions.Load(); got == 0 {
		t.Fatal("corruptions not counted")
	}
	ln.Close()
	wg.Wait()
}
