// Package faultnet wraps net.Conn, net.Listener and dialing with
// deterministic, seeded fault injection: connection drops, read/write
// stalls, partial (chunked) writes, byte corruption and delayed FINs,
// each at a configurable rate or byte offset. It exists so the serving
// layer's recovery story — client redial/re-handshake/replay against a
// restarting fleet — is proved by tests and the haacbench "chaos"
// experiment instead of asserted.
//
// Faults are rolled per I/O operation from a per-connection PRNG seeded
// off Plan.Seed, so a failing schedule replays from its seed. The roll
// sequence is exact under deterministic transports (net.Pipe); over TCP
// the kernel may split reads, so schedules are statistically stable
// rather than byte-exact — tests assert on outcomes (runs healed,
// drops observed), not op indices.
//
// An injected drop surfaces as an error wrapping both ErrInjected and
// syscall.ECONNRESET, so the protocol layer classifies it exactly like
// a real peer reset (proto.ErrPeerClosed) while tests can still tell
// injected faults from genuine ones.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrInjected marks every fault this package injects.
var ErrInjected = errors.New("faultnet: injected fault")

// Plan configures the faults one connection injects. The zero Plan
// injects nothing (a transparent wrapper).
type Plan struct {
	// Seed seeds the per-connection PRNG. Wrappers that open many
	// connections (Listener, Dialer) derive a distinct sub-seed per
	// connection so their schedules differ but remain reproducible.
	Seed uint64

	// DropRate is the per-I/O-operation probability of severing the
	// connection: the op fails with a reset-typed error and the
	// underlying conn is closed (after FINDelay, if set), so the peer
	// observes the drop too.
	DropRate float64
	// DropAfterBytes, when > 0, deterministically severs the connection
	// on the first op after the given total of bytes (both directions)
	// has crossed it — drops aimed at a precise protocol phase, e.g.
	// mid-OT.
	DropAfterBytes int64
	// FINDelay postpones closing the underlying conn after an injected
	// drop: the injecting side fails immediately while the peer keeps
	// blocking until the delayed FIN lands, like a half-dead NAT path.
	FINDelay time.Duration

	// StallRate is the per-op probability of sleeping Stall before the
	// op proceeds (Stall defaults to 1ms when a stall fires with a zero
	// duration).
	StallRate float64
	// Stall is the injected delay per stall.
	Stall time.Duration

	// CorruptRate is the per-read probability of flipping one random
	// bit in the bytes just read.
	CorruptRate float64
	// CorruptFirst, when > 0, restricts corruption to the first N bytes
	// of the inbound stream — aim it at handshake/header parsing, where
	// corruption is detectable, without silently garbling payload bytes
	// that carry no integrity check.
	CorruptFirst int64
	// CorruptAfter, when > 0, exempts the first N bytes of the inbound
	// stream from corruption. Together with CorruptFirst it aims
	// corruption at a window [CorruptAfter, CorruptFirst) — e.g. a
	// precise chunk of a bulk transfer, past the handshake, on a wire
	// tier that can detect it. Zero keeps the historical semantics
	// (corruption from the first byte).
	CorruptAfter int64

	// MaxWriteChunk, when > 0, splits every Write into chunks of at
	// most this many bytes (with independent drop/stall rolls per
	// chunk), exercising partial-write reassembly on the peer.
	MaxWriteChunk int
}

// Stats aggregates injected faults across the connections of one
// Listener or Dialer (or one Conn). Safe for concurrent use.
type Stats struct {
	Conns       atomic.Uint64 // connections wrapped
	Drops       atomic.Uint64 // injected connection drops
	Stalls      atomic.Uint64 // injected stalls
	Corruptions atomic.Uint64 // bits flipped
}

// Conn is a fault-injecting net.Conn wrapper.
type Conn struct {
	inner net.Conn
	plan  Plan
	stats *Stats

	mu         sync.Mutex
	rng        *rand.Rand
	total      int64 // bytes crossed in both directions
	readOff    int64 // inbound stream offset, for CorruptFirst
	dropped    bool
	closeTimer *time.Timer
}

// Wrap returns conn with plan's faults injected. A nil stats collector
// allocates a private one (readable via Conn.Stats).
func Wrap(conn net.Conn, plan Plan, stats *Stats) *Conn {
	if stats == nil {
		stats = &Stats{}
	}
	stats.Conns.Add(1)
	return &Conn{
		inner: conn,
		plan:  plan,
		stats: stats,
		rng:   rand.New(rand.NewSource(int64(plan.Seed))),
	}
}

// Stats returns the connection's fault counters (shared with the
// wrapping Listener/Dialer, when there is one).
func (c *Conn) Stats() *Stats { return c.stats }

// errDropped is the error every op returns once the connection has been
// injected-dropped; it matches both ErrInjected and ECONNRESET.
func errDropped() error {
	return fmt.Errorf("%w: %w", ErrInjected, syscall.ECONNRESET)
}

// roll decides the faults for one op under the mutex: whether to stall
// and whether to drop. It never performs I/O.
func (c *Conn) roll() (stall time.Duration, drop bool, dead bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dropped {
		return 0, false, true
	}
	if c.plan.StallRate > 0 && c.rng.Float64() < c.plan.StallRate {
		stall = c.plan.Stall
		if stall == 0 {
			stall = time.Millisecond
		}
		c.stats.Stalls.Add(1)
	}
	if c.plan.DropAfterBytes > 0 && c.total >= c.plan.DropAfterBytes {
		drop = true
	}
	if !drop && c.plan.DropRate > 0 && c.rng.Float64() < c.plan.DropRate {
		drop = true
	}
	if drop {
		c.dropped = true
	}
	return stall, drop, false
}

// drop severs the connection: the underlying conn closes now or after
// the plan's delayed FIN, and the caller's op fails reset-typed.
func (c *Conn) drop() error {
	c.stats.Drops.Add(1)
	if d := c.plan.FINDelay; d > 0 {
		c.mu.Lock()
		c.closeTimer = time.AfterFunc(d, func() { c.inner.Close() })
		c.mu.Unlock()
	} else {
		c.inner.Close()
	}
	return errDropped()
}

// Read rolls the fault plan before delegating: it may stall, sever the
// connection, or flip one bit of the bytes it returns (within the
// plan's corruption window) — exactly one bit per corrupted read, so
// tests can attribute a failure to a single wire fault.
func (c *Conn) Read(p []byte) (int, error) {
	stall, drop, dead := c.roll()
	if dead {
		return 0, errDropped()
	}
	if stall > 0 {
		time.Sleep(stall)
	}
	if drop {
		return 0, c.drop()
	}
	n, err := c.inner.Read(p)
	c.mu.Lock()
	c.total += int64(n)
	start := c.readOff
	c.readOff += int64(n)
	corrupt := n > 0 && c.plan.CorruptRate > 0 &&
		(c.plan.CorruptFirst <= 0 || start < c.plan.CorruptFirst) &&
		(c.plan.CorruptAfter <= 0 || c.readOff > c.plan.CorruptAfter) &&
		c.rng.Float64() < c.plan.CorruptRate
	if corrupt {
		// Clamp the victim to the slice of this read that overlaps the
		// [CorruptAfter, CorruptFirst) window.
		lo := 0
		if c.plan.CorruptAfter > 0 && c.plan.CorruptAfter > start {
			lo = int(c.plan.CorruptAfter - start)
		}
		hi := n
		if c.plan.CorruptFirst > 0 && c.plan.CorruptFirst-start < int64(n) {
			hi = int(c.plan.CorruptFirst - start)
		}
		if hi > lo { // empty only under a misconfigured CorruptAfter >= CorruptFirst
			victim := lo + c.rng.Intn(hi-lo)
			p[victim] ^= 1 << uint(c.rng.Intn(8))
			c.stats.Corruptions.Add(1)
		}
	}
	c.mu.Unlock()
	return n, err
}

// Write splits p into MaxWriteChunk slices and rolls the fault plan
// before each, so a drop can land mid-frame with a short write count —
// the partial-delivery case parsers must survive.
func (c *Conn) Write(p []byte) (int, error) {
	chunk := c.plan.MaxWriteChunk
	if chunk <= 0 {
		chunk = len(p)
	}
	written := 0
	for written < len(p) || (len(p) == 0 && written == 0) {
		stall, drop, dead := c.roll()
		if dead {
			return written, errDropped()
		}
		if stall > 0 {
			time.Sleep(stall)
		}
		if drop {
			return written, c.drop()
		}
		end := written + chunk
		if end > len(p) {
			end = len(p)
		}
		n, err := c.inner.Write(p[written:end])
		written += n
		c.mu.Lock()
		c.total += int64(n)
		c.mu.Unlock()
		if err != nil {
			return written, err
		}
		if len(p) == 0 {
			break
		}
	}
	return written, nil
}

// Close cancels any pending delayed-FIN timer and closes the inner
// connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closeTimer != nil {
		c.closeTimer.Stop()
	}
	c.mu.Unlock()
	return c.inner.Close()
}

// LocalAddr delegates to the wrapped connection.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr delegates to the wrapped connection.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline delegates to the wrapped connection; plan stalls sleep
// through deadlines rather than honoring them, like a kernel buffer
// would.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline delegates to the wrapped connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline delegates to the wrapped connection.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// subSeed derives the seed of the n-th connection of a wrapper from the
// plan seed (splitmix64 step, so consecutive n land far apart).
func subSeed(seed, n uint64) uint64 {
	z := seed + (n+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Listener wraps a net.Listener so every accepted connection injects
// the plan's faults with a per-connection derived seed.
type Listener struct {
	net.Listener
	plan  Plan
	stats Stats
	n     atomic.Uint64
}

// WrapListener returns ln with fault injection on every accepted conn.
func WrapListener(ln net.Listener, plan Plan) *Listener {
	return &Listener{Listener: ln, plan: plan}
}

// Accept waits for the next connection and wraps it.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	p := l.plan
	p.Seed = subSeed(l.plan.Seed, l.n.Add(1))
	return Wrap(conn, p, &l.stats), nil
}

// Stats returns the listener's aggregate fault counters.
func (l *Listener) Stats() *Stats { return &l.stats }

// Dialer dials TCP connections that inject the plan's faults, each with
// a per-connection derived seed. The zero value is unusable; fill Plan.
type Dialer struct {
	Plan Plan
	// DropOnce limits deterministic DropAfterBytes injection to the
	// first connection that trips it: without this, a reconnecting
	// client would hit the same byte offset on every redial and never
	// heal.
	DropOnce bool
	// CorruptOnce limits corruption to the first connection: later
	// (reconnected) connections carry a clean plan, so a test can prove
	// one corrupted transfer heals rather than corrupting every retry.
	CorruptOnce bool

	stats     Stats
	n         atomic.Uint64
	droppedMu sync.Mutex
	dropped   bool
	corrupted bool
}

// Dial opens a fault-injected TCP connection to addr.
func (d *Dialer) Dial(addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := d.Plan
	p.Seed = subSeed(d.Plan.Seed, d.n.Add(1))
	d.droppedMu.Lock()
	if d.DropOnce && p.DropAfterBytes > 0 {
		if d.dropped {
			p.DropAfterBytes = 0
		} else {
			d.dropped = true
		}
	}
	if d.CorruptOnce && p.CorruptRate > 0 {
		if d.corrupted {
			p.CorruptRate = 0
		} else {
			d.corrupted = true
		}
	}
	d.droppedMu.Unlock()
	return Wrap(conn, p, &d.stats), nil
}

// Stats returns the dialer's aggregate fault counters.
func (d *Dialer) Stats() *Stats { return &d.stats }
