package workloads

import (
	"fmt"
	"math/rand"

	"haac/internal/aes128"
	"haac/internal/builder"
	"haac/internal/circuit"
)

// Micro-benchmarks for the §6.6 / Table 5 comparison against prior
// accelerators (FASE, MAXelerator, FPGA Overlay, GPU). Sizes follow the
// prior works' workloads: AES-128, Mult-32, Hamm-50, Million-8/2, Add-6,
// Add-16, 5x5Matx-8, 3x3Matx-16.

// Mult32 multiplies two 32-bit integers (FASE's Mult-32).
func Mult32() Workload {
	w := MatMult(1, 32)
	w.Name = "Mult-32"
	w.Description = "single 32x32-bit multiply"
	w.PlainOps = 1
	return w
}

// AddN adds two n-bit integers (FPGA Overlay's Add-6, prior work Add-16).
func AddN(n int) Workload {
	return Workload{
		Name:        fmt.Sprintf("Add-%d", n),
		Description: fmt.Sprintf("single %d-bit addition", n),
		PlainOps:    1,
		Build: func() *circuit.Circuit {
			b := builder.New()
			x := b.GarblerInputs(n)
			y := b.EvaluatorInputs(n)
			b.OutputWord(b.Add(x, y))
			return b.MustBuild()
		},
		Inputs: func(seed int64) ([]bool, []bool) {
			rng := rand.New(rand.NewSource(seed))
			return wordsToBits(randWords(rng, 1, n), n), wordsToBits(randWords(rng, 1, n), n)
		},
		Reference: func(g, e []bool) []bool {
			mask := uint64(1)<<uint(n) - 1
			s := (bitsToWords(g, n)[0] + bitsToWords(e, n)[0]) & mask
			return wordsToBits([]uint64{s}, n)
		},
	}
}

// Millionaire compares two n-bit wealth values: outputs 1 iff the
// garbler is richer (the classic Yao benchmark; FASE's Million-8,
// FPGA Overlay's Million-2).
func Millionaire(n int) Workload {
	return Workload{
		Name:        fmt.Sprintf("Million-%d", n),
		Description: fmt.Sprintf("millionaires' problem on %d-bit values", n),
		PlainOps:    1,
		Build: func() *circuit.Circuit {
			b := builder.New()
			x := b.GarblerInputs(n)
			y := b.EvaluatorInputs(n)
			b.Output(b.GtU(x, y))
			return b.MustBuild()
		},
		Inputs: func(seed int64) ([]bool, []bool) {
			rng := rand.New(rand.NewSource(seed))
			return wordsToBits(randWords(rng, 1, n), n), wordsToBits(randWords(rng, 1, n), n)
		},
		Reference: func(g, e []bool) []bool {
			return []bool{bitsToWords(g, n)[0] > bitsToWords(e, n)[0]}
		},
	}
}

// HammN is the Hamming workload at prior work's size (Hamm-50).
func HammN(bits int) Workload {
	w := Hamming(bits)
	w.Name = fmt.Sprintf("Hamm-%d", bits)
	return w
}

// MatMultMicro is an n×n width-bit matrix multiply named per Table 5
// ("5x5Matx-8", "3x3Matx-16").
func MatMultMicro(n, width int) Workload {
	w := MatMult(n, width)
	w.Name = fmt.Sprintf("%dx%dMatx-%d", n, n, width)
	return w
}

// AES128 encrypts one block: the garbler owns the 128-bit key, the
// evaluator the 128-bit plaintext. Key expansion happens inside the
// circuit. S-boxes use the GF(2^4) tower construction (~59 AND each),
// keeping the AND count comparable to the standard Bristol AES netlist
// prior accelerators were measured on.
func AES128() Workload {
	return Workload{
		Name:        "AES-128",
		Description: "one AES-128 block encryption, in-circuit key schedule",
		PlainOps:    160,
		Build:       buildAESCircuit,
		Inputs: func(seed int64) ([]bool, []bool) {
			rng := rand.New(rand.NewSource(seed))
			key := make([]bool, 128)
			pt := make([]bool, 128)
			for i := range key {
				key[i] = rng.Intn(2) == 1
				pt[i] = rng.Intn(2) == 1
			}
			return key, pt
		},
		Reference: func(g, e []bool) []bool {
			var key [16]byte
			var pt [16]byte
			for i := 0; i < 128; i++ {
				if g[i] {
					key[i/8] |= 1 << uint(i%8)
				}
				if e[i] {
					pt[i/8] |= 1 << uint(i%8)
				}
			}
			ct := make([]byte, 16)
			aes128.EncryptBlock(&key, ct, pt[:])
			out := make([]bool, 128)
			for i := 0; i < 128; i++ {
				out[i] = ct[i/8]>>uint(i%8)&1 == 1
			}
			return out
		},
	}
}

// buildAESCircuit constructs the full AES-128 encryption circuit.
// Bytes are represented as 8-wire little-endian words; the 16-byte state
// is column-major as in FIPS-197 (byte index 4*c+r). The key-schedule
// and round-function pieces live in extensions.go so AES-CTR can share
// the schedule across blocks.
func buildAESCircuit() *circuit.Circuit {
	b := builder.New()
	keyBits := b.GarblerInputs(128)
	ptBits := b.EvaluatorInputs(128)
	rks := aesKeySchedule(b, keyBits)
	out := aesEncryptBlock(b, rks, ptBits)
	b.OutputWord(out)
	return b.MustBuild()
}

func gf256Double(x byte) byte {
	if x&0x80 != 0 {
		return x<<1 ^ 0x1b
	}
	return x << 1
}

// MicroSuite returns the Table 5 micro-benchmarks in row order.
func MicroSuite() []Workload {
	return []Workload{
		MatMultMicro(5, 8),
		MatMultMicro(3, 16),
		AES128(),
		Mult32(),
		HammN(50),
		Millionaire(8),
		AddN(6),
		AddN(16),
		Millionaire(2),
	}
}
