package workloads

import (
	"fmt"
	"math/rand"

	"haac/internal/builder"
	"haac/internal/circuit"
	"haac/internal/softfloat"
)

// GradDesc performs `rounds` iterations of batch gradient descent for
// one-dimensional linear regression y ≈ w·x + b over `samples` data
// points, entirely in binary32 floating point — the paper's "Linear
// Regression ... implemented with true floating point arithmetic" (§5).
// The garbler supplies the x vector, the evaluator the y vector; the
// learning rate (with the 1/m batch factor folded in) is public.
// Outputs are the final w and b bit patterns.
//
// Paper scale: 20 rounds; samples=12 lands near GradDesc's 6.3M gates.
// The float semantics are those of internal/softfloat, which the
// Reference oracle uses, so circuit outputs match it bit for bit.
func GradDesc(samples, rounds int) Workload {
	// lr = 1/64: exactly representable, keeps the descent stable for
	// inputs in [-1, 2).
	const lrBits = 0x3c800000
	return Workload{
		Name: "GradDesc",
		Description: fmt.Sprintf("linear regression, %d samples x %d rounds of FP32 gradient descent",
			samples, rounds),
		PlainOps: rounds * samples * 6,
		Build: func() *circuit.Circuit {
			b := builder.New()
			xs := make([]builder.Word, samples)
			ys := make([]builder.Word, samples)
			for i := range xs {
				xs[i] = b.GarblerInputs(32)
			}
			for i := range ys {
				ys[i] = b.EvaluatorInputs(32)
			}
			lr := b.ConstWord(lrBits, 32)
			w := b.ConstWord(0, 32)
			bb := b.ConstWord(0, 32)
			for r := 0; r < rounds; r++ {
				gw := b.ConstWord(0, 32)
				gb := b.ConstWord(0, 32)
				for i := 0; i < samples; i++ {
					pred := b.FAdd(b.FMul(w, xs[i]), bb)
					err := b.FSub(pred, ys[i])
					gw = b.FAdd(gw, b.FMul(err, xs[i]))
					gb = b.FAdd(gb, err)
				}
				w = b.FSub(w, b.FMul(lr, gw))
				bb = b.FSub(bb, b.FMul(lr, gb))
			}
			b.OutputWord(w)
			b.OutputWord(bb)
			return b.MustBuild()
		},
		Inputs: func(seed int64) ([]bool, []bool) {
			xs, ys := gradDescData(samples, seed)
			return wordsToBits(xs, 32), wordsToBits(ys, 32)
		},
		Reference: func(g, e []bool) []bool {
			xs := bitsToWords(g, 32)
			ys := bitsToWords(e, 32)
			w, bb := uint32(0), uint32(0)
			for r := 0; r < rounds; r++ {
				gw, gb := uint32(0), uint32(0)
				for i := range xs {
					pred := softfloat.Add(softfloat.Mul(w, uint32(xs[i])), bb)
					err := softfloat.Sub(pred, uint32(ys[i]))
					gw = softfloat.Add(gw, softfloat.Mul(err, uint32(xs[i])))
					gb = softfloat.Add(gb, err)
				}
				w = softfloat.Sub(w, softfloat.Mul(lrBits, gw))
				bb = softfloat.Sub(bb, softfloat.Mul(lrBits, gb))
			}
			return wordsToBits([]uint64{uint64(w), uint64(bb)}, 32)
		},
	}
}

// gradDescData draws x in [-1,2) and y = 0.75x + 0.5 + noise, as bit
// patterns, so the regression has a well-defined target.
func gradDescData(samples int, seed int64) (xs, ys []uint64) {
	rng := rand.New(rand.NewSource(seed))
	xs = make([]uint64, samples)
	ys = make([]uint64, samples)
	for i := range xs {
		x := rng.Float32()*3 - 1
		y := 0.75*x + 0.5 + (rng.Float32()-0.5)*0.01
		xs[i] = uint64(softfloat.FromFloat32(x))
		ys[i] = uint64(softfloat.FromFloat32(y))
	}
	return
}
