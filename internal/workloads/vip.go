package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"haac/internal/builder"
	"haac/internal/circuit"
)

// BubbleSort sorts n width-bit unsigned integers (garbler input) with a
// bubble-sort compare-and-swap network and outputs the sorted array.
// Paper scale: n=245, width=32 lands near VIP-Bench BubbSt's 12.5M gates.
func BubbleSort(n, width int) Workload {
	return Workload{
		Name:        "BubbSt",
		Description: fmt.Sprintf("bubble sort of %d %d-bit integers", n, width),
		PlainOps:    3 * n * n / 2,
		Build: func() *circuit.Circuit {
			b := builder.New()
			arr := make([]builder.Word, n)
			for i := range arr {
				arr[i] = b.GarblerInputs(width)
			}
			// A fixed bubble network: data-oblivious, like the VIP-Bench
			// port (GC circuits cannot branch on data).
			for i := 0; i < n-1; i++ {
				for j := 0; j < n-1-i; j++ {
					arr[j], arr[j+1] = b.SortPair(arr[j], arr[j+1])
				}
			}
			for _, w := range arr {
				b.OutputWord(w)
			}
			return b.MustBuild()
		},
		Inputs: func(seed int64) ([]bool, []bool) {
			rng := rand.New(rand.NewSource(seed))
			return wordsToBits(randWords(rng, n, width), width), nil
		},
		Reference: func(g, e []bool) []bool {
			ws := bitsToWords(g, width)
			sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
			return wordsToBits(ws, width)
		},
	}
}

// DotProduct computes the inner product of two n-element width-bit
// vectors, one per party, truncated to width bits. Paper scale: two
// 128-element 32-bit vectors (§5).
func DotProduct(n, width int) Workload {
	return Workload{
		Name:        "DotProd",
		Description: fmt.Sprintf("dot product of two %d-element %d-bit vectors", n, width),
		PlainOps:    2 * n,
		Build: func() *circuit.Circuit {
			b := builder.New()
			x := make([]builder.Word, n)
			y := make([]builder.Word, n)
			for i := range x {
				x[i] = b.GarblerInputs(width)
			}
			for i := range y {
				y[i] = b.EvaluatorInputs(width)
			}
			acc := b.ZeroWord(width)
			for i := range x {
				acc = b.Add(acc, b.Mul(x[i], y[i]))
			}
			b.OutputWord(acc)
			return b.MustBuild()
		},
		Inputs: func(seed int64) ([]bool, []bool) {
			rng := rand.New(rand.NewSource(seed))
			return wordsToBits(randWords(rng, n, width), width),
				wordsToBits(randWords(rng, n, width), width)
		},
		Reference: func(g, e []bool) []bool {
			xs := bitsToWords(g, width)
			ys := bitsToWords(e, width)
			mask := uint64(1)<<uint(width) - 1
			var acc uint64
			for i := range xs {
				acc = (acc + xs[i]*ys[i]) & mask
			}
			return wordsToBits([]uint64{acc}, width)
		},
	}
}

// mt19937 reference: state init from seed, one partial twist, tempering.
const (
	mtMul     = 1812433253
	mtMatA    = 0x9908b0df
	mtUpper   = 0x80000000
	mtLower   = 0x7fffffff
	mtM       = 397
	mtTemperB = 0x9d2c5680
	mtTemperC = 0xefc60000
)

func mtRef(seed uint32, nInit, nOut int) []uint32 {
	mt := make([]uint32, nInit)
	mt[0] = seed
	for i := 1; i < nInit; i++ {
		s := seed ^ uint32(i)*0x9e3779b9
		mt[i] = mtMul*(s^(s>>30)) + uint32(i)
	}
	out := make([]uint32, nOut)
	for i := 0; i < nOut; i++ {
		y := mt[i]&mtUpper | mt[(i+1)%nInit]&mtLower
		next := mt[(i+mtM)%nInit] ^ y>>1
		if y&1 == 1 {
			next ^= mtMatA
		}
		y = next
		y ^= y >> 11
		y ^= y << 7 & mtTemperB
		y ^= y << 15 & mtTemperC
		y ^= y >> 18
		out[i] = y
	}
	return out
}

// Mersenne initializes an MT19937-style state of nInit words from a
// 32-bit garbler seed, performs a partial twist, and outputs nOut
// tempered words. The multiplies in the state initialization dominate
// the gate count, matching Merse's profile in Table 2 (~27% AND).
// Paper scale: nInit=624 (the full MT19937 state), nOut=32.
//
// Deviation from stock MT19937 (documented in DESIGN.md): state word i
// is seeded from seed^i directly rather than from the serial recurrence
// mt[i-1] -> mt[i]. The serial recurrence makes the whole benchmark one
// long dependence chain (ILP ~10), while VIP-Bench's Merse has ILP ~818;
// parallel seeding preserves the workload's arithmetic mix and restores
// the parallelism profile the paper's Fig. 6 reordering results rely on.
func Mersenne(nInit, nOut int) Workload {
	if nOut > nInit {
		panic("workloads: Mersenne nOut must be <= nInit")
	}
	return Workload{
		Name:        "Merse",
		Description: fmt.Sprintf("MT19937-style init of %d words + %d tempered outputs", nInit, nOut),
		PlainOps:    4*nInit + 8*nOut,
		Build: func() *circuit.Circuit {
			b := builder.New()
			seed := b.GarblerInputs(32)
			mulC := b.ConstWord(mtMul, 32)
			mt := make([]builder.Word, nInit)
			mt[0] = seed
			for i := 1; i < nInit; i++ {
				s := b.XORWords(seed, b.ConstWord(uint64(i)*0x9e3779b9, 32))
				t := b.XORWords(s, b.ShrConst(s, 30))
				mt[i] = b.Add(b.Mul(t, mulC), b.ConstWord(uint64(i), 32))
			}
			for i := 0; i < nOut; i++ {
				y := b.ORWords(b.ANDConst(mt[i], mtUpper), b.ANDConst(mt[(i+1)%nInit], mtLower))
				next := b.XORWords(mt[(i+mtM)%nInit], b.ShrConst(y, 1))
				// Conditional XOR with the constant matrix: per set bit of
				// mtMatA this is an XOR with y's LSB — no AND gates.
				matA := make(builder.Word, 32)
				for j := 0; j < 32; j++ {
					if mtMatA>>uint(j)&1 == 1 {
						matA[j] = y[0]
					} else {
						matA[j] = b.Const(false)
					}
				}
				y = b.XORWords(next, matA)
				y = b.XORWords(y, b.ShrConst(y, 11))
				y = b.XORWords(y, b.ANDConst(b.ShlConst(y, 7), mtTemperB))
				y = b.XORWords(y, b.ANDConst(b.ShlConst(y, 15), mtTemperC))
				y = b.XORWords(y, b.ShrConst(y, 18))
				b.OutputWord(y)
			}
			return b.MustBuild()
		},
		Inputs: func(seed int64) ([]bool, []bool) {
			rng := rand.New(rand.NewSource(seed))
			return wordsToBits([]uint64{uint64(rng.Uint32())}, 32), nil
		},
		Reference: func(g, e []bool) []bool {
			seed := uint32(bitsToWords(g, 32)[0])
			out := mtRef(seed, nInit, nOut)
			ws := make([]uint64, len(out))
			for i, v := range out {
				ws[i] = uint64(v)
			}
			return wordsToBits(ws, 32)
		},
	}
}

// TriangleCount counts triangles in an undirected n-vertex graph whose
// upper-triangular adjacency bits are the garbler's input. The count is
// a popcount over all C(n,3) vertex triples. Paper scale: n=128.
func TriangleCount(n int) Workload {
	nEdges := n * (n - 1) / 2
	countWidth := 1
	for 1<<uint(countWidth) < n*(n-1)*(n-2)/6+1 {
		countWidth++
	}
	edgeIdx := func(i, j int) int { // i < j
		return i*(2*n-i-1)/2 + (j - i - 1)
	}
	return Workload{
		Name:        "Triangle",
		Description: fmt.Sprintf("triangle count over a %d-vertex graph (%d edge bits)", n, nEdges),
		PlainOps:    n * n * n / 6,
		Build: func() *circuit.Circuit {
			b := builder.New()
			adj := b.GarblerInputs(nEdges)
			var tri []builder.Wire
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					ij := adj[edgeIdx(i, j)]
					for k := j + 1; k < n; k++ {
						t := b.AND(b.AND(ij, adj[edgeIdx(j, k)]), adj[edgeIdx(i, k)])
						tri = append(tri, t)
					}
				}
			}
			b.OutputWord(b.ExtendZero(b.PopCount(tri), countWidth))
			return b.MustBuild()
		},
		Inputs: func(seed int64) ([]bool, []bool) {
			rng := rand.New(rand.NewSource(seed))
			bits := make([]bool, nEdges)
			for i := range bits {
				bits[i] = rng.Intn(4) == 0 // sparse-ish graph
			}
			return bits, nil
		},
		Reference: func(g, e []bool) []bool {
			var count uint64
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if !g[edgeIdx(i, j)] {
						continue
					}
					for k := j + 1; k < n; k++ {
						if g[edgeIdx(j, k)] && g[edgeIdx(i, k)] {
							count++
						}
					}
				}
			}
			return wordsToBits([]uint64{count}, countWidth)
		},
	}
}

// Hamming computes the Hamming distance between two bit vectors, one per
// party. Paper scale: 40960 bits (§5).
func Hamming(bits int) Workload {
	outWidth := 1
	for 1<<uint(outWidth) < bits+1 {
		outWidth++
	}
	return Workload{
		Name:        "Hamm",
		Description: fmt.Sprintf("Hamming distance over %d-bit vectors", bits),
		PlainOps:    bits / 16,
		Build: func() *circuit.Circuit {
			b := builder.New()
			x := b.GarblerInputs(bits)
			y := b.EvaluatorInputs(bits)
			diff := make([]builder.Wire, bits)
			for i := range diff {
				diff[i] = b.XOR(x[i], y[i])
			}
			b.OutputWord(b.ExtendZero(b.PopCount(diff), outWidth))
			return b.MustBuild()
		},
		Inputs: func(seed int64) ([]bool, []bool) {
			rng := rand.New(rand.NewSource(seed))
			g := make([]bool, bits)
			e := make([]bool, bits)
			for i := range g {
				g[i] = rng.Intn(2) == 1
				e[i] = rng.Intn(2) == 1
			}
			return g, e
		},
		Reference: func(g, e []bool) []bool {
			var d uint64
			for i := range g {
				if g[i] != e[i] {
					d++
				}
			}
			return wordsToBits([]uint64{d}, outWidth)
		},
	}
}

// MatMult multiplies two n×n width-bit matrices, one per party, with
// width-bit truncating arithmetic. Paper scale: 8×8, 32-bit (§5).
func MatMult(n, width int) Workload {
	return Workload{
		Name:        "MatMult",
		Description: fmt.Sprintf("%d x %d matrix multiply, %d-bit", n, n, width),
		PlainOps:    2 * n * n * n,
		Build: func() *circuit.Circuit {
			b := builder.New()
			a := make([]builder.Word, n*n)
			c := make([]builder.Word, n*n)
			for i := range a {
				a[i] = b.GarblerInputs(width)
			}
			for i := range c {
				c[i] = b.EvaluatorInputs(width)
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					acc := b.ZeroWord(width)
					for k := 0; k < n; k++ {
						acc = b.Add(acc, b.Mul(a[i*n+k], c[k*n+j]))
					}
					b.OutputWord(acc)
				}
			}
			return b.MustBuild()
		},
		Inputs: func(seed int64) ([]bool, []bool) {
			rng := rand.New(rand.NewSource(seed))
			return wordsToBits(randWords(rng, n*n, width), width),
				wordsToBits(randWords(rng, n*n, width), width)
		},
		Reference: func(g, e []bool) []bool {
			a := bitsToWords(g, width)
			c := bitsToWords(e, width)
			mask := uint64(1)<<uint(width) - 1
			out := make([]uint64, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					var acc uint64
					for k := 0; k < n; k++ {
						acc = (acc + a[i*n+k]*c[k*n+j]) & mask
					}
					out[i*n+j] = acc
				}
			}
			return wordsToBits(out, width)
		},
	}
}

// ReLU applies max(x, 0) to count signed width-bit integers from the
// evaluator. Paper scale: 2048 evaluations (§5); matches Table 2's
// profile (2 levels, ~97% AND — one mask AND per bit plus one INV).
func ReLU(count, width int) Workload {
	return Workload{
		Name:        "ReLU",
		Description: fmt.Sprintf("%d ReLU evaluations on %d-bit ints", count, width),
		PlainOps:    count,
		Build: func() *circuit.Circuit {
			b := builder.New()
			for i := 0; i < count; i++ {
				x := b.EvaluatorInputs(width)
				pos := b.NOT(x[width-1])
				out := make(builder.Word, width)
				for j := range out {
					out[j] = b.AND(x[j], pos)
				}
				b.OutputWord(out)
			}
			return b.MustBuild()
		},
		Inputs: func(seed int64) ([]bool, []bool) {
			rng := rand.New(rand.NewSource(seed))
			return nil, wordsToBits(randWords(rng, count, width), width)
		},
		Reference: func(g, e []bool) []bool {
			xs := bitsToWords(e, width)
			out := make([]uint64, len(xs))
			for i, x := range xs {
				if x>>(uint(width)-1)&1 == 0 {
					out[i] = x
				}
			}
			return wordsToBits(out, width)
		},
	}
}
