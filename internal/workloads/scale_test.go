package workloads

import "testing"

func TestPaperScaleStats(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for _, w := range VIPSuite() {
		c := w.Build()
		s := c.ComputeStats()
		t.Logf("%-10s gates=%9d AND%%=%5.1f levels=%7d ILP=%8.0f wires=%9d",
			w.Name, s.Gates, s.ANDPercent, s.Levels, s.ILP, s.Wires)
	}
}
