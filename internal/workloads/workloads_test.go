package workloads

import (
	"math"
	"testing"
)

// TestSmallSuiteMatchesReference checks every reduced-size VIP workload
// end to end: build, validate, evaluate on three input seeds, compare
// with the native reference.
func TestSmallSuiteMatchesReference(t *testing.T) {
	for _, w := range VIPSuiteSmall() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			c := w.Build()
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
			for seed := int64(1); seed <= 3; seed++ {
				g, e := w.Inputs(seed)
				got, err := c.Eval(g, e)
				if err != nil {
					t.Fatal(err)
				}
				want := w.Reference(g, e)
				if len(got) != len(want) {
					t.Fatalf("seed %d: %d output bits, reference has %d", seed, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed %d: output bit %d mismatch", seed, i)
					}
				}
			}
			s := c.ComputeStats()
			t.Logf("%s: %d gates (%.1f%% AND), %d levels, ILP %.0f",
				w.Name, s.Gates, s.ANDPercent, s.Levels, s.ILP)
		})
	}
}

func TestMicroSuiteMatchesReference(t *testing.T) {
	for _, w := range MicroSuite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if _, err := w.Check(7); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAESCircuitSize(t *testing.T) {
	c := AES128().Build()
	and, xor, inv := c.CountOps()
	// The tower S-box gives ~59 AND x 200 S-boxes ~= 12k AND; the
	// standard Bristol netlist is ~6.4k (it shares key-schedule work).
	// Anything within a small factor keeps Table 5 comparable.
	if and < 5000 || and > 20000 {
		t.Fatalf("AES-128 AND count %d outside expected envelope", and)
	}
	t.Logf("AES-128: %d AND, %d XOR, %d INV", and, xor, inv)
}

func TestReLUShapeMatchesTable2(t *testing.T) {
	// Table 2: ReLU has 2 dependence levels and ~97%% AND gates.
	c := ReLU(32, 32).Build()
	s := c.ComputeStats()
	if s.Levels != 2 {
		t.Fatalf("ReLU levels = %d, want 2", s.Levels)
	}
	if s.ANDPercent < 90 {
		t.Fatalf("ReLU AND%% = %.1f, want > 90", s.ANDPercent)
	}
}

func TestMersenneReferenceSelfConsistent(t *testing.T) {
	// The first outputs of mtRef with full state must be stable across
	// calls (pure function) and depend on the seed.
	a := mtRef(5489, 624, 4)
	b := mtRef(5489, 624, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("mtRef is not deterministic")
		}
	}
	c := mtRef(1234, 624, 4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("mtRef ignores seed")
	}
}

func TestGradDescConverges(t *testing.T) {
	// With enough rounds the learned parameters should approach the
	// generating line y = 0.75x + 0.5. Uses the native reference only.
	w := GradDesc(16, 200)
	g, e := w.Inputs(42)
	out := w.Reference(g, e)
	ws := bitsToWords(out, 32)
	learnedW := float64(f32(uint32(ws[0])))
	learnedB := float64(f32(uint32(ws[1])))
	if learnedW < 0.5 || learnedW > 1.0 {
		t.Fatalf("learned w = %v, want near 0.75", learnedW)
	}
	if learnedB < 0.25 || learnedB > 0.75 {
		t.Fatalf("learned b = %v, want near 0.5", learnedB)
	}
}

func TestTriangleEdgeIndexing(t *testing.T) {
	// Complete graph on 5 vertices has C(5,3)=10 triangles.
	w := TriangleCount(5)
	c := w.Build()
	nEdges := 5 * 4 / 2
	g := make([]bool, nEdges)
	for i := range g {
		g[i] = true
	}
	out, err := c.Eval(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := boolsVal(out); got != 10 {
		t.Fatalf("K5 triangle count = %d, want 10", got)
	}
}

func TestBubbleSortWorstCase(t *testing.T) {
	w := BubbleSort(6, 8)
	c := w.Build()
	// Strictly decreasing input must come out increasing.
	in := []uint64{200, 150, 100, 50, 25, 5}
	g := wordsToBits(in, 8)
	out, err := c.Eval(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ws := bitsToWords(out, 8)
	for i := 1; i < len(ws); i++ {
		if ws[i-1] > ws[i] {
			t.Fatalf("not sorted: %v", ws)
		}
	}
}

func boolsVal(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

func f32(bits uint32) float32 {
	return math.Float32frombits(bits)
}

func TestExtensionSuiteMatchesReference(t *testing.T) {
	for _, w := range ExtensionSuite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if _, err := w.Check(13); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLevenshteinKnownCases(t *testing.T) {
	w := Levenshtein(4, 8)
	c := w.Build()
	run := func(a, b []uint64) uint64 {
		out, err := c.Eval(wordsToBits(a, 8), wordsToBits(b, 8))
		if err != nil {
			t.Fatal(err)
		}
		return boolsVal(out)
	}
	// identical strings -> 0
	if d := run([]uint64{1, 2, 3, 4}, []uint64{1, 2, 3, 4}); d != 0 {
		t.Fatalf("identical distance = %d", d)
	}
	// completely different -> 4 substitutions
	if d := run([]uint64{1, 2, 3, 4}, []uint64{9, 9, 9, 9}); d != 4 {
		t.Fatalf("disjoint distance = %d", d)
	}
	// one substitution
	if d := run([]uint64{1, 2, 3, 4}, []uint64{1, 9, 3, 4}); d != 1 {
		t.Fatalf("one-sub distance = %d", d)
	}
}

func TestHistogramSumsToN(t *testing.T) {
	w := Histogram(24, 8, 2)
	c := w.Build()
	_, e := w.Inputs(5)
	out, err := c.Eval(nil, e)
	if err != nil {
		t.Fatal(err)
	}
	cntWidth := len(out) / 4
	total := uint64(0)
	for i := 0; i < 4; i++ {
		total += boolsVal(out[i*cntWidth : (i+1)*cntWidth])
	}
	if total != 24 {
		t.Fatalf("histogram counts sum to %d, want 24", total)
	}
}

func TestAESCTRSharesKeySchedule(t *testing.T) {
	one := AES128().Build()
	ctr4 := AESCTR(4).Build()
	a1, _, _ := one.CountOps()
	a4, _, _ := ctr4.CountOps()
	// 4 blocks share one key schedule: cost must be well under 4x the
	// single-block circuit (which includes its own schedule).
	if a4 >= 4*a1 {
		t.Fatalf("CTR mode not sharing the key schedule: %d vs 4x%d", a4, a1)
	}
	if a4 <= 2*a1 {
		t.Fatalf("CTR gate count %d implausibly small vs single block %d", a4, a1)
	}
}

func TestBatcherSortCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 16, 20} {
		w := BatcherSort(n, 8)
		if _, err := w.Check(int64(n)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBatcherBeatsBubbleAsymptotically(t *testing.T) {
	bubble := BubbleSort(32, 16).Build()
	batcher := BatcherSort(32, 16).Build()
	ab, _, _ := bubble.CountOps()
	at, _, _ := batcher.CountOps()
	if at >= ab/2 {
		t.Fatalf("Batcher AND count %d not clearly below bubble's %d", at, ab)
	}
}
