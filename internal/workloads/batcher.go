package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"haac/internal/builder"
	"haac/internal/circuit"
)

// BatcherSort sorts n width-bit integers with Batcher's odd-even merge
// sorting network — the O(n log² n) alternative to VIP-Bench's O(n²)
// bubble network. Keeping both lets the repository quantify how much of
// BubbSt's 12.5M-gate cost is the algorithm rather than the protocol:
// at the paper's n=245, Batcher needs ~25x fewer compare-swap blocks.
// n must be reachable by the network (any n works; indices beyond n are
// simply skipped).
func BatcherSort(n, width int) Workload {
	pairs := batcherPairs(n)
	return Workload{
		Name:        fmt.Sprintf("BatchSt-%d", n),
		Description: fmt.Sprintf("Batcher odd-even mergesort of %d %d-bit integers (%d compare-swaps)", n, width, len(pairs)),
		PlainOps:    len(pairs) * 3,
		Build: func() *circuit.Circuit {
			b := builder.New()
			arr := make([]builder.Word, n)
			for i := range arr {
				arr[i] = b.GarblerInputs(width)
			}
			for _, pr := range pairs {
				arr[pr[0]], arr[pr[1]] = b.SortPair(arr[pr[0]], arr[pr[1]])
			}
			for _, w := range arr {
				b.OutputWord(w)
			}
			return b.MustBuild()
		},
		Inputs: func(seed int64) ([]bool, []bool) {
			rng := rand.New(rand.NewSource(seed))
			return wordsToBits(randWords(rng, n, width), width), nil
		},
		Reference: func(g, e []bool) []bool {
			ws := bitsToWords(g, width)
			sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
			return wordsToBits(ws, width)
		},
	}
}

// batcherPairs generates the compare-exchange schedule of Batcher's
// odd-even merge sort for arbitrary n (Knuth TAOCP vol. 3, 5.2.2M).
func batcherPairs(n int) [][2]int {
	var pairs [][2]int
	for p := 1; p < n; p *= 2 {
		for k := p; k >= 1; k /= 2 {
			for j := k % p; j <= n-1-k; j += 2 * k {
				for i := 0; i <= min(k-1, n-j-k-1); i++ {
					if (i+j)/(2*p) == (i+j+k)/(2*p) {
						pairs = append(pairs, [2]int{i + j, i + j + k})
					}
				}
			}
		}
	}
	return pairs
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
