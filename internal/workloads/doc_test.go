package workloads_test

// Example-style documentation tests exercising the workload API the way
// downstream code does.

import (
	"fmt"

	"haac/internal/circuit"
	"haac/internal/workloads"
)

func ExampleWorkload_Check() {
	w := workloads.Millionaire(8)
	c, err := w.Check(1)
	if err != nil {
		fmt.Println("check failed:", err)
		return
	}
	and, _, _ := c.CountOps()
	fmt.Printf("millionaires' circuit: %d AND gates, %d output\n", and, len(c.Outputs))
	// Output: millionaires' circuit: 8 AND gates, 1 output
}

func ExampleMerge() {
	// Batch two independent adders into one circuit.
	a := workloads.AddN(4).Build()
	b := workloads.AddN(4).Build()
	m, err := circuit.Merge(a, b)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("batched: %d garbler inputs, %d outputs\n", m.GarblerInputs, len(m.Outputs))
	// Output: batched: 8 garbler inputs, 8 outputs
}
