package workloads

import (
	"fmt"
	"math/rand"

	"haac/internal/builder"
	"haac/internal/circuit"
)

// Extension workloads beyond the paper's eight: classic GC benchmarks
// from the broader literature (Levenshtein distance is the workhorse of
// the GPU comparisons the paper cites [62, 63]; private histograms and
// counter-mode AES show up in the deployment stories of §2.2). They
// exercise builder features the VIP suite does not touch — division,
// secret-indexed selection, three-way minima — and give the accelerator
// additional shapes: dynamic-programming grids (wavefront ILP) and
// batched symmetric crypto.

// Levenshtein computes the edit distance between two private strings of
// n symbols, `width` bits each — the evaluator owns one string, the
// garbler the other. The circuit is the standard O(n²) DP grid; its
// anti-diagonal wavefront gives ILP ~n, between the VIP suite's serial
// and embarrassingly parallel extremes.
func Levenshtein(n, width int) Workload {
	distWidth := 1
	for 1<<uint(distWidth) < n+1 {
		distWidth++
	}
	return Workload{
		Name:        fmt.Sprintf("Leven-%d", n),
		Description: fmt.Sprintf("edit distance between two %d-symbol strings (%d-bit symbols)", n, width),
		PlainOps:    3 * n * n,
		Build: func() *circuit.Circuit {
			b := builder.New()
			a := make([]builder.Word, n)
			c := make([]builder.Word, n)
			for i := range a {
				a[i] = b.GarblerInputs(width)
			}
			for i := range c {
				c[i] = b.EvaluatorInputs(width)
			}
			one := b.ConstWord(1, distWidth)
			// DP row; dp[j] = distance between a[:i] and c[:j].
			dp := make([]builder.Word, n+1)
			for j := range dp {
				dp[j] = b.ConstWord(uint64(j), distWidth)
			}
			for i := 1; i <= n; i++ {
				prevDiag := dp[0]
				dp[0] = b.ConstWord(uint64(i), distWidth)
				for j := 1; j <= n; j++ {
					del := b.Add(dp[j], one)
					ins := b.Add(dp[j-1], one)
					same := b.Eq(a[i-1], c[j-1])
					subCost := b.MuxWord(same, prevDiag, b.Add(prevDiag, one))
					best := b.Min(b.Min(del, ins), subCost)
					prevDiag = dp[j]
					dp[j] = best
				}
			}
			b.OutputWord(dp[n])
			return b.MustBuild()
		},
		Inputs: func(seed int64) ([]bool, []bool) {
			rng := rand.New(rand.NewSource(seed))
			return wordsToBits(randWords(rng, n, width), width),
				wordsToBits(randWords(rng, n, width), width)
		},
		Reference: func(g, e []bool) []bool {
			a := bitsToWords(g, width)
			c := bitsToWords(e, width)
			dp := make([]uint64, n+1)
			for j := range dp {
				dp[j] = uint64(j)
			}
			for i := 1; i <= n; i++ {
				prevDiag := dp[0]
				dp[0] = uint64(i)
				for j := 1; j <= n; j++ {
					sub := prevDiag
					if a[i-1] != c[j-1] {
						sub++
					}
					best := dp[j] + 1
					if v := dp[j-1] + 1; v < best {
						best = v
					}
					if sub < best {
						best = sub
					}
					prevDiag = dp[j]
					dp[j] = best
				}
			}
			mask := uint64(1)<<uint(distWidth) - 1
			return wordsToBits([]uint64{dp[n] & mask}, distWidth)
		},
	}
}

// Histogram privately buckets n evaluator-owned samples into 2^bWidth
// equal bins over the width-bit value range, returning the counts. The
// bucket index is the value's top bWidth bits; per-sample one-hot
// accumulation is branch-free.
func Histogram(n, width, bWidth int) Workload {
	bins := 1 << uint(bWidth)
	cntWidth := 1
	for 1<<uint(cntWidth) < n+1 {
		cntWidth++
	}
	return Workload{
		Name:        fmt.Sprintf("Hist-%d", n),
		Description: fmt.Sprintf("histogram of %d %d-bit samples into %d bins", n, width, bins),
		PlainOps:    2 * n,
		Build: func() *circuit.Circuit {
			b := builder.New()
			counts := make([]builder.Word, bins)
			for i := range counts {
				counts[i] = b.ConstWord(0, cntWidth)
			}
			for s := 0; s < n; s++ {
				v := b.EvaluatorInputs(width)
				idx := v[width-bWidth:] // top bits select the bin
				for k := 0; k < bins; k++ {
					hit := b.EqConst(idx, uint64(k))
					inc := make(builder.Word, cntWidth)
					inc[0] = hit
					for j := 1; j < cntWidth; j++ {
						inc[j] = b.Const(false)
					}
					counts[k] = b.Add(counts[k], inc)
				}
			}
			for _, c := range counts {
				b.OutputWord(c)
			}
			return b.MustBuild()
		},
		Inputs: func(seed int64) ([]bool, []bool) {
			rng := rand.New(rand.NewSource(seed))
			return nil, wordsToBits(randWords(rng, n, width), width)
		},
		Reference: func(g, e []bool) []bool {
			vals := bitsToWords(e, width)
			counts := make([]uint64, bins)
			for _, v := range vals {
				counts[v>>(uint(width-bWidth))]++
			}
			return wordsToBits(counts, cntWidth)
		},
	}
}

// AESCTR encrypts `blocks` consecutive counter blocks under a private
// key (garbler) with a private starting counter (evaluator) — the
// batched symmetric-crypto shape of private analytics pipelines. The
// key schedule is shared across blocks, so marginal per-block cost is
// 160 S-boxes.
func AESCTR(blocks int) Workload {
	aes := AES128()
	return Workload{
		Name:        fmt.Sprintf("AES-CTR-%d", blocks),
		Description: fmt.Sprintf("AES-128 CTR keystream, %d blocks, in-circuit key schedule", blocks),
		PlainOps:    160 * blocks,
		Build: func() *circuit.Circuit {
			b := builder.New()
			key := b.GarblerInputs(128)
			ctr := b.EvaluatorInputs(128)
			rks := aesKeySchedule(b, key)
			for blk := 0; blk < blocks; blk++ {
				in := b.Add(ctr, b.ConstWord(uint64(blk), 128))
				out := aesEncryptBlock(b, rks, in)
				b.OutputWord(out)
			}
			return b.MustBuild()
		},
		Inputs: func(seed int64) ([]bool, []bool) {
			return aes.Inputs(seed)
		},
		Reference: func(g, e []bool) []bool {
			var out []bool
			ctr := make([]bool, 128)
			copy(ctr, e)
			for blk := 0; blk < blocks; blk++ {
				// counter + blk as a little-endian 128-bit add.
				blkCtr := addBits128(e, uint64(blk))
				out = append(out, aes.Reference(g, blkCtr)...)
			}
			_ = ctr
			return out
		},
	}
}

func addBits128(bits []bool, add uint64) []bool {
	out := make([]bool, 128)
	carry := add
	for i := 0; i < 128; i++ {
		b := uint64(0)
		if bits[i] {
			b = 1
		}
		s := b + carry&1
		carry = carry>>1 + s>>1
		out[i] = s&1 == 1
	}
	return out
}

// aesKeySchedule and aesEncryptBlock factor the AES circuit pieces so
// CTR mode can share the schedule; buildAESCircuit (micro.go) is the
// single-block equivalent.
func aesKeySchedule(b *builder.B, keyBits builder.Word) [][]builder.Word {
	key := make([]builder.Word, 16)
	for i := range key {
		key[i] = keyBits[i*8 : (i+1)*8]
	}
	roundKeys := make([][]builder.Word, 11)
	roundKeys[0] = key
	rcon := byte(1)
	for r := 1; r <= 10; r++ {
		prev := roundKeys[r-1]
		rk := make([]builder.Word, 16)
		var t [4]builder.Word
		for i := 0; i < 4; i++ {
			t[i] = b.SBox(prev[12+(i+1)%4])
		}
		t[0] = b.XORWords(t[0], b.ConstWord(uint64(rcon), 8))
		for i := 0; i < 4; i++ {
			rk[i] = b.XORWords(prev[i], t[i])
		}
		for c := 1; c < 4; c++ {
			for i := 0; i < 4; i++ {
				rk[4*c+i] = b.XORWords(rk[4*(c-1)+i], prev[4*c+i])
			}
		}
		roundKeys[r] = rk
		rcon = gf256Double(rcon)
	}
	return roundKeys
}

func aesEncryptBlock(b *builder.B, roundKeys [][]builder.Word, ptBits builder.Word) builder.Word {
	state := make([]builder.Word, 16)
	for i := range state {
		state[i] = ptBits[i*8 : (i+1)*8]
	}
	xorBytes := func(x, y []builder.Word) []builder.Word {
		out := make([]builder.Word, len(x))
		for i := range x {
			out[i] = b.XORWords(x[i], y[i])
		}
		return out
	}
	xtimeW := func(x builder.Word) builder.Word {
		out := make(builder.Word, 8)
		hi := x[7]
		out[0] = hi
		out[1] = b.XOR(x[0], hi)
		out[2] = x[1]
		out[3] = b.XOR(x[2], hi)
		out[4] = b.XOR(x[3], hi)
		out[5] = x[4]
		out[6] = x[5]
		out[7] = x[6]
		return out
	}
	state = xorBytes(state, roundKeys[0])
	for r := 1; r <= 10; r++ {
		for i := range state {
			state[i] = b.SBox(state[i])
		}
		ns := make([]builder.Word, 16)
		for c := 0; c < 4; c++ {
			for i := 0; i < 4; i++ {
				ns[4*c+i] = state[4*((c+i)%4)+i]
			}
		}
		state = ns
		if r < 10 {
			ms := make([]builder.Word, 16)
			for c := 0; c < 4; c++ {
				a0, a1, a2, a3 := state[4*c], state[4*c+1], state[4*c+2], state[4*c+3]
				x0, x1, x2, x3 := xtimeW(a0), xtimeW(a1), xtimeW(a2), xtimeW(a3)
				ms[4*c+0] = b.XORWords(b.XORWords(x0, b.XORWords(x1, a1)), b.XORWords(a2, a3))
				ms[4*c+1] = b.XORWords(b.XORWords(a0, x1), b.XORWords(b.XORWords(x2, a2), a3))
				ms[4*c+2] = b.XORWords(b.XORWords(a0, a1), b.XORWords(x2, b.XORWords(x3, a3)))
				ms[4*c+3] = b.XORWords(b.XORWords(b.XORWords(x0, a0), a1), b.XORWords(a2, x3))
			}
			state = ms
		}
		state = xorBytes(state, roundKeys[r])
	}
	out := make(builder.Word, 0, 128)
	for _, by := range state {
		out = append(out, by...)
	}
	return out
}

// ExtensionSuite returns the non-paper workloads at modest sizes.
func ExtensionSuite() []Workload {
	return []Workload{
		Levenshtein(16, 8),
		Histogram(32, 8, 3),
		AESCTR(4),
	}
}
