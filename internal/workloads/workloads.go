// Package workloads re-implements the paper's evaluation programs as
// Boolean-circuit generators: the eight VIP-Bench benchmarks of Table 2
// (at the scaled input sizes §5 describes) and the §6.6/Table 5
// micro-benchmarks used to compare against prior accelerators.
//
// Every workload carries three synchronized artifacts:
//
//   - Build: the circuit (garbled / compiled / simulated elsewhere);
//   - Inputs: a deterministic input generator;
//   - Reference: a native Go implementation producing the expected
//     output bits, used both as the correctness oracle for end-to-end
//     tests and as the plaintext-CPU baseline for Fig. 10.
package workloads

import (
	"fmt"
	"math/rand"

	"haac/internal/circuit"
)

// Workload bundles a named benchmark circuit with its oracle.
type Workload struct {
	// Name is the benchmark's short name, matching the paper's tables.
	Name string
	// Description explains the computation and its parameters.
	Description string
	// Build constructs the circuit. Generators are deterministic.
	Build func() *circuit.Circuit
	// Inputs returns deterministic garbler/evaluator input bits.
	Inputs func(seed int64) (g, e []bool)
	// Reference computes the expected output bits natively.
	Reference func(g, e []bool) []bool
	// PlainOps returns the approximate number of plaintext ALU
	// operations one execution performs; used to report the GC-vs-
	// plaintext overhead factor alongside measured plaintext time.
	PlainOps int
}

// Check builds the circuit, evaluates it on inputs from seed, and
// verifies the outputs against Reference. It returns the circuit so
// callers can reuse it.
func (w Workload) Check(seed int64) (*circuit.Circuit, error) {
	c := w.Build()
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	g, e := w.Inputs(seed)
	got, err := c.Eval(g, e)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	want := w.Reference(g, e)
	if len(got) != len(want) {
		return nil, fmt.Errorf("%s: output length %d, reference %d", w.Name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return nil, fmt.Errorf("%s: output bit %d = %v, reference %v", w.Name, i, got[i], want[i])
		}
	}
	return c, nil
}

// words/bits conversion helpers shared by the generators.

func randWords(rng *rand.Rand, n, width int) []uint64 {
	ws := make([]uint64, n)
	mask := uint64(1)<<uint(width) - 1
	if width >= 64 {
		mask = ^uint64(0)
	}
	for i := range ws {
		ws[i] = rng.Uint64() & mask
	}
	return ws
}

func wordsToBits(ws []uint64, width int) []bool {
	bits := make([]bool, 0, len(ws)*width)
	for _, w := range ws {
		bits = append(bits, circuit.UintToBools(w, width)...)
	}
	return bits
}

func bitsToWords(bits []bool, width int) []uint64 {
	ws := make([]uint64, len(bits)/width)
	for i := range ws {
		ws[i] = circuit.BoolsToUint(bits[i*width : (i+1)*width])
	}
	return ws
}

// VIPSuite returns the eight VIP-Bench workloads at the paper's scaled
// input sizes (§5): 128-element 32-bit dot product, 8×8 integer matrix
// multiply, 40960-bit Hamming distance, 2048 ReLU evaluations, 20 rounds
// of floating-point gradient descent, and our chosen scales for bubble
// sort, Mersenne-Twister and triangle counting (documented per
// generator). Order matches Table 2.
func VIPSuite() []Workload {
	return []Workload{
		BubbleSort(245, 32),
		DotProduct(128, 32),
		Mersenne(624, 32),
		TriangleCount(160),
		Hamming(40960),
		MatMult(8, 32),
		ReLU(2048, 32),
		GradDesc(12, 20),
	}
}

// VIPSuiteSmall returns reduced-size variants of the same eight
// workloads, used by tests and quick benchmark runs.
func VIPSuiteSmall() []Workload {
	return []Workload{
		BubbleSort(8, 16),
		DotProduct(8, 16),
		Mersenne(8, 4),
		TriangleCount(10),
		Hamming(128),
		MatMult(3, 16),
		ReLU(8, 32),
		GradDesc(4, 2),
	}
}
