package isa

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(op uint8, a, b uint32, live bool) bool {
		in := Instr{Op: Op(op % 3), A: a & AddrMask, B: b & AddrMask, Live: live}
		return Unpack(in.Pack()) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackTruncatesTo17Bits(t *testing.T) {
	in := Instr{Op: AND, A: 5 + 1<<AddrBits, B: 9 + 2<<AddrBits, Live: true}
	out := Unpack(in.Pack())
	if out.A != 5 || out.B != 9 {
		t.Fatalf("truncation wrong: %+v", out)
	}
}

func TestPackedFits37Bits(t *testing.T) {
	in := Instr{Op: AND, A: AddrMask, B: AddrMask, Live: true}
	if in.Pack() >= 1<<37 {
		t.Fatalf("packed form exceeds 37 bits: %#x", in.Pack())
	}
}

func validProgram() *Program {
	return &Program{
		NumInputs:   3,
		InputAddrs:  []uint32{1, 2, 3},
		Instrs:      []Instr{{Op: XOR, A: 1, B: 2}, {Op: AND, A: 3, B: 4, Live: true}, {Op: XOR, A: OoR, B: 5}},
		OutAddrs:    []uint32{4, 5, 6},
		OutputAddrs: []uint32{6},
		MaxAddr:     6,
	}
}

func TestValidateOK(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Program){
		"non-increasing outputs": func(p *Program) { p.OutAddrs[1] = 4 },
		"undefined read":         func(p *Program) { p.Instrs[0].A = 99 },
		"zero input addr":        func(p *Program) { p.InputAddrs[0] = 0 },
		"undefined output":       func(p *Program) { p.OutputAddrs[0] = 99 },
		"sentinel collision":     func(p *Program) { p.OutAddrs[2] = 1 << AddrBits; p.MaxAddr = 1 << AddrBits },
		"length mismatch":        func(p *Program) { p.OutAddrs = p.OutAddrs[:2] },
	}
	for name, mutate := range cases {
		p := validProgram()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCounts(t *testing.T) {
	p := validProgram()
	if p.NumANDs() != 1 {
		t.Fatalf("NumANDs = %d", p.NumANDs())
	}
	if p.LiveCount() != 1 {
		t.Fatalf("LiveCount = %d", p.LiveCount())
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	p := validProgram()
	var buf bytes.Buffer
	n, err := p.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumInputs != p.NumInputs || got.MaxAddr != p.MaxAddr ||
		len(got.Instrs) != len(p.Instrs) {
		t.Fatalf("header fields changed: %+v", got)
	}
	for i := range p.Instrs {
		if got.Instrs[i] != p.Instrs[i] {
			t.Fatalf("instruction %d changed: %+v vs %+v", i, got.Instrs[i], p.Instrs[i])
		}
	}
	for i := range p.OutAddrs {
		if got.OutAddrs[i] != p.OutAddrs[i] {
			t.Fatal("out addrs changed")
		}
	}
}

func TestReadProgramRejectsGarbage(t *testing.T) {
	if _, err := ReadProgram(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Unreasonable header sizes must be rejected, not allocated.
	var buf bytes.Buffer
	p := validProgram()
	p.WriteTo(&buf)
	b := buf.Bytes()
	b[0] = 0xff
	b[7] = 0xff // nInstr enormous
	if _, err := ReadProgram(bytes.NewReader(b)); err == nil {
		t.Fatal("oversized header accepted")
	}
}

func TestOpString(t *testing.T) {
	if NOP.String() != "NOP" || XOR.String() != "XOR" || AND.String() != "AND" {
		t.Fatal("op mnemonics wrong")
	}
}

func TestInstrString(t *testing.T) {
	cases := map[string]Instr{
		"NOP":                  {Op: NOP},
		"XOR w1, w2":           {Op: XOR, A: 1, B: 2},
		"AND w3, [OoRW] !live": {Op: AND, A: 3, B: OoR, Live: true},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestDisassemble(t *testing.T) {
	p := validProgram()
	var buf bytes.Buffer
	if err := Disassemble(&buf, p, 0); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{".inputs w1 w2 w3", "w4", "AND w3, w4 !live", ".outputs w6"} {
		if !strings.Contains(s, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, s)
		}
	}
	// Truncation.
	buf.Reset()
	if err := Disassemble(&buf, p, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2 more instructions") {
		t.Fatal("truncation marker missing")
	}
}
