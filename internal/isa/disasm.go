package isa

import (
	"bufio"
	"fmt"
	"io"
)

// Disassembly support: human-readable program listings for debugging
// compiler passes and inspecting instruction streams.

// String renders one instruction; OoR operands print as "[OoRW]".
func (in Instr) String() string {
	if in.Op == NOP {
		return "NOP"
	}
	live := ""
	if in.Live {
		live = " !live"
	}
	return fmt.Sprintf("%s %s, %s%s", in.Op, fmtAddr(in.A), fmtAddr(in.B), live)
}

func fmtAddr(a uint32) string {
	if a == OoR {
		return "[OoRW]"
	}
	return fmt.Sprintf("w%d", a)
}

// Disassemble writes a listing of the program to w: the input map, then
// one line per instruction with its implicit output address, then the
// program outputs. maxInstrs limits the body (0 = all).
func Disassemble(w io.Writer, p *Program, maxInstrs int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; %d instructions (%d AND, %d live), %d inputs, %d outputs, max addr %d\n",
		len(p.Instrs), p.NumANDs(), p.LiveCount(), p.NumInputs, len(p.OutputAddrs), p.MaxAddr)
	fmt.Fprintf(bw, ".inputs")
	for i, a := range p.InputAddrs {
		if i == 16 && len(p.InputAddrs) > 20 {
			fmt.Fprintf(bw, " ... (%d more)", len(p.InputAddrs)-i)
			break
		}
		fmt.Fprintf(bw, " w%d", a)
	}
	fmt.Fprintln(bw)

	n := len(p.Instrs)
	truncated := false
	if maxInstrs > 0 && n > maxInstrs {
		n = maxInstrs
		truncated = true
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(bw, "%8d:  w%-8d = %s\n", i, p.OutAddrs[i], p.Instrs[i])
	}
	if truncated {
		fmt.Fprintf(bw, "  ... (%d more instructions)\n", len(p.Instrs)-n)
	}
	fmt.Fprintf(bw, ".outputs")
	for i, a := range p.OutputAddrs {
		if i == 16 && len(p.OutputAddrs) > 20 {
			fmt.Fprintf(bw, " ... (%d more)", len(p.OutputAddrs)-i)
			break
		}
		fmt.Fprintf(bw, " w%d", a)
	}
	fmt.Fprintln(bw)
	return bw.Flush()
}
