// Package isa defines the HAAC instruction set (§3.1.3 of the paper).
//
// A HAAC instruction carries an opcode (2 bits), two input wire
// addresses (17 bits each, sized for a 2 MB SWW), and a live bit that
// marks the output wire for spilling to DRAM. Output wire addresses are
// not encoded: the renaming compiler pass makes them sequential in
// program order, so hardware derives them from the program counter.
// There is no control flow and no memory instructions — conditionals are
// baked into the circuit and all data movement is stream-based.
//
// Wire address 0 is reserved: as an input field it means "pop the next
// wire from the out-of-range wire (OoRW) queue" (§3.1.4). The renaming
// pass therefore never assigns a wire a logical address congruent to
// 0 mod 2^17, so the truncated 17-bit field of an in-range wire can
// never collide with the sentinel.
package isa

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Op is a HAAC opcode.
type Op uint8

const (
	// NOP does nothing; the compiler may use it for padding.
	NOP Op = iota
	// XOR is a FreeXOR gate: single-cycle label XOR in the GE.
	XOR
	// AND is a Half-Gate: the deep cryptographic pipeline, consuming one
	// table from the table queue.
	AND
)

// String returns the mnemonic.
func (o Op) String() string {
	switch o {
	case NOP:
		return "NOP"
	case XOR:
		return "XOR"
	case AND:
		return "AND"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// AddrBits is the width of an encoded input wire address field.
const AddrBits = 17

// AddrMask extracts an encoded address field.
const AddrMask = 1<<AddrBits - 1

// OoR is the reserved input address meaning "read from the OoRW queue".
const OoR uint32 = 0

// EncodedSize is the stream footprint of one instruction in bytes. The
// packed fields occupy 37 bits; streams carry 8-byte words, the figure
// the DRAM traffic model charges per instruction.
const EncodedSize = 8

// Instr is one HAAC instruction. A and B hold full logical wire
// addresses inside the compiler; Pack truncates them to the 17-bit
// physical SWW fields for the hardware stream.
type Instr struct {
	Op   Op
	A, B uint32
	Live bool
}

// Pack encodes the instruction into its 37-bit hardware form (in a
// 64-bit word): op[1:0] | A[18:2] | B[35:19] | live[36]. Addresses are
// reduced to their physical 17-bit SWW form.
func (in Instr) Pack() uint64 {
	v := uint64(in.Op) & 3
	v |= uint64(in.A&AddrMask) << 2
	v |= uint64(in.B&AddrMask) << (2 + AddrBits)
	if in.Live {
		v |= 1 << (2 + 2*AddrBits)
	}
	return v
}

// Unpack decodes a packed instruction. The recovered addresses are the
// physical 17-bit fields; logical addresses are not recoverable (nor
// needed by hardware).
func Unpack(v uint64) Instr {
	return Instr{
		Op:   Op(v & 3),
		A:    uint32(v >> 2 & AddrMask),
		B:    uint32(v >> (2 + AddrBits) & AddrMask),
		Live: v>>(2+2*AddrBits)&1 == 1,
	}
}

// Program is a complete HAAC program: a straight-line instruction list
// over a renamed, dense wire address space.
//
// Address layout: address 0 is reserved (OoR sentinel); addresses
// [1, NumInputs] hold the preloaded input wires (party inputs and
// constants, in circuit order, skipping multiples of 2^17); subsequent
// instruction outputs continue the sequence in program order, also
// skipping multiples of 2^17.
type Program struct {
	Instrs []Instr
	// NumInputs counts preloaded input wires.
	NumInputs int
	// InputAddrs maps circuit input index -> wire address.
	InputAddrs []uint32
	// OutAddrs maps instruction index -> output wire address.
	OutAddrs []uint32
	// OutputAddrs lists the circuit's primary-output wire addresses.
	OutputAddrs []uint32
	// MaxAddr is the highest assigned wire address.
	MaxAddr uint32
}

// NumANDs counts AND instructions (== number of garbled tables).
func (p *Program) NumANDs() int {
	n := 0
	for i := range p.Instrs {
		if p.Instrs[i].Op == AND {
			n++
		}
	}
	return n
}

// LiveCount counts instructions whose output spills to DRAM.
func (p *Program) LiveCount() int {
	n := 0
	for i := range p.Instrs {
		if p.Instrs[i].Live {
			n++
		}
	}
	return n
}

// Validate checks structural sanity: output addresses strictly
// increasing, inputs referencing only previously defined addresses, and
// no in-range input using the reserved sentinel's physical slot.
func (p *Program) Validate() error {
	if len(p.OutAddrs) != len(p.Instrs) {
		return fmt.Errorf("isa: %d output addrs for %d instructions", len(p.OutAddrs), len(p.Instrs))
	}
	defined := uint32(0)
	for _, a := range p.InputAddrs {
		if a == 0 {
			return fmt.Errorf("isa: input assigned reserved address 0")
		}
		if a <= defined {
			return fmt.Errorf("isa: input addresses not increasing at %d", a)
		}
		defined = a
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		o := p.OutAddrs[i]
		if o <= defined {
			return fmt.Errorf("isa: instruction %d output addr %d not increasing", i, o)
		}
		if o%(1<<AddrBits) == 0 {
			return fmt.Errorf("isa: instruction %d output addr %d collides with OoR sentinel", i, o)
		}
		if in.Op != NOP {
			if in.A != OoR && in.A > defined {
				return fmt.Errorf("isa: instruction %d reads undefined wire %d", i, in.A)
			}
			if in.B != OoR && in.B > defined {
				return fmt.Errorf("isa: instruction %d reads undefined wire %d", i, in.B)
			}
		}
		defined = o
	}
	for _, o := range p.OutputAddrs {
		if o > defined || o == 0 {
			return fmt.Errorf("isa: program output addr %d undefined", o)
		}
	}
	return nil
}

// WriteTo serializes the program: a small header followed by packed
// instructions. It implements io.WriterTo.
func (p *Program) WriteTo(w io.Writer) (int64, error) {
	var n int64
	hdr := []uint64{
		uint64(len(p.Instrs)), uint64(p.NumInputs),
		uint64(len(p.OutputAddrs)), uint64(p.MaxAddr),
	}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return n, err
		}
		n += 8
	}
	write32 := func(vs []uint32) error {
		for _, v := range vs {
			if err := binary.Write(w, binary.LittleEndian, v); err != nil {
				return err
			}
			n += 4
		}
		return nil
	}
	if err := write32(p.InputAddrs); err != nil {
		return n, err
	}
	if err := write32(p.OutputAddrs); err != nil {
		return n, err
	}
	if err := write32(p.OutAddrs); err != nil {
		return n, err
	}
	for i := range p.Instrs {
		if err := binary.Write(w, binary.LittleEndian, p.Instrs[i].Pack()); err != nil {
			return n, err
		}
		n += EncodedSize
	}
	return n, nil
}

// ReadProgram deserializes a program written by WriteTo. Note that the
// packed instructions carry physical (truncated) addresses; programs
// read back are suitable for hardware-stream replay and byte accounting
// but not for re-running compiler passes.
func ReadProgram(r io.Reader) (*Program, error) {
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(r, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("isa: reading header: %w", err)
		}
	}
	nInstr, nIn, nOut, maxAddr := hdr[0], hdr[1], hdr[2], hdr[3]
	const limit = 1 << 28
	if nInstr > limit || nIn > limit || nOut > limit {
		return nil, fmt.Errorf("isa: unreasonable program header %v", hdr)
	}
	p := &Program{
		NumInputs:   int(nIn),
		InputAddrs:  make([]uint32, nIn),
		OutputAddrs: make([]uint32, nOut),
		OutAddrs:    make([]uint32, nInstr),
		Instrs:      make([]Instr, nInstr),
		MaxAddr:     uint32(maxAddr),
	}
	read32 := func(dst []uint32) error {
		for i := range dst {
			if err := binary.Read(r, binary.LittleEndian, &dst[i]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := read32(p.InputAddrs); err != nil {
		return nil, fmt.Errorf("isa: reading input addrs: %w", err)
	}
	if err := read32(p.OutputAddrs); err != nil {
		return nil, fmt.Errorf("isa: reading output addrs: %w", err)
	}
	if err := read32(p.OutAddrs); err != nil {
		return nil, fmt.Errorf("isa: reading out addrs: %w", err)
	}
	for i := range p.Instrs {
		var v uint64
		if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("isa: reading instruction %d: %w", i, err)
		}
		p.Instrs[i] = Unpack(v)
	}
	return p, nil
}
