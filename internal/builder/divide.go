package builder

// Division, remainder and related word operations. GC circuits cannot
// branch, so division is the classic restoring long-division network:
// width iterations of shift/subtract/select. These round out the
// integer library to cover workloads beyond the paper's eight (e.g.
// fixed-point layers in private-inference examples).

// DivMod returns the quotient and remainder of unsigned x / y.
// Division by zero follows the conventional GC semantics: quotient is
// all ones, remainder is x (no branching exists to signal errors).
func (b *B) DivMod(x, y Word) (q, r Word) {
	mustSameWidth("DivMod", x, y)
	n := len(x)
	q = make(Word, n)
	// Remainder register, one bit wider than y so the trial subtraction
	// cannot wrap.
	rem := b.ZeroWord(n + 1)
	yw := b.extendZero(y, n+1)
	for i := n - 1; i >= 0; i-- {
		// rem = rem<<1 | x[i]
		rem = append(Word{x[i]}, rem[:n]...)
		diff, borrow := b.SubBorrow(rem, yw)
		fits := b.NOT(borrow) // y <= rem
		q[i] = fits
		rem = b.MuxWord(fits, diff, rem)
	}
	return q, rem[:n]
}

// Div returns the unsigned quotient.
func (b *B) Div(x, y Word) Word {
	q, _ := b.DivMod(x, y)
	return q
}

// Mod returns the unsigned remainder.
func (b *B) Mod(x, y Word) Word {
	_, r := b.DivMod(x, y)
	return r
}

// Abs returns |x| for a two's-complement word (MinInt maps to itself,
// as in ordinary machine arithmetic).
func (b *B) Abs(x Word) Word {
	neg := x[len(x)-1]
	return b.MuxWord(neg, b.Neg(x), x)
}

// DivS returns the signed quotient (truncated toward zero).
func (b *B) DivS(x, y Word) Word {
	q := b.Div(b.Abs(x), b.Abs(y))
	sign := b.XOR(x[len(x)-1], y[len(y)-1])
	return b.MuxWord(sign, b.Neg(q), q)
}

// MulS returns the low bits of the signed product; two's-complement
// multiplication truncated to the operand width is identical to the
// unsigned one.
func (b *B) MulS(x, y Word) Word { return b.Mul(x, y) }

// RotlConst rotates x left by k bits (pure rewiring, free).
func (b *B) RotlConst(x Word, k int) Word {
	n := len(x)
	k = ((k % n) + n) % n
	out := make(Word, n)
	for i := range out {
		out[i] = x[(i-k+n)%n]
	}
	return out
}

// RotrConst rotates x right by k bits (free).
func (b *B) RotrConst(x Word, k int) Word { return b.RotlConst(x, -k) }

// ShrArithConst shifts right arithmetically by the constant k,
// replicating the sign bit.
func (b *B) ShrArithConst(x Word, k int) Word {
	n := len(x)
	out := make(Word, n)
	s := x[n-1]
	for i := range out {
		if i+k < n {
			out[i] = x[i+k]
		} else {
			out[i] = s
		}
	}
	return out
}

// Select indexes a constant table with a secret index: out = table[idx].
// Cost is one mux tree over the table (lookup tables, histograms, and
// S-box-style translation all reduce to this).
func (b *B) Select(idx Word, table []uint64, width int) Word {
	words := make([]Word, len(table))
	for i, v := range table {
		words[i] = b.ConstWord(v, width)
	}
	return b.SelectWord(idx, words)
}

// SelectWord is Select over secret-valued entries. The table length must
// be a power of two not exceeding 1<<len(idx); missing entries read as
// zero.
func (b *B) SelectWord(idx Word, table []Word) Word {
	if len(table) == 0 {
		panic("builder: SelectWord needs a non-empty table")
	}
	width := len(table[0])
	// Pad to a power of two with zero words.
	size := 1
	for size < len(table) {
		size *= 2
	}
	work := make([]Word, size)
	copy(work, table)
	for i := len(table); i < size; i++ {
		work[i] = b.ZeroWord(width)
	}
	// Fold one selector bit per level.
	for level := 0; size > 1; level++ {
		half := size / 2
		var sel Wire
		if level < len(idx) {
			sel = idx[level]
		} else {
			sel = b.Const(false)
		}
		for i := 0; i < half; i++ {
			work[i] = b.MuxWord(sel, work[2*i+1], work[2*i])
		}
		size = half
	}
	return work[0]
}

// minWord computes the element-wise running minimum of a slice together
// with its index (used by k-NN style workloads); ties keep the earlier
// element.
func (b *B) MinWithIndex(vals []Word) (min Word, idx Word) {
	if len(vals) == 0 {
		panic("builder: MinWithIndex needs elements")
	}
	idxWidth := 1
	for 1<<uint(idxWidth) < len(vals) {
		idxWidth++
	}
	min = vals[0]
	idx = b.ConstWord(0, idxWidth)
	for i := 1; i < len(vals); i++ {
		smaller := b.LtU(vals[i], min)
		min = b.MuxWord(smaller, vals[i], min)
		idx = b.MuxWord(smaller, b.ConstWord(uint64(i), idxWidth), idx)
	}
	return min, idx
}
