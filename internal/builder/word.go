package builder

// Word is a little-endian vector of wires: w[0] is the least significant
// bit. All arithmetic below follows two's-complement conventions.
type Word []Wire

// ConstWord returns a width-bit public constant word for v.
func (b *B) ConstWord(v uint64, width int) Word {
	w := make(Word, width)
	for i := range w {
		w[i] = b.Const(v>>uint(i)&1 == 1)
	}
	return w
}

// ZeroWord returns a width-bit all-zero word.
func (b *B) ZeroWord(width int) Word { return b.ConstWord(0, width) }

// XORWords returns the bitwise XOR of equal-width words.
func (b *B) XORWords(x, y Word) Word {
	mustSameWidth("XORWords", x, y)
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.XOR(x[i], y[i])
	}
	return out
}

// ANDWords returns the bitwise AND of equal-width words.
func (b *B) ANDWords(x, y Word) Word {
	mustSameWidth("ANDWords", x, y)
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.AND(x[i], y[i])
	}
	return out
}

// ORWords returns the bitwise OR of equal-width words.
func (b *B) ORWords(x, y Word) Word {
	mustSameWidth("ORWords", x, y)
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.OR(x[i], y[i])
	}
	return out
}

// NOTWord returns the bitwise complement.
func (b *B) NOTWord(x Word) Word {
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.NOT(x[i])
	}
	return out
}

// ANDConst masks x with the constant mask; masked-off bits cost nothing.
func (b *B) ANDConst(x Word, mask uint64) Word {
	out := make(Word, len(x))
	for i := range x {
		if mask>>uint(i)&1 == 1 {
			out[i] = x[i]
		} else {
			out[i] = b.Const(false)
		}
	}
	return out
}

// addCarry is a full adder using the single-AND formulation:
//
//	sum  = x ^ y ^ cin
//	cout = cin ^ ((x^cin) & (y^cin))
func (b *B) addCarry(x, y, cin Wire) (sum, cout Wire) {
	xc := b.XOR(x, cin)
	yc := b.XOR(y, cin)
	sum = b.XOR(xc, y)
	cout = b.XOR(cin, b.AND(xc, yc))
	return
}

// AddCin returns x + y + cin truncated to len(x) bits, plus the carry out.
func (b *B) AddCin(x, y Word, cin Wire) (Word, Wire) {
	mustSameWidth("Add", x, y)
	out := make(Word, len(x))
	c := cin
	for i := range x {
		out[i], c = b.addCarry(x[i], y[i], c)
	}
	return out, c
}

// Add returns x + y truncated to the operand width.
func (b *B) Add(x, y Word) Word {
	s, _ := b.AddCin(x, y, b.Const(false))
	return s
}

// Sub returns x - y truncated to the operand width (x + ~y + 1).
func (b *B) Sub(x, y Word) Word {
	s, _ := b.AddCin(x, b.NOTWord(y), b.Const(true))
	return s
}

// SubBorrow returns x - y and a wire that is 1 when the subtraction
// borrowed (i.e. x < y as unsigned integers).
func (b *B) SubBorrow(x, y Word) (Word, Wire) {
	s, carry := b.AddCin(x, b.NOTWord(y), b.Const(true))
	return s, b.NOT(carry)
}

// Neg returns -x in two's complement.
func (b *B) Neg(x Word) Word { return b.Sub(b.ZeroWord(len(x)), x) }

// Inc returns x + 1.
func (b *B) Inc(x Word) Word {
	s, _ := b.AddCin(x, b.ZeroWord(len(x)), b.Const(true))
	return s
}

// Mul returns the low len(x) bits of x * y (school multiplication).
func (b *B) Mul(x, y Word) Word {
	mustSameWidth("Mul", x, y)
	n := len(x)
	acc := b.ZeroWord(n)
	for i := 0; i < n; i++ {
		// Partial product of y_i with the bits of x that still land
		// inside the truncated result.
		pp := make(Word, n)
		for j := range pp {
			pp[j] = b.Const(false)
		}
		for j := 0; i+j < n; j++ {
			pp[i+j] = b.AND(x[j], y[i])
		}
		acc = b.Add(acc, pp)
	}
	return acc
}

// MulFull returns the full 2n-bit product of two n-bit words.
func (b *B) MulFull(x, y Word) Word {
	mustSameWidth("MulFull", x, y)
	n := len(x)
	acc := b.ZeroWord(2 * n)
	for i := 0; i < n; i++ {
		pp := b.ZeroWord(2 * n)
		for j := 0; j < n; j++ {
			pp[i+j] = b.AND(x[j], y[i])
		}
		acc = b.Add(acc, pp)
	}
	return acc
}

// LtU returns 1 iff x < y as unsigned integers.
func (b *B) LtU(x, y Word) Wire {
	_, borrow := b.SubBorrow(x, y)
	return borrow
}

// LeU returns 1 iff x <= y as unsigned integers.
func (b *B) LeU(x, y Word) Wire { return b.NOT(b.LtU(y, x)) }

// GtU returns 1 iff x > y as unsigned integers.
func (b *B) GtU(x, y Word) Wire { return b.LtU(y, x) }

// LtS returns 1 iff x < y as two's-complement signed integers. Flipping
// the sign bits reduces signed comparison to unsigned comparison.
func (b *B) LtS(x, y Word) Wire {
	mustSameWidth("LtS", x, y)
	n := len(x)
	xf := append(append(Word{}, x[:n-1]...), b.NOT(x[n-1]))
	yf := append(append(Word{}, y[:n-1]...), b.NOT(y[n-1]))
	return b.LtU(xf, yf)
}

// Eq returns 1 iff x == y.
func (b *B) Eq(x, y Word) Wire {
	mustSameWidth("Eq", x, y)
	bits := make([]Wire, len(x))
	for i := range x {
		bits[i] = b.XNOR(x[i], y[i])
	}
	return b.AndTree(bits)
}

// EqConst returns 1 iff x equals the constant v.
func (b *B) EqConst(x Word, v uint64) Wire {
	bits := make([]Wire, len(x))
	for i := range x {
		if v>>uint(i)&1 == 1 {
			bits[i] = x[i]
		} else {
			bits[i] = b.NOT(x[i])
		}
	}
	return b.AndTree(bits)
}

// IsZero returns 1 iff all bits of x are 0.
func (b *B) IsZero(x Word) Wire { return b.EqConst(x, 0) }

// NonZero returns 1 iff any bit of x is 1.
func (b *B) NonZero(x Word) Wire { return b.NOT(b.IsZero(x)) }

// AndTree reduces bits with a balanced AND tree (log depth).
func (b *B) AndTree(bits []Wire) Wire { return b.tree(bits, b.AND) }

// OrTree reduces bits with a balanced OR tree (log depth).
func (b *B) OrTree(bits []Wire) Wire { return b.tree(bits, b.OR) }

// XorTree reduces bits with a balanced XOR tree (log depth, free).
func (b *B) XorTree(bits []Wire) Wire { return b.tree(bits, b.XOR) }

func (b *B) tree(bits []Wire, op func(Wire, Wire) Wire) Wire {
	if len(bits) == 0 {
		return b.Const(false)
	}
	work := append([]Wire(nil), bits...)
	for len(work) > 1 {
		next := work[: 0 : len(work)/2+1]
		var i int
		for i = 0; i+1 < len(work); i += 2 {
			next = append(next, op(work[i], work[i+1]))
		}
		if i < len(work) {
			next = append(next, work[i])
		}
		work = next
	}
	return work[0]
}

// MuxWord returns s ? t : f elementwise over equal-width words.
func (b *B) MuxWord(s Wire, t, f Word) Word {
	mustSameWidth("MuxWord", t, f)
	out := make(Word, len(t))
	for i := range t {
		out[i] = b.MUX(s, t[i], f[i])
	}
	return out
}

// Max returns the unsigned maximum of x and y.
func (b *B) Max(x, y Word) Word { return b.MuxWord(b.LtU(x, y), y, x) }

// Min returns the unsigned minimum of x and y.
func (b *B) Min(x, y Word) Word { return b.MuxWord(b.LtU(x, y), x, y) }

// SortPair returns (min, max) of x and y as unsigned integers with a
// single comparison — the compare-and-swap block bubble sort is made of.
func (b *B) SortPair(x, y Word) (lo, hi Word) {
	swap := b.LtU(y, x)
	lo = b.MuxWord(swap, y, x)
	hi = b.MuxWord(swap, x, y)
	return
}

// ShlConst shifts left by the constant k, filling with zeros (width kept).
func (b *B) ShlConst(x Word, k int) Word {
	n := len(x)
	out := make(Word, n)
	for i := range out {
		if i-k >= 0 && i-k < n {
			out[i] = x[i-k]
		} else {
			out[i] = b.Const(false)
		}
	}
	return out
}

// ShrConst shifts right logically by the constant k (width kept).
func (b *B) ShrConst(x Word, k int) Word {
	n := len(x)
	out := make(Word, n)
	for i := range out {
		if i+k < n {
			out[i] = x[i+k]
		} else {
			out[i] = b.Const(false)
		}
	}
	return out
}

// ShrVar shifts x right logically by the amount in sh (unsigned). A
// logarithmic barrel shifter: stage i conditionally shifts by 2^i. Shift
// amounts >= len(x) produce zero.
func (b *B) ShrVar(x Word, sh Word) Word {
	out := append(Word(nil), x...)
	for i := 0; i < len(sh); i++ {
		k := 1 << uint(i)
		if k >= len(x) {
			// Any set bit here zeroes the result.
			zero := b.ZeroWord(len(x))
			out = b.MuxWord(sh[i], zero, out)
			continue
		}
		out = b.MuxWord(sh[i], b.ShrConst(out, k), out)
	}
	return out
}

// ShlVar shifts x left by the amount in sh (unsigned), zero filling.
func (b *B) ShlVar(x Word, sh Word) Word {
	out := append(Word(nil), x...)
	for i := 0; i < len(sh); i++ {
		k := 1 << uint(i)
		if k >= len(x) {
			zero := b.ZeroWord(len(x))
			out = b.MuxWord(sh[i], zero, out)
			continue
		}
		out = b.MuxWord(sh[i], b.ShlConst(out, k), out)
	}
	return out
}

// PopCount returns the number of set bits as a ceil(log2(n+1))-bit word,
// built as a balanced adder tree (the Hamming-distance kernel).
func (b *B) PopCount(bits []Wire) Word {
	if len(bits) == 0 {
		return Word{b.Const(false)}
	}
	words := make([]Word, len(bits))
	for i, w := range bits {
		words[i] = Word{w}
	}
	for len(words) > 1 {
		var next []Word
		var i int
		for i = 0; i+1 < len(words); i += 2 {
			a, c := words[i], words[i+1]
			// Widen to equal size +1 for carry.
			w := maxInt(len(a), len(c)) + 1
			next = append(next, b.Add(b.extendZero(a, w), b.extendZero(c, w)))
		}
		if i < len(words) {
			next = append(next, words[i])
		}
		words = next
	}
	return words[0]
}

// LeadingZeros returns the number of leading (most-significant) zero bits
// of x as a ceil(log2(n+1))-bit word. Used by FP normalization.
func (b *B) LeadingZeros(x Word) Word {
	n := len(x)
	width := 1
	for 1<<uint(width) < n+1 {
		width++
	}
	// Scan from MSB: count = found ? count : count+1, stop when a 1 seen.
	count := b.ZeroWord(width)
	found := b.Const(false)
	for i := n - 1; i >= 0; i-- {
		found = b.OR(found, x[i])
		count = b.MuxWord(found, count, b.Inc(count))
	}
	return count
}

// extendZero zero-extends x to width bits (or truncates).
func (b *B) extendZero(x Word, width int) Word {
	if len(x) >= width {
		return x[:width]
	}
	out := make(Word, width)
	copy(out, x)
	for i := len(x); i < width; i++ {
		out[i] = b.Const(false)
	}
	return out
}

// ExtendZero is the exported zero-extension helper.
func (b *B) ExtendZero(x Word, width int) Word { return b.extendZero(x, width) }

// ExtendSign sign-extends x to width bits.
func (b *B) ExtendSign(x Word, width int) Word {
	if len(x) >= width {
		return x[:width]
	}
	out := make(Word, width)
	copy(out, x)
	s := x[len(x)-1]
	for i := len(x); i < width; i++ {
		out[i] = s
	}
	return out
}

func mustSameWidth(op string, x, y Word) {
	if len(x) != len(y) {
		panic("builder: " + op + ": operand widths differ")
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
