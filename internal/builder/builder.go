// Package builder is the high-level circuit-construction frontend of the
// repository, standing in for the EMP C++ toolkit in the paper's flow
// (Fig. 5: C++ → EMP → Bristol → HAAC assembler). Programs are written
// against Word (little-endian bit-vector) operations — adders,
// multipliers, comparators, muxes, shifters, IEEE-754 binary32
// arithmetic — and the builder lowers them to the AND/XOR/INV gate IR in
// internal/circuit.
//
// Like EMP, the builder performs local constant folding and
// double-negation elimination so that, e.g., masking with public
// constants (Mersenne-Twister's tempering masks) costs no gates.
package builder

import (
	"fmt"

	"haac/internal/circuit"
)

// Wire aliases circuit.Wire for convenience.
type Wire = circuit.Wire

// internal builder wire-id space (remapped in Build):
//
//	0       const0
//	1       const1
//	2...    inputs and gate outputs, in allocation order
const (
	idConst0 Wire = 0
	idConst1 Wire = 1
)

type inputDecl struct {
	id      Wire
	garbler bool
}

// B incrementally constructs a circuit.
type B struct {
	next   Wire
	gates  []circuit.Gate
	inputs []inputDecl

	// known caches public-constant wires: present entries map a wire id
	// to its fixed plaintext value, enabling folding.
	known map[Wire]bool
	// notOf caches the complement of a wire so NOT is emitted once and
	// NOT(NOT(x)) folds to x.
	notOf map[Wire]Wire

	outputs   []Wire
	usedConst bool
	built     bool
}

// New returns an empty builder.
func New() *B {
	return &B{
		next:  2, // 0,1 reserved for constants
		known: map[Wire]bool{idConst0: false, idConst1: true},
		notOf: map[Wire]Wire{idConst0: idConst1, idConst1: idConst0},
	}
}

// NumGates returns the number of gates emitted so far.
func (b *B) NumGates() int { return len(b.gates) }

// GarblerInputs allocates n fresh garbler-owned input bits.
func (b *B) GarblerInputs(n int) Word { return b.declInputs(n, true) }

// EvaluatorInputs allocates n fresh evaluator-owned input bits.
func (b *B) EvaluatorInputs(n int) Word { return b.declInputs(n, false) }

func (b *B) declInputs(n int, garbler bool) Word {
	w := make(Word, n)
	for i := range w {
		id := b.next
		b.next++
		b.inputs = append(b.inputs, inputDecl{id: id, garbler: garbler})
		w[i] = id
	}
	return w
}

// Const returns the public constant wire for v.
func (b *B) Const(v bool) Wire {
	b.usedConst = true
	if v {
		return idConst1
	}
	return idConst0
}

// IsConst reports whether w is a public constant and its value.
func (b *B) IsConst(w Wire) (bool, bool) {
	v, ok := b.known[w]
	return ok, v
}

func (b *B) emit(op circuit.Op, a, bb Wire) Wire {
	c := b.next
	b.next++
	b.gates = append(b.gates, circuit.Gate{Op: op, A: a, B: bb, C: c})
	return c
}

// XOR returns a ^ b, folding constants and duplicate operands.
func (b *B) XOR(x, y Wire) Wire {
	if x == y {
		return b.Const(false)
	}
	if kx, vx := b.IsConst(x); kx {
		if ky, vy := b.IsConst(y); ky {
			return b.Const(vx != vy)
		}
		if vx {
			return b.NOT(y)
		}
		return y
	}
	if ky, vy := b.IsConst(y); ky {
		if vy {
			return b.NOT(x)
		}
		return x
	}
	// NOT(a) ^ NOT(b) == a ^ b; NOT(a) ^ b == NOT(a ^ b). Folding these
	// keeps INV chains from accumulating through arithmetic.
	return b.emit(circuit.XOR, x, y)
}

// AND returns a & b, folding constants and duplicate operands.
func (b *B) AND(x, y Wire) Wire {
	if x == y {
		return x
	}
	if kx, vx := b.IsConst(x); kx {
		if !vx {
			return b.Const(false)
		}
		return y
	}
	if ky, vy := b.IsConst(y); ky {
		if !vy {
			return b.Const(false)
		}
		return x
	}
	if n, ok := b.notOf[x]; ok && n == y {
		return b.Const(false) // a & ~a
	}
	return b.emit(circuit.AND, x, y)
}

// NOT returns ~x; complements are cached so the gate is emitted at most
// once per wire and NOT(NOT(x)) folds to x.
func (b *B) NOT(x Wire) Wire {
	if n, ok := b.notOf[x]; ok {
		return n
	}
	n := b.emit(circuit.INV, x, 0)
	b.notOf[x] = n
	b.notOf[n] = x
	return n
}

// OR returns a | b via De Morgan (one AND gate).
func (b *B) OR(x, y Wire) Wire {
	return b.NOT(b.AND(b.NOT(x), b.NOT(y)))
}

// XNOR returns ~(a ^ b).
func (b *B) XNOR(x, y Wire) Wire { return b.NOT(b.XOR(x, y)) }

// NAND returns ~(a & b).
func (b *B) NAND(x, y Wire) Wire { return b.NOT(b.AND(x, y)) }

// MUX returns s ? t : f using the single-AND form f ^ (s & (t ^ f)).
func (b *B) MUX(s, t, f Wire) Wire {
	if ks, vs := b.IsConst(s); ks {
		if vs {
			return t
		}
		return f
	}
	if t == f {
		return t
	}
	return b.XOR(f, b.AND(s, b.XOR(t, f)))
}

// Output appends wires to the circuit's primary outputs.
func (b *B) Output(ws ...Wire) { b.outputs = append(b.outputs, ws...) }

// OutputWord appends all bits of w to the primary outputs.
func (b *B) OutputWord(w Word) { b.outputs = append(b.outputs, w...) }

// Build finalizes the circuit, renumbering wires into the convention of
// internal/circuit: garbler inputs, evaluator inputs, constants (if
// used), then gate outputs in emission order. Build may be called once.
func (b *B) Build() (*circuit.Circuit, error) {
	if b.built {
		return nil, fmt.Errorf("builder: Build called twice")
	}
	b.built = true

	// Outputs referencing constant wires force constant materialization.
	for _, o := range b.outputs {
		if o == idConst0 || o == idConst1 {
			b.usedConst = true
		}
	}
	// Any gate touching a constant wire keeps it; folding should have
	// removed most, but INV of an input still references nothing const.
	if !b.usedConst {
		for i := range b.gates {
			g := &b.gates[i]
			if g.A < 2 || (g.Op != circuit.INV && g.B < 2) {
				b.usedConst = true
				break
			}
		}
	}

	remap := make([]Wire, b.next)
	var ng, ne int
	for _, in := range b.inputs {
		if in.garbler {
			ng++
		} else {
			ne++
		}
	}
	// Assign garbler inputs first, then evaluator inputs, in declaration
	// order within each party.
	gi, ei := 0, ng
	for _, in := range b.inputs {
		if in.garbler {
			remap[in.id] = Wire(gi)
			gi++
		} else {
			remap[in.id] = Wire(ei)
			ei++
		}
	}
	base := Wire(ng + ne)
	c := &circuit.Circuit{
		GarblerInputs:   ng,
		EvaluatorInputs: ne,
	}
	if b.usedConst {
		c.HasConst = true
		c.Const0 = base
		c.Const1 = base + 1
		remap[idConst0] = base
		remap[idConst1] = base + 1
		base += 2
	}
	nextOut := base
	for i := range b.gates {
		remap[b.gates[i].C] = nextOut
		nextOut++
	}
	c.NumWires = int(nextOut)
	c.Gates = make([]circuit.Gate, len(b.gates))
	for i, g := range b.gates {
		ng := circuit.Gate{Op: g.Op, A: remap[g.A], C: remap[g.C]}
		if g.Op != circuit.INV {
			ng.B = remap[g.B]
		}
		c.Gates[i] = ng
	}
	c.Outputs = make([]Wire, len(b.outputs))
	for i, o := range b.outputs {
		c.Outputs[i] = remap[o]
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("builder: produced invalid circuit: %w", err)
	}
	return c, nil
}

// MustBuild is Build that panics on error, for tests and generators whose
// construction is statically known to be valid.
func (b *B) MustBuild() *circuit.Circuit {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}
