package builder

// Fixed-point arithmetic (Qm.f format: two's-complement words with f
// fractional bits). Hybrid private-inference protocols — the paper's
// motivating application — run their linear algebra in fixed point and
// reserve garbled circuits for the non-linearities; these helpers cover
// the full layer so examples and extension workloads can express
// end-to-end layers in one circuit.

// Fix describes a fixed-point format: total width bits with Frac
// fractional bits.
type Fix struct {
	Width int
	Frac  int
}

// Q8_8 is the 16-bit, 8-fraction-bit format used by the examples.
var Q8_8 = Fix{Width: 16, Frac: 8}

// FixConst returns the fixed-point encoding of v as a constant word.
func (b *B) FixConst(f Fix, v float64) Word {
	scaled := int64(v * float64(int64(1)<<uint(f.Frac)))
	return b.ConstWord(uint64(scaled), f.Width)
}

// FixAdd adds two fixed-point values (plain two's-complement add).
func (b *B) FixAdd(f Fix, x, y Word) Word { return b.Add(x, y) }

// FixSub subtracts fixed-point values.
func (b *B) FixSub(f Fix, x, y Word) Word { return b.Sub(x, y) }

// FixMul multiplies two fixed-point values: full-width signed product,
// arithmetic shift right by the fraction, truncate to the format width.
func (b *B) FixMul(f Fix, x, y Word) Word {
	w2 := 2 * f.Width
	prod := b.Mul(b.ExtendSign(x, w2), b.ExtendSign(y, w2))
	return b.ShrArithConst(prod, f.Frac)[:f.Width]
}

// FixReLU clamps negative values to zero.
func (b *B) FixReLU(f Fix, x Word) Word {
	pos := b.NOT(x[f.Width-1])
	out := make(Word, f.Width)
	for i := range out {
		out[i] = b.AND(x[i], pos)
	}
	return out
}

// FixDot computes the fixed-point inner product of two equal-length
// vectors, accumulating at double width before a single rescale —
// cheaper and more accurate than rescaling per product.
func (b *B) FixDot(f Fix, xs, ys []Word) Word {
	if len(xs) != len(ys) {
		panic("builder: FixDot vector lengths differ")
	}
	w2 := 2 * f.Width
	acc := b.ZeroWord(w2)
	for i := range xs {
		p := b.Mul(b.ExtendSign(xs[i], w2), b.ExtendSign(ys[i], w2))
		acc = b.Add(acc, p)
	}
	return b.ShrArithConst(acc, f.Frac)[:f.Width]
}

// FixLayer computes ReLU(W·x + bias) for a dense layer: weights is
// out×in, x has in elements, bias has out elements.
func (b *B) FixLayer(f Fix, weights [][]Word, bias, x []Word) []Word {
	out := make([]Word, len(weights))
	for o := range weights {
		v := b.FixAdd(f, b.FixDot(f, weights[o], x), bias[o])
		out[o] = b.FixReLU(f, v)
	}
	return out
}
