package builder

// Karatsuba multiplication: fewer AND gates than schoolbook at the cost
// of depth. GC cost is dominated by AND count (each AND is four AES
// calls on a CPU and a Half-Gate pipeline pass plus a 32-byte table on
// HAAC), so sub-quadratic multipliers pay off sooner than they do in
// plaintext hardware; EMP-style frameworks make the same trade. The
// crossover against the schoolbook Mul sits around 16-32 bits.

// karatsubaThreshold is the width below which schoolbook wins.
const karatsubaThreshold = 10

// MulKaratsuba returns the low len(x) bits of x*y using recursive
// Karatsuba decomposition (full product computed, then truncated; the
// recursion itself needs the full halves).
func (b *B) MulKaratsuba(x, y Word) Word {
	mustSameWidth("MulKaratsuba", x, y)
	n := len(x)
	return b.mulKaratsubaFull(x, y)[:n]
}

// MulKaratsubaFull returns the full 2n-bit product.
func (b *B) MulKaratsubaFull(x, y Word) Word {
	mustSameWidth("MulKaratsubaFull", x, y)
	return b.mulKaratsubaFull(x, y)
}

func (b *B) mulKaratsubaFull(x, y Word) Word {
	n := len(x)
	if n <= karatsubaThreshold {
		return b.MulFull(x, y)
	}
	h := n / 2
	x0, x1 := x[:h], x[h:] // x = x1·2^h + x0
	y0, y1 := y[:h], y[h:]

	// Balance halves: widen the low parts to the high parts' width.
	w := n - h
	x0w := b.extendZero(x0, w)
	y0w := b.extendZero(y0, w)

	z0 := b.mulKaratsubaFull(x0w, y0w) // 2w bits, low product
	z2 := b.mulKaratsubaFull(x1, y1)   // 2w bits, high product

	// (x0+x1)(y0+y1): sums need one extra bit.
	sx, cx := b.AddCin(x0w, x1, b.Const(false))
	sy, cy := b.AddCin(y0w, y1, b.Const(false))
	sxw := append(append(Word{}, sx...), cx)
	syw := append(append(Word{}, sy...), cy)
	z1 := b.mulKaratsubaFull(sxw, syw) // (w+1)*2 bits

	// middle = z1 - z0 - z2
	mw := len(z1)
	mid := b.Sub(b.Sub(z1, b.extendZero(z0, mw)), b.extendZero(z2, mw))

	// result = z0 + mid<<h + z2<<2h, assembled at 2n bits.
	out := b.extendZero(z0, 2*n)
	out = b.Add(out, b.ShlConst(b.extendZero(mid, 2*n), h))
	out = b.Add(out, b.ShlConst(b.extendZero(z2, 2*n), 2*h))
	return out
}
