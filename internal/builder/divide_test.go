package builder

import (
	"math/rand"
	"testing"

	"haac/internal/circuit"
)

func TestDivMod(t *testing.T) {
	b := New()
	x := b.GarblerInputs(16)
	y := b.EvaluatorInputs(16)
	q, r := b.DivMod(x, y)
	b.OutputWord(q)
	b.OutputWord(r)
	c := b.MustBuild()
	rng := rand.New(rand.NewSource(31))
	check := func(xv, yv uint64) {
		t.Helper()
		out, err := c.EvalUint([]uint64{xv}, []uint64{yv}, 16)
		if err != nil {
			t.Fatal(err)
		}
		var wantQ, wantR uint64
		if yv == 0 {
			wantQ, wantR = 0xffff, xv
		} else {
			wantQ, wantR = xv/yv, xv%yv
		}
		if out[0] != wantQ || out[1] != wantR {
			t.Fatalf("DivMod(%d,%d) = (%d,%d), want (%d,%d)", xv, yv, out[0], out[1], wantQ, wantR)
		}
	}
	check(100, 7)
	check(0, 5)
	check(65535, 1)
	check(1, 65535)
	check(42, 0) // division by zero convention
	for i := 0; i < 150; i++ {
		check(uint64(rng.Intn(1<<16)), uint64(rng.Intn(1<<16)))
	}
}

func TestDivS(t *testing.T) {
	b := New()
	x := b.GarblerInputs(16)
	y := b.EvaluatorInputs(16)
	b.OutputWord(b.DivS(x, y))
	c := b.MustBuild()
	rng := rand.New(rand.NewSource(37))
	check := func(xv, yv int16) {
		t.Helper()
		if yv == 0 {
			return
		}
		out, err := c.EvalUint([]uint64{uint64(uint16(xv))}, []uint64{uint64(uint16(yv))}, 16)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(uint16(xv / yv))
		if out[0] != want {
			t.Fatalf("DivS(%d,%d) = %#x, want %#x", xv, yv, out[0], want)
		}
	}
	check(100, 7)
	check(-100, 7)
	check(100, -7)
	check(-100, -7)
	check(-1, 1)
	for i := 0; i < 100; i++ {
		check(int16(rng.Uint32()), int16(rng.Uint32()))
	}
}

func TestAbs(t *testing.T) {
	b := New()
	x := b.GarblerInputs(8)
	b.OutputWord(b.Abs(x))
	c := b.MustBuild()
	for _, v := range []int8{0, 1, -1, 127, -127, -128, 55, -55} {
		out, err := c.EvalUint([]uint64{uint64(uint8(v))}, nil, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := v
		if want < 0 {
			want = -want // note: -(-128) == -128, mirrored by the circuit
		}
		if out[0] != uint64(uint8(want)) {
			t.Fatalf("Abs(%d) = %d, want %d", v, out[0], uint8(want))
		}
	}
}

func TestRotations(t *testing.T) {
	b := New()
	x := b.GarblerInputs(16)
	b.OutputWord(b.RotlConst(x, 3))
	b.OutputWord(b.RotrConst(x, 5))
	b.OutputWord(b.RotlConst(x, 16)) // full rotation = identity
	b.OutputWord(b.RotlConst(x, -1)) // negative = right by 1
	c := b.MustBuild()
	v := uint64(0xb3c5)
	out, err := c.EvalUint([]uint64{v}, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	rotl := func(x uint64, k uint) uint64 { return (x<<k | x>>(16-k)) & 0xffff }
	if out[0] != rotl(v, 3) || out[1] != rotl(v, 11) || out[2] != v || out[3] != rotl(v, 15) {
		t.Fatalf("rotations wrong: %#x", out)
	}
}

func TestShrArithConst(t *testing.T) {
	b := New()
	x := b.GarblerInputs(8)
	b.OutputWord(b.ShrArithConst(x, 3))
	c := b.MustBuild()
	for _, v := range []int8{0, 1, -1, 127, -128, 40, -40} {
		out, err := c.EvalUint([]uint64{uint64(uint8(v))}, nil, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(uint8(v >> 3))
		if out[0] != want {
			t.Fatalf("ShrArith(%d,3) = %#x, want %#x", v, out[0], want)
		}
	}
}

func TestSelectConstTable(t *testing.T) {
	table := []uint64{7, 13, 0, 255, 42}
	b := New()
	idx := b.GarblerInputs(3)
	b.OutputWord(b.Select(idx, table, 8))
	c := b.MustBuild()
	for i := 0; i < 8; i++ {
		out, err := c.Eval(circuit.UintToBools(uint64(i), 3), nil)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(0)
		if i < len(table) {
			want = table[i]
		}
		if got := circuit.BoolsToUint(out); got != want {
			t.Fatalf("Select[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestSelectWordSecretTable(t *testing.T) {
	b := New()
	idx := b.GarblerInputs(2)
	entries := make([]Word, 4)
	for i := range entries {
		entries[i] = b.EvaluatorInputs(8)
	}
	b.OutputWord(b.SelectWord(idx, entries))
	c := b.MustBuild()
	vals := []uint64{11, 22, 33, 44}
	var evalBits []bool
	for _, v := range vals {
		evalBits = append(evalBits, circuit.UintToBools(v, 8)...)
	}
	for i := 0; i < 4; i++ {
		out, err := c.Eval(circuit.UintToBools(uint64(i), 2), evalBits)
		if err != nil {
			t.Fatal(err)
		}
		if got := circuit.BoolsToUint(out); got != vals[i] {
			t.Fatalf("SelectWord[%d] = %d, want %d", i, got, vals[i])
		}
	}
}

func TestMinWithIndex(t *testing.T) {
	b := New()
	vals := make([]Word, 5)
	for i := range vals {
		vals[i] = b.GarblerInputs(8)
	}
	mn, idx := b.MinWithIndex(vals)
	b.OutputWord(mn)
	b.OutputWord(idx)
	c := b.MustBuild()
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		in := make([]uint64, 5)
		var bits []bool
		for i := range in {
			in[i] = uint64(rng.Intn(256))
			bits = append(bits, circuit.UintToBools(in[i], 8)...)
		}
		out, err := c.Eval(bits, nil)
		if err != nil {
			t.Fatal(err)
		}
		gotMin := circuit.BoolsToUint(out[:8])
		gotIdx := circuit.BoolsToUint(out[8:])
		wantMin, wantIdx := in[0], uint64(0)
		for i, v := range in {
			if v < wantMin {
				wantMin, wantIdx = v, uint64(i)
			}
		}
		if gotMin != wantMin || gotIdx != wantIdx {
			t.Fatalf("MinWithIndex(%v) = (%d,%d), want (%d,%d)", in, gotMin, gotIdx, wantMin, wantIdx)
		}
	}
}
