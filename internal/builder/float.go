package builder

// IEEE-754 binary32 arithmetic as Boolean circuits. These are line-by-line
// transcriptions of internal/softfloat (the reference oracle); the two
// must stay in lockstep. See the softfloat package doc for the exact
// semantics (flush-to-zero, 3-guard-bit truncation, saturate-to-inf).
//
// GradDesc, the paper's floating-point benchmark ("implemented with true
// floating point arithmetic", §5), is built from these.

// Float word layout: a 32-wire little-endian Word where
//
//	w[0:23]  mantissa
//	w[23:31] biased exponent
//	w[31]    sign

// fUnpack splits a 32-bit float word into fields.
func fUnpack(x Word) (sign Wire, exp, mant Word) {
	return x[31], x[23:31], x[0:23]
}

// fPack assembles a float word.
func fPack(sign Wire, exp, mant Word) Word {
	out := make(Word, 32)
	copy(out[0:23], mant)
	copy(out[23:31], exp)
	out[31] = sign
	return out
}

// FNeg flips the sign bit (free).
func (b *B) FNeg(x Word) Word {
	out := append(Word(nil), x...)
	out[31] = b.NOT(x[31])
	return out
}

// FMul multiplies two binary32 words. Mirrors softfloat.Mul.
func (b *B) FMul(x, y Word) Word {
	mustFloat(x, y)
	sa, ea, ma := fUnpack(x)
	sb, eb, mb := fUnpack(y)
	s := b.XOR(sa, sb)

	zeroIn := b.OR(b.IsZero(ea), b.IsZero(eb))

	// 24-bit significands with the hidden bit; the zero case is muxed
	// out at the end exactly as softfloat returns early.
	pa := append(append(Word{}, ma...), b.Const(true))
	pb := append(append(Word{}, mb...), b.Const(true))
	p := b.MulFull(pa, pb) // 48 bits

	norm := p[47]
	mant := b.MuxWord(norm, p[24:47], p[23:46])

	// e = ea + eb - 127 + norm, in 10-bit signed arithmetic.
	t := b.Add(b.extendZero(ea, 10), b.extendZero(eb, 10))
	e := b.Sub(t, b.ConstWord(127, 10))
	e, _ = b.AddCin(e, b.ZeroWord(10), norm)

	zero := b.OR(zeroIn, b.LtS(e, b.ConstWord(1, 10)))
	inf := b.AND(b.NOT(zero), b.NOT(b.LtS(e, b.ConstWord(255, 10))))

	return b.fFinish(s, e, mant, zero, inf)
}

// FAdd adds two binary32 words. Mirrors softfloat.Add.
func (b *B) FAdd(x, y Word) Word {
	mustFloat(x, y)
	// Order by magnitude: the low 31 bits compare exp-then-mantissa.
	swap := b.LtU(x[0:31], y[0:31])
	big := b.MuxWord(swap, y, x)
	small := b.MuxWord(swap, x, y)

	s1, e1, m1 := fUnpack(big)
	s2, e2, m2 := fUnpack(small)

	sig1 := b.fSig27(e1, m1)
	sig2 := b.fSig27(e2, m2)

	// Align: d = e1 - e2 (non-negative by the swap), clamped to 31 so
	// the barrel shifter takes a 5-bit amount.
	d := b.Sub(e1, e2)
	ge32 := b.OrTree(d[5:8])
	sh := b.MuxWord(ge32, b.ConstWord(31, 5), d[0:5])
	sig2 = b.ShrVar(sig2, sh)

	subtract := b.XOR(s1, s2)
	a28 := b.extendZero(sig1, 28)
	c28 := b.extendZero(sig2, 28)
	sum := b.Add(a28, c28)
	diff := b.Sub(a28, c28)
	r := b.MuxWord(subtract, diff, sum) // 28 bits

	rzero := b.IsZero(r)
	lz := b.LeadingZeros(r) // 5 bits (0..28)
	rn := b.ShlVar(r, lz)

	// e = e1 + 1 - lz in 10-bit signed arithmetic.
	e := b.Add(b.extendZero(e1, 10), b.ConstWord(1, 10))
	e = b.Sub(e, b.extendZero(lz, 10))

	zero := b.OR(rzero, b.LtS(e, b.ConstWord(1, 10)))
	inf := b.AND(b.NOT(zero), b.NOT(b.LtS(e, b.ConstWord(255, 10))))

	// Exact cancellation yields +0 (sign cleared), like softfloat.
	sign := b.AND(s1, b.NOT(rzero))
	mant := rn[4:27]
	return b.fFinish(sign, e, mant, zero, inf)
}

// FSub returns x - y.
func (b *B) FSub(x, y Word) Word { return b.FAdd(x, b.FNeg(y)) }

// fSig27 builds the 27-bit significand (hidden|mant)<<3, or 0 for a
// zero/FTZ operand.
func (b *B) fSig27(e, m Word) Word {
	nonzero := b.NonZero(e)
	sig := make(Word, 27)
	sig[0] = b.Const(false)
	sig[1] = b.Const(false)
	sig[2] = b.Const(false)
	for i := 0; i < 23; i++ {
		sig[3+i] = b.AND(m[i], nonzero)
	}
	sig[26] = nonzero
	return sig
}

// fFinish applies the zero/inf selection and packs the result.
func (b *B) fFinish(sign Wire, e10, mant Word, zero, inf Wire) Word {
	expOut := make(Word, 8)
	for i := 0; i < 8; i++ {
		// zero -> 0, inf -> 1, else e bit.
		v := b.MUX(inf, b.Const(true), e10[i])
		expOut[i] = b.AND(v, b.NOT(zero))
	}
	mantOut := make(Word, 23)
	kill := b.OR(zero, inf)
	for i := range mantOut {
		mantOut[i] = b.AND(mant[i], b.NOT(kill))
	}
	return fPack(sign, expOut, mantOut)
}

func mustFloat(ws ...Word) {
	for _, w := range ws {
		if len(w) != 32 {
			panic("builder: float operands must be 32 wires")
		}
	}
}
