package builder

import (
	"testing"

	"haac/internal/aes128"
	"haac/internal/circuit"
)

func TestGF16MulCircuit(t *testing.T) {
	b := New()
	x := b.GarblerInputs(4)
	y := b.EvaluatorInputs(4)
	b.OutputWord(b.GF16Mul(x, y))
	c := b.MustBuild()
	for a := 0; a < 16; a++ {
		for d := 0; d < 16; d++ {
			out, err := c.Eval(circuit.UintToBools(uint64(a), 4), circuit.UintToBools(uint64(d), 4))
			if err != nil {
				t.Fatal(err)
			}
			if got, want := byte(circuit.BoolsToUint(out)), gf16Mul(byte(a), byte(d)); got != want {
				t.Fatalf("GF16Mul(%x,%x) = %x, want %x", a, d, got, want)
			}
		}
	}
}

func TestGF16InvCircuit(t *testing.T) {
	b := New()
	x := b.GarblerInputs(4)
	b.OutputWord(b.GF16Inv(x))
	c := b.MustBuild()
	for a := 0; a < 16; a++ {
		out, err := c.Eval(circuit.UintToBools(uint64(a), 4), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := byte(circuit.BoolsToUint(out)), gf16Inv[a]; got != want {
			t.Fatalf("GF16Inv(%x) = %x, want %x", a, got, want)
		}
	}
}

func TestGF16InvTableConsistent(t *testing.T) {
	for a := 1; a < 16; a++ {
		if gf16Mul(byte(a), gf16Inv[a]) != 1 {
			t.Fatalf("gf16Inv[%x] = %x is not an inverse", a, gf16Inv[a])
		}
	}
	if gf16Inv[0] != 0 {
		t.Fatal("gf16Inv[0] must be 0")
	}
}

func TestGF256InvCircuitExhaustive(t *testing.T) {
	b := New()
	x := b.GarblerInputs(8)
	b.OutputWord(b.GF256Inv(x))
	c := b.MustBuild()
	for a := 0; a < 256; a++ {
		out, err := c.Eval(circuit.UintToBools(uint64(a), 8), nil)
		if err != nil {
			t.Fatal(err)
		}
		got := byte(circuit.BoolsToUint(out))
		if a == 0 {
			if got != 0 {
				t.Fatalf("GF256Inv(0) = %x, want 0", got)
			}
			continue
		}
		if gf256Mul(byte(a), got) != 1 {
			t.Fatalf("GF256Inv(%x) = %x is not an inverse", a, got)
		}
	}
}

func TestSBoxCircuitExhaustive(t *testing.T) {
	b := New()
	x := b.GarblerInputs(8)
	b.OutputWord(b.SBox(x))
	c := b.MustBuild()
	and, _, _ := c.CountOps()
	if and > 80 {
		t.Fatalf("S-box uses %d AND gates; tower construction should need < 80", and)
	}
	for a := 0; a < 256; a++ {
		out, err := c.Eval(circuit.UintToBools(uint64(a), 8), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := byte(circuit.BoolsToUint(out)), aes128.SBox(byte(a)); got != want {
			t.Fatalf("SBox(%02x) = %02x, want %02x", a, got, want)
		}
	}
	t.Logf("S-box circuit: %d AND gates, %d total", and, len(c.Gates))
}
