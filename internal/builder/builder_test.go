package builder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"haac/internal/circuit"
)

// evalBin builds a circuit computing f over two w-bit garbler/evaluator
// inputs and returns a closure evaluating it on concrete values.
func evalBin(t *testing.T, w int, f func(b *B, x, y Word) Word) func(x, y uint64) uint64 {
	t.Helper()
	b := New()
	x := b.GarblerInputs(w)
	y := b.EvaluatorInputs(w)
	b.OutputWord(f(b, x, y))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return func(xv, yv uint64) uint64 {
		out, err := c.EvalUint([]uint64{xv}, []uint64{yv}, w)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 && len(c.Outputs)%w != 0 {
			t.Fatalf("unexpected output shape")
		}
		return out[0]
	}
}

// evalPred is evalBin for single-bit predicates.
func evalPred(t *testing.T, w int, f func(b *B, x, y Word) Wire) func(x, y uint64) bool {
	t.Helper()
	b := New()
	x := b.GarblerInputs(w)
	y := b.EvaluatorInputs(w)
	b.Output(f(b, x, y))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return func(xv, yv uint64) bool {
		g := circuit.UintToBools(xv, w)
		e := circuit.UintToBools(yv, w)
		out, err := c.Eval(g, e)
		if err != nil {
			t.Fatal(err)
		}
		return out[0]
	}
}

const w32mask = (1 << 32) - 1

func TestAdd(t *testing.T) {
	add := evalBin(t, 32, func(b *B, x, y Word) Word { return b.Add(x, y) })
	f := func(x, y uint32) bool { return add(uint64(x), uint64(y)) == uint64(x+y) }
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSub(t *testing.T) {
	sub := evalBin(t, 32, func(b *B, x, y Word) Word { return b.Sub(x, y) })
	f := func(x, y uint32) bool { return sub(uint64(x), uint64(y)) == uint64(x-y) }
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMul(t *testing.T) {
	mul := evalBin(t, 32, func(b *B, x, y Word) Word { return b.Mul(x, y) })
	f := func(x, y uint32) bool { return mul(uint64(x), uint64(y)) == uint64(x*y) }
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMulFull(t *testing.T) {
	b := New()
	x := b.GarblerInputs(16)
	y := b.EvaluatorInputs(16)
	b.OutputWord(b.MulFull(x, y))
	c := b.MustBuild()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		xv := uint64(rng.Uint32() & 0xffff)
		yv := uint64(rng.Uint32() & 0xffff)
		out, err := c.EvalUint([]uint64{xv}, []uint64{yv}, 16)
		if err != nil {
			t.Fatal(err)
		}
		got := out[0] | out[1]<<16
		if got != xv*yv {
			t.Fatalf("MulFull(%d,%d) = %d, want %d", xv, yv, got, xv*yv)
		}
	}
}

func TestComparisons(t *testing.T) {
	ltu := evalPred(t, 32, func(b *B, x, y Word) Wire { return b.LtU(x, y) })
	lts := evalPred(t, 32, func(b *B, x, y Word) Wire { return b.LtS(x, y) })
	eq := evalPred(t, 32, func(b *B, x, y Word) Wire { return b.Eq(x, y) })
	f := func(x, y uint32) bool {
		if ltu(uint64(x), uint64(y)) != (x < y) {
			return false
		}
		if lts(uint64(x), uint64(y)) != (int32(x) < int32(y)) {
			return false
		}
		if eq(uint64(x), uint64(y)) != (x == y) {
			return false
		}
		return eq(uint64(x), uint64(x)) // reflexive equality
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMuxAndMinMax(t *testing.T) {
	mx := evalBin(t, 16, func(b *B, x, y Word) Word { return b.Max(x, y) })
	mn := evalBin(t, 16, func(b *B, x, y Word) Word { return b.Min(x, y) })
	f := func(x, y uint16) bool {
		xv, yv := uint64(x), uint64(y)
		wantMax, wantMin := xv, yv
		if yv > xv {
			wantMax, wantMin = yv, xv
		}
		return mx(xv, yv) == wantMax && mn(xv, yv) == wantMin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortPair(t *testing.T) {
	b := New()
	x := b.GarblerInputs(16)
	y := b.EvaluatorInputs(16)
	lo, hi := b.SortPair(x, y)
	b.OutputWord(lo)
	b.OutputWord(hi)
	c := b.MustBuild()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		xv, yv := uint64(rng.Uint32()&0xffff), uint64(rng.Uint32()&0xffff)
		out, err := c.EvalUint([]uint64{xv}, []uint64{yv}, 16)
		if err != nil {
			t.Fatal(err)
		}
		wantLo, wantHi := xv, yv
		if yv < xv {
			wantLo, wantHi = yv, xv
		}
		if out[0] != wantLo || out[1] != wantHi {
			t.Fatalf("SortPair(%d,%d) = (%d,%d)", xv, yv, out[0], out[1])
		}
	}
}

func TestShifts(t *testing.T) {
	for _, k := range []int{0, 1, 5, 16, 31, 40} {
		k := k
		shl := evalBin(t, 32, func(b *B, x, y Word) Word { return b.ShlConst(x, k) })
		shr := evalBin(t, 32, func(b *B, x, y Word) Word { return b.ShrConst(x, k) })
		x := uint64(0xdeadbeef)
		wantShl := x << uint(k) & w32mask
		wantShr := x >> uint(k)
		if k >= 64 {
			wantShl, wantShr = 0, 0
		}
		if got := shl(x, 0); got != wantShl {
			t.Fatalf("ShlConst(%#x,%d) = %#x, want %#x", x, k, got, wantShl)
		}
		if got := shr(x, 0); got != wantShr {
			t.Fatalf("ShrConst(%#x,%d) = %#x, want %#x", x, k, got, wantShr)
		}
	}
}

func TestVarShifts(t *testing.T) {
	shr := evalBin(t, 32, func(b *B, x, y Word) Word { return b.ShrVar(x, y[:6]) })
	shl := evalBin(t, 32, func(b *B, x, y Word) Word { return b.ShlVar(x, y[:6]) })
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 150; i++ {
		x := uint64(rng.Uint32())
		s := uint64(rng.Intn(64))
		wantR, wantL := uint64(0), uint64(0)
		if s < 32 {
			wantR = x >> s
			wantL = x << s & w32mask
		}
		if got := shr(x, s); got != wantR {
			t.Fatalf("ShrVar(%#x,%d) = %#x, want %#x", x, s, got, wantR)
		}
		if got := shl(x, s); got != wantL {
			t.Fatalf("ShlVar(%#x,%d) = %#x, want %#x", x, s, got, wantL)
		}
	}
}

func TestPopCount(t *testing.T) {
	b := New()
	x := b.GarblerInputs(33)
	b.OutputWord(b.PopCount(x))
	c := b.MustBuild()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		bits := make([]bool, 33)
		want := uint64(0)
		for j := range bits {
			bits[j] = rng.Intn(2) == 1
			if bits[j] {
				want++
			}
		}
		out, err := c.Eval(bits, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := circuit.BoolsToUint(out); got != want {
			t.Fatalf("PopCount = %d, want %d", got, want)
		}
	}
}

func TestLeadingZeros(t *testing.T) {
	b := New()
	x := b.GarblerInputs(28)
	b.OutputWord(b.LeadingZeros(x))
	c := b.MustBuild()
	rng := rand.New(rand.NewSource(17))
	check := func(v uint64) {
		t.Helper()
		want := uint64(0)
		for i := 27; i >= 0; i-- {
			if v>>uint(i)&1 == 1 {
				break
			}
			want++
		}
		out, err := c.Eval(circuit.UintToBools(v, 28), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := circuit.BoolsToUint(out); got != want {
			t.Fatalf("LeadingZeros(%#x) = %d, want %d", v, got, want)
		}
	}
	check(0)
	check(1)
	check(1 << 27)
	for i := 0; i < 100; i++ {
		check(uint64(rng.Uint32()) & (1<<28 - 1))
	}
}

func TestConstFolding(t *testing.T) {
	b := New()
	x := b.GarblerInputs(32)
	// Masking with a constant must not emit any AND gates.
	before := b.NumGates()
	_ = b.ANDConst(x, 0x0000ffff)
	if b.NumGates() != before {
		t.Fatalf("ANDConst emitted %d gates", b.NumGates()-before)
	}
	// XOR with zero word: no gates.
	_ = b.XORWords(x, b.ZeroWord(32))
	if b.NumGates() != before {
		t.Fatal("XOR with zero emitted gates")
	}
	// Double negation folds.
	n := b.NOT(x[0])
	gatesAfterNot := b.NumGates()
	if b.NOT(n) != x[0] {
		t.Fatal("NOT(NOT(x)) != x")
	}
	if b.NumGates() != gatesAfterNot {
		t.Fatal("double negation emitted gates")
	}
	// x ^ x and x & ~x are constants.
	if k, v := b.IsConst(b.XOR(x[1], x[1])); !k || v {
		t.Fatal("x^x did not fold to const 0")
	}
	if k, v := b.IsConst(b.AND(x[2], b.NOT(x[2]))); !k || v {
		t.Fatal("x & ~x did not fold to const 0")
	}
}

func TestBuildTwiceFails(t *testing.T) {
	b := New()
	x := b.GarblerInputs(1)
	b.Output(x[0])
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("second Build succeeded")
	}
}

func TestInterleavedInputOrder(t *testing.T) {
	// Inputs declared after gates must still land in the canonical
	// garbler-then-evaluator order.
	b := New()
	g1 := b.GarblerInputs(1)
	e1 := b.EvaluatorInputs(1)
	sum := b.XOR(g1[0], e1[0])
	g2 := b.GarblerInputs(1)
	b.Output(b.XOR(sum, g2[0]))
	c := b.MustBuild()
	if c.GarblerInputs != 2 || c.EvaluatorInputs != 1 {
		t.Fatalf("input counts %d/%d", c.GarblerInputs, c.EvaluatorInputs)
	}
	// g = [g1, g2], e = [e1]: out = g1 ^ e1 ^ g2
	out, err := c.Eval([]bool{true, true}, []bool{false})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != false {
		t.Fatal("wrong value after input renumbering")
	}
}

func TestStatsOnAdder(t *testing.T) {
	b := New()
	x := b.GarblerInputs(32)
	y := b.EvaluatorInputs(32)
	b.OutputWord(b.Add(x, y))
	c := b.MustBuild()
	s := c.ComputeStats()
	and, _, _ := c.CountOps()
	if and != 31 { // one AND per bit except the final sum bit's carry is unused... carry chain emits 32, last one may fold
		// The final carry-out AND is still emitted since AddCin computes it.
		if and != 32 {
			t.Fatalf("adder AND count = %d, want 31 or 32", and)
		}
	}
	if s.Levels == 0 || s.ILP == 0 {
		t.Fatal("stats not computed")
	}
}

func TestMulKaratsubaCorrect(t *testing.T) {
	for _, w := range []int{8, 16, 24, 32} {
		w := w
		b := New()
		x := b.GarblerInputs(w)
		y := b.EvaluatorInputs(w)
		b.OutputWord(b.MulKaratsubaFull(x, y))
		c := b.MustBuild()
		rng := rand.New(rand.NewSource(int64(w)))
		mask := uint64(1)<<uint(w) - 1
		for i := 0; i < 60; i++ {
			xv := rng.Uint64() & mask
			yv := rng.Uint64() & mask
			out, err := c.EvalUint([]uint64{xv}, []uint64{yv}, w)
			if err != nil {
				t.Fatal(err)
			}
			got := out[0] | out[1]<<uint(w)
			if got != xv*yv {
				t.Fatalf("w=%d: Karatsuba(%d,%d) = %d, want %d", w, xv, yv, got, xv*yv)
			}
		}
	}
}

func TestMulKaratsubaSavesANDs(t *testing.T) {
	countANDs := func(f func(b *B, x, y Word) Word) int {
		b := New()
		x := b.GarblerInputs(64)
		y := b.EvaluatorInputs(64)
		b.OutputWord(f(b, x, y))
		c := b.MustBuild()
		and, _, _ := c.CountOps()
		return and
	}
	school := countANDs(func(b *B, x, y Word) Word { return b.MulFull(x, y) })
	kara := countANDs(func(b *B, x, y Word) Word { return b.MulKaratsubaFull(x, y) })
	if kara >= school {
		t.Fatalf("Karatsuba %d ANDs >= schoolbook %d at 64 bits", kara, school)
	}
	t.Logf("64-bit full multiply: schoolbook %d ANDs, Karatsuba %d (%.0f%%)",
		school, kara, 100*float64(kara)/float64(school))
}
