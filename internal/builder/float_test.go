package builder

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"haac/internal/softfloat"
)

// fEval compiles a binary float op into an evaluator over raw bits.
func fEval(t *testing.T, f func(b *B, x, y Word) Word) func(x, y uint32) uint32 {
	t.Helper()
	b := New()
	x := b.GarblerInputs(32)
	y := b.EvaluatorInputs(32)
	b.OutputWord(f(b, x, y))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return func(xv, yv uint32) uint32 {
		out, err := c.EvalUint([]uint64{uint64(xv)}, []uint64{uint64(yv)}, 32)
		if err != nil {
			t.Fatal(err)
		}
		return uint32(out[0])
	}
}

// normalFloat draws finite, non-subnormal float bit patterns (the domain
// the softfloat semantics are defined over).
func normalFloat(rng *rand.Rand) uint32 {
	for {
		b := rng.Uint32()
		e := b >> 23 & 0xff
		if e != 0 && e != 255 {
			return b
		}
		if e == 0 {
			return b & 0x80000000 // signed zero
		}
	}
}

func TestFMulMatchesSoftfloat(t *testing.T) {
	mul := fEval(t, func(b *B, x, y Word) Word { return b.FMul(x, y) })
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 400; i++ {
		a, c := normalFloat(rng), normalFloat(rng)
		got, want := mul(a, c), softfloat.Mul(a, c)
		if got != want {
			t.Fatalf("FMul(%08x,%08x) = %08x, want %08x (%v*%v)",
				a, c, got, want, math.Float32frombits(a), math.Float32frombits(c))
		}
	}
}

func TestFAddMatchesSoftfloat(t *testing.T) {
	add := fEval(t, func(b *B, x, y Word) Word { return b.FAdd(x, y) })
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 400; i++ {
		a, c := normalFloat(rng), normalFloat(rng)
		got, want := add(a, c), softfloat.Add(a, c)
		if got != want {
			t.Fatalf("FAdd(%08x,%08x) = %08x, want %08x (%v+%v)",
				a, c, got, want, math.Float32frombits(a), math.Float32frombits(c))
		}
	}
}

func TestFAddSpecialCases(t *testing.T) {
	add := fEval(t, func(b *B, x, y Word) Word { return b.FAdd(x, y) })
	sub := fEval(t, func(b *B, x, y Word) Word { return b.FSub(x, y) })
	cases := [][2]float32{
		{0, 0}, {1, 0}, {0, 1}, {-1, 1}, {1, -1},
		{1, 1}, {1.5, 1.0}, {0.5, 0.25},
		{3.4e38, 3.4e38},  // overflow to inf
		{1e-38, -0.9e-38}, // tiny difference, possible FTZ
		{123456, -123456}, // exact cancellation
		{1e20, 1},         // complete absorption of the small operand
		{-2.5, -2.5},
	}
	for _, cse := range cases {
		a := softfloat.FromFloat32(cse[0])
		b := softfloat.FromFloat32(cse[1])
		if got, want := add(a, b), softfloat.Add(a, b); got != want {
			t.Errorf("FAdd(%v,%v) = %08x, want %08x", cse[0], cse[1], got, want)
		}
		if got, want := sub(a, b), softfloat.Sub(a, b); got != want {
			t.Errorf("FSub(%v,%v) = %08x, want %08x", cse[0], cse[1], got, want)
		}
	}
}

func TestFMulSpecialCases(t *testing.T) {
	mul := fEval(t, func(b *B, x, y Word) Word { return b.FMul(x, y) })
	cases := [][2]float32{
		{0, 5}, {5, 0}, {0, 0}, {-0, 3},
		{1, 1}, {2, 3}, {-2, 3}, {0.5, 0.5},
		{3e38, 3e38},   // overflow
		{1e-30, 1e-30}, // underflow to zero
		{1.0000001, 1.0000001},
	}
	for _, cse := range cases {
		a := softfloat.FromFloat32(cse[0])
		b := softfloat.FromFloat32(cse[1])
		if got, want := mul(a, b), softfloat.Mul(a, b); got != want {
			t.Errorf("FMul(%v,%v) = %08x, want %08x", cse[0], cse[1], got, want)
		}
	}
}

func TestSoftfloatNearNative(t *testing.T) {
	// Softfloat truncates, so it may differ from the native
	// round-to-nearest result by a few ULPs; check relative error instead
	// of exact equality. This anchors the oracle itself to IEEE floats.
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) ||
			math.IsInf(float64(a), 0) || math.IsInf(float64(b), 0) {
			return true
		}
		sum := float64(softfloat.AddF(a, b))
		want := float64(a) + float64(b)
		if math.Abs(want) < 1e-35 || math.Abs(want) > 1e35 {
			return true // near FTZ or overflow boundaries
		}
		return math.Abs(sum-want) <= math.Abs(want)*1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	g := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) ||
			math.IsInf(float64(a), 0) || math.IsInf(float64(b), 0) {
			return true
		}
		prod := float64(softfloat.MulF(a, b))
		want := float64(a) * float64(b)
		if math.Abs(want) < 1e-35 || math.Abs(want) > 1e35 {
			return true
		}
		return math.Abs(prod-want) <= math.Abs(want)*1e-5
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFNegIsFree(t *testing.T) {
	b := New()
	x := b.GarblerInputs(32)
	before := b.NumGates()
	_ = b.FNeg(x)
	// FNeg costs exactly one INV gate (cached thereafter).
	if got := b.NumGates() - before; got != 1 {
		t.Fatalf("FNeg emitted %d gates, want 1", got)
	}
}
