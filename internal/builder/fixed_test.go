package builder

import (
	"math"
	"math/rand"
	"testing"

	"haac/internal/circuit"
)

// fixVal encodes a float into Q8.8 bits; fixFloat decodes.
func fixVal(v float64) uint64 {
	return uint64(uint16(int16(v * 256)))
}

func fixFloat(bits uint64) float64 {
	return float64(int16(uint16(bits))) / 256
}

func TestFixMul(t *testing.T) {
	b := New()
	x := b.GarblerInputs(16)
	y := b.EvaluatorInputs(16)
	b.OutputWord(b.FixMul(Q8_8, x, y))
	c := b.MustBuild()
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 200; i++ {
		xf := rng.Float64()*16 - 8
		yf := rng.Float64()*16 - 8
		out, err := c.EvalUint([]uint64{fixVal(xf)}, []uint64{fixVal(yf)}, 16)
		if err != nil {
			t.Fatal(err)
		}
		got := fixFloat(out[0])
		want := xf * yf
		// Q8.8 quantizes inputs to 1/256 and truncates the product.
		if math.Abs(got-want) > 0.15 {
			t.Fatalf("FixMul(%v,%v) = %v, want ~%v", xf, yf, got, want)
		}
	}
}

func TestFixMulExactPowers(t *testing.T) {
	b := New()
	x := b.GarblerInputs(16)
	y := b.EvaluatorInputs(16)
	b.OutputWord(b.FixMul(Q8_8, x, y))
	c := b.MustBuild()
	cases := [][3]float64{
		{2, 3, 6}, {0.5, 0.5, 0.25}, {-2, 3, -6}, {1.5, -2, -3},
		{0, 5, 0}, {-0.25, -4, 1},
	}
	for _, cs := range cases {
		out, err := c.EvalUint([]uint64{fixVal(cs[0])}, []uint64{fixVal(cs[1])}, 16)
		if err != nil {
			t.Fatal(err)
		}
		if got := fixFloat(out[0]); got != cs[2] {
			t.Fatalf("FixMul(%v,%v) = %v, want %v", cs[0], cs[1], got, cs[2])
		}
	}
}

func TestFixReLU(t *testing.T) {
	b := New()
	x := b.GarblerInputs(16)
	b.OutputWord(b.FixReLU(Q8_8, x))
	c := b.MustBuild()
	for _, v := range []float64{-5, -0.004, 0, 0.004, 5, 127} {
		out, err := c.EvalUint([]uint64{fixVal(v)}, nil, 16)
		if err != nil {
			t.Fatal(err)
		}
		want := fixFloat(fixVal(v)) // input quantized to Q8.8 first
		if want < 0 {
			want = 0
		}
		if got := fixFloat(out[0]); got != want {
			t.Fatalf("FixReLU(%v) = %v, want %v", v, got, want)
		}
	}
}

func TestFixDotAndLayer(t *testing.T) {
	const n = 6
	b := New()
	ws := make([]Word, n)
	xs := make([]Word, n)
	for i := range ws {
		ws[i] = b.GarblerInputs(16)
	}
	for i := range xs {
		xs[i] = b.EvaluatorInputs(16)
	}
	bias := b.GarblerInputs(16)
	out := b.FixLayer(Q8_8, [][]Word{ws}, []Word{bias}, xs)
	b.OutputWord(out[0])
	c := b.MustBuild()

	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 40; trial++ {
		wf := make([]float64, n)
		xf := make([]float64, n)
		var g, e []bool
		for i := 0; i < n; i++ {
			wf[i] = rng.Float64()*2 - 1
			g = append(g, circuit.UintToBools(fixVal(wf[i]), 16)...)
		}
		for i := 0; i < n; i++ {
			xf[i] = rng.Float64()*2 - 1
			e = append(e, circuit.UintToBools(fixVal(xf[i]), 16)...)
		}
		bf := rng.Float64() - 0.5
		g = append(g, circuit.UintToBools(fixVal(bf), 16)...)

		res, err := c.Eval(g, e)
		if err != nil {
			t.Fatal(err)
		}
		got := fixFloat(circuit.BoolsToUint(res))
		want := bf
		for i := 0; i < n; i++ {
			want += wf[i] * xf[i]
		}
		if want < 0 {
			want = 0
		}
		if math.Abs(got-want) > 0.1 {
			t.Fatalf("FixLayer = %v, want ~%v", got, want)
		}
	}
}

func TestFixConst(t *testing.T) {
	b := New()
	w := b.FixConst(Q8_8, -1.5)
	x := b.GarblerInputs(16)
	b.OutputWord(b.FixAdd(Q8_8, x, w))
	c := b.MustBuild()
	out, err := c.EvalUint([]uint64{fixVal(4.0)}, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := fixFloat(out[0]); got != 2.5 {
		t.Fatalf("4.0 + (-1.5) = %v", got)
	}
}
