package builder

// Galois-field tower machinery for building a compact AES S-box circuit
// (~60 AND gates instead of the ~2000 a mux-tree lookup costs). The
// Table 5 comparison garbles an AES-128 circuit, so its gate count needs
// to be in the same league as the standard Bristol AES netlist the prior
// accelerators were evaluated on.
//
// Construction: represent GF(2^8) (AES polynomial x^8+x^4+x^3+x+1) as the
// tower GF((2^4)^2) = GF(16)[Y]/(Y^2+Y+λ). Inversion in the tower costs
// three GF(16) multiplications plus one GF(16) inversion; everything else
// (squaring, scaling by λ, the basis changes, and the S-box affine map)
// is GF(2)-linear and therefore free XOR under garbling.
//
// All constants — the GF(16) embedding, the tower root Y, the 8×8 basis
// change matrices — are derived by brute-force search at init time and
// the full S-box is unit-tested against the byte table in
// internal/aes128, so no hand-copied magic matrices can silently rot.

// ---- plaintext field arithmetic used only to derive constants ----

// gf256Mul multiplies in GF(2^8) modulo x^8+x^4+x^3+x+1 (AES).
func gf256Mul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 == 1 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// gf16Mul multiplies in GF(2^4) modulo x^4+x+1.
func gf16Mul(a, b byte) byte {
	var p byte
	for i := 0; i < 4; i++ {
		if b&1 == 1 {
			p ^= a
		}
		hi := a & 0x8
		a <<= 1
		if hi != 0 {
			a ^= 0x13
		}
		b >>= 1
	}
	return p & 0xf
}

// gf16Inv is the multiplicative inverse table in GF(2^4), with inv(0)=0
// (matching the AES convention for the S-box input 0).
var gf16Inv [16]byte

// tower holds the derived tower-field constants.
type towerConsts struct {
	lambda  byte    // λ ∈ GF(16) with Y^2+Y+λ irreducible
	toTow   [8]byte // matrix: std-basis byte -> (b | a<<4) tower coords, column images
	fromTow [8]byte // inverse matrix
	sqLam   [4]byte // GF(16) linear map t -> λ·t^2, column images
}

var tower towerConsts

func init() {
	for x := 1; x < 16; x++ {
		for y := 1; y < 16; y++ {
			if gf16Mul(byte(x), byte(y)) == 1 {
				gf16Inv[x] = byte(y)
			}
		}
	}

	// Embed GF(16) into GF(2^8): find u with u^4 + u + 1 = 0 over the AES
	// field; then emb(sum a_i x^i) = sum a_i u^i.
	var u byte
	for cand := 2; cand < 256; cand++ {
		c := byte(cand)
		c4 := gf256Mul(gf256Mul(c, c), gf256Mul(c, c))
		if c4^c^1 == 0 {
			u = c
			break
		}
	}
	if u == 0 {
		panic("builder: no GF(16) embedding found")
	}
	emb := func(v byte) byte {
		var r, p byte = 0, 1
		for i := 0; i < 4; i++ {
			if v>>uint(i)&1 == 1 {
				r ^= p
			}
			p = gf256Mul(p, u)
		}
		return r
	}

	// Pick λ such that Y^2+Y+λ has a root Y in GF(2^8) but none in
	// GF(16) (irreducible over GF(16) yet splitting in the extension).
	var lambda, Y byte
search:
	for l := 1; l < 16; l++ {
		for t := 0; t < 16; t++ {
			if gf16Mul(byte(t), byte(t))^byte(t)^byte(l) == 0 {
				continue search // reducible over GF(16)
			}
		}
		el := emb(byte(l))
		for y := 0; y < 256; y++ {
			yy := byte(y)
			if gf256Mul(yy, yy)^yy^el == 0 {
				lambda, Y = byte(l), yy
				break search
			}
		}
	}
	if Y == 0 {
		panic("builder: no tower root found")
	}
	tower.lambda = lambda

	// fromTow: tower coords (b + a·Y with a,b ∈ GF(16), packed a<<4|b)
	// back to the standard basis. Columns are images of the 8 unit bits.
	for i := 0; i < 4; i++ {
		tower.fromTow[i] = emb(1 << uint(i))              // b bits
		tower.fromTow[4+i] = gf256Mul(emb(1<<uint(i)), Y) // a bits
	}
	// Invert over GF(2) to get toTow.
	inv, ok := invertGF2(tower.fromTow)
	if !ok {
		panic("builder: tower basis not invertible")
	}
	tower.toTow = inv

	// sqLam: t -> λ·t² in GF(16) is linear; store column images.
	for i := 0; i < 4; i++ {
		t := byte(1 << uint(i))
		tower.sqLam[i] = gf16Mul(lambda, gf16Mul(t, t))
	}
}

// invertGF2 inverts an 8×8 GF(2) matrix given as column images.
func invertGF2(cols [8]byte) ([8]byte, bool) {
	// rows[i] = i-th row of [M | I] as 16-bit.
	var rows [8]uint16
	for r := 0; r < 8; r++ {
		var row uint16
		for c := 0; c < 8; c++ {
			if cols[c]>>uint(r)&1 == 1 {
				row |= 1 << uint(c)
			}
		}
		rows[r] = row | 1<<uint(8+r)
	}
	for col := 0; col < 8; col++ {
		p := -1
		for r := col; r < 8; r++ {
			if rows[r]>>uint(col)&1 == 1 {
				p = r
				break
			}
		}
		if p < 0 {
			return [8]byte{}, false
		}
		rows[col], rows[p] = rows[p], rows[col]
		for r := 0; r < 8; r++ {
			if r != col && rows[r]>>uint(col)&1 == 1 {
				rows[r] ^= rows[col]
			}
		}
	}
	var out [8]byte
	for c := 0; c < 8; c++ {
		for r := 0; r < 8; r++ {
			if rows[r]>>uint(8+c)&1 == 1 {
				out[c] |= 1 << uint(r)
			}
		}
	}
	return out, true
}

// ---- circuit-level helpers ----

// linearMap applies the GF(2)-linear map with the given column images to
// the bit-word x (len(x) input bits, width output bits). Pure XOR.
func (b *B) linearMap(x Word, cols []byte, width int) Word {
	out := make(Word, width)
	for r := 0; r < width; r++ {
		var terms []Wire
		for c := range x {
			if cols[c]>>uint(r)&1 == 1 {
				terms = append(terms, x[c])
			}
		}
		out[r] = b.XorTree(terms)
	}
	return out
}

// GF16Mul multiplies two GF(2^4) elements (poly x^4+x+1) as a bilinear
// circuit: 16 shared AND products combined by XOR trees.
func (b *B) GF16Mul(x, y Word) Word {
	if len(x) != 4 || len(y) != 4 {
		panic("builder: GF16Mul operands must be 4 wires")
	}
	var prod [4][4]Wire
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			prod[i][j] = b.AND(x[i], y[j])
		}
	}
	out := make(Word, 4)
	for k := 0; k < 4; k++ {
		var terms []Wire
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if gf16Mul(1<<uint(i), 1<<uint(j))>>uint(k)&1 == 1 {
					terms = append(terms, prod[i][j])
				}
			}
		}
		out[k] = b.XorTree(terms)
	}
	return out
}

// GF16Inv inverts a GF(2^4) element (inv(0)=0) via its algebraic normal
// form, computed from the inverse table at build time. Shared monomial
// products keep this at ~10 AND gates.
func (b *B) GF16Inv(x Word) Word {
	if len(x) != 4 {
		panic("builder: GF16Inv operand must be 4 wires")
	}
	// monomial wires for each subset of variables (index = bitmask).
	mono := make([]Wire, 16)
	mono[0] = b.Const(true)
	for m := 1; m < 16; m++ {
		low := m & (-m)
		rest := m ^ low
		v := x[trailing(low)]
		if rest == 0 {
			mono[m] = v
		} else {
			mono[m] = b.AND(mono[rest], v)
		}
	}
	// ANF coefficients by Möbius transform of the truth table per bit.
	out := make(Word, 4)
	for k := 0; k < 4; k++ {
		var tt [16]byte
		for v := 0; v < 16; v++ {
			tt[v] = gf16Inv[v] >> uint(k) & 1
		}
		coef := tt
		for i := 0; i < 4; i++ {
			for v := 0; v < 16; v++ {
				if v>>uint(i)&1 == 1 {
					coef[v] ^= coef[v^(1<<uint(i))]
				}
			}
		}
		var terms []Wire
		for m := 0; m < 16; m++ {
			if coef[m] == 1 {
				terms = append(terms, mono[m])
			}
		}
		out[k] = b.XorTree(terms)
	}
	return out
}

func trailing(m int) int {
	n := 0
	for m>>uint(n)&1 == 0 {
		n++
	}
	return n
}

// GF256Inv inverts a GF(2^8) element in the AES field (inv(0)=0) via the
// tower decomposition; roughly 58 AND gates.
func (b *B) GF256Inv(x Word) Word {
	if len(x) != 8 {
		panic("builder: GF256Inv operand must be 8 wires")
	}
	t := b.linearMap(x, tower.toTow[:], 8)
	lo, hi := t[0:4], t[4:8] // x = hi·Y + lo

	// Δ = λ·hi² + hi·lo + lo²;  x⁻¹ = (hi·Δ⁻¹)·Y + (hi+lo)·Δ⁻¹
	lamHi2 := b.linearMap(hi, tower.sqLam[:], 4)
	sqCols := [4]byte{} // squaring in GF(16) is GF(2)-linear
	for i := 0; i < 4; i++ {
		tv := byte(1 << uint(i))
		sqCols[i] = gf16Mul(tv, tv)
	}
	lo2 := b.linearMap(lo, sqCols[:], 4)

	delta := b.XORWords(b.XORWords(lamHi2, b.GF16Mul(hi, lo)), lo2)
	dinv := b.GF16Inv(delta)

	outHi := b.GF16Mul(hi, dinv)
	outLo := b.GF16Mul(b.XORWords(hi, lo), dinv)

	res := make(Word, 8)
	copy(res[0:4], outLo)
	copy(res[4:8], outHi)
	return b.linearMap(res, tower.fromTow[:], 8)
}

// sboxAffineCols are the column images of the AES S-box affine matrix A
// (s = A·x ⊕ 0x63).
var sboxAffineCols = [8]byte{}

func init() {
	// s_i = x_i ^ x_{(i+4)%8} ^ x_{(i+5)%8} ^ x_{(i+6)%8} ^ x_{(i+7)%8},
	// so column j is 0x1f rotated left by j.
	for j := 0; j < 8; j++ {
		sboxAffineCols[j] = byte(0x1f<<uint(j) | 0x1f>>uint(8-j))
	}
}

// SBox applies the AES S-box to an 8-wire byte: tower inversion followed
// by the affine map (free) and the 0x63 constant XOR (free).
func (b *B) SBox(x Word) Word {
	inv := b.GF256Inv(x)
	aff := b.linearMap(inv, sboxAffineCols[:], 8)
	out := make(Word, 8)
	for i := 0; i < 8; i++ {
		if 0x63>>uint(i)&1 == 1 {
			out[i] = b.NOT(aff[i])
		} else {
			out[i] = aff[i]
		}
	}
	return out
}
