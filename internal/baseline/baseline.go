// Package baseline provides the two denominators of the paper's
// evaluation: the software garbled-circuits CPU baseline (EMP Toolkit on
// an i7-10700K in the paper; our own Go garbler measured on the host
// here) and native plaintext execution (Fig. 10).
//
// Because absolute CPU numbers depend on the host, the package measures
// per-gate garbling/evaluation costs once with a calibration circuit and
// extrapolates by gate counts — the same first-order model the paper's
// "gates/second" comparisons use. The paper's published reference
// numbers are kept alongside so EXPERIMENTS.md can report both.
package baseline

import (
	"time"

	"haac/internal/builder"
	"haac/internal/circuit"
	"haac/internal/gc"
	"haac/internal/label"
)

// CPUModel is a per-gate cost model for software GC on the host.
type CPUModel struct {
	// NsPerAND and NsPerXOR are per-gate costs in nanoseconds.
	NsPerAND float64
	NsPerXOR float64
	// Hasher names the garbling hash that was measured.
	Hasher string
	// Evaluator indicates whether evaluation (vs garbling) was measured.
	Evaluator bool
}

// GCTime extrapolates the software GC time for a circuit.
func (m CPUModel) GCTime(s circuit.Stats) time.Duration {
	ns := float64(s.ANDGates)*m.NsPerAND + float64(s.Gates-s.ANDGates)*m.NsPerXOR
	return time.Duration(ns) * time.Nanosecond
}

// GatesPerSecond is the aggregate gate throughput on a given mix.
func (m CPUModel) GatesPerSecond(s circuit.Stats) float64 {
	t := m.GCTime(s).Seconds()
	if t == 0 {
		return 0
	}
	return float64(s.Gates) / t
}

// calibrationCircuit builds a mixed AND/XOR circuit big enough to time
// reliably: a chain of 32-bit multiplies.
func calibrationCircuit() *circuit.Circuit {
	b := builder.New()
	x := b.GarblerInputs(32)
	y := b.EvaluatorInputs(32)
	acc := x
	for i := 0; i < 8; i++ {
		acc = b.Mul(acc, y)
	}
	b.OutputWord(acc)
	return b.MustBuild()
}

// MeasureCPU times the software garbler (and optionally evaluator) on
// the host and solves for per-gate costs. The XOR cost is obtained from
// a second, XOR-only circuit. The hasher's scratch pools are warmed
// first so one-time setup does not contaminate the per-gate numbers —
// with the pooled re-keyed and fixed-key hashers the measured loops are
// allocation-free, so the model prices hashing, not garbage collection.
func MeasureCPU(h gc.Hasher, evaluator bool) CPUModel {
	if h4, ok := h.(gc.Hasher4); ok {
		var l label.L
		h4.Hash4(l, l, l, l, 0, 0, 1, 1)
	}
	mixed := calibrationCircuit()
	stats := mixed.ComputeStats()

	xorOnly := func() *circuit.Circuit {
		b := builder.New()
		x := b.GarblerInputs(64)
		w := x
		for i := 0; i < 400; i++ {
			nw := make(builder.Word, 64)
			for j := range nw {
				nw[j] = b.XOR(w[j], w[(j+13)%64])
			}
			w = nw
		}
		b.OutputWord(w)
		return b.MustBuild()
	}()
	xorStats := xorOnly.ComputeStats()

	timeGarble := func(c *circuit.Circuit) time.Duration {
		src := label.NewSource(1)
		start := time.Now()
		if evaluator {
			g, err := gc.Garble(c, h, src)
			if err != nil {
				panic(err)
			}
			in, err := g.EncodeInputs(c, make([]bool, c.GarblerInputs), make([]bool, c.EvaluatorInputs))
			if err != nil {
				panic(err)
			}
			start = time.Now()
			if _, err := gc.Evaluate(c, h, in, g.Tables); err != nil {
				panic(err)
			}
		} else {
			if _, err := gc.Garble(c, h, src); err != nil {
				panic(err)
			}
		}
		return time.Since(start)
	}

	xorTime := timeGarble(xorOnly)
	nsXOR := float64(xorTime.Nanoseconds()) / float64(xorStats.Gates)

	mixedTime := timeGarble(mixed)
	nonAND := float64(stats.Gates - stats.ANDGates)
	nsAND := (float64(mixedTime.Nanoseconds()) - nonAND*nsXOR) / float64(stats.ANDGates)
	if nsAND < nsXOR {
		nsAND = nsXOR // timing noise floor on tiny hosts
	}
	return CPUModel{NsPerAND: nsAND, NsPerXOR: nsXOR, Hasher: h.Name(), Evaluator: evaluator}
}

// PaperCPU holds reference throughputs from the paper for reporting
// next to host-measured numbers: EMP with AES-NI garbles tens of
// millions of gates per second; the paper's GPU comparison (§6.6) quotes
// 75 M gates/s for a GPU and 8.7 B gates/s for HAAC.
type PaperCPU struct {
	// AvgGCSlowdownVsPlain is the paper's 198,000x average CPU GC
	// slowdown over plaintext across VIP-Bench (§1).
	AvgGCSlowdownVsPlain float64
	// HAACSpeedupDDR4 and HAACSpeedupHBM2 are the headline geomean
	// speedups (§6.5).
	HAACSpeedupDDR4 float64
	HAACSpeedupHBM2 float64
	// GarblerVsEvaluatorCPU is the §6.1 "garbling is 11.9% slower".
	GarblerVsEvaluatorCPU float64
}

// PaperNumbers are the published values used in EXPERIMENTS.md.
var PaperNumbers = PaperCPU{
	AvgGCSlowdownVsPlain:  198000,
	HAACSpeedupDDR4:       589,
	HAACSpeedupHBM2:       2627,
	GarblerVsEvaluatorCPU: 1.119,
}

// TimePlain measures fn's wall time, repeating short runs for stability,
// and returns the per-execution duration.
func TimePlain(fn func()) time.Duration {
	reps := 1
	for {
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		el := time.Since(start)
		if el > 10*time.Millisecond || reps >= 1<<20 {
			return el / time.Duration(reps)
		}
		reps *= 4
	}
}
