package baseline

import (
	"testing"
	"time"

	"haac/internal/gc"
	"haac/internal/workloads"
)

func TestMeasureCPUSane(t *testing.T) {
	m := MeasureCPU(gc.RekeyedHasher{}, false)
	if m.NsPerAND <= 0 || m.NsPerXOR <= 0 {
		t.Fatalf("non-positive per-gate costs: %+v", m)
	}
	if m.NsPerAND < m.NsPerXOR {
		t.Fatalf("AND (%v ns) cheaper than XOR (%v ns)", m.NsPerAND, m.NsPerXOR)
	}
	// An AND gate costs four AES plus two key expansions; it must be
	// at least 10x an XOR (two 128-bit xors).
	if m.NsPerAND < 10*m.NsPerXOR {
		t.Fatalf("AND/XOR ratio %.1f implausibly small", m.NsPerAND/m.NsPerXOR)
	}
}

func TestRekeyingCostsMore(t *testing.T) {
	// §2.1: re-keying increases Half-Gate cost (paper: +27.5% on their
	// CPU). Direction, not magnitude, is the assertion.
	rk := MeasureCPU(gc.RekeyedHasher{}, false)
	fk := MeasureCPU(gc.NewFixedKeyHasher([16]byte{1}), false)
	if rk.NsPerAND <= fk.NsPerAND {
		t.Skipf("rekeyed %.0f ns <= fixed %.0f ns: timing noise on this host", rk.NsPerAND, fk.NsPerAND)
	}
}

func TestGCTimeExtrapolation(t *testing.T) {
	m := CPUModel{NsPerAND: 100, NsPerXOR: 10}
	c := workloads.Hamming(256).Build()
	s := c.ComputeStats()
	want := time.Duration(float64(s.ANDGates)*100+float64(s.Gates-s.ANDGates)*10) * time.Nanosecond
	if got := m.GCTime(s); got != want {
		t.Fatalf("GCTime = %v, want %v", got, want)
	}
	if m.GatesPerSecond(s) <= 0 {
		t.Fatal("GatesPerSecond must be positive")
	}
}

func TestTimePlain(t *testing.T) {
	d := TimePlain(func() { time.Sleep(200 * time.Microsecond) })
	if d < 100*time.Microsecond || d > 20*time.Millisecond {
		t.Fatalf("TimePlain measured %v for a 200us sleep", d)
	}
}

func TestPaperNumbersPresent(t *testing.T) {
	if PaperNumbers.HAACSpeedupDDR4 != 589 || PaperNumbers.HAACSpeedupHBM2 != 2627 {
		t.Fatal("paper reference numbers drifted")
	}
}
