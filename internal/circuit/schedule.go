package circuit

// Schedule is the level decomposition of a circuit, the structure the
// paper exploits for parallelism: gates at the same dependence level have
// no data dependences between them (every producer of a level-k gate sits
// at a level strictly below k), so a level can be garbled or evaluated by
// any number of workers concurrently. The schedule also precomputes the
// table-stream watermarks that let a level-synchronous garbler and
// evaluator overlap garbling, transfer and evaluation while keeping the
// wire format (tables in gate order) unchanged.
type Schedule struct {
	// Free[k] lists the indices (into c.Gates) of the XOR/INV gates at
	// level k+1, in gate order.
	Free [][]int32
	// AND[k] lists the indices of the AND gates at level k+1, in gate
	// order.
	AND [][]int32
	// ANDIndex[i] is the table-stream index of gate i — the position of
	// its table in the gate-order table stream and the value of its hash
	// tweak — or -1 for free gates.
	ANDIndex []int32
	// NumAND is the total number of AND gates (tables).
	NumAND int
	// EmitReady[k] is the length of the longest table-stream prefix that
	// is fully garbled once levels 1..k+1 are complete: every table in
	// that prefix belongs to a gate at level <= k+1. A level-synchronous
	// garbler can flush exactly this prefix after finishing level k+1.
	EmitReady []int
	// NeedTables[k] is the number of leading stream tables the evaluator
	// must hold before level k+1 can be evaluated: 1 + the largest stream
	// index of any AND gate at level <= k+1 (0 if none).
	NeedTables []int
}

// NumLevels returns the number of levels in the schedule.
func (s *Schedule) NumLevels() int { return len(s.Free) }

// LevelSchedule builds the level decomposition from the dependence-graph
// leveling in Levels. It is O(gates) and allocates two int32 slices per
// level plus the per-gate index arrays.
func (c *Circuit) LevelSchedule() *Schedule {
	return c.levelScheduleFrom(c.Levels())
}

// levelScheduleFrom is LevelSchedule over a leveling the caller already
// holds, so passes that level the graph for their own use (the plan
// builder) do not re-level it for the schedule.
func (c *Circuit) levelScheduleFrom(levels []int) *Schedule {
	maxLevel := 0
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	s := &Schedule{
		Free:       make([][]int32, maxLevel),
		AND:        make([][]int32, maxLevel),
		ANDIndex:   make([]int32, len(c.Gates)),
		EmitReady:  make([]int, maxLevel),
		NeedTables: make([]int, maxLevel),
	}
	// Pre-size the per-level lists so appends don't reallocate.
	freeCount := make([]int32, maxLevel)
	andCount := make([]int32, maxLevel)
	for i := range c.Gates {
		if c.Gates[i].Op == AND {
			andCount[levels[i]-1]++
		} else {
			freeCount[levels[i]-1]++
		}
	}
	for k := 0; k < maxLevel; k++ {
		s.Free[k] = make([]int32, 0, freeCount[k])
		s.AND[k] = make([]int32, 0, andCount[k])
	}

	// tableLevel[t] is the level of the AND gate whose table occupies
	// stream position t.
	var tableLevel []int32
	for i := range c.Gates {
		k := levels[i] - 1
		if c.Gates[i].Op == AND {
			s.ANDIndex[i] = int32(s.NumAND)
			s.AND[k] = append(s.AND[k], int32(i))
			tableLevel = append(tableLevel, int32(levels[i]))
			s.NumAND++
		} else {
			s.ANDIndex[i] = -1
			s.Free[k] = append(s.Free[k], int32(i))
		}
	}

	// EmitReady: sweep the stream once; the ready prefix after level k+1
	// ends at the first table whose gate sits above that level.
	// prefixMax[t] = max level among tables 0..t is nondecreasing, so a
	// single pointer sweep per level suffices.
	ptr := 0
	prefixMax := int32(0)
	for k := 0; k < maxLevel; k++ {
		for ptr < s.NumAND {
			if tableLevel[ptr] > prefixMax {
				prefixMax = tableLevel[ptr]
			}
			if prefixMax > int32(k+1) {
				break
			}
			ptr++
		}
		s.EmitReady[k] = ptr
	}

	// NeedTables: highest stream index used by any level <= k+1.
	need := 0
	for k := 0; k < maxLevel; k++ {
		for _, gi := range s.AND[k] {
			if idx := int(s.ANDIndex[gi]) + 1; idx > need {
				need = idx
			}
		}
		s.NeedTables[k] = need
	}
	return s
}
