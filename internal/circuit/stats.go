package circuit

// Stats summarises the structural properties Table 2 of the paper
// reports for each benchmark.
type Stats struct {
	Levels      int     // depth of the gate dependence graph ("# Levels")
	Wires       int     // total wires ("# Wires")
	Gates       int     // total gates ("# Gates")
	ANDGates    int     // number of AND gates
	ANDPercent  float64 // "AND %"
	ILP         float64 // average gates per level ("ILP")
	MaxLevelILP int     // widest level, useful for sizing sweeps
}

// ComputeStats levels the dependence graph and derives Table 2's
// characteristics. Level of a gate = 1 + max(level of producers); primary
// inputs are level 0. ILP is gates/levels, the paper's average-parallelism
// measure.
func (c *Circuit) ComputeStats() Stats {
	levels := c.Levels()
	maxLevel := 0
	width := make(map[int]int)
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
		width[l]++
	}
	maxWidth := 0
	for _, w := range width {
		if w > maxWidth {
			maxWidth = w
		}
	}
	and, _, _ := c.CountOps()
	s := Stats{
		Levels:      maxLevel,
		Wires:       c.NumWires,
		Gates:       len(c.Gates),
		ANDGates:    and,
		MaxLevelILP: maxWidth,
	}
	if s.Gates > 0 {
		s.ANDPercent = 100 * float64(and) / float64(s.Gates)
	}
	if s.Levels > 0 {
		s.ILP = float64(s.Gates) / float64(s.Levels)
	}
	return s
}

// Levels returns, for each gate (indexed as in c.Gates), its level in the
// dependence graph: 1 for gates fed only by primary inputs, otherwise
// 1 + max(level of producing gates). This is the leveling the full-reorder
// compiler pass uses for its breadth-first schedule.
func (c *Circuit) Levels() []int {
	wireLevel := make([]int32, c.NumWires) // level of the producing gate; inputs are 0
	levels := make([]int, len(c.Gates))
	for i := range c.Gates {
		g := &c.Gates[i]
		l := wireLevel[g.A]
		if g.Op != INV {
			if lb := wireLevel[g.B]; lb > l {
				l = lb
			}
		}
		l++
		wireLevel[g.C] = l
		levels[i] = int(l)
	}
	return levels
}

// FanOut returns the number of consuming gates per wire. Output wires of
// the circuit get one extra use, reflecting that they must survive to the
// end of execution (the ESW pass treats them as live).
func (c *Circuit) FanOut() []int32 {
	fan := make([]int32, c.NumWires)
	for i := range c.Gates {
		g := &c.Gates[i]
		fan[g.A]++
		if g.Op != INV {
			fan[g.B]++
		}
	}
	for _, o := range c.Outputs {
		fan[o]++
	}
	return fan
}
