package circuit

import (
	"math/rand"
	"testing"
)

// planTestCircuit builds a small mixed circuit exercising constants,
// shared fan-out and all three ops.
func planTestCircuit(t *testing.T) *Circuit {
	t.Helper()
	// Wires: 2 garbler + 2 evaluator inputs, const0/const1 at 4,5.
	c := &Circuit{
		NumWires:        12,
		GarblerInputs:   2,
		EvaluatorInputs: 2,
		HasConst:        true,
		Const0:          4,
		Const1:          5,
		Gates: []Gate{
			{Op: AND, A: 0, B: 2, C: 6},
			{Op: XOR, A: 1, B: 3, C: 7},
			{Op: INV, A: 6, C: 8},
			{Op: AND, A: 6, B: 7, C: 9}, // wire 6 shared fan-out
			{Op: XOR, A: 8, B: 5, C: 10},
			{Op: AND, A: 9, B: 10, C: 11},
		},
		Outputs: []Wire{11, 7},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// checkPlan verifies the structural invariants renaming must preserve.
func checkPlan(t *testing.T, c *Circuit, p *Plan) {
	t.Helper()
	if p.Circuit != c {
		t.Fatal("plan does not reference its circuit")
	}
	if len(p.Gates) != len(c.Gates) {
		t.Fatalf("renamed gate count %d != %d", len(p.Gates), len(c.Gates))
	}
	if p.NumSlots != p.PeakLive {
		t.Fatalf("NumSlots %d != PeakLive %d (renamer should be exact)", p.NumSlots, p.PeakLive)
	}
	if p.NumSlots > c.NumWires {
		t.Fatalf("NumSlots %d exceeds NumWires %d", p.NumSlots, c.NumWires)
	}
	if p.NumSlots < c.NumInputs() {
		t.Fatalf("NumSlots %d below input count %d", p.NumSlots, c.NumInputs())
	}
	if len(p.OutputSlots) != len(c.Outputs) {
		t.Fatalf("OutputSlots length %d != %d outputs", len(p.OutputSlots), len(c.Outputs))
	}
	levels := c.Levels()
	// Per-level write/read disjointness: the level-boundary rule means no
	// gate's output slot is read or written by any other gate of the same
	// level — the no-intra-level-race guarantee the parallel engines need.
	writesAt := map[int]map[Wire]bool{}
	readsAt := map[int]map[Wire]bool{}
	for i := range p.Gates {
		g := &p.Gates[i]
		if int(g.A) >= p.NumSlots || int(g.B) >= p.NumSlots || int(g.C) >= p.NumSlots {
			t.Fatalf("gate %d references slot out of range [0,%d)", i, p.NumSlots)
		}
		if g.Op != c.Gates[i].Op {
			t.Fatalf("gate %d op changed by renaming", i)
		}
		k := levels[i]
		if writesAt[k] == nil {
			writesAt[k] = map[Wire]bool{}
			readsAt[k] = map[Wire]bool{}
		}
		if writesAt[k][g.C] {
			t.Fatalf("slot %d written twice at level %d", g.C, k)
		}
		writesAt[k][g.C] = true
		readsAt[k][g.A] = true
		if g.Op != INV {
			readsAt[k][g.B] = true
		}
	}
	for k, ws := range writesAt {
		for s := range ws {
			if readsAt[k][s] {
				t.Fatalf("slot %d both written and read at level %d", s, k)
			}
		}
	}
}

// evalPlanPlain executes the renamed gate list over a plaintext slot
// arena — proving the plan is a faithful renaming of the circuit. It
// runs in level order via the cached schedule, the only execution order
// the renaming contract supports.
func evalPlanPlain(c *Circuit, p *Plan, garbler, evaluator []bool) []bool {
	slots := make([]bool, p.NumSlots)
	copy(slots, garbler)
	copy(slots[c.GarblerInputs:], evaluator)
	if c.HasConst {
		slots[c.Const0] = false
		slots[c.Const1] = true
	}
	do := func(gi int32) {
		g := &p.Gates[gi]
		switch g.Op {
		case XOR:
			slots[g.C] = slots[g.A] != slots[g.B]
		case AND:
			slots[g.C] = slots[g.A] && slots[g.B]
		case INV:
			slots[g.C] = !slots[g.A]
		}
	}
	for k := 0; k < p.Schedule.NumLevels(); k++ {
		for _, gi := range p.Schedule.Free[k] {
			do(gi)
		}
		for _, gi := range p.Schedule.AND[k] {
			do(gi)
		}
	}
	out := make([]bool, len(p.OutputSlots))
	for i, s := range p.OutputSlots {
		out[i] = slots[s]
	}
	return out
}

func TestPlanInvariantsSmall(t *testing.T) {
	c := planTestCircuit(t)
	p, err := NewPlan(c)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, c, p)

	// All 16 input combinations match the dense functional model.
	for v := 0; v < 16; v++ {
		g := []bool{v&1 == 1, v&2 == 2}
		e := []bool{v&4 == 4, v&8 == 8}
		want, err := c.Eval(g, e)
		if err != nil {
			t.Fatal(err)
		}
		got := evalPlanPlain(c, p, g, e)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("v=%d: output %d = %v, want %v", v, i, got[i], want[i])
			}
		}
	}
}

// TestPlanRandomCircuits: randomized mixed circuits (shared fan-out,
// constants, random output subsets) keep every plan invariant and the
// plaintext semantics.
func TestPlanRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(20260726))
	for trial := 0; trial < 200; trial++ {
		c := RandomCircuit(rng)
		p, err := NewPlan(c)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkPlan(t, c, p)
		g := randomBits(rng, c.GarblerInputs)
		e := randomBits(rng, c.EvaluatorInputs)
		want, err := c.Eval(g, e)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := evalPlanPlain(c, p, g, e)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: output %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func randomBits(rng *rand.Rand, n int) []bool {
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = rng.Intn(2) == 1
	}
	return bits
}

func TestPlanCompaction(t *testing.T) {
	// A long chain of single-use wires must compact to O(1) extra slots:
	// each level frees the previous value one level later, so the chain
	// needs inputs + 2 slots, not one slot per wire.
	const n = 1000
	c := &Circuit{
		NumWires:        n + 2,
		GarblerInputs:   1,
		EvaluatorInputs: 1,
	}
	for i := 0; i < n; i++ {
		c.Gates = append(c.Gates, Gate{Op: XOR, A: Wire(i), B: Wire(i + 1), C: Wire(i + 2)})
	}
	c.Outputs = []Wire{Wire(n + 1)}
	p, err := NewPlan(c)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, c, p)
	if p.NumSlots > 6 {
		t.Fatalf("chain of %d wires renamed to %d slots; want O(1)", n, p.NumSlots)
	}
}

// TestPlanGapWires: Validate permits wires nothing writes or reads;
// those own no slot and must not poison the free list. Regression test
// for the renamer recycling input slot 0 via a gap wire's zero-valued
// slot entry.
func TestPlanGapWires(t *testing.T) {
	c := &Circuit{
		NumWires:        6, // wires 2 and 5 are gaps
		GarblerInputs:   1,
		EvaluatorInputs: 1,
		Gates: []Gate{
			{Op: AND, A: 0, B: 1, C: 3},
			{Op: AND, A: 0, B: 3, C: 4}, // input 0 still live at level 2
		},
		Outputs: []Wire{4},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(c)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, c, p)
	for va := 0; va < 2; va++ {
		for vb := 0; vb < 2; vb++ {
			g, e := []bool{va == 1}, []bool{vb == 1}
			want, err := c.Eval(g, e)
			if err != nil {
				t.Fatal(err)
			}
			got := evalPlanPlain(c, p, g, e)
			if got[0] != want[0] {
				t.Fatalf("a=%d b=%d: output %v, want %v (gap wire corrupted a live slot)",
					va, vb, got[0], want[0])
			}
		}
	}
}

func TestPlanRejectsBadCircuits(t *testing.T) {
	if _, err := NewPlan(&Circuit{NumWires: 0}); err == nil {
		t.Fatal("invalid circuit accepted")
	}
	c := &Circuit{
		NumWires:      3,
		GarblerInputs: 2,
		Gates:         []Gate{{Op: Op(9), A: 0, B: 1, C: 2}},
		Outputs:       []Wire{2},
	}
	if _, err := NewPlan(c); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestPlanBuildCounter(t *testing.T) {
	c := planTestCircuit(t)
	before := PlanBuilds()
	if _, err := NewPlan(c); err != nil {
		t.Fatal(err)
	}
	if got := PlanBuilds() - before; got != 1 {
		t.Fatalf("PlanBuilds advanced by %d, want 1", got)
	}
}
