package circuit

import (
	"crypto/sha256"
	"encoding/binary"
)

// Digest returns a canonical SHA-256 identity of the circuit: every
// field that affects garbled execution (wire counts, input split,
// constants, outputs, the exact gate list) feeds the hash in a fixed
// little-endian encoding. Two parties holding structurally identical
// circuits compute the same digest, so the serving layer's session
// handshake can reject a client whose circuit merely shares a name with
// the server's before any protocol byte is exchanged.
//
// The digest is versioned by its domain-separation prefix; changing the
// encoding must change the prefix.
func Digest(c *Circuit) [32]byte {
	h := sha256.New()
	h.Write([]byte("haac/circuit/v1\n"))

	// Fixed-size header: counts and the constant-wire block.
	var hdr [45]byte
	le := binary.LittleEndian
	le.PutUint64(hdr[0:], uint64(c.NumWires))
	le.PutUint64(hdr[8:], uint64(c.GarblerInputs))
	le.PutUint64(hdr[16:], uint64(c.EvaluatorInputs))
	if c.HasConst {
		hdr[24] = 1
	}
	le.PutUint32(hdr[25:], c.Const0)
	le.PutUint32(hdr[29:], c.Const1)
	le.PutUint32(hdr[33:], uint32(len(c.Outputs)))
	le.PutUint64(hdr[37:], uint64(len(c.Gates)))
	h.Write(hdr[:])

	// Outputs, then gates, streamed through one reused buffer. Each gate
	// encodes as op u8 | a u32 | b u32 | c u32; INV gates hash B as zero
	// because execution ignores it, so builders that leave B arbitrary
	// on INV still agree.
	var buf [13 * 256]byte
	n := 0
	flushAt := len(buf) - 13
	for _, w := range c.Outputs {
		le.PutUint32(buf[n:], w)
		n += 4
		if n > flushAt {
			h.Write(buf[:n])
			n = 0
		}
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		buf[n] = byte(g.Op)
		le.PutUint32(buf[n+1:], g.A)
		b := g.B
		if g.Op == INV {
			b = 0
		}
		le.PutUint32(buf[n+5:], b)
		le.PutUint32(buf[n+9:], g.C)
		n += 13
		if n > flushAt {
			h.Write(buf[:n])
			n = 0
		}
	}
	if n > 0 {
		h.Write(buf[:n])
	}

	var d [32]byte
	h.Sum(d[:0])
	return d
}
