// Package circuit defines the Boolean-circuit intermediate representation
// shared by the whole repository: the builder emits it, the garbling
// scheme (internal/gc) garbles it, the HAAC compiler assembles it into
// accelerator programs, and the plaintext evaluator provides the golden
// functional model every other component is tested against.
//
// A garbled-circuits program has no control flow: it is a straight-line
// list of gates over single-bit wires (the paper's §2.1). Gates are AND,
// XOR, and INV; INV is free under FreeXOR and is lowered by the HAAC
// assembler to an XOR with the constant-one wire, matching the two-opcode
// ISA of the accelerator.
package circuit

import (
	"errors"
	"fmt"
)

// Op is a gate operation.
type Op uint8

const (
	// XOR is a free gate under FreeXOR: no table, label XOR only.
	XOR Op = iota
	// AND is a half-gate: the expensive cryptographic operation.
	AND
	// INV is logical NOT; free, lowered to XOR-with-constant-one.
	INV
)

// String returns the Bristol-format mnemonic for the op.
func (o Op) String() string {
	switch o {
	case XOR:
		return "XOR"
	case AND:
		return "AND"
	case INV:
		return "INV"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Wire identifies a single-bit wire. Wires are dense indices in
// [0, NumWires); every wire is written exactly once (by a primary input,
// a constant, or one gate output).
type Wire = uint32

// Gate is one Boolean gate. For INV gates B is ignored.
type Gate struct {
	Op   Op
	A, B Wire // inputs
	C    Wire // output
}

// Circuit is a straight-line Boolean circuit.
//
// Wire numbering convention (enforced by Validate): wires
// [0, NumInputs()) are the primary inputs — garbler inputs first, then
// evaluator inputs, then up to two constant wires — and each gate g
// writes wire C >= NumInputs() exactly once. Gate outputs need not be
// in topological order of the slice, but the slice order must be a valid
// execution order (every gate's inputs are produced earlier).
type Circuit struct {
	// NumWires is the total number of wires.
	NumWires int

	// GarblerInputs and EvaluatorInputs count the two parties' input
	// bits. Garbler inputs occupy wires [0, GarblerInputs), evaluator
	// inputs [GarblerInputs, GarblerInputs+EvaluatorInputs).
	GarblerInputs   int
	EvaluatorInputs int

	// HasConst indicates the circuit uses public constant wires.
	// When set, Const0 and Const1 are input-like wires carrying public
	// false/true, numbered immediately after the evaluator inputs.
	HasConst       bool
	Const0, Const1 Wire

	// Outputs lists the primary-output wires in order.
	Outputs []Wire

	// Gates is the gate list in a valid execution order.
	Gates []Gate
}

// NumInputs returns the number of input-like wires (party inputs plus
// constant wires); these are the wires not produced by any gate.
func (c *Circuit) NumInputs() int {
	n := c.GarblerInputs + c.EvaluatorInputs
	if c.HasConst {
		n += 2
	}
	return n
}

// CountOps returns the number of AND, XOR and INV gates.
func (c *Circuit) CountOps() (and, xor, inv int) {
	for i := range c.Gates {
		switch c.Gates[i].Op {
		case AND:
			and++
		case XOR:
			xor++
		case INV:
			inv++
		}
	}
	return
}

// ANDFraction returns the fraction of gates that are AND gates, the
// quantity Table 2 reports as "AND %".
func (c *Circuit) ANDFraction() float64 {
	if len(c.Gates) == 0 {
		return 0
	}
	and, _, _ := c.CountOps()
	return float64(and) / float64(len(c.Gates))
}

// Validate checks structural well-formedness: wire indices in range,
// single assignment, execution order, outputs defined. It is O(wires).
func (c *Circuit) Validate() error {
	if c.NumWires <= 0 {
		return errors.New("circuit: NumWires must be positive")
	}
	nin := c.NumInputs()
	if nin > c.NumWires {
		return fmt.Errorf("circuit: %d input wires exceed %d total wires", nin, c.NumWires)
	}
	if c.HasConst {
		base := Wire(c.GarblerInputs + c.EvaluatorInputs)
		if c.Const0 != base || c.Const1 != base+1 {
			return fmt.Errorf("circuit: constant wires must be %d,%d; got %d,%d",
				base, base+1, c.Const0, c.Const1)
		}
	}
	written := make([]bool, c.NumWires)
	for w := 0; w < nin; w++ {
		written[w] = true
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if int(g.A) >= c.NumWires || (g.Op != INV && int(g.B) >= c.NumWires) || int(g.C) >= c.NumWires {
			return fmt.Errorf("circuit: gate %d references wire out of range", i)
		}
		if !written[g.A] {
			return fmt.Errorf("circuit: gate %d input A=%d used before definition", i, g.A)
		}
		if g.Op != INV && !written[g.B] {
			return fmt.Errorf("circuit: gate %d input B=%d used before definition", i, g.B)
		}
		if int(g.C) < nin {
			return fmt.Errorf("circuit: gate %d writes input wire %d", i, g.C)
		}
		if written[g.C] {
			return fmt.Errorf("circuit: wire %d written more than once (gate %d)", g.C, i)
		}
		written[g.C] = true
	}
	for _, o := range c.Outputs {
		if int(o) >= c.NumWires {
			return fmt.Errorf("circuit: output wire %d out of range", o)
		}
		if !written[o] {
			return fmt.Errorf("circuit: output wire %d never written", o)
		}
	}
	return nil
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := *c
	out.Outputs = append([]Wire(nil), c.Outputs...)
	out.Gates = append([]Gate(nil), c.Gates...)
	return &out
}
