package circuit

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// xorAndCircuit builds the little example from the paper's Fig. 4/5:
// wires 0,1,2 are inputs; gates produce 3..6.
func xorAndCircuit() *Circuit {
	return &Circuit{
		NumWires:        8,
		GarblerInputs:   2,
		EvaluatorInputs: 2,
		Gates: []Gate{
			{Op: XOR, A: 1, B: 2, C: 4},
			{Op: AND, A: 1, B: 2, C: 5},
			{Op: XOR, A: 0, B: 3, C: 6},
			{Op: AND, A: 3, B: 4, C: 7},
		},
		Outputs: []Wire{6, 7},
	}
}

func TestValidateOK(t *testing.T) {
	if err := xorAndCircuit().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := map[string]func(*Circuit){
		"out of range input":  func(c *Circuit) { c.Gates[0].A = 99 },
		"use before def":      func(c *Circuit) { c.Gates[0].A = 7 },
		"double write":        func(c *Circuit) { c.Gates[1].C = 4 },
		"write input wire":    func(c *Circuit) { c.Gates[0].C = 2 },
		"output out of range": func(c *Circuit) { c.Outputs[0] = 99 },
		"output never set":    func(c *Circuit) { c.NumWires = 9; c.Outputs[0] = 8 },
	}
	for name, mutate := range cases {
		c := xorAndCircuit()
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid circuit", name)
		}
	}
}

func TestEvalTruthTables(t *testing.T) {
	// Single gates, exhaustive over the 4 input combinations.
	mk := func(op Op) *Circuit {
		return &Circuit{
			NumWires: 3, GarblerInputs: 1, EvaluatorInputs: 1,
			Gates:   []Gate{{Op: op, A: 0, B: 1, C: 2}},
			Outputs: []Wire{2},
		}
	}
	for _, a := range []bool{false, true} {
		for _, b := range []bool{false, true} {
			outXor, err := mk(XOR).Eval([]bool{a}, []bool{b})
			if err != nil {
				t.Fatal(err)
			}
			if outXor[0] != (a != b) {
				t.Fatalf("XOR(%v,%v) = %v", a, b, outXor[0])
			}
			outAnd, _ := mk(AND).Eval([]bool{a}, []bool{b})
			if outAnd[0] != (a && b) {
				t.Fatalf("AND(%v,%v) = %v", a, b, outAnd[0])
			}
		}
		inv := &Circuit{NumWires: 2, GarblerInputs: 1,
			Gates: []Gate{{Op: INV, A: 0, C: 1}}, Outputs: []Wire{1}}
		out, _ := inv.Eval([]bool{a}, nil)
		if out[0] != !a {
			t.Fatalf("INV(%v) = %v", a, out[0])
		}
	}
}

func TestEvalConstWires(t *testing.T) {
	c := &Circuit{
		NumWires: 5, GarblerInputs: 1, EvaluatorInputs: 0,
		HasConst: true, Const0: 1, Const1: 2,
		Gates: []Gate{
			{Op: XOR, A: 0, B: 2, C: 3}, // NOT x via const1
			{Op: AND, A: 0, B: 1, C: 4}, // x & 0 == 0
		},
		Outputs: []Wire{3, 4},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	out, err := c.Eval([]bool{true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != false || out[1] != false {
		t.Fatalf("const wires wrong: %v", out)
	}
}

func TestEvalInputLengthChecked(t *testing.T) {
	c := xorAndCircuit()
	if _, err := c.Eval([]bool{true}, []bool{true, true}); err == nil {
		t.Fatal("short garbler input accepted")
	}
	if _, err := c.Eval([]bool{true, true}, nil); err == nil {
		t.Fatal("short evaluator input accepted")
	}
}

func TestStats(t *testing.T) {
	c := xorAndCircuit()
	s := c.ComputeStats()
	if s.Gates != 4 || s.ANDGates != 2 {
		t.Fatalf("gates=%d and=%d", s.Gates, s.ANDGates)
	}
	if s.Levels != 2 {
		t.Fatalf("levels=%d, want 2", s.Levels)
	}
	if s.ILP != 2 {
		t.Fatalf("ILP=%v, want 2", s.ILP)
	}
	if s.ANDPercent != 50 {
		t.Fatalf("AND%%=%v", s.ANDPercent)
	}
}

func TestLevelsMonotone(t *testing.T) {
	c := xorAndCircuit()
	levels := c.Levels()
	// A consumer's level must exceed its producers'.
	prodLevel := map[Wire]int{}
	for i, g := range c.Gates {
		if la, ok := prodLevel[g.A]; ok && levels[i] <= la {
			t.Fatal("level not monotone")
		}
		prodLevel[g.C] = levels[i]
	}
}

func TestFanOut(t *testing.T) {
	c := xorAndCircuit()
	fan := c.FanOut()
	if fan[1] != 2 || fan[2] != 2 {
		t.Fatalf("input fanout wrong: %v", fan)
	}
	if fan[6] != 1 || fan[7] != 1 { // outputs get +1
		t.Fatalf("output fanout wrong: %v", fan)
	}
}

func TestBristolRoundTrip(t *testing.T) {
	// Build a circuit whose outputs are the last wires (Bristol layout).
	c := &Circuit{
		NumWires: 7, GarblerInputs: 2, EvaluatorInputs: 1,
		Gates: []Gate{
			{Op: XOR, A: 0, B: 1, C: 3},
			{Op: INV, A: 2, C: 4},
			{Op: AND, A: 3, B: 4, C: 5},
			{Op: XOR, A: 5, B: 0, C: 6},
		},
		Outputs: []Wire{5, 6},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBristol(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBristol(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumWires != c.NumWires || len(got.Gates) != len(c.Gates) {
		t.Fatalf("round trip changed shape")
	}
	// Functional equivalence on all 8 input combinations.
	for v := 0; v < 8; v++ {
		g := []bool{v&1 == 1, v&2 == 2}
		e := []bool{v&4 == 4}
		a, _ := c.Eval(g, e)
		bb, _ := got.Eval(g, e)
		for i := range a {
			if a[i] != bb[i] {
				t.Fatalf("round trip changed semantics at input %d", v)
			}
		}
	}
}

func TestBristolRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                            // empty
		"1\n1 1 1\n",                  // short header
		"1 3\n1 0 1\n2 1 0 1 2 NOR\n", // unknown gate
		"2 3\n1 0 1\n2 1 0 1 2 AND\n", // missing gate
		"1 3\n1 0 1\n2 1 0 9 2 AND\n", // wire out of range
	}
	for i, s := range bad {
		if _, err := ReadBristol(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: malformed netlist accepted", i)
		}
	}
}

func TestBristolOutputsMustBeLast(t *testing.T) {
	c := xorAndCircuit() // outputs 6,7 are last wires of 8 -> ok
	var buf bytes.Buffer
	if err := WriteBristol(&buf, c); err != nil {
		t.Fatal(err)
	}
	c.Outputs = []Wire{4, 5}
	if err := WriteBristol(&buf, c); err == nil {
		t.Fatal("non-final outputs accepted")
	}
}

func TestPackHelpers(t *testing.T) {
	f := func(v uint32) bool {
		return BoolsToUint(UintToBools(uint64(v), 32)) == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := xorAndCircuit()
	d := c.Clone()
	d.Gates[0].Op = AND
	d.Outputs[0] = 0
	if c.Gates[0].Op != XOR || c.Outputs[0] != 6 {
		t.Fatal("Clone shares memory with original")
	}
}

func TestEvalUintWidths(t *testing.T) {
	// 4-bit adder via explicit gates is overkill; use a tiny identity.
	c := &Circuit{
		NumWires: 8, GarblerInputs: 4,
		Gates: []Gate{
			{Op: XOR, A: 0, B: 1, C: 4},
			{Op: XOR, A: 1, B: 2, C: 5},
			{Op: XOR, A: 2, B: 3, C: 6},
			{Op: XOR, A: 3, B: 0, C: 7},
		},
		Outputs: []Wire{4, 5, 6, 7},
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		v := uint64(rng.Intn(16))
		out, err := c.EvalUint([]uint64{v}, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		want := (v>>0&1 ^ v>>1&1) | (v>>1&1^v>>2&1)<<1 | (v>>2&1^v>>3&1)<<2 | (v>>3&1^v>>0&1)<<3
		if out[0] != want {
			t.Fatalf("EvalUint = %d, want %d", out[0], want)
		}
	}
}

func TestMerge(t *testing.T) {
	a := xorAndCircuit()
	b := &Circuit{
		NumWires: 4, GarblerInputs: 1, EvaluatorInputs: 1,
		HasConst: false,
		Gates: []Gate{
			{Op: AND, A: 0, B: 1, C: 2},
			{Op: INV, A: 2, C: 3},
		},
		Outputs: []Wire{3},
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.GarblerInputs != 3 || m.EvaluatorInputs != 3 {
		t.Fatalf("merged inputs %d/%d", m.GarblerInputs, m.EvaluatorInputs)
	}
	if len(m.Outputs) != 3 {
		t.Fatalf("merged outputs %d", len(m.Outputs))
	}
	// Exhaustive check: merged semantics == concatenated sub-circuits.
	for v := 0; v < 64; v++ {
		g := []bool{v&1 == 1, v&2 == 2, v&4 == 4}
		e := []bool{v&8 == 8, v&16 == 16, v&32 == 32}
		wantA, _ := a.Eval(g[:2], e[:2])
		wantB, _ := b.Eval(g[2:], e[2:])
		got, err := m.Eval(g, e)
		if err != nil {
			t.Fatal(err)
		}
		want := append(append([]bool{}, wantA...), wantB...)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("v=%d: merged output %d differs", v, i)
			}
		}
	}
}

func TestMergeSharedConstants(t *testing.T) {
	mk := func() *Circuit {
		return &Circuit{
			NumWires: 4, GarblerInputs: 1,
			HasConst: true, Const0: 1, Const1: 2,
			Gates:   []Gate{{Op: XOR, A: 0, B: 2, C: 3}},
			Outputs: []Wire{3},
		}
	}
	m, err := Merge(mk(), mk())
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasConst {
		t.Fatal("merged circuit lost constants")
	}
	got, err := m.Eval([]bool{true, false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != false || got[1] != true {
		t.Fatalf("merged const semantics wrong: %v", got)
	}
}

func TestMergeRejectsInvalid(t *testing.T) {
	bad := &Circuit{NumWires: 2, GarblerInputs: 1,
		Gates:   []Gate{{Op: AND, A: 9, B: 0, C: 1}},
		Outputs: []Wire{1}}
	if _, err := Merge(bad); err == nil {
		t.Fatal("invalid input accepted")
	}
	if _, err := Merge(); err == nil {
		t.Fatal("empty merge accepted")
	}
}
