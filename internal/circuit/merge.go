package circuit

import "fmt"

// Merge combines independent circuits into one: the batch-execution
// primitive behind multi-instance workloads (N gradient-descent
// problems, N inference requests) and the multi-core experiments.
// Inputs are concatenated per party in argument order; outputs likewise.
// Constant wires, if any circuit uses them, are shared.
func Merge(cs ...*Circuit) (*Circuit, error) {
	if len(cs) == 0 {
		return nil, fmt.Errorf("circuit: Merge needs at least one circuit")
	}
	out := &Circuit{}
	needConst := false
	var totalGates, totalWires int
	for i, c := range cs {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("circuit: Merge input %d: %w", i, err)
		}
		out.GarblerInputs += c.GarblerInputs
		out.EvaluatorInputs += c.EvaluatorInputs
		if c.HasConst {
			needConst = true
		}
		totalGates += len(c.Gates)
		totalWires += c.NumWires
	}
	base := Wire(out.GarblerInputs + out.EvaluatorInputs)
	if needConst {
		out.HasConst = true
		out.Const0 = base
		out.Const1 = base + 1
		base += 2
	}

	out.Gates = make([]Gate, 0, totalGates)
	gOff, eOff := Wire(0), Wire(out.GarblerInputs)
	next := base
	for _, c := range cs {
		remap := make([]Wire, c.NumWires)
		for w := 0; w < c.GarblerInputs; w++ {
			remap[w] = gOff + Wire(w)
		}
		for w := 0; w < c.EvaluatorInputs; w++ {
			remap[c.GarblerInputs+w] = eOff + Wire(w)
		}
		if c.HasConst {
			remap[c.Const0] = out.Const0
			remap[c.Const1] = out.Const1
		}
		for i := range c.Gates {
			g := c.Gates[i]
			remap[g.C] = next
			ng := Gate{Op: g.Op, A: remap[g.A], C: next}
			if g.Op != INV {
				ng.B = remap[g.B]
			}
			out.Gates = append(out.Gates, ng)
			next++
		}
		for _, o := range c.Outputs {
			out.Outputs = append(out.Outputs, remap[o])
		}
		gOff += Wire(c.GarblerInputs)
		eOff += Wire(c.EvaluatorInputs)
	}
	out.NumWires = int(next)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("circuit: Merge produced invalid circuit: %w", err)
	}
	return out, nil
}
