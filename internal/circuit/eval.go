package circuit

import "fmt"

// Eval executes the circuit on plaintext bits and returns the output
// bits. garbler and evaluator are the two parties' input bits in wire
// order. Eval is the golden functional model: garbled execution, the
// HAAC functional executor, and every compiler pass are tested against
// it.
func (c *Circuit) Eval(garbler, evaluator []bool) ([]bool, error) {
	if len(garbler) != c.GarblerInputs {
		return nil, fmt.Errorf("circuit: got %d garbler input bits, want %d", len(garbler), c.GarblerInputs)
	}
	if len(evaluator) != c.EvaluatorInputs {
		return nil, fmt.Errorf("circuit: got %d evaluator input bits, want %d", len(evaluator), c.EvaluatorInputs)
	}
	vals := make([]bool, c.NumWires)
	copy(vals, garbler)
	copy(vals[c.GarblerInputs:], evaluator)
	if c.HasConst {
		vals[c.Const0] = false
		vals[c.Const1] = true
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		switch g.Op {
		case XOR:
			vals[g.C] = vals[g.A] != vals[g.B]
		case AND:
			vals[g.C] = vals[g.A] && vals[g.B]
		case INV:
			vals[g.C] = !vals[g.A]
		default:
			return nil, fmt.Errorf("circuit: gate %d has unknown op %d", i, g.Op)
		}
	}
	out := make([]bool, len(c.Outputs))
	for i, w := range c.Outputs {
		out[i] = vals[w]
	}
	return out, nil
}

// EvalUint is a convenience for word-oriented tests: it packs the
// little-endian input words into bits, evaluates, and repacks the outputs
// as a little-endian unsigned integer per output word of the given width.
func (c *Circuit) EvalUint(garbler, evaluator []uint64, width int) ([]uint64, error) {
	g := packBits(garbler, width)
	e := packBits(evaluator, width)
	bits, err := c.Eval(g, e)
	if err != nil {
		return nil, err
	}
	if len(bits)%width != 0 {
		return nil, fmt.Errorf("circuit: %d output bits not a multiple of width %d", len(bits), width)
	}
	out := make([]uint64, len(bits)/width)
	for i := range out {
		var v uint64
		for b := 0; b < width; b++ {
			if bits[i*width+b] {
				v |= 1 << uint(b)
			}
		}
		out[i] = v
	}
	return out, nil
}

func packBits(words []uint64, width int) []bool {
	bits := make([]bool, 0, len(words)*width)
	for _, w := range words {
		for b := 0; b < width; b++ {
			bits = append(bits, w>>uint(b)&1 == 1)
		}
	}
	return bits
}

// BoolsToUint packs little-endian bits into a uint64.
func BoolsToUint(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

// UintToBools unpacks v into width little-endian bits.
func UintToBools(v uint64, width int) []bool {
	bits := make([]bool, width)
	for i := range bits {
		bits[i] = v>>uint(i)&1 == 1
	}
	return bits
}
