package circuit

import "testing"

// buildTestCircuit returns a small hand-made circuit exercising all ops:
//
//	inputs: g0 g1 | e0 e1          (wires 0..3)
//	w4 = g0 XOR e0   (level 1)
//	w5 = g1 AND e1   (level 1)
//	w6 = NOT w4      (level 2)
//	w7 = w5 AND w6   (level 3)
//	w8 = w4 XOR w5   (level 2)
//	outputs: w7, w8
func buildTestCircuit() *Circuit {
	return &Circuit{
		NumWires:        9,
		GarblerInputs:   2,
		EvaluatorInputs: 2,
		Outputs:         []Wire{7, 8},
		Gates: []Gate{
			{Op: XOR, A: 0, B: 2, C: 4},
			{Op: AND, A: 1, B: 3, C: 5},
			{Op: INV, A: 4, C: 6},
			{Op: AND, A: 5, B: 6, C: 7},
			{Op: XOR, A: 4, B: 5, C: 8},
		},
	}
}

func TestLevelScheduleStructure(t *testing.T) {
	c := buildTestCircuit()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s := c.LevelSchedule()
	if s.NumLevels() != 3 {
		t.Fatalf("levels = %d, want 3", s.NumLevels())
	}
	if s.NumAND != 2 {
		t.Fatalf("NumAND = %d, want 2", s.NumAND)
	}
	wantFree := [][]int32{{0}, {2, 4}, {}}
	wantAND := [][]int32{{1}, {}, {3}}
	for k := 0; k < 3; k++ {
		if len(s.Free[k]) != len(wantFree[k]) {
			t.Errorf("level %d: free %v, want %v", k+1, s.Free[k], wantFree[k])
			continue
		}
		for i := range wantFree[k] {
			if s.Free[k][i] != wantFree[k][i] {
				t.Errorf("level %d: free %v, want %v", k+1, s.Free[k], wantFree[k])
			}
		}
		if len(s.AND[k]) != len(wantAND[k]) {
			t.Errorf("level %d: and %v, want %v", k+1, s.AND[k], wantAND[k])
			continue
		}
		for i := range wantAND[k] {
			if s.AND[k][i] != wantAND[k][i] {
				t.Errorf("level %d: and %v, want %v", k+1, s.AND[k], wantAND[k])
			}
		}
	}
	// Gate 1 is table 0, gate 3 is table 1; free gates have index -1.
	wantIdx := []int32{-1, 0, -1, 1, -1}
	for i, w := range wantIdx {
		if s.ANDIndex[i] != w {
			t.Errorf("ANDIndex[%d] = %d, want %d", i, s.ANDIndex[i], w)
		}
	}
	// After level 1 the stream prefix [0,1) is ready; table 1 is level 3.
	wantEmit := []int{1, 1, 2}
	wantNeed := []int{1, 1, 2}
	for k := range wantEmit {
		if s.EmitReady[k] != wantEmit[k] {
			t.Errorf("EmitReady[%d] = %d, want %d", k, s.EmitReady[k], wantEmit[k])
		}
		if s.NeedTables[k] != wantNeed[k] {
			t.Errorf("NeedTables[%d] = %d, want %d", k, s.NeedTables[k], wantNeed[k])
		}
	}
}

// scheduleInvariants checks the properties every schedule must satisfy,
// on any circuit: the partition is complete and in gate order, levels
// respect dependences, watermarks are monotone and consistent.
func scheduleInvariants(t *testing.T, c *Circuit) {
	t.Helper()
	s := c.LevelSchedule()
	levels := c.Levels()

	seen := make([]bool, len(c.Gates))
	and, _, _ := c.CountOps()
	if s.NumAND != and {
		t.Fatalf("NumAND = %d, CountOps says %d", s.NumAND, and)
	}
	nextStream := int32(0)
	total := 0
	for k := 0; k < s.NumLevels(); k++ {
		for _, list := range [][]int32{s.Free[k], s.AND[k]} {
			prev := int32(-1)
			for _, gi := range list {
				if gi <= prev {
					t.Fatalf("level %d not in gate order", k+1)
				}
				prev = gi
				if levels[gi] != k+1 {
					t.Fatalf("gate %d in level %d but Levels says %d", gi, k+1, levels[gi])
				}
				if seen[gi] {
					t.Fatalf("gate %d scheduled twice", gi)
				}
				seen[gi] = true
				total++
			}
		}
	}
	if total != len(c.Gates) {
		t.Fatalf("schedule covers %d of %d gates", total, len(c.Gates))
	}
	// Stream indices are assigned in gate order.
	for i := range c.Gates {
		if c.Gates[i].Op == AND {
			if s.ANDIndex[i] != nextStream {
				t.Fatalf("gate %d stream index %d, want %d", i, s.ANDIndex[i], nextStream)
			}
			nextStream++
		} else if s.ANDIndex[i] != -1 {
			t.Fatalf("free gate %d has stream index %d", i, s.ANDIndex[i])
		}
	}
	// Watermarks: monotone, bounded, final values cover the full stream,
	// and EmitReady never exceeds what the evaluator could need later.
	prevEmit, prevNeed := 0, 0
	for k := 0; k < s.NumLevels(); k++ {
		if s.EmitReady[k] < prevEmit || s.NeedTables[k] < prevNeed {
			t.Fatalf("watermarks not monotone at level %d", k+1)
		}
		if s.EmitReady[k] > s.NumAND || s.NeedTables[k] > s.NumAND {
			t.Fatalf("watermark out of range at level %d", k+1)
		}
		// Everything a level needs must eventually be emitted by the end.
		if s.EmitReady[k] > s.NumAND {
			t.Fatalf("EmitReady[%d] overruns stream", k)
		}
		prevEmit, prevNeed = s.EmitReady[k], s.NeedTables[k]
	}
	if n := s.NumLevels(); n > 0 {
		if s.EmitReady[n-1] != s.NumAND {
			t.Fatalf("final EmitReady = %d, want %d", s.EmitReady[n-1], s.NumAND)
		}
		if s.NumAND > 0 && s.NeedTables[n-1] != s.NumAND {
			t.Fatalf("final NeedTables = %d, want %d", s.NeedTables[n-1], s.NumAND)
		}
	}
}

func TestLevelScheduleInvariants(t *testing.T) {
	scheduleInvariants(t, buildTestCircuit())
}

func TestLevelScheduleEmptyAndFreeOnly(t *testing.T) {
	// No gates at all.
	c := &Circuit{NumWires: 2, GarblerInputs: 1, EvaluatorInputs: 1, Outputs: []Wire{0}}
	s := c.LevelSchedule()
	if s.NumLevels() != 0 || s.NumAND != 0 {
		t.Fatalf("empty circuit: levels=%d numAND=%d", s.NumLevels(), s.NumAND)
	}
	// XOR-only circuit: one level, no tables.
	c = &Circuit{
		NumWires: 3, GarblerInputs: 1, EvaluatorInputs: 1,
		Outputs: []Wire{2},
		Gates:   []Gate{{Op: XOR, A: 0, B: 1, C: 2}},
	}
	s = c.LevelSchedule()
	if s.NumAND != 0 || s.NumLevels() != 1 {
		t.Fatalf("xor-only: levels=%d numAND=%d", s.NumLevels(), s.NumAND)
	}
	if s.EmitReady[0] != 0 || s.NeedTables[0] != 0 {
		t.Fatalf("xor-only watermarks: emit=%d need=%d", s.EmitReady[0], s.NeedTables[0])
	}
	scheduleInvariants(t, c)
}
