package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Bristol format support. The paper's toolchain (Fig. 5) goes
// C++ → EMP → Bristol netlist → HAAC assembler; this file implements the
// Bristol side so externally produced netlists can be fed to the
// compiler, and so our builder's circuits can be exported.
//
// The classic ("old") Bristol format is:
//
//	<ngates> <nwires>
//	<n_garbler_inputs> <n_evaluator_inputs> <n_outputs>
//	2 1 <a> <b> <c> AND
//	2 1 <a> <b> <c> XOR
//	1 1 <a> <c> INV
//
// Output wires are, by convention, the last n_outputs wires of the
// circuit. Constant wires are not part of the format; WriteBristol
// refuses circuits that use them unless they were lowered first.

// WriteBristol writes c in classic Bristol format. The circuit's outputs
// must be the last len(Outputs) wires, which holds for builder-produced
// circuits after ExportBristol relayout; otherwise an error is returned.
func WriteBristol(w io.Writer, c *Circuit) error {
	if c.HasConst {
		return fmt.Errorf("bristol: circuit uses constant wires; lower them before export")
	}
	for i, o := range c.Outputs {
		want := Wire(c.NumWires - len(c.Outputs) + i)
		if o != want {
			return fmt.Errorf("bristol: output %d is wire %d, want %d (outputs must be the last wires)", i, o, want)
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", len(c.Gates), c.NumWires)
	fmt.Fprintf(bw, "%d %d %d\n", c.GarblerInputs, c.EvaluatorInputs, len(c.Outputs))
	for i := range c.Gates {
		g := &c.Gates[i]
		switch g.Op {
		case INV:
			fmt.Fprintf(bw, "1 1 %d %d INV\n", g.A, g.C)
		default:
			fmt.Fprintf(bw, "2 1 %d %d %d %s\n", g.A, g.B, g.C, g.Op)
		}
	}
	return bw.Flush()
}

// ReadBristol parses a classic Bristol netlist.
func ReadBristol(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var ngates, nwires int
	if err := scanLine(sc, "header", &ngates, &nwires); err != nil {
		return nil, err
	}
	var nin1, nin2, nout int
	if err := scanLine(sc, "io header", &nin1, &nin2, &nout); err != nil {
		return nil, err
	}
	c := &Circuit{
		NumWires:        nwires,
		GarblerInputs:   nin1,
		EvaluatorInputs: nin2,
		Gates:           make([]Gate, 0, ngates),
	}
	for len(c.Gates) < ngates {
		if !sc.Scan() {
			return nil, fmt.Errorf("bristol: expected %d gates, got %d", ngates, len(c.Gates))
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		var g Gate
		switch f[len(f)-1] {
		case "AND", "XOR":
			if len(f) != 6 {
				return nil, fmt.Errorf("bristol: malformed 2-input gate %q", line)
			}
			var a, b, cc int
			if _, err := fmt.Sscan(f[2], &a); err != nil {
				return nil, fmt.Errorf("bristol: bad wire in %q: %w", line, err)
			}
			if _, err := fmt.Sscan(f[3], &b); err != nil {
				return nil, fmt.Errorf("bristol: bad wire in %q: %w", line, err)
			}
			if _, err := fmt.Sscan(f[4], &cc); err != nil {
				return nil, fmt.Errorf("bristol: bad wire in %q: %w", line, err)
			}
			g = Gate{A: Wire(a), B: Wire(b), C: Wire(cc)}
			if f[len(f)-1] == "AND" {
				g.Op = AND
			} else {
				g.Op = XOR
			}
		case "INV", "NOT":
			if len(f) != 5 {
				return nil, fmt.Errorf("bristol: malformed INV gate %q", line)
			}
			var a, cc int
			if _, err := fmt.Sscan(f[2], &a); err != nil {
				return nil, fmt.Errorf("bristol: bad wire in %q: %w", line, err)
			}
			if _, err := fmt.Sscan(f[3], &cc); err != nil {
				return nil, fmt.Errorf("bristol: bad wire in %q: %w", line, err)
			}
			g = Gate{Op: INV, A: Wire(a), C: Wire(cc)}
		default:
			return nil, fmt.Errorf("bristol: unsupported gate %q", line)
		}
		c.Gates = append(c.Gates, g)
	}
	c.Outputs = make([]Wire, nout)
	for i := range c.Outputs {
		c.Outputs[i] = Wire(nwires - nout + i)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bristol: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("bristol: parsed circuit invalid: %w", err)
	}
	return c, nil
}

func scanLine(sc *bufio.Scanner, what string, dst ...*int) error {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		args := make([]any, len(dst))
		for i := range dst {
			args[i] = dst[i]
		}
		if n, err := fmt.Sscan(line, args...); err != nil || n != len(dst) {
			return fmt.Errorf("bristol: malformed %s line %q", what, line)
		}
		return nil
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("bristol: %w", err)
	}
	return fmt.Errorf("bristol: missing %s line", what)
}
