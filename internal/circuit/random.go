package circuit

import "math/rand"

// RandomCircuit generates a small random well-formed circuit: mixed
// AND/XOR/INV gates, optional constant wires, shared fan-out (several
// gates may read one wire) and a random output subset. It exists for
// property tests — dense vs planned execution, compiler passes, fuzzing
// — where hand-built shapes would miss corner cases. The result always
// passes Validate.
func RandomCircuit(rng *rand.Rand) *Circuit {
	c := &Circuit{
		GarblerInputs:   1 + rng.Intn(6),
		EvaluatorInputs: rng.Intn(6),
		HasConst:        rng.Intn(2) == 1,
	}
	nin := c.GarblerInputs + c.EvaluatorInputs
	if c.HasConst {
		c.Const0 = Wire(nin)
		c.Const1 = Wire(nin + 1)
		nin += 2
	}
	nGates := 5 + rng.Intn(120)
	// Sometimes leave trailing gap wires — indices nothing writes or
	// reads, which Validate permits and the plan renamer must skip.
	c.NumWires = nin + nGates + rng.Intn(3)
	c.Gates = make([]Gate, nGates)
	for i := range c.Gates {
		g := Gate{C: Wire(nin + i)}
		g.A = Wire(rng.Intn(nin + i))
		g.B = Wire(rng.Intn(nin + i))
		switch rng.Intn(4) {
		case 0:
			g.Op = AND
		case 1, 2:
			g.Op = XOR
		case 3:
			g.Op = INV
		}
		c.Gates[i] = g
	}
	nOut := 1 + rng.Intn(8)
	c.Outputs = make([]Wire, nOut)
	for i := range c.Outputs {
		c.Outputs[i] = Wire(rng.Intn(nin + nGates)) // only written wires
	}
	return c
}
