package circuit

import (
	"math/rand"
	"testing"
)

func TestDigestStableAndSensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := RandomCircuit(rng)
	d1 := Digest(c)
	d2 := Digest(c.Clone())
	if d1 != d2 {
		t.Fatal("digest differs between a circuit and its clone")
	}

	// Any structural change must move the digest.
	mutations := []func(m *Circuit){
		func(m *Circuit) { m.NumWires++ },
		func(m *Circuit) { m.GarblerInputs, m.EvaluatorInputs = m.GarblerInputs+1, m.EvaluatorInputs-1 },
		func(m *Circuit) { m.Outputs[0] ^= 1 },
		func(m *Circuit) { m.Outputs = m.Outputs[:len(m.Outputs)-1] },
		func(m *Circuit) { m.Gates = m.Gates[:len(m.Gates)-1] },
		func(m *Circuit) { m.Gates[len(m.Gates)-1].A ^= 1 },
		func(m *Circuit) {
			g := &m.Gates[len(m.Gates)-1]
			if g.Op == AND {
				g.Op = XOR
			} else {
				g.Op = AND
			}
		},
	}
	for i, mut := range mutations {
		m := c.Clone()
		mut(m)
		if Digest(m) == d1 {
			t.Errorf("mutation %d did not change the digest", i)
		}
	}
}

func TestDigestIgnoresINVSecondInput(t *testing.T) {
	// INV gates ignore B at execution time, so the digest must not
	// depend on whatever the builder left there.
	mk := func(b Wire) *Circuit {
		return &Circuit{
			NumWires:      3,
			GarblerInputs: 2,
			Outputs:       []Wire{2},
			Gates:         []Gate{{Op: INV, A: 0, B: b, C: 2}},
		}
	}
	if Digest(mk(0)) != Digest(mk(1)) {
		t.Fatal("digest depends on the ignored B input of an INV gate")
	}
}

func TestDigestDistinguishesRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := map[[32]byte]bool{}
	for i := 0; i < 50; i++ {
		d := Digest(RandomCircuit(rng))
		if seen[d] {
			t.Fatalf("digest collision at circuit %d", i)
		}
		seen[d] = true
	}
}
