package circuit

import (
	"fmt"
	"sync/atomic"
)

// Plan is a precompiled execution plan for a circuit: the gate list
// renamed from the write-once wire space onto a compact physical slot
// space of width ≈ peak-live wires, together with the cached level
// schedule. It is the software analogue of the paper's renaming pass
// (§3.1.4): wires are mapped into a small dense space and dead wires
// are evicted so the working set of a run is the circuit's peak-live
// width, not its total wire count.
//
// A Plan is immutable after construction and safe for concurrent use by
// any number of executions; build it once per circuit and share it.
type Plan struct {
	// Circuit is the source circuit. The plan does not modify it.
	Circuit *Circuit

	// Gates is the renamed gate list: same length, order and ops as
	// Circuit.Gates, with A/B/C rewritten to slot indices in
	// [0, NumSlots). For INV gates B is set equal to A.
	//
	// The renamed list is only valid under level-ordered execution via
	// Schedule (levels in order, any order inside a level): a slot whose
	// wire dies at level j is recycled by a gate at some level k > j,
	// and that gate may sit *earlier* in the gate list than the dead
	// wire's last reader. Executing Gates in plain gate order would
	// overwrite slots that are still live.
	Gates []Gate

	// NumSlots is the width of the physical slot space — the label-arena
	// length an executor needs. Input-like wire w occupies slot w at the
	// start of execution (inputs are renamed to themselves), so input
	// labels can be copied into the arena front verbatim.
	NumSlots int

	// OutputSlots[i] is the slot holding Circuit.Outputs[i] at the end of
	// execution. Output slots are never recycled, so they remain valid
	// whenever execution finishes.
	OutputSlots []Wire

	// Schedule is the circuit's level schedule, built once here so plan
	// executors never recompute it. Its gate indices are valid for both
	// Circuit.Gates and the renamed Gates (the order is identical).
	Schedule *Schedule

	// PeakLive is the maximum number of simultaneously live wires across
	// the level-ordered execution: inputs plus every wire written so far,
	// minus wires whose last reader has completed. The renamer achieves
	// exactly this width (NumSlots == PeakLive).
	PeakLive int
}

// planBuilds counts NewPlan calls; a test hook for asserting that plan
// reuse paths (haac.Precompile and friends) compile once per circuit.
var planBuilds atomic.Uint64

// PlanBuilds returns the number of plans built by this process.
func PlanBuilds() uint64 { return planBuilds.Load() }

// NewPlan validates the circuit, runs the last-use liveness pass and the
// slot-renaming pass, and returns the reusable plan. Both passes are
// O(gates).
//
// Renaming respects level boundaries: a slot whose wire dies at level k
// (its last reader runs at level k) is reused only by gates at levels
// strictly greater than k. Level-synchronous executors — sequential
// level-ordered loops as well as parallel worker pools with a barrier
// per level — therefore never race a write against a read of the same
// slot inside a level.
func NewPlan(c *Circuit) (*Plan, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	planBuilds.Add(1)

	levels := c.Levels()
	maxLevel := 0
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	nin := c.NumInputs()

	// Last-use liveness. lastUse[w] is the level of the last gate reading
	// wire w; primary outputs are pinned live forever (sentinel past the
	// deepest level); a wire nobody reads dies at its own write level, so
	// its slot recycles one level after it is produced.
	const neverDies = int32(1) << 30
	writeLevel := make([]int32, c.NumWires)
	lastUse := make([]int32, c.NumWires)
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Op != XOR && g.Op != AND && g.Op != INV {
			return nil, fmt.Errorf("circuit: gate %d has unknown op %d", i, g.Op)
		}
		l := int32(levels[i])
		writeLevel[g.C] = l
		if lastUse[g.A] < l {
			lastUse[g.A] = l
		}
		if g.Op != INV && lastUse[g.B] < l {
			lastUse[g.B] = l
		}
	}
	for w := range lastUse {
		if lastUse[w] < writeLevel[w] {
			lastUse[w] = writeLevel[w]
		}
	}
	for _, o := range c.Outputs {
		lastUse[o] = neverDies
	}

	// Bucket gates and wire deaths by level for the single renaming sweep.
	// Gates keep gate order inside a level; deaths keep wire order — both
	// choices only pin the (deterministic) slot assignment.
	gatesAt := make([][]int32, maxLevel+1)
	gateCount := make([]int32, maxLevel+1)
	for i := range c.Gates {
		gateCount[levels[i]]++
	}
	for k := 1; k <= maxLevel; k++ {
		gatesAt[k] = make([]int32, 0, gateCount[k])
	}
	for i := range c.Gates {
		gatesAt[levels[i]] = append(gatesAt[levels[i]], int32(i))
	}
	diesAt := make([][]Wire, maxLevel+1)
	for w := 0; w < c.NumWires; w++ {
		if w >= nin && writeLevel[w] == 0 {
			// Gap wire: Validate permits wires nothing writes or reads.
			// They own no slot, so they must not enter the death
			// buckets — freeing their zero-valued slot[w] would recycle
			// input slot 0 while it is still live.
			continue
		}
		if l := lastUse[w]; l != neverDies && int(l) < len(diesAt) {
			diesAt[l] = append(diesAt[l], Wire(w))
		}
	}

	p := &Plan{
		Circuit:  c,
		Gates:    make([]Gate, len(c.Gates)),
		Schedule: c.levelScheduleFrom(levels),
	}

	// Renaming sweep. Inputs occupy slots [0, nin) — the identity map —
	// so executors load input labels with a single copy. free is a LIFO
	// stack: the most recently vacated slot is the hottest in cache.
	slot := make([]Wire, c.NumWires)
	for w := 0; w < nin; w++ {
		slot[w] = Wire(w)
	}
	nextSlot := nin
	free := make([]Wire, 0, nin)
	live, peak := nin, nin
	for k := 1; k <= maxLevel; k++ {
		// Slots that died at level k-1 become reusable now — never
		// earlier, preserving the level-boundary rule.
		for _, w := range diesAt[k-1] {
			free = append(free, slot[w])
		}
		live -= len(diesAt[k-1])
		for _, gi := range gatesAt[k] {
			g := &c.Gates[gi]
			var s Wire
			if n := len(free); n > 0 {
				s = free[n-1]
				free = free[:n-1]
			} else {
				s = Wire(nextSlot)
				nextSlot++
			}
			slot[g.C] = s
			rg := Gate{Op: g.Op, A: slot[g.A], C: s}
			if g.Op != INV {
				rg.B = slot[g.B]
			} else {
				rg.B = rg.A
			}
			p.Gates[gi] = rg
		}
		live += len(gatesAt[k])
		if live > peak {
			peak = live
		}
	}

	p.NumSlots = nextSlot
	p.PeakLive = peak
	p.OutputSlots = make([]Wire, len(c.Outputs))
	for i, o := range c.Outputs {
		p.OutputSlots[i] = slot[o]
	}
	return p, nil
}
