// Package softfloat is the bit-exact plain-Go reference model for the
// IEEE-754 binary32 circuits in internal/builder. GradDesc — the paper's
// "true floating point" benchmark — runs these operations as Boolean
// logic; this package defines the exact arithmetic those circuits
// implement, so circuit outputs can be tested for equality rather than
// approximate closeness.
//
// Semantics (simplified relative to full IEEE-754, as is standard for GC
// float libraries):
//
//   - flush-to-zero: subnormal inputs and outputs are treated as zero;
//   - truncation ("round toward zero") with 3 guard bits on addition;
//   - overflow saturates to infinity (exponent 255, mantissa 0);
//   - NaNs and infinities are not propagated specially — inputs are
//     assumed finite, which holds for the GradDesc workload.
//
// The circuit builder transcribes Add and Mul below line by line; any
// change here must be mirrored in internal/builder/float.go.
package softfloat

import "math"

// unpack splits x into sign, biased exponent and mantissa fields.
func unpack(x uint32) (s uint32, e int32, m uint32) {
	return x >> 31, int32(x >> 23 & 0xff), x & 0x7fffff
}

// pack assembles a float from sign, biased exponent and 23-bit mantissa.
func pack(s uint32, e int32, m uint32) uint32 {
	return s<<31 | uint32(e&0xff)<<23 | m&0x7fffff
}

// Mul returns the product of two binary32 values under this package's
// semantics, operating on raw bit patterns.
func Mul(a, b uint32) uint32 {
	sa, ea, ma := unpack(a)
	sb, eb, mb := unpack(b)
	s := sa ^ sb

	if ea == 0 || eb == 0 { // FTZ: zero (or subnormal) operand
		return pack(s, 0, 0)
	}
	pa := uint64(1<<23 | ma)
	pb := uint64(1<<23 | mb)
	p := pa * pb // 48-bit product, MSB at bit 47 or 46

	norm := int32(p >> 47 & 1)
	var mant uint32
	if norm == 1 {
		mant = uint32(p >> 24 & 0x7fffff)
	} else {
		mant = uint32(p >> 23 & 0x7fffff)
	}
	e := ea + eb - 127 + norm
	switch {
	case e <= 0:
		return pack(s, 0, 0)
	case e >= 255:
		return pack(s, 255, 0)
	}
	return pack(s, e, mant)
}

// Add returns the sum of two binary32 values under this package's
// semantics, operating on raw bit patterns.
func Add(a, b uint32) uint32 {
	sa, ea, ma := unpack(a)
	sb, eb, mb := unpack(b)

	// Order by magnitude: the comparison key is the raw exponent+mantissa.
	magA := uint32(ea)<<23 | ma
	magB := uint32(eb)<<23 | mb
	if magA < magB {
		sa, ea, ma, sb, eb, mb = sb, eb, mb, sa, ea, ma
		magA, magB = magB, magA
	}

	// 27-bit significands: hidden bit + 23 mantissa bits + 3 guard bits.
	m1 := sig27(ea, ma)
	m2 := sig27(eb, mb)

	// Align the smaller operand. Shifts >= 27 drain to zero; clamping at
	// 31 keeps the circuit's shift amount at 5 bits.
	d := ea - eb
	if d > 31 {
		d = 31
	}
	m2 >>= uint(d)

	var r uint32 // 28-bit result significand
	if sa != sb {
		r = m1 - m2
	} else {
		r = m1 + m2
	}

	if r == 0 {
		return pack(0, 0, 0) // exact cancellation: +0
	}
	lz := leadingZeros28(r)
	rn := r << uint(lz) // MSB now at bit 27
	e := ea + 1 - int32(lz)
	switch {
	case e <= 0:
		return pack(sa, 0, 0) // FTZ underflow
	case e >= 255:
		return pack(sa, 255, 0)
	}
	mant := rn >> 4 & 0x7fffff // drop hidden bit (27) and 4 low bits
	return pack(sa, e, mant)
}

// sig27 expands a (possibly zero) operand to the 27-bit significand used
// by Add: (hidden|mant) << 3, or 0 when the operand is zero under FTZ.
func sig27(e int32, m uint32) uint32 {
	if e == 0 {
		return 0
	}
	return (1<<23 | m) << 3
}

func leadingZeros28(x uint32) int32 {
	n := int32(0)
	for i := 27; i >= 0; i-- {
		if x>>uint(i)&1 == 1 {
			break
		}
		n++
	}
	return n
}

// Sub returns a - b.
func Sub(a, b uint32) uint32 { return Add(a, b^0x80000000) }

// Neg flips the sign bit.
func Neg(a uint32) uint32 { return a ^ 0x80000000 }

// FromFloat32 converts a native float32 into this package's domain,
// flushing subnormals to zero.
func FromFloat32(f float32) uint32 {
	b := math.Float32bits(f)
	if b>>23&0xff == 0 {
		return b & 0x80000000
	}
	return b
}

// ToFloat32 reinterprets bits as a native float32.
func ToFloat32(b uint32) float32 { return math.Float32frombits(b) }

// MulF and AddF are float32 conveniences for tests and baselines.
func MulF(a, b float32) float32 {
	return ToFloat32(Mul(FromFloat32(a), FromFloat32(b)))
}

// AddF adds two float32 values under softfloat semantics.
func AddF(a, b float32) float32 {
	return ToFloat32(Add(FromFloat32(a), FromFloat32(b)))
}

// SubF subtracts two float32 values under softfloat semantics.
func SubF(a, b float32) float32 {
	return ToFloat32(Sub(FromFloat32(a), FromFloat32(b)))
}
