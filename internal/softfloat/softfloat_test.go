package softfloat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMulExactCases(t *testing.T) {
	cases := []struct{ a, b, want float32 }{
		{1, 1, 1}, {2, 3, 6}, {-2, 3, -6}, {0.5, 0.5, 0.25},
		{0, 5, 0}, {5, 0, 0}, {1.5, 2, 3}, {-4, -4, 16},
	}
	for _, c := range cases {
		if got := MulF(c.a, c.b); got != c.want {
			t.Errorf("MulF(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAddExactCases(t *testing.T) {
	cases := []struct{ a, b, want float32 }{
		{1, 1, 2}, {1.5, 1, 2.5}, {0.5, 0.25, 0.75},
		{1, -1, 0}, {-1, 1, 0}, {0, 0, 0}, {3, -1, 2},
		{-2.5, -2.5, -5},
	}
	for _, c := range cases {
		if got := AddF(c.a, c.b); got != c.want {
			t.Errorf("AddF(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSubIsAddOfNegation(t *testing.T) {
	f := func(a, b uint32) bool {
		return Sub(a, b) == Add(a, Neg(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddCommutative(t *testing.T) {
	f := func(af, bf float32) bool {
		a, b := FromFloat32(af), FromFloat32(bf)
		if isBad(a) || isBad(b) {
			return true
		}
		return Add(a, b) == Add(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(af, bf float32) bool {
		a, b := FromFloat32(af), FromFloat32(bf)
		if isBad(a) || isBad(b) {
			return true
		}
		return Mul(a, b) == Mul(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMulByOneIsIdentity(t *testing.T) {
	one := FromFloat32(1)
	f := func(af float32) bool {
		a := FromFloat32(af)
		if isBad(a) {
			return true
		}
		return Mul(a, one) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddZeroIsIdentity(t *testing.T) {
	zero := FromFloat32(0)
	f := func(af float32) bool {
		a := FromFloat32(af)
		if isBad(a) {
			return true
		}
		return Add(a, zero) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestOverflowToInf(t *testing.T) {
	big := FromFloat32(3.4e38)
	if got := Add(big, big); got != 0x7f800000 {
		t.Fatalf("overflowing add = %08x, want +inf", got)
	}
	if got := Mul(big, big); got != 0x7f800000 {
		t.Fatalf("overflowing mul = %08x, want +inf", got)
	}
	negBig := Neg(big)
	if got := Add(negBig, negBig); got != 0xff800000 {
		t.Fatalf("overflowing negative add = %08x, want -inf", got)
	}
}

func TestUnderflowFTZ(t *testing.T) {
	tiny := FromFloat32(1e-30)
	if got := Mul(tiny, tiny); got != 0 {
		t.Fatalf("underflowing mul = %08x, want +0", got)
	}
	if got := FromFloat32(1e-44); got != 0 { // subnormal flushed on input
		t.Fatalf("subnormal not flushed: %08x", got)
	}
}

func TestExactCancellationIsPositiveZero(t *testing.T) {
	a := FromFloat32(123456)
	if got := Add(a, Neg(a)); got != 0 {
		t.Fatalf("x + (-x) = %08x, want +0", got)
	}
}

// isBad filters NaN/inf inputs, which the semantics don't cover.
func isBad(b uint32) bool { return b>>23&0xff == 255 }

func TestNearNativeSum(t *testing.T) {
	// Against native float64 arithmetic the truncating softfloat result
	// must be within 1 ULP-ish relative error.
	vals := []float32{1, -1, 3.25, 1e10, -7.5e-5, 0.1, 2.0 / 3.0}
	for _, a := range vals {
		for _, b := range vals {
			got := float64(AddF(a, b))
			want := float64(a) + float64(b)
			if want != 0 && math.Abs(got-want) > math.Abs(want)*1e-6 {
				t.Errorf("AddF(%v,%v) = %v, native %v", a, b, got, want)
			}
		}
	}
}
