// Package fleet is the digest-sharded front proxy that scales the
// serving layer from one haacd process to a fleet of them. It accepts
// the existing HAAS session handshake, routes each session to a backend
// garbler by rendezvous-hashing the circuit digest — so repeat sessions
// of a circuit land on the backend whose server.PlanCache is already
// warm — and splices bytes between client and backend for the life of
// the session. The 2PC wire format is untouched: the proxy reads
// exactly two frames (the client's hello and the backend's reply),
// forwards them verbatim, and never interprets a protocol byte after
// the handshake.
//
// Robustness is the point. Backends are watched two ways: an active
// prober polls each backend's ops endpoint (/readyz, falling back to
// /healthz) so saturated, draining or dead processes stop receiving
// routes before a client pays for the refusal, and a passive
// per-backend circuit breaker ejects a backend after consecutive
// dial or handshake-relay failures, readmitting it through half-open
// trial sessions or a succeeding probe. When a session's backend dies
// mid-run the client's retry policy (server.RetryPolicy) redials the
// proxy, and the breaker has by then steered the route to the next
// live backend in rendezvous order — so client-side redial/replay
// heals whole-backend loss exactly like a dropped connection. Rolling
// restarts use Drain/Undrain: Drain stops new routes to one backend
// and waits out its active sessions (bounded by DrainTimeout), the
// operator restarts it, Undrain readmits it fresh.
package fleet

import (
	"crypto/tls"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"haac/internal/server"
)

// Typed fleet errors.
var (
	// ErrNoBackend: every backend is drained, ejected or failing; the
	// session was refused busy.
	ErrNoBackend = errors.New("fleet: no live backend")
	// ErrUnknownBackend: Drain/Undrain named an address the fleet does
	// not route to.
	ErrUnknownBackend = errors.New("fleet: unknown backend")
	// ErrClosed: the fleet proxy is shut down.
	ErrClosed = errors.New("fleet: closed")
)

// Backend names one backend garbler process.
type Backend struct {
	// Addr is the backend's 2PC session address.
	Addr string
	// Ops is the backend's HTTP ops address probed for /readyz and
	// /healthz; empty disables active probing for this backend (the
	// passive circuit breaker still applies).
	Ops string
}

// Config configures a Fleet.
type Config struct {
	// Backends is the routing set. Rendezvous hashing makes placement a
	// pure function of (digest, Addr), so the set can differ across
	// proxy replicas only at the cost of cache locality, not
	// correctness.
	Backends []Backend
	// ProbeInterval is the active health-probe period (default 500ms;
	// negative disables probing — routing then relies on the passive
	// breaker alone).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe HTTP request (default 2s).
	ProbeTimeout time.Duration
	// FailThreshold is the number of consecutive dial/handshake-relay
	// failures that ejects a backend (default 3).
	FailThreshold int
	// ReopenAfter is how long an ejected backend waits before a
	// half-open trial session may probe it back in (default 1s).
	ReopenAfter time.Duration
	// DialTimeout bounds each backend dial (default 5s).
	DialTimeout time.Duration
	// HandshakeTimeout bounds the client hello read and the
	// hello-forward/reply-read exchange with the backend (default 10s,
	// negative disables).
	HandshakeTimeout time.Duration
	// IdleTimeout, when > 0, arms a per-direction deadline on every
	// spliced session: a direction that moves no bytes for this long
	// tears the session down, so a half-dead peer cannot pin a splice
	// goroutine forever.
	IdleTimeout time.Duration
	// DrainTimeout bounds Drain and Close waiting for active sessions
	// (0 means the 30s default; negative waits indefinitely).
	DrainTimeout time.Duration
	// TLS, when non-nil, wraps every listener passed to Serve so
	// clients reach the fleet over TLS.
	TLS *tls.Config
	// BackendTLS, when non-nil, wraps every backend dial so the
	// proxy-to-backend hop runs over TLS (backends run server.Config.TLS).
	BackendTLS *tls.Config
	// Dialer overrides how backend connections are opened — tests route
	// it through a fault-injecting transport. nil means net.Dial with
	// DialTimeout. BackendTLS composes on top of the returned conn.
	Dialer func(addr string) (net.Conn, error)
}

const (
	defaultProbeInterval = 500 * time.Millisecond
	defaultProbeTimeout  = 2 * time.Second
	defaultFailThreshold = 3
	defaultReopenAfter   = time.Second
	defaultDialTimeout   = 5 * time.Second
	defaultHandshake     = 10 * time.Second
	defaultDrainTimeout  = 30 * time.Second
)

// BackendStats is the point-in-time state of one backend.
type BackendStats struct {
	Addr string
	// Routable reports whether the next session could be routed here.
	Routable bool
	// Draining is the administrative Drain flag.
	Draining bool
	// Ejected is the passive circuit breaker's open state.
	Ejected bool
	// ProbeOK is the last active-probe verdict (true when probing is
	// disabled for the backend).
	ProbeOK bool
	// Active is the number of sessions currently spliced to it.
	Active int
	// SessionsRouted counts sessions relayed to this backend.
	SessionsRouted uint64
	// Failures counts dial/handshake-relay failures charged to it.
	Failures uint64
	// Refusals counts busy/draining handshake refusals it returned.
	Refusals uint64
	// ProbeFailures counts failed active probes.
	ProbeFailures uint64
}

// Stats is a snapshot of the fleet's counters.
type Stats struct {
	Backends []BackendStats
	// LiveBackends counts currently routable backends.
	LiveBackends int
	// ActiveSessions counts spliced sessions across all backends.
	ActiveSessions int
	// SessionsRouted counts sessions relayed to some backend.
	SessionsRouted uint64
	// SessionsPooled counts routed sessions whose backend granted the
	// precomputed-OT tier; the refill and derandomization bytes traverse
	// the splice opaquely, so this handshake bit is all the proxy ever
	// learns about pooling.
	SessionsPooled uint64
	// SessionsRefused counts sessions refused because no backend was
	// routable.
	SessionsRefused uint64
	// Failovers counts sessions routed past their rendezvous-first
	// backend because it was drained, ejected, failing or refused.
	Failovers uint64
	// DialFailures counts failed backend dials.
	DialFailures uint64
	// BackendRefusals counts busy/draining refusals relayed from
	// backends to clients.
	BackendRefusals uint64
	// Ejections / Readmissions count circuit-breaker transitions.
	Ejections, Readmissions uint64
	// BytesClientToBackend / BytesBackendToClient are splice totals.
	BytesClientToBackend, BytesBackendToClient uint64
	// SessionsForceClosed counts splices force-closed by Drain or Close
	// after DrainTimeout.
	SessionsForceClosed uint64
	// SessionsPanicked counts sessions whose routing or splice goroutine
	// panicked and was contained — the session died, the proxy did not.
	SessionsPanicked uint64
}

// Fleet is the front proxy. Create with New, serve one or more
// listeners with Serve, and stop with Close.
type Fleet struct {
	cfg      Config
	backends []*backend
	byAddr   map[string]*backend

	mu        sync.Mutex
	closing   bool
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{} // every live client/backend conn
	wg        sync.WaitGroup        // one per accepted session

	stopProbe chan struct{}
	probeWG   sync.WaitGroup

	routed       atomic.Uint64
	pooledRouted atomic.Uint64
	refused      atomic.Uint64
	failovers    atomic.Uint64
	dialFailures atomic.Uint64
	relayRefused atomic.Uint64
	ejections    atomic.Uint64
	readmissions atomic.Uint64
	bytesC2B     atomic.Uint64
	bytesB2C     atomic.Uint64
	forceClosed  atomic.Uint64
	panicked     atomic.Uint64
	active       atomic.Int64
}

// testHookPanic, when non-nil, runs at the start of every accepted
// session — the fault-injection point for the panic-containment tests.
var testHookPanic func()

// New validates the configuration and builds the proxy; probing starts
// immediately for backends with an Ops address.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("fleet: no backends configured")
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = defaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = defaultProbeTimeout
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = defaultFailThreshold
	}
	if cfg.ReopenAfter <= 0 {
		cfg.ReopenAfter = defaultReopenAfter
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = defaultDialTimeout
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = defaultHandshake
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = defaultDrainTimeout
	}
	f := &Fleet{
		cfg:       cfg,
		byAddr:    make(map[string]*backend, len(cfg.Backends)),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		stopProbe: make(chan struct{}),
	}
	for _, spec := range cfg.Backends {
		if spec.Addr == "" {
			return nil, errors.New("fleet: backend with empty address")
		}
		if _, dup := f.byAddr[spec.Addr]; dup {
			return nil, fmt.Errorf("fleet: duplicate backend %q", spec.Addr)
		}
		b := &backend{spec: spec, probeOK: true}
		f.backends = append(f.backends, b)
		f.byAddr[spec.Addr] = b
	}
	if cfg.ProbeInterval > 0 {
		for _, b := range f.backends {
			if b.spec.Ops == "" {
				continue
			}
			f.probeWG.Add(1)
			go f.probeLoop(b)
		}
	}
	return f, nil
}

// score is the rendezvous weight of one (digest, backend) pair.
func score(digest [32]byte, addr string) uint64 {
	h := fnv.New64a()
	h.Write(digest[:])
	h.Write([]byte(addr))
	return h.Sum64()
}

// rankAddrs returns addrs in rendezvous order for digest — highest
// score first, ties broken by address so the order is total. It is the
// pure routing function: same digest, same backend set, same order.
func rankAddrs(digest [32]byte, addrs []string) []string {
	ranked := append([]string(nil), addrs...)
	sort.SliceStable(ranked, func(i, j int) bool {
		si, sj := score(digest, ranked[i]), score(digest, ranked[j])
		if si != sj {
			return si > sj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// ranked returns the fleet's backends in rendezvous order for digest.
func (f *Fleet) ranked(digest [32]byte) []*backend {
	addrs := make([]string, len(f.backends))
	for i, b := range f.backends {
		addrs[i] = b.spec.Addr
	}
	order := rankAddrs(digest, addrs)
	ranked := make([]*backend, len(order))
	for i, addr := range order {
		ranked[i] = f.byAddr[addr]
	}
	return ranked
}

// Serve accepts client sessions on ln until the fleet closes; it may be
// called concurrently on several listeners. When Config.TLS is set the
// listener is wrapped in TLS. It returns nil after Close and the
// listener's error otherwise.
func (f *Fleet) Serve(ln net.Listener) error {
	if f.cfg.TLS != nil {
		ln = tls.NewListener(ln, f.cfg.TLS)
	}
	f.mu.Lock()
	if f.closing {
		f.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	f.listeners[ln] = struct{}{}
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		delete(f.listeners, ln)
		f.mu.Unlock()
		ln.Close()
	}()
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if f.isClosing() {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				// Transient accept pressure: back off and keep serving,
				// mirroring the backend server's accept loop.
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				time.Sleep(backoff)
				continue
			}
			return err
		}
		backoff = 0
		f.mu.Lock()
		if f.closing {
			f.mu.Unlock()
			conn.Close()
			continue
		}
		f.conns[conn] = struct{}{}
		f.wg.Add(1)
		f.mu.Unlock()
		go f.handle(conn)
	}
}

func (f *Fleet) isClosing() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closing
}

// track adds a live connection to the force-close set; untrack removes
// and closes it.
func (f *Fleet) track(conn net.Conn) {
	f.mu.Lock()
	f.conns[conn] = struct{}{}
	f.mu.Unlock()
}

func (f *Fleet) untrack(conn net.Conn) {
	f.mu.Lock()
	delete(f.conns, conn)
	f.mu.Unlock()
	conn.Close()
}

// handle routes one accepted session: read the client hello, walk the
// rendezvous order until a live backend accepts, relay the verdict, and
// splice. A backend that cannot be dialed or whose reply never arrives
// is charged a breaker failure and the next candidate is tried with the
// same hello bytes; a backend that answers with a busy/draining refusal
// has refused a complete handshake, so the refusal is relayed verbatim
// and the client's retry policy redials — by then the breaker routes
// the next attempt past it.
func (f *Fleet) handle(conn net.Conn) {
	routed := false
	defer func() {
		if !routed {
			f.untrack(conn)
		}
		f.wg.Done()
	}()
	// Contain a panic to the session that raised it: one poisoned route
	// or splice must not take down the whole proxy. Registered after the
	// cleanup defer so it recovers first; the cleanup still runs.
	defer func() {
		if r := recover(); r != nil {
			f.panicked.Add(1)
			conn.Close()
		}
	}()
	if testHookPanic != nil {
		testHookPanic()
	}

	hs := f.cfg.HandshakeTimeout
	if hs > 0 {
		conn.SetReadDeadline(time.Now().Add(hs))
	}
	hf, err := server.ReadHelloFrame(conn)
	if err != nil {
		if errors.Is(err, server.ErrBadRequest) || errors.Is(err, server.ErrBadVersion) {
			f.reply(conn, func() error { return server.WriteRefusal(conn, err, "") })
		}
		return
	}

	for i, b := range f.ranked(hf.Digest) {
		trial, ok := b.admit(time.Now())
		if !ok {
			continue
		}
		bconn, err := f.dialBackend(b)
		if err != nil {
			f.dialFailures.Add(1)
			b.reportFailure(f, trial)
			continue
		}
		if hs > 0 {
			bconn.SetDeadline(time.Now().Add(hs))
		}
		var rf server.ReplyFrame
		if _, err = bconn.Write(hf.Raw); err == nil {
			rf, err = server.ReadReplyFrame(bconn)
		}
		if err != nil {
			// The backend accepted a connection but never answered a
			// complete handshake: a dying or wedged process. Charge the
			// breaker and try the next candidate with the same hello.
			bconn.Close()
			b.reportFailure(f, trial)
			continue
		}
		if i > 0 {
			f.failovers.Add(1)
		}
		if !rf.OK() {
			// A complete, typed refusal (busy, draining, unknown circuit,
			// digest mismatch): the backend is alive and spoke for
			// itself, so relay its exact bytes. Busy/draining mark the
			// backend unroutable-leaning via the refusal counter and the
			// active probe; the client's retry redials onto the next
			// candidate.
			bconn.Close()
			b.reportRefusal(f, rf.Err, trial)
			f.relayRefused.Add(1)
			f.reply(conn, func() error { _, werr := conn.Write(rf.Raw); return werr })
			return
		}
		b.reportSuccess(f)
		f.routed.Add(1)
		if rf.Pooled {
			f.pooledRouted.Add(1)
		}
		b.routed.Add(1)
		if werr := f.reply(conn, func() error { _, werr := conn.Write(rf.Raw); return werr }); werr != nil {
			bconn.Close()
			b.release()
			return
		}
		conn.SetDeadline(time.Time{})
		bconn.SetDeadline(time.Time{})
		routed = true
		f.splice(b, conn, bconn)
		return
	}
	f.refused.Add(1)
	f.reply(conn, func() error { return server.WriteRefusal(conn, server.ErrBusy, "fleet: no live backend") })
}

// reply arms a write deadline around a handshake-phase write to the
// client, so a slowloris client cannot pin the routing goroutine.
func (f *Fleet) reply(conn net.Conn, write func() error) error {
	if hs := f.cfg.HandshakeTimeout; hs > 0 {
		conn.SetWriteDeadline(time.Now().Add(hs))
	}
	return write()
}

// dialBackend opens one backend connection through the configured
// dialer, wrapped in TLS when configured.
func (f *Fleet) dialBackend(b *backend) (net.Conn, error) {
	var conn net.Conn
	var err error
	if f.cfg.Dialer != nil {
		conn, err = f.cfg.Dialer(b.spec.Addr)
	} else {
		conn, err = net.DialTimeout("tcp", b.spec.Addr, f.cfg.DialTimeout)
	}
	if err != nil {
		return nil, err
	}
	if f.cfg.BackendTLS != nil {
		conn = tls.Client(conn, f.cfg.BackendTLS)
	}
	return conn, nil
}

// splice relays bytes in both directions until either side ends, then
// tears both conns down. The backend's admission slot (b.admit) is held
// for the whole splice so Drain can wait on it.
func (f *Fleet) splice(b *backend, client, bconn net.Conn) {
	f.track(bconn)
	b.addConns(client, bconn)
	f.active.Add(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// This half runs on its own goroutine, outside handle's recover:
		// contain its panics here or they kill the process.
		defer func() {
			if r := recover(); r != nil {
				f.panicked.Add(1)
				bconn.Close()
				client.Close()
			}
		}()
		f.copyHalf(bconn, client, &f.bytesC2B)
		// Client side ended (bye, drop, or force-close): unblock the
		// backend read.
		bconn.Close()
		client.Close()
	}()
	f.copyHalf(client, bconn, &f.bytesB2C)
	client.Close()
	bconn.Close()
	<-done
	f.active.Add(-1)
	b.removeConns(client, bconn)
	b.release()
	f.untrack(client)
	f.untrack(bconn)
}

// copyHalf moves bytes src -> dst until either side errors, arming the
// per-direction idle deadline when configured.
func (f *Fleet) copyHalf(dst, src net.Conn, counter *atomic.Uint64) {
	buf := make([]byte, 32<<10)
	idle := f.cfg.IdleTimeout
	for {
		if idle > 0 {
			src.SetReadDeadline(time.Now().Add(idle))
		}
		n, err := src.Read(buf)
		if n > 0 {
			counter.Add(uint64(n))
			if idle > 0 {
				dst.SetWriteDeadline(time.Now().Add(idle))
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// Drain stops routing new sessions to the named backend and waits for
// its active sessions to finish, force-closing survivors after
// DrainTimeout — the first half of a rolling restart. The backend stays
// out of the routing set until Undrain.
func (f *Fleet) Drain(addr string) error {
	b := f.byAddr[addr]
	if b == nil {
		return fmt.Errorf("%w: %q", ErrUnknownBackend, addr)
	}
	b.mu.Lock()
	b.drained = true
	b.mu.Unlock()
	if !f.awaitIdle(b, f.cfg.DrainTimeout) {
		for _, conn := range b.snapshotConns() {
			conn.Close()
			f.forceClosed.Add(1)
		}
		// Closing the conns errors the splices out; the release is then
		// bounded by I/O teardown, not by the peer.
		f.awaitIdle(b, -1)
	}
	return nil
}

// Undrain readmits a (typically restarted) backend with a clean slate:
// the drain flag, breaker state and probe verdict all reset, so the
// next session in its rendezvous set routes to it immediately.
func (f *Fleet) Undrain(addr string) error {
	b := f.byAddr[addr]
	if b == nil {
		return fmt.Errorf("%w: %q", ErrUnknownBackend, addr)
	}
	b.mu.Lock()
	b.drained = false
	b.ejected = false
	b.halfOpen = false
	b.fails = 0
	b.probeOK = true
	b.mu.Unlock()
	return nil
}

// awaitIdle waits until b has no active sessions; timeout 0 means the
// 30s default, negative waits indefinitely. Reports whether the backend
// went idle.
func (f *Fleet) awaitIdle(b *backend, timeout time.Duration) bool {
	if timeout == 0 {
		timeout = defaultDrainTimeout
	}
	deadline := time.Now().Add(timeout)
	for {
		b.mu.Lock()
		n := b.active
		b.mu.Unlock()
		if n == 0 {
			return true
		}
		if timeout >= 0 && time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close shuts the proxy down: listeners stop accepting, probing stops,
// and active splices get DrainTimeout to finish before being
// force-closed. Safe to call more than once.
func (f *Fleet) Close() error {
	f.mu.Lock()
	already := f.closing
	if !already {
		f.closing = true
		for ln := range f.listeners {
			ln.Close()
		}
	}
	f.mu.Unlock()
	if !already {
		close(f.stopProbe)
	}
	f.probeWG.Wait()

	dt := f.cfg.DrainTimeout
	if dt == 0 {
		dt = defaultDrainTimeout
	}
	done := make(chan struct{})
	go func() {
		f.wg.Wait()
		close(done)
	}()
	if dt >= 0 {
		select {
		case <-done:
			return nil
		case <-time.After(dt):
		}
		f.mu.Lock()
		for conn := range f.conns {
			conn.Close()
			f.forceClosed.Add(1)
		}
		f.mu.Unlock()
	}
	<-done
	return nil
}

// Stats returns a snapshot of the fleet's counters.
func (f *Fleet) Stats() Stats {
	st := Stats{
		ActiveSessions:       int(f.active.Load()),
		SessionsRouted:       f.routed.Load(),
		SessionsPooled:       f.pooledRouted.Load(),
		SessionsRefused:      f.refused.Load(),
		Failovers:            f.failovers.Load(),
		DialFailures:         f.dialFailures.Load(),
		BackendRefusals:      f.relayRefused.Load(),
		Ejections:            f.ejections.Load(),
		Readmissions:         f.readmissions.Load(),
		BytesClientToBackend: f.bytesC2B.Load(),
		BytesBackendToClient: f.bytesB2C.Load(),
		SessionsForceClosed:  f.forceClosed.Load(),
		SessionsPanicked:     f.panicked.Load(),
	}
	now := time.Now()
	for _, b := range f.backends {
		bs := b.stats(now)
		if bs.Routable {
			st.LiveBackends++
		}
		st.Backends = append(st.Backends, bs)
	}
	return st
}
