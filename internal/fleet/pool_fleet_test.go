package fleet

import (
	"strings"
	"testing"

	"haac/internal/ot"
	"haac/internal/server"
	"haac/internal/workloads"
)

// TestFleetPooledSessionEndToEnd proves the precomputed-OT tier is
// end-to-end through the proxy: the pooled negotiation rides the two
// handshake frames the fleet relays verbatim, the refill and
// derandomization bytes traverse the splice opaquely, and steady-state
// runs spend zero base-OT rounds. The proxy counts the granted tier
// from the relayed reply byte; the backend counts the pool hits.
func TestFleetPooledSessionEndToEnd(t *testing.T) {
	w := workloads.DotProduct(3, 8)
	c := w.Build()
	specs := specsFor(w)
	srv, addr := launchServer(t, "127.0.0.1:0", specs)
	defer srv.Close()
	f, fleetAddr := startFleet(t, Config{
		Backends:      []Backend{{Addr: addr}},
		ProbeInterval: -1,
	})

	m := c.EvaluatorInputs
	const runs = 5
	// Twice the run window's demand: the pool ends at exactly half
	// target, so no background refill fires and the counters below are
	// deterministic (mirrors the server-layer steady-state test).
	sess, err := server.Dial(fleetAddr, w.Name, c, server.Options{PoolSize: 2 * runs * m})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if !sess.Pooled() {
		t.Fatal("pooled tier did not survive the proxied handshake")
	}
	if lvl := sess.PoolLevel(); lvl != 2*runs*m {
		t.Fatalf("pool level after proxied dial = %d, want %d", lvl, 2*runs*m)
	}

	rounds := ot.BaseOTRounds()
	for run := 0; run < runs; run++ {
		evalBits, want := oracle(t, w, c, int64(run))
		got, err := sess.Run(evalBits)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("run %d: output %d = %v, want %v", run, j, got[j], want[j])
			}
		}
	}
	if got := ot.BaseOTRounds() - rounds; got != 0 {
		t.Errorf("base-OT rounds during proxied steady-state runs = %d, want 0", got)
	}
	cs := sess.Stats()
	if cs.PoolHits != runs || cs.PoolMisses != 0 {
		t.Errorf("client pool stats hits=%d misses=%d, want %d/0", cs.PoolHits, cs.PoolMisses, runs)
	}

	if st := f.Stats(); st.SessionsPooled != 1 {
		t.Errorf("fleet SessionsPooled = %d, want 1", st.SessionsPooled)
	}
	if metrics := f.MetricsText(); !strings.Contains(metrics, "haac_fleet_sessions_pooled_total 1") {
		t.Error("fleet /metrics missing haac_fleet_sessions_pooled_total 1")
	}

	sess.Close()
	srv.Close()
	if st := srv.Stats(); st.PoolHits != runs || st.PoolMisses != 0 {
		t.Errorf("backend pool stats hits=%d misses=%d, want %d/0", st.PoolHits, st.PoolMisses, runs)
	}
}
