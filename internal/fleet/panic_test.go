package fleet

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"haac/internal/ot"
	"haac/internal/server"
	"haac/internal/workloads"
)

// TestFleetPanicContainment: a panic inside one session's routing
// goroutine is contained — the client heals by redial, the counter
// trips, the metric exports, and the proxy keeps routing fresh
// sessions. The integrity tier negotiates end to end through the
// splice.
func TestFleetPanicContainment(t *testing.T) {
	w := workloads.AddN(8)
	c := w.Build()
	specs := specsFor(w)
	srv, addr := launchServer(t, "127.0.0.1:0", specs)
	defer srv.Close()

	var calls atomic.Int32
	testHookPanic = func() {
		if calls.Add(1) == 1 {
			panic("poisoned routing state")
		}
	}
	defer func() { testHookPanic = nil }()

	f, fleetAddr := startFleet(t, Config{
		Backends:      []Backend{{Addr: addr}},
		ProbeInterval: -1,
	})

	sess, err := server.Dial(fleetAddr, w.Name, c, server.Options{
		OT:        ot.Insecure,
		Integrity: true,
		Retry: server.RetryPolicy{
			MaxAttempts: 10,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  8 * time.Millisecond,
			Seed:        7,
		},
	})
	if err != nil {
		t.Fatalf("dial did not heal past the panicked session: %v", err)
	}
	defer sess.Close()
	if !sess.Integrity() {
		t.Fatal("integrity tier did not negotiate through the fleet splice")
	}
	evalBits, want := oracle(t, w, c, 3)
	got, err := sess.Run(evalBits)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("output %d = %v, want %v", j, got[j], want[j])
		}
	}

	if st := f.Stats(); st.SessionsPanicked == 0 {
		t.Fatalf("SessionsPanicked = 0, want >= 1 (stats %+v)", st)
	}
	if m := f.MetricsText(); !strings.Contains(m, "haac_fleet_sessions_panicked_total 1") {
		t.Fatalf("metrics missing panicked counter:\n%s", m)
	}

	// Still serving: a second, hook-clean session routes fine.
	fresh, err := server.Dial(fleetAddr, w.Name, c, server.Options{OT: ot.Insecure})
	if err != nil {
		t.Fatalf("fleet stopped routing after a contained panic: %v", err)
	}
	fresh.Close()
}
