package fleet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"haac/internal/circuit"
	"haac/internal/faultnet"
	"haac/internal/ot"
	"haac/internal/server"
	"haac/internal/workloads"
)

// TestChaosBackendKillByteIdentical is the fleet dimension of the chaos
// suite: three backends behind fault-injected transports (random
// connection drops on every backend's listener, so sessions sever
// mid-handshake and mid-OT), with one backend hard-killed while eight
// client sessions run continuously through the proxy. Every run must
// still produce output byte-identical to the plaintext oracle — the
// client retry policy redials the fleet, the breaker ejects the dead
// backend, and rendezvous routing re-homes its sessions on the
// survivors. Run under -race in CI.
func TestChaosBackendKillByteIdentical(t *testing.T) {
	ws := []workloads.Workload{workloads.AddN(8), workloads.DotProduct(2, 8)}
	specs := specsFor(ws...)

	const nBackends = 3
	srvs := make([]*server.Server, nBackends)
	addrs := make([]string, nBackends)
	fstats := make([]*faultnet.Stats, nBackends)
	for i := range srvs {
		srv, err := server.New(server.Config{
			Circuits:        specs,
			Seed:            42,
			AllowInsecureOT: true,
			DrainTimeout:    10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		fln := faultnet.WrapListener(ln, faultnet.Plan{
			Seed:     uint64(7000 + i),
			DropRate: 0.01,
		})
		go srv.Serve(fln)
		srvs[i], addrs[i], fstats[i] = srv, ln.Addr().String(), fln.Stats()
	}
	defer func() {
		for _, srv := range srvs {
			srv.Close()
		}
	}()

	f, fleetAddr := startFleet(t, Config{
		Backends:      []Backend{{Addr: addrs[0]}, {Addr: addrs[1]}, {Addr: addrs[2]}},
		ProbeInterval: -1,
		FailThreshold: 2,
		ReopenAfter:   15 * time.Millisecond,
		DrainTimeout:  200 * time.Millisecond,
	})

	// Kill the backend that rendezvous ranks first for ws[0], so its
	// sessions demonstrably re-home.
	victim := 0
	first := rankAddrs(circuit.Digest(ws[0].Build()), addrs)[0]
	for i, addr := range addrs {
		if addr == first {
			victim = i
		}
	}

	const nSessions = 8
	const runsPerSession = 6
	var warm sync.WaitGroup // first run of every session done
	warm.Add(nSessions)
	var wg sync.WaitGroup
	errc := make(chan error, nSessions)
	var reconnects atomic.Uint64
	for i := 0; i < nSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			warmed := false
			defer func() {
				if !warmed {
					warm.Done()
				}
			}()
			w := ws[i%len(ws)]
			c := w.Build()
			sess, err := server.Dial(fleetAddr, w.Name, c, server.Options{
				OT: ot.Insecure,
				Retry: server.RetryPolicy{
					MaxAttempts:      200,
					BaseBackoff:      time.Millisecond,
					MaxBackoff:       8 * time.Millisecond,
					HandshakeTimeout: 250 * time.Millisecond,
					Seed:             uint64(9000 + i),
				},
			})
			if err != nil {
				errc <- fmt.Errorf("session %d: dial: %w", i, err)
				return
			}
			defer func() {
				reconnects.Add(sess.Stats().Reconnects)
				sess.Close()
			}()
			for run := 0; run < runsPerSession; run++ {
				evalBits, want := oracle(t, w, c, int64(i*100+run))
				got, err := sess.Run(evalBits)
				if err != nil {
					errc <- fmt.Errorf("session %d run %d: %w", i, run, err)
					return
				}
				for j := range want {
					if got[j] != want[j] {
						errc <- fmt.Errorf("session %d run %d: output %d = %v, want %v", i, run, j, got[j], want[j])
						return
					}
				}
				if run == 0 {
					warmed = true
					warm.Done()
				}
			}
		}(i)
	}

	// Hard-kill the victim once every session has completed a run — the
	// fleet is warm and loaded, so the kill lands on live splices.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		warm.Wait()
		srvs[victim].Close()
	}()
	wg.Wait()
	<-killed
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	var drops uint64
	for _, fs := range fstats {
		drops += fs.Drops.Load()
	}
	if drops == 0 {
		t.Error("faultnet injected no drops; raise DropRate so the chaos dimension bites")
	}
	if reconnects.Load() == 0 {
		t.Error("reconnects = 0, want > 0: the backend kill should have broken and healed sessions")
	}
	t.Logf("backend-kill chaos: victim=%s, %d injected drops, %d reconnects, fleet stats %+v",
		addrs[victim], drops, reconnects.Load(), f.Stats())
}
