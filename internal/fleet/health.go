package fleet

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Per-backend health state. Two independent signals gate routing:
//
//   - The passive circuit breaker: consecutive dial/handshake-relay
//     failures eject the backend (ejected=true). After ReopenAfter one
//     half-open trial session at a time may probe it; a trial success
//     readmits, a trial failure re-ejects with a fresh reopen clock.
//   - The active prober: a periodic GET of the backend's ops endpoint
//     (/readyz with a /healthz fallback) sets probeOK. A failing probe
//     stops routing without waiting for a client to pay for the
//     failure; a succeeding probe also readmits an ejected backend, so
//     recovery does not have to burn a client session as the trial.
//
// The administrative drain flag (Drain/Undrain) overrides both: a
// drained backend is unroutable until the operator readmits it.
type backend struct {
	spec Backend

	mu       sync.Mutex
	drained  bool // administrative: Drain set, Undrain clears
	ejected  bool // breaker open
	halfOpen bool // a half-open trial session is in flight
	reopenAt time.Time
	probeOK  bool // last active-probe verdict (true when unprobed)
	fails    int  // consecutive failures toward FailThreshold
	active   int  // sessions currently spliced to this backend
	conns    map[io.Closer]struct{}

	routed     atomic.Uint64
	failures   atomic.Uint64
	refusals   atomic.Uint64
	probeFails atomic.Uint64
}

// admit decides whether the next session may route to this backend and,
// when it may, reserves an active slot (released by release). The
// second return is the admission verdict; the first reports that this
// admission is a half-open breaker trial, so the eventual
// reportSuccess/reportFailure closes or re-opens the breaker.
func (b *backend) admit(now time.Time) (trial, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.drained {
		return false, false
	}
	if b.ejected {
		if b.halfOpen || now.Before(b.reopenAt) {
			return false, false
		}
		b.halfOpen = true
		b.active++
		return true, true
	}
	if !b.probeOK {
		return false, false
	}
	b.active++
	return false, true
}

// release returns the active slot reserved by admit.
func (b *backend) release() {
	b.mu.Lock()
	b.active--
	b.mu.Unlock()
}

// reportSuccess records a completed handshake relay: the breaker
// closes, the failure streak resets. The active slot stays held until
// the splice releases it.
func (b *backend) reportSuccess(f *Fleet) {
	b.mu.Lock()
	b.fails = 0
	b.halfOpen = false
	if b.ejected {
		b.ejected = false
		b.mu.Unlock()
		f.readmissions.Add(1)
		return
	}
	b.mu.Unlock()
}

// reportFailure records a dial or handshake-relay failure and returns
// the active slot. A failed half-open trial re-ejects immediately; a
// closed breaker ejects once the streak reaches FailThreshold.
func (b *backend) reportFailure(f *Fleet, trial bool) {
	b.failures.Add(1)
	b.mu.Lock()
	b.active--
	b.fails++
	if trial {
		b.halfOpen = false
		b.reopenAt = time.Now().Add(f.cfg.ReopenAfter)
		b.mu.Unlock()
		return
	}
	if !b.ejected && b.fails >= f.cfg.FailThreshold {
		b.ejected = true
		b.reopenAt = time.Now().Add(f.cfg.ReopenAfter)
		b.mu.Unlock()
		f.ejections.Add(1)
		return
	}
	b.mu.Unlock()
}

// reportRefusal records a relayed busy/draining (or other typed)
// refusal and returns the active slot. The backend is alive — it spoke
// a complete frame — so the breaker does not count it as a failure; the
// active probe is what parks a saturated or draining backend. A
// half-open trial that gets refused still closes the breaker: the
// process is up, just unwilling.
func (b *backend) reportRefusal(f *Fleet, cause error, trial bool) {
	b.refusals.Add(1)
	b.mu.Lock()
	b.active--
	b.fails = 0
	b.halfOpen = false
	if b.ejected {
		b.ejected = false
		b.mu.Unlock()
		f.readmissions.Add(1)
		return
	}
	b.mu.Unlock()
}

// probeResult applies one active-probe verdict. A succeeding probe
// readmits an ejected backend directly — the ops endpoint answering
// "ok" is evidence enough that the process recovered.
func (b *backend) probeResult(f *Fleet, ok bool) {
	if !ok {
		b.probeFails.Add(1)
	}
	b.mu.Lock()
	b.probeOK = ok
	if ok && b.ejected {
		b.ejected = false
		b.halfOpen = false
		b.fails = 0
		b.mu.Unlock()
		f.readmissions.Add(1)
		return
	}
	b.mu.Unlock()
}

// addConns registers a splice's two connections for force-close during
// Drain; removeConns unregisters them.
func (b *backend) addConns(conns ...io.Closer) {
	b.mu.Lock()
	if b.conns == nil {
		b.conns = make(map[io.Closer]struct{})
	}
	for _, c := range conns {
		b.conns[c] = struct{}{}
	}
	b.mu.Unlock()
}

func (b *backend) removeConns(conns ...io.Closer) {
	b.mu.Lock()
	for _, c := range conns {
		delete(b.conns, c)
	}
	b.mu.Unlock()
}

func (b *backend) snapshotConns() []io.Closer {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]io.Closer, 0, len(b.conns))
	for c := range b.conns {
		out = append(out, c)
	}
	return out
}

// routable reports whether admit would say yes right now, without
// reserving a slot.
func (b *backend) routable(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.drained || !b.probeOK {
		return false
	}
	if b.ejected {
		return !b.halfOpen && !now.Before(b.reopenAt)
	}
	return true
}

func (b *backend) stats(now time.Time) BackendStats {
	b.mu.Lock()
	bs := BackendStats{
		Addr:     b.spec.Addr,
		Draining: b.drained,
		Ejected:  b.ejected,
		ProbeOK:  b.probeOK,
		Active:   b.active,
	}
	bs.Routable = !b.drained && b.probeOK &&
		(!b.ejected || (!b.halfOpen && !now.Before(b.reopenAt)))
	b.mu.Unlock()
	bs.SessionsRouted = b.routed.Load()
	bs.Failures = b.failures.Load()
	bs.Refusals = b.refusals.Load()
	bs.ProbeFailures = b.probeFails.Load()
	return bs
}

// probeLoop polls one backend's ops endpoint until the fleet closes.
func (f *Fleet) probeLoop(b *backend) {
	defer f.probeWG.Done()
	client := &http.Client{Timeout: f.cfg.ProbeTimeout}
	ticker := time.NewTicker(f.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stopProbe:
			return
		case <-ticker.C:
		}
		b.probeResult(f, probeOnce(client, b.spec.Ops))
	}
}

// probeOnce asks one backend whether it is routable: GET /readyz, and
// when the backend predates /readyz (404), GET /healthz. Any transport
// error or non-200 status is a failing probe.
func probeOnce(client *http.Client, ops string) bool {
	code, _, err := probeGet(client, ops, "/readyz")
	if err != nil {
		return false
	}
	if code == http.StatusNotFound {
		code, _, err = probeGet(client, ops, "/healthz")
		if err != nil {
			return false
		}
	}
	return probeVerdict(code)
}

func probeGet(client *http.Client, ops, path string) (int, string, error) {
	resp, err := client.Get(fmt.Sprintf("http://%s%s", ops, path))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	return resp.StatusCode, string(body), nil
}

// probeVerdict maps a probe's HTTP status to routability. Split out of
// probeOnce so the fuzzer can drive it with arbitrary statuses.
func probeVerdict(code int) bool {
	return code == http.StatusOK
}
