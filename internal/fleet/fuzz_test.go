package fleet

import (
	"bytes"
	"testing"

	"haac/internal/server"
)

// FuzzFleetHello hammers the two parsing surfaces the proxy exposes to
// untrusted input: the client hello read by the router and the probe
// verdict. Invariants, for arbitrary bytes:
//
//   - ReadHelloFrame never panics, and the Raw bytes it captured are
//     exactly the prefix of the input it consumed — the proxy forwards
//     what it read, nothing more.
//   - An accepted hello re-parses from its own Raw to identical fields
//     (round-trip: relaying the captured bytes shows the backend the
//     same session the proxy routed).
//   - Routing over the parsed digest is deterministic and total: the
//     rendezvous ranking is a permutation of the backend set and two
//     rankings of the same digest agree.
func FuzzFleetHello(f *testing.F) {
	digest := bytes.Repeat([]byte{0xab}, 32)
	valid := append([]byte("HAAS\x01\x01\x00\x02\x00ab"), digest...)
	f.Add(valid)
	f.Add([]byte("HAAS\x01\x01\x00\x00\x00"))        // zero-length id: refused
	f.Add([]byte("HAAS\x02\x01\x00\x02\x00ab"))      // bad version
	f.Add([]byte("SAAH\x01\x01\x00\x02\x00ab"))      // bad magic
	f.Add(valid[:12])                                // truncated mid-id
	f.Add(append([]byte{}, valid[:len(valid)-7]...)) // truncated mid-digest
	f.Fuzz(func(t *testing.T, data []byte) {
		hf, err := server.ReadHelloFrame(bytes.NewReader(data))
		if !bytes.HasPrefix(data, hf.Raw) {
			t.Fatalf("Raw %x is not a prefix of the input %x", hf.Raw, data)
		}
		if err != nil {
			return
		}
		hf2, err2 := server.ReadHelloFrame(bytes.NewReader(hf.Raw))
		if err2 != nil {
			t.Fatalf("accepted hello failed to re-parse from its Raw bytes: %v", err2)
		}
		if hf2.ID != hf.ID || hf2.OT != hf.OT || hf2.Digest != hf.Digest {
			t.Fatalf("round-trip mismatch: %+v vs %+v", hf, hf2)
		}
		if !bytes.Equal(hf2.Raw, hf.Raw) {
			t.Fatalf("round-trip changed the raw encoding: %x vs %x", hf.Raw, hf2.Raw)
		}
		addrs := []string{"10.0.0.1:9100", "10.0.0.2:9100", "10.0.0.3:9100"}
		r1 := rankAddrs(hf.Digest, addrs)
		r2 := rankAddrs(hf.Digest, addrs)
		if len(r1) != len(addrs) {
			t.Fatalf("ranking dropped backends: %v", r1)
		}
		seen := map[string]bool{}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("routing not deterministic: %v vs %v", r1, r2)
			}
			seen[r1[i]] = true
		}
		if len(seen) != len(addrs) {
			t.Fatalf("ranking is not a permutation: %v", r1)
		}
	})
}
