package fleet

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"math/big"
	"net"
	"testing"
	"time"

	"haac/internal/ot"
	"haac/internal/server"
	"haac/internal/workloads"
)

// selfSignedTLS mints a throwaway loopback certificate pair for the
// fleet's TLS hops.
func selfSignedTLS(t *testing.T) (serverCfg, clientCfg *tls.Config) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "haac-fleet-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.IPv4(127, 0, 0, 1)},
		DNSNames:              []string{"localhost"},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	serverCfg = &tls.Config{Certificates: []tls.Certificate{{
		Certificate: [][]byte{der},
		PrivateKey:  key,
		Leaf:        leaf,
	}}}
	clientCfg = &tls.Config{RootCAs: pool, ServerName: "localhost"}
	return serverCfg, clientCfg
}

// TestFleetTLSBothHops runs TLS on both legs of the proxy: the client
// reaches the fleet over Config.TLS and the fleet reaches a TLS-serving
// backend over Config.BackendTLS. The spliced session stays
// byte-identical to the plaintext oracle — the proxy relays the
// decrypted handshake bytes verbatim, so TLS on either hop is invisible
// to the 2PC wire format.
func TestFleetTLSBothHops(t *testing.T) {
	serverCfg, clientCfg := selfSignedTLS(t)
	w := workloads.AddN(8)
	c := w.Build()
	garblerBits, _ := w.Inputs(1)
	srv, err := server.New(server.Config{
		Circuits: []server.CircuitSpec{{
			ID:      w.Name,
			Circuit: c,
			Inputs:  func() []bool { return garblerBits },
		}},
		Seed:            42,
		AllowInsecureOT: true,
		TLS:             serverCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	_, fleetAddr := startFleet(t, Config{
		Backends:      []Backend{{Addr: ln.Addr().String()}},
		ProbeInterval: -1,
		TLS:           serverCfg,
		BackendTLS:    clientCfg,
	})

	sess, err := server.Dial(fleetAddr, w.Name, c, server.Options{OT: ot.Insecure, TLS: clientCfg})
	if err != nil {
		t.Fatalf("TLS dial through fleet: %v", err)
	}
	defer sess.Close()
	for run := 0; run < 2; run++ {
		_, evalBits := w.Inputs(int64(200 + run))
		want, err := c.Eval(garblerBits, evalBits)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.Run(evalBits)
		if err != nil {
			t.Fatalf("run %d over double-TLS fleet: %v", run, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("run %d: output %d = %v, want %v", run, j, got[j], want[j])
			}
		}
	}
}
