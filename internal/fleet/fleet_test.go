package fleet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"haac/internal/circuit"
	"haac/internal/ot"
	"haac/internal/server"
	"haac/internal/workloads"
)

// specsFor builds the served circuit set shared by every backend of a
// test fleet: each workload with its seed-1 garbler bits.
func specsFor(ws ...workloads.Workload) []server.CircuitSpec {
	specs := make([]server.CircuitSpec, len(ws))
	for i, w := range ws {
		c := w.Build()
		garblerBits, _ := w.Inputs(1)
		specs[i] = server.CircuitSpec{
			ID:      w.Name,
			Circuit: c,
			Inputs:  func() []bool { return garblerBits },
		}
	}
	return specs
}

// launchServer starts one backend garbler on addr ("127.0.0.1:0" for an
// ephemeral port). The caller owns shutdown via the returned server.
func launchServer(t *testing.T, addr string, specs []server.CircuitSpec) (*server.Server, string) {
	t.Helper()
	srv, err := server.New(server.Config{
		Circuits:        specs,
		Seed:            42,
		AllowInsecureOT: true,
		DrainTimeout:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String()
}

// startFleet launches a fleet proxy on a loopback listener. Cleanup
// closes it and joins Serve.
func startFleet(t *testing.T, cfg Config) (*Fleet, string) {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Serve(ln) }()
	t.Cleanup(func() {
		f.Close()
		if err := <-done; err != nil {
			t.Errorf("fleet Serve returned %v", err)
		}
	})
	return f, ln.Addr().String()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// oracle computes the plaintext reference output.
func oracle(t *testing.T, w workloads.Workload, c *circuit.Circuit, evalSeed int64) ([]bool, []bool) {
	t.Helper()
	garblerBits, _ := w.Inputs(1)
	_, evalBits := w.Inputs(evalSeed)
	want, err := c.Eval(garblerBits, evalBits)
	if err != nil {
		t.Fatal(err)
	}
	return evalBits, want
}

// TestFleetShardsByDigestByteIdentical is the routing acceptance test:
// 16 sessions across 4 circuits through a 2-backend fleet all produce
// outputs identical to the plaintext oracle, and digest sharding lands
// every session of a circuit on the same backend — exactly one plan
// build per circuit fleet-wide (the global build hook), with the
// combined plan-cache hit/miss counters accounting for every session.
func TestFleetShardsByDigestByteIdentical(t *testing.T) {
	ws := []workloads.Workload{
		workloads.AddN(8), workloads.AddN(12), workloads.AddN(16), workloads.DotProduct(2, 8),
	}
	specs := specsFor(ws...)
	buildsBefore := circuit.PlanBuilds()

	srvA, addrA := launchServer(t, "127.0.0.1:0", specs)
	defer srvA.Close()
	srvB, addrB := launchServer(t, "127.0.0.1:0", specs)
	defer srvB.Close()

	f, fleetAddr := startFleet(t, Config{
		Backends:      []Backend{{Addr: addrA}, {Addr: addrB}},
		ProbeInterval: -1,
	})

	const sessionsPerCircuit = 4
	const runsPerSession = 2
	var wg sync.WaitGroup
	errc := make(chan error, len(ws)*sessionsPerCircuit)
	for wi, w := range ws {
		c := w.Build()
		for i := 0; i < sessionsPerCircuit; i++ {
			wg.Add(1)
			go func(wi, i int, w workloads.Workload, c *circuit.Circuit) {
				defer wg.Done()
				sess, err := server.Dial(fleetAddr, w.Name, c, server.Options{OT: ot.Insecure})
				if err != nil {
					errc <- fmt.Errorf("%s session %d: dial: %w", w.Name, i, err)
					return
				}
				defer sess.Close()
				for run := 0; run < runsPerSession; run++ {
					evalBits, want := oracle(t, w, c, int64(wi*1000+i*10+run))
					got, err := sess.Run(evalBits)
					if err != nil {
						errc <- fmt.Errorf("%s session %d run %d: %w", w.Name, i, run, err)
						return
					}
					for j := range want {
						if got[j] != want[j] {
							errc <- fmt.Errorf("%s session %d run %d: output %d = %v, want %v", w.Name, i, run, j, got[j], want[j])
							return
						}
					}
				}
			}(wi, i, w, c)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Drain both backends so every session's counters are final.
	srvA.Close()
	srvB.Close()

	if got := circuit.PlanBuilds() - buildsBefore; got != uint64(len(ws)) {
		t.Errorf("plans built fleet-wide = %d, want exactly %d (one per circuit — digest sharding keeps each circuit on one backend)", got, len(ws))
	}
	stA, stB := srvA.Stats(), srvB.Stats()
	total := uint64(len(ws) * sessionsPerCircuit)
	if lookups := stA.CacheHits + stA.CacheMisses + stB.CacheHits + stB.CacheMisses; lookups != total {
		t.Errorf("combined cache lookups = %d, want %d", lookups, total)
	}
	if hits := stA.CacheHits + stB.CacheHits; hits == 0 {
		t.Error("combined cache hits = 0, want warmed-cache hits from repeat sessions")
	}
	// The placement is a pure function of (digest, addr): recompute the
	// expected split and hold each backend to it exactly.
	var wantA, wantB uint64
	for _, w := range ws {
		if rankAddrs(circuit.Digest(w.Build()), []string{addrA, addrB})[0] == addrA {
			wantA += sessionsPerCircuit
		} else {
			wantB += sessionsPerCircuit
		}
	}
	if stA.SessionsTotal != wantA || stB.SessionsTotal != wantB {
		t.Errorf("sessions split A=%d B=%d, want %d/%d per the rendezvous ranking", stA.SessionsTotal, stB.SessionsTotal, wantA, wantB)
	}

	st := f.Stats()
	if st.SessionsRouted != total {
		t.Errorf("fleet SessionsRouted = %d, want %d", st.SessionsRouted, total)
	}
	if st.SessionsRefused != 0 || st.DialFailures != 0 {
		t.Errorf("fleet refused=%d dialFailures=%d, want 0/0 on a healthy fleet", st.SessionsRefused, st.DialFailures)
	}
	if st.BytesClientToBackend == 0 || st.BytesBackendToClient == 0 {
		t.Errorf("spliced bytes = %d/%d, want both > 0", st.BytesClientToBackend, st.BytesBackendToClient)
	}
}

// TestRendezvousRanking pins the routing function's properties: the
// order is deterministic, a permutation of the input, and removing the
// top-ranked backend leaves the relative order of the rest unchanged —
// the rendezvous guarantee that a backend failure only remaps sessions
// that were on the failed backend.
func TestRendezvousRanking(t *testing.T) {
	addrs := []string{"10.0.0.1:9100", "10.0.0.2:9100", "10.0.0.3:9100", "10.0.0.4:9100"}
	for i := 0; i < 32; i++ {
		var digest [32]byte
		for j := range digest {
			digest[j] = byte(i*31 + j)
		}
		r1 := rankAddrs(digest, addrs)
		r2 := rankAddrs(digest, addrs)
		if len(r1) != len(addrs) {
			t.Fatalf("ranking dropped addrs: %v", r1)
		}
		seen := map[string]bool{}
		for k := range r1 {
			if r1[k] != r2[k] {
				t.Fatalf("ranking not deterministic: %v vs %v", r1, r2)
			}
			seen[r1[k]] = true
		}
		if len(seen) != len(addrs) {
			t.Fatalf("ranking not a permutation: %v", r1)
		}
		// Remove the winner; the rest must keep their order.
		rest := rankAddrs(digest, r1[1:])
		for k := range rest {
			if rest[k] != r1[k+1] {
				t.Fatalf("removal reshuffled survivors: %v vs %v", rest, r1[1:])
			}
		}
	}
}

// TestFleetFailoverAndBreakerReadmission kills the rendezvous-first
// backend of a circuit and checks the full breaker arc: sessions fail
// over to the survivor within the same attempt, consecutive dial
// failures eject the dead backend, and after it restarts a half-open
// trial session readmits it.
func TestFleetFailoverAndBreakerReadmission(t *testing.T) {
	w := workloads.AddN(8)
	c := w.Build()
	specs := specsFor(w)
	digest := circuit.Digest(c)

	lnX, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnY, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrX, addrY := lnX.Addr().String(), lnY.Addr().String()
	// Deterministically kill the backend this circuit routes to first.
	ranked := rankAddrs(digest, []string{addrX, addrY})
	deadAddr := ranked[0]
	deadLn, liveLn := lnX, lnY
	if deadAddr != addrX {
		deadLn, liveLn = lnY, lnX
	}
	deadLn.Close()
	srv, err := server.New(server.Config{Circuits: specs, Seed: 42, AllowInsecureOT: true})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(liveLn)
	defer srv.Close()

	f, fleetAddr := startFleet(t, Config{
		Backends:      []Backend{{Addr: addrX}, {Addr: addrY}},
		ProbeInterval: -1,
		FailThreshold: 2,
		ReopenAfter:   30 * time.Millisecond,
	})

	runOnce := func(i int) {
		t.Helper()
		sess, err := server.Dial(fleetAddr, w.Name, c, server.Options{OT: ot.Insecure})
		if err != nil {
			t.Fatalf("session %d: dial: %v", i, err)
		}
		defer sess.Close()
		evalBits, want := oracle(t, w, c, int64(i))
		got, err := sess.Run(evalBits)
		if err != nil {
			t.Fatalf("session %d: run: %v", i, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("session %d: output %d = %v, want %v", i, j, got[j], want[j])
			}
		}
	}
	for i := 0; i < 3; i++ {
		runOnce(i)
	}
	st := f.Stats()
	if st.Failovers != 3 {
		t.Errorf("Failovers = %d, want 3 (every session routed past the dead rendezvous-first backend)", st.Failovers)
	}
	if st.DialFailures != 2 {
		t.Errorf("DialFailures = %d, want 2 (third session skipped the ejected backend without dialing)", st.DialFailures)
	}
	if st.Ejections != 1 {
		t.Errorf("Ejections = %d, want 1", st.Ejections)
	}
	var dead BackendStats
	for _, bs := range st.Backends {
		if bs.Addr == deadAddr {
			dead = bs
		}
	}
	if !dead.Ejected || dead.Routable {
		t.Errorf("dead backend state = %+v, want ejected and unroutable", dead)
	}
	if st.LiveBackends != 1 {
		t.Errorf("LiveBackends = %d, want 1", st.LiveBackends)
	}

	// Restart the dead backend on its old address; once ReopenAfter
	// passes, the next session is the half-open trial that readmits it.
	ln2, err := net.Listen("tcp", deadAddr)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := server.New(server.Config{Circuits: specs, Seed: 43, AllowInsecureOT: true})
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln2)
	defer srv2.Close()
	time.Sleep(40 * time.Millisecond)
	runOnce(3)
	st = f.Stats()
	if st.Readmissions != 1 {
		t.Errorf("Readmissions = %d, want 1 (half-open trial readmitted the restarted backend)", st.Readmissions)
	}
	if st.LiveBackends != 2 {
		t.Errorf("LiveBackends = %d, want 2 after readmission", st.LiveBackends)
	}
	if srv2.Stats().SessionsTotal != 1 {
		t.Errorf("restarted backend served %d sessions, want 1 (the trial)", srv2.Stats().SessionsTotal)
	}
}

// TestFleetRelaysBackendRefusalVerbatim fronts a backend that refuses
// every session busy: the client must see the typed ErrBusy exactly as
// if it had dialed the backend directly.
func TestFleetRelaysBackendRefusalVerbatim(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if _, err := server.ReadHelloFrame(conn); err != nil {
					return
				}
				server.WriteRefusal(conn, server.ErrBusy, "")
			}(conn)
		}
	}()

	f, fleetAddr := startFleet(t, Config{
		Backends:      []Backend{{Addr: ln.Addr().String()}},
		ProbeInterval: -1,
	})
	w := workloads.AddN(8)
	_, err = server.Dial(fleetAddr, w.Name, w.Build(), server.Options{OT: ot.Insecure})
	if !errors.Is(err, server.ErrBusy) {
		t.Fatalf("dial through fleet = %v, want ErrBusy relayed from the backend", err)
	}
	st := f.Stats()
	if st.BackendRefusals != 1 {
		t.Errorf("BackendRefusals = %d, want 1", st.BackendRefusals)
	}
	if st.SessionsRouted != 0 {
		t.Errorf("SessionsRouted = %d, want 0 (a refused session was not routed)", st.SessionsRouted)
	}
}

// TestFleetRefusesBusyWithNoLiveBackend drains the only backend: the
// fleet itself must refuse the handshake with a typed busy, and Drain
// of an unknown address must fail.
func TestFleetRefusesBusyWithNoLiveBackend(t *testing.T) {
	w := workloads.AddN(8)
	specs := specsFor(w)
	srv, addr := launchServer(t, "127.0.0.1:0", specs)
	defer srv.Close()
	f, fleetAddr := startFleet(t, Config{
		Backends:      []Backend{{Addr: addr}},
		ProbeInterval: -1,
	})
	if err := f.Drain("127.0.0.1:1"); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("Drain(unknown) = %v, want ErrUnknownBackend", err)
	}
	if err := f.Drain(addr); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	_, err := server.Dial(fleetAddr, w.Name, w.Build(), server.Options{OT: ot.Insecure})
	if !errors.Is(err, server.ErrBusy) {
		t.Fatalf("dial with all backends drained = %v, want ErrBusy", err)
	}
	if st := f.Stats(); st.SessionsRefused != 1 || st.LiveBackends != 0 {
		t.Errorf("refused=%d live=%d, want 1 refused, 0 live", st.SessionsRefused, st.LiveBackends)
	}
	if err := f.Undrain(addr); err != nil {
		t.Fatalf("Undrain: %v", err)
	}
	sess, err := server.Dial(fleetAddr, w.Name, w.Build(), server.Options{OT: ot.Insecure})
	if err != nil {
		t.Fatalf("dial after Undrain: %v", err)
	}
	sess.Close()
}

// TestFleetProbeGatesRouting drives the active prober: a backend whose
// /readyz answers 503 stops receiving routes without any client paying
// for a failure, and recovers when the probe succeeds again. The
// /healthz fallback covers backends predating /readyz.
func TestFleetProbeGatesRouting(t *testing.T) {
	w := workloads.AddN(8)
	specs := specsFor(w)
	srv, addr := launchServer(t, "127.0.0.1:0", specs)
	defer srv.Close()

	var code atomic.Int64
	code.Store(http.StatusOK)
	ops := httptest.NewServer(http.HandlerFunc(func(wr http.ResponseWriter, r *http.Request) {
		wr.WriteHeader(int(code.Load()))
	}))
	defer ops.Close()
	opsAddr := strings.TrimPrefix(ops.URL, "http://")

	f, fleetAddr := startFleet(t, Config{
		Backends:      []Backend{{Addr: addr, Ops: opsAddr}},
		ProbeInterval: 5 * time.Millisecond,
	})
	routable := func() bool { return f.Stats().LiveBackends == 1 }
	waitFor(t, "healthy probe", time.Second, routable)

	code.Store(http.StatusServiceUnavailable)
	waitFor(t, "failing probe to park the backend", time.Second, func() bool { return !routable() })
	_, err := server.Dial(fleetAddr, w.Name, w.Build(), server.Options{OT: ot.Insecure})
	if !errors.Is(err, server.ErrBusy) {
		t.Fatalf("dial with probe-failed backend = %v, want ErrBusy", err)
	}

	code.Store(http.StatusOK)
	waitFor(t, "recovering probe to readmit the backend", time.Second, routable)
	sess, err := server.Dial(fleetAddr, w.Name, w.Build(), server.Options{OT: ot.Insecure})
	if err != nil {
		t.Fatalf("dial after probe recovery: %v", err)
	}
	sess.Close()
	if pf := f.Stats().Backends[0].ProbeFailures; pf == 0 {
		t.Error("ProbeFailures = 0, want > 0 after the 503 window")
	}
}

// TestFleetProbeFallsBackToHealthz probes a backend whose ops surface
// only has /healthz (404 on /readyz): the prober must fall back and
// keep the backend routable.
func TestFleetProbeFallsBackToHealthz(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	ops := httptest.NewServer(mux)
	defer ops.Close()

	w := workloads.AddN(8)
	srv, addr := launchServer(t, "127.0.0.1:0", specsFor(w))
	defer srv.Close()
	f, _ := startFleet(t, Config{
		Backends:      []Backend{{Addr: addr, Ops: strings.TrimPrefix(ops.URL, "http://")}},
		ProbeInterval: 5 * time.Millisecond,
	})
	// Outlast several probe cycles: the backend must stay routable.
	time.Sleep(50 * time.Millisecond)
	if st := f.Stats(); st.LiveBackends != 1 || st.Backends[0].ProbeFailures != 0 {
		t.Errorf("live=%d probeFailures=%d, want 1 live with 0 failures via /healthz fallback", st.LiveBackends, st.Backends[0].ProbeFailures)
	}
}

// TestFleetRollingRestart is the drain-and-handoff acceptance test:
// three backends under continuous client load are restarted one at a
// time (Drain, stop, restart on the same address, Undrain) and every
// client run completes byte-identical — zero client-visible failures,
// with the healing visible as reconnects > 0.
func TestFleetRollingRestart(t *testing.T) {
	ws := []workloads.Workload{workloads.AddN(8), workloads.AddN(12), workloads.DotProduct(2, 8)}
	specs := specsFor(ws...)

	const nBackends = 3
	srvs := make([]*server.Server, nBackends)
	addrs := make([]string, nBackends)
	for i := range srvs {
		srvs[i], addrs[i] = launchServer(t, "127.0.0.1:0", specs)
	}
	defer func() {
		for _, srv := range srvs {
			srv.Close()
		}
	}()

	f, fleetAddr := startFleet(t, Config{
		Backends: []Backend{{Addr: addrs[0]}, {Addr: addrs[1]}, {Addr: addrs[2]}},
		// No active probing: the restart choreography must work on
		// Drain/Undrain and the breaker alone.
		ProbeInterval: -1,
		FailThreshold: 2,
		ReopenAfter:   20 * time.Millisecond,
		DrainTimeout:  100 * time.Millisecond,
	})

	stop := make(chan struct{})
	const nClients = 6
	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	var runs, reconnects atomic.Uint64
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := ws[i%len(ws)]
			c := w.Build()
			sess, err := server.Dial(fleetAddr, w.Name, c, server.Options{
				OT: ot.Insecure,
				Retry: server.RetryPolicy{
					MaxAttempts:      100,
					BaseBackoff:      time.Millisecond,
					MaxBackoff:       8 * time.Millisecond,
					HandshakeTimeout: 500 * time.Millisecond,
					Seed:             uint64(i + 1),
				},
			})
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %w", i, err)
				return
			}
			defer sess.Close()
			for run := 0; ; run++ {
				select {
				case <-stop:
					reconnects.Add(sess.Stats().Reconnects)
					return
				default:
				}
				evalBits, want := oracle(t, w, c, int64(i*1000+run))
				got, err := sess.Run(evalBits)
				if err != nil {
					errs <- fmt.Errorf("client %d run %d: %w", i, run, err)
					return
				}
				for j := range want {
					if got[j] != want[j] {
						errs <- fmt.Errorf("client %d run %d: output %d = %v, want %v", i, run, j, got[j], want[j])
						return
					}
				}
				runs.Add(1)
			}
		}(i)
	}

	// Let every client settle onto a backend, then roll the fleet.
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < nBackends; i++ {
		if err := f.Drain(addrs[i]); err != nil {
			t.Errorf("Drain(%s): %v", addrs[i], err)
		}
		srvs[i].Close()
		srv, addr := launchServer(t, addrs[i], specs)
		if addr != addrs[i] {
			t.Errorf("restart rebound %s as %s", addrs[i], addr)
		}
		srvs[i] = srv
		if err := f.Undrain(addrs[i]); err != nil {
			t.Errorf("Undrain(%s): %v", addrs[i], err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if runs.Load() == 0 {
		t.Fatal("no client runs completed")
	}
	if reconnects.Load() == 0 {
		t.Error("reconnects = 0, want > 0: the rolling restart should have broken and healed at least one session")
	}
	t.Logf("rolling restart: %d runs, %d reconnects, fleet stats %+v", runs.Load(), reconnects.Load(), f.Stats())
}

// TestFleetOpsEndpoints covers the proxy's own sidecar: /healthz,
// /readyz keyed on live backends, and the Prometheus metrics surface
// with per-backend series.
func TestFleetOpsEndpoints(t *testing.T) {
	w := workloads.AddN(8)
	srv, addr := launchServer(t, "127.0.0.1:0", specsFor(w))
	defer srv.Close()
	f, fleetAddr := startFleet(t, Config{
		Backends:      []Backend{{Addr: addr}},
		ProbeInterval: -1,
	})
	opsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	opsDone := make(chan error, 1)
	go func() { opsDone <- f.ServeOps(opsLn) }()
	base := "http://" + opsLn.Addr().String()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz = %d, want 200 with a live backend", code)
	}

	// Route one session so the counters move.
	sess, err := server.Dial(fleetAddr, w.Name, w.Build(), server.Options{OT: ot.Insecure})
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()

	_, metrics := get("/metrics")
	for _, name := range []string{
		"haac_fleet_backends_live", "haac_fleet_backends_total",
		"haac_fleet_sessions_active", "haac_fleet_sessions_routed_total",
		"haac_fleet_sessions_refused_total", "haac_fleet_failovers_total",
		"haac_fleet_dial_failures_total", "haac_fleet_backend_refusals_total",
		"haac_fleet_ejections_total", "haac_fleet_readmissions_total",
		"haac_fleet_sessions_force_closed_total",
		"haac_fleet_bytes_client_to_backend_total", "haac_fleet_bytes_backend_to_client_total",
		"haac_fleet_backend_up", "haac_fleet_backend_sessions_routed_total",
		"haac_fleet_backend_failures_total",
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if !strings.Contains(metrics, "haac_fleet_sessions_routed_total 1") {
		t.Errorf("/metrics routed counter did not advance:\n%s", metrics)
	}
	if !strings.Contains(metrics, fmt.Sprintf("haac_fleet_backend_up{backend=%q} 1", addr)) {
		t.Errorf("/metrics missing per-backend up series for %s", addr)
	}

	if err := f.Drain(addr); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "no live backend") {
		t.Errorf("/readyz with all backends drained = %d %q, want 503 no live backend", code, body)
	}

	f.Close()
	if err := <-opsDone; err != nil {
		t.Errorf("ServeOps returned %v after Close, want nil", err)
	}
	// A pooled keep-alive connection may still answer one last request,
	// but it must report the fleet as down; fresh connections fail.
	if resp, err := http.Get(base + "/healthz"); err == nil {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/healthz after Close = %d, want 503 draining", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestFleetServeAfterCloseRefuses pins the lifecycle edges: Serve and
// ServeOps on a closed fleet refuse with ErrClosed, Close is
// idempotent, and New rejects empty and duplicate backend sets.
func TestFleetServeAfterCloseRefuses(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no backends succeeded, want error")
	}
	if _, err := New(Config{Backends: []Backend{{Addr: "a:1"}, {Addr: "a:1"}}}); err == nil {
		t.Error("New with duplicate backends succeeded, want error")
	}
	if _, err := New(Config{Backends: []Backend{{}}}); err == nil {
		t.Error("New with empty backend address succeeded, want error")
	}

	f, err := New(Config{Backends: []Backend{{Addr: "127.0.0.1:1"}}, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Serve(ln); !errors.Is(err, ErrClosed) {
		t.Errorf("Serve after Close = %v, want ErrClosed", err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ServeOps(ln2); !errors.Is(err, ErrClosed) {
		t.Errorf("ServeOps after Close = %v, want ErrClosed", err)
	}
}
