package fleet

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Operations sidecar for the proxy itself, mirroring the backend
// server's: /healthz for liveness, /readyz for routability (at least
// one live backend), /metrics for Prometheus text exposition of Stats.

// OpsHandler returns the HTTP handler serving /healthz, /readyz and
// /metrics for the fleet proxy.
func (f *Fleet) OpsHandler() http.Handler {
	plain := func(w http.ResponseWriter, code int, body string) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(code)
		fmt.Fprintln(w, body)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if f.isClosing() {
			plain(w, http.StatusServiceUnavailable, "draining")
			return
		}
		plain(w, http.StatusOK, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case f.isClosing():
			plain(w, http.StatusServiceUnavailable, "draining")
		case f.Stats().LiveBackends == 0:
			plain(w, http.StatusServiceUnavailable, "no live backend")
		default:
			plain(w, http.StatusOK, "ok")
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(f.MetricsText()))
	})
	return mux
}

// ServeOps serves the operations endpoints on ln until the fleet
// closes; like Serve it returns nil after Close and the listener's
// error otherwise.
func (f *Fleet) ServeOps(ln net.Listener) error {
	f.mu.Lock()
	if f.closing {
		f.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	f.listeners[ln] = struct{}{}
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		delete(f.listeners, ln)
		f.mu.Unlock()
		ln.Close()
	}()
	srv := &http.Server{Handler: f.OpsHandler(), ReadHeaderTimeout: 10 * time.Second}
	err := srv.Serve(ln)
	if f.isClosing() {
		return nil
	}
	return err
}

// MetricsText renders the Prometheus text exposition of the fleet's
// counters. Aggregates use the haac_fleet_ prefix; per-backend series
// carry a backend label.
func (f *Fleet) MetricsText() string {
	st := f.Stats()
	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	gauge("haac_fleet_backends_live", "Backends currently routable.", float64(st.LiveBackends))
	gauge("haac_fleet_backends_total", "Backends configured.", float64(len(st.Backends)))
	gauge("haac_fleet_sessions_active", "Sessions currently spliced to a backend.", float64(st.ActiveSessions))
	counter("haac_fleet_sessions_routed_total", "Sessions relayed to a backend.", float64(st.SessionsRouted))
	counter("haac_fleet_sessions_pooled_total", "Routed sessions granted the precomputed-OT tier by their backend.", float64(st.SessionsPooled))
	counter("haac_fleet_sessions_refused_total", "Sessions refused because no backend was routable.", float64(st.SessionsRefused))
	counter("haac_fleet_failovers_total", "Sessions routed past their rendezvous-first backend.", float64(st.Failovers))
	counter("haac_fleet_dial_failures_total", "Failed backend dials.", float64(st.DialFailures))
	counter("haac_fleet_backend_refusals_total", "Busy/draining refusals relayed from backends to clients.", float64(st.BackendRefusals))
	counter("haac_fleet_ejections_total", "Circuit-breaker ejections.", float64(st.Ejections))
	counter("haac_fleet_readmissions_total", "Circuit-breaker readmissions (half-open trial or probe recovery).", float64(st.Readmissions))
	counter("haac_fleet_sessions_force_closed_total", "Splices force-closed after the drain grace period.", float64(st.SessionsForceClosed))
	counter("haac_fleet_sessions_panicked_total", "Sessions whose routing or splice goroutine panicked and was contained.", float64(st.SessionsPanicked))
	counter("haac_fleet_bytes_client_to_backend_total", "Bytes spliced client to backend.", float64(st.BytesClientToBackend))
	counter("haac_fleet_bytes_backend_to_client_total", "Bytes spliced backend to client.", float64(st.BytesBackendToClient))

	backends := append([]BackendStats(nil), st.Backends...)
	sort.Slice(backends, func(i, j int) bool { return backends[i].Addr < backends[j].Addr })
	series := func(name, help, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	series("haac_fleet_backend_up", "1 while the backend is routable, 0 otherwise.", "gauge")
	for _, bs := range backends {
		fmt.Fprintf(&b, "haac_fleet_backend_up{backend=%q} %g\n", bs.Addr, b2f(bs.Routable))
	}
	series("haac_fleet_backend_sessions_routed_total", "Sessions relayed to the backend.", "counter")
	for _, bs := range backends {
		fmt.Fprintf(&b, "haac_fleet_backend_sessions_routed_total{backend=%q} %g\n", bs.Addr, float64(bs.SessionsRouted))
	}
	series("haac_fleet_backend_failures_total", "Dial/handshake-relay failures charged to the backend.", "counter")
	for _, bs := range backends {
		fmt.Fprintf(&b, "haac_fleet_backend_failures_total{backend=%q} %g\n", bs.Addr, float64(bs.Failures))
	}
	return b.String()
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
