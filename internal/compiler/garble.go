package compiler

import (
	"fmt"

	"haac/internal/gc"
	"haac/internal/isa"
	"haac/internal/label"
)

// Garbled execution of compiled HAAC programs. This is the full
// co-design path: the Garbler-side accelerator garbles gates in the
// compiler's (post-reorder) program order, emitting each AND gate's
// table into the owning gate engine's table queue; the Evaluator-side
// accelerator replays its instruction streams, popping tables and
// out-of-range wires from its queues. Hash tweaks are the instructions'
// output wire addresses — unique by renaming and derivable from the PC,
// so no gate-index metadata needs to be streamed.
//
// Together with Compiled.Execute (the plaintext replay), this proves the
// compiler's reordering/renaming/ESW/stream passes preserve not only the
// Boolean function but the garbling-scheme semantics end to end.

// ProgramGarbled is the garbler's output for one compiled program.
type ProgramGarbled struct {
	// R is the FreeXOR offset.
	R label.L
	// InputZeros holds the zero-label per program input (InputAddrs
	// order).
	InputZeros []label.L
	// Tables holds each GE's table queue in stream order.
	Tables [][]gc.Material
	// OutputZeros holds the zero-label per program output.
	OutputZeros []label.L
}

// DecodeBits returns the point-and-permute decode bit per output.
func (pg *ProgramGarbled) DecodeBits() []int {
	d := make([]int, len(pg.OutputZeros))
	for i, z := range pg.OutputZeros {
		d[i] = z.Colour()
	}
	return d
}

// Decode maps active output labels to plaintext bits, rejecting labels
// that are neither of a wire's two valid labels.
func (pg *ProgramGarbled) Decode(outputs []label.L) ([]bool, error) {
	if len(outputs) != len(pg.OutputZeros) {
		return nil, fmt.Errorf("compiler: got %d output labels, want %d", len(outputs), len(pg.OutputZeros))
	}
	bits := make([]bool, len(outputs))
	for i, l := range outputs {
		switch l {
		case pg.OutputZeros[i]:
			bits[i] = false
		case pg.OutputZeros[i].Xor(pg.R):
			bits[i] = true
		default:
			return nil, fmt.Errorf("compiler: output %d label invalid", i)
		}
	}
	return bits, nil
}

// Garble garbles the compiled program (the HAAC Garbler's job),
// producing per-GE table queues.
func (cp *Compiled) Garble(h gc.Hasher, src *label.Source) (*ProgramGarbled, error) {
	p := &cp.Program
	r := src.NextDelta()
	zeros := make([]label.L, p.MaxAddr+1)

	pg := &ProgramGarbled{
		R:          r,
		InputZeros: make([]label.L, len(p.InputAddrs)),
		Tables:     make([][]gc.Material, len(cp.Streams)),
	}
	for i, a := range p.InputAddrs {
		zeros[a] = src.Next()
		pg.InputZeros[i] = zeros[a]
	}

	for j := range p.Instrs {
		in := &p.Instrs[j]
		if in.Op == isa.NOP {
			continue
		}
		o := p.OutAddrs[j]
		a := in.A
		if a == isa.OoR {
			a = cp.oorA[j]
		}
		b := in.B
		if b == isa.OoR {
			b = cp.oorB[j]
		}
		switch in.Op {
		case isa.XOR:
			zeros[o] = zeros[a].Xor(zeros[b])
		case isa.AND:
			m, c0 := gc.GarbleAND(h, zeros[a], zeros[b], r, uint64(o))
			zeros[o] = c0
			g := cp.GEOf[j]
			pg.Tables[g] = append(pg.Tables[g], m)
		default:
			return nil, fmt.Errorf("compiler: cannot garble op %v", in.Op)
		}
	}
	pg.OutputZeros = make([]label.L, len(p.OutputAddrs))
	for i, a := range p.OutputAddrs {
		pg.OutputZeros[i] = zeros[a]
	}
	return pg, nil
}

// EncodeProgramInputs maps plaintext program-input bits (InputBits
// layout) to active labels.
func (pg *ProgramGarbled) EncodeProgramInputs(bits []bool) ([]label.L, error) {
	if len(bits) != len(pg.InputZeros) {
		return nil, fmt.Errorf("compiler: got %d input bits, want %d", len(bits), len(pg.InputZeros))
	}
	out := make([]label.L, len(bits))
	for i, v := range bits {
		out[i] = pg.InputZeros[i]
		if v {
			out[i] = out[i].Xor(pg.R)
		}
	}
	return out, nil
}

// EvaluateLabels replays the per-GE streams with real labels (the HAAC
// Evaluator's job): AND instructions pop their GE's table queue, OoR
// operands pop the GE's OoRW queue.
func (cp *Compiled) EvaluateLabels(h gc.Hasher, inputs []label.L, tables [][]gc.Material) ([]label.L, error) {
	p := &cp.Program
	if len(inputs) != len(p.InputAddrs) {
		return nil, fmt.Errorf("compiler: got %d input labels, want %d", len(inputs), len(p.InputAddrs))
	}
	if len(tables) != len(cp.Streams) {
		return nil, fmt.Errorf("compiler: got %d table queues, want %d", len(tables), len(cp.Streams))
	}
	labels := make([]label.L, p.MaxAddr+1)
	for i, a := range p.InputAddrs {
		labels[a] = inputs[i]
	}
	tPos := make([]int, len(tables))
	oPos := make([]int, len(cp.OoRW))

	for j := range p.Instrs {
		in := &p.Instrs[j]
		if in.Op == isa.NOP {
			continue
		}
		g := cp.GEOf[j]
		a := in.A
		if a == isa.OoR {
			if oPos[g] >= len(cp.OoRW[g]) {
				return nil, fmt.Errorf("compiler: GE %d OoRW underflow at instruction %d", g, j)
			}
			a = cp.OoRW[g][oPos[g]]
			oPos[g]++
		}
		b := in.B
		if b == isa.OoR {
			if oPos[g] >= len(cp.OoRW[g]) {
				return nil, fmt.Errorf("compiler: GE %d OoRW underflow at instruction %d", g, j)
			}
			b = cp.OoRW[g][oPos[g]]
			oPos[g]++
		}
		o := p.OutAddrs[j]
		switch in.Op {
		case isa.XOR:
			labels[o] = labels[a].Xor(labels[b])
		case isa.AND:
			if tPos[g] >= len(tables[g]) {
				return nil, fmt.Errorf("compiler: GE %d table queue underflow at instruction %d", g, j)
			}
			labels[o] = gc.EvalAND(h, labels[a], labels[b], tables[g][tPos[g]], uint64(o))
			tPos[g]++
		}
	}
	for g := range tables {
		if tPos[g] != len(tables[g]) {
			return nil, fmt.Errorf("compiler: GE %d left %d tables unconsumed", g, len(tables[g])-tPos[g])
		}
	}
	out := make([]label.L, len(p.OutputAddrs))
	for i, a := range p.OutputAddrs {
		out[i] = labels[a]
	}
	return out, nil
}
