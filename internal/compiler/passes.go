package compiler

import (
	"haac/internal/circuit"
	"haac/internal/isa"
)

// aInstr is an assembled instruction still carrying circuit wire ids.
type aInstr struct {
	op   isa.Op
	a, b uint32 // circuit wire ids
	out  uint32 // circuit wire id
}

// asmState carries the program between passes.
type asmState struct {
	instrs []aInstr
	// inputWires lists the circuit's input-like wires, in order, plus a
	// synthetic constant-one wire if INV lowering required one.
	inputWires []uint32
	// synthConstOne is set when a constant-one wire was appended.
	synthConstOne   bool
	numCircuitWires int
}

// assemble lowers the circuit into HAAC's two-opcode form (§3.1.3) —
// XOR and AND survive, INV becomes XOR with a constant-one wire — and
// then rewrites the gate list into the depth-first schedule EMP-produced
// netlists have (§4.2.1: "instructions are scheduled following a
// depth-first circuit traversal, i.e., in tight producer-consumer
// relationships"). That order is the paper's Baseline; the reordering
// passes start from it.
func assemble(c *circuit.Circuit) *asmState {
	s := assembleRaw(c)
	s.depthFirst(c)
	return s
}

func assembleRaw(c *circuit.Circuit) *asmState {
	s := &asmState{numCircuitWires: c.NumWires}
	nin := c.NumInputs()
	for w := 0; w < nin; w++ {
		s.inputWires = append(s.inputWires, uint32(w))
	}

	constOne := uint32(0)
	haveConst := false
	if c.HasConst {
		constOne = c.Const1
		haveConst = true
	}
	s.instrs = make([]aInstr, 0, len(c.Gates))
	for i := range c.Gates {
		g := &c.Gates[i]
		switch g.Op {
		case circuit.XOR:
			s.instrs = append(s.instrs, aInstr{op: isa.XOR, a: g.A, b: g.B, out: g.C})
		case circuit.AND:
			s.instrs = append(s.instrs, aInstr{op: isa.AND, a: g.A, b: g.B, out: g.C})
		case circuit.INV:
			if !haveConst {
				// Append a synthetic constant-one input wire.
				constOne = uint32(s.numCircuitWires)
				s.numCircuitWires++
				s.inputWires = append(s.inputWires, constOne)
				s.synthConstOne = true
				haveConst = true
			}
			s.instrs = append(s.instrs, aInstr{op: isa.XOR, a: g.A, b: constOne, out: g.C})
		}
	}
	return s
}

// depthFirst rewrites the instruction list into a depth-first traversal
// from the circuit outputs: each gate is emitted immediately after the
// subtrees producing its operands, yielding the tight producer-consumer
// chains characteristic of EMP netlists. Gates that feed no output
// (dead code kept for fidelity) are traversed afterwards in original
// order. The result is a valid execution order.
func (s *asmState) depthFirst(c *circuit.Circuit) {
	n := len(s.instrs)
	if n == 0 {
		return
	}
	// Producing instruction per wire (-1 for inputs).
	prod := make([]int32, s.numCircuitWires)
	for i := range prod {
		prod[i] = -1
	}
	for i := range s.instrs {
		prod[s.instrs[i].out] = int32(i)
	}

	order := make([]aInstr, 0, n)
	state := make([]uint8, n) // 0 unvisited, 1 expanded, 2 emitted
	var stack []int32

	visit := func(root int32) {
		if root < 0 || state[root] == 2 {
			return
		}
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			g := stack[len(stack)-1]
			if state[g] == 2 {
				stack = stack[:len(stack)-1]
				continue
			}
			if state[g] == 1 {
				state[g] = 2
				order = append(order, s.instrs[g])
				stack = stack[:len(stack)-1]
				continue
			}
			state[g] = 1
			in := &s.instrs[g]
			// Push operand producers (b first so a's subtree emits
			// first, keeping left-to-right evaluation order).
			if pb := prod[in.b]; pb >= 0 && state[pb] != 2 {
				stack = append(stack, pb)
			}
			if pa := prod[in.a]; pa >= 0 && state[pa] != 2 {
				stack = append(stack, pa)
			}
		}
	}
	for _, o := range c.Outputs {
		visit(prod[o])
	}
	for i := 0; i < n; i++ {
		if state[i] != 2 {
			visit(int32(i))
		}
	}
	s.instrs = order
}

// reorder rewrites the instruction list in dependence-level order within
// consecutive segments of segSize instructions (§4.2.1). segSize >= the
// program length gives Full Reorder. The sort is stable within a level,
// preserving the baseline's locality as a tiebreak.
func (s *asmState) reorder(segSize int) {
	if segSize < 1 {
		segSize = 1
	}
	wlvl := make([]int32, s.numCircuitWires)
	wseg := make([]int32, s.numCircuitWires)
	for i := range wseg {
		wseg[i] = -1
	}
	out := make([]aInstr, 0, len(s.instrs))
	var levels []int32
	var buckets [][]int32

	for segStart := 0; segStart < len(s.instrs); segStart += segSize {
		end := segStart + segSize
		if end > len(s.instrs) {
			end = len(s.instrs)
		}
		seg := s.instrs[segStart:end]
		segID := int32(segStart)

		levels = levels[:0]
		maxLvl := int32(0)
		for i := range seg {
			in := &seg[i]
			var l int32
			if wseg[in.a] == segID {
				l = wlvl[in.a]
			}
			if wseg[in.b] == segID && wlvl[in.b] > l {
				l = wlvl[in.b]
			}
			l++
			wlvl[in.out] = l
			wseg[in.out] = segID
			levels = append(levels, l)
			if l > maxLvl {
				maxLvl = l
			}
		}
		// Bucket the segment's instructions by level, preserving order.
		if cap(buckets) < int(maxLvl)+1 {
			buckets = make([][]int32, maxLvl+1)
		}
		buckets = buckets[:maxLvl+1]
		for i := range buckets {
			buckets[i] = buckets[i][:0]
		}
		for i, l := range levels {
			buckets[l] = append(buckets[l], int32(i))
		}
		for l := int32(1); l <= maxLvl; l++ {
			for _, i := range buckets[l] {
				out = append(out, seg[i])
			}
		}
	}
	s.instrs = out
}

// addrAllocator hands out logical wire addresses, starting at 1 and
// skipping multiples of 2^17 so no in-range wire can alias the OoR
// sentinel after 17-bit truncation (see package isa).
type addrAllocator struct{ next uint32 }

func newAddrAllocator() *addrAllocator { return &addrAllocator{next: 1} }

func (a *addrAllocator) alloc() uint32 {
	if a.next%(1<<isa.AddrBits) == 0 {
		a.next++
	}
	v := a.next
	a.next++
	return v
}

// rename performs the §4.2.2 pass: every input wire and then every
// instruction output, in (post-reorder) program order, receives the next
// sequential logical address; instruction inputs are rewritten through
// the resulting map. This is what makes the SWW's contiguous window
// meaningful and lets hardware derive output addresses from the PC.
func (s *asmState) rename(c *circuit.Circuit) isa.Program {
	alloc := newAddrAllocator()
	addrOf := make([]uint32, s.numCircuitWires)

	p := isa.Program{
		NumInputs:  len(s.inputWires),
		InputAddrs: make([]uint32, len(s.inputWires)),
		Instrs:     make([]isa.Instr, len(s.instrs)),
		OutAddrs:   make([]uint32, len(s.instrs)),
	}
	for i, w := range s.inputWires {
		a := alloc.alloc()
		addrOf[w] = a
		p.InputAddrs[i] = a
	}
	for i := range s.instrs {
		in := &s.instrs[i]
		p.Instrs[i] = isa.Instr{
			Op: in.op,
			A:  addrOf[in.a],
			B:  addrOf[in.b],
		}
		o := alloc.alloc()
		addrOf[in.out] = o
		p.OutAddrs[i] = o
	}
	p.OutputAddrs = make([]uint32, len(c.Outputs))
	for i, o := range c.Outputs {
		p.OutputAddrs[i] = addrOf[o]
	}
	p.MaxAddr = alloc.next - 1
	return p
}

// markOoRAndLive classifies every instruction input as in-window or
// out-of-range under the SWW sliding model (§3.1.4) and computes the
// live bits (§4.2.3): an output is live exactly when some later
// instruction reads it as OoR, or when it is a program output. The
// instruction fields of OoR inputs are replaced by the reserved address
// 0; the original addresses are kept aside to fill the OoRW queues.
func (cp *Compiled) markOoRAndLive(cfg Config) {
	p := &cp.Program
	n := cfg.SWWWires

	// addr -> producing instruction (or -1 for inputs).
	prodOf := make([]int32, p.MaxAddr+1)
	for i := range prodOf {
		prodOf[i] = -1
	}
	for i, o := range p.OutAddrs {
		prodOf[o] = int32(i)
	}

	cp.oorA = make([]uint32, len(p.Instrs))
	cp.oorB = make([]uint32, len(p.Instrs))
	live := make([]bool, len(p.Instrs))

	oorReads := 0
	for j := range p.Instrs {
		in := &p.Instrs[j]
		if in.Op == isa.NOP {
			continue
		}
		lo := WindowLo(p.OutAddrs[j], n)
		if cfg.NoSWW {
			lo = ^uint32(0) // nothing is ever resident: all reads OoR
		}
		if in.A < lo {
			cp.oorA[j] = in.A
			if pr := prodOf[in.A]; pr >= 0 {
				live[pr] = true
			}
			in.A = isa.OoR
			oorReads++
		}
		if in.B < lo {
			cp.oorB[j] = in.B
			if pr := prodOf[in.B]; pr >= 0 {
				live[pr] = true
			}
			in.B = isa.OoR
			oorReads++
		}
	}
	for _, o := range p.OutputAddrs {
		if pr := prodOf[o]; pr >= 0 {
			live[pr] = true
		}
	}
	liveCount := 0
	for j := range p.Instrs {
		if live[j] {
			p.Instrs[j].Live = true
			liveCount++
		}
	}
	cp.Traffic = Traffic{
		LiveWires: liveCount,
		OoRWires:  oorReads,
		Outputs:   len(p.Instrs),
	}
}

// partition runs the §4.1 stream-generation step: a greedy list
// scheduler walks the program in order and assigns each instruction to
// the gate engine that can issue it earliest (matching "mapping
// instructions ... to non-stalled GEs each cycle"). The resulting per-GE
// streams, table queues and OoRW queues are exactly what the hardware
// replays; the cycle simulator re-derives timing from them.
func (cp *Compiled) partition() {
	p := &cp.Program
	cfg := cp.Cfg
	nge := cfg.NumGEs
	andLat := int64(cfg.ANDLatency())

	ready := make([]int64, p.MaxAddr+1) // cycle the wire's value is usable
	geFree := make([]int64, nge)
	cp.GEOf = make([]uint8, len(p.Instrs))
	cp.Streams = make([][]int32, nge)
	cp.OoRW = make([][]uint32, nge)
	cp.TablesPerGE = make([]int, nge)

	for j := range p.Instrs {
		in := &p.Instrs[j]
		var t0 int64
		if in.Op != isa.NOP {
			a := in.A
			if a == isa.OoR {
				a = cp.oorA[j]
			}
			b := in.B
			if b == isa.OoR {
				b = cp.oorB[j]
			}
			t0 = ready[a]
			if rb := ready[b]; rb > t0 {
				t0 = rb
			}
		}
		// The paper's distributor hands the next program instruction to
		// the first GE that is not stalled (§4.1); the chosen in-order
		// engine then blocks until the operands are ready. Operand
		// readiness does NOT steer the choice — that head-of-line
		// behaviour is what makes baseline (depth-first) schedules slow
		// and reordering valuable (§4.2.1).
		g := 0
		for k := 1; k < nge; k++ {
			if geFree[k] < geFree[g] {
				g = k
			}
		}
		issue := geFree[g]
		if t0 > issue {
			issue = t0 // the GE sits stalled until the operands arrive
		}
		geFree[g] = issue + 1
		lat := int64(XORLatency)
		if in.Op == isa.AND {
			lat = andLat
			cp.TablesPerGE[g]++
		}
		ready[p.OutAddrs[j]] = issue + lat
		cp.GEOf[j] = uint8(g)
		cp.Streams[g] = append(cp.Streams[g], int32(j))
		if cp.oorA[j] != 0 {
			cp.OoRW[g] = append(cp.OoRW[g], cp.oorA[j])
		}
		if cp.oorB[j] != 0 {
			cp.OoRW[g] = append(cp.OoRW[g], cp.oorB[j])
		}
	}
}
