// Package compiler implements the HAAC optimizing compiler (§4 of the
// paper). It lowers a Boolean circuit to a HAAC program and applies the
// three optimizations of Fig. 5:
//
//   - Reordering (§4.2.1): rescheduling instructions by dependence level
//     (Full) or by level within SWW-sized segments (Segment) to expose
//     ILP to the in-order gate engines.
//   - Renaming (§4.2.2): linearizing output wire addresses to program
//     order so the sliding wire window captures reuse without tags.
//   - Eliminating spent wires (§4.2.3): computing the live bit, so only
//     wires that are later read as out-of-range are written to DRAM.
//
// The compiler also performs the final stream-generation step of §4.1:
// partitioning instructions across gate engines with a list scheduler
// ("mapping instructions from the program to non-stalled GEs each cycle
// ... saving the order, and replaying it in hardware"), and deriving the
// per-GE table and out-of-range-wire queues.
package compiler

import (
	"fmt"

	"haac/internal/circuit"
	"haac/internal/isa"
)

// ReorderMode selects the instruction-scheduling pass.
type ReorderMode uint8

const (
	// Baseline keeps the netlist's original (depth-first) order.
	Baseline ReorderMode = iota
	// FullReorder schedules the whole program in dependence-level order.
	FullReorder
	// SegmentReorder level-orders within contiguous segments of half the
	// SWW capacity, balancing ILP against wire locality (§4.2.1).
	SegmentReorder
)

// String names the mode as in the paper's figures.
func (m ReorderMode) String() string {
	switch m {
	case Baseline:
		return "Baseline"
	case FullReorder:
		return "Full"
	case SegmentReorder:
		return "Seg"
	}
	return fmt.Sprintf("ReorderMode(%d)", uint8(m))
}

// Config parameterizes compilation. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// Reorder selects the scheduling pass.
	Reorder ReorderMode
	// ESW enables the eliminating-spent-wires pass. Renaming always
	// runs: without it the SWW is ineffectual (§6.1), and the ISA's
	// implicit output addressing requires it.
	ESW bool
	// SWWWires is the SWW capacity in wires. 2 MB / 16 B = 131072 wires
	// is the paper's default configuration.
	SWWWires int
	// SegmentWires overrides the segment size for SegmentReorder;
	// 0 means half the SWW capacity (the paper's choice).
	SegmentWires int
	// NoSWW models the paper's un-renamed baseline, where "without
	// renaming the SWW is ineffectual" (§6.1): every instruction input
	// is charged as an out-of-range read and every produced wire as a
	// live write. Renaming still assigns output addresses (the ISA
	// derives them from the PC) but the window filters nothing. Used
	// for Fig. 6's green "Baseline" bars.
	NoSWW bool
	// NumGEs is the gate-engine count used for stream partitioning.
	NumGEs int
	// GarblerPipeline selects the 21-stage Garbler AND latency for the
	// partitioning scheduler instead of the 18-stage Evaluator one.
	GarblerPipeline bool
}

// DefaultConfig is the paper's headline configuration: 16 GEs, 2 MB SWW,
// full reorder + renaming + ESW, Evaluator pipelines.
func DefaultConfig() Config {
	return Config{
		Reorder:  FullReorder,
		ESW:      true,
		SWWWires: 2 * 1024 * 1024 / 16,
		NumGEs:   16,
	}
}

// Pipeline depths (§3.2): the Half-Gate units are 21-stage (Garbler) and
// 18-stage (Evaluator); FreeXOR completes in a single cycle.
const (
	GarblerANDLatency   = 21
	EvaluatorANDLatency = 18
	XORLatency          = 1
)

// ANDLatency returns the Half-Gate pipeline depth for the configured
// party.
func (c Config) ANDLatency() int {
	if c.GarblerPipeline {
		return GarblerANDLatency
	}
	return EvaluatorANDLatency
}

func (c Config) segmentSize() int {
	if c.SegmentWires > 0 {
		return c.SegmentWires
	}
	return c.SWWWires / 2
}

// Traffic summarizes the off-chip wire traffic a compiled program will
// generate — the quantities of Table 2 (spent-wire %) and Table 3
// (live/OoRW/total wires).
type Traffic struct {
	// LiveWires is the number of output wires written back to DRAM.
	LiveWires int
	// OoRWires is the number of out-of-range wire reads.
	OoRWires int
	// Outputs is the total number of produced wires (instructions).
	Outputs int
}

// Total returns live + OoR wire traffic, Table 3's rightmost column.
func (t Traffic) Total() int { return t.LiveWires + t.OoRWires }

// SpentPercent is Table 2's "Spent Wire %": the share of produced wires
// never written off-chip.
func (t Traffic) SpentPercent() float64 {
	if t.Outputs == 0 {
		return 0
	}
	return 100 * (1 - float64(t.LiveWires)/float64(t.Outputs))
}

// Compiled is the full compiler output: the global program plus the
// per-GE streams the hardware replays.
type Compiled struct {
	Cfg     Config
	Program isa.Program
	// GEOf maps each instruction (program order) to its gate engine.
	GEOf []uint8
	// Streams holds per-GE instruction indices (into Program.Instrs) in
	// issue order; hardware fetches these via the instruction queues.
	Streams [][]int32
	// OoRW holds, per GE, the logical wire addresses its OoRW queue
	// delivers, in consumption order.
	OoRW [][]uint32
	// TablesPerGE counts AND instructions per GE (table queue depths).
	TablesPerGE []int
	// Traffic is the off-chip wire traffic summary.
	Traffic Traffic
	// SynthConstOne reports that INV lowering appended a constant-one
	// wire as the last program input.
	SynthConstOne bool

	// oorA/oorB hold, per instruction, the original logical address of
	// an operand that was rewritten to the OoR sentinel (0 = in range).
	oorA, oorB []uint32
}

// Compile lowers the circuit and runs all configured passes.
func Compile(c *circuit.Circuit, cfg Config) (*Compiled, error) {
	if cfg.SWWWires < 4 {
		return nil, fmt.Errorf("compiler: SWW capacity %d too small", cfg.SWWWires)
	}
	if cfg.NumGEs < 1 {
		return nil, fmt.Errorf("compiler: need at least one GE")
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: %w", err)
	}

	asm := assemble(c)
	switch cfg.Reorder {
	case Baseline:
	case FullReorder:
		asm.reorder(len(asm.instrs))
	case SegmentReorder:
		asm.reorder(cfg.segmentSize())
	default:
		return nil, fmt.Errorf("compiler: unknown reorder mode %d", cfg.Reorder)
	}

	prog := asm.rename(c)
	out := &Compiled{Cfg: cfg, Program: prog, SynthConstOne: asm.synthConstOne}
	out.markOoRAndLive(cfg)
	if !cfg.ESW {
		// Without ESW every produced wire is conservatively live
		// (written back), as in the pre-optimization baseline flow.
		for i := range out.Program.Instrs {
			out.Program.Instrs[i].Live = true
		}
		out.Traffic.LiveWires = len(out.Program.Instrs)
	}
	out.partition()
	if err := out.Program.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: internal error: %w", err)
	}
	return out, nil
}

// WindowLo returns the lowest wire address held by the SWW once the
// output frontier has reached addr f, for a window of n wires. The SWW
// is managed in halves (§3.1.1): it initially covers [0, n) and slides
// forward n/2 wires every time the frontier crosses a half boundary.
func WindowLo(f uint32, n int) uint32 {
	if int(f) < n {
		return 0
	}
	half := uint32(n / 2)
	return (f-uint32(n))/half*half + half
}
