package compiler

import (
	"math/rand"
	"testing"
	"testing/quick"

	"haac/internal/circuit"
	"haac/internal/isa"
	"haac/internal/workloads"
)

func smallCfg(mode ReorderMode) Config {
	return Config{
		Reorder:  mode,
		ESW:      true,
		SWWWires: 64,
		NumGEs:   4,
	}
}

// checkWorkload compiles and functionally executes a workload under the
// given config, comparing against the native reference.
func checkWorkload(t *testing.T, w workloads.Workload, cfg Config, seed int64) *Compiled {
	t.Helper()
	c := w.Build()
	cp, err := Compile(c, cfg)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	g, e := w.Inputs(seed)
	want := w.Reference(g, e)
	in, err := cp.InputBits(c, g, e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cp.Execute(in)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", w.Name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s (%v, seed %d): output bit %d mismatch", w.Name, cfg.Reorder, seed, i)
		}
	}
	return cp
}

func TestAllPassesPreserveSemantics(t *testing.T) {
	// Every workload x every reorder mode, with a tiny SWW to force OoR
	// traffic and spills through every path.
	for _, w := range workloads.VIPSuiteSmall() {
		for _, mode := range []ReorderMode{Baseline, FullReorder, SegmentReorder} {
			w, mode := w, mode
			t.Run(w.Name+"/"+mode.String(), func(t *testing.T) {
				checkWorkload(t, w, smallCfg(mode), 3)
			})
		}
	}
}

func TestNoESWStillCorrect(t *testing.T) {
	cfg := smallCfg(FullReorder)
	cfg.ESW = false
	cp := checkWorkload(t, workloads.DotProduct(4, 8), cfg, 1)
	if cp.Traffic.LiveWires != len(cp.Program.Instrs) {
		t.Fatal("without ESW all wires must be live")
	}
}

func TestESWReducesLiveWires(t *testing.T) {
	w := workloads.Hamming(256)
	c := w.Build()
	cfg := Config{Reorder: FullReorder, ESW: true, SWWWires: 4096, NumGEs: 4}
	cp, err := Compile(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Traffic.LiveWires >= len(cp.Program.Instrs)/2 {
		t.Fatalf("ESW kept %d/%d wires live; expected most wires spent",
			cp.Traffic.LiveWires, len(cp.Program.Instrs))
	}
	if cp.Traffic.SpentPercent() < 50 {
		t.Fatalf("spent%% = %.1f", cp.Traffic.SpentPercent())
	}
}

func TestLargeSWWHasNoOoR(t *testing.T) {
	// If the SWW covers the whole program there can be no OoR reads and
	// only program outputs are live.
	w := workloads.DotProduct(4, 8)
	c := w.Build()
	cfg := Config{Reorder: FullReorder, ESW: true, SWWWires: 1 << 20, NumGEs: 2}
	cp, err := Compile(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Traffic.OoRWires != 0 {
		t.Fatalf("OoR reads with whole-program SWW: %d", cp.Traffic.OoRWires)
	}
	if cp.Traffic.LiveWires != len(c.Outputs) {
		t.Fatalf("live wires %d, want %d (outputs only)", cp.Traffic.LiveWires, len(c.Outputs))
	}
}

func TestWindowLo(t *testing.T) {
	n := 64
	cases := []struct{ f, lo uint32 }{
		{0, 0}, {32, 0}, {63, 0},
		{64, 32}, {95, 32},
		{96, 64}, {127, 64},
		{128, 96},
	}
	for _, cse := range cases {
		if got := WindowLo(cse.f, n); got != cse.lo {
			t.Errorf("WindowLo(%d,%d) = %d, want %d", cse.f, n, got, cse.lo)
		}
	}
	// Invariants: lo <= f, window covers f, lo advances monotonically in
	// half-window steps.
	f := func(v uint32) bool {
		v %= 1 << 20
		lo := WindowLo(v, n)
		return lo <= v && v < lo+uint32(n) && lo%uint32(n/2) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRenamingSequentialAndSkipsSentinel(t *testing.T) {
	a := newAddrAllocator()
	prev := uint32(0)
	for i := 0; i < 3*(1<<isa.AddrBits); i++ {
		v := a.alloc()
		if v <= prev {
			t.Fatal("addresses not increasing")
		}
		if v%(1<<isa.AddrBits) == 0 {
			t.Fatalf("allocator produced sentinel-colliding address %d", v)
		}
		prev = v
	}
}

func TestReorderLevelOrder(t *testing.T) {
	// After full reorder, instruction dependence levels must be
	// non-decreasing along the program.
	w := workloads.DotProduct(4, 8)
	c := w.Build()
	cp, err := Compile(c, Config{Reorder: FullReorder, ESW: true, SWWWires: 1 << 20, NumGEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := &cp.Program
	lvl := make(map[uint32]int) // addr -> level
	prev := 0
	for j := range p.Instrs {
		in := p.Instrs[j]
		l := 0
		if la, ok := lvl[in.A]; ok && la > l {
			l = la
		}
		if lb, ok := lvl[in.B]; ok && lb > l {
			l = lb
		}
		l++
		lvl[p.OutAddrs[j]] = l
		if l < prev {
			t.Fatalf("instruction %d at level %d after level %d", j, l, prev)
		}
		prev = l
	}
}

func TestPartitionConservation(t *testing.T) {
	w := workloads.MatMult(3, 8)
	c := w.Build()
	cfg := smallCfg(SegmentReorder)
	cp, err := Compile(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every instruction appears exactly once across streams.
	seen := make([]bool, len(cp.Program.Instrs))
	total := 0
	for g, st := range cp.Streams {
		prev := int32(-1)
		for _, j := range st {
			if seen[j] {
				t.Fatalf("instruction %d in multiple streams", j)
			}
			seen[j] = true
			total++
			if j <= prev {
				t.Fatalf("GE %d stream not in program order", g)
			}
			prev = j
			if int(cp.GEOf[j]) != g {
				t.Fatalf("GEOf mismatch for instruction %d", j)
			}
		}
	}
	if total != len(cp.Program.Instrs) {
		t.Fatalf("streams carry %d instructions, program has %d", total, len(cp.Program.Instrs))
	}
	// Table queue depths must sum to the AND count.
	ands := cp.Program.NumANDs()
	sum := 0
	for _, n := range cp.TablesPerGE {
		sum += n
	}
	if sum != ands {
		t.Fatalf("table queues hold %d, program has %d ANDs", sum, ands)
	}
}

func TestSegmentVsFullTrafficTradeoff(t *testing.T) {
	// The paper's Table 3: for a high-ILP workload, full reorder must
	// generate at least as much wire traffic as segment reorder.
	w := workloads.MatMult(4, 16)
	c := w.Build()
	base := Config{ESW: true, SWWWires: 2048, NumGEs: 4}

	cfgSeg := base
	cfgSeg.Reorder = SegmentReorder
	seg, err := Compile(c, cfgSeg)
	if err != nil {
		t.Fatal(err)
	}
	cfgFull := base
	cfgFull.Reorder = FullReorder
	full, err := Compile(c.Clone(), cfgFull)
	if err != nil {
		t.Fatal(err)
	}
	if full.Traffic.Total() < seg.Traffic.Total() {
		t.Fatalf("full reorder traffic %d < segment %d; tradeoff inverted",
			full.Traffic.Total(), seg.Traffic.Total())
	}
}

func TestRandomCircuitsAllModes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		c := randomCircuit(rng, 6, 6, 200)
		g := randBits(rng, 6)
		e := randBits(rng, 6)
		want, err := c.Eval(g, e)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []ReorderMode{Baseline, FullReorder, SegmentReorder} {
			cp, err := Compile(c.Clone(), smallCfg(mode))
			if err != nil {
				t.Fatal(err)
			}
			in, err := cp.InputBits(c, g, e)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cp.Execute(in)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, mode, err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d %v: output %d mismatch", trial, mode, i)
				}
			}
		}
	}
}

func TestInvalidConfigsRejected(t *testing.T) {
	c := workloads.AddN(4).Build()
	if _, err := Compile(c, Config{SWWWires: 2, NumGEs: 1, Reorder: Baseline}); err == nil {
		t.Fatal("tiny SWW accepted")
	}
	if _, err := Compile(c, Config{SWWWires: 64, NumGEs: 0, Reorder: Baseline}); err == nil {
		t.Fatal("zero GEs accepted")
	}
	if _, err := Compile(c, Config{SWWWires: 64, NumGEs: 1, Reorder: ReorderMode(9)}); err == nil {
		t.Fatal("unknown reorder mode accepted")
	}
}

// randomCircuit mirrors the gc package's generator.
func randomCircuit(rng *rand.Rand, ng, ne, gates int) *circuit.Circuit {
	c := &circuit.Circuit{
		NumWires:        ng + ne + gates,
		GarblerInputs:   ng,
		EvaluatorInputs: ne,
	}
	for i := 0; i < gates; i++ {
		out := circuit.Wire(ng + ne + i)
		a := circuit.Wire(rng.Intn(int(out)))
		b := circuit.Wire(rng.Intn(int(out)))
		op := []circuit.Op{circuit.XOR, circuit.AND, circuit.INV}[rng.Intn(3)]
		c.Gates = append(c.Gates, circuit.Gate{Op: op, A: a, B: b, C: out})
	}
	for i := 0; i < 4; i++ {
		c.Outputs = append(c.Outputs, circuit.Wire(c.NumWires-1-i))
	}
	return c
}

func randBits(rng *rand.Rand, n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = rng.Intn(2) == 1
	}
	return b
}

func TestAnalyzeReuse(t *testing.T) {
	w := workloads.MatMult(4, 16)
	c := w.Build()
	cp, err := Compile(c, Config{Reorder: SegmentReorder, ESW: true, SWWWires: 1024, NumGEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := cp.AnalyzeReuse([]int{64, 1024, 1 << 20})
	if st.Reads == 0 {
		t.Fatal("no reads analyzed")
	}
	if st.Median > st.P90 || st.P90 > st.P99 || st.P99 > st.Max {
		t.Fatalf("percentiles not monotone: %+v", st)
	}
	// Coverage must be monotone in window size and complete for a
	// window covering the whole program.
	if st.CoveredBy[64] > st.CoveredBy[1024] || st.CoveredBy[1024] > st.CoveredBy[1<<20] {
		t.Fatalf("coverage not monotone: %v", st.CoveredBy)
	}
	if st.CoveredBy[1<<20] < 0.999 {
		t.Fatalf("whole-program window covers only %.3f", st.CoveredBy[1<<20])
	}
	// The paper's locality claim ("most generated wires are used by
	// instructions that closely follow"): the median distance must be
	// tiny relative to the program, and a 1024-wire window must keep the
	// majority of the 48k-instruction program's reads resident.
	if st.Median > 1024 {
		t.Fatalf("median reuse distance %d; locality claim broken", st.Median)
	}
	if st.CoveredBy[1024] < 0.7 {
		t.Fatalf("segment schedule locality too weak: %v\n%s", st.CoveredBy, st)
	}
	if st.String() == "" {
		t.Fatal("empty rendering")
	}
}
