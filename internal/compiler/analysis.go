package compiler

import (
	"fmt"
	"sort"

	"haac/internal/isa"
)

// Reuse-distance analysis. The SWW design rests on an empirical claim
// (§3.1.1: "We observe most generated wires are used by instructions
// that closely follow"): if wire reuse distances are short relative to
// the window, a contiguous sliding scratchpad filters almost all
// traffic without tags. This analysis measures the claim for any
// compiled program, and therefore also sizes the SWW for new workloads.

// ReuseStats summarizes producer→consumer distances in a program.
type ReuseStats struct {
	// Reads is the total number of wire reads (excluding OoR sentinel
	// rewrites — distances are computed on original addresses).
	Reads int
	// Median, P90, P99 are percentile reuse distances in instructions.
	Median, P90, P99 int
	// Max is the longest distance observed.
	Max int
	// CoveredBy reports, for each window size in wires, the fraction of
	// reads whose distance fits within half that window (the resident
	// guarantee of the sliding scheme).
	CoveredBy map[int]float64
}

// AnalyzeReuse computes reuse-distance statistics for the compiled
// program, using the logical (pre-OoR-rewrite) operand addresses.
func (cp *Compiled) AnalyzeReuse(windows []int) ReuseStats {
	p := &cp.Program
	// Producer position per address: inputs at position 0.
	pos := make([]int32, p.MaxAddr+1)
	for i, o := range p.OutAddrs {
		pos[o] = int32(i) + 1
	}
	var dists []int
	for j := range p.Instrs {
		in := &p.Instrs[j]
		if in.Op == isa.NOP {
			continue
		}
		for _, f := range [2]uint32{resolveAddr(in.A, cp.oorA[j]), resolveAddr(in.B, cp.oorB[j])} {
			if f == 0 {
				continue
			}
			d := int32(j) + 1 - pos[f]
			if d < 0 {
				d = 0
			}
			dists = append(dists, int(d))
		}
	}
	sort.Ints(dists)
	st := ReuseStats{Reads: len(dists), CoveredBy: map[int]float64{}}
	if len(dists) == 0 {
		return st
	}
	pct := func(q float64) int { return dists[int(q*float64(len(dists)-1))] }
	st.Median = pct(0.5)
	st.P90 = pct(0.9)
	st.P99 = pct(0.99)
	st.Max = dists[len(dists)-1]
	for _, w := range windows {
		half := w / 2
		n := sort.SearchInts(dists, half+1)
		st.CoveredBy[w] = float64(n) / float64(len(dists))
	}
	return st
}

func resolveAddr(field, saved uint32) uint32 {
	if field == isa.OoR {
		return saved
	}
	return field
}

// String renders the stats.
func (s ReuseStats) String() string {
	out := fmt.Sprintf("reuse distances over %d reads: median %d, p90 %d, p99 %d, max %d",
		s.Reads, s.Median, s.P90, s.P99, s.Max)
	keys := make([]int, 0, len(s.CoveredBy))
	for k := range s.CoveredBy {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		out += fmt.Sprintf("\n  window %7d wires: %.1f%% of reads resident", k, 100*s.CoveredBy[k])
	}
	return out
}
