package compiler

import (
	"fmt"

	"haac/internal/circuit"
	"haac/internal/isa"
)

// Functional execution of compiled programs. The executor replays the
// per-GE streams exactly as the hardware would — including popping
// OoRW-queue entries for zero-address operands — so it proves that the
// reorder/rename/ESW/partition passes preserve the circuit's semantics,
// not just that the math was transcribed correctly.

// InputBits assembles the program-input bit vector for a compiled
// circuit from the two parties' inputs: garbler bits, evaluator bits,
// the circuit's constant wires, and the compiler's synthetic
// constant-one wire when INV lowering added one.
func (cp *Compiled) InputBits(c *circuit.Circuit, garbler, evaluator []bool) ([]bool, error) {
	if len(garbler) != c.GarblerInputs || len(evaluator) != c.EvaluatorInputs {
		return nil, fmt.Errorf("compiler: input bits %d/%d, want %d/%d",
			len(garbler), len(evaluator), c.GarblerInputs, c.EvaluatorInputs)
	}
	bits := make([]bool, 0, cp.Program.NumInputs)
	bits = append(bits, garbler...)
	bits = append(bits, evaluator...)
	if c.HasConst {
		bits = append(bits, false, true)
	}
	if cp.SynthConstOne {
		bits = append(bits, true)
	}
	if len(bits) != cp.Program.NumInputs {
		return nil, fmt.Errorf("compiler: assembled %d input bits, program has %d",
			len(bits), cp.Program.NumInputs)
	}
	return bits, nil
}

// Execute runs the program functionally on plaintext bits, consuming the
// per-GE instruction and OoRW streams, and returns the program outputs.
func (cp *Compiled) Execute(inputs []bool) ([]bool, error) {
	p := &cp.Program
	if len(inputs) != p.NumInputs {
		return nil, fmt.Errorf("compiler: got %d input bits, want %d", len(inputs), p.NumInputs)
	}
	vals := make([]bool, p.MaxAddr+1)
	written := make([]bool, p.MaxAddr+1)
	for i, a := range p.InputAddrs {
		vals[a] = inputs[i]
		written[a] = true
	}

	oorPos := make([]int, len(cp.OoRW))
	popOoR := func(g uint8) (uint32, error) {
		q := cp.OoRW[g]
		if oorPos[g] >= len(q) {
			return 0, fmt.Errorf("compiler: GE %d OoRW queue underflow", g)
		}
		a := q[oorPos[g]]
		oorPos[g]++
		return a, nil
	}

	// Program order is a linear extension of every per-GE stream, so
	// walking it pops each GE's OoRW queue in stream order.
	for j := range p.Instrs {
		in := &p.Instrs[j]
		if in.Op == isa.NOP {
			continue
		}
		g := cp.GEOf[j]
		resolve := func(field, saved uint32) (bool, error) {
			addr := field
			if field == isa.OoR {
				got, err := popOoR(g)
				if err != nil {
					return false, err
				}
				if saved != 0 && got != saved {
					return false, fmt.Errorf("compiler: instruction %d OoRW queue delivered %d, expected %d", j, got, saved)
				}
				addr = got
			}
			if !written[addr] {
				return false, fmt.Errorf("compiler: instruction %d reads unwritten wire %d", j, addr)
			}
			return vals[addr], nil
		}
		va, err := resolve(in.A, cp.oorA[j])
		if err != nil {
			return nil, err
		}
		vb, err := resolve(in.B, cp.oorB[j])
		if err != nil {
			return nil, err
		}
		var out bool
		switch in.Op {
		case isa.XOR:
			out = va != vb
		case isa.AND:
			out = va && vb
		}
		o := p.OutAddrs[j]
		vals[o] = out
		written[o] = true
	}
	for g := range cp.OoRW {
		if oorPos[g] != len(cp.OoRW[g]) {
			return nil, fmt.Errorf("compiler: GE %d OoRW queue has %d unconsumed entries",
				g, len(cp.OoRW[g])-oorPos[g])
		}
	}

	out := make([]bool, len(p.OutputAddrs))
	for i, a := range p.OutputAddrs {
		if !written[a] {
			return nil, fmt.Errorf("compiler: program output wire %d never written", a)
		}
		out[i] = vals[a]
	}
	return out, nil
}
