package compiler

import (
	"testing"

	"haac/internal/gc"
	"haac/internal/label"
	"haac/internal/workloads"
)

// runGarbled executes a workload through the complete co-design path:
// compile -> garble in program order (per-GE table queues) -> evaluate
// by replaying the streams with real labels -> decode.
func runGarbled(t *testing.T, w workloads.Workload, cfg Config, seed int64) {
	t.Helper()
	c := w.Build()
	cp, err := Compile(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := gc.RekeyedHasher{}
	pg, err := cp.Garble(h, label.NewSource(uint64(seed)*77+1))
	if err != nil {
		t.Fatal(err)
	}

	g, e := w.Inputs(seed)
	want := w.Reference(g, e)
	bits, err := cp.InputBits(c, g, e)
	if err != nil {
		t.Fatal(err)
	}
	inLabels, err := pg.EncodeProgramInputs(bits)
	if err != nil {
		t.Fatal(err)
	}
	outLabels, err := cp.EvaluateLabels(h, inLabels, pg.Tables)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pg.Decode(outLabels)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s %v: garbled output bit %d mismatch", w.Name, cfg.Reorder, i)
		}
	}
}

func TestGarbledProgramsMatchReference(t *testing.T) {
	// The crown-jewel integration: real garbling through reordered,
	// renamed, ESW'd, partitioned programs with a tiny SWW (forcing the
	// OoRW-queue path), across every scheduling mode.
	for _, w := range []workloads.Workload{
		workloads.DotProduct(4, 8),
		workloads.Hamming(64),
		workloads.Millionaire(16),
		workloads.Mersenne(4, 2),
		workloads.ReLU(4, 16),
	} {
		for _, mode := range []ReorderMode{Baseline, FullReorder, SegmentReorder} {
			w, mode := w, mode
			t.Run(w.Name+"/"+mode.String(), func(t *testing.T) {
				runGarbled(t, w, smallCfg(mode), 5)
			})
		}
	}
}

func TestGarbledProgramFloat(t *testing.T) {
	// Floating-point gradient descent under garbling: exercises INV
	// lowering (synthetic const-one wire) through the garbled path.
	runGarbled(t, workloads.GradDesc(2, 1), smallCfg(FullReorder), 3)
}

func TestGarbledCorruptTableQueueDetected(t *testing.T) {
	w := workloads.Millionaire(8)
	c := w.Build()
	cp, err := Compile(c, smallCfg(FullReorder))
	if err != nil {
		t.Fatal(err)
	}
	h := gc.RekeyedHasher{}
	pg, err := cp.Garble(h, label.NewSource(9))
	if err != nil {
		t.Fatal(err)
	}
	g, e := w.Inputs(2)
	bits, _ := cp.InputBits(c, g, e)
	inLabels, _ := pg.EncodeProgramInputs(bits)

	// Corrupt both rows of every table: at least one corrupted row is
	// guaranteed to be selected by some gate's colour bits.
	for gq := range pg.Tables {
		for i := range pg.Tables[gq] {
			pg.Tables[gq][i].TE.Hi ^= 1 << 30
			pg.Tables[gq][i].TG.Lo ^= 1 << 7
		}
	}
	outLabels, err := cp.EvaluateLabels(h, inLabels, pg.Tables)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pg.Decode(outLabels); err == nil {
		t.Fatal("corrupted table queue went undetected")
	}
}

func TestGarbledTableQueueLengthChecked(t *testing.T) {
	w := workloads.Millionaire(8)
	c := w.Build()
	cp, err := Compile(c, smallCfg(FullReorder))
	if err != nil {
		t.Fatal(err)
	}
	h := gc.RekeyedHasher{}
	pg, err := cp.Garble(h, label.NewSource(9))
	if err != nil {
		t.Fatal(err)
	}
	g, e := w.Inputs(2)
	bits, _ := cp.InputBits(c, g, e)
	inLabels, _ := pg.EncodeProgramInputs(bits)
	// Truncate a non-empty queue.
	for gq := range pg.Tables {
		if len(pg.Tables[gq]) > 0 {
			pg.Tables[gq] = pg.Tables[gq][:len(pg.Tables[gq])-1]
			break
		}
	}
	if _, err := cp.EvaluateLabels(h, inLabels, pg.Tables); err == nil {
		t.Fatal("truncated table queue accepted")
	}
}

func TestGarbledDecodeBitsMatchColours(t *testing.T) {
	w := workloads.AddN(8)
	c := w.Build()
	cp, err := Compile(c, smallCfg(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	pg, err := cp.Garble(gc.RekeyedHasher{}, label.NewSource(4))
	if err != nil {
		t.Fatal(err)
	}
	d := pg.DecodeBits()
	for i, z := range pg.OutputZeros {
		if d[i] != z.Colour() {
			t.Fatal("decode bit is not the zero-label colour")
		}
	}
}
